// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale small|default|paper] [-threads N] [-compiler VER] <exp> [<exp>...]
//
// where <exp> is one of: fig1 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
// fig14 fig15 table2 table3 table4 all.
package main

import (
	"flag"
	"fmt"
	"os"

	"mobilesim/internal/experiments"
)

func main() {
	scale := flag.String("scale", "default", "input scale: small, default or paper")
	threads := flag.Int("threads", 0, "GPU simulation host threads (0 = default)")
	compiler := flag.String("compiler", "", "JIT compiler version (default 6.1)")
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "\nexperiments: fig1 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 table2 table3 table4 all")
		os.Exit(2)
	}
	opt := experiments.Options{
		Scale:           experiments.ScaleKind(*scale),
		HostThreads:     *threads,
		CompilerVersion: *compiler,
	}
	w := os.Stdout

	run := func(name string) error {
		switch name {
		case "fig1":
			_, err := experiments.Fig1(w)
			return err
		case "fig6":
			_, err := experiments.Fig6(w, opt)
			return err
		case "fig7":
			_, err := experiments.Fig7(w, opt)
			return err
		case "fig8":
			_, err := experiments.Fig8(w, opt)
			return err
		case "fig9":
			_, err := experiments.Fig9(w, opt)
			return err
		case "fig10":
			_, err := experiments.Fig10(w, opt)
			return err
		case "fig11":
			_, err := experiments.Fig11(w, opt)
			return err
		case "fig12":
			_, err := experiments.Fig12(w, opt)
			return err
		case "fig13":
			_, err := experiments.Fig13(w, opt)
			return err
		case "fig14":
			_, err := experiments.Fig14(w, opt)
			return err
		case "fig15":
			_, err := experiments.Fig15(w, opt)
			return err
		case "table2":
			return experiments.Table2(w)
		case "table3":
			_, err := experiments.Table3(w, opt)
			return err
		case "table4":
			return experiments.Table4(w)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = []string{"fig1", "fig6", "fig7", "fig8", "fig9", "fig10",
			"fig11", "fig12", "fig13", "fig14", "fig15", "table2", "table3", "table4"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}
