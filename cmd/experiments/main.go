// Command experiments regenerates the paper's tables and figures through
// the unified Workload API: each experiment is a registered workload run
// on one session, whose configuration (host threads, compiler version)
// parameterises the harness. Ctrl-C cancels mid-experiment.
//
// Usage:
//
//	experiments [-scale small|default|paper] [-threads N] [-compiler VER] <exp> [<exp>...]
//
// where <exp> is one of: fig1 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
// fig14 fig15 table2 table3 table4 all.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"mobilesim"
)

func main() {
	scale := flag.String("scale", "default", "input scale: small, default or paper")
	threads := flag.Int("threads", 0, "GPU simulation host threads (0 = default)")
	compiler := flag.String("compiler", "", "JIT compiler version (default 6.1)")
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		fmt.Fprintf(os.Stderr, "\nexperiments: %s all\n",
			strings.Join(mobilesim.Experiments(), " "))
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sess, err := mobilesim.New(mobilesim.Config{
		HostThreads:     *threads,
		CompilerVersion: *compiler,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer sess.Close()

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = mobilesim.Experiments()
	}
	for _, n := range names {
		_, err := sess.Run(ctx, n,
			mobilesim.WithOutput(os.Stdout),
			mobilesim.WithExperimentScale(mobilesim.ExperimentScale(*scale)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}
