// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale small|default|paper] [-threads N] [-compiler VER] <exp> [<exp>...]
//
// where <exp> is one of: fig1 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
// fig14 fig15 table2 table3 table4 all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mobilesim"
)

func main() {
	scale := flag.String("scale", "default", "input scale: small, default or paper")
	threads := flag.Int("threads", 0, "GPU simulation host threads (0 = default)")
	compiler := flag.String("compiler", "", "JIT compiler version (default 6.1)")
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		fmt.Fprintf(os.Stderr, "\nexperiments: %s all\n",
			strings.Join(mobilesim.Experiments(), " "))
		os.Exit(2)
	}
	opt := mobilesim.ExperimentOptions{
		Scale:           mobilesim.ExperimentScale(*scale),
		HostThreads:     *threads,
		CompilerVersion: *compiler,
	}

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = mobilesim.Experiments()
	}
	for _, n := range names {
		if err := mobilesim.RunExperiment(os.Stdout, n, opt); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}
