// Command mobilesimctl fans a batch of simulations out over a cluster of
// mobilesimd hosts. It boots the configured platform once locally,
// captures the warm snapshot, ships it to every host, then dispatches the
// jobs with work-stealing, bounded retries on host loss and optional
// hedged requests — and merges the per-run statistics deltas into one
// verified aggregate, bit-identical to running the same jobs in a local
// Batch (see DESIGN.md §11).
//
// Usage:
//
//	mobilesimctl -hosts http://a:8900,http://b:8900 BFS:4 SpMV FFT:2
//	mobilesimctl -hosts ... -suite            # the full Table II suite
//	mobilesimctl -hosts ... -suite -check-local
//
// Jobs are workload names with an optional :scale suffix. -check-local
// additionally runs the same jobs in-process and exits non-zero unless
// the cluster aggregate matches the local one counter-for-counter.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"mobilesim"
)

func main() {
	hosts := flag.String("hosts", "", "comma-separated mobilesimd base URLs (required)")
	suite := flag.Bool("suite", false, "run the full Table II benchmark suite")
	scale := flag.Int("scale", 0, "input scale for -suite jobs (0 = workload default)")
	small := flag.Bool("small", false, "use each workload's small test scale for -suite jobs (overrides -scale)")
	ram := flag.Int("ram", 512, "guest RAM in MiB")
	cores := flag.Int("cores", 8, "simulated shader cores")
	threads := flag.Int("threads", 8, "GPU simulation host threads")
	compiler := flag.String("compiler", "", "JIT compiler version (5.6..6.2, default 6.1)")
	engine := flag.String("engine", "", "shader execution engine: warp (default), jit or interp")
	streams := flag.Int("streams", 0, "concurrent jobs per host (0 = default)")
	retries := flag.Int("retries", 0, "max attempts per job, hedges included (0 = default)")
	backoff := flag.Duration("backoff", 0, "initial retry backoff (0 = default)")
	hedge := flag.Duration("hedge", 0, "hedge a still-running job on a second host after this delay (0 = off)")
	checkLocal := flag.Bool("check-local", false, "also run the jobs locally and require a bit-identical aggregate")
	stats := flag.Bool("stats", false, "print cluster delivery counters and per-host attempt latencies")
	jsonOut := flag.Bool("json", false, "emit the merged result as JSON")
	timeout := flag.Duration("timeout", 0, "overall deadline (0 = none)")
	flag.Parse()

	if *hosts == "" {
		fmt.Fprintln(os.Stderr, "mobilesimctl: -hosts is required")
		flag.Usage()
		os.Exit(2)
	}
	var hostList []string
	for _, h := range strings.Split(*hosts, ",") {
		if h = strings.TrimSpace(h); h != "" {
			hostList = append(hostList, h)
		}
	}

	var jobs []mobilesim.BatchJob
	if *suite {
		for _, w := range mobilesim.Benchmarks() {
			s := *scale
			if *small {
				s = w.SmallScale
			}
			jobs = append(jobs, mobilesim.BatchJob{Benchmark: w.Name, Scale: s})
		}
	}
	for _, arg := range flag.Args() {
		job, err := parseJob(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mobilesimctl:", err)
			os.Exit(2)
		}
		jobs = append(jobs, job)
	}
	if len(jobs) == 0 {
		fmt.Fprintln(os.Stderr, "mobilesimctl: no jobs: pass workload[:scale] args or -suite")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	batch := &mobilesim.Batch{
		Jobs: jobs,
		Config: mobilesim.Config{
			RAMSize:         uint64(*ram) << 20,
			ShaderCores:     *cores,
			HostThreads:     *threads,
			CompilerVersion: *compiler,
			GPUEngine:       *engine,
		},
		Hosts: hostList,
		Cluster: mobilesim.ClusterConfig{
			PerHostStreams: *streams,
			MaxAttempts:    *retries,
			RetryBackoff:   *backoff,
			HedgeAfter:     *hedge,
		},
	}

	t0 := time.Now()
	res, err := batch.Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilesimctl:", err)
		os.Exit(1)
	}

	if *jsonOut {
		printJSON(res, len(hostList), *stats)
	} else {
		printText(res, len(hostList), time.Since(t0))
		if *stats {
			printClusterStats(res.Cluster)
		}
	}
	if res.Failed > 0 || res.Skipped > 0 || res.Interrupted > 0 {
		os.Exit(1)
	}

	if *checkLocal {
		local := &mobilesim.Batch{Jobs: jobs, Config: batch.Config}
		lres, err := local.Run(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mobilesimctl: local check:", err)
			os.Exit(1)
		}
		if err := compareAggregates(res, lres); err != nil {
			fmt.Fprintln(os.Stderr, "mobilesimctl: local check FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("local check: cluster aggregate is bit-identical to the local run")
	}
}

// parseJob parses a workload[:scale] argument.
func parseJob(arg string) (mobilesim.BatchJob, error) {
	name, scaleStr, ok := strings.Cut(arg, ":")
	job := mobilesim.BatchJob{Benchmark: name}
	if ok {
		n, err := strconv.Atoi(scaleStr)
		if err != nil || n < 0 {
			return job, fmt.Errorf("bad job %q: scale must be a non-negative integer", arg)
		}
		job.Scale = n
	}
	if _, err := mobilesim.Lookup(name); err != nil {
		return job, err
	}
	return job, nil
}

// compareAggregates requires the deterministic counter fields of the two
// aggregates to match exactly. Wall-clock fields (DriverCPUTime, the
// duration fields) measure host time, not simulated work, and are
// excluded.
func compareAggregates(remote, local *mobilesim.BatchResult) error {
	if remote.Aggregate.GPU != local.Aggregate.GPU {
		return fmt.Errorf("GPU counters differ:\n  cluster: %+v\n  local:   %+v", remote.Aggregate.GPU, local.Aggregate.GPU)
	}
	if remote.Aggregate.System != local.Aggregate.System {
		return fmt.Errorf("system counters differ:\n  cluster: %+v\n  local:   %+v", remote.Aggregate.System, local.Aggregate.System)
	}
	if remote.Aggregate.GuestInstructions != local.Aggregate.GuestInstructions {
		return fmt.Errorf("guest instruction counts differ: cluster %d, local %d",
			remote.Aggregate.GuestInstructions, local.Aggregate.GuestInstructions)
	}
	return nil
}

func printText(res *mobilesim.BatchResult, hosts int, wall time.Duration) {
	for i := range res.Jobs {
		jr := &res.Jobs[i]
		switch {
		case jr.Err != nil:
			fmt.Printf("  %-14s FAILED: %v\n", jr.Job.Benchmark, jr.Err)
		case jr.Result != nil:
			fmt.Printf("  %-14s ok  verified=%-5v sim=%8.2fms  insns=%d\n",
				jr.Job.Benchmark, jr.Result.Verified,
				float64(jr.Result.SimDuration)/float64(time.Millisecond),
				jr.Result.Stats.GuestInstructions)
		}
	}
	a := &res.Aggregate
	fmt.Printf("cluster: %d hosts  %d completed  %d failed  %d skipped  wall %.2fs\n",
		hosts, res.Completed, res.Failed, res.Skipped, wall.Seconds())
	fmt.Printf("merged:  kernels=%d compute_jobs=%d gpu_insns=%d mem_acc=%d guest_insns=%d\n",
		a.System.KernelLaunch, a.System.ComputeJobs, a.GPU.TotalInstr(), a.GPU.MainMemAcc, a.GuestInstructions)
}

// printClusterStats renders the delivery counters and per-host attempt
// latency summaries collected during the cluster run (-stats).
func printClusterStats(cr *mobilesim.ClusterReport) {
	if cr == nil {
		return
	}
	fmt.Printf("delivery: retries=%d hedges=%d discarded=%d reships=%d\n",
		cr.Retries, cr.Hedges, cr.Discarded, cr.Reships)
	for i := range cr.Hosts {
		h := &cr.Hosts[i]
		state := "live"
		if h.Dead {
			state = "DEAD"
		}
		fmt.Printf("  %-28s %-4s runs=%-4d %s %s %s\n", h.URL, state, h.Runs,
			latencyColumn("dispatch", h.Dispatch),
			latencyColumn("retry", h.Retry),
			latencyColumn("hedge", h.Hedge))
	}
}

// latencyJSON renders a latency snapshot as a small JSON object, or nil
// when nothing was observed (the field is omitted).
func latencyJSON(s mobilesim.LatencySnapshot) any {
	if s.Count == 0 {
		return nil
	}
	sum := s.Summary()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return map[string]any{
		"count":   sum.Count,
		"mean_ms": ms(sum.Mean),
		"p50_ms":  ms(sum.P50),
		"p90_ms":  ms(sum.P90),
		"p99_ms":  ms(sum.P99),
	}
}

// latencyColumn formats one attempt-latency snapshot as
// "name n=COUNT p50=… p99=…", or "name n=0" when nothing was observed.
func latencyColumn(name string, s mobilesim.LatencySnapshot) string {
	if s.Count == 0 {
		return fmt.Sprintf("%s n=0", name)
	}
	return fmt.Sprintf("%s n=%d p50=%.1fms p99=%.1fms", name, s.Count,
		float64(s.Quantile(0.5))/float64(time.Millisecond),
		float64(s.Quantile(0.99))/float64(time.Millisecond))
}

func printJSON(res *mobilesim.BatchResult, hosts int, stats bool) {
	type jobOut struct {
		Workload string  `json:"workload"`
		Scale    int     `json:"scale"`
		Verified bool    `json:"verified,omitempty"`
		SimMS    float64 `json:"sim_ms,omitempty"`
		Error    string  `json:"error,omitempty"`
	}
	type hostLatOut struct {
		URL      string `json:"url"`
		Dead     bool   `json:"dead,omitempty"`
		Runs     uint64 `json:"runs"`
		Dispatch any    `json:"dispatch,omitempty"`
		Retry    any    `json:"retry,omitempty"`
		Hedge    any    `json:"hedge,omitempty"`
	}
	type clusterOut struct {
		Retries   uint64       `json:"retries"`
		Hedges    uint64       `json:"hedges"`
		Discarded uint64       `json:"discarded"`
		Reships   uint64       `json:"reships"`
		Hosts     []hostLatOut `json:"hosts"`
	}
	out := struct {
		Hosts     int              `json:"hosts"`
		Completed int              `json:"completed"`
		Failed    int              `json:"failed"`
		Skipped   int              `json:"skipped"`
		WallMS    float64          `json:"wall_ms"`
		Jobs      []jobOut         `json:"jobs"`
		Aggregate *mobilesim.Stats `json:"aggregate"`
		Cluster   *clusterOut      `json:"cluster,omitempty"`
	}{
		Hosts: hosts, Completed: res.Completed, Failed: res.Failed, Skipped: res.Skipped,
		WallMS:    float64(res.Wall) / float64(time.Millisecond),
		Aggregate: &res.Aggregate,
	}
	if stats && res.Cluster != nil {
		co := &clusterOut{
			Retries: res.Cluster.Retries, Hedges: res.Cluster.Hedges,
			Discarded: res.Cluster.Discarded, Reships: res.Cluster.Reships,
		}
		for i := range res.Cluster.Hosts {
			h := &res.Cluster.Hosts[i]
			co.Hosts = append(co.Hosts, hostLatOut{
				URL: h.URL, Dead: h.Dead, Runs: h.Runs,
				Dispatch: latencyJSON(h.Dispatch),
				Retry:    latencyJSON(h.Retry),
				Hedge:    latencyJSON(h.Hedge),
			})
		}
		out.Cluster = co
	}
	for i := range res.Jobs {
		jr := &res.Jobs[i]
		jo := jobOut{Workload: jr.Job.Benchmark, Scale: jr.Job.Scale}
		if jr.Result != nil {
			jo.Verified = jr.Result.Verified
			jo.SimMS = float64(jr.Result.SimDuration) / float64(time.Millisecond)
		}
		if jr.Err != nil {
			jo.Error = jr.Err.Error()
		}
		out.Jobs = append(out.Jobs, jo)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&out)
}
