// Command mobilesimd serves the simulator over HTTP: it boots one
// platform, captures a warm snapshot, and executes registered workloads
// on copy-on-write forked sessions drawn from warm pools — so each
// request gets a private, fully booted guest in microseconds instead of a
// cold boot. It is also the per-host executor of the cluster protocol
// (DESIGN.md §11): a coordinator (cmd/mobilesimctl, or Batch.Hosts)
// installs snapshots and fans jobs out over many mobilesimd processes.
//
// Usage:
//
//	mobilesimd [-addr :8900] [-pool N] [-pool-max N] [-ram MiB] [-cores N] [-threads N] [-compiler VER] [-engine warp|jit|interp]
//
// With -pool-max > -pool, pools autoscale: the warm target follows the
// request arrival rate (×observed fork latency, with headroom) between
// the two bounds, decaying back to -pool when traffic goes idle.
//
// Endpoints:
//
//	GET  /healthz          — liveness + pool state
//	GET  /api/v1/workloads — the workload registry
//	POST /api/v1/snapshot  — install an encoded snapshot into a warm pool
//	                         (content-addressed; idempotent)
//	POST /api/v1/run       — run one workload, e.g.
//	                         {"workload": "BFS", "scale": 4}; optional
//	                         "snapshot" ref and "idempotency_key"
//	GET  /api/v1/stats     — server counters: pool hits/inline forks,
//	                         per-workload run counts, dedup hits, latency
//	                         percentiles
//	GET  /metrics          — the same counters and latency summaries in
//	                         Prometheus text exposition format
//
// A run executes through the session command queue with the request's
// context: closing the connection (or exceeding timeout_ms) soft-stops
// the kernel at a clause boundary and the fork is discarded. Responses
// carry the per-run statistics delta as JSON. The serving logic lives in
// internal/hostd; this wrapper only parses flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"mobilesim"
	"mobilesim/internal/hostd"
)

func main() {
	addr := flag.String("addr", ":8900", "HTTP listen address")
	pool := flag.Int("pool", 4, "warm forked sessions kept ready per pool")
	poolMax := flag.Int("pool-max", 0, "autoscale warm sessions up to this bound under load (0 = fixed -pool size)")
	ram := flag.Int("ram", 512, "guest RAM in MiB")
	cores := flag.Int("cores", 8, "simulated shader cores")
	threads := flag.Int("threads", 8, "GPU simulation host threads")
	compiler := flag.String("compiler", "", "JIT compiler version (5.6..6.2, default 6.1)")
	engine := flag.String("engine", "", "shader execution engine: warp (default), jit or interp")
	jit := flag.Bool("jit", false, "use closure-JIT shader execution (shorthand for -engine jit)")
	maxSnaps := flag.Int("max-snapshots", 8, "installed snapshots kept before FIFO eviction")
	flag.Parse()

	cfg := hostd.Config{
		Sim: mobilesim.Config{
			RAMSize:         uint64(*ram) << 20,
			ShaderCores:     *cores,
			HostThreads:     *threads,
			CompilerVersion: *compiler,
			GPUEngine:       *engine,
			JITClauses:      *jit,
		},
		PoolSize:     *pool,
		PoolMaxSize:  *poolMax,
		MaxSnapshots: *maxSnaps,
	}
	srv, err := hostd.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilesimd:", err)
		os.Exit(1)
	}
	defer srv.Close()

	hs := &http.Server{Addr: *addr, Handler: srv.Mux()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		sd, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(sd)
	}()

	log.Printf("mobilesimd: serving on %s (pool %d, %d MiB guests, %d SCs / %d host threads)",
		*addr, *pool, *ram, *cores, *threads)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mobilesimd:", err)
		os.Exit(1)
	}
}
