// Command mobilesimd serves the simulator over HTTP: it boots one
// platform, captures a warm snapshot, and executes registered workloads
// on copy-on-write forked sessions drawn from a warm pool — so each
// request gets a private, fully booted guest in microseconds instead of a
// cold boot.
//
// Usage:
//
//	mobilesimd [-addr :8900] [-pool N] [-ram MiB] [-cores N] [-threads N] [-compiler VER] [-engine warp|jit|interp]
//
// Endpoints:
//
//	GET  /healthz          — liveness + pool state
//	GET  /api/v1/workloads — the workload registry
//	POST /api/v1/run       — run one workload, e.g.
//	                         {"workload": "BFS", "scale": 4}
//	GET  /api/v1/stats     — server counters
//
// A run executes through the session command queue with the request's
// context: closing the connection (or exceeding timeout_ms) soft-stops
// the kernel at a clause boundary and the fork is discarded. Responses
// carry the per-run statistics delta as JSON.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	"mobilesim"
)

func main() {
	addr := flag.String("addr", ":8900", "HTTP listen address")
	pool := flag.Int("pool", 4, "warm forked sessions kept ready")
	ram := flag.Int("ram", 512, "guest RAM in MiB")
	cores := flag.Int("cores", 8, "simulated shader cores")
	threads := flag.Int("threads", 8, "GPU simulation host threads")
	compiler := flag.String("compiler", "", "JIT compiler version (5.6..6.2, default 6.1)")
	engine := flag.String("engine", "", "shader execution engine: warp (default), jit or interp")
	jit := flag.Bool("jit", false, "use closure-JIT shader execution (shorthand for -engine jit)")
	flag.Parse()

	cfg := mobilesim.Config{
		RAMSize:         uint64(*ram) << 20,
		ShaderCores:     *cores,
		HostThreads:     *threads,
		CompilerVersion: *compiler,
		GPUEngine:       *engine,
		JITClauses:      *jit,
	}
	srv, err := newServer(cfg, *pool)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilesimd:", err)
		os.Exit(1)
	}
	defer srv.pool.Close()

	hs := &http.Server{Addr: *addr, Handler: srv.mux()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		sd, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(sd)
	}()

	log.Printf("mobilesimd: serving on %s (pool %d, %d MiB guests, %d SCs / %d host threads)",
		*addr, *pool, *ram, *cores, *threads)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mobilesimd:", err)
		os.Exit(1)
	}
}

// server holds the warm pool and the request counters.
type server struct {
	cfg   mobilesim.Config
	pool  *mobilesim.SessionPool
	start time.Time

	requests atomic.Uint64
	failures atomic.Uint64
}

// newServer boots the reference platform once, captures the warm
// snapshot and builds the session pool.
func newServer(cfg mobilesim.Config, poolSize int) (*server, error) {
	warm, err := mobilesim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("boot: %w", err)
	}
	snap, err := warm.Snapshot()
	warm.Close()
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	pool, err := mobilesim.NewSessionPool(snap, poolSize, mobilesim.Config{})
	if err != nil {
		return nil, fmt.Errorf("pool: %w", err)
	}
	return &server{cfg: cfg, pool: pool, start: time.Now()}, nil
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/healthz", s.handleHealth)
	m.HandleFunc("/api/v1/workloads", s.handleWorkloads)
	m.HandleFunc("/api/v1/run", s.handleRun)
	m.HandleFunc("/api/v1/stats", s.handleStats)
	return m
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"warm":   s.pool.Warm(),
		"forked": s.pool.Forked(),
	})
}

// workloadInfo is the registry entry shape served to clients.
type workloadInfo struct {
	Name         string `json:"name"`
	Kind         string `json:"kind"`
	Suite        string `json:"suite,omitempty"`
	Description  string `json:"description,omitempty"`
	SmallScale   int    `json:"small_scale,omitempty"`
	DefaultScale int    `json:"default_scale,omitempty"`
	PaperScale   int    `json:"paper_scale,omitempty"`
}

func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []workloadInfo
	for _, wi := range mobilesim.Workloads() {
		out = append(out, workloadInfo{
			Name: wi.Name, Kind: string(wi.Kind), Suite: wi.Suite, Description: wi.Description,
			SmallScale: wi.SmallScale, DefaultScale: wi.DefaultScale, PaperScale: wi.PaperScale,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}

// runRequest is the POST /api/v1/run body.
type runRequest struct {
	Workload string `json:"workload"`
	Scale    int    `json:"scale"`
	// Verify checks the simulated output against the host-native
	// reference (default true; explicitly false to skip).
	Verify *bool `json:"verify"`
	// TimeoutMS bounds the run; an expired timeout soft-stops the kernel
	// at a clause boundary.
	TimeoutMS int `json:"timeout_ms"`
}

// runResponse is the result of one run: outcome, timings and the per-run
// statistics delta.
type runResponse struct {
	Workload    string `json:"workload"`
	Kind        string `json:"kind"`
	Scale       int    `json:"scale"`
	Verified    bool   `json:"verified"`
	VerifyError string `json:"verify_error,omitempty"`

	SimMS    float64 `json:"sim_ms"`
	NativeMS float64 `json:"native_ms,omitempty"`
	WallMS   float64 `json:"wall_ms"`

	Stats struct {
		GPU               mobilesim.GPUStats    `json:"gpu"`
		System            mobilesim.SystemStats `json:"system"`
		DriverCPUMS       float64               `json:"driver_cpu_ms"`
		GuestInstructions uint64                `json:"guest_instructions"`
	} `json:"stats"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Workload == "" {
		writeError(w, http.StatusBadRequest, errors.New(`missing "workload"`))
		return
	}
	// Resolve the name before taking a fork from the pool: a typo should
	// cost a map lookup and a 404 with suggestions, not a session.
	if _, err := mobilesim.Lookup(req.Workload); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	s.requests.Add(1)

	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	sess, err := s.pool.Get(ctx)
	if err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	// Forks are single-use: the request's writes stay in its private
	// copy, which is discarded here, and the next request gets a pristine
	// fork of the same snapshot.
	defer sess.Close()

	opts := []mobilesim.RunOption{mobilesim.WithScale(req.Scale)}
	if req.Verify != nil {
		opts = append(opts, mobilesim.WithVerify(*req.Verify))
	}
	res, err := sess.Run(ctx, req.Workload, opts...)
	if err != nil {
		s.failures.Add(1)
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusRequestTimeout
		}
		writeError(w, status, err)
		return
	}

	var resp runResponse
	resp.Workload = res.Workload
	resp.Kind = string(res.Kind)
	resp.Scale = res.Scale
	resp.Verified = res.Verified
	if res.VerifyErr != nil {
		resp.VerifyError = res.VerifyErr.Error()
	}
	resp.SimMS = float64(res.SimDuration) / float64(time.Millisecond)
	resp.NativeMS = float64(res.NativeDuration) / float64(time.Millisecond)
	resp.WallMS = float64(res.Wall) / float64(time.Millisecond)
	//simlint:allow statscommit -- serialization copy into the RPC response, not live bookkeeping
	resp.Stats.GPU = res.Stats.GPU
	//simlint:allow statscommit -- serialization copy into the RPC response, not live bookkeeping
	resp.Stats.System = res.Stats.System
	resp.Stats.DriverCPUMS = float64(res.Stats.DriverCPUTime) / float64(time.Millisecond)
	resp.Stats.GuestInstructions = res.Stats.GuestInstructions
	writeJSON(w, http.StatusOK, &resp)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s":      time.Since(s.start).Seconds(),
		"requests":      s.requests.Load(),
		"failures":      s.failures.Load(),
		"pool_warm":     s.pool.Warm(),
		"pool_forked":   s.pool.Forked(),
		"workloads":     len(mobilesim.Workloads()),
		"guest_ram_mib": s.cfg.RAMSize >> 20,
	})
}
