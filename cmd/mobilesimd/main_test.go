package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mobilesim"
)

// testServer boots one small server per test binary run; the warm
// snapshot makes per-test forks cheap.
func testServer(t *testing.T) *server {
	t.Helper()
	srv, err := newServer(mobilesim.Config{RAMSize: 128 << 20, HostThreads: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.pool.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	srv.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Status != "ok" {
		t.Fatalf("bad health body %q (%v)", rec.Body, err)
	}
}

func TestWorkloadsListed(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	srv.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/workloads", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		Workloads []workloadInfo `json:"workloads"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Workloads) != len(mobilesim.Workloads()) {
		t.Fatalf("listed %d workloads, registry has %d", len(body.Workloads), len(mobilesim.Workloads()))
	}
}

func TestRunBFSVerified(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/api/v1/run",
		strings.NewReader(`{"workload": "BFS", "scale": 4}`))
	srv.mux().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp runResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Verified {
		t.Fatalf("run not verified: %s", rec.Body)
	}
	if resp.Stats.System.ComputeJobs == 0 || resp.Stats.GPU.TotalInstr() == 0 {
		t.Fatalf("empty stats delta: %s", rec.Body)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/api/v1/run",
		strings.NewReader(`{"workload": "BFSS"}`))
	srv.mux().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "BFS") {
		t.Fatalf("no suggestion in error: %s", rec.Body)
	}
}

func TestRunMethodAndBodyErrors(t *testing.T) {
	srv := testServer(t)

	rec := httptest.NewRecorder()
	srv.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/run", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET run: status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	srv.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/run", strings.NewReader(`{`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	srv.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/run", strings.NewReader(`{}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing workload: status %d", rec.Code)
	}
}

func TestServerStats(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/api/v1/run",
		strings.NewReader(`{"workload": "MatrixTranspose"}`))
	srv.mux().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("run: status %d: %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	srv.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/stats", nil))
	var body struct {
		Requests uint64 `json:"requests"`
		Failures uint64 `json:"failures"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Requests != 1 || body.Failures != 0 {
		t.Fatalf("requests=%d failures=%d, want 1/0", body.Requests, body.Failures)
	}
}
