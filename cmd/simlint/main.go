// Command simlint machine-checks the simulator's invariant contracts
// (DESIGN.md §10): the race-clean guest memory model (sharedmem), the
// exact-counter contract (statscommit), context plumbing (ctxflow) and
// the zero-alloc hot-path pins (hotalloc escape gate).
//
// Usage:
//
//	simlint [flags] [package patterns]
//
// With no patterns it checks ./... of the enclosing module plus the
// hotalloc manifest. Exit status is non-zero when any unannotated
// finding remains. Run it from anywhere inside the module.
//
// Flags:
//
//	-run list    comma-separated analyzers to run (default "all";
//	             names: sharedmem, statscommit, ctxflow, hotalloc)
//	-manifest p  hotalloc manifest path (default
//	             internal/analysis/hotalloc/manifest.txt under the
//	             module root)
//	-v           also list suppressed (annotated) findings
//
// The binary also speaks enough of the `go vet -vettool` protocol
// (-V=full, -flags, unit .cfg files) to run as a vet tool on toolchains
// whose vet driver supplies export data; the standalone mode above is
// the canonical entry point and the one CI gates on.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"mobilesim/internal/analysis"
	"mobilesim/internal/analysis/hotalloc"
)

func main() {
	// go vet -vettool protocol: version/flag queries and unit cfg files.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			fmt.Printf("simlint version 1 (stdlib analysis suite)\n")
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(vetUnit(os.Args[1]))
		}
	}

	var (
		runList  = flag.String("run", "all", "comma-separated analyzers to run (sharedmem,statscommit,ctxflow,hotalloc)")
		manifest = flag.String("manifest", "", "hotalloc manifest path (default <module>/internal/analysis/hotalloc/manifest.txt)")
		verbose  = flag.Bool("v", false, "also list suppressed (annotated) findings")
	)
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	selected := make(map[string]bool)
	if *runList == "all" || *runList == "" {
		for _, n := range analysis.AnalyzerNames() {
			selected[n] = true
		}
	} else {
		known := make(map[string]bool)
		for _, n := range analysis.AnalyzerNames() {
			known[n] = true
		}
		for _, n := range strings.Split(*runList, ",") {
			n = strings.TrimSpace(n)
			if !known[n] {
				fatal(fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(analysis.AnalyzerNames(), ", ")))
			}
			selected[n] = true
		}
	}

	failed := false

	var analyzers []*analysis.Analyzer
	for _, a := range analysis.Analyzers() {
		if selected[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) > 0 {
		fset := token.NewFileSet()
		pkgs, err := analysis.LoadPatterns(fset, root, flag.Args()...)
		if err != nil {
			fatal(err)
		}
		diags, err := analysis.Check(fset, pkgs, analyzers)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			if d.Suppressed {
				if *verbose {
					fmt.Printf("%s (suppressed: %s)\n", d, d.Reason)
				}
				continue
			}
			fmt.Println(d)
			failed = true
		}
	}

	if selected["hotalloc"] {
		path := *manifest
		if path == "" {
			path = filepath.Join(root, "internal", "analysis", "hotalloc", "manifest.txt")
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		entries, err := hotalloc.ParseManifest(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		violations, err := hotalloc.Check(root, entries)
		if err != nil {
			fatal(err)
		}
		for _, v := range violations {
			fmt.Printf("%s: hotalloc: %s\n", v.Pos, v.Msg+" [pinned by \""+v.Entry.String()+"\"]")
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}

// moduleRoot locates the enclosing module's root directory.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("simlint must run inside a Go module")
	}
	return filepath.Dir(gomod), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	os.Exit(1)
}
