package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"

	"mobilesim/internal/analysis"
)

// vetConfig mirrors the unit-checker configuration file the go vet
// driver writes for -vettool tools (one JSON file per package unit).
// Only the fields simlint consumes are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one vet unit described by a .cfg file and returns
// the process exit code: 0 clean, 2 findings, 1 operational error. The
// AST analyzers run with dependencies resolved from the export data
// the driver supplies; the hotalloc gate (a whole-build check) only
// runs in standalone mode.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// simlint exports no facts, but the driver expects the output file.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	p := &analysis.Package{Dir: cfg.Dir, ImportPath: cfg.ImportPath}
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
		p.Files = append(p.Files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if c, ok := cfg.ImportMap[path]; ok {
			path = c
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	diags, err := analysis.CheckPackage(fset, imp, p, analysis.Analyzers())
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	exit := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		fmt.Fprintln(os.Stderr, d)
		exit = 2
	}
	return exit
}
