// Command mobilesim runs one benchmark on the full simulated CPU/GPU
// platform and prints its execution and system statistics — the
// simulator's day-to-day workload-characterisation workflow.
//
// Usage:
//
//	mobilesim [-scale N] [-threads N] [-cores N] [-compiler VER] [-cfg] [-list] <benchmark>
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"mobilesim/internal/cl"
	"mobilesim/internal/gpu"
	"mobilesim/internal/platform"
	"mobilesim/internal/workloads"
)

func main() {
	scale := flag.Int("scale", 0, "input scale (0 = benchmark default)")
	threads := flag.Int("threads", 8, "GPU simulation host threads")
	cores := flag.Int("cores", 8, "simulated shader cores")
	compiler := flag.String("compiler", "", "JIT compiler version (5.6..6.2, default 6.1)")
	cfg := flag.Bool("cfg", false, "collect and print the divergence CFG")
	jit := flag.Bool("jit", false, "use closure-JIT shader execution")
	list := flag.Bool("list", false, "list available benchmarks")
	flag.Parse()

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "name\tsuite\tpaper input")
		for _, s := range workloads.All() {
			fmt.Fprintf(tw, "%s\t%s\t%s\n", s.Name, s.Suite, s.PaperInput)
		}
		tw.Flush()
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mobilesim [flags] <benchmark>   (see -list)")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *scale, *threads, *cores, *compiler, *cfg, *jit); err != nil {
		fmt.Fprintln(os.Stderr, "mobilesim:", err)
		os.Exit(1)
	}
}

func run(name string, scale, threads, cores int, compiler string, collectCFG, jit bool) error {
	spec, err := workloads.ByName(name)
	if err != nil {
		return err
	}
	if scale == 0 {
		scale = spec.DefaultScale
	}
	gcfg := gpu.Config{ShaderCores: cores, HostThreads: threads,
		DecodeCache: true, CollectCFG: collectCFG, JITClauses: jit}
	p, err := platform.New(platform.Config{RAMSize: 1 << 30, GPU: gcfg})
	if err != nil {
		return err
	}
	defer p.Close()
	ctx, err := cl.NewContext(p, compiler)
	if err != nil {
		return err
	}

	fmt.Printf("%s (%s, paper input: %s), scale %d, %d SCs on %d host threads\n",
		spec.Name, spec.Suite, spec.PaperInput, scale, cores, threads)

	inst := spec.Make(scale)
	t0 := time.Now()
	res, err := inst.Run(ctx, spec.Name)
	if err != nil {
		return err
	}
	wall := time.Since(t0)
	if !res.Verified {
		return fmt.Errorf("verification FAILED: %v", res.VerifyErr)
	}

	gs, sys := p.GPU.Stats()
	a, ls, nop, cf := gs.MixFractions()
	da := gs.DataAccessFractions()
	min, q1, med, q3, max := gs.ClauseSizeQuartiles()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "verified\tyes (vs host-native reference)\n")
	fmt.Fprintf(tw, "sim time\t%v (native %v, slowdown %.0fx)\n",
		res.SimDuration.Round(time.Millisecond), res.NativeDuration,
		float64(res.SimDuration)/float64(maxDur(res.NativeDuration, 1)))
	fmt.Fprintf(tw, "wall time\t%v\n", wall.Round(time.Millisecond))
	fmt.Fprintf(tw, "driver CPU time\t%v (%d guest instructions)\n",
		ctx.Drv.CPUTime.Round(time.Millisecond), p.CPUs[0].Instret)
	fmt.Fprintf(tw, "compute jobs\t%d (kernel launches %d)\n", sys.ComputeJobs, sys.KernelLaunch)
	fmt.Fprintf(tw, "threads / warps / workgroups\t%d / %d / %d\n", gs.Threads, gs.Warps, gs.Workgroups)
	fmt.Fprintf(tw, "instructions\t%d (arith %.1f%%, LS %.1f%%, nop %.1f%%, CF %.1f%%)\n",
		gs.TotalInstr(), 100*a, 100*ls, 100*nop, 100*cf)
	fmt.Fprintf(tw, "data accesses\ttemp %.1f%%, GRF r %.1f%%, GRF w %.1f%%, const %.1f%%, ROM %.1f%%, mem %.1f%%\n",
		100*da[0], 100*da[1], 100*da[2], 100*da[3], 100*da[4], 100*da[5])
	fmt.Fprintf(tw, "clauses\t%d executed, sizes min/q1/med/q3/max = %.0f/%.0f/%.0f/%.0f/%.0f\n",
		gs.ClausesExec, min, q1, med, q3, max)
	fmt.Fprintf(tw, "divergence\t%d of %d branches split a warp\n", gs.DivergentBranches, gs.Branches)
	fmt.Fprintf(tw, "registers\t%d GRF\n", gs.RegistersUsed)
	fmt.Fprintf(tw, "system\tpages %d, ctrl reads %d, ctrl writes %d, IRQs %d\n",
		sys.PagesAccessed, sys.CtrlRegReads, sys.CtrlRegWrites, sys.IRQsAsserted)
	tw.Flush()

	if collectCFG {
		fmt.Println("\ncontrol-flow graph (clause addresses, thread proportions):")
		fmt.Print(p.GPU.CFGGraph().Render())
	}
	return nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
