// Command mobilesim runs workloads on the full simulated CPU/GPU
// platform and prints their execution and system statistics — the
// simulator's day-to-day workload-characterisation workflow.
//
// Usage:
//
//	mobilesim [-scale N] [-ram MiB] [-threads N] [-cores N] [-compiler VER] [-cfg] [-timeout D] [-workers N] [-list] <workload>...
//
// A workload is any registered name (see -list): a Table II benchmark, a
// SLAMBench preset (slam/standard), a SGEMM ladder rung (sgemm6/naive)
// or a paper experiment (fig7). With more than one workload (or
// -workers > 1) the runs execute as a concurrent batch, one fresh
// session per workload, and an aggregate summary is printed at the end.
//
// Ctrl-C — or an elapsed -timeout — cancels mid-run: the executing
// kernel is soft-stopped at a clause boundary and interrupted jobs are
// reported as such.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"text/tabwriter"
	"time"

	"mobilesim"
)

func main() {
	scale := flag.Int("scale", 0, "input scale (0 = workload default)")
	ram := flag.Int("ram", 1024, "guest RAM in MiB")
	threads := flag.Int("threads", 8, "GPU simulation host threads")
	cores := flag.Int("cores", 8, "simulated shader cores")
	compiler := flag.String("compiler", "", "JIT compiler version (5.6..6.2, default 6.1)")
	cfg := flag.Bool("cfg", false, "collect and print the divergence CFG")
	engine := flag.String("engine", "", "shader execution engine: warp (default), jit or interp")
	jit := flag.Bool("jit", false, "use closure-JIT shader execution (shorthand for -engine jit)")
	workers := flag.Int("workers", 0, "concurrent sessions for multi-workload runs (0 = one per CPU)")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = none); running kernels are interrupted at a clause boundary")
	list := flag.Bool("list", false, "list registered workloads")
	flag.Parse()

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "name\tkind\tsuite\tdescription")
		for _, w := range mobilesim.Workloads() {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", w.Name, w.Kind, w.Suite, w.Description)
		}
		tw.Flush()
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mobilesim [flags] <workload>...   (see -list)")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	conf := mobilesim.Config{
		RAMSize:         uint64(*ram) << 20,
		ShaderCores:     *cores,
		HostThreads:     *threads,
		CompilerVersion: *compiler,
		CollectCFG:      *cfg,
		GPUEngine:       *engine,
		JITClauses:      *jit,
	}
	var err error
	if flag.NArg() == 1 && *workers <= 1 {
		err = runOne(ctx, flag.Arg(0), *scale, conf)
	} else {
		err = runBatch(ctx, flag.Args(), *scale, *workers, conf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mobilesim:", err)
		os.Exit(1)
	}
}

// runOne runs a single workload and prints the full statistics table.
func runOne(ctx context.Context, name string, scale int, conf mobilesim.Config) error {
	sess, err := mobilesim.New(conf)
	if err != nil {
		return err
	}
	defer sess.Close()

	res, err := sess.Run(ctx, name,
		mobilesim.WithScale(scale), mobilesim.WithOutput(os.Stdout))
	if err != nil {
		return err
	}
	if res.VerifyErr != nil {
		return fmt.Errorf("verification FAILED: %v", res.VerifyErr)
	}

	fmt.Printf("%s (%s), scale %d, %d SCs on %d host threads\n",
		res.Workload, res.Kind, res.Scale, conf.ShaderCores, conf.HostThreads)
	printStats(res)

	if conf.CollectCFG {
		fmt.Println("\ncontrol-flow graph (clause addresses, thread proportions):")
		fmt.Print(sess.CFG())
	}
	return nil
}

// printStats renders one run's statistics table (per-run deltas).
func printStats(res *mobilesim.RunResult) {
	gs, sys := res.Stats.GPU, res.Stats.System
	a, ls, nop, cf := gs.MixFractions()
	da := gs.DataAccessFractions()
	min, q1, med, q3, max := gs.ClauseSizeQuartiles()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if res.Verified {
		fmt.Fprintf(tw, "verified\tyes (vs host-native reference)\n")
	}
	fmt.Fprintf(tw, "sim time\t%v (native %v, slowdown %.0fx)\n",
		res.SimDuration.Round(time.Millisecond), res.NativeDuration,
		float64(res.SimDuration)/float64(maxDur(res.NativeDuration, 1)))
	fmt.Fprintf(tw, "wall time\t%v\n", res.Wall.Round(time.Millisecond))
	fmt.Fprintf(tw, "driver CPU time\t%v (%d guest instructions)\n",
		res.Stats.DriverCPUTime.Round(time.Millisecond), res.Stats.GuestInstructions)
	fmt.Fprintf(tw, "compute jobs\t%d (kernel launches %d)\n", sys.ComputeJobs, sys.KernelLaunch)
	fmt.Fprintf(tw, "threads / warps / workgroups\t%d / %d / %d\n", gs.Threads, gs.Warps, gs.Workgroups)
	fmt.Fprintf(tw, "instructions\t%d (arith %.1f%%, LS %.1f%%, nop %.1f%%, CF %.1f%%)\n",
		gs.TotalInstr(), 100*a, 100*ls, 100*nop, 100*cf)
	fmt.Fprintf(tw, "data accesses\ttemp %.1f%%, GRF r %.1f%%, GRF w %.1f%%, const %.1f%%, ROM %.1f%%, mem %.1f%%\n",
		100*da[0], 100*da[1], 100*da[2], 100*da[3], 100*da[4], 100*da[5])
	fmt.Fprintf(tw, "clauses\t%d executed, sizes min/q1/med/q3/max = %.0f/%.0f/%.0f/%.0f/%.0f\n",
		gs.ClausesExec, min, q1, med, q3, max)
	fmt.Fprintf(tw, "divergence\t%d of %d branches split a warp\n", gs.DivergentBranches, gs.Branches)
	fmt.Fprintf(tw, "registers\t%d GRF\n", gs.RegistersUsed)
	fmt.Fprintf(tw, "system\tpages %d, ctrl reads %d, ctrl writes %d, IRQs %d\n",
		sys.PagesAccessed, sys.CtrlRegReads, sys.CtrlRegWrites, sys.IRQsAsserted)
	fmt.Fprintf(tw, "modelled cost\tMali-G71 %.3g cycles, K20m %.3g cycles (relative ranking units)\n",
		res.Modeled.MobileCycles, res.Modeled.DesktopCycles)
	tw.Flush()
}

// runBatch runs several workloads concurrently through the Batch API and
// prints one summary row per run plus the aggregate.
func runBatch(ctx context.Context, names []string, scale, workers int, conf mobilesim.Config) error {
	jobs := make([]mobilesim.BatchJob, len(names))
	for i, n := range names {
		jobs[i] = mobilesim.BatchJob{Benchmark: n, Scale: scale}
	}
	batch := &mobilesim.Batch{Jobs: jobs, Workers: workers, Config: conf}
	res, runErr := batch.Run(ctx)
	if res == nil {
		return runErr
	}
	// On cancellation, still report what completed before the interrupt.

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tstatus\tsim time\tGPU instr\tjobs\tIRQs")
	for _, jr := range res.Jobs {
		switch {
		case jr.Interrupted:
			fmt.Fprintf(tw, "%s\tinterrupted mid-run (%v)\t\t\t\t\n", jr.Job.Benchmark, jr.Err)
		case jr.Result == nil && ctx.Err() != nil && errors.Is(jr.Err, ctx.Err()):
			fmt.Fprintf(tw, "%s\tskipped (%v)\t\t\t\t\n", jr.Job.Benchmark, jr.Err)
		case jr.Err != nil:
			fmt.Fprintf(tw, "%s\tFAILED: %v\t\t\t\t\n", jr.Job.Benchmark, jr.Err)
		default:
			r := jr.Result
			fmt.Fprintf(tw, "%s\tok\t%v\t%d\t%d\t%d\n", r.Workload,
				r.SimDuration.Round(time.Millisecond), r.Stats.GPU.TotalInstr(),
				r.Stats.System.ComputeJobs, r.Stats.System.IRQsAsserted)
		}
	}
	tw.Flush()

	agg := res.Aggregate
	fmt.Printf("\nbatch: %d ok, %d failed, %d interrupted, %d skipped in %v\n",
		res.Completed, res.Failed, res.Interrupted, res.Skipped, res.Wall.Round(time.Millisecond))
	fmt.Printf("aggregate: %d GPU instructions, %d compute jobs, %d guest instructions, driver CPU %v\n",
		agg.GPU.TotalInstr(), agg.System.ComputeJobs, agg.GuestInstructions,
		agg.DriverCPUTime.Round(time.Millisecond))
	if runErr != nil {
		return runErr
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d of %d workloads failed", res.Failed, len(res.Jobs))
	}
	return nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
