// Command benchjson converts `go test -bench` output on stdin into the
// repository's bench-trajectory JSON format on stdout:
//
//	{
//	  "goos": "linux", "goarch": "amd64", "cpu": "...",
//	  "benchmarks": {
//	    "Fig12DataAccess": {"ns_per_op": 123, "allocs_per_op": 4, "bytes_per_op": 5}
//	  }
//	}
//
// Benchmark names are stripped of the "Benchmark" prefix and the -N
// GOMAXPROCS suffix. Sub-benchmarks keep their slash-separated path. Used
// by scripts/bench.sh to snapshot BENCH_<pr>.json files so each PR's perf
// numbers are comparable with its predecessors (see EXPERIMENTS.md).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line's parsed measurements.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

type report struct {
	GOOS       string             `json:"goos,omitempty"`
	GOARCH     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks map[string]*result `json:"benchmarks"`
}

func main() {
	rep := report{Benchmarks: map[string]*result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		rep.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	// json.Marshal sorts map keys, so snapshots diff cleanly between PRs.
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkFig15SGEMM/Naive-8   3   9841694 ns/op   868197 B/op   741 allocs/op
func parseBenchLine(line string) (string, *result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", nil, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix (digits only).
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", nil, false
	}
	res := &result{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				res.NsPerOp = v
				seen = true
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.AllocsPerOp = v
			}
		}
	}
	return name, res, seen
}
