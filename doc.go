// Package mobilesim is a full-system functional simulator for a mobile
// CPU/GPU platform, reproducing "Full-System Simulation of Mobile CPU/GPU
// Platforms" (Kaszyk et al., ISPASS 2019) as a self-contained Go library.
//
// The simulated system couples a VA64 (Arm-flavoured) CPU with DBT-based
// execution, a Bifrost-style clause-ISA GPU with a Job Manager and full
// GPU MMU, platform devices, a kbase-style kernel driver, an OpenCL-like
// runtime and a JIT kernel compiler — so unmodified "guest" compute
// workloads run through the same hardware/software contract as on a
// physical Mali-G71 device.
//
// # Sessions
//
// A Session is one booted guest: platform, driver and OpenCL-like
// context. Load kernels, create buffers and launch NDRanges through it:
//
//	sess, err := mobilesim.New(mobilesim.Config{})
//	defer sess.Close()
//	k, err := sess.LoadKernel(src, "axpb")
//	err = k.SetArgs(bufX, bufY, float32(2), float32(1), n)
//	err = k.Launch(mobilesim.Dim1(n), mobilesim.Dim1(64))
//	st := sess.Stats()
//
// Session.Run executes a registered paper benchmark (see Benchmarks) and
// verifies the simulated output against a host-native reference.
//
// # Batches
//
// A Batch runs N independent simulations across a bounded worker pool —
// one fresh Session per job, nothing shared between jobs — and merges
// their statistics:
//
//	batch := &mobilesim.Batch{Jobs: jobs, Workers: 4}
//	res, err := batch.Run(ctx)
//
// # Documentation
//
// See README.md for the architecture overview and quickstart, DESIGN.md
// for the system inventory and design-decision index, and EXPERIMENTS.md
// for how each table and figure of the paper's evaluation is regenerated.
// The bench_test.go harness regenerates every experiment as a testing.B
// benchmark; cmd/experiments prints them.
package mobilesim
