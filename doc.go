// Package mobilesim is a full-system functional simulator for a mobile
// CPU/GPU platform, reproducing "Full-System Simulation of Mobile CPU/GPU
// Platforms" (Kaszyk et al., ISPASS 2019) as a self-contained Go library.
//
// The simulated system couples a VA64 (Arm-flavoured) CPU with DBT-based
// execution, a Bifrost-style clause-ISA GPU with a Job Manager and full
// GPU MMU, platform devices, a kbase-style kernel driver, an OpenCL-like
// runtime and a JIT kernel compiler — so unmodified "guest" compute
// workloads run through the same hardware/software contract as on a
// physical Mali-G71 device.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured results. The bench_test.go harness regenerates every
// table and figure of the paper's evaluation; cmd/experiments prints them.
package mobilesim
