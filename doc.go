// Package mobilesim is a full-system functional simulator for a mobile
// CPU/GPU platform, reproducing "Full-System Simulation of Mobile CPU/GPU
// Platforms" (Kaszyk et al., ISPASS 2019) as a self-contained Go library.
//
// The simulated system couples a VA64 (Arm-flavoured) CPU with DBT-based
// execution, a Bifrost-style clause-ISA GPU with a Job Manager and full
// GPU MMU, platform devices, a kbase-style kernel driver, an OpenCL-like
// runtime and a JIT kernel compiler — so unmodified "guest" compute
// workloads run through the same hardware/software contract as on a
// physical Mali-G71 device.
//
// # Sessions
//
// A Session is one booted guest: platform, driver and OpenCL-like
// context. Load kernels, create buffers and launch NDRanges through it:
//
//	sess, err := mobilesim.New(mobilesim.Config{})
//	defer sess.Close()
//	k, err := sess.LoadKernel(src, "axpb")
//	err = k.SetArgs(bufX, bufY, float32(2), float32(1), n)
//	err = k.Launch(ctx, mobilesim.Dim1(n), mobilesim.Dim1(64))
//	st := sess.Stats()
//
// # Workloads
//
// Everything the simulator can run — the Table II benchmark suite, the
// SLAMBench pipeline presets, the SGEMM tuning ladder and the paper's
// evaluation experiments — lives in one Workload registry (Register,
// Lookup, Workloads) and executes through one entry point:
//
//	res, err := sess.Run(ctx, "BFS", mobilesim.WithScale(2048))
//	res, err := sess.Run(ctx, "slam/standard")
//	res, err := sess.Run(ctx, "fig7", mobilesim.WithOutput(os.Stdout))
//
// Functional options select scale, per-run CFG collection, verification
// and statistics scope. RunResult.Stats is the per-run delta (the
// session snapshot diffed around the run); Session.Stats stays
// cumulative. Custom Workload implementations run through the same path
// via RunWorkload / SubmitWorkload.
//
// # Cancellation
//
// Run and Submit honour context cancellation mid-kernel: the driver
// soft-stops the GPU through the job-slot command register and the
// shader cores quiesce at the next clause boundary — the same
// granularity the hardware schedules at — so Run returns ctx.Err()
// promptly and the Session remains usable for subsequent runs.
//
// # The command queue
//
// Submit enqueues a run without waiting, the clEnqueueNDRangeKernel
// model: submissions execute strictly in order, each returning a Pending
// future with Wait and a selectable Done channel:
//
//	p1, _ := sess.Submit(ctx, "BinarySearch")
//	p2, _ := sess.Submit(ctx, "DCT")
//	res1, err := p1.Wait()
//	res2, err := p2.Wait()
//
// Cancelling a submission's context skips it while queued and
// soft-stops it mid-run; Close drains the queue, failing queued entries
// with ErrClosed.
//
// # Snapshots and forking
//
// A booted Session can be captured once and forked many times: Snapshot
// serialises the platform state (guest RAM, MMU, devices, driver,
// runtime) into an immutable image, and New with FromSnapshot builds a
// ready-to-run session from it in microseconds — guest memory is shared
// copy-on-write until the fork writes it, and no boot code re-runs:
//
//	snap, err := sess.Snapshot()
//	fork, err := mobilesim.New(mobilesim.Config{}, mobilesim.FromSnapshot(snap))
//
// Restored sessions reproduce cold-boot statistics bit for bit.
// Snapshots persist via Encode/ReadSnapshot (a versioned, deterministic
// wire format), and SessionPool keeps warm forks ready for serving
// layers (cmd/mobilesimd exposes the pool over HTTP).
//
// # Batches
//
// A Batch runs N independent simulations across a bounded worker pool —
// nothing mutable shared between jobs — and merges their statistics.
// Jobs on the batch-wide configuration fork from one warm snapshot
// (one cold boot per batch, not per job). Batch jobs ride the session
// command queue, so batch cancellation interrupts the executing job
// mid-run (reported as Interrupted) rather than waiting for it to
// finish:
//
//	batch := &mobilesim.Batch{Jobs: jobs, Workers: 4}
//	res, err := batch.Run(ctx)
//
// # Documentation
//
// See README.md for the architecture overview, quickstart and the
// legacy-API migration table, DESIGN.md for the system inventory and
// design-decision index, and EXPERIMENTS.md for how each table and
// figure of the paper's evaluation is regenerated. The bench_test.go
// harness regenerates every experiment as a testing.B benchmark;
// cmd/experiments prints them.
package mobilesim
