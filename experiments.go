package mobilesim

import (
	"fmt"
	"io"

	"mobilesim/internal/experiments"
)

// ExperimentScale selects workload input sizes for the experiment
// harness.
type ExperimentScale string

const (
	// ExperimentScaleSmall is seconds-fast, CI-sized.
	ExperimentScaleSmall ExperimentScale = "small"
	// ExperimentScaleDefault takes minutes, bench-sized.
	ExperimentScaleDefault ExperimentScale = "default"
	// ExperimentScalePaper approximates Table II sizes (can take hours).
	ExperimentScalePaper ExperimentScale = "paper"
)

// ExperimentOptions configures a paper-experiment run.
type ExperimentOptions struct {
	// Scale selects input sizes (default ExperimentScaleDefault).
	Scale ExperimentScale
	// HostThreads overrides GPU simulation threads (0 = default).
	HostThreads int
	// CompilerVersion overrides the JIT version (empty = default).
	CompilerVersion string
}

func (o ExperimentOptions) lower() experiments.Options {
	scale := o.Scale
	if scale == "" {
		scale = ExperimentScaleDefault
	}
	return experiments.Options{
		Scale:           experiments.ScaleKind(scale),
		HostThreads:     o.HostThreads,
		CompilerVersion: o.CompilerVersion,
	}
}

// experimentRunners pairs each experiment name with its harness entry,
// in paper order; Experiments and RunExperiment are both driven by this
// single table.
var experimentRunners = []struct {
	name string
	run  func(io.Writer, experiments.Options) error
}{
	{"fig1", func(w io.Writer, _ experiments.Options) error { _, err := experiments.Fig1(w); return err }},
	{"fig6", func(w io.Writer, o experiments.Options) error { _, err := experiments.Fig6(w, o); return err }},
	{"fig7", func(w io.Writer, o experiments.Options) error { _, err := experiments.Fig7(w, o); return err }},
	{"fig8", func(w io.Writer, o experiments.Options) error { _, err := experiments.Fig8(w, o); return err }},
	{"fig9", func(w io.Writer, o experiments.Options) error { _, err := experiments.Fig9(w, o); return err }},
	{"fig10", func(w io.Writer, o experiments.Options) error { _, err := experiments.Fig10(w, o); return err }},
	{"fig11", func(w io.Writer, o experiments.Options) error { _, err := experiments.Fig11(w, o); return err }},
	{"fig12", func(w io.Writer, o experiments.Options) error { _, err := experiments.Fig12(w, o); return err }},
	{"fig13", func(w io.Writer, o experiments.Options) error { _, err := experiments.Fig13(w, o); return err }},
	{"fig14", func(w io.Writer, o experiments.Options) error { _, err := experiments.Fig14(w, o); return err }},
	{"fig15", func(w io.Writer, o experiments.Options) error { _, err := experiments.Fig15(w, o); return err }},
	{"table2", func(w io.Writer, _ experiments.Options) error { return experiments.Table2(w) }},
	{"table3", func(w io.Writer, o experiments.Options) error { _, err := experiments.Table3(w, o); return err }},
	{"table4", func(w io.Writer, _ experiments.Options) error { return experiments.Table4(w) }},
}

// Experiments lists the reproducible tables and figures of the paper's
// evaluation, in paper order.
func Experiments() []string {
	out := make([]string, len(experimentRunners))
	for i, e := range experimentRunners {
		out[i] = e.name
	}
	return out
}

// RunExperiment regenerates one table or figure of the paper's evaluation
// (see Experiments for names), writing the rendered rows/series to w.
func RunExperiment(w io.Writer, name string, opt ExperimentOptions) error {
	for _, e := range experimentRunners {
		if e.name == name {
			return e.run(w, opt.lower())
		}
	}
	return fmt.Errorf("mobilesim: unknown experiment %q", name)
}
