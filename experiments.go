package mobilesim

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"mobilesim/internal/experiments"
)

// ExperimentScale selects workload input sizes for the experiment
// harness.
type ExperimentScale string

const (
	// ExperimentScaleSmall is seconds-fast, CI-sized.
	ExperimentScaleSmall ExperimentScale = "small"
	// ExperimentScaleDefault takes minutes, bench-sized.
	ExperimentScaleDefault ExperimentScale = "default"
	// ExperimentScalePaper approximates Table II sizes (can take hours).
	ExperimentScalePaper ExperimentScale = "paper"
)

// ExperimentOptions configures a paper-experiment run through the legacy
// RunExperiment entry point.
type ExperimentOptions struct {
	// Scale selects input sizes (default ExperimentScaleDefault).
	Scale ExperimentScale
	// HostThreads overrides GPU simulation threads (0 = default).
	HostThreads int
	// CompilerVersion overrides the JIT version (empty = default).
	CompilerVersion string
}

func (o ExperimentOptions) lower() experiments.Options {
	scale := o.Scale
	if scale == "" {
		scale = ExperimentScaleDefault
	}
	return experiments.Options{
		Scale:           experiments.ScaleKind(scale),
		HostThreads:     o.HostThreads,
		CompilerVersion: o.CompilerVersion,
	}
}

// experimentRunners pairs each experiment name with its harness entry,
// in paper order; the registry entries, Experiments and RunExperiment are
// all driven by this single table.
var experimentRunners = []struct {
	name string
	desc string
	run  func(context.Context, io.Writer, experiments.Options) error
}{
	{"fig1", "compiler-version instruction counts", func(_ context.Context, w io.Writer, _ experiments.Options) error {
		_, err := experiments.Fig1(w)
		return err
	}},
	{"fig6", "BFS divergence CFG", func(ctx context.Context, w io.Writer, o experiments.Options) error {
		_, err := experiments.Fig6(ctx, w, o)
		return err
	}},
	{"fig7", "full-stack slowdown vs native", func(ctx context.Context, w io.Writer, o experiments.Options) error {
		_, err := experiments.Fig7(ctx, w, o)
		return err
	}},
	{"fig8", "host-thread scaling", func(ctx context.Context, w io.Writer, o experiments.Options) error {
		_, err := experiments.Fig8(ctx, w, o)
		return err
	}},
	{"fig9", "driver runtime vs input size", func(ctx context.Context, w io.Writer, o experiments.Options) error {
		_, err := experiments.Fig9(ctx, w, o)
		return err
	}},
	{"fig10", "simulation-rate comparison", func(ctx context.Context, w io.Writer, o experiments.Options) error {
		_, err := experiments.Fig10(ctx, w, o)
		return err
	}},
	{"fig11", "instruction mixes", func(ctx context.Context, w io.Writer, o experiments.Options) error {
		_, err := experiments.Fig11(ctx, w, o)
		return err
	}},
	{"fig12", "data-access breakdowns", func(ctx context.Context, w io.Writer, o experiments.Options) error {
		_, err := experiments.Fig12(ctx, w, o)
		return err
	}},
	{"fig13", "clause-size distributions", func(ctx context.Context, w io.Writer, o experiments.Options) error {
		_, err := experiments.Fig13(ctx, w, o)
		return err
	}},
	{"fig14", "SLAMBench configuration study", func(ctx context.Context, w io.Writer, o experiments.Options) error {
		_, err := experiments.Fig14(ctx, w, o)
		return err
	}},
	{"fig15", "SGEMM tuning-ladder study", func(ctx context.Context, w io.Writer, o experiments.Options) error {
		_, err := experiments.Fig15(ctx, w, o)
		return err
	}},
	{"table2", "benchmark suite inventory", func(_ context.Context, w io.Writer, _ experiments.Options) error { return experiments.Table2(w) }},
	{"table3", "system-interaction statistics", func(ctx context.Context, w io.Writer, o experiments.Options) error {
		_, err := experiments.Table3(ctx, w, o)
		return err
	}},
	{"table4", "simulator feature comparison", func(_ context.Context, w io.Writer, _ experiments.Options) error { return experiments.Table4(w) }},
}

func init() {
	for _, e := range experimentRunners {
		mustRegister(experimentWorkload{name: e.name, desc: e.desc, run: e.run})
	}
}

// experimentWorkload adapts one paper table/figure to the Workload
// contract. Experiments boot their own dedicated platforms; the session
// contributes its configuration (host threads, compiler version) and the
// command-queue slot, and its own device stays idle.
type experimentWorkload struct {
	name string
	desc string
	run  func(context.Context, io.Writer, experiments.Options) error
}

func (e experimentWorkload) Info() WorkloadInfo {
	return WorkloadInfo{
		Name: e.name, Kind: KindExperiment, Suite: "paper",
		Description: e.desc,
	}
}

func (e experimentWorkload) Execute(ctx context.Context, s *Session, opt *RunOptions) (*RunResult, error) {
	eopt := experiments.Options{
		Scale:           experiments.ScaleKind(opt.ExperimentScale),
		HostThreads:     s.Config().HostThreads,
		CompilerVersion: s.Config().CompilerVersion,
	}
	w := opt.Output
	var captured strings.Builder
	if w == nil {
		w = &captured
	}
	t0 := time.Now()
	if err := e.run(ctx, w, eopt); err != nil {
		return nil, err
	}
	return &RunResult{
		Workload: e.name, Benchmark: e.name, Kind: KindExperiment,
		SimDuration: time.Since(t0),
		// Experiments verify every workload they run internally and fail
		// otherwise, so reaching here means verified.
		Verified: true,
		Output:   captured.String(),
	}, nil
}

// Experiments lists the reproducible tables and figures of the paper's
// evaluation, in paper order.
func Experiments() []string {
	out := make([]string, len(experimentRunners))
	for i, e := range experimentRunners {
		out[i] = e.name
	}
	return out
}

// RunExperiment regenerates one table or figure of the paper's evaluation
// (see Experiments for names), writing the rendered rows/series to w.
//
// Deprecated: use Session.Run(ctx, name, WithOutput(w),
// WithExperimentScale(...)) — experiments are registered workloads.
func RunExperiment(w io.Writer, name string, opt ExperimentOptions) error {
	for _, e := range experimentRunners {
		if e.name == name {
			return e.run(context.Background(), w, opt.lower())
		}
	}
	return fmt.Errorf("mobilesim: unknown experiment %q (have %s)",
		name, strings.Join(Experiments(), ", "))
}
