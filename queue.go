package mobilesim

import (
	"context"
	"time"
)

// This file is the session command queue: an in-order, asynchronous
// submission path modelled on clEnqueueNDRangeKernel + cl_event. Submit
// enqueues a workload run and returns immediately with a Pending future;
// runs execute one at a time in submission order on the session's device.
// Cancelling a submission's context skips it while queued and soft-stops
// it mid-run at a kernel clause boundary, leaving the Session usable.

// Pending is one queued or running submission: a future for its result.
type Pending struct {
	workload string
	// done closes when the outcome is available (Wait/Done). released
	// closes when the entry no longer holds its queue slot — for a run
	// that means execution finished; for an entry cancelled while queued
	// it additionally waits for its predecessor, so a cancellation never
	// lets a successor overtake a still-running predecessor.
	done     chan struct{}
	released chan struct{}
	res      *RunResult
	err      error
	// ran records that the workload's Execute actually began (as opposed
	// to the entry being cancelled or refused while queued). Written
	// before done closes; read only after.
	ran bool
	// enqueued is the submission time, the zero point for the run's
	// queue-wait phase (RunResult.QueueWait).
	enqueued time.Time
}

// Workload returns the submitted workload's name.
func (p *Pending) Workload() string { return p.workload }

// Done returns a channel closed when the run completes (successfully,
// with an error, or by cancellation) — the cl_event analogue, selectable
// alongside other channels.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Wait blocks until the run completes and returns its outcome. Wait is
// idempotent and safe for concurrent use. A run cancelled while queued
// or mid-kernel returns the submission context's error; a run refused
// because the session closed returns ErrClosed.
func (p *Pending) Wait() (*RunResult, error) {
	<-p.done
	return p.res, p.err
}

// Started reports whether the workload's execution actually began — it
// distinguishes a submission cancelled mid-run (kernel soft-stopped)
// from one skipped while still queued. It returns false until the
// outcome is available.
func (p *Pending) Started() bool {
	select {
	case <-p.done:
		return p.ran
	default:
		return false
	}
}

// Submit enqueues one run of a registered workload (see Workloads) and
// returns without waiting, like clEnqueueNDRangeKernel: callers may keep
// many runs in flight per session and Wait on each Pending. Runs execute
// strictly in submission order.
//
// ctx governs the one submission: cancelled while queued, the run is
// skipped (its predecessors are unaffected, successors proceed);
// cancelled mid-run, the executing kernel is soft-stopped at the next
// clause boundary and Wait returns ctx.Err() with the session still
// usable. A nil ctx means context.Background().
func (s *Session) Submit(ctx context.Context, ref string, opts ...RunOption) (*Pending, error) {
	w, err := Lookup(ref)
	if err != nil {
		return nil, err
	}
	return s.SubmitWorkload(ctx, w, opts...)
}

// SubmitWorkload is Submit for a Workload value, registered or not —
// custom workloads ride the same queue with the same cancellation
// semantics.
func (s *Session) SubmitWorkload(ctx context.Context, w Workload, opts ...RunOption) (*Pending, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := resolveOptions(opts)
	p := &Pending{
		workload: w.Info().Name,
		done:     make(chan struct{}),
		released: make(chan struct{}),
		enqueued: time.Now(),
	}

	s.qMu.Lock()
	if s.qClosed {
		s.qMu.Unlock()
		return nil, ErrClosed
	}
	prev := s.qTail
	s.qTail = p
	s.qMu.Unlock()

	go func() {
		defer close(p.released)
		// Drop the tail reference once this entry is finished, so an
		// idle session does not retain the last result indefinitely.
		defer func() {
			s.qMu.Lock()
			if s.qTail == p {
				s.qTail = nil
			}
			s.qMu.Unlock()
		}()
		if prev != nil {
			// In-order execution: wait for the predecessor to release
			// the device. Cancellation while queued completes this entry
			// early for Wait, but its slot still propagates in order so
			// a successor can never overtake a running predecessor.
			select {
			case <-prev.released:
			case <-ctx.Done():
				p.err = ctx.Err()
				close(p.done)
				<-prev.released
				return
			case <-s.base.Done():
				p.err = ErrClosed
				close(p.done)
				<-prev.released
				return
			}
		}
		p.res, p.err = s.runWorkload(ctx, w, o, p)
		close(p.done)
	}()
	return p, nil
}

// Run executes one registered workload synchronously: Submit + Wait. It
// returns ctx.Err() promptly when ctx is cancelled mid-run (the kernel is
// interrupted at a clause boundary) and the Session remains usable for
// subsequent runs.
func (s *Session) Run(ctx context.Context, ref string, opts ...RunOption) (*RunResult, error) {
	p, err := s.Submit(ctx, ref, opts...)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}

// RunWorkload is Run for a Workload value, registered or not.
func (s *Session) RunWorkload(ctx context.Context, w Workload, opts ...RunOption) (*RunResult, error) {
	p, err := s.SubmitWorkload(ctx, w, opts...)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}

// runWorkload executes one queue entry: it scopes the run's context to
// the session lifetime, wraps the workload with per-run statistics
// (snapshot-diff) and optional per-run CFG collection, stamps the common
// RunResult fields (phase timings and the modelled cost estimate
// included), and feeds the session's queue-wait/execution histograms.
// p.ran is set once Execute is actually entered (none of the
// queued-cancellation early exits taken).
func (s *Session) runWorkload(ctx context.Context, w Workload, o *RunOptions, p *Pending) (*RunResult, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Closing the session cancels in-flight runs too (mid-kernel, at a
	// clause boundary), so Close never waits for a long chain to drain.
	unhook := context.AfterFunc(s.base, cancel)
	defer unhook()

	fail := func(err error) (*RunResult, error) {
		if ctx.Err() == nil && s.base.Err() != nil {
			return nil, ErrClosed
		}
		return nil, err
	}
	if err := rctx.Err(); err != nil {
		return fail(err)
	}

	dev := s.device()
	if dev == nil {
		return nil, ErrClosed
	}
	restoreCFG := false
	if o.CollectCFG && !dev.CollectingCFG() {
		// Per-run CFG: collect only for this run, starting from a clean
		// graph (session-level collection was off, so nothing is lost).
		dev.ClearCFG()
		dev.SetCollectCFG(true)
		restoreCFG = true
	}

	t0 := time.Now()
	queueWait := t0.Sub(p.enqueued)
	pre := s.Stats()
	p.ran = true
	res, err := w.Execute(rctx, s, o)
	post := s.Stats()
	wall := time.Since(t0)
	// Phase timings are observed for every run that reached execution,
	// failed or cancelled ones included — an operator watching queue-wait
	// percentiles cares about pressure, not verification outcomes.
	s.obsQueueWait.Observe(queueWait)
	s.obsExec.Observe(wall)
	if restoreCFG {
		dev.SetCollectCFG(false)
	}
	if err != nil {
		return fail(err)
	}

	res.Wall = wall
	res.QueueWait = queueWait
	info := w.Info()
	res.Kind = info.Kind
	if res.Workload == "" {
		res.Workload = info.Name
	}
	if res.Benchmark == "" {
		res.Benchmark = res.Workload
	}
	delta := post.sub(pre)
	res.Modeled = modeledCost(&delta, w)
	switch o.StatsScope {
	case StatsSession:
		res.Stats = post
	default:
		res.Stats = delta
	}
	if o.CollectCFG {
		res.CFG = dev.CFGGraph().Render()
	}
	return res, nil
}
