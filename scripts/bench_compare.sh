#!/usr/bin/env bash
# bench_compare.sh — diff two bench-trajectory snapshots (BENCH_<pr>.json,
# see EXPERIMENTS.md) and report per-benchmark ns/op movement. Usage:
#
#   scripts/bench_compare.sh                      # newest two BENCH_*.json
#   scripts/bench_compare.sh BENCH_6.json BENCH_7.json
#   THRESHOLD_PCT=15 scripts/bench_compare.sh     # custom regression gate
#
# Exit status: 0 when no benchmark regressed beyond THRESHOLD_PCT (default
# 10%), 1 on a threshold breach. CI runs this report-only (the threshold
# breach is printed but not enforced): shared-runner timing is too noisy
# to gate merges on, but the report in the log is where a perf regression
# is first visible. Keys present in only one snapshot are listed but never
# fail the comparison — benchmarks are added and renamed between PRs.
set -euo pipefail
cd "$(dirname "$0")/.."

old="${1:-}"
new="${2:-}"
if [ -z "$old" ] || [ -z "$new" ]; then
    # Default: the two newest snapshots by PR number.
    mapfile -t snaps < <(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n)
    if [ "${#snaps[@]}" -lt 2 ]; then
        echo "bench_compare: need two BENCH_*.json snapshots (found ${#snaps[@]})" >&2
        exit 0
    fi
    old="${snaps[-2]}"
    new="${snaps[-1]}"
fi

# PR numbers are not contiguous: some PRs never commit a snapshot (e.g.
# BENCH_8/BENCH_9 were skipped). A gap means the movement below spans
# several PRs of work — note it rather than mis-attributing the delta.
old_pr="$(basename "$old" .json | cut -d_ -f2)"
new_pr="$(basename "$new" .json | cut -d_ -f2)"
if [[ "$old_pr" =~ ^[0-9]+$ && "$new_pr" =~ ^[0-9]+$ ]] && [ $((new_pr - old_pr)) -gt 1 ]; then
    echo "bench_compare: note: comparing across a PR gap (PR $old_pr -> PR $new_pr);" \
         "the delta spans $((new_pr - old_pr)) PRs of changes"
fi

THRESHOLD_PCT="${THRESHOLD_PCT:-10}" old="$old" new="$new" python3 - <<'EOF'
import json, os, sys

old_path, new_path = os.environ["old"], os.environ["new"]
threshold = float(os.environ["THRESHOLD_PCT"])
with open(old_path) as f:
    old = json.load(f)["benchmarks"]
with open(new_path) as f:
    new = json.load(f)["benchmarks"]

rows, regressed = [], []
for name in sorted(set(old) | set(new)):
    o, n = old.get(name), new.get(name)
    if o is None:
        rows.append((name, None, n["ns_per_op"], "new"))
        continue
    if n is None:
        rows.append((name, o["ns_per_op"], None, "gone"))
        continue
    delta = (n["ns_per_op"] - o["ns_per_op"]) / o["ns_per_op"] * 100
    mark = ""
    if delta > threshold:
        mark = "REGRESSED"
        regressed.append((name, delta))
    elif delta < -threshold:
        mark = "improved"
    rows.append((name, o["ns_per_op"], n["ns_per_op"], f"{delta:+.1f}% {mark}".strip()))

def fmt(ns):
    if ns is None:
        return "-"
    if ns >= 1e6:
        return f"{ns/1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns/1e3:.1f}us"
    return f"{ns:.0f}ns"

width = max(len(r[0]) for r in rows)
print(f"bench_compare: {old_path} -> {new_path} (threshold {threshold:.0f}%)")
for name, o, n, note in rows:
    print(f"  {name:<{width}}  {fmt(o):>10}  {fmt(n):>10}  {note}")

if regressed:
    print(f"\n{len(regressed)} benchmark(s) regressed beyond {threshold:.0f}%:")
    for name, delta in regressed:
        print(f"  {name}: {delta:+.1f}%")
    sys.exit(1)
print("\nno regressions beyond threshold")
EOF
