#!/usr/bin/env bash
# bench.sh — run the paper-figure and ablation benchmarks and snapshot the
# results as BENCH_<pr>.json (the bench-trajectory format documented in
# EXPERIMENTS.md). Usage:
#
#   scripts/bench.sh <pr-number> [bench-regex]
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 3x; use e.g. 2s for
#              lower-variance snapshots)
set -euo pipefail
cd "$(dirname "$0")/.."

pr="${1:?usage: scripts/bench.sh <pr-number> [bench-regex]}"
regex="${2:-^(BenchmarkFig|BenchmarkAblation|BenchmarkTable|BenchmarkColdBoot|BenchmarkSnapshotFork|BenchmarkWarpClauseEngines)}"
benchtime="${BENCHTIME:-3x}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$regex" -benchmem -benchtime "$benchtime" \
    -timeout 60m . | tee "$tmp"
# The per-clause engine micro-benchmark lives in the GPU package; a fixed
# high iteration count keeps the ns/op numbers comparable across PRs.
go test -run '^$' -bench '^BenchmarkWarpClauseEngines$' -benchmem \
    -benchtime 200000x -timeout 10m ./internal/gpu/ | tee -a "$tmp"
go run ./cmd/benchjson < "$tmp" > "BENCH_${pr}.json"
echo "wrote BENCH_${pr}.json"
