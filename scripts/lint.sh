#!/usr/bin/env bash
# Local lint entry point — mirrors what CI enforces, in the same order.
#
#   scripts/lint.sh            # gofmt + go vet + simlint (all analyzers)
#   scripts/lint.sh -run ctxflow ./internal/experiments/...
#
# Extra arguments are passed straight to simlint (see cmd/simlint).
# staticcheck and govulncheck run opportunistically when they are on
# PATH; CI installs them pinned (see .github/workflows/ci.yml), but the
# offline development loop must not depend on network installs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "gofmt needed on:" >&2
  echo "$out" >&2
  exit 1
fi

echo "== go vet"
go vet ./...

echo "== simlint"
go build -o "${TMPDIR:-/tmp}/simlint" ./cmd/simlint
"${TMPDIR:-/tmp}/simlint" "$@"

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck"
  staticcheck ./...
else
  echo "== staticcheck: not installed, skipping (CI runs it pinned)"
fi

if command -v govulncheck >/dev/null 2>&1; then
  echo "== govulncheck"
  govulncheck ./...
else
  echo "== govulncheck: not installed, skipping (CI runs it pinned)"
fi

echo "lint OK"
