package mobilesim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrPoolClosed is returned by SessionPool.Get after Close.
var ErrPoolClosed = errors.New("mobilesim: session pool is closed")

// SessionPool maintains warm, ready-to-run sessions forked from one
// snapshot, so serving layers (cmd/mobilesimd, custom front-ends) hand
// out a booted session in microseconds under load. A background refiller
// keeps the pool full; Get falls back to forking synchronously when
// demand outruns it (forking is itself fast, so the pool degrades
// gracefully rather than queueing).
//
// Sessions handed out by Get are owned by the caller and single-use by
// convention: run what you need, then Close the session. Forked sessions
// share the snapshot's memory copy-on-write, so discarding one after a
// run is cheaper than scrubbing it back to pristine state.
type SessionPool struct {
	snap *Snapshot
	cfg  Config

	warm chan *Session
	done chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool

	forked atomic.Uint64
	hits   atomic.Uint64
	inline atomic.Uint64
}

// NewSessionPool creates a pool of size warm sessions forked from snap,
// each configured like New(cfg, FromSnapshot(snap)). The first fork is
// performed synchronously so configuration errors surface immediately;
// the rest fill in the background.
func NewSessionPool(snap *Snapshot, size int, cfg Config) (*SessionPool, error) {
	if size < 1 {
		size = 1
	}
	p := &SessionPool{
		snap: snap,
		cfg:  cfg,
		warm: make(chan *Session, size),
		done: make(chan struct{}),
	}
	first, err := p.fork()
	if err != nil {
		return nil, err
	}
	p.warm <- first
	p.wg.Add(1)
	go p.refill()
	return p, nil
}

// fork creates one fresh session from the snapshot.
func (p *SessionPool) fork() (*Session, error) {
	s, err := New(p.cfg, FromSnapshot(p.snap))
	if err != nil {
		return nil, err
	}
	p.forked.Add(1)
	return s, nil
}

// refill keeps the warm channel full until the pool closes.
func (p *SessionPool) refill() {
	defer p.wg.Done()
	for {
		s, err := p.fork()
		if err != nil {
			// Forking failed after the first one succeeded — host memory
			// pressure, most likely. Back off to on-demand forking in Get.
			return
		}
		select {
		case p.warm <- s:
		case <-p.done:
			s.Close()
			return
		}
	}
}

// Get returns a ready-to-run session, preferring a warm one and forking
// on demand when the pool is momentarily empty. The caller owns the
// session and must Close it. ctx only gates the hand-out (it is not the
// session's lifetime); cancellation returns ctx.Err().
func (p *SessionPool) Get(ctx context.Context) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-p.done:
		return nil, ErrPoolClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	case s := <-p.warm:
		p.hits.Add(1)
		return s, nil
	default:
	}
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, ErrPoolClosed
	}
	p.inline.Add(1)
	return p.fork()
}

// Warm reports how many forked sessions are currently waiting in the
// pool.
func (p *SessionPool) Warm() int { return len(p.warm) }

// Forked reports how many sessions the pool has forked over its lifetime
// (warm fills plus on-demand forks).
func (p *SessionPool) Forked() uint64 { return p.forked.Load() }

// Hits reports how many Get calls were served from the warm pool.
func (p *SessionPool) Hits() uint64 { return p.hits.Load() }

// InlineForks reports how many Get calls found the pool momentarily
// empty and forked inline — the pool-exhaustion fallback path. Hits +
// InlineForks equals the number of successful hand-outs attempted (an
// inline fork that fails still counts as the attempt it was).
func (p *SessionPool) InlineForks() uint64 { return p.inline.Load() }

// Snapshot returns the snapshot the pool forks from.
func (p *SessionPool) Snapshot() *Snapshot { return p.snap }

// Close stops the refiller and closes every warm session. Sessions
// already handed out are unaffected (their owners Close them). Closing
// twice is a no-op.
func (p *SessionPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.done)
	p.mu.Unlock()
	p.wg.Wait()
	for {
		select {
		case s := <-p.warm:
			s.Close()
		default:
			return
		}
	}
}
