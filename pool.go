package mobilesim

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mobilesim/internal/obs"
)

// ErrPoolClosed is returned by SessionPool.Get after Close.
var ErrPoolClosed = errors.New("mobilesim: session pool is closed")

// SessionPool maintains warm, ready-to-run sessions forked from one
// snapshot, so serving layers (cmd/mobilesimd, custom front-ends) hand
// out a booted session in microseconds under load. A background refiller
// keeps the pool at its warm target; Get falls back to forking
// synchronously when demand outruns it (forking is itself fast, so the
// pool degrades gracefully rather than queueing).
//
// The warm target is either fixed (NewSessionPool) or driven by demand
// (NewAutoscalingSessionPool): an EWMA of the request arrival rate
// multiplied by the observed fork latency — the expected number of
// arrivals while a replacement fork is in flight — with headroom,
// bounded to [MinWarm, MaxWarm]. When traffic goes idle the rate
// estimate decays and the refiller closes surplus warm sessions.
//
// Sessions handed out by Get are owned by the caller and single-use by
// convention: run what you need, then Close the session. Forked sessions
// share the snapshot's memory copy-on-write, so discarding one after a
// run is cheaper than scrubbing it back to pristine state.
type SessionPool struct {
	snap *Snapshot
	cfg  Config

	warm chan *Session
	// kick wakes the refiller after each hand-out (and from tests);
	// buffered so pokes never block.
	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool

	sizer poolSizer
	// now is the wall-clock position source for arrival-rate tracking
	// and target queries — a seam for fake-clock tests. Latency
	// *durations* (fork and hand-out timings) always use the real
	// monotonic clock.
	now func() time.Time
	// recheck bounds how long the refiller sleeps between target
	// re-evaluations, so a decayed target shrinks the pool even with no
	// Get traffic to poke it.
	recheck time.Duration

	forked atomic.Uint64
	hits   atomic.Uint64
	inline atomic.Uint64

	getWait    obs.Histogram
	refillFork obs.Histogram
	inlineFork obs.Histogram
}

// poolSizer decides the pool's warm target. Implementations must be safe
// for concurrent use.
type poolSizer interface {
	// observeArrival records one Get call at wall-clock position t.
	observeArrival(t time.Time)
	// observeFork records one measured snapshot-fork latency.
	observeFork(d time.Duration)
	// target returns the desired warm count as of time t.
	target(t time.Time) int
	// bounds returns the static [min, max] clamp.
	bounds() (min, max int)
}

// fixedSizer pins the warm target to a constant — the classic
// fixed-size pool.
type fixedSizer int

func (z fixedSizer) observeArrival(time.Time)  {}
func (z fixedSizer) observeFork(time.Duration) {}
func (z fixedSizer) target(time.Time) int      { return int(z) }
func (z fixedSizer) bounds() (min, max int)    { return int(z), int(z) }

// rateSizer is the autoscaler: warm target ≈ arrival rate × fork
// latency × headroom (Little's law applied to the refill loop — the
// expected number of requests that arrive while one replacement fork is
// in flight), clamped to [min, max].
type rateSizer struct {
	min, max int
	headroom float64
	rate     *obs.RateEWMA
	fork     *obs.DurEWMA
}

func (z *rateSizer) observeArrival(t time.Time)  { z.rate.Observe(t) }
func (z *rateSizer) observeFork(d time.Duration) { z.fork.Observe(d) }
func (z *rateSizer) bounds() (min, max int)      { return z.min, z.max }

func (z *rateSizer) target(t time.Time) int {
	n := int(math.Ceil(z.rate.Rate(t) * z.fork.Value().Seconds() * z.headroom))
	if n < z.min {
		n = z.min
	}
	if n > z.max {
		n = z.max
	}
	return n
}

// PoolAutoscale bounds and tunes the rate-driven warm-target autoscaler
// (NewAutoscalingSessionPool). The zero value selects all defaults.
type PoolAutoscale struct {
	// MinWarm and MaxWarm clamp the warm target (defaults 1 and
	// 4×MinWarm). The pool never holds more than MaxWarm warm sessions.
	MinWarm int
	MaxWarm int
	// HalfLife is the arrival-rate EWMA half-life: an idle period of one
	// HalfLife halves the rate estimate (default 5s).
	HalfLife time.Duration
	// Headroom multiplies the rate×latency estimate before clamping
	// (default 2).
	Headroom float64
}

// withDefaults resolves zero fields to their documented defaults.
func (a PoolAutoscale) withDefaults() PoolAutoscale {
	if a.MinWarm < 1 {
		a.MinWarm = 1
	}
	if a.MaxWarm < a.MinWarm {
		a.MaxWarm = 4 * a.MinWarm
	}
	if a.HalfLife <= 0 {
		a.HalfLife = 5 * time.Second
	}
	if a.Headroom <= 0 {
		a.Headroom = 2
	}
	return a
}

// NewSessionPool creates a pool holding size warm sessions forked from
// snap, each configured like New(cfg, FromSnapshot(snap)). The first
// fork is performed synchronously so configuration errors surface
// immediately; the rest fill in the background.
func NewSessionPool(snap *Snapshot, size int, cfg Config) (*SessionPool, error) {
	if size < 1 {
		size = 1
	}
	return newSessionPool(snap, cfg, fixedSizer(size), time.Now)
}

// NewAutoscalingSessionPool creates a pool whose warm target follows
// demand: it grows toward a.MaxWarm when requests arrive faster than
// forks complete and decays back to a.MinWarm when traffic goes idle
// (see PoolAutoscale and SessionPool). The first fork is synchronous,
// like NewSessionPool.
func NewAutoscalingSessionPool(snap *Snapshot, a PoolAutoscale, cfg Config) (*SessionPool, error) {
	a = a.withDefaults()
	z := &rateSizer{
		min:      a.MinWarm,
		max:      a.MaxWarm,
		headroom: a.Headroom,
		rate:     obs.NewRateEWMA(a.HalfLife),
		fork:     obs.NewDurEWMA(0.3),
	}
	return newSessionPool(snap, cfg, z, time.Now)
}

// newSessionPool is the shared constructor; tests install their own
// sizer and clock here.
func newSessionPool(snap *Snapshot, cfg Config, sizer poolSizer, now func() time.Time) (*SessionPool, error) {
	_, max := sizer.bounds()
	p := &SessionPool{
		snap:    snap,
		cfg:     cfg,
		warm:    make(chan *Session, max),
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		sizer:   sizer,
		now:     now,
		recheck: time.Second,
	}
	first, err := p.fork()
	if err != nil {
		return nil, err
	}
	p.warm <- first
	p.wg.Add(1)
	go p.refill()
	return p, nil
}

// fork creates one fresh session from the snapshot and feeds the fork
// latency estimate the autoscaler divides arrival rate by.
func (p *SessionPool) fork() (*Session, error) {
	t0 := time.Now()
	s, err := New(p.cfg, FromSnapshot(p.snap))
	if err != nil {
		return nil, err
	}
	p.forked.Add(1)
	p.sizer.observeFork(time.Since(t0))
	return s, nil
}

// poke wakes the refiller without blocking.
func (p *SessionPool) poke() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// refill converges the warm count onto the sizer's target until the
// pool closes: forking below target, closing surplus sessions above it
// (the idle-decay path), and sleeping at it.
func (p *SessionPool) refill() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		default:
		}
		tgt := p.sizer.target(p.now())
		if n := len(p.warm); n > tgt {
			select {
			case s := <-p.warm:
				s.Close()
			default:
			}
			continue
		} else if n < tgt {
			t0 := time.Now()
			s, err := p.fork()
			if err != nil {
				// Forking failed after the first one succeeded — host
				// memory pressure, most likely. Back off to on-demand
				// forking in Get.
				return
			}
			p.refillFork.Observe(time.Since(t0))
			select {
			case p.warm <- s:
			case <-p.done:
				s.Close()
				return
			}
			continue
		}
		select {
		case <-p.done:
			return
		case <-p.kick:
		case <-time.After(p.recheck):
		}
	}
}

// Get returns a ready-to-run session, preferring a warm one and forking
// on demand when the pool is momentarily empty. The caller owns the
// session and must Close it. ctx only gates the hand-out (it is not the
// session's lifetime); cancellation returns ctx.Err().
func (p *SessionPool) Get(ctx context.Context) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t0 := time.Now()
	p.sizer.observeArrival(p.now())
	defer p.poke()
	select {
	case <-p.done:
		return nil, ErrPoolClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	case s := <-p.warm:
		p.hits.Add(1)
		p.getWait.Observe(time.Since(t0))
		return s, nil
	default:
	}
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, ErrPoolClosed
	}
	p.inline.Add(1)
	s, err := p.fork()
	if err != nil {
		return nil, err
	}
	p.inlineFork.Observe(time.Since(t0))
	p.getWait.Observe(time.Since(t0))
	return s, nil
}

// Warm reports how many forked sessions are currently waiting in the
// pool.
func (p *SessionPool) Warm() int { return len(p.warm) }

// WarmTarget reports the warm count the pool is currently converging
// toward: the configured size for a fixed pool, the demand-driven
// target for an autoscaling one.
func (p *SessionPool) WarmTarget() int { return p.sizer.target(p.now()) }

// Forked reports how many sessions the pool has forked over its lifetime
// (warm fills plus on-demand forks).
func (p *SessionPool) Forked() uint64 { return p.forked.Load() }

// Hits reports how many Get calls were served from the warm pool.
func (p *SessionPool) Hits() uint64 { return p.hits.Load() }

// InlineForks reports how many Get calls found the pool momentarily
// empty and forked inline — the pool-exhaustion fallback path. Hits +
// InlineForks equals the number of successful hand-outs attempted (an
// inline fork that fails still counts as the attempt it was).
func (p *SessionPool) InlineForks() uint64 { return p.inline.Load() }

// PoolMetrics is a point-in-time snapshot of a pool's serving metrics
// (DESIGN.md §12).
type PoolMetrics struct {
	// Warm is the current warm count; WarmTarget is what the pool is
	// converging toward.
	Warm       int
	WarmTarget int
	// Lifetime counters, as the accessor methods report them.
	Forked      uint64
	Hits        uint64
	InlineForks uint64
	// GetWait distributes Get hand-out latency (warm hits and inline
	// forks alike); RefillFork and InlineFork distribute fork latency on
	// the background and fallback paths respectively.
	GetWait    LatencySnapshot
	RefillFork LatencySnapshot
	InlineFork LatencySnapshot
}

// Metrics returns the pool's current serving metrics snapshot.
func (p *SessionPool) Metrics() PoolMetrics {
	return PoolMetrics{
		Warm:        p.Warm(),
		WarmTarget:  p.WarmTarget(),
		Forked:      p.Forked(),
		Hits:        p.Hits(),
		InlineForks: p.InlineForks(),
		GetWait:     p.getWait.Snapshot(),
		RefillFork:  p.refillFork.Snapshot(),
		InlineFork:  p.inlineFork.Snapshot(),
	}
}

// Snapshot returns the snapshot the pool forks from.
func (p *SessionPool) Snapshot() *Snapshot { return p.snap }

// Close stops the refiller and closes every warm session. Sessions
// already handed out are unaffected (their owners Close them). Closing
// twice is a no-op.
func (p *SessionPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.done)
	p.mu.Unlock()
	p.wg.Wait()
	for {
		select {
		case s := <-p.warm:
			s.Close()
		default:
			return
		}
	}
}
