package mobilesim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// BatchJob is one independent simulation in a Batch: a workload name, an
// input scale, and optionally a per-job platform configuration.
type BatchJob struct {
	// Benchmark names a registered workload (see Workloads) — any kind,
	// not just Table II benchmarks.
	Benchmark string
	// Scale is the input scale; <= 0 selects the workload's default.
	Scale int
	// Config overrides the batch-wide session configuration for this job
	// when non-nil.
	Config *Config
}

// JobResult is the outcome of one BatchJob.
type JobResult struct {
	// Index is the job's position in Batch.Jobs.
	Index int
	Job   BatchJob
	// Result is the completed run; nil when Err is set.
	Result *RunResult
	// Err is the failure: a session/run error, a verification failure,
	// or the context error for jobs cancelled before they started or
	// interrupted mid-run.
	Err error
	// Interrupted marks a job whose run had started when the batch
	// context was cancelled: its kernel was soft-stopped mid-run, unlike
	// Skipped jobs that never started.
	Interrupted bool
}

// BatchResult summarises a Batch run.
type BatchResult struct {
	// Jobs holds one entry per Batch.Jobs element, in order.
	Jobs []JobResult
	// Completed counts jobs that ran and verified; Failed counts jobs
	// that errored or failed verification; Skipped counts jobs cancelled
	// before starting; Interrupted counts jobs soft-stopped mid-run by
	// batch cancellation.
	Completed, Failed, Skipped, Interrupted int
	// Aggregate merges the statistics of every job that produced a
	// result — the many-guests-one-host view of the whole batch.
	Aggregate Stats
	// Wall is the elapsed time for the whole batch.
	Wall time.Duration
	// Cluster carries the delivery counters and per-host attempt
	// latencies of a cluster run (Batch.Hosts); nil for local batches.
	Cluster *ClusterReport
}

// Batch runs N independent simulations across a bounded worker pool — the
// first scaling layer: many concurrent guests in one host process. Each
// job gets its own Session (own platform, GPU, driver), so jobs share
// nothing mutable and scale with host cores until memory bandwidth
// saturates.
//
// Jobs that use the batch-wide Config are forked from one warm snapshot:
// the batch boots a single session, captures it, and every such job
// starts as a copy-on-write fork — paying the cold boot once instead of
// N times. Jobs with their own Config still cold-boot (their shape may
// differ from the snapshot's).
type Batch struct {
	// Jobs are the simulations to run.
	Jobs []BatchJob
	// Workers bounds concurrent sessions; <= 0 means
	// min(GOMAXPROCS, len(Jobs)).
	Workers int
	// Config is the session configuration for jobs without their own.
	Config Config
	// ColdBoot disables the shared warm snapshot: every job boots its own
	// platform from scratch, as in the pre-snapshot Batch.
	ColdBoot bool
	// Hosts switches the batch to cluster execution: the batch Config is
	// booted and captured once locally, the encoded snapshot is shipped
	// to every listed mobilesimd base URL, and jobs fan out over HTTP
	// with work-stealing, bounded retries on host loss and optional
	// hedging (see ClusterConfig). Per-run statistics deltas merge into
	// the same BatchResult shape — bit-identically to a local run of the
	// same jobs. Jobs with a per-job Config are rejected in cluster mode.
	Hosts []string
	// Cluster tunes cluster execution; ignored unless Hosts is set.
	Cluster ClusterConfig
}

// Run executes the batch, blocking until every job has finished or the
// context is cancelled. Cancellation takes effect mid-run: an executing
// simulation is soft-stopped at a kernel clause boundary and marked
// Interrupted; queued jobs are marked Skipped with ctx.Err(). The error
// is ctx.Err() after cancellation and nil otherwise; per-job failures are
// reported in the result, not as an error.
func (b *Batch) Run(ctx context.Context) (*BatchResult, error) {
	if len(b.Jobs) == 0 {
		return &BatchResult{}, nil
	}
	if len(b.Hosts) > 0 {
		return b.runCluster(ctx)
	}
	// Validate every job's config up front: one bad job should fail
	// fast, not waste a pool slot.
	for i := range b.Jobs {
		cfg := b.jobConfig(i)
		if err := cfg.validate(); err != nil {
			return nil, fmt.Errorf("job %d: %w", i, err)
		}
	}

	workers := b.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(b.Jobs) {
		workers = len(b.Jobs)
	}

	t0 := time.Now()
	// Boot the batch-wide configuration once and capture it; jobs without
	// a per-job Config fork from this warm snapshot instead of cold
	// booting. Any failure here falls back to per-job cold boots — the
	// snapshot is an optimisation, never a prerequisite.
	var snap *Snapshot
	if !b.ColdBoot && b.defaultConfigJobs() >= 2 {
		if warm, err := New(b.Config); err == nil {
			snap, _ = warm.Snapshot()
			warm.Close()
		}
	}
	res := &BatchResult{Jobs: make([]JobResult, len(b.Jobs))}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idxCh {
				res.Jobs[i] = b.runJob(ctx, i, snap)
			}
		}()
	}
	for i := range b.Jobs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	res.tally(ctx)
	res.Wall = time.Since(t0)
	return res, ctx.Err()
}

// tally folds per-job outcomes into the counts and the aggregate. Jobs
// are merged in index order; the statistics are integer counters, so the
// aggregate is identical however the jobs were actually scheduled —
// locally or across a cluster.
func (res *BatchResult) tally(ctx context.Context) {
	for i := range res.Jobs {
		jr := &res.Jobs[i]
		switch {
		case jr.Result != nil:
			res.Aggregate.merge(&jr.Result.Stats)
			if jr.Err != nil {
				res.Failed++
			} else {
				res.Completed++
			}
		case jr.Interrupted:
			res.Interrupted++
		case ctx.Err() != nil && errors.Is(jr.Err, ctx.Err()):
			res.Skipped++
		default:
			res.Failed++
		}
	}
}

// jobConfig resolves the effective config for job i.
func (b *Batch) jobConfig(i int) Config {
	if c := b.Jobs[i].Config; c != nil {
		return *c
	}
	return b.Config
}

// defaultConfigJobs counts jobs that would use the batch-wide Config.
func (b *Batch) defaultConfigJobs() int {
	n := 0
	for i := range b.Jobs {
		if b.Jobs[i].Config == nil {
			n++
		}
	}
	return n
}

// runJob obtains a session — a copy-on-write fork of the batch's warm
// snapshot when the job uses the batch-wide Config, a cold boot otherwise
// — submits one workload run through the session's command queue and
// tears down. Riding the queue means batch cancellation reaches into a
// running job: the kernel is soft-stopped at a clause boundary instead of
// running to completion.
func (b *Batch) runJob(ctx context.Context, i int, snap *Snapshot) JobResult {
	job := b.Jobs[i]
	jr := JobResult{Index: i, Job: job}
	if err := ctx.Err(); err != nil {
		jr.Err = err
		return jr
	}
	var sess *Session
	var err error
	if job.Config == nil && snap != nil {
		sess, err = New(Config{ConsoleOut: b.Config.ConsoleOut}, FromSnapshot(snap))
	} else {
		sess, err = New(b.jobConfig(i))
	}
	if err != nil {
		jr.Err = err
		return jr
	}
	defer sess.Close()
	pending, err := sess.Submit(ctx, job.Benchmark, WithScale(job.Scale))
	if err != nil {
		jr.Err = err
		return jr
	}
	run, err := pending.Wait()
	if err != nil {
		jr.Err = err
		// Interrupted only when the run had actually begun: a job whose
		// cancellation landed before Execute started is Skipped.
		jr.Interrupted = pending.Started() && ctx.Err() != nil && errors.Is(err, ctx.Err())
		return jr
	}
	jr.Result = run
	if run.VerifyErr != nil {
		jr.Err = fmt.Errorf("%s: verification failed: %w", job.Benchmark, run.VerifyErr)
	}
	return jr
}
