// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (regenerating the measurement each iteration), plus
// ablation benchmarks for the design decisions called out in DESIGN.md §5.
//
// Run with:
//
//	go test -bench=. -benchmem
package mobilesim_test

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"mobilesim"
	"mobilesim/internal/cl"
	"mobilesim/internal/clc"
	"mobilesim/internal/cpu"
	"mobilesim/internal/experiments"
	"mobilesim/internal/gpu"
	"mobilesim/internal/platform"
	"mobilesim/internal/slam"
	"mobilesim/internal/workloads"
)

var bg = context.Background()

var smallOpt = experiments.Options{Scale: experiments.ScaleSmall}

// runSpec executes one workload at small scale on a fresh platform.
func runSpec(b *testing.B, name string, mutate func(*platform.Platform)) {
	b.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	p, err := platform.New(platform.Config{RAMSize: 512 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	if mutate != nil {
		mutate(p)
	}
	c, err := cl.NewContext(p, "")
	if err != nil {
		b.Fatal(err)
	}
	inst := spec.Make(spec.SmallScale)
	res, err := inst.Run(bg, c, name, true)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Verified {
		b.Fatal(res.VerifyErr)
	}
}

// --- Figures -----------------------------------------------------------------

func BenchmarkFig01CompilerVersions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06DivergenceCFG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(bg, io.Discard, smallOpt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig07Slowdown(b *testing.B) {
	// One representative row of the slowdown measurement (SobelFilter).
	for i := 0; i < b.N; i++ {
		runSpec(b, "SobelFilter", nil)
	}
}

func BenchmarkFig08VsBaseline(b *testing.B) {
	b.Run("ours-dbt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSpec(b, "DCT", nil)
		}
	})
	b.Run("baseline-interp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSpec(b, "DCT", func(p *platform.Platform) {
				for _, c := range p.CPUs {
					c.SetEngine(cpu.EngineInterp)
				}
			})
		}
	})
}

func BenchmarkFig09DriverScaling(b *testing.B) {
	// One untimed warm-up sweep fills the RAM recycling pools (the m2s
	// comparator acquires a fresh GiB-scale backing store per context
	// otherwise), so the timed iterations measure the steady state the
	// sweep actually runs in.
	if _, err := experiments.Fig9(bg, io.Discard, smallOpt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(bg, io.Discard, smallOpt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10ThreadScaling(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(benchName("threads", threads), func(b *testing.B) {
			cfg := gpu.DefaultConfig()
			cfg.HostThreads = threads
			for i := 0; i < b.N; i++ {
				spec, _ := workloads.ByName("SobelFilter")
				p, err := platform.New(platform.Config{RAMSize: 512 << 20, GPU: cfg})
				if err != nil {
					b.Fatal(err)
				}
				c, err := cl.NewContext(p, "")
				if err != nil {
					p.Close()
					b.Fatal(err)
				}
				if _, err := spec.Make(128).Run(bg, c, "SobelFilter", true); err != nil {
					p.Close()
					b.Fatal(err)
				}
				p.Close()
			}
		})
	}
}

func BenchmarkFig11InstructionMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSpec(b, "Reduction", nil)
	}
}

func BenchmarkFig12DataAccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSpec(b, "Backprop", nil)
	}
}

func BenchmarkFig13ClauseSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSpec(b, "RecursiveGaussian", nil)
	}
}

func BenchmarkFig14SLAMBench(b *testing.B) {
	cfg := slam.Express(1)
	cfg.Frames = 2
	for i := 0; i < b.N; i++ {
		p, err := platform.New(platform.Config{RAMSize: 512 << 20})
		if err != nil {
			b.Fatal(err)
		}
		c, err := cl.NewContext(p, "")
		if err != nil {
			p.Close()
			b.Fatal(err)
		}
		if _, err := slam.Run(bg, c, cfg); err != nil {
			p.Close()
			b.Fatal(err)
		}
		p.Close()
	}
}

func BenchmarkFig15SGEMM(b *testing.B) {
	const dim = 32
	a, bb := workloads.SgemmInputs(dim, dim, dim)
	for _, v := range workloads.SgemmVariants() {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := platform.New(platform.Config{RAMSize: 256 << 20})
				if err != nil {
					b.Fatal(err)
				}
				c, err := cl.NewContext(p, "")
				if err != nil {
					p.Close()
					b.Fatal(err)
				}
				if _, err := workloads.RunSgemmVariant(bg, c, v, a, bb, dim, dim, dim); err != nil {
					p.Close()
					b.Fatal(err)
				}
				p.Close()
			}
		})
	}
}

func BenchmarkTable3SystemStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSpec(b, "BFS", nil)
	}
}

// --- Ablations (DESIGN.md §5) ---------------------------------------------------

// BenchmarkAblationDBT quantifies the DBT block cache against pure
// interpretation on the CPU-bound driver path (a large buffer write).
func BenchmarkAblationDBT(b *testing.B) {
	for _, engine := range []cpu.Engine{cpu.EngineDBT, cpu.EngineInterp} {
		engine := engine
		b.Run(engine.String(), func(b *testing.B) {
			p, err := platform.New(platform.Config{RAMSize: 256 << 20})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			p.CPUs[0].SetEngine(engine)
			c, err := cl.NewContext(p, "")
			if err != nil {
				b.Fatal(err)
			}
			buf, err := c.CreateBuffer(1 << 20)
			if err != nil {
				b.Fatal(err)
			}
			data := make([]byte, 1<<20)
			b.SetBytes(1 << 20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.WriteBuffer(bg, buf, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDecodeCache measures decode-once against re-decoding
// the shader binary on every job (an iterative multi-job workload).
func BenchmarkAblationDecodeCache(b *testing.B) {
	for _, cached := range []bool{true, false} {
		name := "on"
		if !cached {
			name = "off"
		}
		cfg := gpu.DefaultConfig()
		cfg.DecodeCache = cached
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, _ := workloads.ByName("BitonicSort")
				p, err := platform.New(platform.Config{RAMSize: 256 << 20, GPU: cfg})
				if err != nil {
					b.Fatal(err)
				}
				c, err := cl.NewContext(p, "")
				if err != nil {
					p.Close()
					b.Fatal(err)
				}
				if _, err := spec.Make(1024).Run(bg, c, "BitonicSort", true); err != nil {
					p.Close()
					b.Fatal(err)
				}
				p.Close()
			}
		})
	}
}

// BenchmarkAblationVirtualCores compares 1:1 shader-core mapping against
// over-committed virtual cores (§III-B3, evaluated as Fig 10). The
// engine=... sub-benchmarks re-run the over-committed point under each
// execution engine so a thread-scaling regression can be attributed to
// the threading layer (all engines move together) or to one engine's
// dispatch path (only that engine moves).
func BenchmarkAblationVirtualCores(b *testing.B) {
	runSobel := func(b *testing.B, cfg gpu.Config) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			spec, _ := workloads.ByName("SobelFilter")
			p, err := platform.New(platform.Config{RAMSize: 512 << 20, GPU: cfg})
			if err != nil {
				b.Fatal(err)
			}
			c, err := cl.NewContext(p, "")
			if err != nil {
				p.Close()
				b.Fatal(err)
			}
			if _, err := spec.Make(192).Run(bg, c, "SobelFilter", true); err != nil {
				p.Close()
				b.Fatal(err)
			}
			p.Close()
		}
	}
	for _, threads := range []int{8, 32} {
		cfg := gpu.DefaultConfig()
		cfg.HostThreads = threads
		b.Run(benchName("threads", threads), func(b *testing.B) {
			runSobel(b, cfg)
		})
	}
	for _, eng := range []gpu.Engine{gpu.EngineInterp, gpu.EngineJIT, gpu.EngineWarp} {
		cfg := gpu.DefaultConfig()
		cfg.HostThreads = 32
		cfg.Engine = eng
		b.Run("engine="+eng.String(), func(b *testing.B) {
			runSobel(b, cfg)
		})
	}
}

// BenchmarkAblationClauses compares the clause-forming compiler (6.1)
// against the short-clause, heavily padded 5.6 pipeline end to end.
func BenchmarkAblationClauses(b *testing.B) {
	for _, ver := range []string{"5.6", "6.1"} {
		ver := ver
		b.Run("clc-"+ver, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, _ := workloads.ByName("DCT")
				p, err := platform.New(platform.Config{RAMSize: 256 << 20})
				if err != nil {
					b.Fatal(err)
				}
				c, err := cl.NewContext(p, ver)
				if err != nil {
					p.Close()
					b.Fatal(err)
				}
				if _, err := spec.Make(spec.SmallScale).Run(bg, c, "DCT", true); err != nil {
					p.Close()
					b.Fatal(err)
				}
				p.Close()
			}
		})
	}
}

// BenchmarkAblationInstrumentation measures the cost of the optional CFG
// collection on top of the always-on counters (the Fig 8 "with
// instrumentation" delta).
func BenchmarkAblationInstrumentation(b *testing.B) {
	for _, collect := range []bool{false, true} {
		name := "counters-only"
		if collect {
			name = "with-cfg"
		}
		cfg := gpu.DefaultConfig()
		cfg.CollectCFG = collect
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, _ := workloads.ByName("BFS")
				p, err := platform.New(platform.Config{RAMSize: 256 << 20, GPU: cfg})
				if err != nil {
					b.Fatal(err)
				}
				c, err := cl.NewContext(p, "")
				if err != nil {
					p.Close()
					b.Fatal(err)
				}
				if _, err := spec.Make(spec.SmallScale).Run(bg, c, "BFS", true); err != nil {
					p.Close()
					b.Fatal(err)
				}
				p.Close()
			}
		})
	}
}

// BenchmarkAblationGPUJIT compares the three shader execution engines —
// reference interpreter, per-lane closure JIT, and warp-batched fused
// clauses (the default) — on an arithmetic-dense workload. All three
// produce bit-identical statistics; this ablation measures host speed
// only.
func BenchmarkAblationGPUJIT(b *testing.B) {
	for _, eng := range []gpu.Engine{gpu.EngineInterp, gpu.EngineJIT, gpu.EngineWarp} {
		name := eng.String()
		cfg := gpu.DefaultConfig()
		cfg.Engine = eng
		b.Run(name, func(b *testing.B) {
			run := func() {
				spec, _ := workloads.ByName("Cutcp")
				p, err := platform.New(platform.Config{RAMSize: 256 << 20, GPU: cfg})
				if err != nil {
					b.Fatal(err)
				}
				c, err := cl.NewContext(p, "")
				if err != nil {
					p.Close()
					b.Fatal(err)
				}
				if _, err := spec.Make(12).Run(bg, c, "Cutcp", true); err != nil {
					p.Close()
					b.Fatal(err)
				}
				p.Close()
			}
			// Untimed warm-up plus a forced collection: each engine's
			// timed loop starts from the same heap state instead of
			// inheriting GC debt from the sub-benchmark before it.
			run()
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}

// BenchmarkCompiler measures raw JIT throughput (parse + lower + clause
// formation + regalloc + encode).
func BenchmarkCompiler(b *testing.B) {
	src := `
kernel void k(global float* a, global float* b, global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float x = a[i];
        for (int j = 0; j < 8; j++) {
            x = x * 1.5f + b[i];
        }
        c[i] = x;
    }
}
`
	for i := 0; i < b.N; i++ {
		if _, err := clc.Compile(src, "k", clc.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Snapshot/fork trajectory ------------------------------------------------

// BenchmarkColdBoot is the baseline session cost every pre-snapshot layer
// paid per guest: platform construction, firmware assembly and load,
// guest-code GPU probe (gpu_init), staging allocation, teardown scrub.
func BenchmarkColdBoot(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := mobilesim.New(mobilesim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// BenchmarkSnapshotFork creates run-ready sessions by copy-on-write
// forking a warm snapshot — the serving path Batch and cmd/mobilesimd
// sit on. The acceptance bar is >= 10x faster than BenchmarkColdBoot.
func BenchmarkSnapshotFork(b *testing.B) {
	parent, err := mobilesim.New(mobilesim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer parent.Close()
	snap, err := parent.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := mobilesim.New(mobilesim.Config{}, mobilesim.FromSnapshot(snap))
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// benchName builds a parameterised sub-benchmark name. The separator must
// not be "-": benchjson strips a trailing -<digits> as the GOMAXPROCS
// suffix, so "threads-8" and "threads-32" would collapse onto one
// "threads" key in BENCH_<pr>.json (which is exactly what happened to the
// thread-scaling history through BENCH_6).
func benchName(prefix string, n int) string {
	return fmt.Sprintf("%s=%d", prefix, n)
}
