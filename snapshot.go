package mobilesim

import (
	"fmt"
	"io"

	"mobilesim/internal/gpu"
	"mobilesim/internal/snapshot"
)

// This file is the facade of the snapshot/restore subsystem
// (internal/snapshot): capture a booted session once, then fork
// ready-to-run sessions from it in microseconds instead of paying a cold
// boot each. Forked sessions share the snapshot's guest RAM copy-on-write
// — pages are shared read-only until a fork writes them — so a warm pool
// of hundreds of sessions costs little more memory than one.

// Snapshot is a captured, immutable image of a booted session: guest RAM
// (sparse, up to the allocator's high watermark), MMU roots and page
// tables, device/IRQ/Job-Manager registers, driver and CL-runtime
// handles, and the accumulated statistics. One Snapshot can be restored
// into any number of concurrent sessions; it is never mutated by them.
//
// Host-side handles from the captured session — *Kernel, *Buffer, the
// collected CFG, the shader decode cache — are not part of a snapshot.
// Restored sessions rebuild programs on demand; guest memory those
// handles pointed at is captured, so re-running a registered workload
// reproduces the original run exactly.
type Snapshot struct {
	st *snapshot.State
}

// Config returns the session configuration the snapshot was captured
// under (without host-side wiring such as ConsoleOut).
func (s *Snapshot) Config() Config {
	c := s.st.Config
	return Config{
		RAMSize:            c.RAMSize,
		CPUCores:           c.CPUCores,
		ShaderCores:        c.ShaderCores,
		HostThreads:        c.HostThreads,
		CompilerVersion:    c.CompilerVersion,
		CollectCFG:         c.CollectCFG,
		JITClauses:         c.JITClauses,
		DisableDecodeCache: c.DisableDecodeCache,
	}
}

// Encode writes the snapshot in its versioned wire format. Encoding is
// deterministic: the same snapshot always produces the same bytes.
func (s *Snapshot) Encode(w io.Writer) error {
	return snapshot.Encode(w, s.st)
}

// ReadSnapshot decodes a snapshot previously written with Encode.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	st, err := snapshot.Decode(r)
	if err != nil {
		return nil, err
	}
	return &Snapshot{st: st}, nil
}

// Snapshot captures the session's current state. The capture is
// serialised on the session's command queue: it waits for every
// previously submitted run to finish, captures, and only then lets later
// submissions proceed — so the image is always a quiescent,
// between-runs state. Capturing a freshly booted session yields the warm
// "post-boot" image that Batch and SessionPool fork from.
func (s *Session) Snapshot() (*Snapshot, error) {
	// Take a queue slot like a run would, so the capture cannot overlap
	// an executing workload and later submissions cannot overtake it.
	p := &Pending{workload: "snapshot", done: make(chan struct{}), released: make(chan struct{})}
	s.qMu.Lock()
	if s.qClosed {
		s.qMu.Unlock()
		return nil, ErrClosed
	}
	prev := s.qTail
	s.qTail = p
	s.qMu.Unlock()
	defer func() {
		close(p.done)
		close(p.released)
		s.qMu.Lock()
		if s.qTail == p {
			s.qTail = nil
		}
		s.qMu.Unlock()
	}()

	if prev != nil {
		select {
		case <-prev.released:
		case <-s.base.Done():
			// Same invariant as a cancelled queue entry: this slot must
			// not be released before the predecessor releases, or Close
			// could tear down the platform under a still-executing run.
			<-prev.released
			return nil, ErrClosed
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	st, err := snapshot.Capture(snapshotConfig(s.cfg), s.rt)
	if err != nil {
		return nil, fmt.Errorf("mobilesim: snapshot: %w", err)
	}
	return &Snapshot{st: st}, nil
}

// snapshotConfig lowers the facade configuration to its serialisable
// mirror.
func snapshotConfig(c Config) snapshot.Config {
	return snapshot.Config{
		RAMSize:         c.RAMSize,
		CPUCores:        c.CPUCores,
		ShaderCores:     c.ShaderCores,
		HostThreads:     c.HostThreads,
		CompilerVersion: c.CompilerVersion,
		CollectCFG:      c.CollectCFG,
		// The wire format predates GPUEngine and carries the engine choice
		// as the JIT boolean. The engines are observationally identical, so
		// a restored session losing a warp/interp distinction is harmless —
		// it degrades to the warp default.
		JITClauses:         c.gpuEngine() == gpu.EngineJIT,
		DisableDecodeCache: c.DisableDecodeCache,
	}
}

// NewOption configures New beyond the session Config.
type NewOption func(*newOptions)

type newOptions struct {
	snap *Snapshot
}

// FromSnapshot makes New restore the session from a snapshot instead of
// cold-booting: guest memory is forked copy-on-write from the snapshot
// image and no guest boot code runs, so the session is ready to run in
// microseconds.
//
// The session's shape is the snapshot's. cfg may supply host-side wiring
// (ConsoleOut) and override host-side knobs: a non-zero HostThreads
// replaces the snapshot's, a non-empty GPUEngine replaces the snapshot's
// engine selection (the engines are counter-identical, so this never
// changes observable behaviour), and CollectCFG/JITClauses/
// DisableDecodeCache set in cfg are enabled on top of the snapshot's.
// Architectural fields (RAMSize, CPUCores, ShaderCores, CompilerVersion)
// must be zero or equal to the snapshot's — the corresponding state is
// baked into the image.
func FromSnapshot(snap *Snapshot) NewOption {
	return func(o *newOptions) { o.snap = snap }
}

// mergeSnapshotConfig resolves the effective configuration of a restored
// session (see FromSnapshot). Architectural fields in cfg are compared
// against the snapshot's *resolved* shape, so asking for the defaults
// explicitly (e.g. CPUCores: 4 against a snapshot captured with the zero
// default) is accepted.
func mergeSnapshotConfig(cfg Config, snap *Snapshot) (Config, error) {
	eff := snap.Config()
	eff.ConsoleOut = cfg.ConsoleOut
	snapRAM := eff.RAMSize
	if snapRAM == 0 {
		snapRAM = snap.st.Platform.RAM.Size()
	}
	snapCPUs := eff.CPUCores
	if snapCPUs == 0 {
		snapCPUs = len(snap.st.Platform.CPUs)
	}
	snapSC := eff.ShaderCores
	if snapSC == 0 {
		snapSC = gpu.DefaultConfig().ShaderCores
	}
	type mismatch struct {
		field string
		want  any
		have  any
	}
	var bad *mismatch
	switch {
	case cfg.RAMSize != 0 && cfg.RAMSize != snapRAM:
		bad = &mismatch{"RAMSize", snapRAM, cfg.RAMSize}
	case cfg.CPUCores != 0 && cfg.CPUCores != snapCPUs:
		bad = &mismatch{"CPUCores", snapCPUs, cfg.CPUCores}
	case cfg.ShaderCores != 0 && cfg.ShaderCores != snapSC:
		bad = &mismatch{"ShaderCores", snapSC, cfg.ShaderCores}
	case cfg.CompilerVersion != "" && cfg.CompilerVersion != eff.CompilerVersion:
		bad = &mismatch{"CompilerVersion", eff.CompilerVersion, cfg.CompilerVersion}
	}
	if bad != nil {
		return Config{}, fmt.Errorf("mobilesim: FromSnapshot: %s %v does not match the snapshot's %v",
			bad.field, bad.have, bad.want)
	}
	if cfg.HostThreads != 0 {
		eff.HostThreads = cfg.HostThreads
	}
	eff.CollectCFG = eff.CollectCFG || cfg.CollectCFG
	eff.JITClauses = eff.JITClauses || cfg.JITClauses
	if cfg.GPUEngine != "" {
		eff.GPUEngine = cfg.GPUEngine
	}
	eff.DisableDecodeCache = eff.DisableDecodeCache || cfg.DisableDecodeCache
	return eff, nil
}

// newFromSnapshot is the restore arm of New.
func newFromSnapshot(cfg Config, snap *Snapshot) (*Session, error) {
	eff, err := mergeSnapshotConfig(cfg, snap)
	if err != nil {
		return nil, err
	}
	if err := eff.validate(); err != nil {
		return nil, err
	}
	p, rt, err := snapshot.Restore(snap.st, eff.platformConfig())
	if err != nil {
		return nil, fmt.Errorf("mobilesim: restore: %w", err)
	}
	return newSession(eff, p, rt), nil
}
