package mobilesim

// Internal tests for the SessionPool autoscaler: the rate-driven sizer's
// target math under a fake clock, and the pool machinery converging its
// warm count onto a moving target. These live inside the package (the
// rest of the root tests are external) because they drive the unexported
// sizer/clock seams directly.

import (
	"context"
	"sync"
	"testing"
	"time"

	"mobilesim/internal/obs"
)

// fakeClock is a manually advanced wall clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestSizer builds a rateSizer with a seeded fork-latency estimate,
// as if the pool had already measured slow forks.
func newTestSizer(min, max int, halfLife time.Duration, forkLat time.Duration) *rateSizer {
	z := &rateSizer{
		min:      min,
		max:      max,
		headroom: 2,
		rate:     obs.NewRateEWMA(halfLife),
		fork:     obs.NewDurEWMA(0.3),
	}
	z.observeFork(forkLat)
	return z
}

// TestRateSizerBurstAndDecay drives the autoscaler's target with a fake
// clock: a sustained burst must push the target to the max bound, and an
// idle period must decay it back to the min bound.
func TestRateSizerBurstAndDecay(t *testing.T) {
	clk := newFakeClock()
	// Fork latency 100ms, headroom 2: a 1 kHz burst asks for ~200 warm
	// sessions, far past max — the bound must clamp it.
	z := newTestSizer(1, 6, time.Second, 100*time.Millisecond)

	if got := z.target(clk.Now()); got != 1 {
		t.Fatalf("idle target = %d, want min 1", got)
	}

	// Bursty load: 1000 arrivals spaced 1ms apart.
	for i := 0; i < 1000; i++ {
		clk.Advance(time.Millisecond)
		z.observeArrival(clk.Now())
	}
	if got := z.target(clk.Now()); got != 6 {
		t.Fatalf("burst target = %d, want max 6", got)
	}

	// The rate estimate halves every half-life; after many half-lives
	// idle the target must be back at the floor.
	if got := z.target(clk.Now().Add(30 * time.Second)); got != 1 {
		t.Fatalf("post-idle target = %d, want min 1", got)
	}

	// Monotone in between: decay never raises the target.
	prev := z.target(clk.Now())
	for idle := time.Second; idle <= 10*time.Second; idle += time.Second {
		cur := z.target(clk.Now().Add(idle))
		if cur > prev {
			t.Fatalf("target rose during idle decay: %d -> %d at %v", prev, cur, idle)
		}
		prev = cur
	}
}

// TestRateSizerBounds pins the clamp arithmetic at both ends.
func TestRateSizerBounds(t *testing.T) {
	clk := newFakeClock()
	z := newTestSizer(2, 4, time.Second, time.Hour) // absurd fork latency
	clk.Advance(time.Millisecond)
	z.observeArrival(clk.Now())
	clk.Advance(time.Millisecond)
	z.observeArrival(clk.Now())
	if got := z.target(clk.Now()); got != 4 {
		t.Fatalf("target = %d, want clamped max 4", got)
	}
	zz := newTestSizer(2, 4, time.Second, 0) // no fork cost: floor wins
	if got := zz.target(clk.Now()); got != 2 {
		t.Fatalf("target = %d, want clamped min 2", got)
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPoolAutoscaleWarmCount exercises the full loop on a real pool with
// a fake wall clock: under a bursty fake-clock load the warm count must
// rise toward the max bound, and once the clock jumps far past the
// half-life the refiller must close surplus sessions until the warm
// count is back at the min bound.
func TestPoolAutoscaleWarmCount(t *testing.T) {
	parent, err := New(Config{RAMSize: 256 << 20, HostThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	clk := newFakeClock()
	const minWarm, maxWarm = 1, 4
	sizer := newTestSizer(minWarm, maxWarm, time.Second, 500*time.Millisecond)
	pool, err := newSessionPool(snap, Config{}, sizer, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Burst: arrivals 1ms apart at a 500ms seeded fork latency ask for
	// ~1000 warm sessions; the target clamps to maxWarm and the refiller
	// must actually fill the channel that far. Each Get re-seeds the
	// fork estimate so the real (microsecond) forks the burst triggers
	// don't drag it down mid-test.
	for i := 0; i < 200; i++ {
		clk.Advance(time.Millisecond)
		s, err := pool.Get(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
		sizer.observeFork(500 * time.Millisecond)
	}
	if got := pool.WarmTarget(); got != maxWarm {
		t.Fatalf("burst warm target = %d, want %d", got, maxWarm)
	}
	waitFor(t, "warm count to rise to the max bound", func() bool {
		pool.poke()
		return pool.Warm() == maxWarm
	})

	// Idle: jump far past the half-life. The decayed target must shrink
	// the pool back to the floor without any Get traffic.
	clk.Advance(10 * time.Minute)
	if got := pool.WarmTarget(); got != minWarm {
		t.Fatalf("idle warm target = %d, want %d", got, minWarm)
	}
	waitFor(t, "warm count to decay to the min bound", func() bool {
		pool.poke()
		return pool.Warm() == minWarm
	})

	m := pool.Metrics()
	if m.Warm != minWarm || m.WarmTarget != minWarm {
		t.Fatalf("metrics warm=%d target=%d, want both %d", m.Warm, m.WarmTarget, minWarm)
	}
	if m.Hits+m.InlineForks != 200 {
		t.Fatalf("hits %d + inline %d != 200 hand-outs", m.Hits, m.InlineForks)
	}
	if m.GetWait.Count != 200 {
		t.Fatalf("get-wait histogram count = %d, want 200", m.GetWait.Count)
	}
	if m.RefillFork.Count == 0 {
		t.Fatal("refill-fork histogram never observed a fork")
	}
}

// TestAutoscalingPoolDefaults pins the public constructor's default
// bounds resolution and basic hand-out behaviour.
func TestAutoscalingPoolDefaults(t *testing.T) {
	a := PoolAutoscale{}.withDefaults()
	if a.MinWarm != 1 || a.MaxWarm != 4 || a.HalfLife != 5*time.Second || a.Headroom != 2 {
		t.Fatalf("defaults = %+v", a)
	}
	a = PoolAutoscale{MinWarm: 3}.withDefaults()
	if a.MaxWarm != 12 {
		t.Fatalf("MaxWarm default = %d, want 4×MinWarm = 12", a.MaxWarm)
	}

	parent, err := New(Config{RAMSize: 256 << 20, HostThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewAutoscalingSessionPool(snap, PoolAutoscale{MinWarm: 1, MaxWarm: 2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	s, err := pool.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res, err := s.Run(context.Background(), "URNG"); err != nil || !res.Verified {
		t.Fatalf("autoscaled pooled session run: err=%v res=%+v", err, res)
	}
	s.Close()
	if pool.WarmTarget() < 1 || pool.WarmTarget() > 2 {
		t.Fatalf("warm target %d outside [1,2]", pool.WarmTarget())
	}
}
