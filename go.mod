module mobilesim

go 1.21
