// Observability surface tests: every run carries the modelled cost
// estimates, Session.Metrics() accounts queue-wait and execution
// latency per run, and the model values are deterministic functions of
// the run's counters.
package mobilesim_test

import (
	"context"
	"testing"

	"mobilesim"
)

// obsConfig pins HostThreads to 1 so every counter — and therefore the
// modelled cost, a pure function of the counters — is exactly
// reproducible across sessions.
func obsConfig() mobilesim.Config {
	return mobilesim.Config{RAMSize: 128 << 20, HostThreads: 1}
}

// TestRunResultModeled: a local run populates both cost-model estimates,
// and a second fresh session running the same workload at the same scale
// reproduces them bit for bit.
func TestRunResultModeled(t *testing.T) {
	run := func() mobilesim.ModeledCost {
		t.Helper()
		sess, err := mobilesim.New(obsConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		res, err := sess.Run(context.Background(), "BFS", mobilesim.WithScale(4))
		if err != nil {
			t.Fatal(err)
		}
		if res.Modeled.MobileCycles <= 0 || res.Modeled.DesktopCycles <= 0 {
			t.Fatalf("modelled cost not populated: %+v", res.Modeled)
		}
		if res.QueueWait < 0 {
			t.Fatalf("queue wait %v, want >= 0", res.QueueWait)
		}
		return res.Modeled
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("modelled cost not deterministic: %+v vs %+v", first, second)
	}
}

// TestSessionMetricsCounts: the per-session histograms observe one
// sample per run, queue-wait and execution phase alike.
func TestSessionMetricsCounts(t *testing.T) {
	sess, err := mobilesim.New(obsConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if m := sess.Metrics(); m.QueueWait.Count != 0 || m.Exec.Count != 0 {
		t.Fatalf("fresh session metrics %+v, want empty", m)
	}
	for i := 1; i <= 2; i++ {
		if _, err := sess.Run(context.Background(), "Reduction", mobilesim.WithScale(1)); err != nil {
			t.Fatal(err)
		}
		m := sess.Metrics()
		if m.QueueWait.Count != uint64(i) || m.Exec.Count != uint64(i) {
			t.Fatalf("after %d runs: queue-wait count %d, exec count %d", i, m.QueueWait.Count, m.Exec.Count)
		}
		if m.Exec.Quantile(0.5) <= 0 {
			t.Fatalf("exec p50 = %v, want > 0", m.Exec.Quantile(0.5))
		}
	}
}
