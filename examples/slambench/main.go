// SLAMBench: run the KFusion-style dense-SLAM pipeline in its three
// configurations on the full simulated stack, and show how the simulated
// metrics predict the configuration ranking — the Fig 14 workflow for
// optimising an application without hardware.
//
//	go run ./examples/slambench
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mobilesim/internal/cl"
	"mobilesim/internal/costmodel"
	"mobilesim/internal/platform"
	"mobilesim/internal/slam"
)

func main() {
	mali := costmodel.MaliG71()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tkernels\tinstr\tglobal LS\tlocal LS\tjobs\tIRQs\tresidual\test. FPS (rel)")

	var baseCost float64
	for _, cfg := range []slam.Config{slam.Standard(1), slam.Fast3(1), slam.Express(1)} {
		p, err := platform.New(platform.Config{RAMSize: 512 << 20})
		if err != nil {
			log.Fatal(err)
		}
		ctx, err := cl.NewContext(p, "")
		if err != nil {
			log.Fatal(err)
		}
		m, err := slam.Run(ctx, cfg)
		if err != nil {
			log.Fatalf("%s: %v", cfg.Name, err)
		}
		gs, sys := p.GPU.Stats()
		cost := mali.Estimate(&gs)
		if baseCost == 0 {
			baseCost = cost
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.2e\t%.2f\n",
			cfg.Name, m.KernelsRun, gs.TotalInstr(), gs.GlobalLS, gs.LocalLS,
			sys.ComputeJobs, sys.IRQsAsserted, m.FinalResidual, baseCost/cost)
		p.Close()
	}
	tw.Flush()
	fmt.Println("\nThe simulated metrics rank the configurations exactly as the")
	fmt.Println("paper's hardware measurements do: standard < fast3 < express.")
}
