// SLAMBench: run the KFusion-style dense-SLAM pipeline in its three
// configurations on the full simulated stack, and show how the simulated
// metrics predict the configuration ranking — the Fig 14 workflow for
// optimising an application without hardware.
//
//	go run ./examples/slambench
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mobilesim"
)

func main() {
	mali := mobilesim.MaliG71()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tkernels\tinstr\tglobal LS\tlocal LS\tjobs\tIRQs\tresidual\test. FPS (rel)")

	var baseCost float64
	for _, cfg := range []mobilesim.SLAMConfig{
		mobilesim.SLAMStandard(1), mobilesim.SLAMFast3(1), mobilesim.SLAMExpress(1),
	} {
		sess, err := mobilesim.New(mobilesim.Config{})
		if err != nil {
			log.Fatal(err)
		}
		m, err := sess.RunSLAM(cfg)
		if err != nil {
			log.Fatalf("%s: %v", cfg.Name, err)
		}
		st := sess.Stats()
		gs, sys := st.GPU, st.System
		cost := mali.Estimate(&gs)
		if baseCost == 0 {
			baseCost = cost
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.2e\t%.2f\n",
			cfg.Name, m.KernelsRun, gs.TotalInstr(), gs.GlobalLS, gs.LocalLS,
			sys.ComputeJobs, sys.IRQsAsserted, m.FinalResidual, baseCost/cost)
		sess.Close()
	}
	tw.Flush()
	fmt.Println("\nThe simulated metrics rank the configurations exactly as the")
	fmt.Println("paper's hardware measurements do: standard < fast3 < express.")
}
