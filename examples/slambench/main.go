// SLAMBench: run the KFusion-style dense-SLAM pipeline in its three
// configurations through the unified Workload API, and show how the
// simulated metrics predict the configuration ranking — the Fig 14
// workflow for optimising an application without hardware.
//
//	go run ./examples/slambench
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mobilesim"
)

func main() {
	mali := mobilesim.MaliG71()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tkernels\tinstr\tglobal LS\tlocal LS\tjobs\tIRQs\tresidual\test. FPS (rel)")

	var baseCost float64
	for _, name := range []string{"slam/standard", "slam/fast3", "slam/express"} {
		sess, err := mobilesim.New(mobilesim.Config{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Run(context.Background(), name)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		gs, sys := res.Stats.GPU, res.Stats.System
		m := res.SLAM
		cost := mali.Estimate(&gs)
		if baseCost == 0 {
			baseCost = cost
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.2e\t%.2f\n",
			res.Workload, m.KernelsRun, gs.TotalInstr(), gs.GlobalLS, gs.LocalLS,
			sys.ComputeJobs, sys.IRQsAsserted, m.FinalResidual, baseCost/cost)
		sess.Close()
	}
	tw.Flush()
	fmt.Println("\nThe simulated metrics rank the configurations exactly as the")
	fmt.Println("paper's hardware measurements do: standard < fast3 < express.")
}
