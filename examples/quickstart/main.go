// Quickstart: boot the full simulated platform, JIT-compile an OpenCL
// kernel through the vendor-style toolchain, run it on the simulated GPU
// via the driver stack, and read the results and statistics back — all
// through the public mobilesim facade.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mobilesim"
)

const kernelSrc = `
kernel void axpb(global float* x, global float* y, float a, float b, int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + b;
    }
}
`

func main() {
	// 1. Boot a session: CPU cores, Bifrost-style GPU, devices, memory,
	//    kernel driver (GPU soft reset, address-space setup, IRQ
	//    unmasking — all through guest code and memory-mapped registers)
	//    and an OpenCL-like context on top.
	sess, err := mobilesim.New(mobilesim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// 2. Create buffers and upload data (simulated-CPU memcpy).
	const n = 1024
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i)
	}
	bx, err := sess.NewBuffer(4 * n)
	if err != nil {
		log.Fatal(err)
	}
	by, err := sess.NewBuffer(4 * n)
	if err != nil {
		log.Fatal(err)
	}
	if err := bx.WriteF32(nil, xs); err != nil {
		log.Fatal(err)
	}

	// 3. Build the program (JIT at load time, like the vendor stack) and
	//    bind arguments in declaration order.
	k, err := sess.LoadKernel(kernelSrc, "axpb")
	if err != nil {
		log.Fatal(err)
	}
	if err := k.SetArgs(bx, by, float32(2.0), float32(1.0), n); err != nil {
		log.Fatal(err)
	}

	// 4. Launch: descriptor written to shared memory, doorbell rung,
	//    Job Manager dispatches, completion IRQ handled by the guest ISR.
	//    The context can cancel the launch mid-kernel: the GPU soft-stops
	//    at a clause boundary and the session stays usable.
	if err := k.Launch(context.Background(), mobilesim.Dim1(n), mobilesim.Dim1(64)); err != nil {
		log.Fatal(err)
	}

	// 5. Read back and inspect.
	ys, err := by.ReadF32(nil, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("y[0]=%g y[1]=%g y[%d]=%g\n", ys[0], ys[1], n-1, ys[n-1])

	st := sess.Stats()
	fmt.Printf("GPU executed %d instructions over %d threads in %d job(s)\n",
		st.GPU.TotalInstr(), st.GPU.Threads, st.System.ComputeJobs)
	fmt.Printf("system traffic: %d ctrl-reg writes, %d reads, %d IRQ(s), %d pages touched\n",
		st.System.CtrlRegWrites, st.System.CtrlRegReads, st.System.IRQsAsserted,
		st.System.PagesAccessed)
	fmt.Printf("driver ran %d guest instructions on the simulated CPU\n", st.GuestInstructions)
}
