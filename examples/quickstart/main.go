// Quickstart: boot the full simulated platform, JIT-compile an OpenCL
// kernel through the vendor-style toolchain, run it on the simulated GPU
// via the driver stack, and read the results and statistics back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mobilesim/internal/cl"
	"mobilesim/internal/platform"
)

const kernelSrc = `
kernel void axpb(global float* x, global float* y, float a, float b, int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + b;
    }
}
`

func main() {
	// 1. Boot the platform: CPU cores, Bifrost-style GPU, devices, memory.
	p, err := platform.New(platform.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// 2. Open an OpenCL-like context. This loads the kernel driver:
	//    GPU soft reset, address-space setup, IRQ unmasking — all through
	//    guest code and memory-mapped registers.
	ctx, err := cl.NewContext(p, "" /* default JIT version 6.1 */)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Create buffers and upload data (simulated-CPU memcpy).
	const n = 1024
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i)
	}
	bx, err := ctx.CreateBuffer(4 * n)
	if err != nil {
		log.Fatal(err)
	}
	by, err := ctx.CreateBuffer(4 * n)
	if err != nil {
		log.Fatal(err)
	}
	if err := ctx.WriteF32(bx, xs); err != nil {
		log.Fatal(err)
	}

	// 4. Build the program (JIT at build time, like the vendor stack).
	prog, err := ctx.BuildProgram(kernelSrc)
	if err != nil {
		log.Fatal(err)
	}
	k, err := prog.CreateKernel("axpb")
	if err != nil {
		log.Fatal(err)
	}
	for i, arg := range []any{bx, by} {
		if err := k.SetArgBuffer(i, arg.(*cl.Buffer)); err != nil {
			log.Fatal(err)
		}
	}
	if err := k.SetArgFloat(2, 2.0); err != nil {
		log.Fatal(err)
	}
	if err := k.SetArgFloat(3, 1.0); err != nil {
		log.Fatal(err)
	}
	if err := k.SetArgInt(4, n); err != nil {
		log.Fatal(err)
	}

	// 5. Enqueue: descriptor written to shared memory, doorbell rung,
	//    Job Manager dispatches, completion IRQ handled by the guest ISR.
	if err := ctx.EnqueueKernel(k, cl.G1(n), cl.G1(64)); err != nil {
		log.Fatal(err)
	}

	// 6. Read back and inspect.
	ys, err := ctx.ReadF32(by, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("y[0]=%g y[1]=%g y[%d]=%g\n", ys[0], ys[1], n-1, ys[n-1])

	gs, sys := p.GPU.Stats()
	fmt.Printf("GPU executed %d instructions over %d threads in %d job(s)\n",
		gs.TotalInstr(), gs.Threads, sys.ComputeJobs)
	fmt.Printf("system traffic: %d ctrl-reg writes, %d reads, %d IRQ(s), %d pages touched\n",
		sys.CtrlRegWrites, sys.CtrlRegReads, sys.IRQsAsserted, sys.PagesAccessed)
	fmt.Printf("driver ran %d guest instructions on the simulated CPU\n", p.CPUs[0].Instret)
}
