// SGEMM tuning study: run the six-step desktop-GPU optimisation ladder
// through the unified Workload API on the simulated mobile GPU, print the
// per-variant statistics, and show how the analytical Mali and desktop
// models rank them differently — the Fig 15 workflow demonstrating that
// desktop optimisations trigger mobile bottlenecks.
//
//	go run ./examples/sgemm-tuning
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"mobilesim"
)

func main() {
	const scale = 4 // 64x64x64 matrices (dim = 16*scale)

	mali := mobilesim.MaliG71()
	desk := mobilesim.K20m()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tinstr\tglobal LS\tlocal LS\tregs\tMali est.\tdesktop est.")

	for _, v := range mobilesim.SgemmVariants() {
		sess, err := mobilesim.New(mobilesim.Config{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Run(context.Background(),
			"sgemm6/"+strings.ToLower(v.Name), mobilesim.WithScale(scale))
		if err != nil {
			log.Fatalf("%s: %v", v.Name, err)
		}
		if !res.Verified {
			log.Fatalf("%s: %v", v.Name, res.VerifyErr)
		}
		gs := res.Stats.GPU
		fmt.Fprintf(tw, "%d:%s\t%d\t%d\t%d\t%d\t%.2e\t%.2e\n",
			v.ID, v.Name, gs.TotalInstr(), gs.GlobalLS, gs.LocalLS, gs.RegistersUsed,
			mali.Estimate(&gs), desk.Estimate(&gs, v.Profile, 1))
		sess.Close()
	}
	tw.Flush()
	fmt.Println("\nLower is faster. Note the divergent rankings: the 2D register-")
	fmt.Println("blocked variant the desktop model likes is near the bottom on the")
	fmt.Println("mobile model, where main-memory traffic dominates cost.")
}
