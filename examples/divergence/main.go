// Divergence analysis: run the BFS benchmark with per-run control-flow-
// graph collection and print the clause-level CFG with divergence
// annotations — the Fig 6 workflow for pinpointing where warps split.
// CFG collection is requested per run (WithCFG), so the session itself
// carries no instrumentation overhead for other runs.
//
//	go run ./examples/divergence
package main

import (
	"context"
	"fmt"
	"log"

	"mobilesim"
)

func main() {
	sess, err := mobilesim.New(mobilesim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	res, err := sess.Run(context.Background(), "BFS",
		mobilesim.WithScale(2048), mobilesim.WithCFG())
	if err != nil {
		log.Fatal(err)
	}
	if !res.Verified {
		log.Fatal(res.VerifyErr)
	}

	gs, sys := res.Stats.GPU, res.Stats.System
	fmt.Printf("BFS: %d jobs, %d warp branches, %d divergent (%.1f%%)\n\n",
		sys.ComputeJobs, gs.Branches, gs.DivergentBranches,
		100*float64(gs.DivergentBranches)/float64(gs.Branches))
	fmt.Println("control-flow graph (clause offsets within the shader binary;")
	fmt.Println("edge percentages are the proportion of threads taking each path):")
	fmt.Println()
	fmt.Print(res.CFG)
}
