// Divergence analysis: run the BFS benchmark with control-flow-graph
// collection and print the clause-level CFG with divergence annotations —
// the Fig 6 workflow for pinpointing where warps split.
//
//	go run ./examples/divergence
package main

import (
	"fmt"
	"log"

	"mobilesim/internal/cl"
	"mobilesim/internal/gpu"
	"mobilesim/internal/platform"
	"mobilesim/internal/workloads"
)

func main() {
	cfg := gpu.DefaultConfig()
	cfg.CollectCFG = true
	p, err := platform.New(platform.Config{RAMSize: 512 << 20, GPU: cfg})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	ctx, err := cl.NewContext(p, "")
	if err != nil {
		log.Fatal(err)
	}

	spec, err := workloads.ByName("BFS")
	if err != nil {
		log.Fatal(err)
	}
	inst := spec.Make(2048)
	res, err := inst.Run(ctx, "BFS")
	if err != nil {
		log.Fatal(err)
	}
	if !res.Verified {
		log.Fatal(res.VerifyErr)
	}

	gs, sys := p.GPU.Stats()
	fmt.Printf("BFS: %d jobs, %d warp branches, %d divergent (%.1f%%)\n\n",
		sys.ComputeJobs, gs.Branches, gs.DivergentBranches,
		100*float64(gs.DivergentBranches)/float64(gs.Branches))
	fmt.Println("control-flow graph (clause offsets within the shader binary;")
	fmt.Println("edge percentages are the proportion of threads taking each path):")
	fmt.Println()
	fmt.Print(p.GPU.CFGGraph().Render())
}
