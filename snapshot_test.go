package mobilesim_test

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"mobilesim"
)

// snapCfg is the reference configuration for snapshot determinism tests:
// one host thread makes every workload — including BFS's benignly racy
// frontier — exactly deterministic, so cold-boot and restored runs can be
// compared bit for bit.
var snapCfg = mobilesim.Config{RAMSize: 256 << 20, HostThreads: 1}

// runStats runs one workload on a fresh session built by mk and returns
// the per-run stats delta with the host-time fields zeroed (wall-clock is
// not part of the deterministic contract).
func runStats(t *testing.T, mk func() (*mobilesim.Session, error), name string, scale int) mobilesim.Stats {
	t.Helper()
	s, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(context.Background(), name, mobilesim.WithScale(scale))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.VerifyErr != nil {
		t.Fatalf("%s: verification failed: %v", name, res.VerifyErr)
	}
	st := res.Stats
	st.DriverCPUTime = 0
	return st
}

// TestSnapshotGoldenStatsAllBenchmarks is the determinism acceptance
// test: for every registered Table II benchmark (and the SGEMM ladder's
// first rung), a session restored from a warm snapshot must reproduce the
// cold-boot per-run statistics exactly — instruction mixes, memory
// accesses, TLB hit/walk counts, pages, jobs, guest instructions, all of
// it.
func TestSnapshotGoldenStatsAllBenchmarks(t *testing.T) {
	parent, err := mobilesim.New(snapCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	var names []struct {
		name  string
		scale int
	}
	for _, w := range mobilesim.Workloads() {
		if w.Kind == mobilesim.KindBenchmark {
			names = append(names, struct {
				name  string
				scale int
			}{w.Name, w.SmallScale})
		}
	}
	names = append(names, struct {
		name  string
		scale int
	}{"sgemm6/naive", 1})

	for _, n := range names {
		n := n
		t.Run(n.name, func(t *testing.T) {
			cold := runStats(t, func() (*mobilesim.Session, error) {
				return mobilesim.New(snapCfg)
			}, n.name, n.scale)
			forked := runStats(t, func() (*mobilesim.Session, error) {
				return mobilesim.New(mobilesim.Config{}, mobilesim.FromSnapshot(snap))
			}, n.name, n.scale)
			if cold != forked {
				t.Errorf("stats diverge:\ncold:   %+v\nforked: %+v", cold, forked)
			}
		})
	}
}

// TestSnapshotGoldenStatsReferenceThreads repeats the comparison on the
// golden-table reference configuration (HostThreads 4) for a
// deterministic, data-race-free subset.
func TestSnapshotGoldenStatsReferenceThreads(t *testing.T) {
	cfg := mobilesim.Config{RAMSize: 256 << 20, HostThreads: 4}
	parent, err := mobilesim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"MatrixTranspose", "SGEMM", "FloydWarshall"} {
		cold := runStats(t, func() (*mobilesim.Session, error) {
			return mobilesim.New(cfg)
		}, name, 0)
		forked := runStats(t, func() (*mobilesim.Session, error) {
			return mobilesim.New(mobilesim.Config{}, mobilesim.FromSnapshot(snap))
		}, name, 0)
		if cold != forked {
			t.Errorf("%s: stats diverge at HostThreads 4:\ncold:   %+v\nforked: %+v", name, cold, forked)
		}
	}
}

// TestForkIsolation proves a fork's writes never leak: siblings forked
// from the same snapshot, and the snapshot itself, are unaffected by a
// fork running workloads. Runs concurrently so -race also audits the
// shared image.
func TestForkIsolation(t *testing.T) {
	parent, err := mobilesim.New(snapCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Several forks run different workloads concurrently against the one
	// shared image.
	jobs := []struct {
		name  string
		scale int
	}{
		{"BFS", 4},
		{"MatrixTranspose", 0},
		{"Reduction", 0},
		{"BFS", 4},
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(name string, scale int) {
			defer wg.Done()
			s, err := mobilesim.New(mobilesim.Config{}, mobilesim.FromSnapshot(snap))
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			res, err := s.Run(context.Background(), name, mobilesim.WithScale(scale))
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			if res.VerifyErr != nil {
				t.Errorf("%s: %v", name, res.VerifyErr)
			}
		}(j.name, j.scale)
	}
	wg.Wait()

	// After all that traffic, a fresh fork must still behave exactly like
	// the first fork of a pristine snapshot.
	a := runStats(t, func() (*mobilesim.Session, error) {
		return mobilesim.New(mobilesim.Config{}, mobilesim.FromSnapshot(snap))
	}, "BFS", 4)
	b := runStats(t, func() (*mobilesim.Session, error) {
		return mobilesim.New(mobilesim.Config{}, mobilesim.FromSnapshot(snap))
	}, "BFS", 4)
	if a != b {
		t.Fatalf("forks of a used snapshot diverge:\n%+v\n%+v", a, b)
	}
}

// TestSnapshotSerializationRoundTrip pins the wire format: encoding is
// deterministic, decode(encode(s)) restores a fully working session, and
// re-encoding the decoded snapshot is byte-identical.
func TestSnapshotSerializationRoundTrip(t *testing.T) {
	parent, err := mobilesim.New(snapCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	var buf1, buf2 bytes.Buffer
	if err := snap.Encode(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := snap.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("encoding is not deterministic")
	}

	decoded, err := mobilesim.ReadSnapshot(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := decoded.Encode(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf3.Bytes()) {
		t.Fatal("decode/encode round trip changed the bytes")
	}

	cold := runStats(t, func() (*mobilesim.Session, error) {
		return mobilesim.New(snapCfg)
	}, "Reduction", 0)
	restored := runStats(t, func() (*mobilesim.Session, error) {
		return mobilesim.New(mobilesim.Config{}, mobilesim.FromSnapshot(decoded))
	}, "Reduction", 0)
	if cold != restored {
		t.Fatalf("decoded snapshot diverges:\ncold:     %+v\nrestored: %+v", cold, restored)
	}

	if _, err := mobilesim.ReadSnapshot(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted as snapshot")
	}
}

// TestSnapshotSerialisedOnQueue pins capture ordering: a snapshot taken
// while a run is queued waits for it, so the image includes that run's
// effects.
func TestSnapshotSerialisedOnQueue(t *testing.T) {
	s, err := mobilesim.New(snapCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pending, err := s.Submit(context.Background(), "MatrixTranspose")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	res, err := pending.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// The run completed before the capture, so the snapshot's cumulative
	// statistics include it.
	f, err := mobilesim.New(mobilesim.Config{}, mobilesim.FromSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := f.Stats().System.ComputeJobs; got < res.Stats.System.ComputeJobs || got == 0 {
		t.Fatalf("snapshot misses the queued run: %d jobs", got)
	}
}

// blockingWorkload parks in Execute until its context is cancelled —
// a controllable "long run" for queue-ordering tests.
type blockingWorkload struct{ started chan struct{} }

func (w blockingWorkload) Info() mobilesim.WorkloadInfo {
	return mobilesim.WorkloadInfo{Name: "test/blocking"}
}

func (w blockingWorkload) Execute(ctx context.Context, s *mobilesim.Session, opt *mobilesim.RunOptions) (*mobilesim.RunResult, error) {
	close(w.started)
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestCloseDuringQueuedSnapshot closes the session while a run is
// executing and a Snapshot is queued behind it: the snapshot must fail
// with ErrClosed only after the running entry releases its slot, so
// Close never tears the platform down under an executing run (the
// released-chain invariant, audited under -race).
func TestCloseDuringQueuedSnapshot(t *testing.T) {
	s, err := mobilesim.New(snapCfg)
	if err != nil {
		t.Fatal(err)
	}
	w := blockingWorkload{started: make(chan struct{})}
	pending, err := s.SubmitWorkload(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	<-w.started

	snapErr := make(chan error, 1)
	go func() {
		_, err := s.Snapshot()
		snapErr <- err
	}()
	s.Close()
	// Either outcome is legal — ErrClosed, or a capture that won the race
	// and completed before teardown — but both must respect the released
	// chain: no deadlock, no teardown under the executing run (-race
	// audits the latter).
	<-snapErr
	if _, err := pending.Wait(); err == nil {
		t.Fatal("blocked run completed without error")
	}
}

// TestFromSnapshotConfigRules pins the merge semantics of FromSnapshot.
func TestFromSnapshotConfigRules(t *testing.T) {
	parent, err := mobilesim.New(snapCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Mismatching architectural shape is refused.
	if _, err := mobilesim.New(mobilesim.Config{RAMSize: 512 << 20}, mobilesim.FromSnapshot(snap)); err == nil {
		t.Fatal("RAM mismatch accepted")
	}
	if _, err := mobilesim.New(mobilesim.Config{ShaderCores: 2}, mobilesim.FromSnapshot(snap)); err == nil {
		t.Fatal("shader-core mismatch accepted")
	}
	// Explicitly restating the snapshot's shape is fine.
	s, err := mobilesim.New(mobilesim.Config{RAMSize: 256 << 20}, mobilesim.FromSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// HostThreads is a host-side knob and may be overridden.
	s, err = mobilesim.New(mobilesim.Config{HostThreads: 3}, mobilesim.FromSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Config().HostThreads; got != 3 {
		t.Fatalf("HostThreads override lost: %d", got)
	}
	res, err := s.Run(context.Background(), "URNG")
	if err != nil || res.VerifyErr != nil {
		t.Fatalf("overridden session run: %v / %v", err, res.VerifyErr)
	}
	s.Close()
}

// TestSessionPool exercises the warm pool: hand-out, refill, on-demand
// forking and close semantics.
func TestSessionPool(t *testing.T) {
	parent, err := mobilesim.New(snapCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pool, err := mobilesim.NewSessionPool(snap, 2, mobilesim.Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Draw more sessions than the pool size: Get must never block.
	var sessions []*mobilesim.Session
	for i := 0; i < 5; i++ {
		s, err := pool.Get(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	res, err := sessions[0].Run(context.Background(), "URNG")
	if err != nil || res.VerifyErr != nil {
		t.Fatalf("pooled session run: %v / %v", err, res.VerifyErr)
	}
	for _, s := range sessions {
		s.Close()
	}
	if pool.Forked() < 5 {
		t.Fatalf("forked %d sessions, want >= 5", pool.Forked())
	}

	pool.Close()
	pool.Close() // idempotent
	if _, err := pool.Get(context.Background()); err == nil {
		t.Fatal("Get succeeded on a closed pool")
	}
}

// TestSessionPoolCounters pins the hit / inline-fork accounting: every
// successful Get is exactly one of the two, and draining faster than the
// refiller takes the inline-fork path.
func TestSessionPoolCounters(t *testing.T) {
	parent, err := mobilesim.New(snapCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pool, err := mobilesim.NewSessionPool(snap, 1, mobilesim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Draw in a tight loop until the warm channel has been caught empty
	// at least once; the refiller needs a full fork per hand-out, so a
	// burst must eventually outrun it.
	var gets uint64
	deadline := time.Now().Add(30 * time.Second)
	for pool.InlineForks() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("after %d draws the pool never forked inline (hits=%d)", gets, pool.Hits())
		}
		s, err := pool.Get(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		gets++
		s.Close()
	}
	if pool.Hits()+pool.InlineForks() != gets {
		t.Fatalf("hits %d + inline forks %d != %d hand-outs",
			pool.Hits(), pool.InlineForks(), gets)
	}
}

// TestBatchForksFromSnapshot runs a uniform batch (which forks every job
// from one warm snapshot) and a ColdBoot batch, and requires identical
// aggregate statistics at HostThreads 1.
func TestBatchForksFromSnapshot(t *testing.T) {
	jobs := []mobilesim.BatchJob{
		{Benchmark: "MatrixTranspose"},
		{Benchmark: "URNG"},
		{Benchmark: "Reduction"},
		{Benchmark: "MatrixTranspose"},
	}
	warm := &mobilesim.Batch{Jobs: jobs, Config: snapCfg, Workers: 2}
	cold := &mobilesim.Batch{Jobs: jobs, Config: snapCfg, Workers: 2, ColdBoot: true}

	wres, err := warm.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cres, err := cold.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if wres.Completed != len(jobs) || cres.Completed != len(jobs) {
		t.Fatalf("completed %d/%d, want %d", wres.Completed, cres.Completed, len(jobs))
	}
	wa, ca := wres.Aggregate, cres.Aggregate
	wa.DriverCPUTime, ca.DriverCPUTime = 0, 0
	if wa != ca {
		t.Fatalf("aggregates diverge:\nwarm: %+v\ncold: %+v", wa, ca)
	}
}
