// Cluster-mode Batch tests: the determinism pin proving that a batch
// fanned out over simulated mobilesimd hosts — under injected host loss,
// forced retries, hedged duplicates and mid-stream disconnects —
// aggregates bit-identically to the same jobs run in a local Batch.
package mobilesim_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"mobilesim"
	"mobilesim/internal/cluster/clustertest"
	"mobilesim/internal/hostd"
)

// clusterPinConfig is the shared platform shape for both arms.
// HostThreads 1 pins even the benignly racy BFS frontier counters, so
// every counter in the delta is exactly reproducible.
func clusterPinConfig() mobilesim.Config {
	return mobilesim.Config{RAMSize: 128 << 20, HostThreads: 1}
}

// clusterPinJobs is the Table II suite at small scale.
func clusterPinJobs() []mobilesim.BatchJob {
	var jobs []mobilesim.BatchJob
	for _, b := range mobilesim.Benchmarks() {
		jobs = append(jobs, mobilesim.BatchJob{Benchmark: b.Name, Scale: b.SmallScale})
	}
	return jobs
}

// TestClusterMatchesLocalBatch is the acceptance pin: the suite fanned
// over 1, 2 and 4 fault-injected hosts must aggregate bit-identically to
// the local Batch run. Each simulated host is a real hostd server behind
// a clustertest fault layer injecting a mid-job host kill, a slow host
// that forces hedging, a 5xx retry, and a mid-stream disconnect.
func TestClusterMatchesLocalBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("boots many simulator hosts")
	}
	jobs := clusterPinJobs()
	local, err := (&mobilesim.Batch{Jobs: jobs, Config: clusterPinConfig()}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if local.Completed != len(jobs) {
		t.Fatalf("local batch: completed=%d failed=%d, want %d/0", local.Completed, local.Failed, len(jobs))
	}

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("hosts=%d", n), func(t *testing.T) {
			hosts := make([]*clustertest.Host, n)
			urls := make([]string, n)
			for i := range hosts {
				srv, err := hostd.New(hostd.Config{Sim: clusterPinConfig(), PoolSize: 2})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(srv.Close)
				hosts[i] = clustertest.NewWithBackend(srv.Mux())
				t.Cleanup(hosts[i].Close)
				urls[i] = hosts[i].URL()
			}

			// Fault injection: every delivery-machinery path fires during
			// the run. The kill only when a survivor exists.
			hosts[0].ScriptRun(clustertest.Script{Status: 503})
			hosts[0].ScriptRun(clustertest.Script{Delay: 2 * time.Second}) // forces a hedge (n>1)
			hosts[0].ScriptRun(clustertest.Script{Disconnect: true, AfterBytes: 40})
			if n >= 2 {
				hosts[1].ScriptRun(clustertest.Script{Kill: true})
			}

			batch := &mobilesim.Batch{
				Jobs:   jobs,
				Config: clusterPinConfig(),
				Hosts:  urls,
				Cluster: mobilesim.ClusterConfig{
					HedgeAfter:   50 * time.Millisecond,
					MaxAttempts:  6,
					RetryBackoff: 10 * time.Millisecond,
					// 3 consecutive failures: the scripted 503 and the
					// mid-stream disconnect (interleaved with successes)
					// leave their host in rotation, while the killed host —
					// failing every attempt from the kill onward — is
					// evicted promptly.
					HostFailureLimit: 3,
				},
			}
			remote, err := batch.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if remote.Completed != len(jobs) {
				for i := range remote.Jobs {
					if remote.Jobs[i].Err != nil {
						t.Logf("job %d (%s): %v", i, remote.Jobs[i].Job.Benchmark, remote.Jobs[i].Err)
					}
				}
				t.Fatalf("cluster batch: completed=%d failed=%d skipped=%d, want %d/0/0",
					remote.Completed, remote.Failed, remote.Skipped, len(jobs))
			}

			// The pin: deterministic counters must match the local run
			// bit for bit. Wall-clock fields (DriverCPUTime, durations)
			// measure host time and are excluded by construction.
			if remote.Aggregate.GPU != local.Aggregate.GPU {
				t.Errorf("GPU counters diverge:\n cluster %+v\n local   %+v",
					remote.Aggregate.GPU, local.Aggregate.GPU)
			}
			if remote.Aggregate.System != local.Aggregate.System {
				t.Errorf("system counters diverge:\n cluster %+v\n local   %+v",
					remote.Aggregate.System, local.Aggregate.System)
			}
			if remote.Aggregate.GuestInstructions != local.Aggregate.GuestInstructions {
				t.Errorf("guest instructions diverge: cluster %d, local %d",
					remote.Aggregate.GuestInstructions, local.Aggregate.GuestInstructions)
			}

			// Prove the faults actually fired rather than the run being a
			// fair-weather pass.
			var requests, faulted uint64
			for _, h := range hosts {
				requests += h.Requests()
				faulted += h.Faulted()
			}
			if requests <= uint64(len(jobs)) {
				t.Errorf("%d run requests for %d jobs: no retries/hedges happened", requests, len(jobs))
			}
			wantFaults := uint64(2) // 503 + disconnect always fire
			if n >= 2 {
				wantFaults++ // the kill
			}
			if faulted < wantFaults {
				t.Errorf("faulted=%d, want >= %d", faulted, wantFaults)
			}
			if n >= 2 && !hosts[1].Dead() {
				t.Error("scripted kill did not take host 1 down")
			}
			// Per-job results verified over the wire, and the modelled
			// cost estimates — pure functions of the integer counters —
			// must cross the wire bit-identical to the local evaluation.
			for i := range remote.Jobs {
				r := remote.Jobs[i].Result
				if r == nil || !r.Verified {
					t.Errorf("job %d (%s) not verified remotely", i, remote.Jobs[i].Job.Benchmark)
					continue
				}
				if r.Modeled.MobileCycles <= 0 || r.Modeled.DesktopCycles <= 0 {
					t.Errorf("job %d (%s): modelled cost not populated: %+v", i, remote.Jobs[i].Job.Benchmark, r.Modeled)
				}
				if lr := local.Jobs[i].Result; lr != nil && r.Modeled != lr.Modeled {
					t.Errorf("job %d (%s): modelled cost diverges: cluster %+v, local %+v",
						i, remote.Jobs[i].Job.Benchmark, r.Modeled, lr.Modeled)
				}
			}

			// The delivery report rode back on the BatchResult: counters
			// reflecting the injected faults, per-host attempt latencies
			// covering every request made.
			cr := remote.Cluster
			if cr == nil {
				t.Fatal("cluster batch result has no ClusterReport")
			}
			if cr.Retries == 0 {
				t.Error("report shows no retries despite the scripted 503")
			}
			if len(cr.Hosts) != n {
				t.Fatalf("report covers %d hosts, want %d", len(cr.Hosts), n)
			}
			// Hedging is opportunistic (it needs a free stream on another
			// host the instant the timer fires), so its count is not
			// pinned — but the per-host histograms must stay consistent
			// with the counters: one hedge observation per hedge launched,
			// and at least one attempt observed per job.
			var attempts, hedged uint64
			for _, h := range cr.Hosts {
				attempts += h.Dispatch.Count + h.Retry.Count + h.Hedge.Count
				hedged += h.Hedge.Count
			}
			if hedged != cr.Hedges {
				t.Errorf("per-host hedge observations %d != hedges counter %d", hedged, cr.Hedges)
			}
			if attempts < uint64(len(jobs)) {
				t.Errorf("per-host latency histograms observed %d attempts for %d jobs", attempts, len(jobs))
			}
		})
	}
}

// TestClusterBatchRejectsPerJobConfig: per-job configs cannot ride the
// shipped snapshot and must be rejected up front.
func TestClusterBatchRejectsPerJobConfig(t *testing.T) {
	cfg := clusterPinConfig()
	batch := &mobilesim.Batch{
		Jobs:   []mobilesim.BatchJob{{Benchmark: "BFS", Config: &cfg}},
		Config: clusterPinConfig(),
		Hosts:  []string{"http://127.0.0.1:1"},
	}
	if _, err := batch.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "per-job Config") {
		t.Fatalf("err=%v, want per-job Config rejection", err)
	}
}
