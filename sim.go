package mobilesim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"mobilesim/internal/cl"
	"mobilesim/internal/clc"
	"mobilesim/internal/gpu"
	"mobilesim/internal/obs"
	"mobilesim/internal/platform"
	"mobilesim/internal/stats"
	"mobilesim/internal/workloads"
)

// ErrClosed is returned by Session methods called after Close.
var ErrClosed = errors.New("mobilesim: session is closed")

// GPUStats is the per-program GPU statistics record (§IV of the paper):
// instruction mixes, clause metrics, data-access breakdowns and divergence
// counters. It aliases the internal data model so facade users get the
// full method set (TotalInstr, MixFractions, ClauseSizeQuartiles, ...).
type GPUStats = stats.GPUStats

// SystemStats is the system-level statistics record: CPU↔GPU control
// traffic, IRQs, jobs and page activity.
type SystemStats = stats.SystemStats

// Stats is one session's combined statistics snapshot. Counters are
// cumulative over the session's lifetime.
type Stats struct {
	// GPU holds program-execution statistics from the simulated GPU.
	GPU GPUStats
	// System holds CPU↔GPU system-interaction statistics.
	System SystemStats
	// DriverCPUTime is host wall-clock spent executing driver guest code
	// on the simulated CPU (the Fig 9 "driver runtime" metric).
	DriverCPUTime time.Duration
	// GuestInstructions counts instructions retired by the simulated CPU
	// core that runs the driver's guest routines.
	GuestInstructions uint64
}

// merge accumulates another snapshot (used by Batch aggregation).
func (s *Stats) merge(o *Stats) {
	s.GPU.Merge(&o.GPU)
	s.System.Merge(&o.System)
	s.DriverCPUTime += o.DriverCPUTime
	s.GuestInstructions += o.GuestInstructions
}

// sub returns the counter-wise difference s - o (per-run deltas diffed
// around a run).
func (s Stats) sub(o Stats) Stats {
	return Stats{
		GPU:               s.GPU.Sub(&o.GPU),
		System:            s.System.Sub(&o.System),
		DriverCPUTime:     s.DriverCPUTime - o.DriverCPUTime,
		GuestInstructions: s.GuestInstructions - o.GuestInstructions,
	}
}

// Config selects the shape of one simulated platform. The zero value is a
// usable default: the paper's Mali-G71 MP8 setup with 512 MiB RAM, four
// CPU cores and JIT compiler 6.1.
type Config struct {
	// RAMSize is guest physical memory in bytes (default 512 MiB,
	// minimum 16 MiB).
	RAMSize uint64
	// CPUCores is the simulated CPU core count (default 4).
	CPUCores int
	// ShaderCores is the architectural GPU core count (default 8, the
	// G71 MP8 of the paper).
	ShaderCores int
	// HostThreads is the number of host simulation threads driving the
	// GPU model; it may exceed ShaderCores (default 8).
	HostThreads int
	// CompilerVersion selects the JIT compiler release (5.6 … 6.2);
	// empty means the default (6.1).
	CompilerVersion string
	// CollectCFG records the clause-level control-flow graph with
	// divergence annotations (Fig 6), at the cost of a map update per
	// clause execution.
	CollectCFG bool
	// GPUEngine selects the shader execution engine: GPUEngineWarp (the
	// default for an empty string — warp-batched fused clauses),
	// GPUEngineJIT (per-lane closure JIT) or GPUEngineInterp (the
	// reference interpreter). The engines are observationally identical —
	// bit-identical statistics and guest memory — and differ only in host
	// speed, so the choice is a host-side knob like HostThreads.
	GPUEngine string
	// JITClauses enables closure-JIT shader execution.
	//
	// Deprecated: use GPUEngine = GPUEngineJIT. Ignored when GPUEngine is
	// set.
	JITClauses bool
	// DisableDecodeCache turns off shader decode caching (§III-B3).
	// Only useful for ablation studies.
	DisableDecodeCache bool
	// ConsoleOut receives simulated UART output (nil discards it). When
	// one Config is shared across concurrent sessions — e.g. as a
	// Batch's default — the writer is shared too and must be safe for
	// concurrent use.
	ConsoleOut io.Writer
}

// GPU engine names for Config.GPUEngine.
const (
	GPUEngineWarp   = "warp"
	GPUEngineJIT    = "jit"
	GPUEngineInterp = "interp"
)

// gpuEngine resolves the effective engine selection, honouring the
// deprecated JITClauses alias when GPUEngine is unset.
func (c *Config) gpuEngine() gpu.Engine {
	switch {
	case c.GPUEngine == GPUEngineJIT || (c.GPUEngine == "" && c.JITClauses):
		return gpu.EngineJIT
	case c.GPUEngine == GPUEngineInterp:
		return gpu.EngineInterp
	}
	return gpu.EngineWarp
}

const minRAM = 16 << 20

// validate rejects configurations the platform cannot boot.
func (c *Config) validate() error {
	if c.RAMSize != 0 && c.RAMSize < minRAM {
		return fmt.Errorf("mobilesim: RAMSize %d below minimum %d", c.RAMSize, uint64(minRAM))
	}
	if c.CPUCores < 0 {
		return fmt.Errorf("mobilesim: negative CPUCores %d", c.CPUCores)
	}
	if c.ShaderCores < 0 {
		return fmt.Errorf("mobilesim: negative ShaderCores %d", c.ShaderCores)
	}
	if c.HostThreads < 0 {
		return fmt.Errorf("mobilesim: negative HostThreads %d", c.HostThreads)
	}
	if c.CompilerVersion != "" {
		if _, ok := clc.Versions[c.CompilerVersion]; !ok {
			return fmt.Errorf("mobilesim: unknown compiler version %q (have %s)",
				c.CompilerVersion, strings.Join(clc.VersionNames(), ", "))
		}
	}
	switch c.GPUEngine {
	case "", GPUEngineWarp, GPUEngineJIT, GPUEngineInterp:
	default:
		return fmt.Errorf("mobilesim: unknown GPUEngine %q (have %s, %s, %s)",
			c.GPUEngine, GPUEngineWarp, GPUEngineJIT, GPUEngineInterp)
	}
	return nil
}

// platformConfig lowers the facade config onto the internal layers.
func (c *Config) platformConfig() platform.Config {
	gcfg := gpu.DefaultConfig()
	if c.ShaderCores > 0 {
		gcfg.ShaderCores = c.ShaderCores
	}
	if c.HostThreads > 0 {
		gcfg.HostThreads = c.HostThreads
	}
	gcfg.DecodeCache = !c.DisableDecodeCache
	gcfg.CollectCFG = c.CollectCFG
	gcfg.Engine = c.gpuEngine()
	return platform.Config{
		RAMSize:    c.RAMSize,
		Cores:      c.CPUCores,
		GPU:        gcfg,
		ConsoleOut: c.ConsoleOut,
	}
}

// Session is one booted guest: a full simulated platform (CPU cores, GPU,
// devices, memory) with the driver loaded and an OpenCL-like context open,
// behaving like one application running on one device.
//
// A Session serialises its operations internally, so it is safe for
// concurrent use — though calls block each other. For throughput, run
// independent Sessions concurrently (see Batch): separate Sessions share
// nothing and scale with host cores.
type Session struct {
	cfg Config

	mu     sync.Mutex
	closed bool
	p      *platform.Platform
	rt     *cl.Context
	// final is the statistics snapshot taken at Close, so Stats stays
	// meaningful on a closed session.
	final Stats

	// base scopes every queued run to the session lifetime: Close cancels
	// it, which soft-stops an in-flight kernel and fails queued runs.
	base       context.Context
	baseCancel context.CancelFunc

	// Command-queue state (see queue.go). qTail is the most recently
	// submitted entry; each submission chains on its predecessor, giving
	// in-order execution without a dedicated worker.
	qMu     sync.Mutex
	qClosed bool
	qTail   *Pending

	// Serving metrics (see Metrics): queue-wait vs execution phase
	// timings for every run that reached execution on this session.
	obsQueueWait obs.Histogram
	obsExec      obs.Histogram
}

// New boots a platform from cfg and opens the device: GPU soft reset,
// address-space setup and IRQ unmasking all run as guest code, exactly as
// the kernel module's probe path would. Callers must Close the session.
//
// With FromSnapshot the cold boot is skipped entirely: the session is
// forked copy-on-write from a captured snapshot and is ready to run in
// microseconds (see Snapshot).
func New(cfg Config, opts ...NewOption) (*Session, error) {
	var o newOptions
	for _, fn := range opts {
		fn(&o)
	}
	if o.snap != nil {
		return newFromSnapshot(cfg, o.snap)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p, err := platform.New(cfg.platformConfig())
	if err != nil {
		return nil, err
	}
	rt, err := cl.NewContext(p, cfg.CompilerVersion)
	if err != nil {
		p.Close()
		return nil, err
	}
	return newSession(cfg, p, rt), nil
}

// newSession wraps a live platform + runtime pair in the facade.
func newSession(cfg Config, p *platform.Platform, rt *cl.Context) *Session {
	s := &Session{cfg: cfg, p: p, rt: rt}
	s.base, s.baseCancel = context.WithCancel(context.Background())
	return s
}

// Close drains the command queue and stops the platform's background
// machinery. Queued runs fail with ErrClosed; an in-flight run is
// soft-stopped at a clause boundary and completes with ErrClosed (or its
// own context error) before the platform is torn down. Closing twice is a
// no-op. Afterwards every operation that touches the device fails with
// ErrClosed; Stats keeps returning the final snapshot taken at Close.
func (s *Session) Close() error {
	s.qMu.Lock()
	draining := !s.qClosed
	s.qClosed = true
	tail := s.qTail
	s.qMu.Unlock()
	if draining {
		s.baseCancel()
		if tail != nil {
			// Wait for the slot release, not just the outcome: a tail
			// cancelled while queued completes early, but the device may
			// still be executing its predecessor.
			<-tail.released
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.final = s.statsLocked()
	s.closed = true
	s.p.Close()
	return nil
}

// Config returns the configuration the session was created with.
func (s *Session) Config() Config { return s.cfg }

// locked runs f with the session lock held, failing fast once closed.
func (s *Session) locked(f func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return f()
}

// Stats returns the session's cumulative statistics snapshot (per-run
// deltas are in RunResult.Stats). After Close it returns the final
// snapshot taken at close time.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.final
	}
	return s.statsLocked()
}

func (s *Session) statsLocked() Stats {
	gs, sys := s.p.GPU.Stats()
	return Stats{
		GPU:               gs,
		System:            sys,
		DriverCPUTime:     s.rt.Drv.CPUTime,
		GuestInstructions: s.p.CPUs[0].Instret,
	}
}

// withCL runs f with the session lock held and the CL runtime exposed —
// the bridge between Workload implementations and the device.
func (s *Session) withCL(f func(c *cl.Context) error) error {
	return s.locked(func() error { return f(s.rt) })
}

// device returns the GPU device, or nil once closed.
func (s *Session) device() *gpu.Device {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.p.GPU
}

// ResetStats clears the accumulated statistics (between measurement
// phases).
func (s *Session) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.p.GPU.ResetStats()
	}
}

// CFG renders the collected clause-level control-flow graph with
// divergence annotations. It returns "" unless the session was created
// with Config.CollectCFG, and "" after Close.
func (s *Session) CFG() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || !s.cfg.CollectCFG {
		return ""
	}
	return s.p.GPU.CFGGraph().Render()
}

// Buffer is a device memory allocation owned by one session.
type Buffer struct {
	s *Session
	b *cl.Buffer
}

// Size returns the allocation size in bytes.
func (b *Buffer) Size() int { return b.b.Size }

// NewBuffer allocates size bytes of GPU-visible memory through the
// driver's allocator and page tables.
func (s *Session) NewBuffer(size int) (*Buffer, error) {
	var buf *Buffer
	err := s.locked(func() error {
		b, err := s.rt.CreateBuffer(size)
		if err != nil {
			return err
		}
		buf = &Buffer{s: s, b: b}
		return nil
	})
	return buf, err
}

// orBackground lets nil stand in for context.Background() on the
// public device primitives.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// Write copies host bytes into the buffer via the simulated-CPU memcpy
// path (clEnqueueWriteBuffer). Cancellation is honoured at staging-chunk
// (4 MiB) granularity; a nil ctx means context.Background().
func (b *Buffer) Write(ctx context.Context, data []byte) error {
	return b.s.locked(func() error { return b.s.rt.WriteBuffer(orBackground(ctx), b.b, data) })
}

// Read copies the first n bytes of the buffer back to the host.
func (b *Buffer) Read(ctx context.Context, n int) ([]byte, error) {
	var out []byte
	err := b.s.locked(func() (err error) {
		out, err = b.s.rt.ReadBuffer(orBackground(ctx), b.b, n)
		return
	})
	return out, err
}

// WriteF32 marshals float32 values into the buffer.
func (b *Buffer) WriteF32(ctx context.Context, vals []float32) error {
	return b.s.locked(func() error { return b.s.rt.WriteF32(orBackground(ctx), b.b, vals) })
}

// ReadF32 reads n float32 values from the buffer.
func (b *Buffer) ReadF32(ctx context.Context, n int) ([]float32, error) {
	var out []float32
	err := b.s.locked(func() (err error) {
		out, err = b.s.rt.ReadF32(orBackground(ctx), b.b, n)
		return
	})
	return out, err
}

// WriteI32 marshals int32 values into the buffer.
func (b *Buffer) WriteI32(ctx context.Context, vals []int32) error {
	return b.s.locked(func() error { return b.s.rt.WriteI32(orBackground(ctx), b.b, vals) })
}

// ReadI32 reads n int32 values from the buffer.
func (b *Buffer) ReadI32(ctx context.Context, n int) ([]int32, error) {
	var out []int32
	err := b.s.locked(func() (err error) {
		out, err = b.s.rt.ReadI32(orBackground(ctx), b.b, n)
		return
	})
	return out, err
}

// Kernel is a JIT-compiled, device-loaded kernel with argument state,
// owned by one session.
type Kernel struct {
	s *Session
	k *cl.Kernel
}

// LoadKernel JIT-compiles src through the CLite toolchain (at the version
// the session was configured with), loads the resulting Bifrost-style
// binary into GPU memory through the driver, and returns the named kernel.
func (s *Session) LoadKernel(src, name string) (*Kernel, error) {
	var kern *Kernel
	err := s.locked(func() error {
		//simlint:allow ctxflow -- LoadKernel predates ctx plumbing; compilation is bounded by the session lifetime, not a call deadline
		prog, err := s.rt.BuildProgram(context.Background(), src)
		if err != nil {
			return err
		}
		k, err := prog.CreateKernel(name)
		if err != nil {
			return err
		}
		kern = &Kernel{s: s, k: k}
		return nil
	})
	return kern, err
}

// SetArgs binds kernel arguments in declaration order. Accepted types:
// *Buffer for global pointers, int/int32/uint32 for integer scalars,
// float32/float64 for float scalars.
func (k *Kernel) SetArgs(args ...any) error {
	return k.s.locked(func() error {
		for i, a := range args {
			var err error
			switch v := a.(type) {
			case *Buffer:
				if v.s != k.s {
					return fmt.Errorf("mobilesim: argument %d: buffer belongs to a different session", i)
				}
				err = k.k.SetArgBuffer(i, v.b)
			case int:
				err = k.k.SetArgInt(i, int32(v))
			case int32:
				err = k.k.SetArgInt(i, v)
			case uint32:
				err = k.k.SetArgInt(i, int32(v))
			case float32:
				err = k.k.SetArgFloat(i, v)
			case float64:
				err = k.k.SetArgFloat(i, float32(v))
			default:
				err = fmt.Errorf("mobilesim: unsupported argument %d type %T", i, a)
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
}

// Launch enqueues one NDRange run of the kernel and waits for the
// completion interrupt: descriptor written to shared memory, doorbell
// rung, Job Manager dispatch, guest ISR — the full hardware/software
// contract. Cancelling ctx soft-stops the running kernel at a clause
// boundary and returns ctx.Err(); the session stays usable. A nil ctx
// means context.Background().
func (k *Kernel) Launch(ctx context.Context, global, local [3]uint32) error {
	return k.s.locked(func() error { return k.s.rt.EnqueueKernel(orBackground(ctx), k.k, global, local) })
}

// Dim1 builds a 1-D NDRange dimension triple.
func Dim1(n uint32) [3]uint32 { return [3]uint32{n, 1, 1} }

// Dim2 builds a 2-D NDRange dimension triple.
func Dim2(x, y uint32) [3]uint32 { return [3]uint32{x, y, 1} }

// Dim3 builds a 3-D NDRange dimension triple.
func Dim3(x, y, z uint32) [3]uint32 { return [3]uint32{x, y, z} }

// RunResult is one completed workload run.
type RunResult struct {
	// Workload names what ran (a registry name, see Workloads); Kind
	// classifies it; Scale is the resolved input scale (0 when the
	// workload does not take one).
	Workload string
	Kind     WorkloadKind
	Scale    int
	// Benchmark is the legacy alias of Workload.
	//
	// Deprecated: use Workload.
	Benchmark string
	// SimDuration is time spent in full-stack simulation; NativeDuration
	// is the host-native reference implementation's time (their ratio is
	// the paper's Fig 7 slowdown); Wall is total elapsed time including
	// verification.
	SimDuration    time.Duration
	NativeDuration time.Duration
	Wall           time.Duration
	// QueueWait is the time this submission spent queued behind earlier
	// submissions on the session's command queue before execution began;
	// Wall covers execution only, so queue pressure and device time are
	// separately attributable (DESIGN.md §12).
	QueueWait time.Duration
	// Verified reports whether the simulated output matched the
	// host-native reference; VerifyErr carries the first mismatch. Both
	// stay zero for workload kinds without a reference (SLAM) and for
	// runs with verification disabled (WithVerify(false)).
	Verified  bool
	VerifyErr error
	// Stats is the per-run statistics delta: the session snapshot diffed
	// around this run (WithStatsScope(StatsSession) selects the session-
	// cumulative snapshot instead; Session.Stats always has it).
	Stats Stats
	// CFG is the rendered divergence control-flow graph, collected when
	// the run was submitted WithCFG. On sessions created with
	// Config.CollectCFG it is cumulative since session start; otherwise
	// it covers exactly this run.
	CFG string
	// Modeled carries the analytical Mali-G71/K20m cost estimates
	// evaluated on this run's own statistics delta (always the per-run
	// delta, even when StatsScope selects the session-cumulative snapshot
	// for Stats). See ModeledCost for what the numbers do and do not
	// claim.
	Modeled ModeledCost
	// SLAM carries the pipeline metrics of a KindSLAM run.
	SLAM *SLAMMetrics
	// Output is an experiment workload's rendered rows, captured when no
	// WithOutput writer was supplied.
	Output string
}

// Benchmark describes one registered workload from the paper's suite
// (Table II).
type Benchmark struct {
	Name       string
	Suite      string
	PaperInput string
	// SmallScale keeps tests fast, DefaultScale drives benchmarks,
	// PaperScale approximates the paper's input sizes.
	SmallScale   int
	DefaultScale int
	PaperScale   int
}

// Benchmarks lists the registered workloads sorted by name.
func Benchmarks() []Benchmark {
	specs := workloads.All()
	out := make([]Benchmark, 0, len(specs))
	for _, s := range specs {
		out = append(out, Benchmark{
			Name:       s.Name,
			Suite:      s.Suite,
			PaperInput: s.PaperInput,
			SmallScale: s.SmallScale, DefaultScale: s.DefaultScale, PaperScale: s.PaperScale,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CompilerVersions lists the available JIT compiler releases in order.
func CompilerVersions() []string { return clc.VersionNames() }
