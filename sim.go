package mobilesim

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"mobilesim/internal/cl"
	"mobilesim/internal/clc"
	"mobilesim/internal/gpu"
	"mobilesim/internal/platform"
	"mobilesim/internal/stats"
	"mobilesim/internal/workloads"
)

// ErrClosed is returned by Session methods called after Close.
var ErrClosed = errors.New("mobilesim: session is closed")

// GPUStats is the per-program GPU statistics record (§IV of the paper):
// instruction mixes, clause metrics, data-access breakdowns and divergence
// counters. It aliases the internal data model so facade users get the
// full method set (TotalInstr, MixFractions, ClauseSizeQuartiles, ...).
type GPUStats = stats.GPUStats

// SystemStats is the system-level statistics record: CPU↔GPU control
// traffic, IRQs, jobs and page activity.
type SystemStats = stats.SystemStats

// Stats is one session's combined statistics snapshot. Counters are
// cumulative over the session's lifetime.
type Stats struct {
	// GPU holds program-execution statistics from the simulated GPU.
	GPU GPUStats
	// System holds CPU↔GPU system-interaction statistics.
	System SystemStats
	// DriverCPUTime is host wall-clock spent executing driver guest code
	// on the simulated CPU (the Fig 9 "driver runtime" metric).
	DriverCPUTime time.Duration
	// GuestInstructions counts instructions retired by the simulated CPU
	// core that runs the driver's guest routines.
	GuestInstructions uint64
}

// merge accumulates another snapshot (used by Batch aggregation).
func (s *Stats) merge(o *Stats) {
	s.GPU.Merge(&o.GPU)
	s.System.Merge(&o.System)
	s.DriverCPUTime += o.DriverCPUTime
	s.GuestInstructions += o.GuestInstructions
}

// Config selects the shape of one simulated platform. The zero value is a
// usable default: the paper's Mali-G71 MP8 setup with 512 MiB RAM, four
// CPU cores and JIT compiler 6.1.
type Config struct {
	// RAMSize is guest physical memory in bytes (default 512 MiB,
	// minimum 16 MiB).
	RAMSize uint64
	// CPUCores is the simulated CPU core count (default 4).
	CPUCores int
	// ShaderCores is the architectural GPU core count (default 8, the
	// G71 MP8 of the paper).
	ShaderCores int
	// HostThreads is the number of host simulation threads driving the
	// GPU model; it may exceed ShaderCores (default 8).
	HostThreads int
	// CompilerVersion selects the JIT compiler release (5.6 … 6.2);
	// empty means the default (6.1).
	CompilerVersion string
	// CollectCFG records the clause-level control-flow graph with
	// divergence annotations (Fig 6), at the cost of a map update per
	// clause execution.
	CollectCFG bool
	// JITClauses enables closure-JIT shader execution (the paper's
	// future-work mode).
	JITClauses bool
	// DisableDecodeCache turns off shader decode caching (§III-B3).
	// Only useful for ablation studies.
	DisableDecodeCache bool
	// ConsoleOut receives simulated UART output (nil discards it). When
	// one Config is shared across concurrent sessions — e.g. as a
	// Batch's default — the writer is shared too and must be safe for
	// concurrent use.
	ConsoleOut io.Writer
}

const minRAM = 16 << 20

// validate rejects configurations the platform cannot boot.
func (c *Config) validate() error {
	if c.RAMSize != 0 && c.RAMSize < minRAM {
		return fmt.Errorf("mobilesim: RAMSize %d below minimum %d", c.RAMSize, uint64(minRAM))
	}
	if c.CPUCores < 0 {
		return fmt.Errorf("mobilesim: negative CPUCores %d", c.CPUCores)
	}
	if c.ShaderCores < 0 {
		return fmt.Errorf("mobilesim: negative ShaderCores %d", c.ShaderCores)
	}
	if c.HostThreads < 0 {
		return fmt.Errorf("mobilesim: negative HostThreads %d", c.HostThreads)
	}
	if c.CompilerVersion != "" {
		if _, ok := clc.Versions[c.CompilerVersion]; !ok {
			return fmt.Errorf("mobilesim: unknown compiler version %q (have %s)",
				c.CompilerVersion, strings.Join(clc.VersionNames(), ", "))
		}
	}
	return nil
}

// platformConfig lowers the facade config onto the internal layers.
func (c *Config) platformConfig() platform.Config {
	gcfg := gpu.DefaultConfig()
	if c.ShaderCores > 0 {
		gcfg.ShaderCores = c.ShaderCores
	}
	if c.HostThreads > 0 {
		gcfg.HostThreads = c.HostThreads
	}
	gcfg.DecodeCache = !c.DisableDecodeCache
	gcfg.CollectCFG = c.CollectCFG
	gcfg.JITClauses = c.JITClauses
	return platform.Config{
		RAMSize:    c.RAMSize,
		Cores:      c.CPUCores,
		GPU:        gcfg,
		ConsoleOut: c.ConsoleOut,
	}
}

// Session is one booted guest: a full simulated platform (CPU cores, GPU,
// devices, memory) with the driver loaded and an OpenCL-like context open,
// behaving like one application running on one device.
//
// A Session serialises its operations internally, so it is safe for
// concurrent use — though calls block each other. For throughput, run
// independent Sessions concurrently (see Batch): separate Sessions share
// nothing and scale with host cores.
type Session struct {
	cfg Config

	mu     sync.Mutex
	closed bool
	p      *platform.Platform
	ctx    *cl.Context
	// final is the statistics snapshot taken at Close, so Stats stays
	// meaningful on a closed session.
	final Stats
}

// New boots a platform from cfg and opens the device: GPU soft reset,
// address-space setup and IRQ unmasking all run as guest code, exactly as
// the kernel module's probe path would. Callers must Close the session.
func New(cfg Config) (*Session, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p, err := platform.New(cfg.platformConfig())
	if err != nil {
		return nil, err
	}
	ctx, err := cl.NewContext(p, cfg.CompilerVersion)
	if err != nil {
		p.Close()
		return nil, err
	}
	return &Session{cfg: cfg, p: p, ctx: ctx}, nil
}

// Close stops the platform's background machinery. Closing twice is a
// no-op. Afterwards every operation that touches the device fails with
// ErrClosed; Stats keeps returning the final snapshot taken at Close.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.final = s.statsLocked()
	s.closed = true
	s.p.Close()
	return nil
}

// Config returns the configuration the session was created with.
func (s *Session) Config() Config { return s.cfg }

// locked runs f with the session lock held, failing fast once closed.
func (s *Session) locked(f func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return f()
}

// Stats returns the session's cumulative statistics snapshot. After
// Close it returns the final snapshot taken at close time.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.final
	}
	return s.statsLocked()
}

func (s *Session) statsLocked() Stats {
	gs, sys := s.p.GPU.Stats()
	return Stats{
		GPU:               gs,
		System:            sys,
		DriverCPUTime:     s.ctx.Drv.CPUTime,
		GuestInstructions: s.p.CPUs[0].Instret,
	}
}

// ResetStats clears the accumulated statistics (between measurement
// phases).
func (s *Session) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.p.GPU.ResetStats()
	}
}

// CFG renders the collected clause-level control-flow graph with
// divergence annotations. It returns "" unless the session was created
// with Config.CollectCFG, and "" after Close.
func (s *Session) CFG() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || !s.cfg.CollectCFG {
		return ""
	}
	return s.p.GPU.CFGGraph().Render()
}

// Buffer is a device memory allocation owned by one session.
type Buffer struct {
	s *Session
	b *cl.Buffer
}

// Size returns the allocation size in bytes.
func (b *Buffer) Size() int { return b.b.Size }

// NewBuffer allocates size bytes of GPU-visible memory through the
// driver's allocator and page tables.
func (s *Session) NewBuffer(size int) (*Buffer, error) {
	var buf *Buffer
	err := s.locked(func() error {
		b, err := s.ctx.CreateBuffer(size)
		if err != nil {
			return err
		}
		buf = &Buffer{s: s, b: b}
		return nil
	})
	return buf, err
}

// Write copies host bytes into the buffer via the simulated-CPU memcpy
// path (clEnqueueWriteBuffer).
func (b *Buffer) Write(data []byte) error {
	return b.s.locked(func() error { return b.s.ctx.WriteBuffer(b.b, data) })
}

// Read copies the first n bytes of the buffer back to the host.
func (b *Buffer) Read(n int) ([]byte, error) {
	var out []byte
	err := b.s.locked(func() (err error) {
		out, err = b.s.ctx.ReadBuffer(b.b, n)
		return
	})
	return out, err
}

// WriteF32 marshals float32 values into the buffer.
func (b *Buffer) WriteF32(vals []float32) error {
	return b.s.locked(func() error { return b.s.ctx.WriteF32(b.b, vals) })
}

// ReadF32 reads n float32 values from the buffer.
func (b *Buffer) ReadF32(n int) ([]float32, error) {
	var out []float32
	err := b.s.locked(func() (err error) {
		out, err = b.s.ctx.ReadF32(b.b, n)
		return
	})
	return out, err
}

// WriteI32 marshals int32 values into the buffer.
func (b *Buffer) WriteI32(vals []int32) error {
	return b.s.locked(func() error { return b.s.ctx.WriteI32(b.b, vals) })
}

// ReadI32 reads n int32 values from the buffer.
func (b *Buffer) ReadI32(n int) ([]int32, error) {
	var out []int32
	err := b.s.locked(func() (err error) {
		out, err = b.s.ctx.ReadI32(b.b, n)
		return
	})
	return out, err
}

// Kernel is a JIT-compiled, device-loaded kernel with argument state,
// owned by one session.
type Kernel struct {
	s *Session
	k *cl.Kernel
}

// LoadKernel JIT-compiles src through the CLite toolchain (at the version
// the session was configured with), loads the resulting Bifrost-style
// binary into GPU memory through the driver, and returns the named kernel.
func (s *Session) LoadKernel(src, name string) (*Kernel, error) {
	var kern *Kernel
	err := s.locked(func() error {
		prog, err := s.ctx.BuildProgram(src)
		if err != nil {
			return err
		}
		k, err := prog.CreateKernel(name)
		if err != nil {
			return err
		}
		kern = &Kernel{s: s, k: k}
		return nil
	})
	return kern, err
}

// SetArgs binds kernel arguments in declaration order. Accepted types:
// *Buffer for global pointers, int/int32/uint32 for integer scalars,
// float32/float64 for float scalars.
func (k *Kernel) SetArgs(args ...any) error {
	return k.s.locked(func() error {
		for i, a := range args {
			var err error
			switch v := a.(type) {
			case *Buffer:
				if v.s != k.s {
					return fmt.Errorf("mobilesim: argument %d: buffer belongs to a different session", i)
				}
				err = k.k.SetArgBuffer(i, v.b)
			case int:
				err = k.k.SetArgInt(i, int32(v))
			case int32:
				err = k.k.SetArgInt(i, v)
			case uint32:
				err = k.k.SetArgInt(i, int32(v))
			case float32:
				err = k.k.SetArgFloat(i, v)
			case float64:
				err = k.k.SetArgFloat(i, float32(v))
			default:
				err = fmt.Errorf("mobilesim: unsupported argument %d type %T", i, a)
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
}

// Launch enqueues one NDRange run of the kernel and waits for the
// completion interrupt: descriptor written to shared memory, doorbell
// rung, Job Manager dispatch, guest ISR — the full hardware/software
// contract.
func (k *Kernel) Launch(global, local [3]uint32) error {
	return k.s.locked(func() error { return k.s.ctx.EnqueueKernel(k.k, global, local) })
}

// Dim1 builds a 1-D NDRange dimension triple.
func Dim1(n uint32) [3]uint32 { return [3]uint32{n, 1, 1} }

// Dim2 builds a 2-D NDRange dimension triple.
func Dim2(x, y uint32) [3]uint32 { return [3]uint32{x, y, 1} }

// Dim3 builds a 3-D NDRange dimension triple.
func Dim3(x, y, z uint32) [3]uint32 { return [3]uint32{x, y, z} }

// RunResult is one completed benchmark run.
type RunResult struct {
	// Benchmark and Scale identify what ran.
	Benchmark string
	Scale     int
	// SimDuration is time spent in full-stack simulation; NativeDuration
	// is the host-native reference implementation's time (their ratio is
	// the paper's Fig 7 slowdown); Wall is total elapsed time.
	SimDuration    time.Duration
	NativeDuration time.Duration
	Wall           time.Duration
	// Verified reports whether the simulated output matched the
	// host-native reference; VerifyErr carries the first mismatch.
	Verified  bool
	VerifyErr error
	// Stats is the session's statistics snapshot after the run.
	Stats Stats
}

// Run executes one registered benchmark (see Benchmarks) at the given
// scale on this session, verifying simulated output against the
// host-native reference. Scale <= 0 selects the benchmark's default.
func (s *Session) Run(benchmark string, scale int) (*RunResult, error) {
	var out *RunResult
	err := s.locked(func() error {
		spec, err := workloads.ByName(benchmark)
		if err != nil {
			return err
		}
		if scale <= 0 {
			scale = spec.DefaultScale
		}
		inst := spec.Make(scale)
		t0 := time.Now()
		res, err := inst.Run(s.ctx, spec.Name)
		if err != nil {
			return err
		}
		out = &RunResult{
			Benchmark:      spec.Name,
			Scale:          scale,
			SimDuration:    res.SimDuration,
			NativeDuration: res.NativeDuration,
			Wall:           time.Since(t0),
			Verified:       res.Verified,
			VerifyErr:      res.VerifyErr,
			Stats:          s.statsLocked(),
		}
		return nil
	})
	return out, err
}

// Benchmark describes one registered workload from the paper's suite
// (Table II).
type Benchmark struct {
	Name       string
	Suite      string
	PaperInput string
	// SmallScale keeps tests fast, DefaultScale drives benchmarks,
	// PaperScale approximates the paper's input sizes.
	SmallScale   int
	DefaultScale int
	PaperScale   int
}

// Benchmarks lists the registered workloads sorted by name.
func Benchmarks() []Benchmark {
	specs := workloads.All()
	out := make([]Benchmark, 0, len(specs))
	for _, s := range specs {
		out = append(out, Benchmark{
			Name:       s.Name,
			Suite:      s.Suite,
			PaperInput: s.PaperInput,
			SmallScale: s.SmallScale, DefaultScale: s.DefaultScale, PaperScale: s.PaperScale,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CompilerVersions lists the available JIT compiler releases in order.
func CompilerVersions() []string { return clc.VersionNames() }
