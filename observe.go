package mobilesim

import (
	"mobilesim/internal/costmodel"
	"mobilesim/internal/obs"
)

// This file is the facade's observability surface: the latency snapshot
// and summary types re-exported from internal/obs, the per-session phase
// timing metrics, and the analytical cost estimate attached to every run
// (DESIGN.md §12).

// LatencySnapshot is a mergeable point-in-time copy of a log-bucketed
// latency histogram. Snapshots from different sessions, pools or hosts
// can be Merged and then queried for quantiles (Quantile, Summary).
type LatencySnapshot = obs.Snapshot

// LatencySummary condenses a LatencySnapshot into count, mean and
// p50/p90/p99. Quantiles are log-bucket estimates with at most ~2×
// relative error; Mean is exact.
type LatencySummary = obs.Summary

// SessionMetrics is a snapshot of one session's command-queue phase
// timings: how long submissions waited behind their predecessors versus
// how long they executed. Counters cover every run that reached
// execution on this session, successful or not.
type SessionMetrics struct {
	// QueueWait distributes time from Submit to execution start.
	QueueWait LatencySnapshot
	// Exec distributes execution wall time (RunResult.Wall).
	Exec LatencySnapshot
}

// Metrics returns the session's current serving metrics. It is cheap
// (atomic loads) and safe to call concurrently with runs, including on a
// closed session.
func (s *Session) Metrics() SessionMetrics {
	return SessionMetrics{
		QueueWait: s.obsQueueWait.Snapshot(),
		Exec:      s.obsExec.Snapshot(),
	}
}

// ModeledCost is the analytical timing estimate attached to every run:
// the paper's Fig 15 cross-platform models evaluated on the run's own
// statistics delta. Both figures are *relative* runtimes in arbitrary
// model units — they rank kernels and expose platform-divergent
// behaviour (a mobile-hostile access pattern scores high on MobileCycles
// but low on DesktopCycles) — not cycle-accurate predictions, and they
// are not comparable across the two models. Being pure functions of the
// deterministic counters, they are bit-identical whether a run executed
// locally or on a cluster host.
type ModeledCost struct {
	// MobileCycles is the Mali-G71 mobile model estimate: LPDDR traffic
	// dominates, register pressure past the occupancy knee multiplies
	// exposed memory latency.
	MobileCycles float64
	// DesktopCycles is the K20m desktop model estimate: ALU nearly free,
	// coalescing and cache behaviour dominate, plus per-launch overhead.
	DesktopCycles float64
}

// kernelProfiler is implemented by workloads that carry a per-kernel
// access-pattern annotation for the desktop model (the SGEMM ladder
// rungs); all other workloads get costmodel.DefaultProfile.
type kernelProfiler interface {
	kernelProfile() costmodel.KernelProfile
}

// modeledCost evaluates both analytical models on a per-run statistics
// delta. The delta is always the run's own (snapshot-diffed) counters,
// regardless of the StatsScope selected for RunResult.Stats.
func modeledCost(delta *Stats, w Workload) ModeledCost {
	prof := costmodel.DefaultProfile()
	if pw, ok := w.(kernelProfiler); ok {
		prof = pw.kernelProfile()
	}
	return ModeledCost{
		MobileCycles:  costmodel.MaliG71().Estimate(&delta.GPU),
		DesktopCycles: costmodel.K20m().Estimate(&delta.GPU, prof, delta.System.KernelLaunch),
	}
}
