package mobilesim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"mobilesim/internal/cluster"
)

// This file is the cluster arm of Batch (see Batch.Hosts): ship one warm
// snapshot to N mobilesimd hosts and fan the jobs out over HTTP with
// work-stealing, bounded retries, hedging and idempotent delivery —
// internal/cluster does the dispatching, this file adapts it to the
// Batch/BatchResult shapes. The per-run statistics deltas cross the wire
// as exact integer counter records and are merged in job-index order,
// exactly like the local arm, so a cluster run's Aggregate is
// bit-identical to a local run of the same jobs (wall-clock fields —
// DriverCPUTime, durations — excepted: they measure real time, not
// simulated work).

// ClusterConfig tunes cluster-mode Batch execution. The zero value uses
// the cluster defaults (2 streams per host, 4 attempts per job, 50ms
// initial backoff, hedging disabled).
type ClusterConfig struct {
	// HedgeAfter launches a duplicate of a still-running job on a second
	// host after this delay (0 disables hedging). Hedged duplicates are
	// deduplicated — by idempotency key on the host, first-response-wins
	// at the coordinator — so they affect tail latency, never counters.
	HedgeAfter time.Duration
	// MaxAttempts bounds total request attempts per job, hedges included.
	MaxAttempts int
	// RetryBackoff is the initial retry backoff, doubling per retry.
	RetryBackoff time.Duration
	// PerHostStreams is the number of jobs dispatched concurrently to one
	// host.
	PerHostStreams int
	// HostFailureLimit is the number of consecutive transport/5xx
	// failures after which a host leaves the rotation.
	HostFailureLimit int
	// HTTPClient overrides the HTTP client used for host requests.
	HTTPClient *http.Client
}

// ClusterHostReport is one host's view in a ClusterReport: liveness,
// accepted runs, and attempt latency split by delivery path. Failed
// attempts are observed too, so a fast-failing host reads as a fast
// histogram with few Runs.
type ClusterHostReport struct {
	// URL is the host's base URL; Dead reports it left the rotation.
	URL  string
	Dead bool
	// Runs counts responses accepted from this host.
	Runs uint64
	// Dispatch covers first attempts, Retry post-backoff retries, Hedge
	// hedged duplicates raced against a slow host.
	Dispatch, Retry, Hedge LatencySnapshot
}

// ClusterReport summarises the delivery machinery of one cluster batch:
// lifetime delivery counters and per-host attempt latencies, in
// Batch.Hosts order. It is attached to BatchResult.Cluster by cluster
// runs and printed by `mobilesimctl -stats`.
type ClusterReport struct {
	// Retries counts retry attempts dispatched; Hedges counts hedged
	// duplicates launched; Discarded counts completed duplicate responses
	// dropped because another attempt had been accepted; Reships counts
	// transparent snapshot re-installations after a host forgot the ref.
	Retries, Hedges, Discarded, Reships uint64
	Hosts                               []ClusterHostReport
}

// clusterReport folds the wire-level report into the facade shape.
func clusterReport(r cluster.Report) *ClusterReport {
	out := &ClusterReport{
		Retries:   r.Retries,
		Hedges:    r.Hedges,
		Discarded: r.Discarded,
		Reships:   r.Reships,
		Hosts:     make([]ClusterHostReport, len(r.Hosts)),
	}
	for i, h := range r.Hosts {
		out.Hosts[i] = ClusterHostReport{
			URL:      h.URL,
			Dead:     h.Dead,
			Runs:     h.Runs,
			Dispatch: h.Dispatch,
			Retry:    h.Retry,
			Hedge:    h.Hedge,
		}
	}
	return out
}

// runCluster executes the batch over b.Hosts: boot the batch Config
// once, capture and encode the warm snapshot, ship it to every host,
// fan the jobs out, and fold the per-run deltas back into a BatchResult.
func (b *Batch) runCluster(ctx context.Context) (*BatchResult, error) {
	for i := range b.Jobs {
		if b.Jobs[i].Config != nil {
			return nil, fmt.Errorf("mobilesim: cluster batch: job %d has a per-job Config, which cannot ride the shipped snapshot (run it in a local Batch)", i)
		}
	}
	if err := b.Config.validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()

	warm, err := New(b.Config)
	if err != nil {
		return nil, fmt.Errorf("mobilesim: cluster batch: boot: %w", err)
	}
	snap, err := warm.Snapshot()
	warm.Close()
	if err != nil {
		return nil, fmt.Errorf("mobilesim: cluster batch: snapshot: %w", err)
	}
	var enc bytes.Buffer
	if err := snap.Encode(&enc); err != nil {
		return nil, fmt.Errorf("mobilesim: cluster batch: encode: %w", err)
	}

	cl, err := cluster.New(cluster.Options{
		Hosts:            b.Hosts,
		Client:           b.Cluster.HTTPClient,
		PerHostStreams:   b.Cluster.PerHostStreams,
		MaxAttempts:      b.Cluster.MaxAttempts,
		RetryBackoff:     b.Cluster.RetryBackoff,
		HedgeAfter:       b.Cluster.HedgeAfter,
		HostFailureLimit: b.Cluster.HostFailureLimit,
	})
	if err != nil {
		return nil, fmt.Errorf("mobilesim: cluster batch: %w", err)
	}
	if _, err := cl.Ship(ctx, enc.Bytes()); err != nil {
		return nil, fmt.Errorf("mobilesim: cluster batch: %w", err)
	}

	jobs := make([]cluster.Job, len(b.Jobs))
	for i, j := range b.Jobs {
		jobs[i] = cluster.Job{Workload: j.Benchmark, Scale: j.Scale}
	}
	cres, err := cl.Run(ctx, jobs)
	if err != nil && !errors.Is(err, ctx.Err()) {
		return nil, fmt.Errorf("mobilesim: cluster batch: %w", err)
	}

	res := &BatchResult{Jobs: make([]JobResult, len(b.Jobs))}
	for i := range cres.Jobs {
		res.Jobs[i] = clusterJobResult(b.Jobs[i], &cres.Jobs[i])
	}
	res.Cluster = clusterReport(cl.Report())
	res.tally(ctx)
	res.Wall = time.Since(t0)
	return res, ctx.Err()
}

// clusterJobResult folds one wire-level outcome into the facade shape.
func clusterJobResult(job BatchJob, cj *cluster.JobResult) JobResult {
	jr := JobResult{Index: cj.Index, Job: job, Err: cj.Err}
	resp := cj.Response
	if resp == nil {
		return jr
	}
	rr := &RunResult{
		Workload:       resp.Workload,
		Benchmark:      resp.Workload,
		Kind:           WorkloadKind(resp.Kind),
		Scale:          resp.Scale,
		Verified:       resp.Verified,
		SimDuration:    time.Duration(resp.SimMS * float64(time.Millisecond)),
		NativeDuration: time.Duration(resp.NativeMS * float64(time.Millisecond)),
		Wall:           time.Duration(resp.WallMS * float64(time.Millisecond)),
		QueueWait:      time.Duration(resp.QueueWaitMS * float64(time.Millisecond)),
		// Modeled is a pure function of the integer counters, so the
		// host-computed values are bit-identical to a local evaluation.
		Modeled: ModeledCost{
			MobileCycles:  resp.Modeled.MobileCycles,
			DesktopCycles: resp.Modeled.DesktopCycles,
		},
		// The counter records cross the wire exactly (integer fields,
		// DriverCPUNS); this is a deserialization copy, not bookkeeping.
		Stats: Stats{
			GPU:               resp.Stats.GPU,
			System:            resp.Stats.System,
			DriverCPUTime:     time.Duration(resp.Stats.DriverCPUNS),
			GuestInstructions: resp.Stats.GuestInstructions,
		},
	}
	if resp.VerifyError != "" {
		rr.VerifyErr = errors.New(resp.VerifyError)
	}
	jr.Result = rr
	return jr
}
