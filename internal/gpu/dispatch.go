package gpu

import (
	"errors"
	"fmt"
	"sync"

	"mobilesim/internal/mem"
	"mobilesim/internal/mmu"
	"mobilesim/internal/stats"
)

// JobDescriptor is the in-memory structure the driver writes and the Job
// Manager parses (§III-B4). All pointers are guest virtual addresses in
// the GPU address space. Layout (little-endian, 72 bytes):
//
//	0x00 u32 jobType (1 = compute)
//	0x04 u32 flags
//	0x08 u32 globalSize[3]
//	0x14 u32 localSize[3]
//	0x20 u64 shaderVA
//	0x28 u64 argsVA
//	0x30 u64 localMemVA (base of ShaderCores slots; 0 = none)
//	0x38 u32 localMemBytes (per workgroup)
//	0x3C u32 shaderSize
//	0x40 u64 nextJobVA (job chain)
type JobDescriptor struct {
	JobType       uint32
	Flags         uint32
	GlobalSize    [3]uint32
	LocalSize     [3]uint32
	ShaderVA      uint64
	ArgsVA        uint64
	LocalMemVA    uint64
	LocalMemBytes uint32
	ShaderSize    uint32
	NextJobVA     uint64
}

// JobDescSize is the descriptor's size in bytes.
const JobDescSize = 72

// JobTypeCompute is the only job type the compute-focused simulator runs.
const JobTypeCompute = 1

// Workgroups returns the total number of workgroups in the dispatch.
func (d *JobDescriptor) Workgroups() (uint64, error) {
	n := uint64(1)
	for i := 0; i < 3; i++ {
		if d.LocalSize[i] == 0 || d.GlobalSize[i] == 0 {
			return 0, fmt.Errorf("gpu: zero dimension in job (global=%v local=%v)", d.GlobalSize, d.LocalSize)
		}
		if d.GlobalSize[i]%d.LocalSize[i] != 0 {
			return 0, fmt.Errorf("gpu: global size %d not a multiple of local size %d", d.GlobalSize[i], d.LocalSize[i])
		}
		n *= uint64(d.GlobalSize[i] / d.LocalSize[i])
	}
	return n, nil
}

// workerResult carries one virtual core's shard of statistics.
type workerResult struct {
	gs     stats.GPUStats
	cfg    *stats.CFG
	walker *mmu.Walker // read after wg.Wait for its touched-page bitmap
	err    error
}

// execJob dispatches a decoded job across the configured host threads.
// Each host thread is a "virtual core" (§III-B3): it owns a TLB, a stats
// shard, and — when over-committed beyond the architectural core count —
// a host-side shadow local memory.
//
// Workgroups are partitioned statically (virtual core wi runs workgroups
// wi, wi+n, wi+2n, …): with per-core TLBs, the assignment decides which
// core takes each page's table walk, so a work-stealing counter would
// make the Table III TLB statistics a function of host scheduling. Static
// striding keeps them — and every other counter of a data-race-free
// kernel — exactly reproducible for a fixed HostThreads count.
//
//simlint:commit -- commits per-job register-usage and TLB counters
func (d *Device) execJob(desc *JobDescriptor, prog *Program, uniforms []uint64) error {
	totalWG, err := desc.Workgroups()
	if err != nil {
		return err
	}
	root := d.translationRoot()

	nWorkers := d.cfg.HostThreads
	if nWorkers < 1 {
		nWorkers = 1
	}
	if uint64(nWorkers) > totalWG {
		nWorkers = int(totalWG)
	}

	wgPerDim := [3]uint32{
		desc.GlobalSize[0] / desc.LocalSize[0],
		desc.GlobalSize[1] / desc.LocalSize[1],
		desc.GlobalSize[2] / desc.LocalSize[2],
	}
	collectCFG := d.collectCFG.Load()

	results := make([]workerResult, nWorkers)
	var wg sync.WaitGroup
	for wi := 0; wi < nWorkers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			res := &results[wi]
			walker := mmu.NewSharedWalker(d.bus)
			walker.SetRoot(root)
			walker.ResetTouched()
			res.walker = walker

			local := d.localMemFor(wi, desc, walker)

			ec := &execContext{
				prog:     prog,
				eng:      d.cfg.Engine,
				uniforms: uniforms,
				bus:      d.bus,
				walker:   walker,
				local:    local,
				gsz:      desc.GlobalSize,
				lsz:      desc.LocalSize,
				gs:       &res.gs,
				trace:    d.trace,
				stop:     &d.stopReq,
				// Check a warp slab out of the device free list for the
				// whole job; every workgroup this worker runs reuses it
				// (runWorkgroup grows it on demand).
				warpSlab: d.warpSlabs.get(),
			}
			defer func() { d.warpSlabs.put(ec.warpSlab) }()
			if collectCFG {
				res.cfg = stats.NewCFG()
				ec.cfg = res.cfg
			}
			res.gs.RegistersUsed = uint64(prog.RegCount)

			// Job-entry fence: guest-visible state written before the
			// doorbell (descriptors, inputs) is ordered before any shader
			// access. The matching job-exit fence below orders every store
			// of this virtual core before job completion is signalled.
			// Workgroup boundaries deliberately have no global fence — as
			// on hardware, cross-core visibility between workgroups of one
			// job is only word-granular, clause-ordered (see DESIGN.md §7).
			mem.Fence()
			for i := uint64(wi); i < totalWG; i += uint64(nWorkers) {
				if d.stopReq.Load() {
					res.err = ErrStopped
					return
				}
				ec.wgid = [3]uint32{
					uint32(i) % wgPerDim[0],
					(uint32(i) / wgPerDim[0]) % wgPerDim[1],
					uint32(i) / (wgPerDim[0] * wgPerDim[1]),
				}
				if err := ec.runWorkgroup(); err != nil {
					res.err = err
					return
				}
			}
			mem.Fence()
		}(wi)
	}
	wg.Wait()

	// Totalling at job completion requires no further synchronisation
	// (§IV-A): each shard was written by exactly one goroutine.
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	for i := range results {
		r := &results[i]
		d.gpuStats.Merge(&r.gs)
		if r.cfg != nil {
			d.cfgGraph.Merge(r.cfg)
		}
		if r.walker != nil {
			d.sysStats.TLBHits += r.walker.Hits
			d.sysStats.TLBWalks += r.walker.Walks
			r.walker.ForEachTouched(func(p uint64) {
				d.touchedPages[p] = struct{}{}
			})
		}
	}
	// A genuine fault wins over the soft-stop marker so diagnostics are
	// not masked when a stop races a faulting workgroup.
	var stopped bool
	for i := range results {
		switch err := results[i].err; {
		case err == nil:
		case errors.Is(err, ErrStopped):
			stopped = true
		default:
			return err
		}
	}
	if stopped {
		return ErrStopped
	}
	return nil
}

// localMemFor selects the workgroup-local store for a virtual core. The
// driver allocates guest slots for the architectural core count; workers
// beyond that use host shadow buffers so over-commit stays functionally
// correct (§III-B3).
func (d *Device) localMemFor(worker int, desc *JobDescriptor, walker *mmu.Walker) localMemory {
	if desc.LocalMemBytes == 0 {
		return nil
	}
	if desc.LocalMemVA != 0 && worker < d.cfg.ShaderCores {
		return &guestLocal{
			base:   desc.LocalMemVA + uint64(worker)*uint64(desc.LocalMemBytes),
			size:   uint64(desc.LocalMemBytes),
			walker: walker,
		}
	}
	return &shadowLocal{buf: make([]byte, desc.LocalMemBytes)}
}

// wgWarp couples a warp with its scheduler state.
type wgWarp struct {
	w         warp
	done      bool
	atBarrier bool
}

// warpsFor returns a zeroed slab of n warps, reusing the context's
// recycled slab when it is large enough. Recycled warps must come back
// architecturally fresh — a kernel observes zero-initialised registers —
// so each reused slot is cleared (a single memclr per warp); only the
// divergence stack's backing array survives, with its length reset.
func (e *execContext) warpsFor(n int) []wgWarp {
	if cap(e.warpSlab) < n {
		e.warpSlab = make([]wgWarp, n)
		return e.warpSlab
	}
	s := e.warpSlab[:n]
	e.warpSlab = s
	for i := range s {
		st := s[i].w.stack[:0]
		s[i] = wgWarp{}
		s[i].w.stack = st
	}
	return s
}

// runWorkgroup executes one workgroup: all its threads grouped into
// quads, scheduled round-robin with barrier rendezvous. The execContext's
// wgid/gsz/lsz must be set.
//
//simlint:commit -- counts dispatched workgroups, threads and warps
func (e *execContext) runWorkgroup() error {
	if e.local == nil {
		e.local = unusableLocal{}
	}
	lsz := e.lsz
	total := int(lsz[0]) * int(lsz[1]) * int(lsz[2])
	nWarps := (total + WarpSize - 1) / WarpSize

	warps := e.warpsFor(nWarps)
	for t := 0; t < total; t++ {
		lx := uint32(t) % lsz[0]
		ly := (uint32(t) / lsz[0]) % lsz[1]
		lz := uint32(t) / (lsz[0] * lsz[1])
		wi, lane := t/WarpSize, t%WarpSize
		w := &warps[wi].w
		w.lanes = lane + 1
		w.active[lane] = true
		w.lid[lane] = [3]uint32{lx, ly, lz}
		w.gid[lane] = [3]uint32{
			e.wgid[0]*lsz[0] + lx,
			e.wgid[1]*lsz[1] + ly,
			e.wgid[2]*lsz[2] + lz,
		}
	}

	e.gs.Workgroups++
	e.gs.Threads += uint64(total)
	e.gs.Warps += uint64(nWarps)

	remaining := nWarps
	for remaining > 0 {
		atBarrier := 0
		for i := range warps {
			ww := &warps[i]
			if ww.done {
				continue
			}
			if ww.atBarrier {
				atBarrier++
				continue
			}
			st, err := e.runWarp(&ww.w)
			if err != nil {
				return err
			}
			switch st {
			case warpDone:
				ww.done = true
				remaining--
			case warpAtBarrier:
				ww.atBarrier = true
				atBarrier++
			}
		}
		if remaining > 0 && atBarrier == remaining {
			// Barrier generation complete. Guest barriers are full fences;
			// one Fence at the rendezvous covers every warp's stores.
			mem.Fence()
			for i := range warps {
				if !warps[i].done {
					warps[i].atBarrier = false
				}
			}
		} else if remaining > 0 && atBarrier > 0 && atBarrier < remaining {
			// Some warps are parked but others still progress next pass.
			continue
		}
	}
	return nil
}

// unusableLocal rejects local accesses for kernels launched without local
// memory, turning a malformed dispatch into a job fault instead of a
// panic.
type unusableLocal struct{}

func (unusableLocal) load(uint64) (uint32, error) {
	return 0, fmt.Errorf("gpu: local memory access but job has no local allocation")
}

func (unusableLocal) store(uint64, uint32) error {
	return fmt.Errorf("gpu: local memory access but job has no local allocation")
}

// readGuest copies n bytes from the GPU address space, page by page (the
// underlying physical pages need not be contiguous).
func readGuest(walker *mmu.Walker, va uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := walker.ReadBytes(va, out); err != nil {
		return nil, err
	}
	return out, nil
}
