package gpu

import (
	"math"

	"mobilesim/internal/mem"
)

// JIT-compiled shader execution — the paper's stated future work
// ("JIT-compiled execution of GPU code", §VII-A), in the spirit of the
// authors' partial-evaluation work on DBT simulators [20]: at decode time
// each ALU instruction is specialised into a closure with its operand
// accessors pre-resolved, so the hot execution loop pays neither the
// opcode switch nor the operand-kind decoding. Load/store instructions
// compile to closures that capture the walker's combined
// translate-and-access fast path (TLB-cached host page views), so the
// memory-bound hot loop skips both the interpreter switch and the
// general translate + bus machinery. Control-flow and special-cased
// instructions (FMA/SEL accumulator forms) fall back to the interpreter.
//
// Enabled per device with Config.JITClauses; validated by the same
// differential suites as the interpreter.

// jitOp executes one pre-specialised instruction for one lane.
type jitOp func(e *execContext, w *warp, lane int) error

// jitProgram mirrors Program.Clauses with a closure (or nil) per slot.
type jitProgram struct {
	clauses [][]jitOp
}

// readFn fetches one source operand for a lane, bumping the data-access
// counters exactly as the interpreter does.
type readFn func(e *execContext, w *warp, lane int) uint64

//simlint:commit -- compiled closures carry the interpreter's read counters
func compileReader(o uint8, imm uint32, prog *Program) readFn {
	kind, idx := OperKind(o)
	switch kind {
	case OperGRF:
		i := int(idx)
		return func(e *execContext, w *warp, lane int) uint64 {
			e.gs.GRFRead++
			return w.regs[i][lane]
		}
	case OperTemp:
		i := int(idx)
		return func(e *execContext, w *warp, lane int) uint64 {
			e.gs.TempAcc++
			return w.temps[i][lane]
		}
	case OperUniform:
		i := int(idx)
		return func(e *execContext, w *warp, lane int) uint64 {
			e.gs.ConstRead++
			if i < len(e.uniforms) {
				return e.uniforms[i]
			}
			return 0
		}
	default:
		switch idx {
		case SpecImm:
			v := uint64(imm)
			return func(e *execContext, w *warp, lane int) uint64 {
				e.gs.ROMRead++
				return v
			}
		case SpecROM:
			// Resolve the ROM value at compile time: the table is
			// immutable per program.
			var v uint64
			if int(imm) < len(prog.ROM) {
				v = prog.ROM[imm]
			}
			return func(e *execContext, w *warp, lane int) uint64 {
				e.gs.ROMRead++
				return v
			}
		case SpecZero:
			return func(*execContext, *warp, int) uint64 { return 0 }
		case SpecGIDX, SpecGIDY, SpecGIDZ:
			d := int(idx - SpecGIDX)
			return func(e *execContext, w *warp, lane int) uint64 { return uint64(w.gid[lane][d]) }
		case SpecLIDX, SpecLIDY, SpecLIDZ:
			d := int(idx - SpecLIDX)
			return func(e *execContext, w *warp, lane int) uint64 { return uint64(w.lid[lane][d]) }
		case SpecWGIDX, SpecWGIDY, SpecWGIDZ:
			d := int(idx - SpecWGIDX)
			return func(e *execContext, w *warp, lane int) uint64 { return uint64(e.wgid[d]) }
		case SpecGSZX, SpecGSZY, SpecGSZZ:
			d := int(idx - SpecGSZX)
			return func(e *execContext, w *warp, lane int) uint64 { return uint64(e.gsz[d]) }
		case SpecLSZX, SpecLSZY, SpecLSZZ:
			d := int(idx - SpecLSZX)
			return func(e *execContext, w *warp, lane int) uint64 { return uint64(e.lsz[d]) }
		}
		return func(*execContext, *warp, int) uint64 { return 0 }
	}
}

// writeFn stores a result operand for a lane.
type writeFn func(e *execContext, w *warp, lane int, v uint64)

//simlint:commit -- compiled closures carry the interpreter's write counters
func compileWriter(o uint8) writeFn {
	kind, idx := OperKind(o)
	switch kind {
	case OperGRF:
		i := int(idx)
		return func(e *execContext, w *warp, lane int, v uint64) {
			e.gs.GRFWrite++
			w.regs[i][lane] = v
		}
	case OperTemp:
		i := int(idx)
		return func(e *execContext, w *warp, lane int, v uint64) {
			e.gs.TempAcc++
			w.temps[i][lane] = v
		}
	default:
		return func(*execContext, *warp, int, uint64) {}
	}
}

// binFns maps two-source ALU opcodes to their value functions.
var binFns = map[Opcode]func(a, b uint64) uint64{
	OpIADD:   func(a, b uint64) uint64 { return uint64(uint32(a) + uint32(b)) },
	OpISUB:   func(a, b uint64) uint64 { return uint64(uint32(a) - uint32(b)) },
	OpIMUL:   func(a, b uint64) uint64 { return uint64(uint32(a) * uint32(b)) },
	OpSHL:    func(a, b uint64) uint64 { return uint64(uint32(a) << (uint32(b) & 31)) },
	OpSHR:    func(a, b uint64) uint64 { return uint64(uint32(a) >> (uint32(b) & 31)) },
	OpSAR:    func(a, b uint64) uint64 { return uint64(uint32(int32(a) >> (uint32(b) & 31))) },
	OpAND:    func(a, b uint64) uint64 { return a & b },
	OpOR:     func(a, b uint64) uint64 { return a | b },
	OpXOR:    func(a, b uint64) uint64 { return a ^ b },
	OpADD64:  func(a, b uint64) uint64 { return a + b },
	OpMUL64:  func(a, b uint64) uint64 { return a * b },
	OpFADD:   func(a, b uint64) uint64 { return fbits(f32(a) + f32(b)) },
	OpFSUB:   func(a, b uint64) uint64 { return fbits(f32(a) - f32(b)) },
	OpFMUL:   func(a, b uint64) uint64 { return fbits(f32(a) * f32(b)) },
	OpFDIV:   func(a, b uint64) uint64 { return fbits(f32(a) / f32(b)) },
	OpICMPEQ: func(a, b uint64) uint64 { return b2u(uint32(a) == uint32(b)) },
	OpICMPNE: func(a, b uint64) uint64 { return b2u(uint32(a) != uint32(b)) },
	OpICMPLT: func(a, b uint64) uint64 { return b2u(int32(a) < int32(b)) },
	OpICMPLE: func(a, b uint64) uint64 { return b2u(int32(a) <= int32(b)) },
	OpUCMPLT: func(a, b uint64) uint64 { return b2u(uint32(a) < uint32(b)) },
	OpFCMPEQ: func(a, b uint64) uint64 { return b2u(f32(a) == f32(b)) },
	OpFCMPLT: func(a, b uint64) uint64 { return b2u(f32(a) < f32(b)) },
	OpFCMPLE: func(a, b uint64) uint64 { return b2u(f32(a) <= f32(b)) },
	OpIDIV: func(a, b uint64) uint64 {
		if int32(b) == 0 {
			return 0
		}
		if int32(a) == math.MinInt32 && int32(b) == -1 {
			return uint64(uint32(a))
		}
		return uint64(uint32(int32(a) / int32(b)))
	},
	OpIMOD: func(a, b uint64) uint64 {
		if int32(b) == 0 || (int32(a) == math.MinInt32 && int32(b) == -1) {
			return 0
		}
		return uint64(uint32(int32(a) % int32(b)))
	},
	OpIMIN: func(a, b uint64) uint64 {
		if int32(a) < int32(b) {
			return uint64(uint32(a))
		}
		return uint64(uint32(b))
	},
	OpIMAX: func(a, b uint64) uint64 {
		if int32(a) > int32(b) {
			return uint64(uint32(a))
		}
		return uint64(uint32(b))
	},
	OpFMIN: func(a, b uint64) uint64 {
		return fbits(float32(math.Min(float64(f32(a)), float64(f32(b)))))
	},
	OpFMAX: func(a, b uint64) uint64 {
		return fbits(float32(math.Max(float64(f32(a)), float64(f32(b)))))
	},
}

// unFns maps one-source ALU opcodes to their value functions.
var unFns = map[Opcode]func(a uint64) uint64{
	OpMOV:    func(a uint64) uint64 { return a },
	OpI2F:    func(a uint64) uint64 { return fbits(float32(int32(a))) },
	OpF2I:    func(a uint64) uint64 { return uint64(uint32(int32(f32(a)))) },
	OpFABS:   func(a uint64) uint64 { return fbits(float32(math.Abs(float64(f32(a))))) },
	OpFNEG:   func(a uint64) uint64 { return fbits(-f32(a)) },
	OpFSQRT:  func(a uint64) uint64 { return fbits(float32(math.Sqrt(float64(f32(a))))) },
	OpFEXP:   func(a uint64) uint64 { return fbits(float32(math.Exp(float64(f32(a))))) },
	OpFLOG:   func(a uint64) uint64 { return fbits(float32(math.Log(float64(f32(a))))) },
	OpFSIN:   func(a uint64) uint64 { return fbits(float32(math.Sin(float64(f32(a))))) },
	OpFCOS:   func(a uint64) uint64 { return fbits(float32(math.Cos(float64(f32(a))))) },
	OpFFLOOR: func(a uint64) uint64 { return fbits(float32(math.Floor(float64(f32(a))))) },
}

// compileMem specialises a load/store instruction into a closure over the
// walker fast path, or returns nil for non-memory opcodes. The closures
// bump the same Fig 12 counters as the interpreter path in exec.go.
//
//simlint:commit -- compiled closures carry the interpreter's memory counters
func compileMem(in *Instr, p *Program) jitOp {
	imm := uint64(int64(int32(in.Imm)))
	switch in.Op {
	case OpLDG, OpLDG64, OpLDGB:
		size := 4
		switch in.Op {
		case OpLDG64:
			size = 8
		case OpLDGB:
			size = 1
		}
		ra := compileReader(in.A, in.Imm, p)
		wr := compileWriter(in.Dst)
		return func(e *execContext, w *warp, lane int) error {
			e.gs.GlobalLS++
			e.gs.MainMemAcc++
			v, err := e.walker.Load(ra(e, w, lane)+imm, size, mem.Read)
			if err != nil {
				return err
			}
			wr(e, w, lane, v)
			return nil
		}

	case OpSTG, OpSTG64, OpSTGB:
		size := 4
		switch in.Op {
		case OpSTG64:
			size = 8
		case OpSTGB:
			size = 1
		}
		ra := compileReader(in.A, in.Imm, p)
		rb := compileReader(in.B, in.Imm, p)
		return func(e *execContext, w *warp, lane int) error {
			addr := ra(e, w, lane) + imm
			v := rb(e, w, lane)
			e.gs.GlobalLS++
			e.gs.MainMemAcc++
			return e.walker.Store(addr, size, v)
		}

	case OpLDL:
		ra := compileReader(in.A, in.Imm, p)
		wr := compileWriter(in.Dst)
		return func(e *execContext, w *warp, lane int) error {
			e.gs.LocalLS++
			e.gs.LocalAcc++
			v, err := e.local.load(ra(e, w, lane) + imm)
			if err != nil {
				return err
			}
			wr(e, w, lane, uint64(v))
			return nil
		}

	case OpSTL:
		ra := compileReader(in.A, in.Imm, p)
		rb := compileReader(in.B, in.Imm, p)
		return func(e *execContext, w *warp, lane int) error {
			off := ra(e, w, lane) + imm
			v := rb(e, w, lane)
			e.gs.LocalLS++
			e.gs.LocalAcc++
			return e.local.store(off, uint32(v))
		}
	}
	return nil
}

// jitCompile specialises all JIT-able instructions of a program. Slots
// holding control-flow, FMA/SEL (accumulator forms) or NOPs stay nil and
// take the interpreter path.
func jitCompile(p *Program) *jitProgram {
	jp := &jitProgram{clauses: make([][]jitOp, len(p.Clauses))}
	for ci := range p.Clauses {
		c := &p.Clauses[ci]
		ops := make([]jitOp, len(c.Instrs))
		for ii := range c.Instrs {
			in := &c.Instrs[ii]
			if op := compileMem(in, p); op != nil {
				ops[ii] = op
				continue
			}
			if bf, ok := binFns[in.Op]; ok {
				ra := compileReader(in.A, in.Imm, p)
				rb := compileReader(in.B, in.Imm, p)
				wr := compileWriter(in.Dst)
				f := bf
				ops[ii] = func(e *execContext, w *warp, lane int) error {
					wr(e, w, lane, f(ra(e, w, lane), rb(e, w, lane)))
					return nil
				}
				continue
			}
			if uf, ok := unFns[in.Op]; ok {
				ra := compileReader(in.A, in.Imm, p)
				wr := compileWriter(in.Dst)
				f := uf
				ops[ii] = func(e *execContext, w *warp, lane int) error {
					wr(e, w, lane, f(ra(e, w, lane)))
					return nil
				}
				continue
			}
		}
		jp.clauses[ci] = ops
	}
	return jp
}
