package gpu_test

import (
	"bytes"
	"math/rand"
	"testing"

	"mobilesim/internal/gpu"
	"mobilesim/internal/stats"
)

// Table-driven edge cases for the warp-batched engine's fast/fallback
// boundary: partial tail warps (lanes < WarpSize), warps whose lanes all
// exit while a fused clause chain is still scheduled, pend/join mask
// interaction under nested divergence, and the misaligned/page-crossing
// memory shapes that must leave the fused LDG/STG path. Each case runs
// the same program under all three engines and requires bit-identical
// guest memory and statistics; `check` additionally asserts (on the
// interpreter reference) that the case really exercised what its name
// claims.

type warpEdgeCase struct {
	name          string
	global, local [3]uint32
	prog          func() *gpu.Program
	check         func(t *testing.T, gs stats.GPUStats)
}

// edgeSetup is the shared ABI prologue: r1 = &in[gid*8], r2 =
// &out[gid*16], r3 = in word, r7 = gid parity, r9 = gid bit 1.
func edgeSetup() []gpu.Instr {
	return []gpu.Instr{
		{Op: gpu.OpSHL, Dst: gpu.R(0), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 3},
		{Op: gpu.OpADD64, Dst: gpu.R(1), A: gpu.C(0), B: gpu.R(0)},
		{Op: gpu.OpSHL, Dst: gpu.R(0), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 4},
		{Op: gpu.OpADD64, Dst: gpu.R(2), A: gpu.C(1), B: gpu.R(0)},
		{Op: gpu.OpLDG64, Dst: gpu.R(3), A: gpu.R(1)},
		{Op: gpu.OpAND, Dst: gpu.R(7), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 1},
		{Op: gpu.OpAND, Dst: gpu.R(9), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 2},
	}
}

// edgeStore is the shared epilogue clause: spill r8 and the raw input
// into the thread's output slice and terminate.
func edgeStore() gpu.Clause {
	return gpu.Clause{Instrs: []gpu.Instr{
		{Op: gpu.OpSTG64, A: gpu.R(2), B: gpu.R(8)},
		{Op: gpu.OpSTG64, A: gpu.R(2), B: gpu.R(3), Imm: 8},
		{Op: gpu.OpRET},
	}}
}

func edgeProgram(clauses ...gpu.Clause) *gpu.Program {
	p := &gpu.Program{RegCount: 26, Uniforms: 4}
	p.Clauses = append(p.Clauses, gpu.Clause{Instrs: edgeSetup()})
	p.Clauses = append(p.Clauses, clauses...)
	for i := range p.Clauses {
		p.Clauses[i].Addr = uint64(i) * 0x10
	}
	return p
}

var warpEdgeCases = []warpEdgeCase{
	// Fused straight-line ALU over every tail-warp shape: local sizes
	// 1/3/5/7 give warps with 1..3 live lanes next to full quads.
	{
		name: "fused_alu_tail_lsz1", global: [3]uint32{5, 1, 1}, local: [3]uint32{1, 1, 1},
		prog: fusedALUProgram,
	},
	{
		name: "fused_alu_tail_lsz3", global: [3]uint32{9, 1, 1}, local: [3]uint32{3, 1, 1},
		prog: fusedALUProgram,
	},
	{
		name: "fused_alu_tail_lsz5", global: [3]uint32{15, 1, 1}, local: [3]uint32{5, 1, 1},
		prog: fusedALUProgram,
	},
	{
		name: "fused_alu_tail_lsz7", global: [3]uint32{21, 1, 1}, local: [3]uint32{7, 1, 1},
		prog: fusedALUProgram,
		check: func(t *testing.T, gs stats.GPUStats) {
			if gs.Warps != 3*2 { // 3 workgroups x (one quad + 3-lane tail)
				t.Errorf("expected 6 warps, got %d", gs.Warps)
			}
		},
	},
	// Every lane exits at a fused clause's RET terminal while later
	// clauses are still present in the program.
	{
		name: "all_lanes_exit_mid_program", global: [3]uint32{8, 1, 1}, local: [3]uint32{4, 1, 1},
		prog: func() *gpu.Program {
			return edgeProgram(
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(3), B: gpu.Imm, Imm: 0x55},
					{Op: gpu.OpSTG64, A: gpu.R(2), B: gpu.R(8)},
					{Op: gpu.OpRET},
				}},
				// Dead tail: must never execute, under any engine.
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpSTG64, A: gpu.R(2), B: gpu.Imm, Imm: 0xDEAD},
					{Op: gpu.OpRET},
				}},
			)
		},
	},
	// Divergent branch whose taken path RETs: half the lanes exit inside
	// the divergent region, the rest must still rejoin and finish.
	{
		name: "diverge_taken_ret", global: [3]uint32{8, 1, 1}, local: [3]uint32{4, 1, 1},
		prog: func() *gpu.Program {
			return edgeProgram(
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpBRC, A: gpu.R(7), Imm: gpu.BranchImm(2, 3)},
				}},
				gpu.Clause{Instrs: []gpu.Instr{ // taken: store and exit
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(3), B: gpu.Imm, Imm: 0x100},
					{Op: gpu.OpSTG64, A: gpu.R(2), B: gpu.R(8)},
					{Op: gpu.OpRET},
				}},
				edgeStore(), // fall path rejoins here
			)
		},
		check: func(t *testing.T, gs stats.GPUStats) {
			if gs.DivergentBranches == 0 {
				t.Error("expected divergent branches")
			}
		},
	},
	// Both divergent paths RET: the warp drains without ever reaching the
	// reconvergence point, so the pend stack must unwind via exits alone.
	{
		name: "both_paths_ret", global: [3]uint32{8, 1, 1}, local: [3]uint32{4, 1, 1},
		prog: func() *gpu.Program {
			return edgeProgram(
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpBRC, A: gpu.R(7), Imm: gpu.BranchImm(3, 4)},
				}},
				gpu.Clause{Instrs: []gpu.Instr{ // fall path
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(3), B: gpu.Imm, Imm: 0x200},
					{Op: gpu.OpSTG64, A: gpu.R(2), B: gpu.R(8)},
					{Op: gpu.OpRET},
				}},
				gpu.Clause{Instrs: []gpu.Instr{ // taken path
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(3), B: gpu.Imm, Imm: 0x300},
					{Op: gpu.OpSTG64, A: gpu.R(2), B: gpu.R(8), Imm: 8},
					{Op: gpu.OpRET},
				}},
			)
		},
	},
	// Nested divergence where the inner diamond reconverges at the outer
	// rejoin clause: two pend frames with the same join address exercise
	// the pend/join mask bookkeeping.
	{
		name: "nested_divergence_shared_join", global: [3]uint32{8, 1, 1}, local: [3]uint32{4, 1, 1},
		prog: func() *gpu.Program {
			return edgeProgram(
				gpu.Clause{Instrs: []gpu.Instr{ // c1: outer split on bit 0
					{Op: gpu.OpBRC, A: gpu.R(7), Imm: gpu.BranchImm(3, 6)},
				}},
				gpu.Clause{Instrs: []gpu.Instr{ // c2: outer fall path
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(8), B: gpu.Imm, Imm: 0x1000},
					{Op: gpu.OpBR, Imm: 6},
				}},
				gpu.Clause{Instrs: []gpu.Instr{ // c3: outer taken, inner split on bit 1
					{Op: gpu.OpBRC, A: gpu.R(9), Imm: gpu.BranchImm(5, 6)},
				}},
				gpu.Clause{Instrs: []gpu.Instr{ // c4: inner fall path
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(8), B: gpu.Imm, Imm: 0x100},
					{Op: gpu.OpBR, Imm: 6},
				}},
				gpu.Clause{Instrs: []gpu.Instr{ // c5: inner taken, falls through
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(8), B: gpu.Imm, Imm: 0x10},
				}},
				edgeStore(), // c6: shared rejoin
			)
		},
		check: func(t *testing.T, gs stats.GPUStats) {
			if gs.DivergentBranches < 2 {
				t.Errorf("expected nested divergence, got %d divergent branches", gs.DivergentBranches)
			}
		},
	},
	// Divergence on a 3-lane tail warp: the active mask never covers a
	// full quad, so fused bodies, branch bookkeeping and rejoin all run
	// with lanes < WarpSize.
	{
		name: "diverge_partial_tail", global: [3]uint32{9, 1, 1}, local: [3]uint32{3, 1, 1},
		prog: func() *gpu.Program {
			return edgeProgram(
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpBRC, A: gpu.R(7), Imm: gpu.BranchImm(3, 4)},
				}},
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(3), B: gpu.Imm, Imm: 0x21},
					{Op: gpu.OpBR, Imm: 4},
				}},
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(3), B: gpu.Imm, Imm: 0x42},
				}},
				edgeStore(),
			)
		},
	},
	// Barrier rendezvous across a partial tail warp.
	{
		name: "barrier_tail", global: [3]uint32{10, 1, 1}, local: [3]uint32{5, 1, 1},
		prog: func() *gpu.Program {
			return edgeProgram(
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(3), B: gpu.Imm, Imm: 0x77},
					{Op: gpu.OpBARRIER},
				}},
				edgeStore(),
			)
		},
	},
	// Misaligned (in-page) global loads through the fused LDG path.
	{
		name: "misaligned_ldg", global: [3]uint32{8, 1, 1}, local: [3]uint32{4, 1, 1},
		prog: func() *gpu.Program {
			return edgeProgram(
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpLDG, Dst: gpu.R(8), A: gpu.R(1), Imm: 1},
					{Op: gpu.OpLDG64, Dst: gpu.R(10), A: gpu.R(1), Imm: 3},
					{Op: gpu.OpXOR, Dst: gpu.R(8), A: gpu.R(8), B: gpu.R(10)},
				}},
				edgeStore(),
			)
		},
	},
	// A load that straddles a page boundary: the walker must leave its
	// single-page fast path under every engine, with identical TLB and
	// main-memory accounting.
	{
		name: "page_crossing_ldg64", global: [3]uint32{8, 1, 1}, local: [3]uint32{4, 1, 1},
		prog: func() *gpu.Program {
			return edgeProgram(
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpADD64, Dst: gpu.R(10), A: gpu.C(0), B: gpu.Imm, Imm: 4092},
					{Op: gpu.OpLDG64, Dst: gpu.R(8), A: gpu.R(10)},
				}},
				edgeStore(),
			)
		},
	},
	// A page-crossing store, reached by exactly one lane through a
	// divergent skip (so the crossing bytes are written once and the
	// result is deterministic). The differential harness folds the bytes
	// around the scratch page boundary into the compared output.
	{
		name: "page_crossing_stg", global: [3]uint32{8, 1, 1}, local: [3]uint32{4, 1, 1},
		prog: func() *gpu.Program {
			return edgeProgram(
				gpu.Clause{Instrs: []gpu.Instr{ // skip the store unless gid == 0
					{Op: gpu.OpICMPNE, Dst: gpu.R(10), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 0},
					{Op: gpu.OpBRC, A: gpu.R(10), Imm: gpu.BranchImm(3, 3)},
				}},
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpADD64, Dst: gpu.R(11), A: gpu.C(3), B: gpu.Imm, Imm: diffScratchOff},
					{Op: gpu.OpSTG, A: gpu.R(11), B: gpu.R(3)},
				}},
				edgeStore(),
			)
		},
	},
	// A BRC whose target is the clause a fallthrough chain would otherwise
	// absorb: taken lanes enter c3 directly with r8 still zero, fall lanes
	// flow through c2 into c3 — fusing c2→c3 would run c2 on taken lanes.
	{
		name: "brc_into_mid_chain", global: [3]uint32{8, 1, 1}, local: [3]uint32{4, 1, 1},
		prog: func() *gpu.Program {
			return edgeProgram(
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpBRC, A: gpu.R(7), Imm: gpu.BranchImm(3, 4)},
				}},
				gpu.Clause{Instrs: []gpu.Instr{ // c2: fall path, falls through into c3
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(3), B: gpu.Imm, Imm: 0x11},
				}},
				gpu.Clause{Instrs: []gpu.Instr{ // c3: also the branch target
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(8), B: gpu.Imm, Imm: 0x2200},
				}},
				edgeStore(), // c4: rejoin
			)
		},
		check: func(t *testing.T, gs stats.GPUStats) {
			if gs.DivergentBranches == 0 {
				t.Error("expected divergent branches")
			}
		},
	},
	// Fusable ALU chains on both sides of a barrier: the chain before it
	// must end at the BARRIER terminal, the resume clause heads a new one.
	{
		name: "barrier_between_fused_chains", global: [3]uint32{8, 1, 1}, local: [3]uint32{4, 1, 1},
		prog: func() *gpu.Program {
			return edgeProgram(
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(3), B: gpu.Imm, Imm: 1},
				}},
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(8), B: gpu.Imm, Imm: 0x30},
					{Op: gpu.OpBARRIER},
				}},
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpSHL, Dst: gpu.R(10), A: gpu.R(8), B: gpu.Imm, Imm: 1},
				}},
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(8), B: gpu.R(10)},
				}},
				edgeStore(),
			)
		},
	},
	// Lane stride 1020: warp 0's span (3064 B) fits one page and takes the
	// batched LDG path, warp 1's span crosses the page boundary and must
	// fall back per lane — identical data and counters either way.
	{
		name: "strided_ldg_page_cross_fallback", global: [3]uint32{8, 1, 1}, local: [3]uint32{4, 1, 1},
		prog: func() *gpu.Program {
			return edgeProgram(
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpIMUL, Dst: gpu.R(10), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 1020},
					{Op: gpu.OpADD64, Dst: gpu.R(10), A: gpu.C(0), B: gpu.R(10)},
					{Op: gpu.OpLDG, Dst: gpu.R(11), A: gpu.R(10)},
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(11), B: gpu.R(3)},
				}},
				edgeStore(),
			)
		},
	},
	// Batched stores with lane-permuted (descending within each quad)
	// addresses, read back by the straight order: batchSpan must handle
	// non-monotonic lanes, and the bulk copies must preserve per-lane
	// values exactly (each scratch slot is written by exactly one thread).
	{
		name: "permuted_batched_stg", global: [3]uint32{8, 1, 1}, local: [3]uint32{4, 1, 1},
		prog: func() *gpu.Program {
			return edgeProgram(
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpXOR, Dst: gpu.R(10), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 3},
					{Op: gpu.OpSHL, Dst: gpu.R(10), A: gpu.R(10), B: gpu.Imm, Imm: 3},
					{Op: gpu.OpADD64, Dst: gpu.R(10), A: gpu.C(3), B: gpu.R(10)},
					{Op: gpu.OpSTG64, A: gpu.R(10), B: gpu.R(3)},
				}},
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpSHL, Dst: gpu.R(11), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 3},
					{Op: gpu.OpADD64, Dst: gpu.R(11), A: gpu.C(3), B: gpu.R(11)},
					{Op: gpu.OpLDG64, Dst: gpu.R(12), A: gpu.R(11)},
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(12), B: gpu.Imm, Imm: 5},
				}},
				edgeStore(),
			)
		},
	},
	// Clause temporaries threaded through fused ALU closures, plus the
	// accumulator forms (FMA reads its destination, SEL selects on it).
	{
		name: "clause_temps_and_accumulators", global: [3]uint32{8, 1, 1}, local: [3]uint32{4, 1, 1},
		prog: func() *gpu.Program {
			return edgeProgram(
				gpu.Clause{Instrs: []gpu.Instr{
					{Op: gpu.OpMOV, Dst: gpu.T(0), A: gpu.R(3)},
					{Op: gpu.OpIADD, Dst: gpu.T(1), A: gpu.T(0), B: gpu.Imm, Imm: 9},
					{Op: gpu.OpSHL, Dst: gpu.T(2), A: gpu.T(1), B: gpu.Imm, Imm: 1},
					{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.T(2), B: gpu.T(0)},
					{Op: gpu.OpI2F, Dst: gpu.R(10), A: gpu.R(7)},
					{Op: gpu.OpFMA, Dst: gpu.R(10), A: gpu.R(10), B: gpu.Imm, Imm: 0x40400000},
					{Op: gpu.OpSEL, Dst: gpu.R(8), A: gpu.R(8), B: gpu.R(10)},
				}},
				edgeStore(),
			)
		},
	},
}

// fusedALUProgram is a straight-line, all-fusable kernel shared by the
// tail-warp cases.
func fusedALUProgram() *gpu.Program {
	return edgeProgram(
		gpu.Clause{Instrs: []gpu.Instr{
			{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(3), B: gpu.Imm, Imm: 13},
			{Op: gpu.OpIMUL, Dst: gpu.R(8), A: gpu.R(8), B: gpu.S(gpu.SpecGIDX)},
			{Op: gpu.OpXOR, Dst: gpu.R(8), A: gpu.R(8), B: gpu.S(gpu.SpecLIDX)},
		}},
		gpu.Clause{Instrs: []gpu.Instr{
			{Op: gpu.OpSHR, Dst: gpu.R(10), A: gpu.R(8), B: gpu.Imm, Imm: 3},
			{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(8), B: gpu.R(10)},
		}},
		edgeStore(),
	)
}

// TestWarpEngineEdgeCases runs each edge program under all three engines
// and requires interpreter-identical guest memory and statistics.
func TestWarpEngineEdgeCases(t *testing.T) {
	for _, tc := range warpEdgeCases {
		t.Run(tc.name, func(t *testing.T) {
			prog := tc.prog()
			in := make([]byte, int(tc.global[0])*8)
			rand.New(rand.NewSource(42)).Read(in)

			outRef, statsRef := runDifferentialEngine(t, gpu.EngineInterp, prog, in, tc.global, tc.local, 0)
			for _, eng := range []gpu.Engine{gpu.EngineJIT, gpu.EngineWarp} {
				out, st := runDifferentialEngine(t, eng, prog, in, tc.global, tc.local, 0)
				if !bytes.Equal(outRef, out) {
					t.Fatalf("guest memory diverged under %v\nprogram:\n%s", eng, prog.Disassemble())
				}
				if statsRef != st {
					t.Fatalf("stats diverged:\ninterp: %+v\n%v: %+v\nprogram:\n%s",
						statsRef, eng, st, prog.Disassemble())
				}
			}
			if tc.check != nil {
				gs := statsRef.([2]any)[0].(stats.GPUStats)
				tc.check(t, gs)
			}
		})
	}
}
