package gpu

import (
	"errors"
	"sync/atomic"
	"testing"
)

// Structural tests for superclause fusion (DESIGN.md §9). The differential
// and edge suites prove fused programs *behave* like the interpreter;
// these pin the fusion decisions themselves — which chains form and,
// just as important, which control-flow shapes must break them.

// aluClause is a minimal fusable clause body.
func aluClause() Clause {
	return Clause{Instrs: []Instr{{Op: OpIADD, Dst: R(8), A: R(1), B: R(2)}}}
}

// superShape compiles the program for the warp engine and returns, per
// clause index, the fused chain length headed there (0 = no chain).
func superShape(t *testing.T, clauses ...Clause) []int {
	t.Helper()
	p := &Program{RegCount: 16, Clauses: clauses}
	for i := range p.Clauses {
		p.Clauses[i].Addr = uint64(i) * 0x10
	}
	p.compile(EngineWarp)
	shape := make([]int, len(clauses))
	if p.warp.super == nil {
		return shape
	}
	for ci, sc := range p.warp.super {
		if sc != nil {
			shape[ci] = len(sc.segs)
		}
	}
	return shape
}

func TestSuperClauseFusionShapes(t *testing.T) {
	brc := func(target, rejoin int) Clause {
		return Clause{Instrs: []Instr{{Op: OpBRC, A: R(7), Imm: BranchImm(target, rejoin)}}}
	}
	withTerm := func(c Clause, op Opcode) Clause {
		c.Instrs = append(c.Instrs, Instr{Op: op})
		return c
	}

	t.Run("straight_line_fuses_whole_program", func(t *testing.T) {
		got := superShape(t, aluClause(), aluClause(), aluClause(), withTerm(aluClause(), OpRET))
		if got[0] != 4 {
			t.Errorf("shape = %v, want one 4-clause chain at 0", got)
		}
	})

	t.Run("branch_into_mid_chain_breaks_fusion", func(t *testing.T) {
		// c0→c1→c2 would fuse, but c3's BRC targets c1: c1 must stay an
		// independently executable chain head, so c0 fuses with nothing
		// and the chain restarts at c1 (absorbing c2 and the BRC clause).
		got := superShape(t,
			aluClause(),                  // c0
			aluClause(),                  // c1: branch target
			aluClause(),                  // c2
			brc(1, 4),                    // c3
			withTerm(aluClause(), OpRET), // c4: rejoin
		)
		if got[0] != 0 {
			t.Errorf("c0 fused a chain of %d across a branch target", got[0])
		}
		if got[1] != 3 {
			t.Errorf("shape = %v, want a 3-clause chain at c1", got)
		}
	})

	t.Run("barrier_breaks_fusion_both_sides", func(t *testing.T) {
		// The BARRIER terminal parks the warp (no fusing past it), and the
		// resume clause is an entry (warps re-enter there after the
		// rendezvous) — but the post-barrier straight line still fuses.
		got := superShape(t,
			withTerm(aluClause(), OpBARRIER), // c0
			aluClause(),                      // c1: barrier resume
			withTerm(aluClause(), OpRET),     // c2
		)
		if got[0] != 0 {
			t.Errorf("fused across a barrier: shape = %v", got)
		}
		if got[1] != 2 {
			t.Errorf("post-barrier chain missing: shape = %v", got)
		}
	})

	t.Run("unconditional_br_fuses_single_pred_target", func(t *testing.T) {
		p := &Program{RegCount: 16, Clauses: []Clause{
			withTerm(aluClause(), OpBR), // c0: BR → c1 (Imm set below)
			withTerm(aluClause(), OpRET),
		}}
		p.Clauses[0].Instrs[1].Imm = 1
		for i := range p.Clauses {
			p.Clauses[i].Addr = uint64(i) * 0x10
		}
		p.compile(EngineWarp)
		sc := p.warp.super[0]
		if sc == nil || len(sc.segs) != 2 {
			t.Fatalf("BR into single-pred clause did not fuse")
		}
		// The folded BR must still be accounted as a control-flow
		// instruction at the original clause boundary.
		if !sc.segs[0].brCF {
			t.Error("folded BR segment lost its CFInstr accounting")
		}
		if sc.segs[1].brCF {
			t.Error("final segment must not carry a folded-BR bump (its terminal is live)")
		}
	})

	t.Run("two_predecessors_block_fusion", func(t *testing.T) {
		// Both c0 (BR) and c1 (fallthrough) enter c2: fusing c2 into
		// either chain would execute it on the wrong path.
		p := &Program{RegCount: 16, Clauses: []Clause{
			withTerm(aluClause(), OpBR),
			aluClause(),
			withTerm(aluClause(), OpRET),
		}}
		p.Clauses[0].Instrs[1].Imm = 2
		for i := range p.Clauses {
			p.Clauses[i].Addr = uint64(i) * 0x10
		}
		p.compile(EngineWarp)
		if p.warp.super != nil {
			for ci, sc := range p.warp.super {
				if sc != nil {
					t.Errorf("clause %d fused a %d-chain into a two-pred join", ci, len(sc.segs))
				}
			}
		}
	})
}

// TestSuperClauseSoftStopAtSegBoundary pins the soft-stop contract inside
// a fused chain: the latch is polled at every *original* clause boundary,
// so a stop raised before execution aborts after exactly the first
// segment — its clause-entry statistics committed, the second segment's
// not, and no memory traffic from the second clause issued.
func TestSuperClauseSoftStopAtSegBoundary(t *testing.T) {
	ec, w, p := newHotContext(t)
	sc := p.warp.super[0]
	if sc == nil || len(sc.segs) != 2 {
		t.Fatalf("hot program did not fuse into a 2-clause chain")
	}
	var stop atomic.Bool
	stop.Store(true)
	ec.stop = &stop

	hits, walks := ec.walker.Hits, ec.walker.Walks
	st, err := ec.execSuper(w, sc)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("execSuper under stop: status %v, err %v; want ErrStopped", st, err)
	}
	if ec.gs.ClausesExec != 1 {
		t.Errorf("clauses executed before stop = %d, want exactly 1", ec.gs.ClausesExec)
	}
	if ec.gs.GlobalLS != 0 || ec.walker.Hits != hits || ec.walker.Walks != walks {
		t.Errorf("second segment's memory traffic leaked past the stop: GlobalLS=%d", ec.gs.GlobalLS)
	}
}

// TestSuperClauseFaultMatchesInterp makes one lane's global load fault in
// the *second* clause of a fused chain and requires the warp engine to
// leave behind exactly the interpreter's state: same error, same
// registers (the abort prefix of the faulting instruction included), same
// GPU statistics, same TLB accounting.
func TestSuperClauseFaultMatchesInterp(t *testing.T) {
	mk := func(eng Engine) (*execContext, *warp) {
		ec, w, _ := newHotContext(t)
		ec.eng = eng
		w.regs[4][WarpSize-1] = 0xdead_0000 // unmapped: faults mid-warp, mid-chain
		return ec, w
	}
	ecW, wW := mk(EngineWarp)
	ecI, wI := mk(EngineInterp)

	_, errW := ecW.runWarp(wW)
	_, errI := ecI.runWarp(wI)
	if errW == nil || errI == nil {
		t.Fatalf("expected a fault from both engines; warp=%v interp=%v", errW, errI)
	}
	if errW.Error() != errI.Error() {
		t.Errorf("fault mismatch:\nwarp:   %v\ninterp: %v", errW, errI)
	}
	if wW.regs != wI.regs {
		t.Errorf("registers diverged after mid-chain fault")
	}
	if *ecW.gs != *ecI.gs {
		t.Errorf("stats diverged after mid-chain fault:\nwarp:   %+v\ninterp: %+v", *ecW.gs, *ecI.gs)
	}
	if ecW.walker.Hits != ecI.walker.Hits || ecW.walker.Walks != ecI.walker.Walks {
		t.Errorf("TLB accounting diverged: warp %d/%d, interp %d/%d",
			ecW.walker.Hits, ecW.walker.Walks, ecI.walker.Hits, ecI.walker.Walks)
	}
}
