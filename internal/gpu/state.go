package gpu

import (
	"sort"

	"mobilesim/internal/stats"
)

// State is the serializable device state for platform snapshots: the
// guest-visible register file plus the accumulated statistics. Host-side
// warm-up state — the decode cache, the collected CFG, trace sinks — is
// deliberately not captured: it is rebuilt on demand and never
// guest-visible. A device must be quiescent (job slot idle, no chain in
// flight) when captured.
type State struct {
	IRQRawstat uint32
	IRQMask    uint32
	JSHead     uint64
	JSStatus   uint32
	ASTranstab uint64
	ASApplied  uint64
	FaultStat  uint64
	FaultAddr  uint64

	DecodesTotal uint64

	GPUStats stats.GPUStats
	SysStats stats.SystemStats
	// TouchedPages is the distinct-page set behind the Table III
	// statistic, sorted for deterministic serialization.
	TouchedPages []uint64
}

// CaptureState snapshots the device. The caller must ensure no job chain
// is executing (the facade serialises capture on the session queue).
//
//simlint:commit -- snapshot copies the counter records wholesale
func (d *Device) CaptureState() State {
	d.mu.Lock()
	st := State{
		IRQRawstat: d.irqRawstat,
		IRQMask:    d.irqMask,
		JSHead:     d.jsHead,
		JSStatus:   d.jsStatus,
		ASTranstab: d.asTranstab,
		ASApplied:  d.asApplied,
		FaultStat:  d.faultStat,
		FaultAddr:  d.faultAddr,
	}
	d.mu.Unlock()

	d.decodeMu.Lock()
	st.DecodesTotal = d.DecodesTotal
	d.decodeMu.Unlock()

	d.statsMu.Lock()
	st.GPUStats = d.gpuStats
	st.SysStats = d.sysStats
	st.TouchedPages = make([]uint64, 0, len(d.touchedPages))
	for p := range d.touchedPages {
		st.TouchedPages = append(st.TouchedPages, p)
	}
	d.statsMu.Unlock()
	sort.Slice(st.TouchedPages, func(i, j int) bool { return st.TouchedPages[i] < st.TouchedPages[j] })
	return st
}

// RestoreState installs captured device state on a freshly constructed
// device (after Start; the Job Manager is idle until the first doorbell).
// The interrupt line is re-asserted when the restored rawstat has an
// unmasked bit pending, so a restored platform observes the same
// level-sensitive interrupt picture the captured one did.
//
//simlint:commit -- restore overwrites the counter records wholesale
func (d *Device) RestoreState(st State) {
	d.mu.Lock()
	d.irqRawstat = st.IRQRawstat
	d.irqMask = st.IRQMask
	d.jsHead = st.JSHead
	d.jsStatus = st.JSStatus
	d.asTranstab = st.ASTranstab
	d.asApplied = st.ASApplied
	d.faultStat = st.FaultStat
	d.faultAddr = st.FaultAddr
	fire := d.irqRawstat&d.irqMask != 0
	d.mu.Unlock()

	d.decodeMu.Lock()
	d.DecodesTotal = st.DecodesTotal
	d.decodeMu.Unlock()

	d.statsMu.Lock()
	d.gpuStats = st.GPUStats
	d.sysStats = st.SysStats
	d.touchedPages = make(map[uint64]struct{}, len(st.TouchedPages))
	for _, p := range st.TouchedPages {
		d.touchedPages[p] = struct{}{}
	}
	d.statsMu.Unlock()

	if fire {
		d.intc.Assert(d.line)
	}
}
