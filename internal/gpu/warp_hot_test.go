package gpu

import (
	"testing"

	"mobilesim/internal/mem"
	"mobilesim/internal/mmu"
	"mobilesim/internal/stats"
)

// In-package pins for the fused warp hot path, mirroring the MMU's
// TestSharedLoadHitPathZeroAllocs/BenchmarkSharedWalkerLoadHit pair: the
// steady-state fused clause — ALU rows plus TLB-hit LDG/STG — must not
// touch the heap, and the micro-benchmark puts a per-clause number on
// each engine tier.

// hotProgram is a straight-line two-clause kernel whose every slot takes
// a fused warp closure: vector ALU (including the FMA/SEL accumulator
// forms), an immediate-shift, and a TLB-hit LDG/STG pair.
func hotProgram() *Program {
	p := &Program{RegCount: 16, Clauses: []Clause{
		{Instrs: []Instr{
			{Op: OpIADD, Dst: R(8), A: R(1), B: R(2)},
			{Op: OpIMUL, Dst: R(9), A: R(8), B: R(1)},
			{Op: OpXOR, Dst: R(8), A: R(9), B: R(2)},
			{Op: OpSHL, Dst: R(10), A: R(8), B: Imm, Imm: 3},
			{Op: OpIADD, Dst: R(8), A: R(10), B: R(9)},
			{Op: OpFMA, Dst: R(11), A: R(8), B: R(9)},
		}},
		{Instrs: []Instr{
			{Op: OpLDG, Dst: R(12), A: R(4)},
			{Op: OpSTG, A: R(5), B: R(12)},
			{Op: OpIADD, Dst: R(8), A: R(8), B: R(12)},
			{Op: OpSEL, Dst: R(13), A: R(8), B: R(9)},
		}},
	}}
	for i := range p.Clauses {
		p.Clauses[i].Addr = uint64(i) * 0x10
	}
	return p
}

// newHotContext builds a minimal execution rig — bus, identity-style
// address space, shared walker — and a full warp with per-lane load/store
// addresses already primed in the TLB.
func newHotContext(tb testing.TB) (*execContext, *warp, *Program) {
	tb.Helper()
	bus := mem.NewBus(mem.NewRAM(0, 16<<20))
	alloc, err := mem.NewPageAllocator(1<<20, 8<<20)
	if err != nil {
		tb.Fatal(err)
	}
	as, err := mmu.NewAddressSpace(bus, alloc)
	if err != nil {
		tb.Fatal(err)
	}
	const va = 0x10000
	if err := as.MapRange(va, 0x0020_0000, 2*mem.PageSize, mmu.PermR|mmu.PermW); err != nil {
		tb.Fatal(err)
	}
	walker := mmu.NewSharedWalker(bus)
	walker.SetRoot(as.Root())
	walker.ResetTouched()

	w := &warp{lanes: WarpSize}
	for l := 0; l < WarpSize; l++ {
		w.active[l] = true
		w.regs[1][l] = uint64(3 + l)
		w.regs[2][l] = uint64(17 * (l + 1))
		w.regs[4][l] = va + uint64(l)*64
		w.regs[5][l] = va + 4096 + uint64(l)*64
		// Prime the walker so the measured loop stays on the TLB-hit path.
		if _, err := walker.Load(w.regs[4][l], 4, mem.Read); err != nil {
			tb.Fatal(err)
		}
		if err := walker.Store(w.regs[5][l], 4, 0); err != nil {
			tb.Fatal(err)
		}
	}

	p := hotProgram()
	p.compile(EngineJIT)
	p.compile(EngineWarp)
	ec := &execContext{
		prog:   p,
		eng:    EngineWarp,
		bus:    bus,
		walker: walker,
		gs:     &stats.GPUStats{},
		gsz:    [3]uint32{WarpSize, 1, 1},
		lsz:    [3]uint32{WarpSize, 1, 1},
	}
	return ec, w, p
}

// runHotClauses executes the whole program once through execClause,
// starting from clause 0.
func runHotClauses(tb testing.TB, ec *execContext, w *warp) {
	w.pc = 0
	for ci := 0; ci < len(ec.prog.Clauses); ci++ {
		if _, err := ec.execClause(w); err != nil {
			tb.Fatal(err)
		}
	}
}

// TestWarpFusedClausesZeroAllocs pins the fused warp path — ALU rows,
// accumulator forms and TLB-hit global load/store — to zero heap
// allocations per clause chain.
func TestWarpFusedClausesZeroAllocs(t *testing.T) {
	ec, w, _ := newHotContext(t)
	runHotClauses(t, ec, w) // warm up once
	allocs := testing.AllocsPerRun(1000, func() {
		runHotClauses(t, ec, w)
	})
	if allocs != 0 {
		t.Errorf("fused warp clause chain allocates %v/op, want 0", allocs)
	}
}

// TestWarpFusedClausesMatchInterp cross-checks the in-package rig itself:
// the fused closures and the interpreter must leave identical registers
// and statistics from identical starting state.
func TestWarpFusedClausesMatchInterp(t *testing.T) {
	run := func(eng Engine) ([NumGRF][WarpSize]uint64, stats.GPUStats) {
		ec, w, _ := newHotContext(t)
		ec.eng = eng
		runHotClauses(t, ec, w)
		return w.regs, *ec.gs
	}
	regsI, gsI := run(EngineInterp)
	regsW, gsW := run(EngineWarp)
	regsJ, gsJ := run(EngineJIT)
	if regsI != regsW || gsI != gsW {
		t.Errorf("warp engine diverges from interpreter:\ninterp regs %v stats %+v\nwarp   regs %v stats %+v",
			regsI, gsI, regsW, gsW)
	}
	if regsI != regsJ || gsI != gsJ {
		t.Errorf("jit engine diverges from interpreter")
	}
}

// BenchmarkWarpClauseEngines measures the per-clause-chain cost of each
// engine tier on the same fused-friendly kernel (companion to the
// session-level AblationGPUJIT benchmark).
func BenchmarkWarpClauseEngines(b *testing.B) {
	for _, eng := range []Engine{EngineInterp, EngineJIT, EngineWarp} {
		b.Run(eng.String(), func(b *testing.B) {
			ec, w, _ := newHotContext(b)
			ec.eng = eng
			runHotClauses(b, ec, w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runHotClauses(b, ec, w)
			}
		})
	}
}

// TestWarpClauseEnginesBenchAllocs pins BenchmarkWarpClauseEngines/warp's
// -benchmem reading to zero: the benchmark's own allocation accounting —
// not just AllocsPerRun — must show an allocation-free steady state, so a
// regression shows up in CI and not only in a manually-read benchmark log.
func TestWarpClauseEnginesBenchAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness run skipped in -short")
	}
	res := testing.Benchmark(func(b *testing.B) {
		ec, w, _ := newHotContext(b)
		runHotClauses(b, ec, w)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runHotClauses(b, ec, w)
		}
	})
	if a := res.AllocsPerOp(); a != 0 {
		t.Errorf("BenchmarkWarpClauseEngines/warp allocates %d/op (%d B/op), want 0", a, res.AllocedBytesPerOp())
	}
}

// TestWarpSlabPoolRecycles pins the per-device warp free list: a slab
// returned to the pool comes back with the same backing array, recycled
// warps are architecturally fresh (zero registers, empty-but-capacitated
// divergence stack), and undersized slabs are replaced rather than sliced
// beyond capacity.
func TestWarpSlabPoolRecycles(t *testing.T) {
	var pool warpSlabPool
	ec := &execContext{warpSlab: pool.get()} // empty pool → nil slab is valid
	first := ec.warpsFor(4)
	if len(first) != 4 {
		t.Fatalf("warpsFor(4) returned %d warps", len(first))
	}
	// Dirty a warp the way a kernel would: registers, mask, divergence.
	first[2].w.regs[3][1] = 0xdeadbeef
	first[2].w.active[0] = true
	first[2].w.stack = append(first[2].w.stack, divFrame{rejoin: 7})
	first[2].done = true
	stackCap := cap(first[2].w.stack)

	pool.put(ec.warpSlab)
	ec2 := &execContext{warpSlab: pool.get()}
	reused := ec2.warpsFor(3)
	if &reused[0] != &first[0] {
		t.Fatalf("pool.get returned a different backing array")
	}
	if w := &reused[2]; w.w.regs[3][1] != 0 || w.w.active[0] || w.done || len(w.w.stack) != 0 {
		t.Errorf("recycled warp not architecturally fresh: regs=%#x active=%v done=%v stack=%d",
			w.w.regs[3][1], w.w.active[0], w.done, len(w.w.stack))
	}
	if cap(reused[2].w.stack) != stackCap {
		t.Errorf("divergence stack capacity not preserved: got %d, want %d", cap(reused[2].w.stack), stackCap)
	}
	if grown := ec2.warpsFor(16); len(grown) != 16 {
		t.Errorf("warpsFor(16) on a 4-cap slab returned %d warps", len(grown))
	}
}
