package gpu

import "sync"

// Engine selects the shader execution engine. All three engines implement
// the same architectural contract — identical guest memory effects and
// bit-identical statistics counters (the golden-stats files are the spec)
// — and differ only in host-side speed (DESIGN.md §9).
type Engine int

const (
	// EngineWarp (the default) compiles the straight-line body of each
	// clause into one fused closure that executes a whole warp per call
	// over SoA register files, with per-lane fallback to the walker /
	// interpreter for memory system corner cases and rare operand shapes.
	EngineWarp Engine = iota
	// EngineJIT specialises each instruction into a per-lane closure with
	// pre-resolved operand accessors (the paper's future-work JIT mode).
	EngineJIT
	// EngineInterp is the reference interpreter: a full opcode switch with
	// operand decoding on every access.
	EngineInterp
)

func (e Engine) String() string {
	switch e {
	case EngineWarp:
		return "warp"
	case EngineJIT:
		return "jit"
	case EngineInterp:
		return "interp"
	}
	return "unknown"
}

// ProgramCache is a content-keyed cache of decoded (and engine-compiled)
// shader programs. A Device owns a private cache by default; sessions
// forked from one snapshot share a cache (Config.Programs), so a warm pool
// decodes and compiles each kernel binary exactly once.
//
// Entries are immutable once published except for the lazily compiled
// engine artifacts (Program.jit / Program.warp), which are only written
// under mu and never replaced once set; readers obtain the program through
// the mutex before their exec goroutines start, which publishes the
// artifact pointers race-free.
type ProgramCache struct {
	mu sync.Mutex
	m  map[uint64]*Program
}

// NewProgramCache returns an empty program cache.
func NewProgramCache() *ProgramCache {
	return &ProgramCache{m: make(map[uint64]*Program)}
}

// compile ensures the artifact for the chosen engine exists. Callers must
// hold the owning ProgramCache's mutex when the program is shared.
func (p *Program) compile(eng Engine) {
	switch eng {
	case EngineJIT:
		if p.jit == nil {
			p.jit = jitCompile(p)
		}
	case EngineWarp:
		if p.warp == nil {
			p.warp = warpCompile(p)
		}
	}
}
