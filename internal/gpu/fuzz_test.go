package gpu_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"mobilesim/internal/gpu"
)

// The paper validates its shader-core model against Arm's reference
// simulator with "fuzzing techniques for rigorous instruction testing,
// covering an extensive range of inputs" (§V-A2). These tests are that
// campaign: for every ALU opcode, random operands are pushed through a
// one-instruction shader program and checked against an independently
// written Go reference.

type refFn func(a, b uint32) uint64

func f32ref(f func(a, b float32) float32) refFn {
	return func(a, b uint32) uint64 {
		return uint64(math.Float32bits(f(math.Float32frombits(a), math.Float32frombits(b))))
	}
}

func i32ref(f func(a, b int32) int32) refFn {
	return func(a, b uint32) uint64 { return uint64(uint32(f(int32(a), int32(b)))) }
}

func boolref(f func(a, b uint32) bool) refFn {
	return func(a, b uint32) uint64 {
		if f(a, b) {
			return 1
		}
		return 0
	}
}

var aluRefs = map[gpu.Opcode]refFn{
	gpu.OpIADD: i32ref(func(a, b int32) int32 { return a + b }),
	gpu.OpISUB: i32ref(func(a, b int32) int32 { return a - b }),
	gpu.OpIMUL: i32ref(func(a, b int32) int32 { return a * b }),
	gpu.OpIDIV: i32ref(func(a, b int32) int32 {
		if b == 0 {
			return 0
		}
		if a == math.MinInt32 && b == -1 {
			return a
		}
		return a / b
	}),
	gpu.OpIMOD: i32ref(func(a, b int32) int32 {
		if b == 0 || (a == math.MinInt32 && b == -1) {
			return 0
		}
		return a % b
	}),
	gpu.OpSHL: func(a, b uint32) uint64 { return uint64(a << (b & 31)) },
	gpu.OpSHR: func(a, b uint32) uint64 { return uint64(a >> (b & 31)) },
	gpu.OpSAR: i32ref(func(a, b int32) int32 { return a >> (uint32(b) & 31) }),
	gpu.OpIMIN: i32ref(func(a, b int32) int32 {
		if a < b {
			return a
		}
		return b
	}),
	gpu.OpIMAX: i32ref(func(a, b int32) int32 {
		if a > b {
			return a
		}
		return b
	}),
	gpu.OpFADD: f32ref(func(a, b float32) float32 { return a + b }),
	gpu.OpFSUB: f32ref(func(a, b float32) float32 { return a - b }),
	gpu.OpFMUL: f32ref(func(a, b float32) float32 { return a * b }),
	gpu.OpFDIV: f32ref(func(a, b float32) float32 { return a / b }),
	gpu.OpFMIN: f32ref(func(a, b float32) float32 {
		return float32(math.Min(float64(a), float64(b)))
	}),
	gpu.OpFMAX: f32ref(func(a, b float32) float32 {
		return float32(math.Max(float64(a), float64(b)))
	}),
	gpu.OpICMPEQ: boolref(func(a, b uint32) bool { return a == b }),
	gpu.OpICMPNE: boolref(func(a, b uint32) bool { return a != b }),
	gpu.OpICMPLT: boolref(func(a, b uint32) bool { return int32(a) < int32(b) }),
	gpu.OpICMPLE: boolref(func(a, b uint32) bool { return int32(a) <= int32(b) }),
	gpu.OpUCMPLT: boolref(func(a, b uint32) bool { return a < b }),
	gpu.OpFCMPEQ: boolref(func(a, b uint32) bool {
		return math.Float32frombits(a) == math.Float32frombits(b)
	}),
	gpu.OpFCMPLT: boolref(func(a, b uint32) bool {
		return math.Float32frombits(a) < math.Float32frombits(b)
	}),
	gpu.OpFCMPLE: boolref(func(a, b uint32) bool {
		return math.Float32frombits(a) <= math.Float32frombits(b)
	}),
	gpu.OpAND: func(a, b uint32) uint64 { return uint64(a) & uint64(b) },
	gpu.OpOR:  func(a, b uint32) uint64 { return uint64(a) | uint64(b) },
	gpu.OpXOR: func(a, b uint32) uint64 { return uint64(a) ^ uint64(b) },
}

// aluProgram builds: load a, load b, OP, store result.
// Uniforms: c0 = &a, c1 = &b, c2 = &out. One thread.
func aluProgram(op gpu.Opcode) *gpu.Program {
	return &gpu.Program{
		RegCount: 3,
		Uniforms: 3,
		Clauses: []gpu.Clause{{Instrs: []gpu.Instr{
			{Op: gpu.OpLDG, Dst: gpu.R(0), A: gpu.C(0)},
			{Op: gpu.OpLDG, Dst: gpu.R(1), A: gpu.C(1)},
			{Op: op, Dst: gpu.R(2), A: gpu.R(0), B: gpu.R(1)},
			{Op: gpu.OpSTG64, A: gpu.C(2), B: gpu.R(2)},
			{Op: gpu.OpRET},
		}}},
	}
}

func TestFuzzALUOpsAgainstReference(t *testing.T) {
	r := newRig(t, gpu.DefaultConfig())
	aBuf, bBuf, outBuf := r.allocBuf(8), r.allocBuf(8), r.allocBuf(8)

	// Interesting corner values plus random ones.
	corners := []uint32{0, 1, 0xFFFFFFFF, 0x80000000, 0x7FFFFFFF,
		math.Float32bits(0), math.Float32bits(1), math.Float32bits(-1),
		math.Float32bits(float32(math.Inf(1))),
		math.Float32bits(1e-38), math.Float32bits(3.5)}
	rnd := rand.New(rand.NewSource(42))

	for op, ref := range aluRefs {
		progVA, progSize := r.loadProgram(aluProgram(op))
		check := func(a, b uint32) {
			if err := r.bus.Write(aBuf, 4, uint64(a)); err != nil {
				t.Fatal(err)
			}
			if err := r.bus.Write(bBuf, 4, uint64(b)); err != nil {
				t.Fatal(err)
			}
			raw := r.submit(&gpu.JobDescriptor{
				JobType:    gpu.JobTypeCompute,
				GlobalSize: [3]uint32{1, 1, 1},
				LocalSize:  [3]uint32{1, 1, 1},
				ShaderVA:   progVA,
				ShaderSize: progSize,
			}, []uint64{aBuf, bBuf, outBuf})
			if raw&gpu.IRQJobDone == 0 {
				t.Fatalf("%v: fault rawstat=%#x", op, raw)
			}
			got, err := r.bus.Read(outBuf, 8)
			if err != nil {
				t.Fatal(err)
			}
			want := ref(a, b)
			// NaN payloads may differ legitimately for float ops.
			if got != want && !(bothNaN32(uint32(got), uint32(want))) {
				t.Errorf("%v(%#x, %#x) = %#x, want %#x", op, a, b, got, want)
			}
		}
		for _, a := range corners {
			for _, b := range corners {
				check(a, b)
			}
		}
		for i := 0; i < 30; i++ {
			check(rnd.Uint32(), rnd.Uint32())
		}
	}
}

func bothNaN32(a, b uint32) bool {
	fa, fb := math.Float32frombits(a), math.Float32frombits(b)
	return fa != fa && fb != fb
}

func TestInstructionTraceObservable(t *testing.T) {
	r := newRig(t, gpu.DefaultConfig())
	var trace bytes.Buffer
	r.dev.SetTrace(&trace)

	const n = 8
	a, b, out := r.allocBuf(4*n), r.allocBuf(4*n), r.allocBuf(4*n)
	r.writeInts(a, make([]int32, n))
	r.writeInts(b, make([]int32, n))
	progVA, progSize := r.loadProgram(vecAddProgram())
	raw := r.submit(&gpu.JobDescriptor{
		JobType:    gpu.JobTypeCompute,
		GlobalSize: [3]uint32{n, 1, 1},
		LocalSize:  [3]uint32{n, 1, 1},
		ShaderVA:   progVA,
		ShaderSize: progSize,
	}, []uint64{a, b, out})
	if raw&gpu.IRQJobDone == 0 {
		t.Fatalf("rawstat=%#x", raw)
	}
	out1 := trace.String()
	if !strings.Contains(out1, "clause=0") {
		t.Error("trace missing clause records")
	}
	if !strings.Contains(out1, "ldg") || !strings.Contains(out1, "iadd") {
		t.Errorf("trace missing instruction effects:\n%s", firstLines(out1, 10))
	}
	// Each executed lane-instruction appears: 8 threads x 8 effectful
	// instructions (6 ALU/addr + ldg x2 ... at least 8 lines/thread).
	if lines := strings.Count(out1, "\n"); lines < 8*8 {
		t.Errorf("trace has only %d lines", lines)
	}
}

func firstLines(s string, n int) string {
	parts := strings.SplitN(s, "\n", n+1)
	if len(parts) > n {
		parts = parts[:n]
	}
	return strings.Join(parts, "\n")
}
