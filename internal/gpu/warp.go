package gpu

import (
	"mobilesim/internal/mem"
	"mobilesim/internal/stats"
)

// Warp-batched shader execution — the third engine tier (DESIGN.md §9).
// Where the closure JIT still dispatches one closure per instruction per
// lane, this engine fuses the whole straight-line body of a clause into a
// single closure that executes all WarpSize lanes per call over the SoA
// register files, so per-instruction dispatch and mask checks amortise
// across the warp. Hot operand shapes (register/register, register/
// warp-uniform) compile to dedicated allocation-free variants; everything
// else — lane-varying specials, accumulator forms with exotic operands,
// unknown opcodes — falls back to a per-lane loop around the existing
// closure-JIT accessors or the interpreter, which keeps the counter and
// fault semantics bit-identical by construction.
//
// Counter contract: the interpreter bumps the class counter once per
// instruction (scaled by the clause's active-lane count) before touching
// lanes, and operand counters per lane access. ALU instructions cannot
// fault, so their per-lane operand bumps are hoisted to one bulk add per
// warp — same totals at every observable point. Memory instructions CAN
// fault and abort the warp mid-instruction, so all their counters stay
// per-lane, interleaved with the walker calls exactly as the interpreter
// interleaves them.

// warpFn executes a fused straight-line clause body for one whole warp.
// act is the clause's active-lane count — constant through the body, since
// masks only change at clause terminals and lanes only exit at RET.
type warpFn func(e *execContext, w *warp, act uint64) error

// warpClause is one compiled clause: the fused body of its straight-line
// prefix plus the clause-terminal control-flow instruction (nil =
// fallthrough). Slots after the first terminal are dead in every engine.
type warpClause struct {
	body warpFn
	term *Instr
}

// warpProgram mirrors Program.Clauses with one warpClause each.
type warpProgram struct {
	clauses []warpClause
}

// warpCompile fuses every clause of a program.
func warpCompile(p *Program) *warpProgram {
	wp := &warpProgram{clauses: make([]warpClause, len(p.Clauses))}
	for ci := range p.Clauses {
		c := &p.Clauses[ci]
		wc := &wp.clauses[ci]
		var ops []warpFn
		for ii := range c.Instrs {
			in := &c.Instrs[ii]
			if IsClauseTerminal(in.Op) {
				wc.term = in
				break
			}
			ops = append(ops, compileWarpOp(in, p))
		}
		wc.body = fuseWarpOps(ops)
	}
	return wp
}

// fuseWarpOps left-folds per-instruction warp closures into one body.
func fuseWarpOps(ops []warpFn) warpFn {
	switch len(ops) {
	case 0:
		return nil
	case 1:
		return ops[0]
	}
	f := ops[0]
	for _, op := range ops[1:] {
		prev, next := f, op
		f = func(e *execContext, w *warp, act uint64) error {
			if err := prev(e, w, act); err != nil {
				return err
			}
			return next(e, w, act)
		}
	}
	return f
}

// compileWarpOp compiles one non-terminal instruction into a warp closure.
func compileWarpOp(in *Instr, p *Program) warpFn {
	switch Classify(in.Op) {
	case ClassNop:
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.NopInstr += act
			return nil
		}
	case ClassLS:
		return compileWarpMem(in, p)
	}
	if bf, ok := binFns[in.Op]; ok {
		return compileWarpBin(bf, in, p)
	}
	if uf, ok := unFns[in.Op]; ok {
		return compileWarpUn(uf, in, p)
	}
	switch in.Op {
	case OpFMA:
		return compileWarpAcc(in, p, func(acc, a, b uint64) uint64 {
			return fbits(f32(acc) + f32(a)*f32(b))
		})
	case OpSEL:
		return compileWarpAcc(in, p, func(acc, a, b uint64) uint64 {
			if acc != 0 {
				return a
			}
			return b
		})
	}
	// Unknown opcode: defer to the interpreter for the exact error.
	return warpLaneInterp(in)
}

// --- Operand shapes ---------------------------------------------------------

// bumpFn adds n operand accesses to a stats counter.
type bumpFn func(gs *stats.GPUStats, n uint64)

func bumpNone(*stats.GPUStats, uint64)           {}
func bumpGRFRead(gs *stats.GPUStats, n uint64)   { gs.GRFRead += n }
func bumpGRFWrite(gs *stats.GPUStats, n uint64)  { gs.GRFWrite += n }
func bumpTempAcc(gs *stats.GPUStats, n uint64)   { gs.TempAcc += n }
func bumpConstRead(gs *stats.GPUStats, n uint64) { gs.ConstRead += n }
func bumpROMRead(gs *stats.GPUStats, n uint64)   { gs.ROMRead += n }

// vecSrc is a lane-varying register-file operand resolved to an SoA row.
type vecSrc struct {
	idx  int
	temp bool
	bump bumpFn
}

func (v vecSrc) rowOf(w *warp) *[WarpSize]uint64 {
	if v.temp {
		return &w.temps[v.idx]
	}
	return &w.regs[v.idx]
}

// compileVecSrc resolves a GRF/clause-temp source operand.
func compileVecSrc(o uint8) (vecSrc, bool) {
	kind, idx := OperKind(o)
	switch kind {
	case OperGRF:
		return vecSrc{idx: int(idx), bump: bumpGRFRead}, true
	case OperTemp:
		return vecSrc{idx: int(idx), temp: true, bump: bumpTempAcc}, true
	}
	return vecSrc{}, false
}

// compileVecDst resolves a GRF/clause-temp destination operand.
func compileVecDst(o uint8) (vecSrc, bool) {
	kind, idx := OperKind(o)
	switch kind {
	case OperGRF:
		return vecSrc{idx: int(idx), bump: bumpGRFWrite}, true
	case OperTemp:
		return vecSrc{idx: int(idx), temp: true, bump: bumpTempAcc}, true
	}
	return vecSrc{}, false
}

// uniSrc is a warp-uniform source: the same value for every lane of a
// clause (immediates, ROM, uniforms, workgroup-level specials). It is read
// once per warp, but its operand counter still counts one access per
// active lane, as the per-lane engines do.
type uniSrc struct {
	val  func(e *execContext) uint64
	bump bumpFn
}

func compileUniSrc(o uint8, imm uint32, p *Program) (uniSrc, bool) {
	kind, idx := OperKind(o)
	switch kind {
	case OperGRF, OperTemp:
		return uniSrc{}, false
	case OperUniform:
		i := int(idx)
		return uniSrc{val: func(e *execContext) uint64 {
			if i < len(e.uniforms) {
				return e.uniforms[i]
			}
			return 0
		}, bump: bumpConstRead}, true
	}
	switch idx {
	case SpecImm:
		v := uint64(imm)
		return uniSrc{val: func(*execContext) uint64 { return v }, bump: bumpROMRead}, true
	case SpecROM:
		var v uint64
		if int(imm) < len(p.ROM) {
			v = p.ROM[imm]
		}
		return uniSrc{val: func(*execContext) uint64 { return v }, bump: bumpROMRead}, true
	case SpecZero:
		return uniSrc{val: func(*execContext) uint64 { return 0 }, bump: bumpNone}, true
	case SpecGIDX, SpecGIDY, SpecGIDZ, SpecLIDX, SpecLIDY, SpecLIDZ:
		// Lane-varying specials: not warp-uniform.
		return uniSrc{}, false
	case SpecWGIDX, SpecWGIDY, SpecWGIDZ:
		d := int(idx - SpecWGIDX)
		return uniSrc{val: func(e *execContext) uint64 { return uint64(e.wgid[d]) }, bump: bumpNone}, true
	case SpecGSZX, SpecGSZY, SpecGSZZ:
		d := int(idx - SpecGSZX)
		return uniSrc{val: func(e *execContext) uint64 { return uint64(e.gsz[d]) }, bump: bumpNone}, true
	case SpecLSZX, SpecLSZY, SpecLSZZ:
		d := int(idx - SpecLSZX)
		return uniSrc{val: func(e *execContext) uint64 { return uint64(e.lsz[d]) }, bump: bumpNone}, true
	}
	// Undefined dense specials read as zero with no counter, as read() does.
	return uniSrc{val: func(*execContext) uint64 { return 0 }, bump: bumpNone}, true
}

// --- ALU --------------------------------------------------------------------

func compileWarpBin(f func(a, b uint64) uint64, in *Instr, p *Program) warpFn {
	d, dok := compileVecDst(in.Dst)
	if !dok {
		return warpLaneInterp(in)
	}
	av, aok := compileVecSrc(in.A)
	bv, bok := compileVecSrc(in.B)
	switch {
	case aok && bok:
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.ArithInstr += act
			av.bump(e.gs, act)
			bv.bump(e.gs, act)
			d.bump(e.gs, act)
			ar, br, dr := av.rowOf(w), bv.rowOf(w), d.rowOf(w)
			if int(act) == w.lanes {
				for l := 0; l < w.lanes; l++ {
					dr[l] = f(ar[l], br[l])
				}
				return nil
			}
			for l := 0; l < w.lanes; l++ {
				if w.active[l] && !w.exited[l] {
					dr[l] = f(ar[l], br[l])
				}
			}
			return nil
		}
	case aok:
		bu, ok := compileUniSrc(in.B, in.Imm, p)
		if !ok {
			return warpLaneInterp(in)
		}
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.ArithInstr += act
			av.bump(e.gs, act)
			bu.bump(e.gs, act)
			d.bump(e.gs, act)
			b := bu.val(e)
			ar, dr := av.rowOf(w), d.rowOf(w)
			if int(act) == w.lanes {
				for l := 0; l < w.lanes; l++ {
					dr[l] = f(ar[l], b)
				}
				return nil
			}
			for l := 0; l < w.lanes; l++ {
				if w.active[l] && !w.exited[l] {
					dr[l] = f(ar[l], b)
				}
			}
			return nil
		}
	case bok:
		au, ok := compileUniSrc(in.A, in.Imm, p)
		if !ok {
			return warpLaneInterp(in)
		}
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.ArithInstr += act
			au.bump(e.gs, act)
			bv.bump(e.gs, act)
			d.bump(e.gs, act)
			a := au.val(e)
			br, dr := bv.rowOf(w), d.rowOf(w)
			if int(act) == w.lanes {
				for l := 0; l < w.lanes; l++ {
					dr[l] = f(a, br[l])
				}
				return nil
			}
			for l := 0; l < w.lanes; l++ {
				if w.active[l] && !w.exited[l] {
					dr[l] = f(a, br[l])
				}
			}
			return nil
		}
	default:
		au, okA := compileUniSrc(in.A, in.Imm, p)
		bu, okB := compileUniSrc(in.B, in.Imm, p)
		if !okA || !okB {
			return warpLaneInterp(in)
		}
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.ArithInstr += act
			au.bump(e.gs, act)
			bu.bump(e.gs, act)
			d.bump(e.gs, act)
			r := f(au.val(e), bu.val(e))
			dr := d.rowOf(w)
			for l := 0; l < w.lanes; l++ {
				if w.active[l] && !w.exited[l] {
					dr[l] = r
				}
			}
			return nil
		}
	}
}

func compileWarpUn(f func(a uint64) uint64, in *Instr, p *Program) warpFn {
	d, dok := compileVecDst(in.Dst)
	if !dok {
		return warpLaneInterp(in)
	}
	if av, ok := compileVecSrc(in.A); ok {
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.ArithInstr += act
			av.bump(e.gs, act)
			d.bump(e.gs, act)
			ar, dr := av.rowOf(w), d.rowOf(w)
			if int(act) == w.lanes {
				for l := 0; l < w.lanes; l++ {
					dr[l] = f(ar[l])
				}
				return nil
			}
			for l := 0; l < w.lanes; l++ {
				if w.active[l] && !w.exited[l] {
					dr[l] = f(ar[l])
				}
			}
			return nil
		}
	}
	if au, ok := compileUniSrc(in.A, in.Imm, p); ok {
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.ArithInstr += act
			au.bump(e.gs, act)
			d.bump(e.gs, act)
			r := f(au.val(e))
			dr := d.rowOf(w)
			for l := 0; l < w.lanes; l++ {
				if w.active[l] && !w.exited[l] {
					dr[l] = r
				}
			}
			return nil
		}
	}
	return warpLaneInterp(in)
}

// compileWarpAcc handles the accumulator forms (FMA, SEL): the destination
// is read as a third source before being written, and the interpreter
// counts that read with the destination operand's read counter.
func compileWarpAcc(in *Instr, p *Program, f func(acc, a, b uint64) uint64) warpFn {
	d, dok := compileVecDst(in.Dst)
	acc, aok2 := compileVecSrc(in.Dst)
	av, aok := compileVecSrc(in.A)
	bv, bok := compileVecSrc(in.B)
	if !dok || !aok2 {
		return warpLaneInterp(in)
	}
	au, auok := compileUniSrc(in.A, in.Imm, p)
	bu, buok := compileUniSrc(in.B, in.Imm, p)
	if (!aok && !auok) || (!bok && !buok) {
		return warpLaneInterp(in)
	}
	return func(e *execContext, w *warp, act uint64) error {
		e.gs.ArithInstr += act
		if aok {
			av.bump(e.gs, act)
		} else {
			au.bump(e.gs, act)
		}
		if bok {
			bv.bump(e.gs, act)
		} else {
			bu.bump(e.gs, act)
		}
		acc.bump(e.gs, act)
		d.bump(e.gs, act)
		var aRow, bRow *[WarpSize]uint64
		var aVal, bVal uint64
		if aok {
			aRow = av.rowOf(w)
		} else {
			aVal = au.val(e)
		}
		if bok {
			bRow = bv.rowOf(w)
		} else {
			bVal = bu.val(e)
		}
		dr := d.rowOf(w)
		for l := 0; l < w.lanes; l++ {
			if !w.active[l] || w.exited[l] {
				continue
			}
			a, b := aVal, bVal
			if aRow != nil {
				a = aRow[l]
			}
			if bRow != nil {
				b = bRow[l]
			}
			dr[l] = f(dr[l], a, b)
		}
		return nil
	}
}

// --- Memory -----------------------------------------------------------------

// compileWarpMem fuses a load/store into a per-lane loop over the walker
// fast path. Counters and the walker call stay per-lane and in interpreter
// order, so a faulting lane aborts with identical totals; the walker
// itself falls back internally for MMIO, page-crossing and faulting
// accesses, which is what keeps TLB hit/walk counts bit-identical.
func compileWarpMem(in *Instr, p *Program) warpFn {
	imm := uint64(int64(int32(in.Imm)))
	switch in.Op {
	case OpLDG, OpLDG64, OpLDGB:
		size := 4
		switch in.Op {
		case OpLDG64:
			size = 8
		case OpLDGB:
			size = 1
		}
		av, aok := compileVecSrc(in.A)
		d, dok := compileVecDst(in.Dst)
		if !aok || !dok {
			return warpWrapJit(compileMem(in, p), ClassLS)
		}
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.LSInstr += act
			ar, dr := av.rowOf(w), d.rowOf(w)
			for l := 0; l < w.lanes; l++ {
				if !w.active[l] || w.exited[l] {
					continue
				}
				av.bump(e.gs, 1)
				e.gs.GlobalLS++
				e.gs.MainMemAcc++
				v, err := e.walker.Load(ar[l]+imm, size, mem.Read)
				if err != nil {
					return err
				}
				d.bump(e.gs, 1)
				dr[l] = v
			}
			return nil
		}

	case OpSTG, OpSTG64, OpSTGB:
		size := 4
		switch in.Op {
		case OpSTG64:
			size = 8
		case OpSTGB:
			size = 1
		}
		av, aok := compileVecSrc(in.A)
		bv, bok := compileVecSrc(in.B)
		if !aok || !bok {
			return warpWrapJit(compileMem(in, p), ClassLS)
		}
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.LSInstr += act
			ar, br := av.rowOf(w), bv.rowOf(w)
			for l := 0; l < w.lanes; l++ {
				if !w.active[l] || w.exited[l] {
					continue
				}
				av.bump(e.gs, 1)
				bv.bump(e.gs, 1)
				e.gs.GlobalLS++
				e.gs.MainMemAcc++
				if err := e.walker.Store(ar[l]+imm, size, br[l]); err != nil {
					return err
				}
			}
			return nil
		}

	case OpLDL:
		av, aok := compileVecSrc(in.A)
		d, dok := compileVecDst(in.Dst)
		if !aok || !dok {
			return warpWrapJit(compileMem(in, p), ClassLS)
		}
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.LSInstr += act
			ar, dr := av.rowOf(w), d.rowOf(w)
			for l := 0; l < w.lanes; l++ {
				if !w.active[l] || w.exited[l] {
					continue
				}
				av.bump(e.gs, 1)
				e.gs.LocalLS++
				e.gs.LocalAcc++
				v, err := e.local.load(ar[l] + imm)
				if err != nil {
					return err
				}
				d.bump(e.gs, 1)
				dr[l] = uint64(v)
			}
			return nil
		}

	case OpSTL:
		av, aok := compileVecSrc(in.A)
		bv, bok := compileVecSrc(in.B)
		if !aok || !bok {
			return warpWrapJit(compileMem(in, p), ClassLS)
		}
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.LSInstr += act
			ar, br := av.rowOf(w), bv.rowOf(w)
			for l := 0; l < w.lanes; l++ {
				if !w.active[l] || w.exited[l] {
					continue
				}
				av.bump(e.gs, 1)
				bv.bump(e.gs, 1)
				e.gs.LocalLS++
				e.gs.LocalAcc++
				if err := e.local.store(ar[l]+imm, uint32(br[l])); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return warpLaneInterp(in)
}

// --- Fallbacks --------------------------------------------------------------

// warpWrapJit lifts a per-lane closure-JIT op to a warp closure.
func warpWrapJit(op jitOp, cls Class) warpFn {
	if op == nil {
		return nil
	}
	return func(e *execContext, w *warp, act uint64) error {
		switch cls {
		case ClassArith:
			e.gs.ArithInstr += act
		case ClassLS:
			e.gs.LSInstr += act
		case ClassNop:
			e.gs.NopInstr += act
		}
		for l := 0; l < w.lanes; l++ {
			if w.active[l] && !w.exited[l] {
				if err := op(e, w, l); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// warpLaneInterp lifts the interpreter to a warp closure for shapes the
// fused variants do not specialise, preserving errors and counters.
func warpLaneInterp(in *Instr) warpFn {
	cls := Classify(in.Op)
	return func(e *execContext, w *warp, act uint64) error {
		switch cls {
		case ClassArith:
			e.gs.ArithInstr += act
		case ClassLS:
			e.gs.LSInstr += act
		case ClassNop:
			e.gs.NopInstr += act
		}
		for l := 0; l < w.lanes; l++ {
			if w.active[l] && !w.exited[l] {
				if err := e.execLane(w, l, in); err != nil {
					return err
				}
			}
		}
		return nil
	}
}
