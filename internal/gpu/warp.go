package gpu

import (
	"math"

	"mobilesim/internal/mem"
	"mobilesim/internal/stats"
)

// Warp-batched shader execution — the third engine tier (DESIGN.md §9).
// Where the closure JIT still dispatches one closure per instruction per
// lane, this engine fuses the whole straight-line body of a clause into a
// single closure that executes all WarpSize lanes per call over the SoA
// register files, so per-instruction dispatch and mask checks amortise
// across the warp. Hot operand shapes (register/register, register/
// warp-uniform) compile to dedicated allocation-free variants; everything
// else — lane-varying specials, accumulator forms with exotic operands,
// unknown opcodes — falls back to a per-lane loop around the existing
// closure-JIT accessors or the interpreter, which keeps the counter and
// fault semantics bit-identical by construction.
//
// Counter contract: the interpreter bumps the class counter once per
// instruction (scaled by the clause's active-lane count) before touching
// lanes, and operand counters per lane access. ALU instructions cannot
// fault, so their per-lane operand bumps are hoisted to one bulk add per
// warp — same totals at every observable point. Memory instructions CAN
// fault and abort the warp mid-instruction, so all their counters stay
// per-lane, interleaved with the walker calls exactly as the interpreter
// interleaves them.

// warpFn executes a fused straight-line clause body for one whole warp.
// act is the clause's active-lane count — constant through the body, since
// masks only change at clause terminals and lanes only exit at RET.
type warpFn func(e *execContext, w *warp, act uint64) error

// warpClause is one compiled clause: the fused body of its straight-line
// prefix plus the clause-terminal control-flow instruction (nil =
// fallthrough). Slots after the first terminal are dead in every engine.
type warpClause struct {
	body warpFn
	term *Instr
}

// warpProgram mirrors Program.Clauses with one warpClause each, plus the
// superclause chains built over them (super[ci] is non-nil exactly when a
// fused multi-clause chain is headed at clause ci).
type warpProgram struct {
	clauses []warpClause
	super   []*superClause
}

// superSeg is one original clause inside a fused superclause. The per-
// clause statistics the interpreter would bump on clause entry (clause
// count, size histogram, issue-slot padding NOPs) are precomputed here so
// the fused body still advances them at every original clause boundary.
type superSeg struct {
	body    warpFn
	histIdx int
	padNops uint64
	// brCF marks a segment whose original terminal was an unconditional
	// BR folded into the chain: the jump itself disappears, but the
	// interpreter counts it as a control-flow instruction, so the fused
	// runner bumps CFInstr after the segment body exactly as execTerminal
	// would have.
	brCF bool
}

// superClause is a chain of clauses fused across clause boundaries
// (DESIGN.md §9): each non-final clause ends in a fallthrough or an
// unconditional BR, and each non-head clause has exactly one control-flow
// predecessor and is never a branch, reconvergence or barrier-resume
// target, so the whole chain executes with one closure dispatch and one
// terminal round-trip. The active mask is provably constant through the
// chain — masks only change at BRC/RET terminals, which never appear
// mid-chain.
type superClause struct {
	segs []superSeg // ≥ 2 segments
	term *Instr     // terminal of the final clause; nil = fallthrough
	next int        // final clause index + 1 (the terminal's "next")
}

// warpCompile fuses every clause of a program, then chains fusable
// clause sequences into superclauses.
func warpCompile(p *Program) *warpProgram {
	wp := &warpProgram{clauses: make([]warpClause, len(p.Clauses))}
	for ci := range p.Clauses {
		c := &p.Clauses[ci]
		wc := &wp.clauses[ci]
		var ops []warpFn
		var sts []*opStats
		for ii := range c.Instrs {
			in := &c.Instrs[ii]
			if IsClauseTerminal(in.Op) {
				wc.term = in
				break
			}
			fn, st := compileWarpOp(in, p)
			ops = append(ops, fn)
			sts = append(sts, st)
		}
		wc.body = assembleBody(ops, sts)
	}
	wp.super = buildSuperClauses(p, wp)
	return wp
}

// buildSuperClauses computes the fusion chains. A clause is an *entry* if
// control flow can land on it from anywhere other than a unique
// fallthrough/BR predecessor: clause 0, BRC targets, BRC fallthrough
// successors, BRC reconvergence points (the runWarp loop re-enters there
// via the divergence stack), barrier successors (warps resume there after
// the rendezvous), and RET successors (conservatively — the zero-active
// stepping walk parks there). Entries must stay independently executable
// chain heads. A clause B fuses into its predecessor's chain iff B is not
// an entry and has exactly one fallthrough/BR predecessor.
func buildSuperClauses(p *Program, wp *warpProgram) []*superClause {
	n := len(p.Clauses)
	if n < 2 {
		return nil
	}
	entry := make([]bool, n)
	entry[0] = true
	markEntry := func(i int) {
		if i >= 0 && i < n {
			entry[i] = true
		}
	}
	// succ[ci] is ci's fusable successor (-1 if its terminal ends the
	// straight-line region).
	succ := make([]int, n)
	for ci := range p.Clauses {
		succ[ci] = -1
		t := wp.clauses[ci].term
		switch {
		case t == nil:
			if ci+1 < n {
				succ[ci] = ci + 1
			}
		case t.Op == OpBR:
			succ[ci] = t.BranchTarget() // target range checked by ParseBinary
		case t.Op == OpBRC:
			markEntry(t.BranchTarget())
			markEntry(t.Reconverge())
			markEntry(ci + 1)
		case t.Op == OpBARRIER:
			markEntry(ci + 1)
		case t.Op == OpRET:
			markEntry(ci + 1)
		}
	}
	preds := make([]int, n)
	for ci := range p.Clauses {
		if s := succ[ci]; s >= 0 {
			preds[s]++
		}
	}
	absorbable := func(i int) bool { return !entry[i] && preds[i] == 1 }

	super := make([]*superClause, n)
	inChain := make([]bool, n)
	any := false
	for head := 0; head < n; head++ {
		if absorbable(head) {
			// Reached (if ever) only through its unique predecessor's
			// chain; never a chain head of its own.
			continue
		}
		chain := []int{head}
		for cur := head; ; {
			s := succ[cur]
			// inChain doubles as the cycle guard: an unreachable BR loop
			// of absorbable clauses terminates the walk instead of
			// spinning (head itself is !absorbable, so s != head).
			if s < 0 || !absorbable(s) || inChain[s] {
				break
			}
			inChain[s] = true
			chain = append(chain, s)
			cur = s
		}
		if len(chain) < 2 {
			continue
		}
		sc := &superClause{segs: make([]superSeg, len(chain))}
		for i, ci := range chain {
			c := &p.Clauses[ci]
			slots := c.Slots()
			if slots > stats.MaxClauseSlots {
				slots = stats.MaxClauseSlots
			}
			sc.segs[i] = superSeg{
				body:    wp.clauses[ci].body,
				histIdx: slots,
				padNops: uint64(c.Tuples()*2 - c.Slots()),
				brCF:    i < len(chain)-1 && wp.clauses[ci].term != nil,
			}
		}
		last := chain[len(chain)-1]
		sc.term = wp.clauses[last].term
		sc.next = last + 1
		super[head] = sc
		any = true
	}
	if !any {
		return nil
	}
	return super
}

// opStats is the compile-time aggregate of the statistics a run of
// fault-free instructions bumps per active lane: the instruction-class
// counters plus the operand-access breakdown. Because none of the ops in
// the run can fault or abort, the per-op bumps may be summed at compile
// time and applied in one step at the head of the run — totals at every
// observable point (fault aborts, soft-stops, completion) are unchanged,
// which is all the exact-counter contract (DESIGN.md §9) requires.
type opStats struct {
	arith, nop                                     uint64
	grfRead, grfWrite, tempAcc, constRead, romRead uint64
}

//simlint:commit -- batched per-warp commit of pre-aggregated op counters
func (s *opStats) apply(gs *stats.GPUStats, act uint64) {
	gs.ArithInstr += s.arith * act
	gs.NopInstr += s.nop * act
	gs.GRFRead += s.grfRead * act
	gs.GRFWrite += s.grfWrite * act
	gs.TempAcc += s.tempAcc * act
	gs.ConstRead += s.constRead * act
	gs.ROMRead += s.romRead * act
}

func (s *opStats) merge(o *opStats) {
	s.arith += o.arith
	s.nop += o.nop
	s.grfRead += o.grfRead
	s.grfWrite += o.grfWrite
	s.tempAcc += o.tempAcc
	s.constRead += o.constRead
	s.romRead += o.romRead
}

// assembleBody turns a clause's compiled instruction stream into one
// closure. Consecutive aggregatable ops (pure ALU / NOP with known
// operand shapes — their stat deltas precomputed, their closures bare)
// collapse into a single opStats application followed by the bare
// compute closures; non-aggregatable ops (memory ops, fallback shapes)
// self-account and stay interleaved in interpreter order. The resulting
// step list is executed with a flat loop rather than nested wrappers, so
// dispatch costs one indirect call per step.
func assembleBody(ops []warpFn, sts []*opStats) warpFn {
	var steps []warpFn
	for i := 0; i < len(ops); {
		if sts[i] == nil {
			steps = append(steps, ops[i])
			i++
			continue
		}
		agg := &opStats{}
		var run []warpFn
		for i < len(ops) && sts[i] != nil {
			agg.merge(sts[i])
			if ops[i] != nil {
				run = append(run, ops[i])
			}
			i++
		}
		steps = append(steps, func(e *execContext, w *warp, act uint64) error {
			agg.apply(e.gs, act)
			for _, op := range run {
				if err := op(e, w, act); err != nil {
					return err
				}
			}
			return nil
		})
	}
	switch len(steps) {
	case 0:
		return nil
	case 1:
		return steps[0]
	}
	return func(e *execContext, w *warp, act uint64) error {
		for _, op := range steps {
			if err := op(e, w, act); err != nil {
				return err
			}
		}
		return nil
	}
}

// compileWarpOp compiles one non-terminal instruction into a warp closure.
// A non-nil opStats marks the op aggregatable: it cannot fault, the
// returned closure does no stat accounting itself, and the deltas it
// would have bumped per active lane are described by the opStats (the
// closure may be nil when the op is pure accounting, e.g. NOP).
func compileWarpOp(in *Instr, p *Program) (warpFn, *opStats) {
	switch Classify(in.Op) {
	case ClassNop:
		return nil, &opStats{nop: 1}
	case ClassLS:
		return compileWarpMem(in, p), nil
	}
	if bf, ok := binFns[in.Op]; ok {
		return compileWarpBin(bf, in, p)
	}
	if uf, ok := unFns[in.Op]; ok {
		return compileWarpUn(uf, in, p)
	}
	switch in.Op {
	case OpFMA:
		return compileWarpAcc(in, p, func(acc, a, b uint64) uint64 {
			return fbits(f32(acc) + f32(a)*f32(b))
		})
	case OpSEL:
		return compileWarpAcc(in, p, func(acc, a, b uint64) uint64 {
			if acc != 0 {
				return a
			}
			return b
		})
	}
	// Unknown opcode: defer to the interpreter for the exact error.
	return warpLaneInterp(in), nil
}

// --- Operand shapes ---------------------------------------------------------

// bumpFn adds n operand accesses to a stats counter.
type bumpFn func(gs *stats.GPUStats, n uint64)

func bumpNone(*stats.GPUStats, uint64) {}

//simlint:commit -- designated operand-counter bump helper
func bumpGRFRead(gs *stats.GPUStats, n uint64) { gs.GRFRead += n }

//simlint:commit -- designated operand-counter bump helper
func bumpGRFWrite(gs *stats.GPUStats, n uint64) { gs.GRFWrite += n }

//simlint:commit -- designated operand-counter bump helper
func bumpTempAcc(gs *stats.GPUStats, n uint64) { gs.TempAcc += n }

//simlint:commit -- designated operand-counter bump helper
func bumpConstRead(gs *stats.GPUStats, n uint64) { gs.ConstRead += n }

//simlint:commit -- designated operand-counter bump helper
func bumpROMRead(gs *stats.GPUStats, n uint64) { gs.ROMRead += n }

// ctrKind names the operand counter an operand access bumps, so the ALU
// compilers can fold operand accounting into a compile-time opStats
// instead of calling the bumpFn at run time (memory ops, whose counters
// must stay per-lane in fault order, keep using the bumpFn).
type ctrKind uint8

const (
	ctrNone ctrKind = iota
	ctrGRFRead
	ctrGRFWrite
	ctrTempAcc
	ctrConstRead
	ctrROMRead
)

// count adds n accesses of counter kind c to the aggregate.
func (s *opStats) count(c ctrKind, n uint64) {
	switch c {
	case ctrGRFRead:
		s.grfRead += n
	case ctrGRFWrite:
		s.grfWrite += n
	case ctrTempAcc:
		s.tempAcc += n
	case ctrConstRead:
		s.constRead += n
	case ctrROMRead:
		s.romRead += n
	}
}

// vecSrc is a lane-varying register-file operand resolved to an SoA row.
type vecSrc struct {
	idx  int
	temp bool
	bump bumpFn
	ctr  ctrKind
}

func (v vecSrc) rowOf(w *warp) *[WarpSize]uint64 {
	if v.temp {
		return &w.temps[v.idx]
	}
	return &w.regs[v.idx]
}

// compileVecSrc resolves a GRF/clause-temp source operand.
func compileVecSrc(o uint8) (vecSrc, bool) {
	kind, idx := OperKind(o)
	switch kind {
	case OperGRF:
		return vecSrc{idx: int(idx), bump: bumpGRFRead, ctr: ctrGRFRead}, true
	case OperTemp:
		return vecSrc{idx: int(idx), temp: true, bump: bumpTempAcc, ctr: ctrTempAcc}, true
	}
	return vecSrc{}, false
}

// compileVecDst resolves a GRF/clause-temp destination operand.
func compileVecDst(o uint8) (vecSrc, bool) {
	kind, idx := OperKind(o)
	switch kind {
	case OperGRF:
		return vecSrc{idx: int(idx), bump: bumpGRFWrite, ctr: ctrGRFWrite}, true
	case OperTemp:
		return vecSrc{idx: int(idx), temp: true, bump: bumpTempAcc, ctr: ctrTempAcc}, true
	}
	return vecSrc{}, false
}

// uniSrc is a warp-uniform source: the same value for every lane of a
// clause (immediates, ROM, uniforms, workgroup-level specials). It is read
// once per warp, but its operand counter still counts one access per
// active lane, as the per-lane engines do.
type uniSrc struct {
	val  func(e *execContext) uint64
	bump bumpFn
	ctr  ctrKind
}

func compileUniSrc(o uint8, imm uint32, p *Program) (uniSrc, bool) {
	kind, idx := OperKind(o)
	switch kind {
	case OperGRF, OperTemp:
		return uniSrc{}, false
	case OperUniform:
		i := int(idx)
		return uniSrc{val: func(e *execContext) uint64 {
			if i < len(e.uniforms) {
				return e.uniforms[i]
			}
			return 0
		}, bump: bumpConstRead, ctr: ctrConstRead}, true
	}
	switch idx {
	case SpecImm:
		v := uint64(imm)
		return uniSrc{val: func(*execContext) uint64 { return v }, bump: bumpROMRead, ctr: ctrROMRead}, true
	case SpecROM:
		var v uint64
		if int(imm) < len(p.ROM) {
			v = p.ROM[imm]
		}
		return uniSrc{val: func(*execContext) uint64 { return v }, bump: bumpROMRead, ctr: ctrROMRead}, true
	case SpecZero:
		return uniSrc{val: func(*execContext) uint64 { return 0 }, bump: bumpNone}, true
	case SpecGIDX, SpecGIDY, SpecGIDZ, SpecLIDX, SpecLIDY, SpecLIDZ:
		// Lane-varying specials: not warp-uniform.
		return uniSrc{}, false
	case SpecWGIDX, SpecWGIDY, SpecWGIDZ:
		d := int(idx - SpecWGIDX)
		return uniSrc{val: func(e *execContext) uint64 { return uint64(e.wgid[d]) }, bump: bumpNone}, true
	case SpecGSZX, SpecGSZY, SpecGSZZ:
		d := int(idx - SpecGSZX)
		return uniSrc{val: func(e *execContext) uint64 { return uint64(e.gsz[d]) }, bump: bumpNone}, true
	case SpecLSZX, SpecLSZY, SpecLSZZ:
		d := int(idx - SpecLSZX)
		return uniSrc{val: func(e *execContext) uint64 { return uint64(e.lsz[d]) }, bump: bumpNone}, true
	}
	// Undefined dense specials read as zero with no counter, as read() does.
	return uniSrc{val: func(*execContext) uint64 { return 0 }, bump: bumpNone}, true
}

// --- ALU --------------------------------------------------------------------

// binStats builds the aggregatable stat deltas of a two-source ALU op.
func binStats(ctrs ...ctrKind) *opStats {
	st := &opStats{arith: 1}
	for _, c := range ctrs {
		st.count(c, 1)
	}
	return st
}

// --- Vector ALU kernels -------------------------------------------------------
//
// One top-level function per (opcode, operand shape), with the lane loop
// written directly into the body: a fully-active warp pays one indirect
// call per *instruction* instead of one per lane (Go cannot inline through
// the func values in binFns/unFns, and generics share a gcshape dictionary
// for zero-size operator types, so explicit kernels are the only way to
// get the op inlined into its loop). Opcodes without a kernel — the rare
// multi-branch ones like IDIV — keep the per-lane func-value loop. The
// masked (divergent) path always stays per-lane.

type soaRow = [WarpSize]uint64

// vvKernels: dst[l] = op(a[l], b[l]).
var vvKernels = map[Opcode]func(d, a, b *soaRow){
	OpIADD: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = uint64(uint32(a[l]) + uint32(b[l]))
		}
	},
	OpISUB: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = uint64(uint32(a[l]) - uint32(b[l]))
		}
	},
	OpIMUL: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = uint64(uint32(a[l]) * uint32(b[l]))
		}
	},
	OpSHL: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = uint64(uint32(a[l]) << (uint32(b[l]) & 31))
		}
	},
	OpSHR: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = uint64(uint32(a[l]) >> (uint32(b[l]) & 31))
		}
	},
	OpSAR: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = uint64(uint32(int32(a[l]) >> (uint32(b[l]) & 31)))
		}
	},
	OpAND: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = a[l] & b[l]
		}
	},
	OpOR: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = a[l] | b[l]
		}
	},
	OpXOR: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = a[l] ^ b[l]
		}
	},
	OpADD64: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = a[l] + b[l]
		}
	},
	OpMUL64: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = a[l] * b[l]
		}
	},
	OpFADD: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = fbits(f32(a[l]) + f32(b[l]))
		}
	},
	OpFSUB: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = fbits(f32(a[l]) - f32(b[l]))
		}
	},
	OpFMUL: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = fbits(f32(a[l]) * f32(b[l]))
		}
	},
	OpFDIV: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = fbits(f32(a[l]) / f32(b[l]))
		}
	},
	OpICMPEQ: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = b2u(uint32(a[l]) == uint32(b[l]))
		}
	},
	OpICMPNE: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = b2u(uint32(a[l]) != uint32(b[l]))
		}
	},
	OpICMPLT: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = b2u(int32(a[l]) < int32(b[l]))
		}
	},
	OpICMPLE: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = b2u(int32(a[l]) <= int32(b[l]))
		}
	},
	OpUCMPLT: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = b2u(uint32(a[l]) < uint32(b[l]))
		}
	},
	OpFCMPEQ: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = b2u(f32(a[l]) == f32(b[l]))
		}
	},
	OpFCMPLT: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = b2u(f32(a[l]) < f32(b[l]))
		}
	},
	OpFCMPLE: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = b2u(f32(a[l]) <= f32(b[l]))
		}
	},
}

// vuKernels: dst[l] = op(a[l], b) with warp-uniform b.
var vuKernels = map[Opcode]func(d, a *soaRow, b uint64){
	OpIADD: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = uint64(uint32(a[l]) + uint32(b))
		}
	},
	OpISUB: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = uint64(uint32(a[l]) - uint32(b))
		}
	},
	OpIMUL: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = uint64(uint32(a[l]) * uint32(b))
		}
	},
	OpSHL: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = uint64(uint32(a[l]) << (uint32(b) & 31))
		}
	},
	OpSHR: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = uint64(uint32(a[l]) >> (uint32(b) & 31))
		}
	},
	OpSAR: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = uint64(uint32(int32(a[l]) >> (uint32(b) & 31)))
		}
	},
	OpAND: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = a[l] & b
		}
	},
	OpOR: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = a[l] | b
		}
	},
	OpXOR: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = a[l] ^ b
		}
	},
	OpADD64: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = a[l] + b
		}
	},
	OpMUL64: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = a[l] * b
		}
	},
	OpFADD: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = fbits(f32(a[l]) + f32(b))
		}
	},
	OpFSUB: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = fbits(f32(a[l]) - f32(b))
		}
	},
	OpFMUL: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = fbits(f32(a[l]) * f32(b))
		}
	},
	OpFDIV: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = fbits(f32(a[l]) / f32(b))
		}
	},
	OpICMPEQ: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = b2u(uint32(a[l]) == uint32(b))
		}
	},
	OpICMPNE: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = b2u(uint32(a[l]) != uint32(b))
		}
	},
	OpICMPLT: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = b2u(int32(a[l]) < int32(b))
		}
	},
	OpICMPLE: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = b2u(int32(a[l]) <= int32(b))
		}
	},
	OpUCMPLT: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = b2u(uint32(a[l]) < uint32(b))
		}
	},
	OpFCMPEQ: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = b2u(f32(a[l]) == f32(b))
		}
	},
	OpFCMPLT: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = b2u(f32(a[l]) < f32(b))
		}
	},
	OpFCMPLE: func(d, a *soaRow, b uint64) {
		for l := range d {
			d[l] = b2u(f32(a[l]) <= f32(b))
		}
	},
}

// uvKernels: dst[l] = op(a, b[l]) with warp-uniform a (the non-commutative
// shapes matter: constant-minus-register, constant-divided-by-register).
var uvKernels = map[Opcode]func(d *soaRow, a uint64, b *soaRow){
	OpIADD: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = uint64(uint32(a) + uint32(b[l]))
		}
	},
	OpISUB: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = uint64(uint32(a) - uint32(b[l]))
		}
	},
	OpIMUL: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = uint64(uint32(a) * uint32(b[l]))
		}
	},
	OpSHL: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = uint64(uint32(a) << (uint32(b[l]) & 31))
		}
	},
	OpSHR: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = uint64(uint32(a) >> (uint32(b[l]) & 31))
		}
	},
	OpSAR: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = uint64(uint32(int32(a) >> (uint32(b[l]) & 31)))
		}
	},
	OpAND: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = a & b[l]
		}
	},
	OpOR: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = a | b[l]
		}
	},
	OpXOR: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = a ^ b[l]
		}
	},
	OpADD64: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = a + b[l]
		}
	},
	OpMUL64: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = a * b[l]
		}
	},
	OpFADD: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = fbits(f32(a) + f32(b[l]))
		}
	},
	OpFSUB: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = fbits(f32(a) - f32(b[l]))
		}
	},
	OpFMUL: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = fbits(f32(a) * f32(b[l]))
		}
	},
	OpFDIV: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = fbits(f32(a) / f32(b[l]))
		}
	},
	OpICMPEQ: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = b2u(uint32(a) == uint32(b[l]))
		}
	},
	OpICMPNE: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = b2u(uint32(a) != uint32(b[l]))
		}
	},
	OpICMPLT: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = b2u(int32(a) < int32(b[l]))
		}
	},
	OpICMPLE: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = b2u(int32(a) <= int32(b[l]))
		}
	},
	OpUCMPLT: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = b2u(uint32(a) < uint32(b[l]))
		}
	},
	OpFCMPEQ: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = b2u(f32(a) == f32(b[l]))
		}
	},
	OpFCMPLT: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = b2u(f32(a) < f32(b[l]))
		}
	},
	OpFCMPLE: func(d *soaRow, a uint64, b *soaRow) {
		for l := range d {
			d[l] = b2u(f32(a) <= f32(b[l]))
		}
	},
}

// unKernels: dst[l] = op(a[l]).
var unKernels = map[Opcode]func(d, a *soaRow){
	OpMOV: func(d, a *soaRow) { *d = *a },
	OpI2F: func(d, a *soaRow) {
		for l := range d {
			d[l] = fbits(float32(int32(a[l])))
		}
	},
	OpF2I: func(d, a *soaRow) {
		for l := range d {
			d[l] = uint64(uint32(int32(f32(a[l]))))
		}
	},
	OpFABS: func(d, a *soaRow) {
		for l := range d {
			d[l] = fbits(float32(math.Abs(float64(f32(a[l])))))
		}
	},
	OpFNEG: func(d, a *soaRow) {
		for l := range d {
			d[l] = fbits(-f32(a[l]))
		}
	},
	OpFSQRT: func(d, a *soaRow) {
		for l := range d {
			d[l] = fbits(float32(math.Sqrt(float64(f32(a[l])))))
		}
	},
	OpFFLOOR: func(d, a *soaRow) {
		for l := range d {
			d[l] = fbits(float32(math.Floor(float64(f32(a[l])))))
		}
	},
}

// accKernels: dst[l] = op(dst[l], a[l], b[l]) — the accumulator forms.
var accKernels = map[Opcode]func(d, a, b *soaRow){
	OpFMA: func(d, a, b *soaRow) {
		for l := range d {
			d[l] = fbits(f32(d[l]) + f32(a[l])*f32(b[l]))
		}
	},
	OpSEL: func(d, a, b *soaRow) {
		for l := range d {
			if d[l] != 0 {
				d[l] = a[l]
			} else {
				d[l] = b[l]
			}
		}
	},
}

func compileWarpBin(f func(a, b uint64) uint64, in *Instr, p *Program) (warpFn, *opStats) {
	d, dok := compileVecDst(in.Dst)
	if !dok {
		return warpLaneInterp(in), nil
	}
	av, aok := compileVecSrc(in.A)
	bv, bok := compileVecSrc(in.B)
	switch {
	case aok && bok:
		// The vector kernel writes every slot of the SoA row, including
		// lanes beyond w.lanes: those are architecturally dead (never
		// active, never stored back, zeroed when the slab is recycled), and
		// the constant trip count is what lets the compiler keep the op
		// inline and unrolled.
		if k := vvKernels[in.Op]; k != nil {
			return func(e *execContext, w *warp, act uint64) error {
				ar, br, dr := av.rowOf(w), bv.rowOf(w), d.rowOf(w)
				if int(act) == w.lanes {
					k(dr, ar, br)
					return nil
				}
				for l := 0; l < w.lanes; l++ {
					if w.active[l] && !w.exited[l] {
						dr[l] = f(ar[l], br[l])
					}
				}
				return nil
			}, binStats(av.ctr, bv.ctr, d.ctr)
		}
		return func(e *execContext, w *warp, act uint64) error {
			ar, br, dr := av.rowOf(w), bv.rowOf(w), d.rowOf(w)
			if int(act) == w.lanes {
				for l := 0; l < w.lanes; l++ {
					dr[l] = f(ar[l], br[l])
				}
				return nil
			}
			for l := 0; l < w.lanes; l++ {
				if w.active[l] && !w.exited[l] {
					dr[l] = f(ar[l], br[l])
				}
			}
			return nil
		}, binStats(av.ctr, bv.ctr, d.ctr)
	case aok:
		bu, ok := compileUniSrc(in.B, in.Imm, p)
		if !ok {
			return warpLaneInterp(in), nil
		}
		if k := vuKernels[in.Op]; k != nil {
			return func(e *execContext, w *warp, act uint64) error {
				b := bu.val(e)
				ar, dr := av.rowOf(w), d.rowOf(w)
				if int(act) == w.lanes {
					k(dr, ar, b)
					return nil
				}
				for l := 0; l < w.lanes; l++ {
					if w.active[l] && !w.exited[l] {
						dr[l] = f(ar[l], b)
					}
				}
				return nil
			}, binStats(av.ctr, bu.ctr, d.ctr)
		}
		return func(e *execContext, w *warp, act uint64) error {
			b := bu.val(e)
			ar, dr := av.rowOf(w), d.rowOf(w)
			if int(act) == w.lanes {
				for l := 0; l < w.lanes; l++ {
					dr[l] = f(ar[l], b)
				}
				return nil
			}
			for l := 0; l < w.lanes; l++ {
				if w.active[l] && !w.exited[l] {
					dr[l] = f(ar[l], b)
				}
			}
			return nil
		}, binStats(av.ctr, bu.ctr, d.ctr)
	case bok:
		au, ok := compileUniSrc(in.A, in.Imm, p)
		if !ok {
			return warpLaneInterp(in), nil
		}
		if k := uvKernels[in.Op]; k != nil {
			return func(e *execContext, w *warp, act uint64) error {
				a := au.val(e)
				br, dr := bv.rowOf(w), d.rowOf(w)
				if int(act) == w.lanes {
					k(dr, a, br)
					return nil
				}
				for l := 0; l < w.lanes; l++ {
					if w.active[l] && !w.exited[l] {
						dr[l] = f(a, br[l])
					}
				}
				return nil
			}, binStats(au.ctr, bv.ctr, d.ctr)
		}
		return func(e *execContext, w *warp, act uint64) error {
			a := au.val(e)
			br, dr := bv.rowOf(w), d.rowOf(w)
			if int(act) == w.lanes {
				for l := 0; l < w.lanes; l++ {
					dr[l] = f(a, br[l])
				}
				return nil
			}
			for l := 0; l < w.lanes; l++ {
				if w.active[l] && !w.exited[l] {
					dr[l] = f(a, br[l])
				}
			}
			return nil
		}, binStats(au.ctr, bv.ctr, d.ctr)
	default:
		au, okA := compileUniSrc(in.A, in.Imm, p)
		bu, okB := compileUniSrc(in.B, in.Imm, p)
		if !okA || !okB {
			return warpLaneInterp(in), nil
		}
		return func(e *execContext, w *warp, act uint64) error {
			r := f(au.val(e), bu.val(e))
			dr := d.rowOf(w)
			for l := 0; l < w.lanes; l++ {
				if w.active[l] && !w.exited[l] {
					dr[l] = r
				}
			}
			return nil
		}, binStats(au.ctr, bu.ctr, d.ctr)
	}
}

func compileWarpUn(f func(a uint64) uint64, in *Instr, p *Program) (warpFn, *opStats) {
	d, dok := compileVecDst(in.Dst)
	if !dok {
		return warpLaneInterp(in), nil
	}
	if av, ok := compileVecSrc(in.A); ok {
		if k := unKernels[in.Op]; k != nil {
			return func(e *execContext, w *warp, act uint64) error {
				ar, dr := av.rowOf(w), d.rowOf(w)
				if int(act) == w.lanes {
					k(dr, ar)
					return nil
				}
				for l := 0; l < w.lanes; l++ {
					if w.active[l] && !w.exited[l] {
						dr[l] = f(ar[l])
					}
				}
				return nil
			}, binStats(av.ctr, d.ctr)
		}
		return func(e *execContext, w *warp, act uint64) error {
			ar, dr := av.rowOf(w), d.rowOf(w)
			if int(act) == w.lanes {
				for l := 0; l < w.lanes; l++ {
					dr[l] = f(ar[l])
				}
				return nil
			}
			for l := 0; l < w.lanes; l++ {
				if w.active[l] && !w.exited[l] {
					dr[l] = f(ar[l])
				}
			}
			return nil
		}, binStats(av.ctr, d.ctr)
	}
	if au, ok := compileUniSrc(in.A, in.Imm, p); ok {
		return func(e *execContext, w *warp, act uint64) error {
			r := f(au.val(e))
			dr := d.rowOf(w)
			for l := 0; l < w.lanes; l++ {
				if w.active[l] && !w.exited[l] {
					dr[l] = r
				}
			}
			return nil
		}, binStats(au.ctr, d.ctr)
	}
	return warpLaneInterp(in), nil
}

// compileWarpAcc handles the accumulator forms (FMA, SEL): the destination
// is read as a third source before being written, and the interpreter
// counts that read with the destination operand's read counter.
func compileWarpAcc(in *Instr, p *Program, f func(acc, a, b uint64) uint64) (warpFn, *opStats) {
	d, dok := compileVecDst(in.Dst)
	acc, aok2 := compileVecSrc(in.Dst)
	av, aok := compileVecSrc(in.A)
	bv, bok := compileVecSrc(in.B)
	if !dok || !aok2 {
		return warpLaneInterp(in), nil
	}
	au, auok := compileUniSrc(in.A, in.Imm, p)
	bu, buok := compileUniSrc(in.B, in.Imm, p)
	if (!aok && !auok) || (!bok && !buok) {
		return warpLaneInterp(in), nil
	}
	st := &opStats{arith: 1}
	if aok {
		st.count(av.ctr, 1)
	} else {
		st.count(au.ctr, 1)
	}
	if bok {
		st.count(bv.ctr, 1)
	} else {
		st.count(bu.ctr, 1)
	}
	st.count(acc.ctr, 1)
	st.count(d.ctr, 1)
	if aok && bok {
		if k := accKernels[in.Op]; k != nil {
			return func(e *execContext, w *warp, act uint64) error {
				ar, br, dr := av.rowOf(w), bv.rowOf(w), d.rowOf(w)
				if int(act) == w.lanes {
					k(dr, ar, br)
					return nil
				}
				for l := 0; l < w.lanes; l++ {
					if w.active[l] && !w.exited[l] {
						dr[l] = f(dr[l], ar[l], br[l])
					}
				}
				return nil
			}, st
		}
	}
	return func(e *execContext, w *warp, act uint64) error {
		var aRow, bRow *[WarpSize]uint64
		var aVal, bVal uint64
		if aok {
			aRow = av.rowOf(w)
		} else {
			aVal = au.val(e)
		}
		if bok {
			bRow = bv.rowOf(w)
		} else {
			bVal = bu.val(e)
		}
		dr := d.rowOf(w)
		for l := 0; l < w.lanes; l++ {
			if !w.active[l] || w.exited[l] {
				continue
			}
			a, b := aVal, bVal
			if aRow != nil {
				a = aRow[l]
			}
			if bRow != nil {
				b = bRow[l]
			}
			dr[l] = f(dr[l], a, b)
		}
		return nil
	}, st
}

// --- Memory -----------------------------------------------------------------

// batchSpan reports whether all lanes of a fully-active warp touch one
// virtual page, returning the lowest lane address. addrs is the SoA base
// row; every lane accesses addrs[l]+imm for size bytes.
func batchSpan(addrs *[WarpSize]uint64, lanes int, imm uint64, size int) (lo uint64, ok bool) {
	lo = addrs[0] + imm
	hi := lo
	for l := 1; l < lanes; l++ {
		a := addrs[l] + imm
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	return lo, lo&^uint64(mem.PageMask) == (hi+uint64(size)-1)&^uint64(mem.PageMask)
}

// compileWarpMem fuses a load/store into a per-lane loop over the walker
// fast path, with a coalesced batch path in front: when the whole warp is
// active and every lane's access lands inside one virtual page (the
// uniform-base + lane-stride shape of well-behaved kernels), the page is
// translated once through Walker.BatchPage — which accounts TLB hits/
// walks, touched pages and the dirty watermark bit-identically to the
// per-lane sequence — and the lanes copy straight between the host page
// view and the SoA register row. The batch cannot fault (BatchPage
// declines rather than faults), so its counters may bump in bulk.
// Divergent warps, page-crossing spans, MMIO frames and faulting accesses
// fall back to the per-lane loop, where counters and walker calls stay in
// interpreter order so a faulting lane aborts with identical totals.
//
//simlint:commit -- warp memory kernels keep interpreter-identical counters
func compileWarpMem(in *Instr, p *Program) warpFn {
	imm := uint64(int64(int32(in.Imm)))
	switch in.Op {
	case OpLDG, OpLDG64, OpLDGB:
		size := 4
		switch in.Op {
		case OpLDG64:
			size = 8
		case OpLDGB:
			size = 1
		}
		av, aok := compileVecSrc(in.A)
		d, dok := compileVecDst(in.Dst)
		if !aok || !dok {
			return warpWrapJit(compileMem(in, p), ClassLS)
		}
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.LSInstr += act
			ar, dr := av.rowOf(w), d.rowOf(w)
			if int(act) == w.lanes {
				if lo, ok := batchSpan(ar, w.lanes, imm, size); ok {
					if page, ok := e.walker.BatchPage(lo, mem.Read, act); ok {
						av.bump(e.gs, act)
						e.gs.GlobalLS += act
						e.gs.MainMemAcc += act
						d.bump(e.gs, act)
						if e.walker.Shared() {
							for l := 0; l < w.lanes; l++ {
								off := (ar[l] + imm) & mem.PageMask
								if size == 4 && off&3 == 0 {
									dr[l] = mem.AtomicLoad32(page, off)
								} else {
									dr[l] = mem.AtomicLoadLE(page, off, size)
								}
							}
						} else {
							for l := 0; l < w.lanes; l++ {
								off := (ar[l] + imm) & mem.PageMask
								//simlint:allow sharedmem -- plain-mode BatchPage span: the walker already resolved an unshared page
								dr[l] = mem.LoadLE(page[off : off+uint64(size)])
							}
						}
						return nil
					}
				}
			}
			for l := 0; l < w.lanes; l++ {
				if !w.active[l] || w.exited[l] {
					continue
				}
				av.bump(e.gs, 1)
				e.gs.GlobalLS++
				e.gs.MainMemAcc++
				v, err := e.walker.Load(ar[l]+imm, size, mem.Read)
				if err != nil {
					return err
				}
				d.bump(e.gs, 1)
				dr[l] = v
			}
			return nil
		}

	case OpSTG, OpSTG64, OpSTGB:
		size := 4
		switch in.Op {
		case OpSTG64:
			size = 8
		case OpSTGB:
			size = 1
		}
		av, aok := compileVecSrc(in.A)
		bv, bok := compileVecSrc(in.B)
		if !aok || !bok {
			return warpWrapJit(compileMem(in, p), ClassLS)
		}
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.LSInstr += act
			ar, br := av.rowOf(w), bv.rowOf(w)
			if int(act) == w.lanes {
				if lo, ok := batchSpan(ar, w.lanes, imm, size); ok {
					if page, ok := e.walker.BatchPage(lo, mem.Write, act); ok {
						av.bump(e.gs, act)
						bv.bump(e.gs, act)
						e.gs.GlobalLS += act
						e.gs.MainMemAcc += act
						// Lane order is preserved: overlapping lane stores
						// resolve low-lane-first, as the per-lane loop does.
						if e.walker.Shared() {
							for l := 0; l < w.lanes; l++ {
								off := (ar[l] + imm) & mem.PageMask
								if size == 4 && off&3 == 0 {
									mem.AtomicStore32(page, off, uint32(br[l]))
								} else {
									mem.AtomicStoreLE(page, off, size, br[l])
								}
							}
						} else {
							for l := 0; l < w.lanes; l++ {
								off := (ar[l] + imm) & mem.PageMask
								//simlint:allow sharedmem -- plain-mode BatchPage span: the walker already resolved an unshared page
								mem.StoreLE(page[off:off+uint64(size)], size, br[l])
							}
						}
						return nil
					}
				}
			}
			for l := 0; l < w.lanes; l++ {
				if !w.active[l] || w.exited[l] {
					continue
				}
				av.bump(e.gs, 1)
				bv.bump(e.gs, 1)
				e.gs.GlobalLS++
				e.gs.MainMemAcc++
				if err := e.walker.Store(ar[l]+imm, size, br[l]); err != nil {
					return err
				}
			}
			return nil
		}

	case OpLDL:
		av, aok := compileVecSrc(in.A)
		d, dok := compileVecDst(in.Dst)
		if !aok || !dok {
			return warpWrapJit(compileMem(in, p), ClassLS)
		}
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.LSInstr += act
			ar, dr := av.rowOf(w), d.rowOf(w)
			for l := 0; l < w.lanes; l++ {
				if !w.active[l] || w.exited[l] {
					continue
				}
				av.bump(e.gs, 1)
				e.gs.LocalLS++
				e.gs.LocalAcc++
				v, err := e.local.load(ar[l] + imm)
				if err != nil {
					return err
				}
				d.bump(e.gs, 1)
				dr[l] = uint64(v)
			}
			return nil
		}

	case OpSTL:
		av, aok := compileVecSrc(in.A)
		bv, bok := compileVecSrc(in.B)
		if !aok || !bok {
			return warpWrapJit(compileMem(in, p), ClassLS)
		}
		return func(e *execContext, w *warp, act uint64) error {
			e.gs.LSInstr += act
			ar, br := av.rowOf(w), bv.rowOf(w)
			for l := 0; l < w.lanes; l++ {
				if !w.active[l] || w.exited[l] {
					continue
				}
				av.bump(e.gs, 1)
				bv.bump(e.gs, 1)
				e.gs.LocalLS++
				e.gs.LocalAcc++
				if err := e.local.store(ar[l]+imm, uint32(br[l])); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return warpLaneInterp(in)
}

// --- Fallbacks --------------------------------------------------------------

// warpWrapJit lifts a per-lane closure-JIT op to a warp closure.
//
//simlint:commit -- lifted JIT ops commit the instruction-mix counters
func warpWrapJit(op jitOp, cls Class) warpFn {
	if op == nil {
		return nil
	}
	return func(e *execContext, w *warp, act uint64) error {
		switch cls {
		case ClassArith:
			e.gs.ArithInstr += act
		case ClassLS:
			e.gs.LSInstr += act
		case ClassNop:
			e.gs.NopInstr += act
		}
		for l := 0; l < w.lanes; l++ {
			if w.active[l] && !w.exited[l] {
				if err := op(e, w, l); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// warpLaneInterp lifts the interpreter to a warp closure for shapes the
// fused variants do not specialise, preserving errors and counters.
//
//simlint:commit -- interpreter fallback commits the instruction-mix counters
func warpLaneInterp(in *Instr) warpFn {
	cls := Classify(in.Op)
	return func(e *execContext, w *warp, act uint64) error {
		switch cls {
		case ClassArith:
			e.gs.ArithInstr += act
		case ClassLS:
			e.gs.LSInstr += act
		case ClassNop:
			e.gs.NopInstr += act
		}
		for l := 0; l < w.lanes; l++ {
			if w.active[l] && !w.exited[l] {
				if err := e.execLane(w, l, in); err != nil {
					return err
				}
			}
		}
		return nil
	}
}
