// Package gpu implements the simulated Bifrost-style GPU: a clause-based
// shader ISA, quad (4-lane) warps executed in lockstep with mask-stack
// divergence, shader cores grouped under a Job Manager, a full GPU MMU,
// and the memory-mapped register interface the kernel driver programs.
//
// The instruction encoding is a clean-room design with the structural
// properties of Arm's Bifrost architecture as published ([18] in the
// paper): instructions are bundled into clauses of up to 8 tuples (16
// instruction slots) that execute unconditionally; clause-temporary
// registers are live only within their clause and relieve pressure on the
// global register file; control flow happens only at clause boundaries.
package gpu

import "fmt"

// Opcode enumerates shader instructions.
type Opcode uint8

// Shader opcodes. Arithmetic opcodes execute in the arithmetic pipeline;
// LD*/ST* in the load/store unit; BR*/RET at clause boundaries.
const (
	OpNOP Opcode = iota

	// Moves and conversions.
	OpMOV // dst = a
	OpI2F // dst = float(int(a))
	OpF2I // dst = int(float(a)) (truncating)

	// Integer arithmetic (32-bit semantics on the low word; address maths
	// uses the ADD64 variant).
	OpIADD
	OpISUB
	OpIMUL
	OpIDIV // signed; x/0 = 0
	OpIMOD // signed; x%0 = 0
	OpSHL
	OpSHR // logical
	OpSAR // arithmetic
	OpAND
	OpOR
	OpXOR
	OpIMIN
	OpIMAX
	OpADD64 // 64-bit add for address computation
	OpMUL64 // 64-bit multiply for address computation

	// Float arithmetic (float32).
	OpFADD
	OpFSUB
	OpFMUL
	OpFDIV
	OpFMA // dst = dst + a*b (accumulator form)
	OpFMIN
	OpFMAX
	OpFABS
	OpFNEG
	OpFSQRT
	OpFEXP
	OpFLOG
	OpFSIN
	OpFCOS
	OpFFLOOR

	// Comparisons produce 0 or 1 in dst.
	OpICMPEQ
	OpICMPNE
	OpICMPLT // signed
	OpICMPLE
	OpUCMPLT // unsigned
	OpFCMPEQ
	OpFCMPLT
	OpFCMPLE

	// SEL: dst = (dst != 0) ? a : b. The predicate is the accumulator,
	// mirroring the FMA convention.
	OpSEL

	// Memory. Addresses are full 64-bit virtual addresses translated by
	// the GPU MMU. The immediate field is a signed byte offset.
	OpLDG   // 32-bit global load
	OpLDG64 // 64-bit global load
	OpLDGB  // 8-bit global load (zero-extended)
	OpSTG   // 32-bit global store
	OpSTG64 // 64-bit global store
	OpSTGB  // 8-bit global store
	OpLDL   // 32-bit workgroup-local load
	OpSTL   // 32-bit workgroup-local store

	// Synchronisation.
	OpBARRIER // workgroup barrier (clause-terminal)

	// Control flow (clause-terminal only; targets are clause indices).
	OpBR  // unconditional: imm low 16 bits = target clause
	OpBRC // conditional on a != 0: imm low 16 = target, high 16 = reconvergence clause
	OpRET // thread terminates

	// NumOpcodes is the number of defined opcodes.
	NumOpcodes
)

var opNames = [...]string{
	"nop", "mov", "i2f", "f2i",
	"iadd", "isub", "imul", "idiv", "imod", "shl", "shr", "sar",
	"and", "or", "xor", "imin", "imax", "add64", "mul64",
	"fadd", "fsub", "fmul", "fdiv", "fma", "fmin", "fmax",
	"fabs", "fneg", "fsqrt", "fexp", "flog", "fsin", "fcos", "ffloor",
	"icmpeq", "icmpne", "icmplt", "icmple", "ucmplt",
	"fcmpeq", "fcmplt", "fcmple", "sel",
	"ldg", "ldg64", "ldgb", "stg", "stg64", "stgb", "ldl", "stl",
	"barrier", "br", "brc", "ret",
}

func (op Opcode) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("gop%d", uint8(op))
}

// Class buckets opcodes into the paper's instruction-mix categories.
type Class int

// Instruction classes for the Fig 11 mix.
const (
	ClassArith Class = iota
	ClassLS
	ClassCF
	ClassNop
)

// Classify returns the mix category of an opcode.
func Classify(op Opcode) Class {
	switch op {
	case OpNOP:
		return ClassNop
	case OpLDG, OpLDG64, OpLDGB, OpSTG, OpSTG64, OpSTGB, OpLDL, OpSTL:
		return ClassLS
	case OpBR, OpBRC, OpRET, OpBARRIER:
		return ClassCF
	default:
		return ClassArith
	}
}

// IsClauseTerminal reports whether the opcode must end its clause.
func IsClauseTerminal(op Opcode) bool {
	switch op {
	case OpBR, OpBRC, OpRET, OpBARRIER:
		return true
	}
	return false
}

// --- Operands -------------------------------------------------------------

// Operand kinds, packed into the top 2 bits of an operand byte. The low 6
// bits are the index within the kind.
const (
	OperGRF     uint8 = 0 // r0..r63: global register file
	OperTemp    uint8 = 1 // t0..t3: clause-temporary registers
	OperUniform uint8 = 2 // c0..c63: constant port (kernel arguments)
	OperSpecial uint8 = 3 // lane/group identifiers, ROM, immediate
)

// Special operand indices (kind OperSpecial).
const (
	SpecZero    uint8 = 0
	SpecGIDX    uint8 = 1 // get_global_id(0)
	SpecGIDY    uint8 = 2
	SpecGIDZ    uint8 = 3
	SpecLIDX    uint8 = 4 // get_local_id(0)
	SpecLIDY    uint8 = 5
	SpecLIDZ    uint8 = 6
	SpecWGIDX   uint8 = 7 // get_group_id(0)
	SpecWGIDY   uint8 = 8
	SpecWGIDZ   uint8 = 9
	SpecGSZX    uint8 = 10 // get_global_size(0)
	SpecGSZY    uint8 = 11
	SpecGSZZ    uint8 = 12
	SpecLSZX    uint8 = 13 // get_local_size(0)
	SpecLSZY    uint8 = 14
	SpecLSZZ    uint8 = 15
	SpecROM     uint8 = 62 // read ROM entry imm (embedded constant table)
	SpecImm     uint8 = 63 // read the instruction's imm32 field
	numSpecials       = 16 // dense specials; SpecROM/SpecImm are sentinels
)

// NumGRF is the global register file size per thread.
const NumGRF = 64

// NumTemp is the number of clause-temporary registers per thread.
const NumTemp = 4

// Operand constructors.

// R returns a GRF register operand.
func R(i int) uint8 {
	if i < 0 || i >= NumGRF {
		panic(fmt.Sprintf("gpu: bad GRF index %d", i))
	}
	return OperGRF<<6 | uint8(i)
}

// T returns a clause-temporary register operand.
func T(i int) uint8 {
	if i < 0 || i >= NumTemp {
		panic(fmt.Sprintf("gpu: bad temp index %d", i))
	}
	return OperTemp<<6 | uint8(i)
}

// C returns a uniform (constant port) operand.
func C(i int) uint8 {
	if i < 0 || i >= 64 {
		panic(fmt.Sprintf("gpu: bad uniform index %d", i))
	}
	return OperUniform<<6 | uint8(i)
}

// S returns a special operand.
func S(i uint8) uint8 { return OperSpecial<<6 | (i & 0x3F) }

// Imm is the operand byte selecting the instruction's 32-bit immediate.
var Imm = S(SpecImm)

// Rom is the operand byte reading ROM[imm32].
var Rom = S(SpecROM)

// OperKind splits an operand byte into kind and index.
func OperKind(o uint8) (kind, index uint8) { return o >> 6, o & 0x3F }

// OperString renders an operand byte for disassembly.
func OperString(o uint8) string {
	kind, idx := OperKind(o)
	switch kind {
	case OperGRF:
		return fmt.Sprintf("r%d", idx)
	case OperTemp:
		return fmt.Sprintf("t%d", idx)
	case OperUniform:
		return fmt.Sprintf("c%d", idx)
	default:
		switch idx {
		case SpecImm:
			return "#imm"
		case SpecROM:
			return "rom[imm]"
		default:
			names := [...]string{"zero", "gid.x", "gid.y", "gid.z",
				"lid.x", "lid.y", "lid.z", "wg.x", "wg.y", "wg.z",
				"gsz.x", "gsz.y", "gsz.z", "lsz.x", "lsz.y", "lsz.z"}
			if int(idx) < len(names) {
				return names[idx]
			}
			return fmt.Sprintf("spec%d", idx)
		}
	}
}

// --- Instruction words ----------------------------------------------------

// Instr is one decoded shader instruction.
//
//	bits [63:56] opcode
//	bits [55:48] dst operand
//	bits [47:40] srcA operand
//	bits [39:32] srcB operand
//	bits [31:0]  imm32 (integer/float bits, branch targets, offsets)
type Instr struct {
	Op  Opcode
	Dst uint8
	A   uint8
	B   uint8
	Imm uint32
}

// Pack serialises the instruction into its 64-bit word.
func (in Instr) Pack() uint64 {
	return uint64(in.Op)<<56 | uint64(in.Dst)<<48 | uint64(in.A)<<40 |
		uint64(in.B)<<32 | uint64(in.Imm)
}

// Unpack decodes a 64-bit instruction word.
func Unpack(w uint64) Instr {
	return Instr{
		Op:  Opcode(w >> 56),
		Dst: uint8(w >> 48),
		A:   uint8(w >> 40),
		B:   uint8(w >> 32),
		Imm: uint32(w),
	}
}

// BranchTarget returns the target clause index of BR/BRC.
func (in Instr) BranchTarget() int { return int(in.Imm & 0xFFFF) }

// Reconverge returns the reconvergence clause index of BRC, encoded by the
// compiler as the immediate post-dominator of the branch.
func (in Instr) Reconverge() int { return int(in.Imm >> 16) }

// BranchImm encodes a BRC immediate from target and reconvergence clause
// indices.
func BranchImm(target, reconverge int) uint32 {
	return uint32(target&0xFFFF) | uint32(reconverge&0xFFFF)<<16
}

func (in Instr) String() string {
	switch in.Op {
	case OpNOP, OpRET, OpBARRIER:
		return in.Op.String()
	case OpBR:
		return fmt.Sprintf("br c%d", in.BranchTarget())
	case OpBRC:
		return fmt.Sprintf("brc %s, c%d, rejoin c%d", OperString(in.A), in.BranchTarget(), in.Reconverge())
	case OpSTG, OpSTG64, OpSTGB, OpSTL:
		return fmt.Sprintf("%s [%s%+d], %s", in.Op, OperString(in.A), int32(in.Imm), OperString(in.B))
	case OpLDG, OpLDG64, OpLDGB, OpLDL:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, OperString(in.Dst), OperString(in.A), int32(in.Imm))
	default:
		s := fmt.Sprintf("%s %s, %s, %s", in.Op, OperString(in.Dst), OperString(in.A), OperString(in.B))
		if in.A == Imm || in.B == Imm {
			s += fmt.Sprintf(" (imm=%#x)", in.Imm)
		}
		return s
	}
}
