package gpu

import (
	"fmt"
	"math"
	"sync/atomic"

	"mobilesim/internal/mem"
	"mobilesim/internal/mmu"
	"mobilesim/internal/stats"
)

// WarpSize is the quad width: Bifrost groups threads into bundles of four
// that fill the 128-bit data unit and execute in lockstep.
const WarpSize = 4

// localMemory abstracts the workgroup-local store. Hardware workgroups use
// driver-allocated guest memory accessed through the GPU MMU; virtual-core
// over-commit falls back to host shadow buffers (§III-B3).
type localMemory interface {
	load(off uint64) (uint32, error)
	store(off uint64, v uint32) error
}

// guestLocal is local memory backed by a guest allocation. Accesses go
// through the walker's TLB-cached fast path, same as global memory.
type guestLocal struct {
	base   uint64 // guest VA of the slot
	size   uint64
	walker *mmu.Walker
}

func (g *guestLocal) load(off uint64) (uint32, error) {
	if off+4 > g.size {
		return 0, fmt.Errorf("gpu: local load at %#x beyond %#x", off, g.size)
	}
	v, err := g.walker.Load(g.base+off, 4, mem.Read)
	return uint32(v), err
}

func (g *guestLocal) store(off uint64, v uint32) error {
	if off+4 > g.size {
		return fmt.Errorf("gpu: local store at %#x beyond %#x", off, g.size)
	}
	return g.walker.Store(g.base+off, 4, uint64(v))
}

// shadowLocal is host-side local memory for over-committed virtual cores.
type shadowLocal struct{ buf []byte }

func (s *shadowLocal) load(off uint64) (uint32, error) {
	if off+4 > uint64(len(s.buf)) {
		return 0, fmt.Errorf("gpu: shadow local load at %#x beyond %#x", off, len(s.buf))
	}
	return uint32(s.buf[off]) | uint32(s.buf[off+1])<<8 |
		uint32(s.buf[off+2])<<16 | uint32(s.buf[off+3])<<24, nil
}

func (s *shadowLocal) store(off uint64, v uint32) error {
	if off+4 > uint64(len(s.buf)) {
		return fmt.Errorf("gpu: shadow local store at %#x beyond %#x", off, len(s.buf))
	}
	s.buf[off] = byte(v)
	s.buf[off+1] = byte(v >> 8)
	s.buf[off+2] = byte(v >> 16)
	s.buf[off+3] = byte(v >> 24)
	return nil
}

// warpStatus reports how a warp's execution step ended.
type warpStatus int

const (
	warpRunning warpStatus = iota
	warpAtBarrier
	warpDone
)

// divFrame is one SIMT reconvergence stack entry. On divergence the warp
// runs the fallthrough path first; the taken path and the full mask to
// restore at the reconvergence clause are recorded here.
type divFrame struct {
	rejoin   int // clause index where paths reconverge
	pendPC   int // deferred path entry clause; -1 once consumed
	pendMask [WarpSize]bool
	joinMask [WarpSize]bool
}

// warp is a quad of threads executing in lockstep. Register files are laid
// out structure-of-arrays — one [WarpSize] row per register — so the fused
// warp engine streams a whole warp's operands from one contiguous row.
type warp struct {
	lanes  int // live lanes (tail warps may be partial)
	active [WarpSize]bool
	exited [WarpSize]bool
	regs   [NumGRF][WarpSize]uint64
	temps  [NumTemp][WarpSize]uint64

	gid [WarpSize][3]uint32
	lid [WarpSize][3]uint32

	pc    int // current clause index
	stack []divFrame
}

func (w *warp) activeCount() int {
	n := 0
	for i := 0; i < w.lanes; i++ {
		if w.active[i] && !w.exited[i] {
			n++
		}
	}
	return n
}

func (w *warp) allExited() bool {
	for i := 0; i < w.lanes; i++ {
		if !w.exited[i] {
			return false
		}
	}
	return true
}

// execContext is everything a warp needs from its surrounding workgroup
// and worker: program, argument values, memory paths and stat shards.
type execContext struct {
	prog     *Program
	eng      Engine // which engine artifact this worker may consult
	uniforms []uint64
	bus      *mem.Bus
	walker   *mmu.Walker
	local    localMemory

	wgid [3]uint32
	gsz  [3]uint32
	lsz  [3]uint32

	gs    *stats.GPUStats
	cfg   *stats.CFG   // nil when CFG collection is off
	trace *traceSink   // nil when instruction tracing is off
	stop  *atomic.Bool // soft-stop latch, polled at clause boundaries

	// warpSlab is this worker's recycled per-workgroup warp storage,
	// checked out of the device's free list for the duration of a job
	// (see warpsFor). nil is valid: the first workgroup allocates.
	warpSlab []wgWarp
}

// clauseBudget caps clauses executed per warp per job as a runaway guard
// (a shader looping forever would otherwise hang the Job Manager).
const clauseBudget = 1 << 24

// runWarp executes the warp until it terminates or reaches a barrier.
// A pending soft-stop is honoured between clauses — the cancellation
// granularity of the whole stack: a stopped kernel never splits a clause.
func (e *execContext) runWarp(w *warp) (warpStatus, error) {
	for steps := 0; ; steps++ {
		if steps > clauseBudget {
			return warpDone, fmt.Errorf("gpu: clause budget exhausted (infinite loop in shader?)")
		}
		if e.stop != nil && e.stop.Load() {
			return warpDone, ErrStopped
		}
		// Clause-boundary marker of the guest memory model (the ordering
		// itself comes from the seq-cst shared accessors; see
		// mem.LoadFence) — the same clause granularity soft-stop uses.
		mem.LoadFence()

		// Reconvergence: entering the rejoin clause of stacked frames.
		for len(w.stack) > 0 && w.pc == w.stack[len(w.stack)-1].rejoin {
			f := &w.stack[len(w.stack)-1]
			if f.pendPC >= 0 {
				// Switch to the deferred path; leave a marker frame.
				w.active = f.pendMask
				w.pc = f.pendPC
				f.pendPC = -1
			} else {
				// Both paths done: restore the pre-branch mask (minus
				// lanes that exited inside the region).
				for i := range w.active {
					w.active[i] = f.joinMask[i] && !w.exited[i]
				}
				w.stack = w.stack[:len(w.stack)-1]
			}
		}

		if w.pc >= len(e.prog.Clauses) {
			return warpDone, nil
		}
		if w.activeCount() == 0 {
			if w.allExited() && len(w.stack) == 0 {
				return warpDone, nil
			}
			// All current lanes inactive but stack pending: fall through
			// to the next clause so reconvergence checks progress.
			w.pc++
			continue
		}

		var st warpStatus
		var err error
		if sc := e.superClauseAt(w.pc); sc != nil {
			st, err = e.execSuper(w, sc)
		} else {
			st, err = e.execClause(w)
		}
		if err != nil {
			return warpDone, err
		}
		switch st {
		case warpAtBarrier:
			return warpAtBarrier, nil
		case warpDone:
			if w.allExited() && len(w.stack) == 0 {
				return warpDone, nil
			}
		}
	}
}

// superClauseAt returns the fused superclause headed at clause index ci,
// or nil when the superclause fast path does not apply: a different
// engine, instruction tracing (needs per-instruction visibility), CFG
// collection (needs per-clause block bookkeeping), or simply no chain
// starting here. Mid-chain clauses never satisfy this with active lanes —
// every control-flow edge (branch targets, reconvergence points, barrier
// resumes) lands on a chain head by construction, and the zero-active
// stepping walk in runWarp advances pc without executing.
func (e *execContext) superClauseAt(ci int) *superClause {
	if e.eng != EngineWarp || e.prog.warp == nil || e.trace != nil || e.cfg != nil {
		return nil
	}
	sup := e.prog.warp.super
	if ci >= len(sup) {
		return nil
	}
	return sup[ci]
}

// execSuper runs a fused chain of clauses with one dispatch. Every
// *original* clause boundary inside the chain keeps its architectural
// behaviour: the soft-stop latch is polled and the clause-boundary
// acquire marker issued exactly as the per-clause loop in runWarp does,
// and the per-clause statistics bump in the same order. The active mask
// is constant through the chain (no BRC/RET mid-chain), so act is
// computed once.
//
//simlint:commit -- commits the fused superclause instruction mix
func (e *execContext) execSuper(w *warp, sc *superClause) (warpStatus, error) {
	act := uint64(w.activeCount())
	for si := range sc.segs {
		s := &sc.segs[si]
		if si > 0 {
			if e.stop != nil && e.stop.Load() {
				return warpDone, ErrStopped
			}
			mem.LoadFence()
		}
		e.gs.ClausesExec++
		e.gs.ClauseSizeHist[s.histIdx]++
		e.gs.NopInstr += act * s.padNops
		if s.body != nil {
			if err := s.body(e, w, act); err != nil {
				return warpDone, err
			}
		}
		if s.brCF {
			// The folded unconditional BR still counts as an executed
			// control-flow instruction, as execTerminal would bump it.
			e.gs.CFInstr += act
		}
	}
	if sc.term != nil {
		return e.execTerminal(w, sc.term, sc.next, nil, act)
	}
	return e.endFallthrough(w, sc.next, nil, act)
}

// execClause runs all slots of the current clause on all active lanes and
// applies the clause-terminal control flow. Clause temporaries are
// (semantically) dead across clause boundaries.
//
//simlint:commit -- commits the per-clause instruction mix
func (e *execContext) execClause(w *warp) (warpStatus, error) {
	ci := w.pc
	c := &e.prog.Clauses[ci]
	act := uint64(w.activeCount())

	e.gs.ClausesExec++
	e.gs.ClauseSizeHist[min(c.Slots(), stats.MaxClauseSlots)]++
	// Unfilled issue slots: a clause of N slots issues in ceil(N/2) tuples;
	// the odd slot is an architecturally empty issue slot, on top of any
	// explicit scheduler padding NOPs. Both show up as "empty slots" in
	// the instruction mix (Fig 11).
	e.gs.NopInstr += act * uint64(c.Tuples()*2-c.Slots())

	var blk *stats.CFGBlock
	if e.cfg != nil {
		blk = e.cfg.Block(c.Addr)
		blk.ThreadsIn += act
		blk.WarpsIn++
	}
	if e.trace != nil {
		e.trace.clauseEntry(e.wgid, w.gid[0][0], ci, c.Addr, int(act))
	}

	next := ci + 1 // fallthrough

	// Warp-batched fast path: one fused closure executes the whole
	// straight-line body for all lanes, then the shared terminal handling
	// applies the clause's control flow (skipped under tracing, which
	// needs per-instruction visibility).
	if e.eng == EngineWarp && e.prog.warp != nil && e.trace == nil {
		wc := &e.prog.warp.clauses[ci]
		if wc.body != nil {
			if err := wc.body(e, w, act); err != nil {
				return warpDone, err
			}
		}
		if wc.term != nil {
			return e.execTerminal(w, wc.term, next, blk, act)
		}
		return e.endFallthrough(w, next, blk, act)
	}

	for ii := range c.Instrs {
		in := &c.Instrs[ii]
		if IsClauseTerminal(in.Op) {
			return e.execTerminal(w, in, next, blk, act)
		}
		switch Classify(in.Op) {
		case ClassNop:
			e.gs.NopInstr += act
			continue
		case ClassArith:
			e.gs.ArithInstr += act
		case ClassLS:
			e.gs.LSInstr += act
		}

		// JIT fast path: pre-specialised closure with operand accessors
		// resolved at decode time (skipped under tracing).
		if e.eng == EngineJIT && e.prog.jit != nil && e.trace == nil {
			if op := e.prog.jit.clauses[ci][ii]; op != nil {
				for i := 0; i < w.lanes; i++ {
					if w.active[i] && !w.exited[i] {
						if err := op(e, w, i); err != nil {
							return warpDone, err
						}
					}
				}
				continue
			}
		}
		for i := 0; i < w.lanes; i++ {
			if !w.active[i] || w.exited[i] {
				continue
			}
			if err := e.execLane(w, i, in); err != nil {
				return warpDone, err
			}
		}
	}

	return e.endFallthrough(w, next, blk, act)
}

// endFallthrough closes a clause with no terminal instruction.
func (e *execContext) endFallthrough(w *warp, next int, blk *stats.CFGBlock, act uint64) (warpStatus, error) {
	if blk != nil {
		blk.Terminator = "fallthrough"
		blk.Out[e.clauseAddr(next)] += act
	}
	w.pc = next
	return warpRunning, nil
}

// execTerminal applies a clause-terminal control-flow instruction. Both
// the per-instruction engines and the fused warp path end clauses here, so
// divergence, reconvergence-stack and CFG bookkeeping are engine-agnostic.
//
//simlint:commit -- commits control-flow and divergence counters
func (e *execContext) execTerminal(w *warp, in *Instr, next int, blk *stats.CFGBlock, act uint64) (warpStatus, error) {
	e.gs.CFInstr += act

	switch in.Op {
	case OpBARRIER:
		// The guest-fence side of the barrier is issued once per
		// generation at the rendezvous in runWorkgroup, not per warp:
		// a per-warp RMW on the shared fence word would ping-pong its
		// cache line across every core on barrier-heavy kernels.
		if blk != nil {
			blk.Terminator = "barrier"
			blk.Out[e.clauseAddr(next)] += act
		}
		w.pc = next
		return warpAtBarrier, nil

	case OpRET:
		for i := 0; i < w.lanes; i++ {
			if w.active[i] && !w.exited[i] {
				w.exited[i] = true
				w.active[i] = false
			}
		}
		if blk != nil {
			blk.Terminator = "ret"
			blk.ExitCount += act
		}
		w.pc = next
		return warpDone, nil

	case OpBR:
		tgt := in.BranchTarget()
		if blk != nil {
			blk.Terminator = "br"
			blk.Out[e.clauseAddr(tgt)] += act
		}
		w.pc = tgt
		return warpRunning, nil

	case OpBRC:
		e.gs.Branches++
		tgt, rejoin := in.BranchTarget(), in.Reconverge()
		var taken, fall [WarpSize]bool
		nTaken, nFall := 0, 0
		for i := 0; i < w.lanes; i++ {
			if !w.active[i] || w.exited[i] {
				continue
			}
			if e.read(w, i, in.A, in) != 0 {
				taken[i] = true
				nTaken++
			} else {
				fall[i] = true
				nFall++
			}
		}
		if blk != nil {
			blk.Terminator = "brc"
			if nTaken > 0 {
				blk.Out[e.clauseAddr(tgt)] += uint64(nTaken)
			}
			if nFall > 0 {
				blk.Out[e.clauseAddr(next)] += uint64(nFall)
			}
		}
		switch {
		case nFall == 0:
			w.pc = tgt
		case nTaken == 0:
			w.pc = next
		default:
			e.gs.DivergentBranches++
			if blk != nil {
				blk.Diverged++
			}
			w.stack = append(w.stack, divFrame{
				rejoin:   rejoin,
				pendPC:   tgt,
				pendMask: taken,
				joinMask: w.active,
			})
			w.active = fall
			w.pc = next
		}
		return warpRunning, nil
	}

	// Unreachable: IsClauseTerminal admits exactly the four cases above.
	w.pc = next
	return warpRunning, nil
}

// clauseAddr maps a clause index to its binary address for CFG reporting;
// "one past the end" maps to a synthetic exit address.
func (e *execContext) clauseAddr(idx int) uint64 {
	if idx < len(e.prog.Clauses) {
		return e.prog.Clauses[idx].Addr
	}
	return 0xFFFF
}

func f32(v uint64) float32   { return math.Float32frombits(uint32(v)) }
func fbits(f float32) uint64 { return uint64(math.Float32bits(f)) }

// read evaluates a source operand for one lane, recording the data-access
// breakdown (Fig 12).
//
//simlint:commit -- commits the operand-read breakdown (Fig 12)
func (e *execContext) read(w *warp, lane int, o uint8, in *Instr) uint64 {
	kind, idx := OperKind(o)
	switch kind {
	case OperGRF:
		e.gs.GRFRead++
		return w.regs[idx][lane]
	case OperTemp:
		e.gs.TempAcc++
		return w.temps[idx][lane]
	case OperUniform:
		e.gs.ConstRead++
		if int(idx) < len(e.uniforms) {
			return e.uniforms[idx]
		}
		return 0
	default:
		switch idx {
		case SpecImm:
			e.gs.ROMRead++
			return uint64(in.Imm)
		case SpecROM:
			e.gs.ROMRead++
			if int(in.Imm) < len(e.prog.ROM) {
				return e.prog.ROM[in.Imm]
			}
			return 0
		case SpecZero:
			return 0
		case SpecGIDX, SpecGIDY, SpecGIDZ:
			return uint64(w.gid[lane][idx-SpecGIDX])
		case SpecLIDX, SpecLIDY, SpecLIDZ:
			return uint64(w.lid[lane][idx-SpecLIDX])
		case SpecWGIDX, SpecWGIDY, SpecWGIDZ:
			return uint64(e.wgid[idx-SpecWGIDX])
		case SpecGSZX, SpecGSZY, SpecGSZZ:
			return uint64(e.gsz[idx-SpecGSZX])
		case SpecLSZX, SpecLSZY, SpecLSZZ:
			return uint64(e.lsz[idx-SpecLSZX])
		}
		return 0
	}
}

// write stores a result operand for one lane.
//
//simlint:commit -- commits the operand-write breakdown (Fig 12)
func (e *execContext) write(w *warp, lane int, o uint8, v uint64) {
	kind, idx := OperKind(o)
	switch kind {
	case OperGRF:
		e.gs.GRFWrite++
		w.regs[idx][lane] = v
	case OperTemp:
		e.gs.TempAcc++
		w.temps[idx][lane] = v
	}
}

// execLane executes a non-control, non-barrier instruction for one lane.
//
//simlint:commit -- commits per-lane load/store counters
func (e *execContext) execLane(w *warp, lane int, in *Instr) error {
	switch in.Op {
	case OpLDG, OpLDG64, OpLDGB:
		addr := e.read(w, lane, in.A, in) + uint64(int64(int32(in.Imm)))
		size := 4
		switch in.Op {
		case OpLDG64:
			size = 8
		case OpLDGB:
			size = 1
		}
		e.gs.GlobalLS++
		e.gs.MainMemAcc++
		v, err := e.walker.Load(addr, size, mem.Read)
		if err != nil {
			return err
		}
		e.write(w, lane, in.Dst, v)
		if e.trace != nil {
			e.trace.inst(lane, w.gid[lane], in, v, true)
		}
		return nil

	case OpSTG, OpSTG64, OpSTGB:
		addr := e.read(w, lane, in.A, in) + uint64(int64(int32(in.Imm)))
		v := e.read(w, lane, in.B, in)
		size := 4
		switch in.Op {
		case OpSTG64:
			size = 8
		case OpSTGB:
			size = 1
		}
		e.gs.GlobalLS++
		e.gs.MainMemAcc++
		if e.trace != nil {
			// Preserve the traced-mode ordering exactly: a translation
			// fault is never traced, a store that reaches the bus is.
			pa, fault := e.walker.Translate(addr, mem.Write)
			if fault != nil {
				return fault
			}
			e.trace.inst(lane, w.gid[lane], in, v, true)
			// Honour the walker's access mode: the store must stay on the
			// same plain/atomic policy as every other access of this core.
			if e.walker.Shared() {
				return e.bus.AtomicWrite(pa, size, v)
			}
			//simlint:allow sharedmem -- plain-mode MMIO fallback: walker is unshared, so this core owns the access policy
			return e.bus.Write(pa, size, v)
		}
		return e.walker.Store(addr, size, v)

	case OpLDL:
		off := e.read(w, lane, in.A, in) + uint64(int64(int32(in.Imm)))
		e.gs.LocalLS++
		e.gs.LocalAcc++
		v, err := e.local.load(off)
		if err != nil {
			return err
		}
		e.write(w, lane, in.Dst, uint64(v))
		return nil

	case OpSTL:
		off := e.read(w, lane, in.A, in) + uint64(int64(int32(in.Imm)))
		v := e.read(w, lane, in.B, in)
		e.gs.LocalLS++
		e.gs.LocalAcc++
		return e.local.store(off, uint32(v))
	}

	a := e.read(w, lane, in.A, in)
	var b uint64
	switch in.Op {
	case OpMOV, OpI2F, OpF2I, OpFABS, OpFNEG, OpFSQRT, OpFEXP, OpFLOG,
		OpFSIN, OpFCOS, OpFFLOOR:
		// unary: B unused
	default:
		b = e.read(w, lane, in.B, in)
	}

	var r uint64
	switch in.Op {
	case OpMOV:
		r = a
	case OpI2F:
		r = fbits(float32(int32(a)))
	case OpF2I:
		r = uint64(uint32(int32(f32(a))))
	case OpIADD:
		r = uint64(uint32(a) + uint32(b))
	case OpISUB:
		r = uint64(uint32(a) - uint32(b))
	case OpIMUL:
		r = uint64(uint32(a) * uint32(b))
	case OpIDIV:
		if int32(b) == 0 {
			r = 0
		} else if int32(a) == math.MinInt32 && int32(b) == -1 {
			r = uint64(uint32(a))
		} else {
			r = uint64(uint32(int32(a) / int32(b)))
		}
	case OpIMOD:
		if int32(b) == 0 {
			r = 0
		} else if int32(a) == math.MinInt32 && int32(b) == -1 {
			r = 0
		} else {
			r = uint64(uint32(int32(a) % int32(b)))
		}
	case OpSHL:
		r = uint64(uint32(a) << (uint32(b) & 31))
	case OpSHR:
		r = uint64(uint32(a) >> (uint32(b) & 31))
	case OpSAR:
		r = uint64(uint32(int32(a) >> (uint32(b) & 31)))
	case OpAND:
		r = a & b
	case OpOR:
		r = a | b
	case OpXOR:
		r = a ^ b
	case OpIMIN:
		if int32(a) < int32(b) {
			r = uint64(uint32(a))
		} else {
			r = uint64(uint32(b))
		}
	case OpIMAX:
		if int32(a) > int32(b) {
			r = uint64(uint32(a))
		} else {
			r = uint64(uint32(b))
		}
	case OpADD64:
		r = a + b
	case OpMUL64:
		r = a * b
	case OpFADD:
		r = fbits(f32(a) + f32(b))
	case OpFSUB:
		r = fbits(f32(a) - f32(b))
	case OpFMUL:
		r = fbits(f32(a) * f32(b))
	case OpFDIV:
		r = fbits(f32(a) / f32(b))
	case OpFMA:
		acc := e.read(w, lane, in.Dst, in)
		r = fbits(f32(acc) + f32(a)*f32(b))
	case OpFMIN:
		r = fbits(float32(math.Min(float64(f32(a)), float64(f32(b)))))
	case OpFMAX:
		r = fbits(float32(math.Max(float64(f32(a)), float64(f32(b)))))
	case OpFABS:
		r = fbits(float32(math.Abs(float64(f32(a)))))
	case OpFNEG:
		r = fbits(-f32(a))
	case OpFSQRT:
		r = fbits(float32(math.Sqrt(float64(f32(a)))))
	case OpFEXP:
		r = fbits(float32(math.Exp(float64(f32(a)))))
	case OpFLOG:
		r = fbits(float32(math.Log(float64(f32(a)))))
	case OpFSIN:
		r = fbits(float32(math.Sin(float64(f32(a)))))
	case OpFCOS:
		r = fbits(float32(math.Cos(float64(f32(a)))))
	case OpFFLOOR:
		r = fbits(float32(math.Floor(float64(f32(a)))))
	case OpICMPEQ:
		r = b2u(uint32(a) == uint32(b))
	case OpICMPNE:
		r = b2u(uint32(a) != uint32(b))
	case OpICMPLT:
		r = b2u(int32(a) < int32(b))
	case OpICMPLE:
		r = b2u(int32(a) <= int32(b))
	case OpUCMPLT:
		r = b2u(uint32(a) < uint32(b))
	case OpFCMPEQ:
		r = b2u(f32(a) == f32(b))
	case OpFCMPLT:
		r = b2u(f32(a) < f32(b))
	case OpFCMPLE:
		r = b2u(f32(a) <= f32(b))
	case OpSEL:
		pred := e.read(w, lane, in.Dst, in)
		if pred != 0 {
			r = a
		} else {
			r = b
		}
	default:
		return fmt.Errorf("gpu: unimplemented opcode %v", in.Op)
	}
	e.write(w, lane, in.Dst, r)
	if e.trace != nil {
		e.trace.inst(lane, w.gid[lane], in, r, true)
	}
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
