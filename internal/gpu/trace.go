package gpu

import (
	"fmt"
	"io"
	"sync"
)

// traceSink serialises instruction-trace records from concurrent workers.
// The paper validates its GPU against Arm's reference simulator using "an
// instruction tracing mode, where individual instructions and their
// effects are observable" (§V-A2); this is that mode. Enable it only for
// small kernels — it writes one line per executed instruction per lane.
type traceSink struct {
	mu sync.Mutex
	w  io.Writer
}

// SetTrace enables (non-nil) or disables (nil) instruction tracing.
// Not safe to flip while a job is running.
func (d *Device) SetTrace(w io.Writer) {
	if w == nil {
		d.trace = nil
		return
	}
	d.trace = &traceSink{w: w}
}

func (t *traceSink) clauseEntry(wgid [3]uint32, warpLane0 uint32, clauseIdx int, addr uint64, active int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "wg=(%d,%d,%d) warp@%d clause=%d addr=%#x active=%d\n",
		wgid[0], wgid[1], wgid[2], warpLane0, clauseIdx, addr, active)
}

func (t *traceSink) inst(lane int, gid [3]uint32, in *Instr, result uint64, hasResult bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if hasResult {
		fmt.Fprintf(t.w, "  t(%d,%d,%d)/%d  %-40s => %#x\n",
			gid[0], gid[1], gid[2], lane, in.String(), result)
		return
	}
	fmt.Fprintf(t.w, "  t(%d,%d,%d)/%d  %s\n", gid[0], gid[1], gid[2], lane, in.String())
}
