package gpu_test

import (
	"bytes"
	"math/rand"
	"testing"

	"mobilesim/internal/gpu"
)

// Three-way differential engine testing. The closure-JIT and the
// warp-batched engines must both be observationally identical to the
// interpreter: same guest memory after the job, same statistics counters,
// same faults. These tests generate random but well-formed kernels
// (random ALU/memory/divergence mixes over disjoint per-thread data,
// plus misaligned and page-crossing accesses that force the warp engine
// off its fused fast path) and execute each one under all three engines
// on fresh devices, comparing final guest memory and the full stats
// records against the interpreter reference.
// `go test` replays the seed corpus; `go test -fuzz=FuzzDifferentialEngines`
// explores further (CI runs a short-budget smoke of exactly that).

// diffBinOps are the two-source opcodes the generator draws from — every
// closure-compiled binary op plus the accumulator forms (FMA, SEL), so
// mixed dispatch within one clause is exercised.
var diffBinOps = []gpu.Opcode{
	gpu.OpIADD, gpu.OpISUB, gpu.OpIMUL, gpu.OpIDIV, gpu.OpIMOD,
	gpu.OpSHL, gpu.OpSHR, gpu.OpSAR, gpu.OpAND, gpu.OpOR, gpu.OpXOR,
	gpu.OpIMIN, gpu.OpIMAX, gpu.OpADD64, gpu.OpMUL64,
	gpu.OpFADD, gpu.OpFSUB, gpu.OpFMUL, gpu.OpFDIV, gpu.OpFMIN, gpu.OpFMAX,
	gpu.OpICMPEQ, gpu.OpICMPNE, gpu.OpICMPLT, gpu.OpICMPLE, gpu.OpUCMPLT,
	gpu.OpFCMPEQ, gpu.OpFCMPLT, gpu.OpFCMPLE,
	gpu.OpFMA, gpu.OpSEL,
}

var diffUnOps = []gpu.Opcode{
	gpu.OpMOV, gpu.OpI2F, gpu.OpF2I, gpu.OpFABS, gpu.OpFNEG,
	gpu.OpFSQRT, gpu.OpFEXP, gpu.OpFLOG, gpu.OpFSIN, gpu.OpFCOS, gpu.OpFFLOOR,
}

// diffOutStride is the per-thread slice of the output buffer.
const diffOutStride = 16

// diffScratchOff is the in-page offset of the page-crossing scratch store:
// a 4-byte STG here spans the first scratch page boundary.
const diffScratchOff = 4094

// genDifferentialProgram builds a random kernel for the differential
// campaign. Uniforms: c0 = &in, c1 = &out, c2 = scalar, c3 = &scratch.
// Every thread works on its own in/out slice (stride 8 and diffOutStride
// bytes), so the kernel is data-race-free and its output
// schedule-independent; the optional page-crossing scratch store writes
// the same constant from every thread, so it too is deterministic.
func genDifferentialProgram(rnd *rand.Rand, nALU int, withLocal, withDiverge, withMisalign, withCross, withStride bool) *gpu.Program {
	// Registers: r0..r2 address setup, r3..r5 loaded inputs, r6 local
	// offset, r7 parity, r8..r20 scratch written by the random section,
	// r21 output fold, r22..r25 misaligned/crossing loads.
	src := []uint8{gpu.R(3), gpu.R(4), gpu.R(5), gpu.C(2), gpu.S(gpu.SpecGIDX), gpu.S(gpu.SpecLSZX)}
	operand := func() uint8 {
		if rnd.Intn(8) == 0 {
			return gpu.Imm
		}
		return src[rnd.Intn(len(src))]
	}
	var nextDst = 8
	dst := func() uint8 {
		r := gpu.R(nextDst)
		if nextDst < 20 {
			nextDst++
		}
		return r
	}
	randALU := func() gpu.Instr {
		d := dst()
		var in gpu.Instr
		if rnd.Intn(4) == 0 {
			in = gpu.Instr{Op: diffUnOps[rnd.Intn(len(diffUnOps))], Dst: d, A: operand(), Imm: rnd.Uint32()}
		} else {
			in = gpu.Instr{Op: diffBinOps[rnd.Intn(len(diffBinOps))], Dst: d, A: operand(), B: operand(), Imm: rnd.Uint32()}
		}
		src = append(src, d)
		return in
	}

	setup := gpu.Clause{Instrs: []gpu.Instr{
		{Op: gpu.OpSHL, Dst: gpu.R(0), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 3},
		{Op: gpu.OpADD64, Dst: gpu.R(1), A: gpu.C(0), B: gpu.R(0)},
		{Op: gpu.OpSHL, Dst: gpu.R(0), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 4},
		{Op: gpu.OpADD64, Dst: gpu.R(2), A: gpu.C(1), B: gpu.R(0)},
		{Op: gpu.OpLDG64, Dst: gpu.R(3), A: gpu.R(1)},
		{Op: gpu.OpLDG, Dst: gpu.R(4), A: gpu.R(1), Imm: 4},
		{Op: gpu.OpLDGB, Dst: gpu.R(5), A: gpu.R(1), Imm: 3},
		{Op: gpu.OpSHL, Dst: gpu.R(6), A: gpu.S(gpu.SpecLIDX), B: gpu.Imm, Imm: 2},
		{Op: gpu.OpAND, Dst: gpu.R(7), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 1},
	}}
	prog := &gpu.Program{RegCount: 26, Uniforms: 4, Clauses: []gpu.Clause{setup}}

	if withMisalign {
		// Misaligned global loads: in-page but not naturally aligned, so
		// the warp engine's fused LDG path must reproduce the walker's
		// unaligned fast-path behaviour exactly. The LDG64 at +3 reads
		// into the next thread's (read-only) input slice.
		prog.Clauses = append(prog.Clauses, gpu.Clause{Instrs: []gpu.Instr{
			{Op: gpu.OpLDG, Dst: gpu.R(22), A: gpu.R(1), Imm: 1},
			{Op: gpu.OpLDG64, Dst: gpu.R(23), A: gpu.R(1), Imm: 3},
		}})
		src = append(src, gpu.R(22), gpu.R(23))
	}

	// Random ALU section, split into clauses of 1..6 slots with the odd
	// NOP thrown in (empty-slot accounting must match too).
	var cur []gpu.Instr
	flush := func() {
		if len(cur) > 0 {
			prog.Clauses = append(prog.Clauses, gpu.Clause{Instrs: cur})
			cur = nil
		}
	}
	for i := 0; i < nALU; i++ {
		if rnd.Intn(10) == 0 {
			cur = append(cur, gpu.Instr{Op: gpu.OpNOP})
		}
		cur = append(cur, randALU())
		if len(cur) >= 1+rnd.Intn(6) {
			flush()
		}
	}
	flush()

	if withStride {
		// Lane-strided global loads through the warp engine's coalesced
		// batch path and off it: stride 68 keeps a whole warp's span well
		// inside one page (batched), stride 1020 makes some warps' spans
		// cross a page boundary (per-lane fallback) — data and counters
		// must be identical either way. Addresses stay inside the input
		// allocation's page of slack (bounded by gid and by gid&7).
		d1, d2 := dst(), dst()
		prog.Clauses = append(prog.Clauses, gpu.Clause{Instrs: []gpu.Instr{
			{Op: gpu.OpIMUL, Dst: gpu.T(0), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 68},
			{Op: gpu.OpADD64, Dst: gpu.T(0), A: gpu.C(0), B: gpu.T(0)},
			{Op: gpu.OpLDG, Dst: d1, A: gpu.T(0)},
			{Op: gpu.OpAND, Dst: gpu.T(1), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 7},
			{Op: gpu.OpIMUL, Dst: gpu.T(1), A: gpu.T(1), B: gpu.Imm, Imm: 1020},
			{Op: gpu.OpADD64, Dst: gpu.T(1), A: gpu.C(0), B: gpu.T(1)},
			{Op: gpu.OpLDG, Dst: d2, A: gpu.T(1)},
		}})
		src = append(src, d1, d2)
	}

	if withCross {
		// Page-crossing accesses: the fixed-offset LDG64 straddles the
		// input buffer's first page boundary (every thread loads the same
		// address), and the STG straddles the scratch buffer's — both
		// must fall off the walker's single-page fast path identically
		// under every engine. The store writes the same uniform constant
		// from every thread, so the race is benign and the result
		// deterministic.
		prog.Clauses = append(prog.Clauses, gpu.Clause{Instrs: []gpu.Instr{
			{Op: gpu.OpADD64, Dst: gpu.R(24), A: gpu.C(0), B: gpu.Imm, Imm: 4092},
			{Op: gpu.OpLDG64, Dst: gpu.R(25), A: gpu.R(24)},
			{Op: gpu.OpADD64, Dst: gpu.R(24), A: gpu.C(3), B: gpu.Imm, Imm: diffScratchOff},
			{Op: gpu.OpSTG, A: gpu.R(24), B: gpu.C(2)},
		}})
		src = append(src, gpu.R(25))
	}

	if withLocal {
		// Per-thread local slot traffic, with a barrier between store and
		// load (also a guest memory fence).
		prog.Clauses = append(prog.Clauses,
			gpu.Clause{Instrs: []gpu.Instr{
				{Op: gpu.OpSTL, A: gpu.R(6), B: gpu.R(4)},
				{Op: gpu.OpBARRIER},
			}},
			gpu.Clause{Instrs: []gpu.Instr{
				{Op: gpu.OpLDL, Dst: dst(), A: gpu.R(6)},
			}},
		)
		src = append(src, gpu.R(nextDst-1))
	}

	if withDiverge {
		// clause d:   brc r7 -> taken, rejoin
		// clause d+1: fall path, br rejoin
		// clause d+2: taken path, falls through
		// clause d+3: rejoin (the final store clause below)
		d := len(prog.Clauses)
		prog.Clauses = append(prog.Clauses,
			gpu.Clause{Instrs: []gpu.Instr{
				{Op: gpu.OpBRC, A: gpu.R(7), Imm: gpu.BranchImm(d+2, d+3)},
			}},
			gpu.Clause{Instrs: []gpu.Instr{
				{Op: gpu.OpIADD, Dst: gpu.R(8), A: gpu.R(8), B: gpu.Imm, Imm: 0x101},
				{Op: gpu.OpBR, Imm: uint32(d + 3)},
			}},
			gpu.Clause{Instrs: []gpu.Instr{
				{Op: gpu.OpFMUL, Dst: gpu.R(8), A: gpu.R(8), B: gpu.Imm, Imm: 0x40490FDB},
			}},
		)
	}

	// Final clause: fold two random live registers into the output slice
	// alongside the raw loads, then terminate. The misaligned variant adds
	// in-slice stores that are not naturally aligned.
	a, b := src[rnd.Intn(len(src))], src[rnd.Intn(len(src))]
	final := []gpu.Instr{
		{Op: gpu.OpXOR, Dst: gpu.R(21), A: a, B: gpu.R(8)},
		{Op: gpu.OpSTG64, A: gpu.R(2), B: gpu.R(21)},
		{Op: gpu.OpSTG, A: gpu.R(2), B: b, Imm: 8},
		{Op: gpu.OpSTGB, A: gpu.R(2), B: gpu.R(5), Imm: 12},
	}
	if withMisalign {
		final = append(final,
			gpu.Instr{Op: gpu.OpSTG, A: gpu.R(2), B: gpu.R(22), Imm: 9},
			gpu.Instr{Op: gpu.OpSTGB, A: gpu.R(2), B: gpu.R(23), Imm: 15},
		)
	}
	final = append(final, gpu.Instr{Op: gpu.OpRET})
	prog.Clauses = append(prog.Clauses, gpu.Clause{Instrs: final})
	for i := range prog.Clauses {
		prog.Clauses[i].Addr = uint64(i) * 0x10
	}
	return prog
}

// runDifferentialEngine executes prog on a fresh device with the given
// engine and returns the output buffer plus the stats records.
func runDifferentialEngine(t *testing.T, eng gpu.Engine, prog *gpu.Program, in []byte, global, local [3]uint32, localBytes uint32) ([]byte, any) {
	t.Helper()
	cfg := gpu.DefaultConfig()
	cfg.Engine = eng
	r := newRig(t, cfg)

	// The input allocation carries a page of slack so the fixed-offset
	// page-crossing load (withCross) and the +3 misaligned LDG64 of the
	// last thread always hit mapped, deterministically zeroed memory.
	inVA := r.allocBuf(len(in) + 8192)
	if err := r.bus.WriteBytes(inVA, in); err != nil {
		t.Fatal(err)
	}
	outLen := int(global[0]) * diffOutStride
	outVA := r.allocBuf(outLen)
	scratchVA := r.allocBuf(8192)
	progVA, progSize := r.loadProgram(prog)

	desc := &gpu.JobDescriptor{
		JobType:    gpu.JobTypeCompute,
		GlobalSize: global,
		LocalSize:  local,
		ShaderVA:   progVA,
		ShaderSize: progSize,
	}
	if localBytes > 0 {
		desc.LocalMemBytes = localBytes
		desc.LocalMemVA = r.allocBuf(int(localBytes) * cfg.ShaderCores)
	}
	raw := r.submit(desc, []uint64{inVA, outVA, 0x1234_5678, scratchVA})
	if raw&gpu.IRQJobDone == 0 {
		t.Fatalf("engine %v: job fault rawstat=%#x", eng, raw)
	}
	out := make([]byte, outLen)
	if err := r.bus.ReadBytes(outVA, out); err != nil {
		t.Fatal(err)
	}
	// Fold the crossing-store bytes into the compared output so the
	// scratch page is part of the differential too.
	scr := make([]byte, 8)
	if err := r.bus.ReadBytes(scratchVA+diffScratchOff-2, scr); err != nil {
		t.Fatal(err)
	}
	out = append(out, scr...)
	gs, sys := r.dev.Stats()
	// Control-register traffic counts the harness's own IRQ polling loop,
	// whose iteration count is host-timing dependent — it says nothing
	// about the engines, so it is excluded from the differential.
	sys.CtrlRegReads, sys.CtrlRegWrites = 0, 0
	return out, [2]any{gs, sys}
}

// runDifferential is one differential trial: generate once, run all three
// engines, require guest memory and statistics identical to the
// interpreter reference.
func runDifferential(t *testing.T, seed uint64, threadsSel, localSel, nALUSel uint8) {
	rnd := rand.New(rand.NewSource(int64(seed)))
	lsz := uint32(1 + localSel%8)
	gsz := lsz * uint32(1+threadsSel%12)
	nALU := int(nALUSel % 48)
	withLocal := seed%3 == 0
	withDiverge := seed%2 == 0
	withMisalign := seed%5 == 0
	withCross := seed%4 == 0
	withStride := seed%6 == 0

	prog := genDifferentialProgram(rnd, nALU, withLocal, withDiverge, withMisalign, withCross, withStride)
	var localBytes uint32
	if withLocal {
		localBytes = 4 * lsz
	}
	in := make([]byte, int(gsz)*8)
	rnd.Read(in)

	global, local := [3]uint32{gsz, 1, 1}, [3]uint32{lsz, 1, 1}
	outRef, statsRef := runDifferentialEngine(t, gpu.EngineInterp, prog, in, global, local, localBytes)
	for _, eng := range []gpu.Engine{gpu.EngineJIT, gpu.EngineWarp} {
		out, stats := runDifferentialEngine(t, eng, prog, in, global, local, localBytes)
		if !bytes.Equal(outRef, out) {
			for i := range outRef {
				if outRef[i] != out[i] {
					t.Fatalf("guest memory diverged at out[%d]: interp %#x, %v %#x\nprogram:\n%s",
						i, outRef[i], eng, out[i], prog.Disassemble())
				}
			}
		}
		if statsRef != stats {
			t.Fatalf("stats diverged:\ninterp: %+v\n%v: %+v\nprogram:\n%s", statsRef, eng, stats, prog.Disassemble())
		}
	}
}

// FuzzDifferentialEngines is the fuzz entry point. The seed corpus doubles
// as the always-on regression suite: plain `go test` replays every seed
// kernel under all three engines. Seeds are chosen so every generator
// feature combination — divergence inside warp-fused programs, partial
// tail warps (lsz not a multiple of WarpSize), misaligned and
// page-crossing LDG/STG, and lane-strided batches that straddle the
// coalescing fallback boundary — appears in the corpus.
func FuzzDifferentialEngines(f *testing.F) {
	for seed := uint64(0); seed < 40; seed++ {
		f.Add(seed, uint8(seed*7), uint8(seed*3), uint8(16+seed))
	}
	f.Fuzz(func(t *testing.T, seed uint64, threadsSel, localSel, nALUSel uint8) {
		runDifferential(t, seed, threadsSel, localSel, nALUSel)
	})
}
