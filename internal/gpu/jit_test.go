package gpu_test

import (
	"math/rand"
	"testing"

	"mobilesim/internal/gpu"
)

// jitConfig enables the closure-JIT execution mode.
func jitConfig() gpu.Config {
	cfg := gpu.DefaultConfig()
	cfg.Engine = gpu.EngineJIT
	return cfg
}

func TestJITVectorAddMatchesInterpreter(t *testing.T) {
	run := func(cfg gpu.Config) ([]int32, uint64) {
		r := newRig(t, cfg)
		const n = 512
		a, b, out := r.allocBuf(4*n), r.allocBuf(4*n), r.allocBuf(4*n)
		av, bv := make([]int32, n), make([]int32, n)
		rnd := rand.New(rand.NewSource(5))
		for i := range av {
			av[i], bv[i] = rnd.Int31(), rnd.Int31()
		}
		r.writeInts(a, av)
		r.writeInts(b, bv)
		progVA, progSize := r.loadProgram(vecAddProgram())
		raw := r.submit(&gpu.JobDescriptor{
			JobType:    gpu.JobTypeCompute,
			GlobalSize: [3]uint32{n, 1, 1},
			LocalSize:  [3]uint32{64, 1, 1},
			ShaderVA:   progVA,
			ShaderSize: progSize,
		}, []uint64{a, b, out})
		if raw&gpu.IRQJobDone == 0 {
			t.Fatalf("rawstat=%#x", raw)
		}
		gs, _ := r.dev.Stats()
		return r.readInts(out, n), gs.TotalInstr()
	}
	interpOut, interpInstr := run(gpu.DefaultConfig())
	jitOut, jitInstr := run(jitConfig())
	for i := range interpOut {
		if interpOut[i] != jitOut[i] {
			t.Fatalf("JIT diverges at %d: %d vs %d", i, jitOut[i], interpOut[i])
		}
	}
	// Same architectural work: the JIT changes host cost, not semantics
	// or instrumentation.
	if interpInstr != jitInstr {
		t.Errorf("instruction counts differ: interp %d vs jit %d", interpInstr, jitInstr)
	}
}

func TestJITDivergenceAndLoops(t *testing.T) {
	// Run the divergence and loop programs under JIT and check results.
	r := newRig(t, jitConfig())
	const n = 64
	out := r.allocBuf(4 * n)
	progVA, progSize := r.loadProgram(divergeProgram())
	raw := r.submit(&gpu.JobDescriptor{
		JobType:    gpu.JobTypeCompute,
		GlobalSize: [3]uint32{n, 1, 1},
		LocalSize:  [3]uint32{16, 1, 1},
		ShaderVA:   progVA,
		ShaderSize: progSize,
	}, []uint64{out})
	if raw&gpu.IRQJobDone == 0 {
		t.Fatalf("rawstat=%#x", raw)
	}
	got := r.readInts(out, n)
	for i := range got {
		want := int32(1)
		if i%2 == 1 {
			want = 2
		}
		if got[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], want)
		}
	}

	out2 := r.allocBuf(4 * 32)
	loopVA, loopSize := r.loadProgram(loopProgram())
	raw = r.submit(&gpu.JobDescriptor{
		JobType:    gpu.JobTypeCompute,
		GlobalSize: [3]uint32{32, 1, 1},
		LocalSize:  [3]uint32{8, 1, 1},
		ShaderVA:   loopVA,
		ShaderSize: loopSize,
	}, []uint64{out2})
	if raw&gpu.IRQJobDone == 0 {
		t.Fatalf("loop rawstat=%#x", raw)
	}
	got = r.readInts(out2, 32)
	for i := range got {
		if want := int32(i * (i + 1) / 2); got[i] != want {
			t.Fatalf("loop out[%d] = %d, want %d", i, got[i], want)
		}
	}
}

// TestJITFuzzALU re-runs the ALU fuzzing campaign through the JIT path.
func TestJITFuzzALU(t *testing.T) {
	r := newRig(t, jitConfig())
	aBuf, bBuf, outBuf := r.allocBuf(8), r.allocBuf(8), r.allocBuf(8)
	rnd := rand.New(rand.NewSource(99))
	for op, ref := range aluRefs {
		progVA, progSize := r.loadProgram(aluProgram(op))
		for i := 0; i < 20; i++ {
			a, b := rnd.Uint32(), rnd.Uint32()
			if err := r.bus.Write(aBuf, 4, uint64(a)); err != nil {
				t.Fatal(err)
			}
			if err := r.bus.Write(bBuf, 4, uint64(b)); err != nil {
				t.Fatal(err)
			}
			raw := r.submit(&gpu.JobDescriptor{
				JobType:    gpu.JobTypeCompute,
				GlobalSize: [3]uint32{1, 1, 1},
				LocalSize:  [3]uint32{1, 1, 1},
				ShaderVA:   progVA,
				ShaderSize: progSize,
			}, []uint64{aBuf, bBuf, outBuf})
			if raw&gpu.IRQJobDone == 0 {
				t.Fatalf("%v: rawstat=%#x", op, raw)
			}
			got, err := r.bus.Read(outBuf, 8)
			if err != nil {
				t.Fatal(err)
			}
			if want := ref(a, b); got != want && !bothNaN32(uint32(got), uint32(want)) {
				t.Errorf("jit %v(%#x,%#x) = %#x, want %#x", op, a, b, got, want)
			}
		}
	}
}
