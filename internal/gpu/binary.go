package gpu

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Binary program format. The compiler serialises shader programs into this
// layout; the runtime places the bytes in shared CPU/GPU memory and the
// GPU fetches and decodes them through its MMU, exactly as hardware
// consumes a Mali binary.
//
//	u32 magic 'BFR1'
//	u32 clauseCount
//	u32 regCount      GRF registers used (compiler report)
//	u32 uniformCount  constant-port slots consumed (argument words)
//	u32 romCount      embedded 64-bit constants
//	u32 flags         reserved
//	u64 romData[romCount]
//	per clause:
//	  u32 header: bits[7:0] instruction slots (1..16)
//	  u64 words[slots]
const binaryMagic = 0x31524642 // "BFR1"

// Clause is a decoded instruction bundle: up to MaxTuples tuples (2 slots
// each) that execute unconditionally once entered.
type Clause struct {
	Instrs []Instr
	// Addr is the clause's byte offset within the binary, used as the
	// block address in divergence CFGs (Fig 6 shows these addresses).
	Addr uint64
}

// Slots returns the number of instruction slots in the clause.
func (c *Clause) Slots() int { return len(c.Instrs) }

// Tuples returns the number of issue tuples (pairs of slots, rounded up).
// Static "arithmetic cycles" in compiler reports count tuples.
func (c *Clause) Tuples() int { return (len(c.Instrs) + 1) / 2 }

// Program is a fully decoded shader.
type Program struct {
	Clauses  []Clause
	ROM      []uint64
	RegCount int
	Uniforms int
	// Hash fingerprints the binary bytes for the decode cache.
	Hash uint64

	// jit and warp hold the lazily built engine artifacts (closure-JIT
	// and fused warp-batched forms). Each is compiled at most once per
	// decoded program, under the owning ProgramCache's lock when the
	// program is shared across sessions (see engine.go).
	jit  *jitProgram
	warp *warpProgram
}

// MaxTuples is the architectural clause limit in tuples.
const MaxTuples = 8

// Serialize encodes the program into the binary wire format.
func Serialize(p *Program) ([]byte, error) {
	for i, c := range p.Clauses {
		if len(c.Instrs) == 0 || len(c.Instrs) > MaxClauseSlotsBinary {
			return nil, fmt.Errorf("gpu: clause %d has %d slots (1..%d allowed)", i, len(c.Instrs), MaxClauseSlotsBinary)
		}
	}
	size := 24 + 8*len(p.ROM)
	for _, c := range p.Clauses {
		size += 4 + 8*len(c.Instrs)
	}
	out := make([]byte, 0, size)
	u32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		out = append(out, b[:]...)
	}
	u64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		out = append(out, b[:]...)
	}
	u32(binaryMagic)
	u32(uint32(len(p.Clauses)))
	u32(uint32(p.RegCount))
	u32(uint32(p.Uniforms))
	u32(uint32(len(p.ROM)))
	u32(0)
	for _, r := range p.ROM {
		u64(r)
	}
	for _, c := range p.Clauses {
		u32(uint32(len(c.Instrs)))
		for _, in := range c.Instrs {
			u64(in.Pack())
		}
	}
	return out, nil
}

// MaxClauseSlotsBinary is the instruction-slot limit per clause.
const MaxClauseSlotsBinary = MaxTuples * 2

// ParseBinary decodes a serialized shader. This is the GPU-side decode
// phase; Decoder caches its results so each program is decoded exactly
// once (§III-B3).
func ParseBinary(b []byte) (*Program, error) {
	if len(b) < 24 {
		return nil, fmt.Errorf("gpu: binary too short (%d bytes)", len(b))
	}
	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(b[off:]) }
	if u32(0) != binaryMagic {
		return nil, fmt.Errorf("gpu: bad binary magic %#x", u32(0))
	}
	clauseCount := int(u32(4))
	regCount := int(u32(8))
	uniforms := int(u32(12))
	romCount := int(u32(16))
	off := 24
	if len(b) < off+8*romCount {
		return nil, fmt.Errorf("gpu: truncated ROM table")
	}
	p := &Program{RegCount: regCount, Uniforms: uniforms}
	for i := 0; i < romCount; i++ {
		p.ROM = append(p.ROM, binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	for i := 0; i < clauseCount; i++ {
		if len(b) < off+4 {
			return nil, fmt.Errorf("gpu: truncated clause header %d", i)
		}
		slots := int(u32(off) & 0xFF)
		addr := uint64(off)
		off += 4
		if slots == 0 || slots > MaxClauseSlotsBinary {
			return nil, fmt.Errorf("gpu: clause %d has invalid slot count %d", i, slots)
		}
		if len(b) < off+8*slots {
			return nil, fmt.Errorf("gpu: truncated clause body %d", i)
		}
		c := Clause{Addr: addr, Instrs: make([]Instr, slots)}
		for j := 0; j < slots; j++ {
			c.Instrs[j] = Unpack(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
		p.Clauses = append(p.Clauses, c)
	}
	if off != len(b) {
		return nil, fmt.Errorf("gpu: %d trailing bytes in binary", len(b)-off)
	}
	// Validate branch targets so execution cannot escape the program.
	for i, c := range p.Clauses {
		for _, in := range c.Instrs {
			switch in.Op {
			case OpBR:
				if in.BranchTarget() >= len(p.Clauses) {
					return nil, fmt.Errorf("gpu: clause %d branches to missing clause %d", i, in.BranchTarget())
				}
			case OpBRC:
				if in.BranchTarget() >= len(p.Clauses) || in.Reconverge() > len(p.Clauses) {
					return nil, fmt.Errorf("gpu: clause %d conditional branch out of range", i)
				}
			}
		}
	}
	h := fnv.New64a()
	_, _ = h.Write(b)
	p.Hash = h.Sum64()
	return p, nil
}

// Disassemble renders the whole program, one clause per block.
func (p *Program) Disassemble() string {
	s := fmt.Sprintf("; %d clauses, %d GRF, %d uniforms, %d ROM words\n",
		len(p.Clauses), p.RegCount, p.Uniforms, len(p.ROM))
	for i, c := range p.Clauses {
		s += fmt.Sprintf("clause %d (@%#x, %d slots):\n", i, c.Addr, c.Slots())
		for _, in := range c.Instrs {
			s += "    " + in.String() + "\n"
		}
	}
	return s
}

// StaticCounts reports the compiler-visible static metrics used by the
// offline report (Fig 1): arithmetic/LS cycles and instruction counts.
// Address-generation ops (ADD64/MUL64) issue on the LS path, so they count
// toward LS cycles; hazard NOPs occupy arithmetic issue slots.
func (p *Program) StaticCounts() (arithCycles, arithInstrs, lsCycles, lsInstrs int) {
	for _, c := range p.Clauses {
		hasIssue := false
		for _, in := range c.Instrs {
			switch Classify(in.Op) {
			case ClassArith:
				arithInstrs++
				hasIssue = true
				if in.Op == OpADD64 || in.Op == OpMUL64 {
					lsCycles++
				}
			case ClassLS:
				lsInstrs++
				lsCycles++ // one LS-pipe issue per memory instruction
			case ClassNop:
				hasIssue = true // padding occupies issue slots
			}
		}
		if hasIssue {
			arithCycles += c.Tuples()
		}
	}
	return
}
