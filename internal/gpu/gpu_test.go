package gpu_test

import (
	"encoding/binary"
	"testing"
	"time"

	"mobilesim/internal/gpu"
	"mobilesim/internal/irq"
	"mobilesim/internal/mem"
	"mobilesim/internal/mmu"
)

// rig is a GPU test bench: memory, an identity-mapped GPU address space,
// and a started device. Tests drive the register interface directly,
// standing in for the kernel driver.
type rig struct {
	t     *testing.T
	bus   *mem.Bus
	alloc *mem.PageAllocator
	as    *mmu.AddressSpace
	intc  *irq.Controller
	dev   *gpu.Device
}

func newRig(t *testing.T, cfg gpu.Config) *rig {
	t.Helper()
	bus := mem.NewBus(mem.NewRAM(0, 64<<20))
	alloc, err := mem.NewPageAllocator(1<<20, 40<<20)
	if err != nil {
		t.Fatal(err)
	}
	as, err := mmu.NewAddressSpace(bus, alloc)
	if err != nil {
		t.Fatal(err)
	}
	intc := irq.New()
	intc.Enable(irq.LineGPU)
	dev := gpu.NewDevice(cfg, bus, intc, irq.LineGPU)
	dev.Start()
	t.Cleanup(dev.Close)

	r := &rig{t: t, bus: bus, alloc: alloc, as: as, intc: intc, dev: dev}
	// Program the address space and unmask interrupts, as the driver would.
	r.wr(gpu.RegAS0Transtab, as.Root())
	r.wr(gpu.RegAS0Command, 1)
	r.wr(gpu.RegIRQMask, gpu.IRQJobDone|gpu.IRQJobFault|gpu.IRQMMUFault)
	return r
}

func (r *rig) wr(off, val uint64) {
	r.t.Helper()
	if err := r.dev.WriteReg(off, 8, val); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rig) rd(off uint64) uint64 {
	r.t.Helper()
	v, err := r.dev.ReadReg(off, 8)
	if err != nil {
		r.t.Fatal(err)
	}
	return v
}

// allocBuf allocates n bytes of guest memory, identity-mapped RW in the
// GPU address space, and returns its VA.
func (r *rig) allocBuf(n int) uint64 {
	r.t.Helper()
	pages := (n + mem.PageSize - 1) / mem.PageSize
	pa, err := r.alloc.AllocPages(pages)
	if err != nil {
		r.t.Fatal(err)
	}
	if err := r.as.MapRange(pa, pa, uint64(pages)*mem.PageSize, mmu.PermR|mmu.PermW); err != nil {
		r.t.Fatal(err)
	}
	return pa
}

// loadProgram serialises prog into guest memory and returns (va, size).
func (r *rig) loadProgram(prog *gpu.Program) (uint64, uint32) {
	r.t.Helper()
	raw, err := gpu.Serialize(prog)
	if err != nil {
		r.t.Fatal(err)
	}
	va := r.allocBuf(len(raw))
	if err := r.bus.WriteBytes(va, raw); err != nil {
		r.t.Fatal(err)
	}
	return va, uint32(len(raw))
}

// submit writes a descriptor + args, rings the doorbell, and waits for the
// job-done (or fault) interrupt, acknowledging it. Returns the rawstat.
func (r *rig) submit(desc *gpu.JobDescriptor, args []uint64) uint32 {
	r.t.Helper()
	if len(args) > 0 {
		argVA := r.allocBuf(8 * len(args))
		buf := make([]byte, 8*len(args))
		for i, a := range args {
			binary.LittleEndian.PutUint64(buf[8*i:], a)
		}
		if err := r.bus.WriteBytes(argVA, buf); err != nil {
			r.t.Fatal(err)
		}
		desc.ArgsVA = argVA
	}
	descVA := r.allocBuf(gpu.JobDescSize)
	if err := r.bus.WriteBytes(descVA, gpu.EncodeDescriptor(desc)); err != nil {
		r.t.Fatal(err)
	}
	r.wr(gpu.RegJS0Head, descVA)
	r.wr(gpu.RegJS0Command, 1)
	return r.waitIRQ()
}

func (r *rig) waitIRQ() uint32 {
	r.t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		select {
		case <-r.intc.WaitChan():
		case <-time.After(10 * time.Millisecond):
		}
		raw := uint32(r.rd(gpu.RegIRQRawstat))
		if raw != 0 {
			r.wr(gpu.RegIRQClear, uint64(raw))
			if _, ok := r.intc.Claim(); !ok {
				// Raced with deassert; fine.
				_ = ok
			}
			return raw
		}
		if time.Now().After(deadline) {
			r.t.Fatal("timed out waiting for GPU interrupt")
		}
	}
}

// clause builds a clause from instructions.
func clause(ins ...gpu.Instr) gpu.Clause { return gpu.Clause{Instrs: ins} }

// vecAddProgram computes out[i] = a[i] + b[i] over int32 elements.
// Uniforms: c0 = a, c1 = b, c2 = out.
func vecAddProgram() *gpu.Program {
	return &gpu.Program{
		RegCount: 4,
		Uniforms: 3,
		Clauses: []gpu.Clause{clause(
			gpu.Instr{Op: gpu.OpMUL64, Dst: gpu.T(0), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 4},
			gpu.Instr{Op: gpu.OpADD64, Dst: gpu.T(1), A: gpu.C(0), B: gpu.T(0)},
			gpu.Instr{Op: gpu.OpLDG, Dst: gpu.R(0), A: gpu.T(1)},
			gpu.Instr{Op: gpu.OpADD64, Dst: gpu.T(2), A: gpu.C(1), B: gpu.T(0)},
			gpu.Instr{Op: gpu.OpLDG, Dst: gpu.R(1), A: gpu.T(2)},
			gpu.Instr{Op: gpu.OpIADD, Dst: gpu.R(2), A: gpu.R(0), B: gpu.R(1)},
			gpu.Instr{Op: gpu.OpADD64, Dst: gpu.T(3), A: gpu.C(2), B: gpu.T(0)},
			gpu.Instr{Op: gpu.OpSTG, A: gpu.T(3), B: gpu.R(2)},
			gpu.Instr{Op: gpu.OpRET},
		)},
	}
}

func (r *rig) writeInts(va uint64, vals []int32) {
	r.t.Helper()
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	if err := r.bus.WriteBytes(va, buf); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rig) readInts(va uint64, n int) []int32 {
	r.t.Helper()
	buf := make([]byte, 4*n)
	if err := r.bus.ReadBytes(va, buf); err != nil {
		r.t.Fatal(err)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out
}

func TestVectorAdd(t *testing.T) {
	r := newRig(t, gpu.DefaultConfig())
	const n = 1024
	a, b, out := r.allocBuf(4*n), r.allocBuf(4*n), r.allocBuf(4*n)
	av, bv := make([]int32, n), make([]int32, n)
	for i := range av {
		av[i] = int32(i)
		bv[i] = int32(1000 + i*3)
	}
	r.writeInts(a, av)
	r.writeInts(b, bv)

	progVA, progSize := r.loadProgram(vecAddProgram())
	raw := r.submit(&gpu.JobDescriptor{
		JobType:    gpu.JobTypeCompute,
		GlobalSize: [3]uint32{n, 1, 1},
		LocalSize:  [3]uint32{64, 1, 1},
		ShaderVA:   progVA,
		ShaderSize: progSize,
	}, []uint64{a, b, out})
	if raw&gpu.IRQJobDone == 0 {
		t.Fatalf("rawstat = %#x, want job-done", raw)
	}
	got := r.readInts(out, n)
	for i := range got {
		want := av[i] + bv[i]
		if got[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], want)
		}
	}
	gs, sys := r.dev.Stats()
	if gs.Threads != n {
		t.Errorf("threads = %d, want %d", gs.Threads, n)
	}
	if gs.Workgroups != n/64 {
		t.Errorf("workgroups = %d, want %d", gs.Workgroups, n/64)
	}
	if sys.ComputeJobs != 1 {
		t.Errorf("jobs = %d, want 1", sys.ComputeJobs)
	}
	if gs.MainMemAcc != 3*n {
		t.Errorf("main memory accesses = %d, want %d", gs.MainMemAcc, 3*n)
	}
	if gs.TempAcc == 0 || gs.ConstRead == 0 || gs.GRFWrite == 0 {
		t.Errorf("data breakdown not populated: %+v", gs)
	}
}

// divergeProgram writes 1 for even gid, 2 for odd gid:
//
//	c0: t0 = gid & 1; brc t0 -> clause 2, rejoin clause 3
//	c1: r0 = 1; br 3
//	c2: r0 = 2 (fallthrough to 3)
//	c3: out[gid] = r0; ret
func divergeProgram() *gpu.Program {
	return &gpu.Program{
		RegCount: 2,
		Uniforms: 1,
		Clauses: []gpu.Clause{
			clause(
				gpu.Instr{Op: gpu.OpAND, Dst: gpu.T(0), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 1},
				gpu.Instr{Op: gpu.OpBRC, A: gpu.T(0), Imm: gpu.BranchImm(2, 3)},
			),
			clause(
				gpu.Instr{Op: gpu.OpMOV, Dst: gpu.R(0), A: gpu.Imm, Imm: 1},
				gpu.Instr{Op: gpu.OpBR, Imm: gpu.BranchImm(3, 0)},
			),
			clause(
				gpu.Instr{Op: gpu.OpMOV, Dst: gpu.R(0), A: gpu.Imm, Imm: 2},
			),
			clause(
				gpu.Instr{Op: gpu.OpMUL64, Dst: gpu.T(0), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 4},
				gpu.Instr{Op: gpu.OpADD64, Dst: gpu.T(1), A: gpu.C(0), B: gpu.T(0)},
				gpu.Instr{Op: gpu.OpSTG, A: gpu.T(1), B: gpu.R(0)},
				gpu.Instr{Op: gpu.OpRET},
			),
		},
	}
}

func TestDivergenceReconvergence(t *testing.T) {
	cfg := gpu.DefaultConfig()
	cfg.CollectCFG = true
	r := newRig(t, cfg)
	const n = 64
	out := r.allocBuf(4 * n)
	progVA, progSize := r.loadProgram(divergeProgram())
	raw := r.submit(&gpu.JobDescriptor{
		JobType:    gpu.JobTypeCompute,
		GlobalSize: [3]uint32{n, 1, 1},
		LocalSize:  [3]uint32{16, 1, 1},
		ShaderVA:   progVA,
		ShaderSize: progSize,
	}, []uint64{out})
	if raw&gpu.IRQJobDone == 0 {
		t.Fatalf("rawstat = %#x", raw)
	}
	got := r.readInts(out, n)
	for i := range got {
		want := int32(1)
		if i%2 == 1 {
			want = 2
		}
		if got[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], want)
		}
	}
	gs, _ := r.dev.Stats()
	if gs.Branches == 0 || gs.DivergentBranches == 0 {
		t.Errorf("divergence not observed: branches=%d divergent=%d", gs.Branches, gs.DivergentBranches)
	}
	// Every warp mixes even and odd lanes, so all branches diverge.
	if gs.DivergentBranches != gs.Branches {
		t.Errorf("all warps should diverge: %d/%d", gs.DivergentBranches, gs.Branches)
	}
	cfgGraph := r.dev.CFGGraph()
	if len(cfgGraph.Blocks) < 4 {
		t.Errorf("CFG blocks = %d, want >= 4", len(cfgGraph.Blocks))
	}
	var divBlocks int
	for _, b := range cfgGraph.Blocks {
		if b.DivergencePct() > 0 {
			divBlocks++
			if len(b.Out) != 2 {
				t.Errorf("diverging block should have 2 successors, has %d", len(b.Out))
			}
		}
	}
	if divBlocks != 1 {
		t.Errorf("diverging blocks = %d, want 1", divBlocks)
	}
}

// loopProgram computes out[gid] = sum(0..gid) with a data-dependent loop:
//
//	c0: r0 = 0 (acc); r1 = 0 (i)
//	c1: t0 = (gid < i); brc t0 -> clause 3 (exit), rejoin 3
//	      (lanes still looping fall through to the body)
//	c2: acc += i; i += 1; br 1
//	c3: store; ret
func loopProgram() *gpu.Program {
	return &gpu.Program{
		RegCount: 2,
		Uniforms: 1,
		Clauses: []gpu.Clause{
			clause(
				gpu.Instr{Op: gpu.OpMOV, Dst: gpu.R(0), A: gpu.S(gpu.SpecZero)},
				gpu.Instr{Op: gpu.OpMOV, Dst: gpu.R(1), A: gpu.S(gpu.SpecZero)},
			),
			clause(
				gpu.Instr{Op: gpu.OpICMPLT, Dst: gpu.T(0), A: gpu.S(gpu.SpecGIDX), B: gpu.R(1)},
				gpu.Instr{Op: gpu.OpBRC, A: gpu.T(0), Imm: gpu.BranchImm(3, 3)},
			),
			clause(
				gpu.Instr{Op: gpu.OpIADD, Dst: gpu.R(0), A: gpu.R(0), B: gpu.R(1)},
				gpu.Instr{Op: gpu.OpIADD, Dst: gpu.R(1), A: gpu.R(1), B: gpu.Imm, Imm: 1},
				gpu.Instr{Op: gpu.OpBR, Imm: gpu.BranchImm(1, 0)},
			),
			clause(
				gpu.Instr{Op: gpu.OpMUL64, Dst: gpu.T(0), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 4},
				gpu.Instr{Op: gpu.OpADD64, Dst: gpu.T(1), A: gpu.C(0), B: gpu.T(0)},
				gpu.Instr{Op: gpu.OpSTG, A: gpu.T(1), B: gpu.R(0)},
				gpu.Instr{Op: gpu.OpRET},
			),
		},
	}
}

func TestDataDependentLoop(t *testing.T) {
	r := newRig(t, gpu.DefaultConfig())
	const n = 32
	out := r.allocBuf(4 * n)
	progVA, progSize := r.loadProgram(loopProgram())
	raw := r.submit(&gpu.JobDescriptor{
		JobType:    gpu.JobTypeCompute,
		GlobalSize: [3]uint32{n, 1, 1},
		LocalSize:  [3]uint32{8, 1, 1},
		ShaderVA:   progVA,
		ShaderSize: progSize,
	}, []uint64{out})
	if raw&gpu.IRQJobDone == 0 {
		t.Fatalf("rawstat = %#x", raw)
	}
	got := r.readInts(out, n)
	for i := range got {
		want := int32(i * (i + 1) / 2)
		if got[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], want)
		}
	}
}

// reverseProgram reverses each workgroup's elements through local memory
// with a barrier:
//
//	c0: stl [lid*4] = gid; barrier
//	c1: t0 = lsz-1-lid; r0 = ldl [t0*4]; out[gid] = r0; ret
func reverseProgram() *gpu.Program {
	return &gpu.Program{
		RegCount: 2,
		Uniforms: 1,
		Clauses: []gpu.Clause{
			clause(
				gpu.Instr{Op: gpu.OpIMUL, Dst: gpu.T(0), A: gpu.S(gpu.SpecLIDX), B: gpu.Imm, Imm: 4},
				gpu.Instr{Op: gpu.OpSTL, A: gpu.T(0), B: gpu.S(gpu.SpecGIDX)},
				gpu.Instr{Op: gpu.OpBARRIER},
			),
			clause(
				gpu.Instr{Op: gpu.OpISUB, Dst: gpu.T(0), A: gpu.S(gpu.SpecLSZX), B: gpu.S(gpu.SpecLIDX)},
				gpu.Instr{Op: gpu.OpISUB, Dst: gpu.T(0), A: gpu.T(0), B: gpu.Imm, Imm: 1},
				gpu.Instr{Op: gpu.OpIMUL, Dst: gpu.T(0), A: gpu.T(0), B: gpu.Imm, Imm: 4},
				gpu.Instr{Op: gpu.OpLDL, Dst: gpu.R(0), A: gpu.T(0)},
				gpu.Instr{Op: gpu.OpMUL64, Dst: gpu.T(1), A: gpu.S(gpu.SpecGIDX), B: gpu.Imm, Imm: 4},
				gpu.Instr{Op: gpu.OpADD64, Dst: gpu.T(2), A: gpu.C(0), B: gpu.T(1)},
				gpu.Instr{Op: gpu.OpSTG, A: gpu.T(2), B: gpu.R(0)},
				gpu.Instr{Op: gpu.OpRET},
			),
		},
	}
}

func testReverse(t *testing.T, cfg gpu.Config, useGuestLocal bool) {
	r := newRig(t, cfg)
	const n, wg = 256, 32
	out := r.allocBuf(4 * n)
	progVA, progSize := r.loadProgram(reverseProgram())
	desc := &gpu.JobDescriptor{
		JobType:       gpu.JobTypeCompute,
		GlobalSize:    [3]uint32{n, 1, 1},
		LocalSize:     [3]uint32{wg, 1, 1},
		ShaderVA:      progVA,
		ShaderSize:    progSize,
		LocalMemBytes: wg * 4,
	}
	if useGuestLocal {
		desc.LocalMemVA = r.allocBuf(cfg.ShaderCores * wg * 4)
	}
	raw := r.submit(desc, []uint64{out})
	if raw&gpu.IRQJobDone == 0 {
		t.Fatalf("rawstat = %#x", raw)
	}
	got := r.readInts(out, n)
	for i := range got {
		group := i / wg
		want := int32(group*wg + (wg - 1 - i%wg))
		if got[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], want)
		}
	}
	gs, _ := r.dev.Stats()
	if gs.LocalAcc != 2*n {
		t.Errorf("local accesses = %d, want %d", gs.LocalAcc, 2*n)
	}
}

func TestBarrierLocalMemoryShadow(t *testing.T) {
	testReverse(t, gpu.DefaultConfig(), false)
}

func TestBarrierLocalMemoryGuest(t *testing.T) {
	testReverse(t, gpu.DefaultConfig(), true)
}

func TestVirtualCoreOverCommit(t *testing.T) {
	cfg := gpu.DefaultConfig()
	cfg.ShaderCores = 4
	cfg.HostThreads = 16 // over-committed: workers 4..15 use shadow local
	testReverse(t, cfg, true)
}

func TestJobChain(t *testing.T) {
	r := newRig(t, gpu.DefaultConfig())
	const n = 128
	a, b, out1, out2 := r.allocBuf(4*n), r.allocBuf(4*n), r.allocBuf(4*n), r.allocBuf(4*n)
	av := make([]int32, n)
	bv := make([]int32, n)
	for i := range av {
		av[i], bv[i] = int32(i), int32(i*2)
	}
	r.writeInts(a, av)
	r.writeInts(b, bv)
	progVA, progSize := r.loadProgram(vecAddProgram())

	// Job 2: out2 = a + out1. Written first so job 1 can chain to it.
	args2 := r.allocBuf(24)
	argBuf := make([]byte, 24)
	binary.LittleEndian.PutUint64(argBuf[0:], a)
	binary.LittleEndian.PutUint64(argBuf[8:], out1)
	binary.LittleEndian.PutUint64(argBuf[16:], out2)
	if err := r.bus.WriteBytes(args2, argBuf); err != nil {
		t.Fatal(err)
	}
	desc2VA := r.allocBuf(gpu.JobDescSize)
	if err := r.bus.WriteBytes(desc2VA, gpu.EncodeDescriptor(&gpu.JobDescriptor{
		JobType:    gpu.JobTypeCompute,
		GlobalSize: [3]uint32{n, 1, 1},
		LocalSize:  [3]uint32{32, 1, 1},
		ShaderVA:   progVA,
		ShaderSize: progSize,
		ArgsVA:     args2,
	})); err != nil {
		t.Fatal(err)
	}

	// Job 1: out1 = a + b, chained to job 2.
	raw := r.submit(&gpu.JobDescriptor{
		JobType:    gpu.JobTypeCompute,
		GlobalSize: [3]uint32{n, 1, 1},
		LocalSize:  [3]uint32{32, 1, 1},
		ShaderVA:   progVA,
		ShaderSize: progSize,
		NextJobVA:  desc2VA,
	}, []uint64{a, b, out1})
	if raw&gpu.IRQJobDone == 0 {
		t.Fatalf("rawstat = %#x", raw)
	}
	got := r.readInts(out2, n)
	for i := range got {
		want := 2*av[i] + bv[i]
		if got[i] != want {
			t.Fatalf("out2[%d] = %d, want %d", i, got[i], want)
		}
	}
	_, sys := r.dev.Stats()
	if sys.ComputeJobs != 2 {
		t.Errorf("jobs = %d, want 2 (chain)", sys.ComputeJobs)
	}
	if sys.IRQsAsserted != 1 {
		t.Errorf("IRQs = %d, want 1 (one per chain)", sys.IRQsAsserted)
	}
}

func TestMMUFaultReported(t *testing.T) {
	r := newRig(t, gpu.DefaultConfig())
	progVA, progSize := r.loadProgram(vecAddProgram())
	// Pass unmapped buffer addresses.
	raw := r.submit(&gpu.JobDescriptor{
		JobType:    gpu.JobTypeCompute,
		GlobalSize: [3]uint32{16, 1, 1},
		LocalSize:  [3]uint32{16, 1, 1},
		ShaderVA:   progVA,
		ShaderSize: progSize,
	}, []uint64{0xdead_0000, 0xdead_4000, 0xdead_8000})
	if raw&gpu.IRQJobFault == 0 {
		t.Fatalf("rawstat = %#x, want job fault", raw)
	}
	if raw&gpu.IRQMMUFault == 0 {
		t.Errorf("rawstat = %#x, want MMU fault bit", raw)
	}
	if st := r.rd(gpu.RegJS0Status); st != gpu.JSFaulted {
		t.Errorf("job status = %d, want faulted", st)
	}
	if fa := r.rd(gpu.RegAS0FaultAddr); fa < 0xdead_0000 || fa > 0xdead_9000 {
		t.Errorf("fault address = %#x", fa)
	}
}

func TestDecodeCacheDecodesOnce(t *testing.T) {
	r := newRig(t, gpu.DefaultConfig())
	const n = 64
	a, b, out := r.allocBuf(4*n), r.allocBuf(4*n), r.allocBuf(4*n)
	progVA, progSize := r.loadProgram(vecAddProgram())
	for i := 0; i < 5; i++ {
		raw := r.submit(&gpu.JobDescriptor{
			JobType:    gpu.JobTypeCompute,
			GlobalSize: [3]uint32{n, 1, 1},
			LocalSize:  [3]uint32{16, 1, 1},
			ShaderVA:   progVA,
			ShaderSize: progSize,
		}, []uint64{a, b, out})
		if raw&gpu.IRQJobDone == 0 {
			t.Fatalf("submit %d: rawstat %#x", i, raw)
		}
	}
	if r.dev.DecodesTotal != 1 {
		t.Errorf("decodes = %d, want 1 (decode-once)", r.dev.DecodesTotal)
	}
}

func TestPagesAccessedTracked(t *testing.T) {
	r := newRig(t, gpu.DefaultConfig())
	const n = 4096 // 16 KiB per buffer = 4 pages each
	a, b, out := r.allocBuf(4*n), r.allocBuf(4*n), r.allocBuf(4*n)
	progVA, progSize := r.loadProgram(vecAddProgram())
	raw := r.submit(&gpu.JobDescriptor{
		JobType:    gpu.JobTypeCompute,
		GlobalSize: [3]uint32{n, 1, 1},
		LocalSize:  [3]uint32{64, 1, 1},
		ShaderVA:   progVA,
		ShaderSize: progSize,
	}, []uint64{a, b, out})
	if raw&gpu.IRQJobDone == 0 {
		t.Fatalf("rawstat = %#x", raw)
	}
	_, sys := r.dev.Stats()
	// Pinned exactly: 3 buffers x 4 pages + shader + args + descriptor.
	// The Load/Store fast path records touched pages only at walk time, so
	// this count must stay identical to the per-translation accounting the
	// Table III statistic originally used (every page's first access is a
	// TLB miss).
	if sys.PagesAccessed != 15 {
		t.Errorf("pages accessed = %d, want exactly 15", sys.PagesAccessed)
	}
}

func TestGPUIDAndShaderPresent(t *testing.T) {
	cfg := gpu.DefaultConfig()
	cfg.ShaderCores = 8
	r := newRig(t, cfg)
	if id := r.rd(gpu.RegGPUID); id != gpu.GPUIDValue {
		t.Errorf("GPU_ID = %#x", id)
	}
	if sp := r.rd(gpu.RegShaderPres); sp != 0xFF {
		t.Errorf("SHADER_PRESENT = %#x, want 0xFF", sp)
	}
}

func TestCtrlRegCountersTrackAccesses(t *testing.T) {
	r := newRig(t, gpu.DefaultConfig())
	_, before := r.dev.Stats()
	for i := 0; i < 10; i++ {
		r.rd(gpu.RegGPUID)
	}
	r.wr(gpu.RegIRQMask, 7)
	_, after := r.dev.Stats()
	if after.CtrlRegReads-before.CtrlRegReads != 10 {
		t.Errorf("reads delta = %d, want 10", after.CtrlRegReads-before.CtrlRegReads)
	}
	if after.CtrlRegWrites-before.CtrlRegWrites != 1 {
		t.Errorf("writes delta = %d, want 1", after.CtrlRegWrites-before.CtrlRegWrites)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	p := vecAddProgram()
	p.ROM = []uint64{0x1234, 0xdeadbeef}
	raw, err := gpu.Serialize(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := gpu.ParseBinary(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Clauses) != len(p.Clauses) || q.RegCount != p.RegCount ||
		q.Uniforms != p.Uniforms || len(q.ROM) != 2 {
		t.Fatalf("round trip mismatch: %+v", q)
	}
	for i := range p.Clauses[0].Instrs {
		if q.Clauses[0].Instrs[i] != p.Clauses[0].Instrs[i] {
			t.Errorf("instr %d: %v != %v", i, q.Clauses[0].Instrs[i], p.Clauses[0].Instrs[i])
		}
	}
}

func TestBinaryValidation(t *testing.T) {
	// Bad magic.
	if _, err := gpu.ParseBinary(make([]byte, 64)); err == nil {
		t.Error("zero binary accepted")
	}
	// Branch out of range.
	p := &gpu.Program{
		Clauses: []gpu.Clause{clause(gpu.Instr{Op: gpu.OpBR, Imm: gpu.BranchImm(7, 0)})},
	}
	raw, err := gpu.Serialize(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gpu.ParseBinary(raw); err == nil {
		t.Error("out-of-range branch target accepted")
	}
	// Oversized clause rejected at serialise time.
	big := make([]gpu.Instr, 17)
	for i := range big {
		big[i] = gpu.Instr{Op: gpu.OpNOP}
	}
	if _, err := gpu.Serialize(&gpu.Program{Clauses: []gpu.Clause{{Instrs: big}}}); err == nil {
		t.Error("17-slot clause accepted")
	}
}

func TestInstrPackUnpackRoundTrip(t *testing.T) {
	ins := []gpu.Instr{
		{Op: gpu.OpFMA, Dst: gpu.R(5), A: gpu.T(1), B: gpu.C(3), Imm: 0xdeadbeef},
		{Op: gpu.OpLDG, Dst: gpu.R(0), A: gpu.R(1), Imm: 0xFFFFFFFC}, // -4 offset
		{Op: gpu.OpBRC, A: gpu.T(0), Imm: gpu.BranchImm(12, 34)},
	}
	for _, in := range ins {
		if got := gpu.Unpack(in.Pack()); got != in {
			t.Errorf("round trip: %v != %v", got, in)
		}
	}
	if ins[2].BranchTarget() != 12 || ins[2].Reconverge() != 34 {
		t.Error("branch imm encode/decode wrong")
	}
}
