package gpu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mobilesim/internal/irq"
	"mobilesim/internal/mem"
	"mobilesim/internal/mmu"
	"mobilesim/internal/stats"
)

// GPU memory-mapped register offsets. The kernel driver programs the GPU
// exclusively through this window plus shared memory and the interrupt
// line — the same hardware/software contract as the Mali job manager
// interface the paper models.
const (
	RegGPUID      = 0x000 // RO: device identity
	RegIRQRawstat = 0x004 // latched interrupt causes
	RegIRQClear   = 0x008 // WO: clear rawstat bits
	RegIRQMask    = 0x00C // interrupt enable mask
	RegIRQStatus  = 0x010 // RO: rawstat & mask
	RegGPUCmd     = 0x020 // WO: 1 = soft reset
	RegShaderPres = 0x030 // RO: bitmask of present shader cores

	RegJS0Head    = 0x100 // u64: job chain head VA
	RegJS0Command = 0x108 // WO: 1 = start chain
	RegJS0Status  = 0x110 // RO: job slot status

	RegAS0Transtab  = 0x200 // u64: GPU address space page table root
	RegAS0Command   = 0x208 // WO: 1 = apply/flush
	RegAS0FaultStat = 0x210 // RO: fault syndrome
	RegAS0FaultAddr = 0x218 // RO: faulting VA
)

// RegWindowSize is the size of the GPU MMIO window.
const RegWindowSize = 0x1000

// GPUIDValue identifies the simulated device (G71, 8 cores, r0p0).
const GPUIDValue = 0x6071_0008

// IRQ rawstat bits.
const (
	IRQJobDone    = 1 << 0
	IRQJobFault   = 1 << 1
	IRQMMUFault   = 1 << 2
	IRQJobStopped = 1 << 3 // chain ended early on a soft-stop command
)

// Job slot status values.
const (
	JSIdle    = 0
	JSActive  = 1
	JSDone    = 2
	JSFaulted = 3
	JSStopped = 4 // soft-stopped before the chain completed
)

// JS0_COMMAND values.
const (
	JSCmdStart    = 1
	JSCmdSoftStop = 2
)

// ErrStopped is the internal marker for a soft-stopped chain; the Job
// Manager converts it into JSStopped + IRQJobStopped rather than a fault.
var ErrStopped = errors.New("gpu: job chain soft-stopped")

// Config selects the simulated GPU's shape and instrumentation.
type Config struct {
	// ShaderCores is the architectural core count (G71 MP8 = 8). It
	// bounds guest local-memory slots and is what the guest discovers.
	ShaderCores int
	// HostThreads is the number of simulation worker threads ("virtual
	// cores"). It may exceed ShaderCores; over-committed workers shadow
	// their local memory host-side (§III-B3).
	HostThreads int
	// DecodeCache re-uses decoded programs keyed by binary content, so
	// each shader is decoded exactly once (§III-B3). Disable only for
	// the ablation benchmark.
	DecodeCache bool
	// CollectCFG records clause-level control flow with divergence
	// annotations (Fig 6). Costs a map update per clause execution.
	CollectCFG bool
	// Engine selects the shader execution engine (warp-batched by
	// default; see engine.go). Engines are observationally identical —
	// bit-identical counters and guest memory — and instruction tracing
	// always uses the interpreter path regardless of this setting.
	Engine Engine
	// Programs, when non-nil, is a shared compiled-program cache: sessions
	// forked from one snapshot pass the same cache so each kernel binary
	// is decoded and engine-compiled once across the whole pool. Nil gives
	// the device a private cache.
	Programs *ProgramCache
}

// DefaultConfig returns the paper's default setup: a G71 MP8 simulated
// with 8 host threads.
func DefaultConfig() Config {
	return Config{ShaderCores: 8, HostThreads: 8, DecodeCache: true}
}

// Device is the simulated GPU. Its register file implements mem.Device;
// the Job Manager runs in its own host thread (goroutine), concurrent and
// asynchronous with the CPU, as in the paper's simulator.
type Device struct {
	cfg  Config
	bus  *mem.Bus
	intc *irq.Controller
	line irq.Line

	mu         sync.Mutex // register state
	irqRawstat uint32
	irqMask    uint32
	jsHead     uint64
	jsStatus   uint32
	asTranstab uint64
	asApplied  uint64 // root latched by AS0_COMMAND
	faultStat  uint64
	faultAddr  uint64

	doorbell chan uint64
	done     chan struct{}
	wg       sync.WaitGroup

	// stopReq is the soft-stop latch (JS0_COMMAND = JSCmdSoftStop). The
	// dispatch workers poll it at clause boundaries, so a runaway kernel
	// is interrupted without waiting for the chain to drain.
	stopReq atomic.Bool

	// collectCFG mirrors cfg.CollectCFG but can be toggled between jobs
	// (per-run CFG collection in the facade).
	collectCFG atomic.Bool

	programs     *ProgramCache // content-keyed decode + compile cache
	decodeMu     sync.Mutex    // guards DecodesTotal
	DecodesTotal uint64        // decode invocations (ablation metric)

	statsMu      sync.Mutex
	gpuStats     stats.GPUStats
	sysStats     stats.SystemStats
	cfgGraph     *stats.CFG
	touchedPages map[uint64]struct{}

	// warpSlabs recycles per-workgroup warp state (wgWarp slices with
	// their SoA register backing) across jobs: each dispatch worker
	// checks one slab out for the whole job and reuses it for every
	// workgroup it runs, so steady-state dispatch allocates no warp
	// state at all.
	warpSlabs warpSlabPool

	trace *traceSink
}

// warpSlabPool is a per-device free list of warp slabs. A plain mutex-
// guarded stack (rather than sync.Pool) keeps slabs alive across idle
// periods — a device serving a job stream reuses the same ~HostThreads
// slabs for its lifetime.
type warpSlabPool struct {
	mu    sync.Mutex
	slabs [][]wgWarp
}

func (p *warpSlabPool) get() []wgWarp {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.slabs); n > 0 {
		s := p.slabs[n-1]
		p.slabs[n-1] = nil
		p.slabs = p.slabs[:n-1]
		return s
	}
	return nil
}

func (p *warpSlabPool) put(s []wgWarp) {
	if cap(s) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.slabs = append(p.slabs, s)
}

// NewDevice creates a GPU wired to the bus and interrupt line. Call Start
// to launch the Job Manager and Close to stop it.
func NewDevice(cfg Config, bus *mem.Bus, intc *irq.Controller, line irq.Line) *Device {
	if cfg.ShaderCores <= 0 {
		cfg.ShaderCores = 8
	}
	if cfg.HostThreads <= 0 {
		cfg.HostThreads = cfg.ShaderCores
	}
	programs := cfg.Programs
	if programs == nil {
		programs = NewProgramCache()
	}
	d := &Device{
		cfg:          cfg,
		bus:          bus,
		intc:         intc,
		line:         line,
		doorbell:     make(chan uint64, 64),
		done:         make(chan struct{}),
		programs:     programs,
		cfgGraph:     stats.NewCFG(),
		touchedPages: make(map[uint64]struct{}),
	}
	d.collectCFG.Store(cfg.CollectCFG)
	return d
}

// SetCollectCFG toggles clause-level CFG collection for subsequent jobs.
func (d *Device) SetCollectCFG(on bool) { d.collectCFG.Store(on) }

// CollectingCFG reports whether CFG collection is currently enabled.
func (d *Device) CollectingCFG() bool { return d.collectCFG.Load() }

// ClearCFG drops the accumulated control-flow graph (between per-run CFG
// collections) without touching the counters.
func (d *Device) ClearCFG() {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	d.cfgGraph = stats.NewCFG()
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Start launches the Job Manager thread.
func (d *Device) Start() {
	d.wg.Add(1)
	go d.jobManager()
}

// Close stops the Job Manager and waits for it to drain.
func (d *Device) Close() {
	close(d.done)
	d.wg.Wait()
}

// --- Register interface (mem.Device) --------------------------------------

// ReadReg implements the CPU-visible register file. Every access is a
// CPU→GPU control transaction and is counted for Table III.
//
//simlint:commit -- counts CPU-GPU control-register reads (Table III)
func (d *Device) ReadReg(off uint64, size int) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sysStats.CtrlRegReads++
	switch off {
	case RegGPUID:
		return GPUIDValue, nil
	case RegIRQRawstat:
		return uint64(d.irqRawstat), nil
	case RegIRQMask:
		return uint64(d.irqMask), nil
	case RegIRQStatus:
		return uint64(d.irqRawstat & d.irqMask), nil
	case RegShaderPres:
		return (1 << uint(d.cfg.ShaderCores)) - 1, nil
	case RegJS0Head:
		return d.jsHead, nil
	case RegJS0Status:
		return uint64(d.jsStatus), nil
	case RegAS0Transtab:
		return d.asTranstab, nil
	case RegAS0FaultStat:
		return d.faultStat, nil
	case RegAS0FaultAddr:
		return d.faultAddr, nil
	}
	return 0, nil
}

// WriteReg implements driver-side register writes.
//
//simlint:commit -- counts CPU-GPU control-register writes (Table III)
func (d *Device) WriteReg(off uint64, size int, val uint64) error {
	d.mu.Lock()
	d.sysStats.CtrlRegWrites++
	switch off {
	case RegIRQClear:
		d.irqRawstat &^= uint32(val)
		if d.irqRawstat&d.irqMask == 0 {
			d.intc.Deassert(d.line)
		}
		d.mu.Unlock()
		return nil
	case RegIRQMask:
		d.irqMask = uint32(val)
		d.mu.Unlock()
		return nil
	case RegGPUCmd:
		if val == 1 {
			d.irqRawstat = 0
			d.jsStatus = JSIdle
			d.faultStat = 0
			d.faultAddr = 0
			d.intc.Deassert(d.line)
		}
		d.mu.Unlock()
		return nil
	case RegJS0Head:
		d.jsHead = val
		d.mu.Unlock()
		return nil
	case RegJS0Command:
		switch val {
		case JSCmdStart:
			head := d.jsHead
			d.jsStatus = JSActive
			d.mu.Unlock()
			// Clear the stop latch before the doorbell, not in the Job
			// Manager: a soft-stop written any time after the start
			// command must never be lost to a descheduled JM thread.
			d.stopReq.Store(false)
			select {
			case d.doorbell <- head:
			case <-d.done:
			}
			return nil
		case JSCmdSoftStop:
			// Latch the stop request; the dispatch workers observe it at
			// the next clause boundary. A no-op when the slot is idle
			// (the latch is cleared when the next chain starts).
			d.mu.Unlock()
			d.stopReq.Store(true)
			return nil
		}
		d.mu.Unlock()
		return nil
	case RegAS0Transtab:
		d.asTranstab = val
		d.mu.Unlock()
		return nil
	case RegAS0Command:
		if val == 1 {
			d.asApplied = d.asTranstab
		}
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()
	return nil
}

func (d *Device) translationRoot() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.asApplied
}

// raiseIRQ latches rawstat bits and asserts the interrupt line when
// unmasked.
//
//simlint:commit -- counts asserted interrupts
func (d *Device) raiseIRQ(bits uint32) {
	d.mu.Lock()
	d.irqRawstat |= bits
	fire := d.irqRawstat&d.irqMask != 0
	d.mu.Unlock()
	if fire {
		d.statsMu.Lock()
		d.sysStats.IRQsAsserted++
		d.statsMu.Unlock()
		d.intc.Assert(d.line)
	}
}

// --- Job Manager -----------------------------------------------------------

// jobManager is the JM thread: it waits for doorbells, walks job chains,
// dispatches compute jobs and signals completion through the interrupt
// interface (§III-B4).
func (d *Device) jobManager() {
	defer d.wg.Done()
	for {
		select {
		case <-d.done:
			return
		case head := <-d.doorbell:
			if err := d.runChain(head); err != nil {
				if errors.Is(err, ErrStopped) {
					d.mu.Lock()
					d.jsStatus = JSStopped
					d.mu.Unlock()
					d.raiseIRQ(IRQJobStopped)
					continue
				}
				d.mu.Lock()
				d.jsStatus = JSFaulted
				d.mu.Unlock()
				d.recordFault(err)
				d.raiseIRQ(IRQJobFault)
				continue
			}
			d.mu.Lock()
			d.jsStatus = JSDone
			d.mu.Unlock()
			d.raiseIRQ(IRQJobDone)
		}
	}
}

func (d *Device) recordFault(err error) {
	var f *mmu.Fault
	d.mu.Lock()
	defer d.mu.Unlock()
	if asFault(err, &f) {
		d.faultStat = uint64(f.Type) + 1
		d.faultAddr = f.VA
		d.irqRawstat |= IRQMMUFault
	} else {
		d.faultStat = 0xFF
	}
}

func asFault(err error, out **mmu.Fault) bool {
	f, ok := err.(*mmu.Fault)
	if ok {
		*out = f
	}
	return ok
}

// runChain walks a job descriptor chain. Its walker runs in shared mode:
// descriptor, shader and uniform reads may overlap guest stores from a
// previous chain's tail or a racy guest, and must stay word-atomic.
//
//simlint:commit -- merges per-chain TLB and compute-job counters
func (d *Device) runChain(head uint64) error {
	walker := mmu.NewSharedWalker(d.bus)
	walker.SetRoot(d.translationRoot())
	walker.ResetTouched()
	defer func() {
		d.statsMu.Lock()
		d.sysStats.TLBHits += walker.Hits
		d.sysStats.TLBWalks += walker.Walks
		walker.ForEachTouched(func(p uint64) {
			d.touchedPages[p] = struct{}{}
		})
		d.statsMu.Unlock()
	}()

	for va := head; va != 0; {
		if d.stopReq.Load() {
			return ErrStopped
		}
		desc, err := d.readDescriptor(walker, va)
		if err != nil {
			return err
		}
		if desc.JobType != JobTypeCompute {
			return fmt.Errorf("gpu: unsupported job type %d", desc.JobType)
		}
		prog, err := d.decodeShader(walker, desc)
		if err != nil {
			return err
		}
		uniforms, err := d.readUniforms(walker, desc, prog)
		if err != nil {
			return err
		}
		if err := d.execJob(desc, prog, uniforms); err != nil {
			return err
		}
		d.statsMu.Lock()
		d.sysStats.ComputeJobs++
		d.statsMu.Unlock()
		va = desc.NextJobVA
	}
	return nil
}

func (d *Device) readDescriptor(walker *mmu.Walker, va uint64) (*JobDescriptor, error) {
	raw, err := readGuest(walker, va, JobDescSize)
	if err != nil {
		return nil, err
	}
	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(raw[off:]) }
	u64 := func(off int) uint64 { return binary.LittleEndian.Uint64(raw[off:]) }
	return &JobDescriptor{
		JobType:       u32(0x00),
		Flags:         u32(0x04),
		GlobalSize:    [3]uint32{u32(0x08), u32(0x0C), u32(0x10)},
		LocalSize:     [3]uint32{u32(0x14), u32(0x18), u32(0x1C)},
		ShaderVA:      u64(0x20),
		ArgsVA:        u64(0x28),
		LocalMemVA:    u64(0x30),
		LocalMemBytes: u32(0x38),
		ShaderSize:    u32(0x3C),
		NextJobVA:     u64(0x40),
	}, nil
}

// EncodeDescriptor serialises a descriptor into its 72-byte wire form; the
// driver writes these bytes into shared memory.
func EncodeDescriptor(desc *JobDescriptor) []byte {
	raw := make([]byte, JobDescSize)
	binary.LittleEndian.PutUint32(raw[0x00:], desc.JobType)
	binary.LittleEndian.PutUint32(raw[0x04:], desc.Flags)
	for i := 0; i < 3; i++ {
		binary.LittleEndian.PutUint32(raw[0x08+4*i:], desc.GlobalSize[i])
		binary.LittleEndian.PutUint32(raw[0x14+4*i:], desc.LocalSize[i])
	}
	binary.LittleEndian.PutUint64(raw[0x20:], desc.ShaderVA)
	binary.LittleEndian.PutUint64(raw[0x28:], desc.ArgsVA)
	binary.LittleEndian.PutUint64(raw[0x30:], desc.LocalMemVA)
	binary.LittleEndian.PutUint32(raw[0x38:], desc.LocalMemBytes)
	binary.LittleEndian.PutUint32(raw[0x3C:], desc.ShaderSize)
	binary.LittleEndian.PutUint64(raw[0x40:], desc.NextJobVA)
	return raw
}

// decodeShader reads the shader binary from guest memory and decodes it,
// consulting the content-keyed decode cache so each program is decoded
// exactly once.
func (d *Device) decodeShader(walker *mmu.Walker, desc *JobDescriptor) (*Program, error) {
	raw, err := readGuest(walker, desc.ShaderVA, int(desc.ShaderSize))
	if err != nil {
		return nil, err
	}
	if !d.cfg.DecodeCache {
		d.decodeMu.Lock()
		d.DecodesTotal++
		d.decodeMu.Unlock()
		p, err := ParseBinary(raw)
		if err != nil {
			return nil, err
		}
		p.compile(d.cfg.Engine)
		return p, nil
	}
	key := hashBytes(raw)
	c := d.programs
	c.mu.Lock()
	p, hit := c.m[key]
	if !hit {
		var err error
		p, err = ParseBinary(raw)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		c.m[key] = p
	}
	// Compile under the cache lock: when the cache is shared across
	// snapshot forks, the lock publishes the artifact pointer to every
	// other session's Job Manager before its exec workers can observe the
	// program; once set an artifact is never replaced, so the workers'
	// lock-free reads are race-free.
	p.compile(d.cfg.Engine)
	c.mu.Unlock()
	if !hit {
		d.decodeMu.Lock()
		d.DecodesTotal++
		d.decodeMu.Unlock()
	}
	return p, nil
}

func (d *Device) readUniforms(walker *mmu.Walker, desc *JobDescriptor, prog *Program) ([]uint64, error) {
	if prog.Uniforms == 0 {
		return nil, nil
	}
	raw, err := readGuest(walker, desc.ArgsVA, 8*prog.Uniforms)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, prog.Uniforms)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return out, nil
}

func hashBytes(b []byte) uint64 {
	// FNV-1a, inlined to avoid an allocation per job on the hot path.
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// --- Statistics access ------------------------------------------------------

// Stats returns a snapshot of the accumulated program-execution and
// system statistics.
//
//simlint:commit -- folds the page-tracker total into the snapshot
func (d *Device) Stats() (stats.GPUStats, stats.SystemStats) {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	sys := d.sysStats
	sys.PagesAccessed = uint64(len(d.touchedPages))
	return d.gpuStats, sys
}

// CFGGraph returns the accumulated control-flow graph (empty unless
// CollectCFG was set).
func (d *Device) CFGGraph() *stats.CFG {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	g := stats.NewCFG()
	g.Merge(d.cfgGraph)
	return g
}

// ResetStats clears all accumulated statistics (between benchmark phases).
//
//simlint:commit -- wholesale counter reset between benchmark phases
func (d *Device) ResetStats() {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	d.gpuStats = stats.GPUStats{}
	d.sysStats = stats.SystemStats{}
	d.cfgGraph = stats.NewCFG()
	d.touchedPages = make(map[uint64]struct{})
}

// NoteKernelLaunch lets the runtime record kernel enqueues (a runtime-
// level statistic surfaced alongside hardware counters in Fig 14).
//
//simlint:commit -- counts runtime kernel enqueues (Fig 14)
func (d *Device) NoteKernelLaunch() {
	d.statsMu.Lock()
	d.sysStats.KernelLaunch++
	d.statsMu.Unlock()
}
