// Package driver is the simulator's equivalent of the vendor's kernel-
// space GPU driver ("kbase"): it owns the GPU address space, allocates and
// maps memory for the runtime, builds and submits job chains, and handles
// the GPU interrupt. Its only channel to the GPU is the hardware
// interface — MMIO registers, shared memory, page tables and the IRQ
// line — and its bulk work (buffer copies, descriptor writes, register
// accesses) executes as real guest code on the simulated CPU, so the
// CPU-side cost of the software stack is measured, not modelled.
package driver

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mobilesim/internal/cpu"
	"mobilesim/internal/gpu"
	"mobilesim/internal/irq"
	"mobilesim/internal/mem"
	"mobilesim/internal/mmu"
	"mobilesim/internal/platform"
)

// ErrStopped is returned by SubmitAndWait when the chain ended on a
// soft-stop that was not requested through the context (another goroutine
// wrote JS0_COMMAND). Context-driven stops surface as ctx.Err() instead.
var ErrStopped = errors.New("driver: job chain soft-stopped")

// stagingSize is the bounce-buffer size for host<->guest copies.
const stagingSize = 4 << 20

// Driver is one opened GPU device context.
type Driver struct {
	P    *platform.Platform
	Core *cpu.Core
	AS   *mmu.AddressSpace

	staging uint64

	// Jobs submitted and interrupts served, driver-side view.
	JobsSubmitted uint64
	IRQsHandled   uint64

	// CPUTime is host wall-clock spent simulating driver-side guest code
	// (the Fig 9 "driver runtime" metric). Waiting for the GPU does not
	// count.
	CPUTime time.Duration
}

// Open initialises the GPU: builds an address space, soft-resets the
// device, programs AS0 and unmasks interrupts — all through guest code and
// MMIO, as the kernel module's probe path would.
func Open(p *platform.Platform) (*Driver, error) {
	as, err := mmu.NewAddressSpace(p.Bus, p.Alloc)
	if err != nil {
		return nil, err
	}
	d := &Driver{P: p, Core: p.CPUs[0], AS: as}
	p.Intc.Enable(irq.LineGPU)

	if _, err := d.call("gpu_init", platform.GPUBase, as.Root()); err != nil {
		return nil, fmt.Errorf("driver: gpu_init: %w", err)
	}
	d.staging, err = d.allocPhys(stagingSize)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// State is the serializable driver-side state for snapshots: the staging
// buffer address, the GPU address-space geometry (the page tables
// themselves live in guest RAM) and the driver's counters.
type State struct {
	Staging       uint64
	ASRoot        uint64
	ASPages       int
	JobsSubmitted uint64
	IRQsHandled   uint64
	CPUTime       time.Duration
}

// CaptureState snapshots the driver.
func (d *Driver) CaptureState() State {
	return State{
		Staging:       d.staging,
		ASRoot:        d.AS.Root(),
		ASPages:       d.AS.MappedPages(),
		JobsSubmitted: d.JobsSubmitted,
		IRQsHandled:   d.IRQsHandled,
		CPUTime:       d.CPUTime,
	}
}

// Restore reopens the device on a restored platform without running any
// guest code: the GPU was already initialised when the snapshot was
// taken (its register state, the address space's page tables and the
// staging buffer all live in the restored platform), so the probe path is
// not repeated.
func Restore(p *platform.Platform, st State) (*Driver, error) {
	as, err := mmu.RestoreAddressSpace(p.Bus, p.Alloc, st.ASRoot, st.ASPages)
	if err != nil {
		return nil, err
	}
	return &Driver{
		P: p, Core: p.CPUs[0], AS: as,
		staging:       st.Staging,
		JobsSubmitted: st.JobsSubmitted,
		IRQsHandled:   st.IRQsHandled,
		CPUTime:       st.CPUTime,
	}, nil
}

// call runs a firmware routine on the simulated CPU.
func (d *Driver) call(name string, args ...uint64) (uint64, error) {
	entry, err := d.P.Firmware.Entry(name)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	v, err := d.Core.CallRoutine(entry, args...)
	d.CPUTime += time.Since(t0)
	return v, err
}

// allocPhys grabs physically contiguous pages (CPU-only memory, not GPU
// mapped).
func (d *Driver) allocPhys(size int) (uint64, error) {
	pages := (size + mem.PageSize - 1) / mem.PageSize
	return d.P.Alloc.AllocPages(pages)
}

// AllocGPU allocates guest memory and maps it into the GPU address space
// (identity VA=PA, as a kernel's physically-contiguous carveout would be).
// The mapping goes through real page tables that the GPU MMU walks.
func (d *Driver) AllocGPU(size int) (uint64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("driver: bad allocation size %d", size)
	}
	pages := (size + mem.PageSize - 1) / mem.PageSize
	pa, err := d.P.Alloc.AllocPages(pages)
	if err != nil {
		return 0, err
	}
	if err := d.AS.MapRange(pa, pa, uint64(pages)*mem.PageSize, mmu.PermR|mmu.PermW); err != nil {
		return 0, err
	}
	return pa, nil
}

// CopyToDevice writes data into GPU-visible memory. The application-side
// bytes are staged (the app already produced them), then the runtime's
// guest memcpy moves them into the buffer on the simulated CPU — the cost
// that dominates driver runtime for large inputs (Fig 9). Cancellation is
// honoured between staging chunks (4 MiB granularity).
func (d *Driver) CopyToDevice(ctx context.Context, va uint64, data []byte) error {
	for off := 0; off < len(data); off += stagingSize {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := len(data) - off
		if n > stagingSize {
			n = stagingSize
		}
		if err := d.P.Bus.WriteBytes(d.staging, data[off:off+n]); err != nil {
			return err
		}
		if _, err := d.call("memcpy", va+uint64(off), d.staging, uint64(n)); err != nil {
			return err
		}
	}
	return nil
}

// CopyFromDevice reads n bytes back from GPU-visible memory through the
// same guest-code path.
func (d *Driver) CopyFromDevice(ctx context.Context, va uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	for off := 0; off < n; off += stagingSize {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c := n - off
		if c > stagingSize {
			c = stagingSize
		}
		if _, err := d.call("memcpy", d.staging, va+uint64(off), uint64(c)); err != nil {
			return nil, err
		}
		if err := d.P.Bus.ReadBytes(d.staging, out[off:off+c]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ZeroDevice clears a GPU-visible range via guest memset.
func (d *Driver) ZeroDevice(va uint64, n int) error {
	_, err := d.call("memset", va, 0, uint64(n))
	return err
}

// Submit writes a job-chain head pointer and rings the job slot doorbell.
func (d *Driver) Submit(head uint64) error {
	if _, err := d.call("gpu_submit", platform.GPUBase+gpu.RegJS0Head, head); err != nil {
		return err
	}
	d.JobsSubmitted++
	return nil
}

// SoftStop asks the Job Manager to stop the active chain at the next
// clause boundary (JS0_COMMAND = soft-stop), through the same guest-code
// path every other register write takes. The GPU acknowledges with a
// stopped interrupt; callers must keep waiting for it.
func (d *Driver) SoftStop() error {
	_, err := d.call("gpu_softstop", platform.GPUBase)
	return err
}

// WaitJob blocks until the GPU raises an interrupt, runs the guest ISR to
// read and acknowledge it, and returns the rawstat. A fault rawstat is
// returned, not an error; hardware-interface errors are.
//
// When ctx is cancelled mid-wait the driver soft-stops the chain and then
// keeps waiting for the GPU's acknowledgement — the hardware owns shared
// state (job slot, address space, stats shards) and must quiesce before
// the slot is reusable, so cancellation is prompt but never abandons a
// running chain.
func (d *Driver) WaitJob(ctx context.Context) (uint32, error) {
	cancel := ctx.Done()
	for {
		raw, err := d.call("gpu_isr", platform.GPUBase)
		if err != nil {
			return 0, err
		}
		if raw != 0 {
			d.IRQsHandled++
			d.P.Intc.Claim()
			return uint32(raw), nil
		}
		select {
		case <-d.P.Intc.WaitChan():
		case <-cancel:
			if err := d.SoftStop(); err != nil {
				return 0, err
			}
			cancel = nil // stop once; wait for the acknowledgement IRQ
		}
	}
}

// SubmitAndWait is the common synchronous path: returns an error when the
// chain faulted, and the context error when ctx cancelled the run (the
// kernel is interrupted at a clause boundary via soft-stop).
func (d *Driver) SubmitAndWait(ctx context.Context, head uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := d.Submit(head); err != nil {
		return err
	}
	raw, err := d.WaitJob(ctx)
	if err != nil {
		return err
	}
	if raw&(gpu.IRQJobFault|gpu.IRQMMUFault) != 0 {
		fa, _ := d.P.GPU.ReadReg(gpu.RegAS0FaultAddr, 8)
		return fmt.Errorf("driver: GPU fault (rawstat=%#x, fault addr=%#x)", raw, fa)
	}
	if raw&gpu.IRQJobStopped != 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return ErrStopped
	}
	if raw&gpu.IRQJobDone == 0 {
		return fmt.Errorf("driver: unexpected rawstat %#x", raw)
	}
	return nil
}

// WriteDescriptor copies an encoded job descriptor into GPU memory through
// the guest path.
func (d *Driver) WriteDescriptor(ctx context.Context, va uint64, desc *gpu.JobDescriptor) error {
	return d.CopyToDevice(ctx, va, gpu.EncodeDescriptor(desc))
}
