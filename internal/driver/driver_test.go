package driver_test

import (
	"bytes"
	"context"
	"testing"

	"mobilesim/internal/driver"
	"mobilesim/internal/gpu"
	"mobilesim/internal/platform"
)

var bg = context.Background()

func open(t *testing.T) (*platform.Platform, *driver.Driver) {
	t.Helper()
	p, err := platform.New(platform.Config{RAMSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	d, err := driver.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, d
}

func TestOpenInitialisesGPU(t *testing.T) {
	p, d := open(t)
	// gpu_init ran on the guest: AS0 programmed, IRQs unmasked — visible
	// as control-register writes.
	_, sys := p.GPU.Stats()
	if sys.CtrlRegWrites < 4 {
		t.Errorf("gpu_init produced %d register writes", sys.CtrlRegWrites)
	}
	if d.AS.Root() == 0 {
		t.Error("no GPU address space")
	}
	if d.CPUTime == 0 {
		t.Error("driver CPU time not accounted")
	}
}

func TestAllocAndCopyRoundTrip(t *testing.T) {
	_, d := open(t)
	va, err := d.AllocGPU(10_000)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 10_000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := d.CopyToDevice(bg, va, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.CopyFromDevice(bg, va, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("copy round trip corrupted data")
	}
	// The pages are mapped in the GPU address space.
	if _, _, ok := d.AS.Lookup(va); !ok {
		t.Error("allocation not mapped for the GPU")
	}
	if err := d.ZeroDevice(va, 64); err != nil {
		t.Fatal(err)
	}
	got, _ = d.CopyFromDevice(bg, va, 64)
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
}

func TestBadAllocRejected(t *testing.T) {
	_, d := open(t)
	if _, err := d.AllocGPU(0); err == nil {
		t.Error("zero-size alloc accepted")
	}
	if _, err := d.AllocGPU(-4); err == nil {
		t.Error("negative alloc accepted")
	}
}

func TestSubmitAndWaitFaultPath(t *testing.T) {
	_, d := open(t)
	// Submitting a descriptor at an unmapped address must fault cleanly.
	if err := d.SubmitAndWait(bg, 0xdead_0000); err == nil {
		t.Error("unmapped job chain should fault")
	}
	// The device recovers: a valid (empty) chain head of 0 is a no-op...
	// submit a real minimal job instead.
	va, err := d.AllocGPU(4096)
	if err != nil {
		t.Fatal(err)
	}
	prog := &gpu.Program{
		Clauses: []gpu.Clause{{Instrs: []gpu.Instr{{Op: gpu.OpRET}}}},
	}
	bin, err := gpu.Serialize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CopyToDevice(bg, va, bin); err != nil {
		t.Fatal(err)
	}
	descVA, err := d.AllocGPU(gpu.JobDescSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteDescriptor(bg, descVA, &gpu.JobDescriptor{
		JobType:    gpu.JobTypeCompute,
		GlobalSize: [3]uint32{16, 1, 1},
		LocalSize:  [3]uint32{16, 1, 1},
		ShaderVA:   va,
		ShaderSize: uint32(len(bin)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.SubmitAndWait(bg, descVA); err != nil {
		t.Fatalf("minimal job failed: %v", err)
	}
	if d.JobsSubmitted != 2 || d.IRQsHandled != 2 {
		t.Errorf("submitted=%d irqs=%d, want 2/2", d.JobsSubmitted, d.IRQsHandled)
	}
}
