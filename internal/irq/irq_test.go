package irq

import (
	"sync"
	"testing"
	"time"
)

func TestAssertClaim(t *testing.T) {
	c := New()
	c.Enable(LineGPU)
	if c.Pending() {
		t.Fatal("fresh controller should have nothing pending")
	}
	c.Assert(LineGPU)
	if !c.Pending() {
		t.Fatal("asserted enabled line should be pending")
	}
	l, ok := c.Claim()
	if !ok || l != LineGPU {
		t.Fatalf("Claim = %v, %v", l, ok)
	}
	if c.Pending() {
		t.Error("claimed interrupt should clear pending")
	}
}

func TestMaskingBlocksDelivery(t *testing.T) {
	c := New()
	c.Assert(LineTimer)
	if c.Pending() {
		t.Error("disabled line must not be deliverable")
	}
	c.Enable(LineTimer)
	if !c.Pending() {
		t.Error("enabling should expose latched pending")
	}
	c.Disable(LineTimer)
	if c.Pending() {
		t.Error("disabling should mask again")
	}
}

func TestEdgeLatching(t *testing.T) {
	c := New()
	c.Enable(LineUART)
	c.Assert(LineUART)
	c.Assert(LineUART) // second assert while high: no new edge
	if got := c.Asserted(LineUART); got != 1 {
		t.Errorf("Asserted = %d, want 1", got)
	}
	c.Deassert(LineUART)
	c.Assert(LineUART)
	if got := c.Asserted(LineUART); got != 2 {
		t.Errorf("Asserted after re-edge = %d, want 2", got)
	}
}

func TestClaimPriorityOrder(t *testing.T) {
	c := New()
	c.Enable(LineTimer)
	c.Enable(LineGPU)
	c.Assert(LineGPU)
	c.Assert(LineTimer)
	l, ok := c.Claim()
	if !ok || l != LineTimer {
		t.Fatalf("lowest line first: got %v", l)
	}
	l, ok = c.Claim()
	if !ok || l != LineGPU {
		t.Fatalf("then next: got %v", l)
	}
	if _, ok := c.Claim(); ok {
		t.Error("nothing left to claim")
	}
}

func TestWaitChanWakesOnAssert(t *testing.T) {
	c := New()
	c.Enable(LineGPU)
	ch := c.WaitChan()
	select {
	case <-ch:
		t.Fatal("channel closed before assert")
	default:
	}
	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()
	c.Assert(LineGPU)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not woken by Assert")
	}
}

func TestWaitChanImmediateWhenPending(t *testing.T) {
	c := New()
	c.Enable(LineGPU)
	c.Assert(LineGPU)
	select {
	case <-c.WaitChan():
	case <-time.After(time.Second):
		t.Fatal("WaitChan should be closed immediately when already pending")
	}
}

func TestConcurrentAsserts(t *testing.T) {
	c := New()
	for l := Line(0); l < 8; l++ {
		c.Enable(l)
	}
	var wg sync.WaitGroup
	for l := Line(0); l < 8; l++ {
		wg.Add(1)
		go func(l Line) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Assert(l)
				c.Deassert(l)
			}
		}(l)
	}
	wg.Wait()
	for l := Line(0); l < 8; l++ {
		if got := c.Asserted(l); got != 100 {
			t.Errorf("line %d: %d edges, want 100", l, got)
		}
	}
}

func TestLineRangeChecked(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range line should panic")
		}
	}()
	c.Assert(Line(99))
}
