// Package irq implements the platform interrupt controller. It is a small
// GIC-flavoured distributor: devices assert/deassert numbered lines, the
// CPU masks and acknowledges them. The GPU's Job Manager asserts lines from
// its own goroutine, so the controller is safe for concurrent use.
package irq

import (
	"fmt"
	"sync"
)

// Line identifies one interrupt input to the controller.
type Line int

// Well-known platform interrupt lines. The platform package wires devices
// to these numbers; guests discover them through the device tree equivalent
// (the platform's Config).
const (
	LineTimer Line = 1
	LineUART  Line = 2
	LineBlock Line = 3
	LineGPU   Line = 4

	// NumLines is the number of input lines the controller supports.
	NumLines = 32
)

// Controller tracks pending and enabled state per line and computes the
// CPU-visible interrupt signal. Level semantics: a line stays pending while
// asserted; Ack clears the latched pending bit but a still-asserted level
// re-pends immediately (devices deassert when their own status is cleared).
type Controller struct {
	mu      sync.Mutex
	level   uint32 // current device-driven level per line
	pending uint32 // latched pending bits
	enabled uint32 // per-line enable mask

	// waiters are channels to poke when a new interrupt becomes deliverable;
	// the CPU's WFI implementation parks on one.
	waiters []chan struct{}

	// Stats counts assert edges per line for system-level instrumentation
	// (Table III "Interrupts Asserted").
	asserts [NumLines]uint64
}

// New creates a controller with all lines deasserted and disabled.
func New() *Controller {
	return &Controller{}
}

func (c *Controller) checkLine(l Line) {
	if l < 0 || l >= NumLines {
		panic(fmt.Sprintf("irq: line %d out of range", l))
	}
}

// Assert raises a line. The first edge latches a pending bit and counts as
// one asserted interrupt.
func (c *Controller) Assert(l Line) {
	c.checkLine(l)
	c.mu.Lock()
	bit := uint32(1) << uint(l)
	if c.level&bit == 0 {
		c.level |= bit
		c.pending |= bit
		c.asserts[l]++
	}
	waiters := c.waiters
	c.waiters = nil
	c.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
}

// Deassert lowers a line. Pending state latched by a previous edge remains
// until acknowledged.
func (c *Controller) Deassert(l Line) {
	c.checkLine(l)
	c.mu.Lock()
	c.level &^= uint32(1) << uint(l)
	c.mu.Unlock()
}

// Enable unmasks a line for delivery.
func (c *Controller) Enable(l Line) {
	c.checkLine(l)
	c.mu.Lock()
	c.enabled |= uint32(1) << uint(l)
	c.mu.Unlock()
}

// Disable masks a line.
func (c *Controller) Disable(l Line) {
	c.checkLine(l)
	c.mu.Lock()
	c.enabled &^= uint32(1) << uint(l)
	c.mu.Unlock()
}

// Pending reports whether any enabled line is pending; the CPU polls this
// between basic blocks.
func (c *Controller) Pending() bool {
	c.mu.Lock()
	p := c.pending&c.enabled != 0
	c.mu.Unlock()
	return p
}

// Claim returns the lowest-numbered pending enabled line and clears its
// pending latch (a still-asserted level re-pends on the next Assert edge
// only after Deassert, matching edge-latched level semantics). ok is false
// when nothing is deliverable.
func (c *Controller) Claim() (Line, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	deliverable := c.pending & c.enabled
	if deliverable == 0 {
		return 0, false
	}
	for l := Line(0); l < NumLines; l++ {
		bit := uint32(1) << uint(l)
		if deliverable&bit != 0 {
			c.pending &^= bit
			return l, true
		}
	}
	return 0, false
}

// WaitChan returns a channel that is closed the next time any line is
// asserted. If an enabled interrupt is already pending the returned channel
// is closed immediately, so WFI never sleeps through a deliverable IRQ.
func (c *Controller) WaitChan() <-chan struct{} {
	ch := make(chan struct{})
	c.mu.Lock()
	if c.pending&c.enabled != 0 {
		c.mu.Unlock()
		close(ch)
		return ch
	}
	c.waiters = append(c.waiters, ch)
	c.mu.Unlock()
	return ch
}

// State is the serializable controller state, captured for platform
// snapshots. Waiters are host-side parking, not guest state, and are not
// captured.
type State struct {
	Level   uint32
	Pending uint32
	Enabled uint32
	Asserts [NumLines]uint64
}

// CaptureState snapshots the controller.
func (c *Controller) CaptureState() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return State{Level: c.level, Pending: c.pending, Enabled: c.enabled, Asserts: c.asserts}
}

// RestoreState installs captured controller state and pokes any parked
// waiter when a deliverable interrupt was restored.
func (c *Controller) RestoreState(st State) {
	c.mu.Lock()
	c.level, c.pending, c.enabled, c.asserts = st.Level, st.Pending, st.Enabled, st.Asserts
	var waiters []chan struct{}
	if c.pending&c.enabled != 0 {
		waiters = c.waiters
		c.waiters = nil
	}
	c.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
}

// Asserted returns the number of assert edges observed on a line.
func (c *Controller) Asserted(l Line) uint64 {
	c.checkLine(l)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.asserts[l]
}
