package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"mobilesim/internal/cl"
	"mobilesim/internal/cpu"
	"mobilesim/internal/dev"
	"mobilesim/internal/driver"
	"mobilesim/internal/gpu"
	"mobilesim/internal/mem"
	"mobilesim/internal/platform"
)

// Wire format v1. Little-endian throughout; strings and byte blobs are
// u64-length-prefixed; maps are emitted in sorted key order so encoding
// is a pure function of the state.
const (
	magic   = "MSIMSNAP"
	version = uint32(1)

	// maxBlob caps length prefixes while decoding, so a corrupt or
	// hostile snapshot cannot ask for an absurd allocation. 16 GiB
	// comfortably exceeds any supported guest RAM.
	maxBlob = 16 << 30
)

type encoder struct {
	w   *bufio.Writer
	err error
}

func (e *encoder) u8(v uint8) {
	if e.err == nil {
		e.err = e.w.WriteByte(v)
	}
}

func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.raw(b[:])
}

func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.raw(b[:])
}

func (e *encoder) raw(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *encoder) bytes(b []byte) {
	e.u64(uint64(len(b)))
	e.raw(b)
}

func (e *encoder) str(s string) { e.bytes([]byte(s)) }

func (e *encoder) u64s(v []uint64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u64(x)
	}
}

// fixed serialises a struct composed purely of fixed-size fields
// (uint64s, bools, fixed arrays) via encoding/binary — cpu.State and the
// stats records qualify.
func (e *encoder) fixed(v any) {
	if e.err == nil {
		e.err = binary.Write(e.w, binary.LittleEndian, v)
	}
}

type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	d.err = err
	return b
}

func (d *decoder) boolean() bool { return d.u8() != 0 }

func (d *decoder) u32() uint32 {
	var b [4]byte
	d.raw(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (d *decoder) u64() uint64 {
	var b [8]byte
	d.raw(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (d *decoder) raw(b []byte) {
	if d.err == nil {
		_, d.err = io.ReadFull(d.r, b)
	}
}

func (d *decoder) bytes() []byte {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > maxBlob {
		d.err = fmt.Errorf("snapshot: blob length %d exceeds limit", n)
		return nil
	}
	b := make([]byte, n)
	d.raw(b)
	return b
}

func (d *decoder) str() string { return string(d.bytes()) }

func (d *decoder) u64s() []uint64 {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > maxBlob/8 {
		d.err = fmt.Errorf("snapshot: list length %d exceeds limit", n)
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = d.u64()
	}
	return v
}

func (d *decoder) fixed(v any) {
	if d.err == nil {
		d.err = binary.Read(d.r, binary.LittleEndian, v)
	}
}

// Encode writes the state in wire format v1. Encoding the same state
// twice produces identical bytes.
func Encode(w io.Writer, st *State) error {
	e := &encoder{w: bufio.NewWriter(w)}
	e.raw([]byte(magic))
	e.u32(version)

	// Session configuration.
	e.u64(st.Config.RAMSize)
	e.u64(uint64(st.Config.CPUCores))
	e.u64(uint64(st.Config.ShaderCores))
	e.u64(uint64(st.Config.HostThreads))
	e.str(st.Config.CompilerVersion)
	e.boolean(st.Config.CollectCFG)
	e.boolean(st.Config.JITClauses)
	e.boolean(st.Config.DisableDecodeCache)

	// Guest RAM image.
	p := st.Platform
	e.u64(p.RAM.Base())
	e.u64(p.RAM.Size())
	e.bytes(p.RAM.Data())

	// Page allocator.
	e.u64(p.Alloc.Base)
	e.u64(p.Alloc.Limit)
	e.u64(p.Alloc.Next)
	e.u64s(p.Alloc.Free)

	// CPU cores (fixed-size architectural state).
	e.u64(uint64(len(p.CPUs)))
	for i := range p.CPUs {
		e.fixed(&p.CPUs[i])
	}

	// Interrupt controller.
	e.fixed(&p.IRQ)

	// Peripherals.
	e.fixed(&p.Timer)
	e.bytes(p.UART.RX)
	e.boolean(p.UART.RXIRQ)
	e.u64(p.UART.TxSent)
	e.u64(p.Block.Sector)
	e.u64(p.Block.Addr)
	e.u64(p.Block.Count)
	e.u64(p.Block.Status)
	e.u64(p.Block.Reads)
	e.u64(p.Block.Writes)
	e.bytes(p.Block.Image)

	// GPU registers and statistics.
	e.u32(p.GPU.IRQRawstat)
	e.u32(p.GPU.IRQMask)
	e.u64(p.GPU.JSHead)
	e.u32(p.GPU.JSStatus)
	e.u64(p.GPU.ASTranstab)
	e.u64(p.GPU.ASApplied)
	e.u64(p.GPU.FaultStat)
	e.u64(p.GPU.FaultAddr)
	e.u64(p.GPU.DecodesTotal)
	e.fixed(&p.GPU.GPUStats)
	e.fixed(&p.GPU.SysStats)
	e.u64s(p.GPU.TouchedPages)

	// Firmware program (code + sorted symbol table).
	e.u64(p.FirmwareBase)
	e.bytes(p.FirmwareCode)
	syms := make([]string, 0, len(p.FirmwareSyms))
	for name := range p.FirmwareSyms {
		syms = append(syms, name)
	}
	sort.Strings(syms)
	e.u64(uint64(len(syms)))
	for _, name := range syms {
		e.str(name)
		e.u64(p.FirmwareSyms[name])
	}

	// Runtime + driver.
	e.str(st.CL.Version)
	e.u64(st.CL.LocalVA)
	e.u64(uint64(st.CL.LocalBytes))
	e.u64(st.CL.Drv.Staging)
	e.u64(st.CL.Drv.ASRoot)
	e.u64(uint64(st.CL.Drv.ASPages))
	e.u64(st.CL.Drv.JobsSubmitted)
	e.u64(st.CL.Drv.IRQsHandled)
	e.u64(uint64(st.CL.Drv.CPUTime))

	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// Decode reads a state in wire format v1.
func Decode(r io.Reader) (*State, error) {
	d := &decoder{r: bufio.NewReader(r)}
	var m [len(magic)]byte
	d.raw(m[:])
	if d.err == nil && string(m[:]) != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", m)
	}
	if v := d.u32(); d.err == nil && v != version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (have %d)", v, version)
	}

	st := &State{Platform: &platform.State{}}
	st.Config.RAMSize = d.u64()
	st.Config.CPUCores = int(d.u64())
	st.Config.ShaderCores = int(d.u64())
	st.Config.HostThreads = int(d.u64())
	st.Config.CompilerVersion = d.str()
	st.Config.CollectCFG = d.boolean()
	st.Config.JITClauses = d.boolean()
	st.Config.DisableDecodeCache = d.boolean()

	p := st.Platform
	imgBase := d.u64()
	imgSize := d.u64()
	imgData := d.bytes()
	if d.err == nil {
		img, err := mem.NewImage(imgBase, imgSize, imgData)
		if err != nil {
			return nil, err
		}
		p.RAM = img
	}

	p.Alloc = mem.AllocState{Base: d.u64(), Limit: d.u64(), Next: d.u64(), Free: d.u64s()}

	nCPUs := d.u64()
	if d.err == nil && nCPUs > 4096 {
		return nil, fmt.Errorf("snapshot: implausible CPU count %d", nCPUs)
	}
	p.CPUs = make([]cpu.State, nCPUs)
	for i := range p.CPUs {
		d.fixed(&p.CPUs[i])
	}

	d.fixed(&p.IRQ)

	d.fixed(&p.Timer)
	p.UART = dev.UARTState{RX: d.bytes(), RXIRQ: d.boolean(), TxSent: d.u64()}
	p.Block = dev.BlockState{
		Sector: d.u64(), Addr: d.u64(), Count: d.u64(), Status: d.u64(),
		Reads: d.u64(), Writes: d.u64(), Image: d.bytes(),
	}

	p.GPU = gpu.State{
		IRQRawstat: d.u32(), IRQMask: d.u32(),
		JSHead: d.u64(), JSStatus: d.u32(),
		ASTranstab: d.u64(), ASApplied: d.u64(),
		FaultStat: d.u64(), FaultAddr: d.u64(),
		DecodesTotal: d.u64(),
	}
	d.fixed(&p.GPU.GPUStats)
	d.fixed(&p.GPU.SysStats)
	p.GPU.TouchedPages = d.u64s()

	p.FirmwareBase = d.u64()
	p.FirmwareCode = d.bytes()
	nSyms := d.u64()
	if d.err == nil && nSyms > 1<<20 {
		return nil, fmt.Errorf("snapshot: implausible symbol count %d", nSyms)
	}
	p.FirmwareSyms = make(map[string]uint64, nSyms)
	for i := uint64(0); i < nSyms && d.err == nil; i++ {
		name := d.str()
		p.FirmwareSyms[name] = d.u64()
	}

	st.CL = cl.State{
		Version:    d.str(),
		LocalVA:    d.u64(),
		LocalBytes: uint32(d.u64()),
		Drv: driver.State{
			Staging:       d.u64(),
			ASRoot:        d.u64(),
			ASPages:       int(d.u64()),
			JobsSubmitted: d.u64(),
			IRQsHandled:   d.u64(),
			CPUTime:       time.Duration(d.u64()),
		},
	}
	if d.err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", d.err)
	}
	return st, nil
}
