// Package snapshot captures, serialises and restores booted platform
// state, so sessions can be forked from a warm snapshot instead of paying
// a cold boot (platform construction, firmware load, page-table setup,
// runtime bring-up) per session.
//
// A snapshot is the composition of every layer's own captured state —
// guest RAM as a sparse immutable image (mem.Image), the page allocator,
// CPU cores, interrupt controller, peripherals, GPU, the kernel driver
// and the CL runtime — plus the session configuration it was taken under.
// Restoring never runs guest code: the work the snapshot captured is not
// repeated, and guest memory is a copy-on-write fork of the image, so N
// restored sessions share the boot pages until they write them.
//
// The wire format (Encode/Decode) is versioned and deterministic: the
// same state always serialises to the same bytes (maps are emitted in
// sorted key order), so snapshot artifacts can be content-addressed and
// diffed.
package snapshot

import (
	"sync"

	"mobilesim/internal/cl"
	"mobilesim/internal/gpu"
	"mobilesim/internal/platform"
)

// Config mirrors the serialisable, shape-defining part of the facade
// session configuration. Host-side wiring (console writers) is
// deliberately absent: it is supplied afresh at restore time.
type Config struct {
	RAMSize            uint64
	CPUCores           int
	ShaderCores        int
	HostThreads        int
	CompilerVersion    string
	CollectCFG         bool
	JITClauses         bool
	DisableDecodeCache bool
}

// State is one full captured session: configuration, platform and
// runtime. It is immutable once captured and safe to restore from
// concurrently (forks share the RAM image read-only).
type State struct {
	Config   Config
	Platform *platform.State
	CL       cl.State

	// progOnce/progs lazily build the decoded-shader program cache shared
	// by every session restored from this snapshot. Shader binaries live in
	// the captured guest RAM, so forks submit byte-identical programs; one
	// shared cache means each binary is decoded (and engine-compiled) once
	// across the whole fork family instead of once per fork. The cache is
	// host-side derived state and is not serialised.
	progOnce sync.Once
	progs    *gpu.ProgramCache
}

// Programs returns the snapshot's shared shader program cache, creating it
// on first use. Safe for concurrent restores.
func (st *State) Programs() *gpu.ProgramCache {
	st.progOnce.Do(func() { st.progs = gpu.NewProgramCache() })
	return st.progs
}

// Capture snapshots a quiescent platform + runtime pair. The caller must
// guarantee nothing is executing (no queued run, no guest call, no job
// chain in flight).
func Capture(cfg Config, rt *cl.Context) (*State, error) {
	pst, err := rt.P.Capture()
	if err != nil {
		return nil, err
	}
	return &State{Config: cfg, Platform: pst, CL: rt.CaptureState()}, nil
}

// Restore builds a running platform and runtime from the state. consoleOut
// and the GPU instrumentation knobs come from pcfg (the facade lowers the
// restored session's configuration the same way New does).
func Restore(st *State, pcfg platform.Config) (*platform.Platform, *cl.Context, error) {
	pcfg.GPU.Programs = st.Programs()
	p, err := platform.NewFromState(pcfg, st.Platform)
	if err != nil {
		return nil, nil, err
	}
	rt, err := cl.Restore(p, st.CL)
	if err != nil {
		p.Close()
		return nil, nil, err
	}
	return p, rt, nil
}
