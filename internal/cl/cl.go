// Package cl is the user-space OpenCL-like runtime — the simulator's
// libOpenCL.so equivalent. Applications create buffers, build programs
// (JIT-compiled through the clc toolchain exactly when the real stack
// would invoke the vendor compiler), set kernel arguments and enqueue
// NDRange kernels. All device interaction flows through the kernel driver
// and the simulated hardware interface.
package cl

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"mobilesim/internal/clc"
	"mobilesim/internal/driver"
	"mobilesim/internal/gpu"
	"mobilesim/internal/platform"
)

// Context owns a device connection and a JIT configuration.
type Context struct {
	P       *platform.Platform
	Drv     *driver.Driver
	Version string // compiler version; empty = clc.DefaultVersion

	localVA    uint64
	localBytes uint32
}

// NewContext opens the device. One context per simulated application.
func NewContext(p *platform.Platform, compilerVersion string) (*Context, error) {
	drv, err := driver.Open(p)
	if err != nil {
		return nil, err
	}
	return &Context{P: p, Drv: drv, Version: compilerVersion}, nil
}

// State is the serializable runtime state for snapshots: the compiler
// version and the driver-allocated local-memory slots, plus the nested
// driver state. Built Programs and Kernels are host-side handles into
// guest memory and are not captured — a restored context rebuilds them
// (cheaply, via the device decode cache) from source.
type State struct {
	Version    string
	LocalVA    uint64
	LocalBytes uint32
	Drv        driver.State
}

// CaptureState snapshots the runtime.
func (c *Context) CaptureState() State {
	return State{
		Version:    c.Version,
		LocalVA:    c.localVA,
		LocalBytes: c.localBytes,
		Drv:        c.Drv.CaptureState(),
	}
}

// Restore reopens a runtime context on a restored platform without
// re-probing the device (see driver.Restore).
func Restore(p *platform.Platform, st State) (*Context, error) {
	drv, err := driver.Restore(p, st.Drv)
	if err != nil {
		return nil, err
	}
	return &Context{
		P: p, Drv: drv, Version: st.Version,
		localVA:    st.LocalVA,
		localBytes: st.LocalBytes,
	}, nil
}

// Buffer is a device allocation.
type Buffer struct {
	VA   uint64
	Size int
}

// CreateBuffer allocates a device buffer.
func (c *Context) CreateBuffer(size int) (*Buffer, error) {
	va, err := c.Drv.AllocGPU(size)
	if err != nil {
		return nil, err
	}
	return &Buffer{VA: va, Size: size}, nil
}

// WriteBuffer copies host bytes into a buffer (clEnqueueWriteBuffer).
func (c *Context) WriteBuffer(ctx context.Context, b *Buffer, data []byte) error {
	if len(data) > b.Size {
		return fmt.Errorf("cl: write of %d bytes into %d-byte buffer", len(data), b.Size)
	}
	return c.Drv.CopyToDevice(ctx, b.VA, data)
}

// ReadBuffer copies a buffer back to the host (clEnqueueReadBuffer).
func (c *Context) ReadBuffer(ctx context.Context, b *Buffer, n int) ([]byte, error) {
	if n > b.Size {
		n = b.Size
	}
	return c.Drv.CopyFromDevice(ctx, b.VA, n)
}

// WriteF32 marshals float32 data into a buffer.
func (c *Context) WriteF32(ctx context.Context, b *Buffer, vals []float32) error {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return c.WriteBuffer(ctx, b, buf)
}

// ReadF32 reads n float32 values from a buffer.
func (c *Context) ReadF32(ctx context.Context, b *Buffer, n int) ([]float32, error) {
	raw, err := c.ReadBuffer(ctx, b, 4*n)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

// WriteI32 marshals int32 data into a buffer.
func (c *Context) WriteI32(ctx context.Context, b *Buffer, vals []int32) error {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return c.WriteBuffer(ctx, b, buf)
}

// ReadI32 reads n int32 values from a buffer.
func (c *Context) ReadI32(ctx context.Context, b *Buffer, n int) ([]int32, error) {
	raw, err := c.ReadBuffer(ctx, b, 4*n)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

// Program is a built (JIT-compiled and device-loaded) program.
type Program struct {
	ctx     *Context
	kernels map[string]*loadedKernel
}

type loadedKernel struct {
	ck     *clc.CompiledKernel
	binVA  uint64
	descVA uint64
	argsVA uint64
}

// BuildProgram JIT-compiles source and loads the binaries into GPU-visible
// memory through the driver, as clBuildProgram does.
func (c *Context) BuildProgram(ctx context.Context, src string) (*Program, error) {
	compiled, err := clc.CompileAll(src, clc.Options{Version: c.Version})
	if err != nil {
		return nil, err
	}
	p := &Program{ctx: c, kernels: make(map[string]*loadedKernel)}
	for name, ck := range compiled {
		binVA, err := c.Drv.AllocGPU(len(ck.Binary))
		if err != nil {
			return nil, err
		}
		if err := c.Drv.CopyToDevice(ctx, binVA, ck.Binary); err != nil {
			return nil, err
		}
		descVA, err := c.Drv.AllocGPU(gpu.JobDescSize)
		if err != nil {
			return nil, err
		}
		argBytes := 8 * len(ck.Params)
		if argBytes == 0 {
			argBytes = 8
		}
		argsVA, err := c.Drv.AllocGPU(argBytes)
		if err != nil {
			return nil, err
		}
		p.kernels[name] = &loadedKernel{ck: ck, binVA: binVA, descVA: descVA, argsVA: argsVA}
	}
	return p, nil
}

// Kernel is an invocable kernel with bound arguments.
type Kernel struct {
	prog *Program
	lk   *loadedKernel
	args []uint64
	set  []bool
}

// CreateKernel looks up a kernel by name.
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	lk, ok := p.kernels[name]
	if !ok {
		return nil, fmt.Errorf("cl: kernel %q not in program", name)
	}
	return &Kernel{
		prog: p,
		lk:   lk,
		args: make([]uint64, len(lk.ck.Params)),
		set:  make([]bool, len(lk.ck.Params)),
	}, nil
}

// Report exposes the offline-compiler metrics for the kernel.
func (k *Kernel) Report() clc.StaticReport { return k.lk.ck.Report }

// Params returns the kernel's declared parameters.
func (k *Kernel) Params() []clc.Param { return k.lk.ck.Params }

func (k *Kernel) setRaw(i int, v uint64) error {
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("cl: kernel %s has no argument %d", k.lk.ck.Name, i)
	}
	k.args[i] = v
	k.set[i] = true
	return nil
}

// SetArgBuffer binds a device buffer to a pointer parameter.
func (k *Kernel) SetArgBuffer(i int, b *Buffer) error {
	p := k.lk.ck.Params
	if i < len(p) && p[i].Type.Kind != clc.TypeGlobalPtr {
		return fmt.Errorf("cl: argument %d of %s is %s, not a buffer", i, k.lk.ck.Name, p[i].Type)
	}
	return k.setRaw(i, b.VA)
}

// SetArgInt binds an int scalar.
func (k *Kernel) SetArgInt(i int, v int32) error {
	return k.setRaw(i, uint64(uint32(v)))
}

// SetArgFloat binds a float scalar.
func (k *Kernel) SetArgFloat(i int, v float32) error {
	return k.setRaw(i, uint64(math.Float32bits(v)))
}

// Launch describes one NDRange enqueue for batch submission.
type Launch struct {
	Kernel *Kernel
	Global [3]uint32
	Local  [3]uint32
}

// EnqueueKernel runs one kernel synchronously (enqueue + finish). A
// cancelled ctx soft-stops the running kernel at a clause boundary and
// returns ctx.Err(); the context and device stay usable.
func (c *Context) EnqueueKernel(ctx context.Context, k *Kernel, global, local [3]uint32) error {
	return c.EnqueueBatch(ctx, []Launch{{Kernel: k, Global: global, Local: local}})
}

// EnqueueBatch submits a chain of kernel jobs in one doorbell, the job-
// chain facility the hardware Job Manager provides. Argument tables and
// descriptors are written through the guest-code driver path.
func (c *Context) EnqueueBatch(ctx context.Context, launches []Launch) error {
	if len(launches) == 0 {
		return nil
	}
	seen := make(map[*loadedKernel]bool, len(launches))
	for _, l := range launches {
		if seen[l.Kernel.lk] {
			return fmt.Errorf("cl: kernel %s appears twice in one batch; enqueue separately",
				l.Kernel.lk.ck.Name)
		}
		seen[l.Kernel.lk] = true
	}
	for li := len(launches) - 1; li >= 0; li-- {
		l := launches[li]
		k := l.Kernel
		for i, ok := range k.set {
			if !ok {
				return fmt.Errorf("cl: kernel %s argument %d (%s) not set",
					k.lk.ck.Name, i, k.lk.ck.Params[i].Name)
			}
		}
		global, local := normalizeDims(l.Global, l.Local)

		if k.lk.ck.LocalBytes > 0 {
			if err := c.ensureLocal(k.lk.ck.LocalBytes); err != nil {
				return err
			}
		}
		argBuf := make([]byte, 8*len(k.args))
		for i, a := range k.args {
			binary.LittleEndian.PutUint64(argBuf[8*i:], a)
		}
		if len(argBuf) > 0 {
			if err := c.Drv.CopyToDevice(ctx, k.lk.argsVA, argBuf); err != nil {
				return err
			}
		}
		desc := &gpu.JobDescriptor{
			JobType:    gpu.JobTypeCompute,
			GlobalSize: global,
			LocalSize:  local,
			ShaderVA:   k.lk.binVA,
			ShaderSize: uint32(len(k.lk.ck.Binary)),
			ArgsVA:     k.lk.argsVA,
		}
		if k.lk.ck.LocalBytes > 0 {
			desc.LocalMemVA = c.localVA
			desc.LocalMemBytes = k.lk.ck.LocalBytes
		}
		if li+1 < len(launches) {
			desc.NextJobVA = launches[li+1].Kernel.lk.descVA
		}
		if err := c.Drv.WriteDescriptor(ctx, k.lk.descVA, desc); err != nil {
			return err
		}
		c.P.GPU.NoteKernelLaunch()
	}
	return c.Drv.SubmitAndWait(ctx, launches[0].Kernel.lk.descVA)
}

// ensureLocal sizes the driver-allocated local-memory slots for the
// architectural shader-core count (§III-B3: the driver allocates local
// storage for the cores it detects; over-committed simulator threads
// shadow host-side).
func (c *Context) ensureLocal(bytes uint32) error {
	if bytes <= c.localBytes {
		return nil
	}
	cores := c.P.GPU.Config().ShaderCores
	va, err := c.Drv.AllocGPU(int(bytes) * cores)
	if err != nil {
		return err
	}
	c.localVA = va
	c.localBytes = bytes
	return nil
}

func normalizeDims(global, local [3]uint32) ([3]uint32, [3]uint32) {
	for i := 0; i < 3; i++ {
		if global[i] == 0 {
			global[i] = 1
		}
		if local[i] == 0 {
			local[i] = 1
		}
	}
	return global, local
}

// G1 builds a 1-D dimension triple.
func G1(n uint32) [3]uint32 { return [3]uint32{n, 1, 1} }

// G2 builds a 2-D dimension triple.
func G2(x, y uint32) [3]uint32 { return [3]uint32{x, y, 1} }
