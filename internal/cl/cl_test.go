package cl_test

import (
	"context"
	"testing"

	"mobilesim/internal/cl"
	"mobilesim/internal/cpu"
	"mobilesim/internal/gpu"
	"mobilesim/internal/platform"
)

var bg = context.Background()

// newStack boots a platform and opens a CL context on it — the full-system
// path: runtime -> driver (guest code) -> MMIO -> Job Manager -> shader
// cores -> IRQ -> guest ISR.
func newStack(t *testing.T) (*platform.Platform, *cl.Context) {
	t.Helper()
	p, err := platform.New(platform.Config{RAMSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	c, err := cl.NewContext(p, "")
	if err != nil {
		t.Fatal(err)
	}
	return p, c
}

const saxpySrc = `
kernel void saxpy(global float* x, global float* y, float a, int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
`

func TestFullStackSaxpy(t *testing.T) {
	p, c := newStack(t)
	const n = 4096

	xs := make([]float32, n)
	ys := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i)
		ys[i] = float32(3 * i)
	}
	bx, err := c.CreateBuffer(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	by, err := c.CreateBuffer(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteF32(bg, bx, xs); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteF32(bg, by, ys); err != nil {
		t.Fatal(err)
	}

	prog, err := c.BuildProgram(bg, saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("saxpy")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(0, bx); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(1, by); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgFloat(2, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgInt(3, n); err != nil {
		t.Fatal(err)
	}
	if err := c.EnqueueKernel(bg, k, cl.G1(n), cl.G1(64)); err != nil {
		t.Fatal(err)
	}

	got, err := c.ReadF32(bg, by, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := 2.5*xs[i] + ys[i]
		if got[i] != want {
			t.Fatalf("y[%d] = %g, want %g", i, got[i], want)
		}
	}

	// Full-system accounting: the driver's register traffic and IRQ path
	// must be visible in system statistics (Table III machinery).
	_, sys := p.GPU.Stats()
	if sys.ComputeJobs != 1 {
		t.Errorf("compute jobs = %d, want 1", sys.ComputeJobs)
	}
	if sys.IRQsAsserted == 0 {
		t.Error("no GPU interrupts recorded")
	}
	if sys.CtrlRegWrites == 0 || sys.CtrlRegReads == 0 {
		t.Errorf("control register traffic not recorded: %+v", sys)
	}
	if sys.PagesAccessed == 0 {
		t.Error("GPU page accesses not recorded")
	}
	if sys.KernelLaunch != 1 {
		t.Errorf("kernel launches = %d, want 1", sys.KernelLaunch)
	}
	// The driver work ran as guest code on core 0.
	if p.CPUs[0].Instret == 0 {
		t.Error("driver executed no guest instructions")
	}
}

func TestJITCompilerVersionSelectable(t *testing.T) {
	for _, ver := range []string{"5.6", "6.1"} {
		t.Run(ver, func(t *testing.T) {
			p, err := platform.New(platform.Config{RAMSize: 128 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			c, err := cl.NewContext(p, ver)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := c.BuildProgram(bg, saxpySrc)
			if err != nil {
				t.Fatal(err)
			}
			k, err := prog.CreateKernel("saxpy")
			if err != nil {
				t.Fatal(err)
			}
			if k.Report().Registers == 0 {
				t.Error("empty compiler report")
			}
		})
	}
}

func TestUnsetArgumentRejected(t *testing.T) {
	_, c := newStack(t)
	prog, err := c.BuildProgram(bg, saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("saxpy")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnqueueKernel(bg, k, cl.G1(16), cl.G1(16)); err == nil {
		t.Error("enqueue with unset arguments should fail")
	}
}

func TestArgTypeChecking(t *testing.T) {
	_, c := newStack(t)
	prog, err := c.BuildProgram(bg, saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("saxpy")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(2, &cl.Buffer{VA: 0x1000, Size: 16}); err == nil {
		t.Error("binding a buffer to a float parameter should fail")
	}
	if err := k.SetArgInt(9, 1); err == nil {
		t.Error("out-of-range argument index should fail")
	}
	if _, err := prog.CreateKernel("nope"); err == nil {
		t.Error("unknown kernel name should fail")
	}
}

func TestJobChainBatch(t *testing.T) {
	_, c := newStack(t)
	src := `
kernel void addc(global int* a, int c, int n) {
    int i = get_global_id(0);
    if (i < n) { a[i] = a[i] + c; }
}
kernel void dbl(global int* a, int n) {
    int i = get_global_id(0);
    if (i < n) { a[i] = a[i] * 2; }
}
`
	const n = 256
	prog, err := c.BuildProgram(bg, src)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := c.CreateBuffer(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(i)
	}
	if err := c.WriteI32(bg, buf, vals); err != nil {
		t.Fatal(err)
	}
	k1, _ := prog.CreateKernel("addc")
	k2, _ := prog.CreateKernel("dbl")
	if err := k1.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	_ = k1.SetArgInt(1, 10)
	_ = k1.SetArgInt(2, n)
	if err := k2.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	_ = k2.SetArgInt(1, n)

	// One doorbell, two chained jobs: (a+10)*2.
	if err := c.EnqueueBatch(bg, []cl.Launch{
		{Kernel: k1, Global: cl.G1(n), Local: cl.G1(32)},
		{Kernel: k2, Global: cl.G1(n), Local: cl.G1(32)},
	}); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadI32(bg, buf, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := (vals[i] + 10) * 2
		if got[i] != want {
			t.Fatalf("a[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestLocalMemoryThroughFullStack(t *testing.T) {
	_, c := newStack(t)
	src := `
kernel void wgsum(global int* in, global int* out) {
    local int tile[64];
    int l = get_local_id(0);
    int g = get_global_id(0);
    int wg = get_local_size(0);
    tile[l] = in[g];
    barrier();
    if (l == 0) {
        int s = 0;
        for (int j = 0; j < wg; j++) { s += tile[j]; }
        out[get_group_id(0)] = s;
    }
}
`
	const n, wg = 512, 64
	prog, err := c.BuildProgram(bg, src)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := c.CreateBuffer(4 * n)
	out, _ := c.CreateBuffer(4 * (n / wg))
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(i % 100)
	}
	if err := c.WriteI32(bg, in, vals); err != nil {
		t.Fatal(err)
	}
	k, _ := prog.CreateKernel("wgsum")
	_ = k.SetArgBuffer(0, in)
	_ = k.SetArgBuffer(1, out)
	if err := c.EnqueueKernel(bg, k, cl.G1(n), cl.G1(wg)); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadI32(bg, out, n/wg)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < n/wg; g++ {
		var want int32
		for j := 0; j < wg; j++ {
			want += vals[g*wg+j]
		}
		if got[g] != want {
			t.Fatalf("group %d sum = %d, want %d", g, got[g], want)
		}
	}
}

func TestFaultSurfacesAsError(t *testing.T) {
	_, c := newStack(t)
	prog, err := c.BuildProgram(bg, saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := prog.CreateKernel("saxpy")
	// Bogus unmapped buffer.
	_ = k.SetArgBuffer(0, &cl.Buffer{VA: 0xdead0000, Size: 1024})
	_ = k.SetArgBuffer(1, &cl.Buffer{VA: 0xdead8000, Size: 1024})
	_ = k.SetArgFloat(2, 1)
	_ = k.SetArgInt(3, 16)
	if err := c.EnqueueKernel(bg, k, cl.G1(16), cl.G1(16)); err == nil {
		t.Error("kernel on unmapped buffers should report a fault")
	}
}

func TestDriverScalesWithInputOnInterpVsDBT(t *testing.T) {
	// The Fig 9 mechanism in miniature: CPU-side driver cost (guest
	// memcpy) is much cheaper per byte under DBT than under the
	// per-instruction interpreter used by the Multi2Sim-style baseline.
	run := func(engine cpu.Engine) uint64 {
		p, err := platform.New(platform.Config{RAMSize: 128 << 20})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		p.CPUs[0].SetEngine(engine)
		c, err := cl.NewContext(p, "")
		if err != nil {
			t.Fatal(err)
		}
		buf, err := c.CreateBuffer(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.WriteBuffer(bg, buf, make([]byte, 1<<20)); err != nil {
			t.Fatal(err)
		}
		return p.CPUs[0].Instret
	}
	dbt := run(cpu.EngineDBT)
	interp := run(cpu.EngineInterp)
	if dbt == 0 || interp == 0 {
		t.Fatalf("no guest work measured: dbt=%d interp=%d", dbt, interp)
	}
	// Same architectural work: identical instruction counts; the engines
	// differ in host cost, not in guest semantics.
	if dbt != interp {
		t.Errorf("engines retired different instruction counts: %d vs %d", dbt, interp)
	}
	// Instruction count scales with the copy size (~6 instr / 8 bytes).
	if dbt < (1<<20)/8 {
		t.Errorf("driver copy work suspiciously small: %d instr", dbt)
	}
}

var _ = gpu.DefaultConfig // keep import for potential extension
