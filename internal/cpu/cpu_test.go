package cpu_test

import (
	"testing"
	"testing/quick"

	"mobilesim/internal/asm"
	"mobilesim/internal/cpu"
	"mobilesim/internal/irq"
	"mobilesim/internal/mem"
)

const ramBase = 0x8000_0000

func newCore(t *testing.T) (*cpu.Core, *mem.Bus) {
	t.Helper()
	bus := mem.NewBus(mem.NewRAM(ramBase, 8<<20))
	return cpu.NewCore(0, bus, irq.New()), bus
}

// run assembles src, loads it at ramBase, and executes from "main" (or the
// start) until HLT on both engines, checking they agree, then returns the
// core from the DBT run.
func run(t *testing.T, src string) *cpu.Core {
	t.Helper()
	prog, err := asm.Assemble(src, ramBase)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	var final *cpu.Core
	var regs [2][32]uint64
	for i, engine := range []cpu.Engine{cpu.EngineDBT, cpu.EngineInterp} {
		c, bus := newCore(t)
		if err := bus.WriteBytes(ramBase, prog.Code); err != nil {
			t.Fatal(err)
		}
		c.SetEngine(engine)
		entry := prog.Base
		if e, err := prog.Entry("main"); err == nil {
			entry = e
		}
		c.Reset(entry)
		if r := c.Run(1 << 22); r != cpu.StopHalted {
			t.Fatalf("%v: stopped with %v, err=%v, pc=%#x", engine, r, c.Err(), c.PC)
		}
		regs[i] = c.X
		if engine == cpu.EngineDBT {
			final = c
		}
	}
	if regs[0] != regs[1] {
		t.Fatalf("engines disagree:\n dbt    %v\n interp %v", regs[0], regs[1])
	}
	return final
}

func TestArithmeticBasics(t *testing.T) {
	c := run(t, `
main:
    movz x1, #40
    movz x2, #2
    add  x3, x1, x2
    sub  x4, x1, x2
    mul  x5, x1, x2
    udiv x6, x1, x2
    hlt
`)
	want := map[int]uint64{3: 42, 4: 38, 5: 80, 6: 20}
	for r, v := range want {
		if c.X[r] != v {
			t.Errorf("x%d = %d, want %d", r, c.X[r], v)
		}
	}
}

func TestWideMoves(t *testing.T) {
	c := run(t, `
main:
    movz x1, #0xdead, lsl #48
    movk x1, #0xbeef, lsl #32
    movk x1, #0xcafe, lsl #16
    movk x1, #0xf00d
    hlt
`)
	if c.X[1] != 0xdead_beef_cafe_f00d {
		t.Errorf("x1 = %#x", c.X[1])
	}
}

func TestZeroRegister(t *testing.T) {
	c := run(t, `
main:
    movz x1, #7
    add  xzr, x1, x1   // write discarded
    add  x2, xzr, x1   // read as zero
    hlt
`)
	if c.X[31] != 0 {
		t.Errorf("xzr = %d", c.X[31])
	}
	if c.X[2] != 7 {
		t.Errorf("x2 = %d, want 7", c.X[2])
	}
}

func TestLoadsStores(t *testing.T) {
	c := run(t, `
main:
    movz x1, #0x8000, lsl #16
    movk x1, #0x1000          // x1 = ramBase + 0x1000
    movz x2, #0xbeef
    strx x2, [x1]
    strw x2, [x1, #16]
    strh x2, [x1, #24]
    strb x2, [x1, #32]
    ldrx x3, [x1]
    ldrw x4, [x1, #16]
    ldrh x5, [x1, #24]
    ldrb x6, [x1, #32]
    hlt
`)
	if c.X[3] != 0xbeef || c.X[4] != 0xbeef || c.X[5] != 0xbeef || c.X[6] != 0xef {
		t.Errorf("loads: x3=%#x x4=%#x x5=%#x x6=%#x", c.X[3], c.X[4], c.X[5], c.X[6])
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 with a countdown loop.
	c := run(t, `
main:
    movz x1, #10
    movz x2, #0
loop:
    add  x2, x2, x1
    subi x1, x1, #1
    cmpi x1, #0
    b.ne loop
    hlt
`)
	if c.X[2] != 55 {
		t.Errorf("sum = %d, want 55", c.X[2])
	}
}

func TestSignedConditions(t *testing.T) {
	c := run(t, `
main:
    movz x1, #5
    subi x1, x1, #10     // x1 = -5
    cmpi x1, #0
    movz x2, #0
    b.ge skip
    movz x2, #1          // taken: -5 < 0
skip:
    cmpi x1, #-5
    movz x3, #0
    b.ne done
    movz x3, #1          // taken: equal
done:
    hlt
`)
	if c.X[2] != 1 || c.X[3] != 1 {
		t.Errorf("x2=%d x3=%d, want 1 1", c.X[2], c.X[3])
	}
}

func TestCSEL(t *testing.T) {
	c := run(t, `
main:
    movz x1, #3
    movz x2, #9
    cmp  x1, x2
    csel x3, x1, x2, lt   // min
    csel x4, x2, x1, lt   // max
    hlt
`)
	if c.X[3] != 3 || c.X[4] != 9 {
		t.Errorf("min=%d max=%d", c.X[3], c.X[4])
	}
}

func TestCallReturn(t *testing.T) {
	c := run(t, `
main:
    movz x0, #6
    bl   double
    mov  x5, x0
    hlt
double:
    add  x0, x0, x0
    ret
`)
	if c.X[5] != 12 {
		t.Errorf("double(6) = %d", c.X[5])
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	c := run(t, `
main:
    movz x1, #7
    movz x2, #0
    udiv x3, x1, x2      // div by zero -> 0
    sdiv x4, x1, x2      // div by zero -> 0
    subi x5, xzr, #5     // -5
    movz x6, #2
    sdiv x7, x5, x6      // -2 (truncated)
    hlt
`)
	if c.X[3] != 0 || c.X[4] != 0 {
		t.Errorf("div-by-zero: x3=%d x4=%d", c.X[3], c.X[4])
	}
	if int64(c.X[7]) != -2 {
		t.Errorf("sdiv(-5,2) = %d, want -2", int64(c.X[7]))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(opSel uint8, rd, rn, rm uint8, imm int16, condSel uint8) bool {
		ops := []cpu.Opcode{
			cpu.OpADD, cpu.OpSUBI, cpu.OpLDRX, cpu.OpSTRB, cpu.OpMOVZ,
			cpu.OpB, cpu.OpBCOND, cpu.OpCSEL, cpu.OpMRS, cpu.OpSVC,
		}
		in := cpu.Inst{Op: ops[int(opSel)%len(ops)], Rd: rd & 31, Rn: rn & 31, Rm: rm & 31,
			Cond: cpu.Cond(condSel % 15)}
		switch in.Op {
		case cpu.OpADD, cpu.OpCSEL:
			// no immediate
		case cpu.OpMOVZ:
			in.Rn = 0
			in.Rm &= 3
			in.Imm = int64(uint16(imm))
		case cpu.OpMRS:
			in.Rm, in.Rn = 0, 0
			in.Imm = int64(uint8(imm))
		case cpu.OpSVC:
			in.Rd, in.Rn, in.Rm = 0, 0, 0
			in.Imm = int64(uint16(imm))
		case cpu.OpB:
			in.Rd, in.Rn, in.Rm = 0, 0, 0
			in.Imm = int64(imm)
		case cpu.OpBCOND:
			in.Rd, in.Rn, in.Rm = 0, 0, 0
			in.Imm = int64(imm)
		default:
			in.Rm = 0
			in.Imm = int64(imm / 2) // fits 15-bit signed
		}
		if in.Op == cpu.OpADD {
			in.Cond = 0
		}
		if in.Op != cpu.OpCSEL && in.Op != cpu.OpBCOND {
			in.Cond = 0
		}
		out := cpu.Decode(cpu.Encode(in))
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDBTMatchesInterpreterOnFibonacci(t *testing.T) {
	c := run(t, `
main:
    movz x1, #0       // fib(0)
    movz x2, #1       // fib(1)
    movz x3, #20      // iterations
loop:
    add  x4, x1, x2
    mov  x1, x2
    mov  x2, x4
    subi x3, x3, #1
    cmpi x3, #0
    b.ne loop
    hlt
`)
	if c.X[2] != 10946 { // fib(21)
		t.Errorf("fib = %d, want 10946", c.X[2])
	}
}

func TestBlockCacheReuse(t *testing.T) {
	src := `
main:
    movz x1, #1000
loop:
    subi x1, x1, #1
    cmpi x1, #0
    b.ne loop
    hlt
`
	prog, err := asm.Assemble(src, ramBase)
	if err != nil {
		t.Fatal(err)
	}
	c, bus := newCore(t)
	if err := bus.WriteBytes(ramBase, prog.Code); err != nil {
		t.Fatal(err)
	}
	c.Reset(ramBase)
	if r := c.Run(1 << 20); r != cpu.StopHalted {
		t.Fatalf("run: %v", r)
	}
	tr, ex := c.BlockCacheStats()
	if tr > 4 {
		t.Errorf("translations = %d, want <= 4 (block cache not reusing)", tr)
	}
	if ex < 1000 {
		t.Errorf("executions = %d, want >= 1000", ex)
	}
}

func TestSelfModifyingCodeInvalidatesCache(t *testing.T) {
	// The program runs "patch" (movz x2, #1), overwrites that instruction
	// with movz x2, #2 via a guest store, and re-runs it. A stale DBT
	// translation would produce 1 again.
	prog, err := asm.Assemble(`
main:
    bl   patch
    mov  x3, x2        // first result
    strw x1, [x0]      // patch target instruction; x0/x1 set by the host
    bl   patch
    mov  x4, x2        // second result
    hlt
patch:
    movz x2, #1
    ret
`, ramBase)
	if err != nil {
		t.Fatal(err)
	}
	c, bus := newCore(t)
	if err := bus.WriteBytes(ramBase, prog.Code); err != nil {
		t.Fatal(err)
	}
	c.Reset(prog.MustEntry("main"))
	c.X[0] = prog.MustEntry("patch")
	c.X[1] = uint64(cpu.Encode(cpu.Inst{Op: cpu.OpMOVZ, Rd: 2, Imm: 2}))
	if r := c.Run(1 << 16); r != cpu.StopHalted {
		t.Fatalf("run: %v (%v)", r, c.Err())
	}
	if c.X[3] != 1 || c.X[4] != 2 {
		t.Errorf("first=%d second=%d, want 1 then 2 (stale translation?)", c.X[3], c.X[4])
	}
}

func TestHLTStopsAndReports(t *testing.T) {
	c, bus := newCore(t)
	prog, _ := asm.Assemble("main: hlt", ramBase)
	if err := bus.WriteBytes(ramBase, prog.Code); err != nil {
		t.Fatal(err)
	}
	c.Reset(ramBase)
	if r := c.Run(100); r != cpu.StopHalted {
		t.Fatalf("Run = %v", r)
	}
	if !c.Halted() {
		t.Error("Halted() should be true")
	}
	if c.Instret != 1 {
		t.Errorf("Instret = %d, want 1", c.Instret)
	}
}

func TestBudgetStops(t *testing.T) {
	c, bus := newCore(t)
	prog, _ := asm.Assemble("main: b main", ramBase)
	if err := bus.WriteBytes(ramBase, prog.Code); err != nil {
		t.Fatal(err)
	}
	c.Reset(ramBase)
	if r := c.Run(1000); r != cpu.StopBudget {
		t.Fatalf("Run = %v, want budget stop", r)
	}
}

func TestUnmappedFetchStopsWithError(t *testing.T) {
	c, _ := newCore(t)
	c.Reset(0x1234_0000) // nothing there
	if r := c.Run(10); r != cpu.StopError {
		t.Fatalf("Run = %v, want error", r)
	}
	if c.Err() == nil {
		t.Error("Err() should describe the fault")
	}
}

func TestCallRoutineABI(t *testing.T) {
	src := `
addmul:            // returns a*b + c
    mul  x0, x0, x1
    add  x0, x0, x2
    ret
`
	prog, err := asm.Assemble(src, ramBase)
	if err != nil {
		t.Fatal(err)
	}
	c, bus := newCore(t)
	if err := bus.WriteBytes(ramBase, prog.Code); err != nil {
		t.Fatal(err)
	}
	got, err := c.CallRoutine(prog.MustEntry("addmul"), 6, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("addmul(6,7,8) = %d, want 50", got)
	}
}

func TestSVCHostHook(t *testing.T) {
	c, bus := newCore(t)
	prog, _ := asm.Assemble(`
main:
    movz x0, #11
    svc  #42
    hlt
`, ramBase)
	if err := bus.WriteBytes(ramBase, prog.Code); err != nil {
		t.Fatal(err)
	}
	var gotImm uint16
	var gotX0 uint64
	c.OnSVC = func(core *cpu.Core, imm uint16) bool {
		gotImm, gotX0 = imm, core.X[0]
		core.X[0] = 99
		return true
	}
	c.Reset(ramBase)
	if r := c.Run(100); r != cpu.StopHalted {
		t.Fatalf("Run = %v", r)
	}
	if gotImm != 42 || gotX0 != 11 || c.X[0] != 99 {
		t.Errorf("svc hook: imm=%d x0=%d result=%d", gotImm, gotX0, c.X[0])
	}
}
