package cpu_test

import (
	"math/rand"
	"testing"

	"mobilesim/internal/cpu"
	"mobilesim/internal/irq"
	"mobilesim/internal/mem"
)

// Differential fuzzing of the two CPU execution engines: random (but
// well-formed) straight-line programs must leave identical architectural
// state under the interpreter and the DBT block cache. This is the
// CPU-side analogue of the paper's instruction-fuzzing validation.

// genProgram emits a random sequence of ALU and memory instructions. x10
// is pinned to a scratch data region so loads/stores stay in bounds.
func genProgram(rnd *rand.Rand, n int) []uint32 {
	var words []uint32
	emit := func(in cpu.Inst) { words = append(words, cpu.Encode(in)) }

	aluOps := []cpu.Opcode{
		cpu.OpADD, cpu.OpSUB, cpu.OpAND, cpu.OpORR, cpu.OpEOR, cpu.OpMUL,
		cpu.OpSDIV, cpu.OpUDIV, cpu.OpLSL, cpu.OpLSR, cpu.OpASR,
		cpu.OpADDS, cpu.OpSUBS,
	}
	immOps := []cpu.Opcode{
		cpu.OpADDI, cpu.OpSUBI, cpu.OpANDI, cpu.OpORRI, cpu.OpEORI,
		cpu.OpLSLI, cpu.OpLSRI, cpu.OpASRI, cpu.OpSUBSI,
	}
	memOps := []cpu.Opcode{
		cpu.OpLDRB, cpu.OpLDRH, cpu.OpLDRW, cpu.OpLDRX,
		cpu.OpSTRB, cpu.OpSTRH, cpu.OpSTRW, cpu.OpSTRX,
	}
	// Registers x0..x9 are playground; x10 is the data base (preserved).
	reg := func() uint8 { return uint8(rnd.Intn(10)) }

	for i := 0; i < n; i++ {
		switch rnd.Intn(10) {
		case 0, 1, 2, 3:
			emit(cpu.Inst{Op: aluOps[rnd.Intn(len(aluOps))], Rd: reg(), Rn: reg(), Rm: reg()})
		case 4, 5, 6:
			emit(cpu.Inst{Op: immOps[rnd.Intn(len(immOps))], Rd: reg(), Rn: reg(),
				Imm: int64(rnd.Intn(1<<14) - 1<<13)})
		case 7:
			emit(cpu.Inst{Op: cpu.OpMOVZ, Rd: reg(), Rm: uint8(rnd.Intn(4)),
				Imm: int64(rnd.Intn(1 << 16))})
		case 8:
			emit(cpu.Inst{Op: cpu.OpMOVK, Rd: reg(), Rm: uint8(rnd.Intn(4)),
				Imm: int64(rnd.Intn(1 << 16))})
		case 9:
			// Memory access at an aligned offset within the scratch page.
			op := memOps[rnd.Intn(len(memOps))]
			emit(cpu.Inst{Op: op, Rd: reg(), Rn: 10, Imm: int64(rnd.Intn(500) * 8)})
		}
	}
	emit(cpu.Inst{Op: cpu.OpHLT})
	return words
}

func runEngine(t *testing.T, words []uint32, engine cpu.Engine, seed int64) ([32]uint64, []byte) {
	t.Helper()
	bus := mem.NewBus(mem.NewRAM(0x8000_0000, 1<<20))
	c := cpu.NewCore(0, bus, irq.New())
	c.SetEngine(engine)
	code := make([]byte, 4*len(words))
	for i, w := range words {
		code[4*i] = byte(w)
		code[4*i+1] = byte(w >> 8)
		code[4*i+2] = byte(w >> 16)
		code[4*i+3] = byte(w >> 24)
	}
	if err := bus.WriteBytes(0x8000_0000, code); err != nil {
		t.Fatal(err)
	}
	// Deterministic initial register state; x10 -> scratch region.
	rnd := rand.New(rand.NewSource(seed))
	for i := 0; i < 10; i++ {
		c.X[i] = rnd.Uint64()
	}
	const scratch = 0x8008_0000
	c.X[10] = scratch
	c.Reset(0x8000_0000)
	if r := c.Run(1 << 20); r != cpu.StopHalted {
		t.Fatalf("engine %v: stop reason %v (%v)", engine, r, c.Err())
	}
	data := make([]byte, 4096)
	if err := bus.ReadBytes(scratch, data); err != nil {
		t.Fatal(err)
	}
	return c.X, data
}

func TestFuzzEnginesAgree(t *testing.T) {
	rnd := rand.New(rand.NewSource(777))
	for round := 0; round < 200; round++ {
		words := genProgram(rnd, 50+rnd.Intn(100))
		seed := rnd.Int63()
		regsI, memI := runEngine(t, words, cpu.EngineInterp, seed)
		regsD, memD := runEngine(t, words, cpu.EngineDBT, seed)
		if regsI != regsD {
			t.Fatalf("round %d: register files diverge\ninterp: %v\ndbt:    %v", round, regsI, regsD)
		}
		for i := range memI {
			if memI[i] != memD[i] {
				t.Fatalf("round %d: memory diverges at offset %d", round, i)
			}
		}
	}
}

// TestFuzzWithBranches adds forward conditional branches (always to later
// addresses, so programs terminate) and checks engine agreement across
// control flow.
func TestFuzzWithBranches(t *testing.T) {
	rnd := rand.New(rand.NewSource(888))
	for round := 0; round < 100; round++ {
		n := 60
		var words []uint32
		for i := 0; i < n; i++ {
			if rnd.Intn(6) == 0 && i < n-2 {
				// Forward branch over 1..remaining instructions.
				maxSkip := n - i - 1
				skip := 1 + rnd.Intn(maxSkip)
				words = append(words, cpu.Encode(cpu.Inst{
					Op:   cpu.OpBCOND,
					Cond: cpu.Cond(rnd.Intn(14)),
					Imm:  int64(skip),
				}))
				continue
			}
			words = append(words, cpu.Encode(cpu.Inst{
				Op: cpu.OpADDS, Rd: uint8(rnd.Intn(10)),
				Rn: uint8(rnd.Intn(10)), Rm: uint8(rnd.Intn(10)),
			}))
		}
		words = append(words, cpu.Encode(cpu.Inst{Op: cpu.OpHLT}))
		seed := rnd.Int63()
		regsI, _ := runEngine(t, words, cpu.EngineInterp, seed)
		regsD, _ := runEngine(t, words, cpu.EngineDBT, seed)
		if regsI != regsD {
			t.Fatalf("round %d: engines diverge on branches", round)
		}
	}
}
