package cpu

import "fmt"

// Disasm renders a decoded instruction at the given PC in assembler syntax.
// Branch targets are shown as absolute addresses.
func Disasm(in Inst, pc uint64) string {
	switch in.Op {
	case OpNOP, OpHLT, OpERET, OpWFI:
		return in.Op.String()
	case OpSVC:
		return fmt.Sprintf("svc #%d", in.Imm)
	case OpMRS:
		return fmt.Sprintf("mrs x%d, s%d", in.Rd, in.Imm)
	case OpMSR:
		return fmt.Sprintf("msr s%d, x%d", in.Imm, in.Rd)
	case OpADD, OpSUB, OpAND, OpORR, OpEOR, OpMUL, OpSDIV, OpUDIV,
		OpLSL, OpLSR, OpASR, OpADDS, OpSUBS:
		return fmt.Sprintf("%s x%d, x%d, x%d", in.Op, in.Rd, in.Rn, in.Rm)
	case OpCSEL:
		return fmt.Sprintf("csel x%d, x%d, x%d, %s", in.Rd, in.Rn, in.Rm, in.Cond)
	case OpADDI, OpSUBI, OpANDI, OpORRI, OpEORI, OpLSLI, OpLSRI, OpASRI, OpSUBSI:
		return fmt.Sprintf("%s x%d, x%d, #%d", in.Op, in.Rd, in.Rn, in.Imm)
	case OpMOVZ, OpMOVK:
		if in.Rm == 0 {
			return fmt.Sprintf("%s x%d, #%d", in.Op, in.Rd, in.Imm)
		}
		return fmt.Sprintf("%s x%d, #%d, lsl #%d", in.Op, in.Rd, in.Imm, 16*in.Rm)
	case OpLDRB, OpLDRH, OpLDRW, OpLDRX, OpSTRB, OpSTRH, OpSTRW, OpSTRX:
		return fmt.Sprintf("%s x%d, [x%d, #%d]", in.Op, in.Rd, in.Rn, in.Imm)
	case OpB, OpBL:
		return fmt.Sprintf("%s %#x", in.Op, pc+uint64(in.Imm)*4)
	case OpBR, OpBLR:
		return fmt.Sprintf("%s x%d", in.Op, in.Rn)
	case OpBCOND:
		return fmt.Sprintf("b.%s %#x", in.Cond, pc+uint64(in.Imm)*4)
	}
	return fmt.Sprintf(".word %#x (undefined)", Encode(in))
}
