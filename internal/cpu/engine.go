package cpu

import "mobilesim/internal/mem"

// runInterp is the reference execution loop: fetch, decode and execute one
// instruction at a time. Every step pays full translation + decode cost,
// which is precisely the per-instruction-dispatch behaviour the paper's
// baseline comparison attributes Multi2Sim's CPU-side scaling to.
func (c *Core) runInterp(budget uint64) StopReason {
	for budget > 0 && !c.halted {
		if c.pendingIRQ() {
			c.takeIRQ(c.PC)
		}
		w, ok := c.fetch(c.PC)
		if !ok {
			if c.halted {
				return StopError
			}
			continue // vectored to the fault handler
		}
		in := Decode(w)
		c.exec(in, c.PC)
		budget--
	}
	if c.halted {
		if c.stopErr != nil {
			return StopError
		}
		return StopHalted
	}
	return StopBudget
}

// --- DBT engine ----------------------------------------------------------

// maxBlockInsts bounds translated basic blocks. Blocks also end at any
// potential branch and never cross a page boundary (so one translation
// covers the whole block and self-modifying-code invalidation is per page).
const maxBlockInsts = 128

type block struct {
	insts []Inst
	start uint64 // virtual PC of first instruction
}

// blockCache is the translated-code cache: virtual PC -> decoded block.
// It is flushed whenever the address space could have changed (TTBR/SCTLR
// writes) and per page on stores into translated code pages.
type blockCache struct {
	blocks    map[uint64]*block
	codePages map[uint64]struct{} // virtual page numbers holding blocks

	// Translations counts block-translation events (cache misses);
	// Executions counts block dispatches. Their ratio is the DBT hit rate.
	Translations uint64
	Executions   uint64
}

func newBlockCache() *blockCache {
	return &blockCache{
		blocks:    make(map[uint64]*block),
		codePages: make(map[uint64]struct{}),
	}
}

func (bc *blockCache) flush() {
	bc.blocks = make(map[uint64]*block)
	bc.codePages = make(map[uint64]struct{})
}

// noteWrite invalidates translated code on a store into a code page.
// Whole-cache flush keeps the bookkeeping simple; stores into code pages
// are rare (program loading), exactly the trade QEMU's TB cache makes
// coarse-grained.
func (bc *blockCache) noteWrite(va uint64) {
	if len(bc.codePages) == 0 {
		return
	}
	if _, hot := bc.codePages[va>>12]; hot {
		bc.flush()
	}
}

// BlockCacheStats reports (translations, executions) for instrumentation.
func (c *Core) BlockCacheStats() (translations, executions uint64) {
	return c.btc.Translations, c.btc.Executions
}

// translate decodes a basic block starting at c.PC. Returns nil when the
// initial fetch faults (the fault has then been raised).
func (c *Core) translate(start uint64) *block {
	c.btc.Translations++
	b := &block{start: start}
	pc := start
	for len(b.insts) < maxBlockInsts {
		w, ok := c.fetch(pc)
		if !ok {
			if len(b.insts) == 0 {
				return nil
			}
			break // fault will re-trigger when execution reaches it
		}
		in := Decode(w)
		b.insts = append(b.insts, in)
		if in.IsBranch() {
			break
		}
		pc += 4
		if pc&mem.PageMask == 0 {
			break // never cross a page
		}
	}
	c.btc.blocks[start] = b
	c.btc.codePages[start>>12] = struct{}{}
	c.btc.codePages[(pc-1)>>12] = struct{}{}
	return b
}

// runDBT executes through the block cache. Interrupts are recognised at
// block boundaries (QEMU-style), keeping the hot path free of per-
// instruction checks.
func (c *Core) runDBT(budget uint64) StopReason {
	for budget > 0 && !c.halted {
		if c.pendingIRQ() {
			c.takeIRQ(c.PC)
		}
		b := c.btc.blocks[c.PC]
		if b == nil {
			b = c.translate(c.PC)
			if b == nil {
				if c.halted {
					return StopError
				}
				continue // fetch faulted and vectored
			}
		}
		c.btc.Executions++
		pc := b.start
		for _, in := range b.insts {
			c.exec(in, pc)
			if c.PC != pc+4 {
				break // branch taken, fault vectored, or halt
			}
			pc = c.PC
		}
		n := uint64(len(b.insts))
		if n > budget {
			budget = 0
		} else {
			budget -= n
		}
	}
	if c.halted {
		if c.stopErr != nil {
			return StopError
		}
		return StopHalted
	}
	return StopBudget
}
