package cpu

import (
	"fmt"

	"mobilesim/internal/irq"
	"mobilesim/internal/mem"
	"mobilesim/internal/mmu"
)

// Engine selects how a core executes guest code.
type Engine int

const (
	// EngineDBT executes through the basic-block translation cache
	// (decode once per block, replay thereafter). This is the paper's
	// QEMU-style mode and the default.
	EngineDBT Engine = iota
	// EngineInterp decodes every instruction on every execution. It models
	// the per-instruction-dispatch CPU simulation of the Multi2Sim-style
	// baseline and serves as the DBT ablation reference.
	EngineInterp
)

func (e Engine) String() string {
	if e == EngineDBT {
		return "dbt"
	}
	return "interp"
}

// StopReason reports why Run returned.
type StopReason int

const (
	// StopHalted means the core executed HLT.
	StopHalted StopReason = iota
	// StopBudget means the instruction budget was exhausted.
	StopBudget
	// StopError means the core hit an unrecoverable condition (exception
	// with no vector table installed).
	StopError
)

func (r StopReason) String() string {
	switch r {
	case StopHalted:
		return "halted"
	case StopBudget:
		return "budget"
	case StopError:
		return "error"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// SVCHandler is an optional host hook invoked for SVC when the guest has
// not installed a vector table (VBAR == 0). It lets bare-metal example
// programs request host services; a full guest stack installs VBAR and
// handles SVC itself. Returning false halts the core.
type SVCHandler func(c *Core, imm uint16) bool

// Core is one VA64 CPU core: architectural state plus its translation
// machinery. A Core is driven from a single goroutine.
type Core struct {
	// X is the general-purpose register file; X[31] is the zero register.
	X  [32]uint64
	PC uint64

	// NZCV condition flags.
	FlagN, FlagZ, FlagC, FlagV bool

	sys [NumSysRegs]uint64

	bus    *mem.Bus
	walker *mmu.Walker
	intc   *irq.Controller

	engine Engine
	btc    *blockCache

	// Instret counts retired instructions.
	Instret uint64
	// Faults counts taken synchronous exceptions.
	Faults uint64
	// IRQs counts taken interrupts.
	IRQs uint64

	halted  bool
	stopErr error

	// OnSVC is consulted when VBAR is zero; see SVCHandler.
	OnSVC SVCHandler
}

// NewCore creates a core with the given ID wired to the bus and interrupt
// controller. The controller may be nil for device-less unit tests (WFI
// then behaves as NOP).
func NewCore(id int, bus *mem.Bus, intc *irq.Controller) *Core {
	c := &Core{
		bus:    bus,
		walker: mmu.NewWalker(bus),
		intc:   intc,
		engine: EngineDBT,
	}
	c.sys[SysCPUID] = uint64(id)
	c.btc = newBlockCache()
	return c
}

// SetEngine selects the execution engine. Switching flushes the block cache.
func (c *Core) SetEngine(e Engine) {
	c.engine = e
	c.btc.flush()
}

// Engine returns the active execution engine.
func (c *Core) Engine() Engine { return c.engine }

// Walker exposes the core's MMU walker (for platform setup and tests).
func (c *Core) Walker() *mmu.Walker { return c.walker }

// Halted reports whether the core has executed HLT or stopped on error.
func (c *Core) Halted() bool { return c.halted }

// Err returns the unrecoverable error that stopped the core, if any.
func (c *Core) Err() error { return c.stopErr }

// Reset clears halted state and jumps to the entry point. Architectural
// registers keep their values (like a warm reset); callers zero X
// themselves when needed.
func (c *Core) Reset(entry uint64) {
	c.halted = false
	c.stopErr = nil
	c.PC = entry
}

// State is the serializable architectural state of one core, captured
// for platform snapshots. The translation caches (TLB, block translation
// cache) are warm-up state, not architecture, and are rebuilt on demand
// after a restore.
type State struct {
	X       [32]uint64
	PC      uint64
	FlagN   bool
	FlagZ   bool
	FlagC   bool
	FlagV   bool
	Sys     [NumSysRegs]uint64
	Instret uint64
	Faults  uint64
	IRQs    uint64
	Halted  bool
}

// CaptureState snapshots the core's architectural state.
func (c *Core) CaptureState() State {
	return State{
		X: c.X, PC: c.PC,
		FlagN: c.FlagN, FlagZ: c.FlagZ, FlagC: c.FlagC, FlagV: c.FlagV,
		Sys:     c.sys,
		Instret: c.Instret, Faults: c.Faults, IRQs: c.IRQs,
		Halted: c.halted,
	}
}

// RestoreState installs captured architectural state, reapplying MMU
// side effects (TTBR0/SCTLR) and flushing the translation caches. The
// core keeps its identity (CPUID is read-only).
func (c *Core) RestoreState(st State) {
	id := c.sys[SysCPUID]
	c.X = st.X
	c.PC = st.PC
	c.FlagN, c.FlagZ, c.FlagC, c.FlagV = st.FlagN, st.FlagZ, st.FlagC, st.FlagV
	c.sys = st.Sys
	c.sys[SysCPUID] = id
	c.Instret, c.Faults, c.IRQs = st.Instret, st.Faults, st.IRQs
	c.halted = st.Halted
	c.stopErr = nil
	// Reapply MMU side effects only when the restored state needs them: a
	// fresh core already has translation off and empty caches, and the
	// redundant TLB flush is a measurable cost on the microsecond fork
	// path.
	if c.sys[SysSCTLR]&1 != 0 || c.walker.Enabled() {
		c.applyMMU()
	}
}

// Sys reads a system register.
func (c *Core) Sys(r SysReg) uint64 { return c.sys[r] }

// SetSys writes a system register, applying side effects (TTBR0/SCTLR
// reprogram the MMU and flush the translation caches).
func (c *Core) SetSys(r SysReg, v uint64) {
	if r == SysCPUID {
		return // read-only
	}
	c.sys[r] = v
	if r == SysTTBR0 || r == SysSCTLR {
		c.applyMMU()
	}
}

func (c *Core) applyMMU() {
	root := uint64(0)
	if c.sys[SysSCTLR]&1 != 0 {
		root = c.sys[SysTTBR0]
	}
	c.walker.SetRoot(root)
	c.btc.flush() // virtual code mappings may have changed
}

// irqEnabled reports whether the guest has interrupts unmasked.
func (c *Core) irqEnabled() bool { return c.sys[SysIE]&1 != 0 }

// --- Memory access -------------------------------------------------------

// load performs a data load; on fault it takes the exception and reports
// ok=false so the executor abandons the instruction. It goes through the
// walker's combined translate-and-access fast path (TLB-cached host page
// views), falling back to the full translate + bus route on miss or MMIO.
func (c *Core) load(va uint64, size int) (uint64, bool) {
	v, err := c.walker.Load(va, size, mem.Read)
	if err != nil {
		c.raiseSync(ExcAbortRead, va, c.PC)
		return 0, false
	}
	return v, true
}

func (c *Core) store(va uint64, size int, val uint64) bool {
	if err := c.walker.Store(va, size, val); err != nil {
		c.raiseSync(ExcAbortWrit, va, c.PC)
		return false
	}
	c.btc.noteWrite(va)
	return true
}

// fetch translates and reads one instruction word.
func (c *Core) fetch(va uint64) (uint32, bool) {
	if va%4 != 0 {
		c.raiseSync(ExcAbortExec, va, va)
		return 0, false
	}
	w, err := c.walker.Load(va, 4, mem.Execute)
	if err != nil {
		c.raiseSync(ExcAbortExec, va, va)
		return 0, false
	}
	return uint32(w), true
}

// --- Exceptions ----------------------------------------------------------

// raiseSync enters the synchronous exception vector: ESR/FAR/ELR/SPSR are
// latched, interrupts masked, and control transfers to VBAR+VecSync. With
// no vector table installed the core stops with an error (bare-metal test
// programs are expected not to fault).
func (c *Core) raiseSync(cause, far, retPC uint64) {
	c.Faults++
	vbar := c.sys[SysVBAR]
	if vbar == 0 {
		c.halted = true
		c.stopErr = fmt.Errorf("cpu: unhandled exception cause=%d far=%#x pc=%#x", cause, far, retPC)
		return
	}
	c.sys[SysESR] = cause
	c.sys[SysFAR] = far
	c.sys[SysELR] = retPC
	c.sys[SysSPSR] = c.sys[SysIE]
	c.sys[SysIE] = 0
	c.PC = vbar + VecSync
}

// takeIRQ enters the IRQ vector. retPC is the instruction to resume at.
// The interrupt is claimed from the controller (clearing its pending
// latch, like reading a GIC's IAR); the claimed line number is made
// visible to the handler in ESR as 0x100|line.
func (c *Core) takeIRQ(retPC uint64) {
	vbar := c.sys[SysVBAR]
	if vbar == 0 {
		// No handler installed: leave the interrupt pending; the host-side
		// stack (driver model) will claim it instead.
		return
	}
	line, ok := c.intc.Claim()
	if !ok {
		return // raced with another claimer
	}
	c.IRQs++
	c.sys[SysESR] = 0x100 | uint64(line)
	c.sys[SysELR] = retPC
	c.sys[SysSPSR] = c.sys[SysIE]
	c.sys[SysIE] = 0
	c.PC = vbar + VecIRQ
}

// eret returns from an exception.
func (c *Core) eret() {
	c.sys[SysIE] = c.sys[SysSPSR]
	c.PC = c.sys[SysELR]
}

// pendingIRQ reports whether an interrupt should be taken now.
func (c *Core) pendingIRQ() bool {
	return c.intc != nil && c.irqEnabled() && c.sys[SysVBAR] != 0 && c.intc.Pending()
}

// --- Top-level run loop --------------------------------------------------

// Run executes up to budget instructions and returns why it stopped.
func (c *Core) Run(budget uint64) StopReason {
	if c.engine == EngineDBT {
		return c.runDBT(budget)
	}
	return c.runInterp(budget)
}

// CallRoutine performs a host-initiated guest call: arguments in X0..X7,
// LR set to a sentinel, execution until the routine returns (BR LR to the
// sentinel) or halts. It returns X0. This is how the driver model runs its
// guest-code helpers (memcpy, descriptor writers) on the simulated CPU.
func (c *Core) CallRoutine(entry uint64, args ...uint64) (uint64, error) {
	const sentinel = 0xFFFF_FFFF_FFFF_FF00
	if len(args) > 8 {
		return 0, fmt.Errorf("cpu: CallRoutine: too many args (%d)", len(args))
	}
	for i, a := range args {
		c.X[i] = a
	}
	for i := len(args); i < 8; i++ {
		c.X[i] = 0
	}
	c.X[LR] = sentinel
	c.halted = false
	c.stopErr = nil
	c.PC = entry
	for {
		c.Run(1 << 22)
		if c.PC == sentinel {
			return c.X[0], nil
		}
		if c.halted {
			if c.stopErr != nil {
				return 0, c.stopErr
			}
			return c.X[0], nil // HLT also terminates a routine
		}
	}
}
