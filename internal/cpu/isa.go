// Package cpu implements the VA64 guest CPU: an AArch64-flavoured 64-bit
// RISC ISA with fixed 32-bit instruction words, a full-system execution
// model (MMU, exceptions, interrupts, system registers), and two execution
// engines — a reference interpreter and a basic-block-caching dynamic
// binary translation (DBT) engine in the style the paper borrows from QEMU.
package cpu

import "fmt"

// Opcode enumerates VA64 instructions. Values are the 7-bit field in
// instruction bits [31:25].
type Opcode uint8

// VA64 opcodes.
const (
	OpNOP Opcode = iota
	OpHLT
	OpSVC
	OpERET
	OpWFI
	OpMRS
	OpMSR

	// Register-register ALU (R-format).
	OpADD
	OpSUB
	OpAND
	OpORR
	OpEOR
	OpMUL
	OpSDIV
	OpUDIV
	OpLSL
	OpLSR
	OpASR
	OpADDS
	OpSUBS
	OpCSEL

	// Register-immediate ALU (I-format, signed 15-bit immediate).
	OpADDI
	OpSUBI
	OpANDI
	OpORRI
	OpEORI
	OpLSLI
	OpLSRI
	OpASRI
	OpSUBSI

	// Wide moves (MOV-format: 16-bit immediate, 2-bit halfword selector).
	OpMOVZ
	OpMOVK

	// Loads and stores (I-format: base register + signed byte offset).
	OpLDRB
	OpLDRH
	OpLDRW
	OpLDRX
	OpSTRB
	OpSTRH
	OpSTRW
	OpSTRX

	// Control flow.
	OpB     // B-format: signed 25-bit word offset
	OpBL    // B-format
	OpBR    // R-format: target in Rn
	OpBLR   // R-format
	OpBCOND // C-format: condition + signed 21-bit word offset

	// NumOpcodes is the number of defined opcodes.
	NumOpcodes
)

var opNames = map[Opcode]string{
	OpNOP: "nop", OpHLT: "hlt", OpSVC: "svc", OpERET: "eret", OpWFI: "wfi",
	OpMRS: "mrs", OpMSR: "msr",
	OpADD: "add", OpSUB: "sub", OpAND: "and", OpORR: "orr", OpEOR: "eor",
	OpMUL: "mul", OpSDIV: "sdiv", OpUDIV: "udiv",
	OpLSL: "lsl", OpLSR: "lsr", OpASR: "asr",
	OpADDS: "adds", OpSUBS: "subs", OpCSEL: "csel",
	OpADDI: "addi", OpSUBI: "subi", OpANDI: "andi", OpORRI: "orri",
	OpEORI: "eori", OpLSLI: "lsli", OpLSRI: "lsri", OpASRI: "asri",
	OpSUBSI: "subsi",
	OpMOVZ:  "movz", OpMOVK: "movk",
	OpLDRB: "ldrb", OpLDRH: "ldrh", OpLDRW: "ldrw", OpLDRX: "ldrx",
	OpSTRB: "strb", OpSTRH: "strh", OpSTRW: "strw", OpSTRX: "strx",
	OpB: "b", OpBL: "bl", OpBR: "br", OpBLR: "blr", OpBCOND: "b.",
}

func (op Opcode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// Cond is a branch/select condition, evaluated against the NZCV flags.
type Cond uint8

// Branch conditions (AArch64 numbering for the familiar ones).
const (
	CondEQ Cond = iota
	CondNE
	CondHS
	CondLO
	CondMI
	CondPL
	CondVS
	CondVC
	CondHI
	CondLS
	CondGE
	CondLT
	CondGT
	CondLE
	CondAL
)

var condNames = [...]string{
	"eq", "ne", "hs", "lo", "mi", "pl", "vs", "vc",
	"hi", "ls", "ge", "lt", "gt", "le", "al",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond%d", uint8(c))
}

// SysReg identifies a system register accessed via MRS/MSR.
type SysReg uint8

// System registers.
const (
	SysTTBR0    SysReg = iota // translation table base
	SysVBAR                   // exception vector base
	SysSCTLR                  // system control: bit 0 = MMU enable
	SysESR                    // exception syndrome
	SysFAR                    // fault address
	SysELR                    // exception link register
	SysSPSR                   // saved program status (bit 0 = IE)
	SysCPUID                  // core number, read-only
	SysIE                     // interrupt enable: bit 0
	SysSCRATCH0               // scratch, free for guest use
	SysSCRATCH1
	NumSysRegs
)

// Exception syndrome causes, written to ESR on exception entry. The SVC
// immediate is placed in ESR bits [31:16].
const (
	ExcNone      uint64 = 0
	ExcSVC       uint64 = 1
	ExcAbortRead uint64 = 2
	ExcAbortWrit uint64 = 3
	ExcAbortExec uint64 = 4
	ExcUndefined uint64 = 5
)

// Exception vector offsets from VBAR.
const (
	VecSync uint64 = 0x000
	VecIRQ  uint64 = 0x080
)

// ZR is the zero-register index: reads as zero, writes are discarded.
const ZR = 31

// LR is the link register used by BL/BLR.
const LR = 30

// Inst is one decoded VA64 instruction. The decoder produces it once; the
// DBT engine caches slices of them per basic block.
type Inst struct {
	Op   Opcode
	Rd   uint8
	Rn   uint8
	Rm   uint8
	Cond Cond
	Imm  int64 // immediate / shift amount / halfword selector, per format
}

// IsBranch reports whether the instruction (potentially) redirects control
// flow, ending a DBT basic block.
func (in Inst) IsBranch() bool {
	switch in.Op {
	case OpB, OpBL, OpBR, OpBLR, OpBCOND, OpSVC, OpERET, OpHLT, OpWFI:
		return true
	}
	return false
}

// Field layout shared by Encode and Decode.
const (
	shiftOp = 25
	shiftRd = 20
	shiftRn = 15
	shiftRm = 10

	maskReg   = 0x1F
	mask15    = 0x7FFF
	mask16    = 0xFFFF
	mask21    = 0x1FFFFF
	mask25    = 0x1FFFFFF
	signBit15 = 1 << 14
	signBit21 = 1 << 20
	signBit25 = 1 << 24
)

// Encode packs a decoded instruction into its 32-bit word. It is the
// inverse of Decode and is used by the assembler.
func Encode(in Inst) uint32 {
	w := uint32(in.Op) << shiftOp
	switch in.Op {
	case OpNOP, OpHLT, OpERET, OpWFI:
		// no operands
	case OpSVC:
		w |= uint32(in.Imm) & mask16
	case OpMRS, OpMSR:
		w |= uint32(in.Rd&maskReg) << shiftRd
		w |= uint32(in.Imm) & 0xFF
	case OpADD, OpSUB, OpAND, OpORR, OpEOR, OpMUL, OpSDIV, OpUDIV,
		OpLSL, OpLSR, OpASR, OpADDS, OpSUBS:
		w |= uint32(in.Rd&maskReg) << shiftRd
		w |= uint32(in.Rn&maskReg) << shiftRn
		w |= uint32(in.Rm&maskReg) << shiftRm
	case OpCSEL:
		w |= uint32(in.Rd&maskReg) << shiftRd
		w |= uint32(in.Rn&maskReg) << shiftRn
		w |= uint32(in.Rm&maskReg) << shiftRm
		w |= uint32(in.Cond) & 0xF
	case OpADDI, OpSUBI, OpANDI, OpORRI, OpEORI, OpLSLI, OpLSRI, OpASRI, OpSUBSI,
		OpLDRB, OpLDRH, OpLDRW, OpLDRX, OpSTRB, OpSTRH, OpSTRW, OpSTRX:
		w |= uint32(in.Rd&maskReg) << shiftRd
		w |= uint32(in.Rn&maskReg) << shiftRn
		w |= uint32(in.Imm) & mask15
	case OpMOVZ, OpMOVK:
		w |= uint32(in.Rd&maskReg) << shiftRd
		w |= (uint32(in.Rm) & 0x3) << 16 // halfword selector
		w |= uint32(in.Imm) & mask16
	case OpB, OpBL:
		w |= uint32(in.Imm) & mask25
	case OpBR, OpBLR:
		w |= uint32(in.Rn&maskReg) << shiftRn
	case OpBCOND:
		w |= (uint32(in.Cond) & 0xF) << 21
		w |= uint32(in.Imm) & mask21
	default:
		panic(fmt.Sprintf("cpu: Encode: unknown opcode %v", in.Op))
	}
	return w
}

// Decode unpacks a 32-bit instruction word. Unknown opcodes decode to an
// Inst with Op >= NumOpcodes; executing one raises an undefined-instruction
// exception.
func Decode(w uint32) Inst {
	op := Opcode(w >> shiftOp)
	in := Inst{Op: op}
	switch op {
	case OpNOP, OpHLT, OpERET, OpWFI:
	case OpSVC:
		in.Imm = int64(w & mask16)
	case OpMRS, OpMSR:
		in.Rd = uint8((w >> shiftRd) & maskReg)
		in.Imm = int64(w & 0xFF)
	case OpADD, OpSUB, OpAND, OpORR, OpEOR, OpMUL, OpSDIV, OpUDIV,
		OpLSL, OpLSR, OpASR, OpADDS, OpSUBS:
		in.Rd = uint8((w >> shiftRd) & maskReg)
		in.Rn = uint8((w >> shiftRn) & maskReg)
		in.Rm = uint8((w >> shiftRm) & maskReg)
	case OpCSEL:
		in.Rd = uint8((w >> shiftRd) & maskReg)
		in.Rn = uint8((w >> shiftRn) & maskReg)
		in.Rm = uint8((w >> shiftRm) & maskReg)
		in.Cond = Cond(w & 0xF)
	case OpADDI, OpSUBI, OpANDI, OpORRI, OpEORI, OpLSLI, OpLSRI, OpASRI, OpSUBSI,
		OpLDRB, OpLDRH, OpLDRW, OpLDRX, OpSTRB, OpSTRH, OpSTRW, OpSTRX:
		in.Rd = uint8((w >> shiftRd) & maskReg)
		in.Rn = uint8((w >> shiftRn) & maskReg)
		in.Imm = signExtend(uint64(w&mask15), signBit15)
	case OpMOVZ, OpMOVK:
		in.Rd = uint8((w >> shiftRd) & maskReg)
		in.Rm = uint8((w >> 16) & 0x3)
		in.Imm = int64(w & mask16)
	case OpB, OpBL:
		in.Imm = signExtend(uint64(w&mask25), signBit25)
	case OpBR, OpBLR:
		in.Rn = uint8((w >> shiftRn) & maskReg)
	case OpBCOND:
		in.Cond = Cond((w >> 21) & 0xF)
		in.Imm = signExtend(uint64(w&mask21), signBit21)
	}
	return in
}

func signExtend(v uint64, signBit uint64) int64 {
	if v&signBit != 0 {
		v |= ^(signBit*2 - 1)
	}
	return int64(v)
}
