package cpu

// exec executes one decoded instruction located at pc. It updates all
// architectural state including c.PC (branches redirect, faults vector,
// everything else falls through to pc+4). Shared by both engines so their
// semantics cannot drift.
func (c *Core) exec(in Inst, pc uint64) {
	c.Instret++
	next := pc + 4

	// Read sources before any write: Rd may alias Rn/Rm.
	rn := c.X[in.Rn]
	rm := c.X[in.Rm]

	switch in.Op {
	case OpNOP:

	case OpHLT:
		c.halted = true
		c.PC = pc
		return

	case OpSVC:
		if c.sys[SysVBAR] != 0 {
			c.raiseSync(ExcSVC|uint64(in.Imm)<<16, 0, next)
			return
		}
		if c.OnSVC != nil {
			if !c.OnSVC(c, uint16(in.Imm)) {
				c.halted = true
				c.PC = pc
				return
			}
		} else {
			c.halted = true
			c.stopErr = errNoSVC(pc, uint16(in.Imm))
			c.PC = pc
			return
		}

	case OpERET:
		c.eret()
		return

	case OpWFI:
		if c.intc != nil && !c.intc.Pending() {
			// Park until any line is asserted; delivery happens at the top
			// of the run loop.
			<-c.intc.WaitChan()
		}

	case OpMRS:
		c.setReg(in.Rd, c.sys[SysReg(in.Imm)%NumSysRegs])

	case OpMSR:
		c.SetSys(SysReg(in.Imm)%NumSysRegs, c.X[in.Rd])

	case OpADD:
		c.setReg(in.Rd, rn+rm)
	case OpSUB:
		c.setReg(in.Rd, rn-rm)
	case OpAND:
		c.setReg(in.Rd, rn&rm)
	case OpORR:
		c.setReg(in.Rd, rn|rm)
	case OpEOR:
		c.setReg(in.Rd, rn^rm)
	case OpMUL:
		c.setReg(in.Rd, rn*rm)
	case OpSDIV:
		if rm == 0 {
			c.setReg(in.Rd, 0)
		} else if int64(rn) == -1<<63 && int64(rm) == -1 {
			c.setReg(in.Rd, rn) // overflow wraps, as on AArch64
		} else {
			c.setReg(in.Rd, uint64(int64(rn)/int64(rm)))
		}
	case OpUDIV:
		if rm == 0 {
			c.setReg(in.Rd, 0)
		} else {
			c.setReg(in.Rd, rn/rm)
		}
	case OpLSL:
		c.setReg(in.Rd, rn<<(rm&63))
	case OpLSR:
		c.setReg(in.Rd, rn>>(rm&63))
	case OpASR:
		c.setReg(in.Rd, uint64(int64(rn)>>(rm&63)))

	case OpADDS:
		c.setReg(in.Rd, c.addFlags(rn, rm))
	case OpSUBS:
		c.setReg(in.Rd, c.subFlags(rn, rm))
	case OpSUBSI:
		c.setReg(in.Rd, c.subFlags(rn, uint64(in.Imm)))

	case OpCSEL:
		if c.condHolds(in.Cond) {
			c.setReg(in.Rd, rn)
		} else {
			c.setReg(in.Rd, rm)
		}

	case OpADDI:
		c.setReg(in.Rd, rn+uint64(in.Imm))
	case OpSUBI:
		c.setReg(in.Rd, rn-uint64(in.Imm))
	case OpANDI:
		c.setReg(in.Rd, rn&uint64(in.Imm))
	case OpORRI:
		c.setReg(in.Rd, rn|uint64(in.Imm))
	case OpEORI:
		c.setReg(in.Rd, rn^uint64(in.Imm))
	case OpLSLI:
		c.setReg(in.Rd, rn<<(uint64(in.Imm)&63))
	case OpLSRI:
		c.setReg(in.Rd, rn>>(uint64(in.Imm)&63))
	case OpASRI:
		c.setReg(in.Rd, uint64(int64(rn)>>(uint64(in.Imm)&63)))

	case OpMOVZ:
		c.setReg(in.Rd, uint64(in.Imm)<<(16*uint(in.Rm)))
	case OpMOVK:
		shift := 16 * uint(in.Rm)
		v := c.X[in.Rd] &^ (uint64(0xFFFF) << shift)
		c.setReg(in.Rd, v|uint64(in.Imm)<<shift)

	case OpLDRB, OpLDRH, OpLDRW, OpLDRX:
		size := loadStoreSize(in.Op)
		v, ok := c.load(rn+uint64(in.Imm), size)
		if !ok {
			return
		}
		c.setReg(in.Rd, v)

	case OpSTRB, OpSTRH, OpSTRW, OpSTRX:
		size := loadStoreSize(in.Op)
		if !c.store(rn+uint64(in.Imm), size, c.X[in.Rd]) {
			return
		}

	case OpB:
		c.PC = pc + uint64(in.Imm)*4
		return
	case OpBL:
		c.setReg(LR, next)
		c.PC = pc + uint64(in.Imm)*4
		return
	case OpBR:
		c.PC = rn
		return
	case OpBLR:
		c.setReg(LR, next)
		c.PC = rn
		return
	case OpBCOND:
		if c.condHolds(in.Cond) {
			c.PC = pc + uint64(in.Imm)*4
			return
		}

	default:
		c.raiseSync(ExcUndefined, 0, pc)
		return
	}

	c.PC = next
}

func loadStoreSize(op Opcode) int {
	switch op {
	case OpLDRB, OpSTRB:
		return 1
	case OpLDRH, OpSTRH:
		return 2
	case OpLDRW, OpSTRW:
		return 4
	default:
		return 8
	}
}

func (c *Core) setReg(r uint8, v uint64) {
	if r != ZR {
		c.X[r] = v
	}
}

func (c *Core) addFlags(a, b uint64) uint64 {
	r := a + b
	c.FlagN = int64(r) < 0
	c.FlagZ = r == 0
	c.FlagC = r < a
	c.FlagV = (int64(a) >= 0) == (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0)
	return r
}

func (c *Core) subFlags(a, b uint64) uint64 {
	r := a - b
	c.FlagN = int64(r) < 0
	c.FlagZ = r == 0
	c.FlagC = a >= b
	c.FlagV = (int64(a) >= 0) != (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0)
	return r
}

func (c *Core) condHolds(cond Cond) bool {
	switch cond {
	case CondEQ:
		return c.FlagZ
	case CondNE:
		return !c.FlagZ
	case CondHS:
		return c.FlagC
	case CondLO:
		return !c.FlagC
	case CondMI:
		return c.FlagN
	case CondPL:
		return !c.FlagN
	case CondVS:
		return c.FlagV
	case CondVC:
		return !c.FlagV
	case CondHI:
		return c.FlagC && !c.FlagZ
	case CondLS:
		return !c.FlagC || c.FlagZ
	case CondGE:
		return c.FlagN == c.FlagV
	case CondLT:
		return c.FlagN != c.FlagV
	case CondGT:
		return !c.FlagZ && c.FlagN == c.FlagV
	case CondLE:
		return c.FlagZ || c.FlagN != c.FlagV
	case CondAL:
		return true
	}
	return false
}

type svcError struct {
	pc  uint64
	imm uint16
}

func (e *svcError) Error() string {
	return "cpu: SVC with no handler installed"
}

func errNoSVC(pc uint64, imm uint16) error { return &svcError{pc: pc, imm: imm} }
