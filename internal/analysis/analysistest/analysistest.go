// Package analysistest runs simlint analyzers over fixture packages and
// compares the diagnostics against expectations embedded in the fixture
// source, in the spirit of golang.org/x/tools/go/analysis/analysistest:
//
//	bad()  // want "regexp matching the finding message"
//	ok()   // want-suppressed "regexp" — an annotated (suppressed) finding
//
// Every unsuppressed finding must be matched by a want comment on its
// line, every suppressed finding by a want-suppressed comment, and every
// expectation must be met — extra and missing findings both fail.
//
// Fixtures live under testdata/src/<analyzer>/, so the go command never
// sees them as packages of the module; they may still import real
// module packages (mobilesim/internal/mem, ...), which the source
// importer resolves as long as the test process runs inside the module
// (the default for go test).
package analysistest

import (
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mobilesim/internal/analysis"
)

// expectation is one want/want-suppressed comment.
type expectation struct {
	file       string
	line       int
	re         *regexp.Regexp
	suppressed bool
	met        bool
}

var wantRE = regexp.MustCompile(`//\s*(want(?:-suppressed)?)\s+"((?:[^"\\]|\\.)*)"`)

// Run analyzes the fixture package rooted at dir (its .go files, no
// recursion) under the given import path and reports mismatches on t.
func Run(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	p := &analysis.Package{Dir: dir, ImportPath: importPath}
	var expects []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		p.Files = append(p.Files, f)
		exp, err := parseWants(path)
		if err != nil {
			t.Fatal(err)
		}
		expects = append(expects, exp...)
	}
	if len(p.Files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	imp := importer.ForCompiler(fset, "source", nil)
	diags, err := analysis.CheckPackage(fset, imp, p, analyzers)
	if err != nil {
		t.Fatalf("checking fixture %s: %v", importPath, err)
	}

	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.file == d.Pos.Filename && e.line == d.Pos.Line &&
				e.suppressed == d.Suppressed && e.re.MatchString(d.Message) {
				e.met = true
				matched = true
			}
		}
		if !matched {
			kind := "finding"
			if d.Suppressed {
				kind = "suppressed finding"
			}
			t.Errorf("unexpected %s: %s", kind, d)
		}
	}
	for _, e := range expects {
		if !e.met {
			kind := "want"
			if e.suppressed {
				kind = "want-suppressed"
			}
			t.Errorf("%s:%d: %s %q: no matching finding", e.file, e.line, kind, e.re)
		}
	}
}

// parseWants scans a fixture file's source for want comments. It works
// on raw lines rather than the AST so expectations inside commented-out
// regions are impossible and column details are irrelevant.
func parseWants(path string) ([]*expectation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
			unq, err := unquote(m[2])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want string %q: %v", path, i+1, m[2], err)
			}
			re, err := regexp.Compile(unq)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want regexp: %v", path, i+1, err)
			}
			out = append(out, &expectation{
				file:       path,
				line:       i + 1,
				re:         re,
				suppressed: m[1] == "want-suppressed",
			})
		}
	}
	return out, nil
}

// unquote resolves backslash escapes inside a want string (\" and \\).
func unquote(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			if i >= len(s) {
				return "", fmt.Errorf("trailing backslash")
			}
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}
