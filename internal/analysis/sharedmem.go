package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// memPkg and mmuPkg are the packages whose accessors the sharedmem
// contract is about.
const (
	memPkg = "mobilesim/internal/mem"
	mmuPkg = "mobilesim/internal/mmu"
)

// sharedMemEnforced lists the packages that execute concurrent guest
// code: inside them, every guest-RAM access must go through the atomic
// mem accessors or a shared mmu.Walker (DESIGN.md §7). The GPU package
// runs one goroutine per virtual shader core plus the Job Manager, all
// racing on guest memory by (guest) design.
var sharedMemEnforced = []string{
	"mobilesim/internal/gpu",
}

// forbidden non-atomic entry points, by receiver type within memPkg.
// The plain Bus/RAM paths compile fine and pass -race on lucky
// schedules, which is exactly why they are flagged statically.
var sharedMemMethods = map[string]map[string]bool{
	"Bus": {
		"Read": true, "Write": true,
		"ReadBytes": true, "WriteBytes": true,
		"Slice": true,
	},
	"RAM": {
		"Read": true, "Write": true,
		"Slice": true, "Bytes": true,
	},
}

// forbidden package-level functions: plain little-endian host-view
// accessors (memPkg) and the plain-mode walker constructor (mmuPkg —
// concurrent guest executors must build walkers with NewSharedWalker).
var sharedMemFuncs = map[string]map[string]bool{
	memPkg: {"LoadLE": true, "StoreLE": true},
	mmuPkg: {"NewWalker": true},
}

// SharedMemAnalyzer is the production sharedmem instance, enforcing the
// default concurrent-guest package set.
var SharedMemAnalyzer = NewSharedMem(sharedMemEnforced...)

// NewSharedMem builds a sharedmem analyzer enforcing the given package
// paths (used by tests to point the contract at fixture packages).
func NewSharedMem(enforced ...string) *Analyzer {
	set := make(map[string]bool, len(enforced))
	for _, p := range enforced {
		set[p] = true
	}
	a := &Analyzer{
		Name: "sharedmem",
		Doc:  "guest-RAM accesses in concurrent-guest packages must use the atomic mem accessors / shared mmu.Walker paths",
	}
	a.Run = func(pass *Pass) {
		if !set[pass.Pkg.Path()] {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if recv, name, ok := resolveCallee(pass, sel); ok {
					pass.Reportf(call.Pos(),
						"non-atomic guest-RAM access: %s.%s bypasses the race-clean memory model (DESIGN.md §7); use the shared mmu.Walker accessors or mem.Atomic*, or annotate the site",
						recv, name)
				}
				return true
			})
		}
	}
	return a
}

// resolveCallee reports whether sel resolves to a forbidden accessor,
// returning a display name for the receiver ("mem.Bus", "mem") and the
// callee name.
func resolveCallee(pass *Pass, sel *ast.SelectorExpr) (string, string, bool) {
	// Method call: resolve the receiver's named type and package.
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
		fn, ok := s.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != memPkg {
			return "", "", false
		}
		named := namedRecv(s.Recv())
		if named == "" || !sharedMemMethods[named][fn.Name()] {
			return "", "", false
		}
		return "mem." + named, fn.Name(), true
	}
	// Package-level function call.
	if obj, ok := pass.TypesInfo.Uses[sel.Sel]; ok {
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
			if names := sharedMemFuncs[fn.Pkg().Path()]; names[fn.Name()] {
				short := fn.Pkg().Path()
				short = short[strings.LastIndex(short, "/")+1:]
				return short, fn.Name(), true
			}
		}
	}
	return "", "", false
}

// namedRecv returns the name of the receiver's named type, stripping a
// pointer, or "".
func namedRecv(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
