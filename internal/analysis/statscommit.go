package analysis

import (
	"go/ast"
	"go/types"
)

// statsPkg is the instrumentation data-model package whose counters the
// exact-counter contract (DESIGN.md §9) pins across engines.
const statsPkg = "mobilesim/internal/stats"

// statsCounterTypes are the counter records: any mutation of their
// fields outside a designated commit site breaks the bit-identical
// counters guarantee the differential/golden-test pyramid rests on.
var statsCounterTypes = map[string]bool{
	"GPUStats":    true,
	"SystemStats": true,
}

// StatsCommitAnalyzer flags mutations of internal/stats counter fields
// outside designated commit sites. A commit site is a function or
// method whose doc comment carries
//
//	//simlint:commit -- <reason>
//
// mutations lexically inside it (closures included — the engines
// compile counter bookkeeping into clause closures) are legal, as is
// everything inside package internal/stats itself (Merge/Sub are the
// canonical commit helpers).
var StatsCommitAnalyzer = &Analyzer{
	Name: "statscommit",
	Doc:  "internal/stats counter fields may only be mutated inside designated //simlint:commit functions",
	Run:  runStatsCommit,
}

func runStatsCommit(pass *Pass) {
	if pass.Pkg.Path() == statsPkg {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if ok, _ := hasCommitDirective(fd.Doc); ok {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						if field, typ := statsMutationTarget(pass, lhs); field != "" {
							pass.Reportf(lhs.Pos(),
								"stats counter %s.%s mutated outside a commit site: mark %s with //simlint:commit or move the bookkeeping into one (DESIGN.md §9)",
								typ, field, name)
						}
					}
				case *ast.IncDecStmt:
					if field, typ := statsMutationTarget(pass, st.X); field != "" {
						pass.Reportf(st.X.Pos(),
							"stats counter %s.%s mutated outside a commit site: mark %s with //simlint:commit or move the bookkeeping into one (DESIGN.md §9)",
							typ, field, name)
					}
				}
				return true
			})
		}
	}
}

// statsMutationTarget reports whether expr denotes a mutable reference
// into a stats counter record: a selector for a field of
// stats.GPUStats/stats.SystemStats (possibly through indexing, for
// ClauseSizeHist[i]), or a struct field whose own type is one of the
// counter records (whole-record overwrites like a ResetStats). It
// returns the field name and owning type name, or "", "".
func statsMutationTarget(pass *Pass, expr ast.Expr) (string, string) {
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
			continue
		case *ast.ParenExpr:
			expr = e.X
			continue
		case *ast.StarExpr:
			expr = e.X
			continue
		}
		break
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", ""
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return "", ""
	}
	// Case 1: the field belongs to one of the counter records.
	if name := counterTypeName(s.Recv()); name != "" {
		return field.Name(), name
	}
	// Case 2: the field's own type is a counter record (whole-record
	// assignment resets every counter at once).
	if name := counterTypeName(field.Type()); name != "" {
		return field.Name(), name
	}
	return "", ""
}

// counterTypeName returns the type name when t (pointer-stripped) is a
// stats counter record, else "".
func counterTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != statsPkg || !statsCounterTypes[obj.Name()] {
		return ""
	}
	return obj.Name()
}
