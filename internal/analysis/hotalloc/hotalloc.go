// Package hotalloc implements simlint's build-time escape-analysis
// gate: a checked-in manifest pins the functions on the simulator's
// zero-alloc hot paths (walker load/store hit paths, the shared atomic
// fast path, the warp engine's fused-clause and vector-ALU kernels),
// and the gate verifies them against the compiler's own escape analysis
// (`go build -gcflags=-m`). A heap escape introduced into a pinned
// function fails the lint immediately, instead of waiting for a
// testing.AllocsPerRun pin to execute the exact shape that allocates.
//
// Manifest grammar (one entry per line, '#' comments):
//
//	<import-path> <decl> [+closures]
//
// where <decl> is a function name (AtomicLoad32), a method with its
// pointer-stripped receiver (Walker.Load), or a package-level var whose
// initializer holds function literals (vvKernels). By default the
// declaration's body is checked excluding nested function literals
// (creating a closure heap-allocates at compile time, which is fine off
// the hot path); with +closures only the literals' bodies are checked —
// that pins code the engines compile once and execute per clause.
//
// Two diagnostic classes are always exempt: "func literal escapes to
// heap" at a literal's opening line (the closure object itself), and
// escapes inside panic(...) arguments (panic aborts the simulation; the
// fmt boxing on those guard paths never runs on the hot path).
package hotalloc

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one pinned declaration.
type Entry struct {
	Pkg      string // import path
	Decl     string // "Func", "Recv.Method" or package-level var name
	Closures bool   // +closures: check only nested func literals
}

func (e Entry) String() string {
	s := e.Pkg + " " + e.Decl
	if e.Closures {
		s += " +closures"
	}
	return s
}

// Violation is one heap escape inside a pinned region.
type Violation struct {
	Entry Entry
	Pos   string // file:line:col relative to the module root
	Msg   string // compiler diagnostic
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s [pinned by %q]", v.Pos, v.Msg, v.Entry.String())
}

// ParseManifest reads manifest lines.
func ParseManifest(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		e := Entry{}
		switch len(fields) {
		case 3:
			if fields[2] != "+closures" {
				return nil, fmt.Errorf("manifest line %d: unknown modifier %q (want +closures)", line, fields[2])
			}
			e.Closures = true
			fallthrough
		case 2:
			e.Pkg, e.Decl = fields[0], fields[1]
		default:
			return nil, fmt.Errorf("manifest line %d: want \"<import-path> <decl> [+closures]\", got %q", line, text)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// span is a column-precise [from, to] source range in one file.
// Column precision matters: a compile-time allocation on the closing
// line of a func literal (`}, buildStats(...)`) must not be attributed
// to the literal's interior.
type span struct {
	file              string
	fromLine, fromCol int
	toLine, toCol     int
}

func (s span) contains(file string, line, col int) bool {
	if file != s.file {
		return false
	}
	if line < s.fromLine || line > s.toLine {
		return false
	}
	if line == s.fromLine && col < s.fromCol {
		return false
	}
	if line == s.toLine && col > s.toCol {
		return false
	}
	return true
}

// region is the checked area of one manifest entry.
type region struct {
	entry Entry
	body  span   // whole declaration
	lits  []span // nested func literals
}

// covers reports whether an escape at (file, line, col) is pinned by
// this region, honouring the entry's closure mode and the func-literal
// opening-position exemption.
func (g *region) covers(file string, line, col int, msg string) bool {
	if !g.body.contains(file, line, col) {
		return false
	}
	inLit, litStart := false, false
	for _, l := range g.lits {
		if l.contains(file, line, col) {
			inLit = true
			if line == l.fromLine {
				litStart = true
			}
		}
	}
	if g.entry.Closures {
		if !inLit {
			return false
		}
		// The closure object escaping at its own opening position is the
		// compile-time allocation, not a hot-path one.
		if litStart && strings.Contains(msg, "func literal escapes") {
			return false
		}
		return true
	}
	return !inLit
}

var escapeLine = regexp.MustCompile(`(?m)^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// Check verifies the manifest against the compiler's escape analysis.
// moduleDir is the module root the import paths resolve in. It returns
// the violations (empty means the gate passes); a stale manifest entry
// that matches no declaration is an error, so the pin set cannot rot.
func Check(moduleDir string, entries []Entry) ([]Violation, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	byPkg := make(map[string][]Entry)
	var pkgs []string
	for _, e := range entries {
		if len(byPkg[e.Pkg]) == 0 {
			pkgs = append(pkgs, e.Pkg)
		}
		byPkg[e.Pkg] = append(byPkg[e.Pkg], e)
	}
	sort.Strings(pkgs)

	fset := token.NewFileSet()
	var regions []*region
	var panics []span // panic(...) argument spans, exempt everywhere
	for _, pkg := range pkgs {
		dir, files, err := listPackage(moduleDir, pkg)
		if err != nil {
			return nil, err
		}
		found := make(map[string]*region)
		for _, name := range files {
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(moduleDir, path)
			if err != nil {
				return nil, err
			}
			collectRegions(fset, f, rel, byPkg[pkg], found)
			panics = append(panics, collectPanics(fset, f, rel)...)
		}
		for _, e := range byPkg[pkg] {
			g, ok := found[e.Decl]
			if !ok {
				return nil, fmt.Errorf("hotalloc: manifest entry %q matches no declaration in %s (stale manifest?)", e.String(), pkg)
			}
			g.entry = e
			regions = append(regions, g)
		}
	}

	out, err := buildEscapes(moduleDir, pkgs)
	if err != nil {
		return nil, err
	}
	var violations []Violation
	for _, m := range escapeLine.FindAllStringSubmatch(out, -1) {
		file, msg := filepath.ToSlash(m[1]), m[4]
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		exempt := false
		for _, p := range panics {
			if p.contains(file, line, col) {
				exempt = true
				break
			}
		}
		if exempt {
			continue
		}
		for _, g := range regions {
			if g.covers(file, line, col, msg) {
				violations = append(violations, Violation{
					Entry: g.entry,
					Pos:   fmt.Sprintf("%s:%s:%s", file, m[2], m[3]),
					Msg:   msg,
				})
			}
		}
	}
	return violations, nil
}

// listPackage resolves one import path to its directory and Go files.
func listPackage(moduleDir, pkg string) (string, []string, error) {
	cmd := exec.Command("go", "list", "-f", "{{.Dir}}\n{{range .GoFiles}}{{.}}\n{{end}}", pkg)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", nil, fmt.Errorf("go list %s: %v\n%s", pkg, err, stderr.String())
	}
	parts := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(parts) < 2 {
		return "", nil, fmt.Errorf("hotalloc: package %s has no Go files", pkg)
	}
	return parts[0], parts[1:], nil
}

// collectRegions records the declarations wanted by entries.
func collectRegions(fset *token.FileSet, f *ast.File, rel string, entries []Entry, found map[string]*region) {
	want := make(map[string]bool, len(entries))
	for _, e := range entries {
		want[e.Decl] = true
	}
	spanOf := func(n ast.Node) span {
		from, to := fset.Position(n.Pos()), fset.Position(n.End())
		return span{file: rel, fromLine: from.Line, fromCol: from.Column, toLine: to.Line, toCol: to.Column}
	}
	lits := func(n ast.Node) []span {
		var out []span
		ast.Inspect(n, func(c ast.Node) bool {
			if lit, ok := c.(*ast.FuncLit); ok {
				out = append(out, spanOf(lit))
			}
			return true
		})
		return out
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) == 1 {
				name = recvTypeName(d.Recv.List[0].Type) + "." + name
			}
			if want[name] && d.Body != nil {
				found[name] = &region{body: spanOf(d), lits: lits(d.Body)}
			}
		case *ast.GenDecl:
			if d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					if want[id.Name] {
						found[id.Name] = &region{body: spanOf(vs), lits: lits(vs)}
					}
				}
			}
		}
	}
}

// recvTypeName strips pointers/generics from a receiver type expr.
func recvTypeName(t ast.Expr) string {
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.IndexExpr:
			t = e.X
		case *ast.ParenExpr:
			t = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// collectPanics records panic(...) argument spans.
func collectPanics(fset *token.FileSet, f *ast.File, rel string) []span {
	var out []span
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && id.Obj == nil {
			from, to := fset.Position(call.Pos()), fset.Position(call.End())
			out = append(out, span{
				file:     rel,
				fromLine: from.Line, fromCol: from.Column,
				toLine: to.Line, toCol: to.Column,
			})
		}
		return true
	})
	return out
}

// buildEscapes compiles the packages with -gcflags=-m and returns the
// diagnostic stream. The go command replays cached compiler output, so
// warm runs stay fast without defeating the build cache.
func buildEscapes(moduleDir string, pkgs []string) (string, error) {
	args := append([]string{"build", "-gcflags=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go build -gcflags=-m: %v\n%s", err, buf.String())
	}
	return buf.String(), nil
}
