package hotalloc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module with one package whose
// functions cover every gate behaviour: clean, escaping, panic-exempt,
// and closure tables with clean and dirty literals.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module hotfix\n\ngo 1.21\n",
		"hot/hot.go": `package hot

import "fmt"

type T struct{ A, B int }

var sink *T

func clean(x, y int) int {
	return x*y + 1
}

func dirty() *T {
	return &T{1, 2}
}

func panicky(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n))
	}
	return n + 1
}

var kernels = map[int]func(int) int{
	0: func(x int) int { return x + 1 },
	1: func(x int) int { sink = &T{A: x, B: x}; return x },
}

func compileHot() func() *T {
	return func() *T { return &T{A: 3, B: 4} }
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func check(t *testing.T, dir string, entries ...Entry) []Violation {
	t.Helper()
	v, err := Check(dir, entries)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCleanFunctionPasses(t *testing.T) {
	dir := writeModule(t)
	if v := check(t, dir, Entry{Pkg: "hotfix/hot", Decl: "clean"}); len(v) != 0 {
		t.Errorf("clean pinned function reported violations: %v", v)
	}
}

func TestEscapeIsViolation(t *testing.T) {
	dir := writeModule(t)
	v := check(t, dir, Entry{Pkg: "hotfix/hot", Decl: "dirty"})
	if len(v) != 1 || !strings.Contains(v[0].Msg, "escapes to heap") {
		t.Fatalf("want one escape violation in dirty, got %v", v)
	}
}

func TestPanicArgumentsExempt(t *testing.T) {
	dir := writeModule(t)
	if v := check(t, dir, Entry{Pkg: "hotfix/hot", Decl: "panicky"}); len(v) != 0 {
		t.Errorf("panic-argument escapes must be exempt, got %v", v)
	}
}

func TestClosureModeChecksLiteralBodies(t *testing.T) {
	dir := writeModule(t)
	// kernels[1]'s body allocates; kernels[0] is clean; the closure
	// objects' own open-line escapes are exempt.
	v := check(t, dir, Entry{Pkg: "hotfix/hot", Decl: "kernels", Closures: true})
	if len(v) != 1 || !strings.Contains(v[0].Msg, "escapes to heap") {
		t.Fatalf("want exactly the dirty kernel body, got %v", v)
	}
}

func TestDefaultModeSkipsLiteralInteriors(t *testing.T) {
	dir := writeModule(t)
	// compileHot's own body only builds the closure (compile-time cost);
	// the allocation is inside the literal, so the default mode passes...
	if v := check(t, dir, Entry{Pkg: "hotfix/hot", Decl: "compileHot"}); len(v) != 0 {
		t.Errorf("default mode must skip literal interiors, got %v", v)
	}
	// ...and +closures pins exactly that interior.
	v := check(t, dir, Entry{Pkg: "hotfix/hot", Decl: "compileHot", Closures: true})
	if len(v) != 1 {
		t.Fatalf("+closures must flag the returned closure body, got %v", v)
	}
}

func TestStaleEntryIsError(t *testing.T) {
	dir := writeModule(t)
	_, err := Check(dir, []Entry{{Pkg: "hotfix/hot", Decl: "vanished"}})
	if err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale manifest entry must error, got %v", err)
	}
}

func TestParseManifest(t *testing.T) {
	src := `# comment

hotfix/hot clean
hotfix/hot Walker.Load
hotfix/hot kernels +closures
`
	entries, err := ParseManifest(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{
		{Pkg: "hotfix/hot", Decl: "clean"},
		{Pkg: "hotfix/hot", Decl: "Walker.Load"},
		{Pkg: "hotfix/hot", Decl: "kernels", Closures: true},
	}
	if len(entries) != len(want) {
		t.Fatalf("got %v", entries)
	}
	for i := range want {
		if entries[i] != want[i] {
			t.Errorf("entry %d: got %+v want %+v", i, entries[i], want[i])
		}
	}
	for _, bad := range []string{
		"hotfix/hot",
		"hotfix/hot clean +sideways",
		"hotfix/hot clean +closures extra",
	} {
		if _, err := ParseManifest(strings.NewReader(bad)); err == nil {
			t.Errorf("manifest %q must be rejected", bad)
		}
	}
}
