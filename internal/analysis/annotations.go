package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression annotation:
//
//	//simlint:allow <analyzer> -- <reason>
//
// The annotation covers findings of the named analyzer on its own line
// and, when the comment stands alone on a line, on the next source line.
const allowPrefix = "//simlint:allow"

// commitPrefix designates a stats-commit site (see statscommit.go):
//
//	//simlint:commit -- <reason>
//
// placed in the doc comment of a function or method declaration.
const commitPrefix = "//simlint:commit"

// allowAnnotation is one parsed simlint:allow comment.
type allowAnnotation struct {
	analyzer string
	reason   string
	pos      token.Position
	// line the annotation applies to: its own line, or the next line
	// when the comment stands alone.
	targetLine int
	used       bool
	malformed  string // non-empty: parse problem, reported as a finding
}

// parseAllows extracts every simlint:allow annotation from a file,
// validating the grammar against the known analyzer names.
func parseAllows(fset *token.FileSet, f *ast.File, known map[string]bool) []*allowAnnotation {
	var out []*allowAnnotation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			a := &allowAnnotation{pos: pos, targetLine: pos.Line}
			if pos.Column == 1 || standsAlone(fset, f, c) {
				a.targetLine = pos.Line + 1
			}
			rest := strings.TrimPrefix(c.Text, allowPrefix)
			if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
				a.malformed = "malformed annotation: want //simlint:allow <analyzer> -- <reason>"
				out = append(out, a)
				continue
			}
			name, reason, ok := strings.Cut(strings.TrimSpace(rest), "--")
			a.analyzer = strings.TrimSpace(name)
			a.reason = strings.TrimSpace(reason)
			switch {
			case !ok || a.reason == "":
				a.malformed = "annotation is missing a reason: want //simlint:allow <analyzer> -- <reason>"
			case !known[a.analyzer]:
				a.malformed = "annotation names unknown analyzer " + strings.TrimSpace(name)
			}
			out = append(out, a)
		}
	}
	return out
}

// standsAlone reports whether comment c occupies its line by itself (no
// code before it), in which case the annotation targets the next line.
func standsAlone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		// Any non-comment node ending on the comment's line before the
		// comment means the annotation trails code.
		if fset.Position(n.End()).Line == line && n.End() <= c.Pos() {
			switch n.(type) {
			case *ast.File, *ast.Comment, *ast.CommentGroup:
			default:
				alone = false
			}
		}
		return true
	})
	return alone
}

// applyAnnotations matches diagnostics against the annotations of their
// package, marking covered findings suppressed, and appends findings for
// malformed or unused annotations. Only annotations naming an analyzer
// in ran are checked for use, so a partial run (tests, a single-analyzer
// invocation) does not misreport another analyzer's annotations.
func applyAnnotations(diags []Diagnostic, allows []*allowAnnotation, ran map[string]bool) []Diagnostic {
	byLine := make(map[int][]*allowAnnotation)
	for _, a := range allows {
		if a.malformed == "" {
			byLine[a.targetLine] = append(byLine[a.targetLine], a)
		}
	}
	for i := range diags {
		d := &diags[i]
		for _, a := range byLine[d.Pos.Line] {
			if a.analyzer == d.Analyzer {
				d.Suppressed = true
				d.Reason = a.reason
				a.used = true
			}
		}
	}
	for _, a := range allows {
		switch {
		case a.malformed != "":
			diags = append(diags, Diagnostic{
				Analyzer: "simlint",
				Pos:      a.pos,
				Message:  a.malformed,
			})
		case !a.used && ran[a.analyzer]:
			diags = append(diags, Diagnostic{
				Analyzer: "simlint",
				Pos:      a.pos,
				Message:  "unused simlint:allow annotation for " + a.analyzer + " (no finding on the annotated line)",
			})
		}
	}
	return diags
}

// hasCommitDirective reports whether a function declaration's doc
// comment designates it a stats-commit site, and returns the reason.
func hasCommitDirective(doc *ast.CommentGroup) (bool, string) {
	if doc == nil {
		return false, ""
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, commitPrefix) {
			_, reason, _ := strings.Cut(c.Text, "--")
			return true, strings.TrimSpace(reason)
		}
	}
	return false, ""
}
