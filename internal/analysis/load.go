package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed (and, after Check, type-checked) package.
type Package struct {
	Dir        string
	ImportPath string
	Files      []*ast.File

	typesPkg *types.Package
	info     *types.Info
}

type listJSON struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Error      *struct{ Err string }
}

// LoadPatterns resolves package patterns (./..., specific import paths)
// through the go command, rooted at moduleDir, and parses every
// non-test source file. Test files are deliberately out of scope: the
// contracts guard production code, and fixtures under testdata never
// appear (the go command prunes them from patterns).
func LoadPatterns(fset *token.FileSet, moduleDir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, patterns...)...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listJSON
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		p := &Package{Dir: lp.Dir, ImportPath: lp.ImportPath}
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			p.Files = append(p.Files, f)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Check type-checks every package (through the toolchain's source
// importer, so dependencies resolve from source with no export data or
// network) and runs the analyzers over each, returning all diagnostics
// with annotations applied, sorted by position. The process working
// directory must be inside the module so the source importer can
// resolve module-local import paths.
func Check(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	imp := importer.ForCompiler(fset, "source", nil)
	var all []Diagnostic
	for _, p := range pkgs {
		diags, err := CheckPackage(fset, imp, p, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return all, nil
}

// CheckPackage type-checks one package through the given importer and
// runs the analyzers over it, returning its diagnostics with
// annotations applied. Drivers that bring their own importer (the vet
// unit-checker mode, which resolves dependencies from export data the
// vet driver hands it) call this directly; Check wraps it with the
// source importer for standalone runs.
func CheckPackage(fset *token.FileSet, imp types.Importer, p *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if err := typeCheck(fset, imp, p); err != nil {
		return nil, err
	}
	known := make(map[string]bool)
	for _, name := range AnalyzerNames() {
		known[name] = true
	}
	ran := make(map[string]bool)
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     p.Files,
			Pkg:       p.typesPkg,
			TypesInfo: p.info,
			diags:     &diags,
		}
		a.Run(pass)
	}
	var allows []*allowAnnotation
	for _, f := range p.Files {
		allows = append(allows, parseAllows(fset, f, known)...)
	}
	return applyAnnotations(diags, allows, ran), nil
}

// typeCheck populates p.typesPkg and p.info.
func typeCheck(fset *token.FileSet, imp types.Importer, p *Package) error {
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(p.ImportPath, fset, p.Files, info)
	if err != nil {
		if len(errs) > 0 {
			err = errs[0]
		}
		return fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	p.typesPkg, p.info = pkg, info
	return nil
}
