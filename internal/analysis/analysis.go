// Package analysis implements simlint, the repo's machine-checked
// invariant suite (DESIGN.md §10). It is a small, self-contained
// analyzer framework in the spirit of golang.org/x/tools/go/analysis,
// built on the standard library only (go/ast + go/types + the source
// importer) so the linter needs nothing outside the Go toolchain.
//
// Four contracts are enforced:
//
//   - sharedmem: packages that execute concurrent guest code must reach
//     guest RAM through the atomic mem accessors / shared mmu.Walker
//     paths, never through the plain Bus/RAM entry points (DESIGN.md §7).
//   - statscommit: internal/stats counter fields may only be mutated
//     inside functions explicitly designated as commit sites, keeping
//     every engine on the shared bookkeeping the exact-counter contract
//     pins (DESIGN.md §9).
//   - ctxflow: a function that receives a context.Context (as a
//     parameter, or via a context-carrying receiver/parameter struct)
//     must not discard it by minting context.Background()/context.TODO().
//   - hotalloc (subpackage): a manifest of hot functions is verified
//     against the compiler's escape analysis, so a heap escape on a
//     pinned zero-alloc path fails the build (see hotalloc package doc).
//
// A finding at a deliberate exception site is suppressed with an
// explicit, reasoned annotation on (or immediately above) the line:
//
//	//simlint:allow <analyzer> -- <reason>
//
// Annotations are themselves checked: a malformed annotation, an unknown
// analyzer name, or an annotation that suppresses nothing is reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and annotations.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one type-checked package and reports findings.
	Run func(*Pass)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned in the source tree.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks a finding covered by a simlint:allow annotation;
	// suppressed findings are retained for verbose listings but do not
	// fail the lint.
	Suppressed bool
	// Reason is the annotation reason for a suppressed finding.
	Reason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the full production suite, in stable order. The
// sharedmem instance enforces the default concurrent-guest package set.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SharedMemAnalyzer,
		StatsCommitAnalyzer,
		CtxFlowAnalyzer,
	}
}

// AnalyzerNames returns the names of every known analyzer, including
// the hotalloc gate (which runs outside the AST framework but shares
// the annotation namespace).
func AnalyzerNames() []string {
	names := []string{}
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return append(names, "hotalloc")
}
