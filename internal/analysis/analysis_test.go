package analysis_test

import (
	"go/token"
	"path/filepath"
	"testing"

	"mobilesim/internal/analysis"
	"mobilesim/internal/analysis/analysistest"
)

func fixture(elem ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, elem...)...)
}

func TestSharedMemFixture(t *testing.T) {
	// The fixture's import path is placed in the enforced set, standing in
	// for the concurrent-guest packages of the production configuration.
	analysistest.Run(t, fixture("sharedmem"), "fixture/sharedmem",
		analysis.NewSharedMem("fixture/sharedmem"))
}

func TestSharedMemNotEnforced(t *testing.T) {
	// Same call mix, package outside the enforced set: zero findings.
	analysistest.Run(t, fixture("sharedmem_clean"), "fixture/sharedmem_clean",
		analysis.SharedMemAnalyzer)
}

func TestStatsCommitFixture(t *testing.T) {
	analysistest.Run(t, fixture("statscommit"), "fixture/statscommit",
		analysis.StatsCommitAnalyzer)
}

func TestCtxFlowFixture(t *testing.T) {
	analysistest.Run(t, fixture("ctxflow"), "fixture/ctxflow",
		analysis.CtxFlowAnalyzer)
}

func TestAnnotationGrammarFixture(t *testing.T) {
	analysistest.Run(t, fixture("annotations"), "fixture/annotations",
		analysis.CtxFlowAnalyzer)
}

// TestTreeIsClean is the self-lint: the production tree must carry zero
// unsuppressed findings, so a contract regression fails go test even
// before CI's dedicated simlint job runs.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree type-check is not short")
	}
	fset := token.NewFileSet()
	pkgs, err := analysis.LoadPatterns(fset, filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Check(fset, pkgs, analysis.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !d.Suppressed {
			t.Errorf("unsuppressed finding: %s", d)
		}
	}
}
