// Package fixture exercises the annotation grammar itself: malformed,
// unknown-analyzer and unused annotations are findings in the shared
// "simlint" namespace.
package fixture

import "context"

func unusedAnnotation(ctx context.Context) context.Context {
	//simlint:allow ctxflow -- nothing on the next line triggers // want "unused simlint:allow annotation for ctxflow"
	return ctx
}

//simlint:allow bogus -- analyzer does not exist // want "annotation names unknown analyzer bogus"
var placeholder = 1

//simlint:allow ctxflow // want "annotation is missing a reason"
var placeholder2 = 2
