// Package fixture exercises the statscommit contract: internal/stats
// counter fields may only be mutated inside functions carrying the
// //simlint:commit doc directive.
package fixture

import "mobilesim/internal/stats"

type dev struct {
	gs  stats.GPUStats
	sys stats.SystemStats
}

func mutateOutsideCommit(d *dev) {
	d.gs.ArithInstr++           // want "stats counter GPUStats.ArithInstr mutated outside a commit site"
	d.gs.NopInstr += 3          // want "stats counter GPUStats.NopInstr mutated"
	d.gs.ClauseSizeHist[3] += 2 // want "stats counter GPUStats.ClauseSizeHist mutated"
	d.sys.TLBHits = 9           // want "stats counter SystemStats.TLBHits mutated"
	var local stats.GPUStats
	local.Workgroups++ // want "stats counter GPUStats.Workgroups mutated"
	_ = local
}

func wholeRecordReset(d *dev) {
	d.gs = stats.GPUStats{}     // want "stats counter GPUStats.gs mutated"
	d.sys = stats.SystemStats{} // want "stats counter SystemStats.sys mutated"
}

// commitSite is a designated commit function; everything inside it,
// closures included, is legal.
//
//simlint:commit -- fixture: designated commit site
func commitSite(d *dev) {
	d.gs.ArithInstr++
	d.sys.TLBWalks += 4
	bump := func() { d.gs.NopInstr++ } // closures inherit the marker
	bump()
	d.gs = stats.GPUStats{}
}

func reads(d *dev) uint64 {
	// Reads are always fine; only mutations are findings.
	return d.gs.ArithInstr + d.sys.TLBHits
}

func annotated(d *dev) {
	//simlint:allow statscommit -- fixture: one-off mutation under test
	d.gs.Threads++ // want-suppressed "stats counter GPUStats.Threads mutated"
}

// lookalike proves type-based matching: same field names on an
// unrelated struct are not findings.
type lookalike struct {
	ArithInstr uint64
	TLBHits    uint64
}

func notCounters(l *lookalike) {
	l.ArithInstr++
	l.TLBHits = 7
}
