// Package fixture is the sharedmem negative control: an identical call
// mix in a package that is NOT in the enforced set produces no findings
// at all — the contract binds concurrent-guest packages only.
package fixture

import (
	"mobilesim/internal/mem"
	"mobilesim/internal/mmu"
)

func plainAccessOutsideEnforcedSet(b *mem.Bus, r *mem.RAM, page []byte) {
	b.Read(0x1000, 4)
	b.Write(0x1000, 4, 7)
	r.Slice(0x1000, 64)
	mem.LoadLE(page[:8])
	mmu.NewWalker(b)
}
