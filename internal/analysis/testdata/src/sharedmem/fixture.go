// Package fixture exercises the sharedmem contract: inside an enforced
// (concurrent-guest) package, plain Bus/RAM accessors and the plain
// walker constructor are findings; the atomic accessors and the shared
// walker are the blessed paths.
package fixture

import (
	"mobilesim/internal/mem"
	"mobilesim/internal/mmu"
)

func forbiddenBus(b *mem.Bus) {
	b.Read(0x1000, 4)     // want "mem.Bus.Read bypasses the race-clean memory model"
	b.Write(0x1000, 4, 7) // want "mem.Bus.Write bypasses the race-clean memory model"
	var buf [8]byte
	b.ReadBytes(0x1000, buf[:])  // want "mem.Bus.ReadBytes bypasses"
	b.WriteBytes(0x1000, buf[:]) // want "mem.Bus.WriteBytes bypasses"
}

func forbiddenRAM(r *mem.RAM) {
	r.Read(0x1000, 4)     // want "mem.RAM.Read bypasses"
	r.Write(0x1000, 4, 7) // want "mem.RAM.Write bypasses"
	r.Slice(0x1000, 64)   // want "mem.RAM.Slice bypasses"
}

func forbiddenHelpers(page []byte, b *mem.Bus) {
	mem.LoadLE(page[:8])        // want "mem.LoadLE bypasses"
	mem.StoreLE(page[:8], 4, 1) // want "mem.StoreLE bypasses"
	mmu.NewWalker(b)            // want "mmu.NewWalker bypasses"
}

func blessed(b *mem.Bus, page []byte) {
	b.AtomicRead(0x1000, 4)          // atomic path: no finding
	b.AtomicWrite(0x1000, 4, 7)      // no finding
	mem.AtomicLoadLE(page, 0, 4)     // no finding
	mem.AtomicStoreLE(page, 0, 4, 1) // no finding
	mmu.NewSharedWalker(b)           // shared walker: no finding
}

func annotated(b *mem.Bus) {
	//simlint:allow sharedmem -- fixture: deliberate plain access on a single-owner page
	b.Write(0x2000, 4, 1) // want-suppressed "mem.Bus.Write bypasses"
	b.Read(0x2000, 4)     //simlint:allow sharedmem -- fixture: trailing annotation form // want-suppressed "mem.Bus.Read bypasses"
}

// notGuestMemory proves type-based resolution: same method names on
// unrelated types are not findings.
type otherBus struct{}

func (otherBus) Read(addr uint64, size int) (uint64, error)  { return 0, nil }
func (otherBus) Write(addr uint64, size int, v uint64) error { return nil }

func notGuestMemory(o otherBus) {
	o.Read(0x1000, 4)     // unrelated type: no finding
	o.Write(0x1000, 4, 7) // no finding
}
