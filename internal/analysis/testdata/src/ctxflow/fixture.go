// Package fixture exercises the ctxflow contract: a function that
// receives a context — directly or through a context-carrying struct —
// must not mint context.Background()/context.TODO(), except under the
// documented nil-parameter-guard convention.
package fixture

import "context"

type carrier struct {
	ctx context.Context
}

func discardsParam(ctx context.Context) context.Context {
	return context.Background() // want "context.Background\\(\\) discards the context discardsParam already carries"
}

func discardsViaTODO(ctx context.Context) context.Context {
	return context.TODO() // want "context.TODO\\(\\) discards"
}

func nilGuardExempt(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background() // nil-means-Background convention: no finding
	}
	return ctx
}

func (c *carrier) discardsReceiver() context.Context {
	return context.Background() // want "context.Background\\(\\) discards the context discardsReceiver already carries"
}

func discardsParamStruct(c carrier) context.Context {
	return context.TODO() // want "context.TODO\\(\\) discards"
}

func fieldGuardStillFlagged(c *carrier) context.Context {
	// A nil guard on a FIELD is the silent-fallback bug, not the
	// documented nil-parameter convention — still a finding.
	if c.ctx == nil {
		return context.Background() // want "context.Background\\(\\) discards"
	}
	return c.ctx
}

func noContextAtAll() context.Context {
	return context.Background() // carries nothing: no finding
}

func closureInheritsObligation(ctx context.Context) {
	f := func() context.Context {
		return context.Background() // want "context.Background\\(\\) discards"
	}
	f()
}

func closureOwnParam() {
	f := func(ctx context.Context) context.Context {
		return context.TODO() // want "context.TODO\\(\\) discards"
	}
	f(nil)
}

func closureNilGuard() {
	f := func(ctx context.Context) context.Context {
		if ctx == nil {
			return context.Background() // guarded inside the literal: no finding
		}
		return ctx
	}
	f(nil)
}

func annotatedDetachment(ctx context.Context) context.Context {
	//simlint:allow ctxflow -- fixture: deliberate detachment for a background task
	return context.Background() // want-suppressed "context.Background\\(\\) discards"
}
