package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer flags functions that receive a context.Context — as a
// parameter, or through a receiver/parameter struct that carries a
// context field — yet mint a fresh context.Background()/context.TODO()
// instead of threading the caller's context through. That silently
// severs cancellation: the callee looks context-aware but never
// observes the caller's deadline (the internal/experiments fallback
// fixed in this PR was exactly this shape).
//
// Exemption: the documented nil-means-Background convention. A
// Background()/TODO() call inside an if-statement guarded by a nil
// check on a context parameter of the same (or an enclosing) function
// is a deliberate default, not a discard, and is not flagged.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions receiving a context.Context must not discard it via context.Background()/context.TODO()",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cw := &ctxWalker{pass: pass, fname: fd.Name.Name}
			carries := cw.enter(fd.Recv, fd.Type)
			if carries {
				cw.walk(fd.Body)
			} else {
				// The declaration itself doesn't carry a context, but a
				// closure inside it may declare its own ctx parameter.
				cw.walkForLits(fd.Body)
			}
		}
	}
}

// ctxWalker tracks, down a lexical function-literal chain, whether any
// enclosing function carries a context and which identifiers are
// context parameters (for the nil-guard exemption).
type ctxWalker struct {
	pass      *Pass
	fname     string
	ctxParams map[*ast.Object]bool
	// guard depth: >0 while inside an if-block whose condition
	// nil-checks a context parameter.
	guarded int
}

// enter registers the receiver/parameters of a function (declaration or
// literal) and reports whether it carries a context.
func (w *ctxWalker) enter(recv *ast.FieldList, ft *ast.FuncType) bool {
	if w.ctxParams == nil {
		w.ctxParams = make(map[*ast.Object]bool)
	}
	carries := false
	consider := func(fl *ast.FieldList, paramPos bool) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := w.pass.TypesInfo.Types[field.Type].Type
			if t == nil {
				continue
			}
			if isContextType(t) {
				carries = true
				if paramPos {
					for _, name := range field.Names {
						w.ctxParams[name.Obj] = true
					}
				}
				continue
			}
			if structCarriesContext(t) {
				carries = true
			}
		}
	}
	consider(recv, false)
	consider(ft.Params, true)
	return carries
}

// walk inspects a context-carrying function body, flagging
// Background()/TODO() calls outside nil-guard exemptions.
func (w *ctxWalker) walk(n ast.Node) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.IfStmt:
		if n.Init != nil {
			w.walk(n.Init)
		}
		w.walk(n.Cond)
		if w.isNilGuard(n.Cond) {
			w.guarded++
			w.walk(n.Body)
			w.guarded--
		} else {
			w.walk(n.Body)
		}
		w.walk(n.Else)
		return
	case *ast.FuncLit:
		// A literal inherits the enclosing context obligation; its own
		// ctx parameters additionally feed the nil-guard exemption.
		w.enter(nil, n.Type)
		w.walk(n.Body)
		return
	case *ast.CallExpr:
		if name := backgroundOrTODO(w.pass, n); name != "" && w.guarded == 0 {
			w.pass.Reportf(n.Pos(),
				"context.%s() discards the context %s already carries; thread the caller's context through (or annotate a deliberate detachment)",
				name, w.fname)
		}
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return c == n
		}
		switch c.(type) {
		case *ast.IfStmt, *ast.FuncLit, *ast.CallExpr:
			w.walk(c)
			return false
		}
		return true
	})
}

// walkForLits scans a non-carrying body for function literals that
// declare their own context parameter.
func (w *ctxWalker) walkForLits(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		inner := &ctxWalker{pass: w.pass, fname: w.fname}
		if inner.enter(nil, lit.Type) {
			inner.walk(lit.Body)
		} else {
			inner.walkForLits(lit.Body)
		}
		return false
	})
}

// isNilGuard reports whether cond contains a nil comparison against a
// context parameter ident (ctx == nil, ctx != nil, possibly inside a
// larger boolean expression).
func (w *ctxWalker) isNilGuard(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		var id *ast.Ident
		if i, ok := be.X.(*ast.Ident); ok && isNilIdent(be.Y) {
			id = i
		} else if i, ok := be.Y.(*ast.Ident); ok && isNilIdent(be.X) {
			id = i
		}
		if id != nil && id.Obj != nil && w.ctxParams[id.Obj] {
			found = true
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// backgroundOrTODO returns "Background"/"TODO" when call is
// context.Background() or context.TODO(), else "".
func backgroundOrTODO(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// structCarriesContext reports whether t (pointer-stripped) is a named
// struct type with a direct context.Context field.
func structCarriesContext(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
