// Package hostd is the mobilesimd server: the per-host executor of the
// cluster protocol (DESIGN.md §11). It boots one platform, captures a
// warm snapshot, and executes registered workloads on copy-on-write
// forked sessions drawn from warm pools — the boot-time default pool,
// plus one pool per snapshot installed over POST /api/v1/snapshot.
//
// cmd/mobilesimd is the flag-parsing wrapper; the package exists so the
// serving logic is testable in-process (cmd/mobilesimd's own tests, the
// clustertest fault-injection harness, and the root cluster-vs-local
// determinism pin all drive a real Server through its Mux).
package hostd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobilesim"
	"mobilesim/internal/cluster"
	"mobilesim/internal/obs"
)

// Config shapes a Server.
type Config struct {
	// Sim is the session configuration of the default boot-time pool
	// (and the shape reported by /api/v1/stats).
	Sim mobilesim.Config
	// PoolSize is the warm-session target of every pool, the default one
	// and per-snapshot ones (minimum 1).
	PoolSize int
	// PoolMaxSize, when greater than PoolSize, turns every pool into a
	// rate-driven autoscaler: the warm target follows request demand
	// between [PoolSize, PoolMaxSize] and decays back when traffic goes
	// idle (see mobilesim.PoolAutoscale). Zero keeps fixed-size pools.
	PoolMaxSize int
	// MaxSnapshots caps installed snapshots; the oldest install is
	// evicted (its pool closed) to admit a new one (default 8).
	MaxSnapshots int
	// MaxIdempotencyEntries caps the recorded-response store; the oldest
	// completed entry is evicted to admit a new one (default 4096).
	MaxIdempotencyEntries int
}

func (c Config) withDefaults() Config {
	if c.PoolSize < 1 {
		c.PoolSize = 1
	}
	if c.PoolMaxSize < c.PoolSize {
		c.PoolMaxSize = 0 // fixed-size pools
	}
	if c.MaxSnapshots <= 0 {
		c.MaxSnapshots = 8
	}
	if c.MaxIdempotencyEntries <= 0 {
		c.MaxIdempotencyEntries = 4096
	}
	return c
}

// poolEntry is one warm pool: the default boot pool or an installed
// snapshot's.
type poolEntry struct {
	ref      string // "" for the default pool
	workload string // optional ?workload= label
	pool     *mobilesim.SessionPool
	runs     atomic.Uint64
}

// idemEntry records one idempotency key's outcome. Waiters (duplicate
// deliveries racing the first) block on done and then replay the exact
// recorded bytes.
type idemEntry struct {
	done   chan struct{}
	status int
	body   []byte
}

// Server implements the host side of the cluster protocol.
type Server struct {
	cfg   Config
	def   *poolEntry
	start time.Time

	requests  atomic.Uint64
	failures  atomic.Uint64
	dedupHits atomic.Uint64
	installs  atomic.Uint64

	// Request latency histograms (DESIGN.md §12): runLatency covers the
	// whole execution of a run request (pool hand-out + workload run);
	// queueWait re-aggregates the per-run session queue-wait phase.
	// wlLatency splits run durations per workload name.
	runLatency obs.Histogram
	queueWait  obs.Histogram
	wlMu       sync.Mutex
	wlLatency  map[string]*obs.Histogram

	mu        sync.Mutex
	closed    bool
	snaps     map[string]*poolEntry
	snapOrder []string
	idem      map[string]*idemEntry
	idemOrder []string
	runCounts map[string]uint64
}

// New boots the reference platform once, captures the warm snapshot and
// builds the default session pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	warm, err := mobilesim.New(cfg.Sim)
	if err != nil {
		return nil, fmt.Errorf("boot: %w", err)
	}
	snap, err := warm.Snapshot()
	warm.Close()
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	pool, err := cfg.newPool(snap)
	if err != nil {
		return nil, fmt.Errorf("pool: %w", err)
	}
	return &Server{
		cfg:       cfg,
		def:       &poolEntry{pool: pool},
		start:     time.Now(),
		wlLatency: make(map[string]*obs.Histogram),
		snaps:     make(map[string]*poolEntry),
		idem:      make(map[string]*idemEntry),
		runCounts: make(map[string]uint64),
	}, nil
}

// newPool builds one warm pool per the configured sizing policy: fixed
// at PoolSize, or autoscaling between [PoolSize, PoolMaxSize].
func (c Config) newPool(snap *mobilesim.Snapshot) (*mobilesim.SessionPool, error) {
	if c.PoolMaxSize > c.PoolSize {
		return mobilesim.NewAutoscalingSessionPool(snap, mobilesim.PoolAutoscale{
			MinWarm: c.PoolSize,
			MaxWarm: c.PoolMaxSize,
		}, mobilesim.Config{})
	}
	return mobilesim.NewSessionPool(snap, c.PoolSize, mobilesim.Config{})
}

// Close shuts down every pool. Sessions already handed out to in-flight
// runs are unaffected (their owners close them).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	entries := make([]*poolEntry, 0, len(s.snaps)+1)
	entries = append(entries, s.def)
	for _, e := range s.snaps {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	for _, e := range entries {
		e.pool.Close()
	}
}

// Mux returns the HTTP routing table.
func (s *Server) Mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc(cluster.PathHealth, s.handleHealth)
	m.HandleFunc("/api/v1/workloads", s.handleWorkloads)
	m.HandleFunc(cluster.PathSnapshot, s.handleSnapshot)
	m.HandleFunc(cluster.PathRun, s.handleRun)
	m.HandleFunc(cluster.PathStats, s.handleStats)
	m.HandleFunc(cluster.PathMetrics, s.handleMetrics)
	return m
}

// workloadHist returns the run-duration histogram for one workload,
// creating it on first use. The map is small (one entry per workload
// name ever run) and the lock is uncontended relative to a full
// simulator run.
func (s *Server) workloadHist(name string) *obs.Histogram {
	s.wlMu.Lock()
	defer s.wlMu.Unlock()
	h, ok := s.wlLatency[name]
	if !ok {
		h = &obs.Histogram{}
		s.wlLatency[name] = h
	}
	return h
}

// workloadLatencies snapshots every per-workload histogram, sorted by
// name for deterministic rendering.
func (s *Server) workloadLatencies() []workloadLatency {
	s.wlMu.Lock()
	out := make([]workloadLatency, 0, len(s.wlLatency))
	for name, h := range s.wlLatency {
		out = append(out, workloadLatency{name: name, snap: h.Snapshot()})
	}
	s.wlMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

type workloadLatency struct {
	name string
	snap obs.Snapshot
}

// encodeJSON renders v exactly as every response writer does, so
// recorded idempotent replays are byte-identical to first deliveries.
func encodeJSON(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return []byte(fmt.Sprintf("{\n  \"error\": %q\n}\n", err.Error()))
	}
	return buf.Bytes()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	writeRaw(w, status, encodeJSON(v))
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, cluster.ErrorResponse{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	installed := len(s.snaps)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"warm":      s.def.pool.Warm(),
		"forked":    s.def.pool.Forked(),
		"snapshots": installed,
	})
}

// workloadInfo is the registry entry shape served to clients.
type workloadInfo struct {
	Name         string `json:"name"`
	Kind         string `json:"kind"`
	Suite        string `json:"suite,omitempty"`
	Description  string `json:"description,omitempty"`
	SmallScale   int    `json:"small_scale,omitempty"`
	DefaultScale int    `json:"default_scale,omitempty"`
	PaperScale   int    `json:"paper_scale,omitempty"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []workloadInfo
	for _, wi := range mobilesim.Workloads() {
		out = append(out, workloadInfo{
			Name: wi.Name, Kind: string(wi.Kind), Suite: wi.Suite, Description: wi.Description,
			SmallScale: wi.SmallScale, DefaultScale: wi.DefaultScale, PaperScale: wi.PaperScale,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}

// handleSnapshot installs an encoded snapshot into a warm pool, keyed by
// its content-addressed ref. Installation is idempotent: re-posting the
// same bytes returns the existing ref without building a second pool.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading snapshot: %w", err))
		return
	}
	ref := cluster.Ref(body)
	label := r.URL.Query().Get("workload")

	s.mu.Lock()
	e, exists := s.snaps[ref]
	s.mu.Unlock()
	if exists {
		writeJSON(w, http.StatusOK, cluster.SnapshotResponse{Ref: ref, AlreadyInstalled: true, Workload: e.workload})
		return
	}

	snap, err := mobilesim.ReadSnapshot(bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding snapshot: %w", err))
		return
	}
	pool, err := s.cfg.newPool(snap)
	if err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusInternalServerError, fmt.Errorf("building pool: %w", err))
		return
	}
	entry := &poolEntry{ref: ref, workload: label, pool: pool}

	var evict *poolEntry
	s.mu.Lock()
	if prior, raced := s.snaps[ref]; raced {
		// A concurrent install of the same bytes won; keep its pool.
		s.mu.Unlock()
		pool.Close()
		writeJSON(w, http.StatusOK, cluster.SnapshotResponse{Ref: ref, AlreadyInstalled: true, Workload: prior.workload})
		return
	}
	s.snaps[ref] = entry
	s.snapOrder = append(s.snapOrder, ref)
	if len(s.snapOrder) > s.cfg.MaxSnapshots {
		oldest := s.snapOrder[0]
		s.snapOrder = s.snapOrder[1:]
		evict = s.snaps[oldest]
		delete(s.snaps, oldest)
	}
	s.mu.Unlock()
	if evict != nil {
		// In-flight runs already holding forks are unaffected; later runs
		// naming the evicted ref get unknown_snapshot and re-ship.
		evict.pool.Close()
	}
	s.installs.Add(1)
	writeJSON(w, http.StatusOK, cluster.SnapshotResponse{Ref: ref, Workload: label})
}

// handleRun wraps the run execution in the idempotency layer: the first
// delivery of a key executes and records its exact response bytes; every
// later (or concurrently racing) delivery waits and replays them with
// the dedup header set, so retried or hedged jobs are never
// double-counted.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req cluster.RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Workload == "" {
		writeError(w, http.StatusBadRequest, errors.New(`missing "workload"`))
		return
	}
	// Resolve the name before taking a fork from a pool: a typo should
	// cost a map lookup and a 404 with suggestions, not a session.
	if _, err := mobilesim.Lookup(req.Workload); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}

	if req.IdempotencyKey == "" {
		status, payload := s.executeRun(r.Context(), &req)
		writeJSON(w, status, payload)
		return
	}

	entry, first := s.claimIdem(req.IdempotencyKey)
	if !first {
		select {
		case <-entry.done:
			s.dedupHits.Add(1)
			w.Header().Set(cluster.DedupHeader, "hit")
			writeRaw(w, entry.status, entry.body)
		case <-r.Context().Done():
			writeError(w, http.StatusRequestTimeout, r.Context().Err())
		}
		return
	}

	status, payload := s.executeRun(r.Context(), &req)
	body := encodeJSON(payload)
	s.finishIdem(req.IdempotencyKey, entry, status, body)
	writeRaw(w, status, body)
}

// claimIdem registers key and reports whether the caller is the first
// delivery (and must execute + finish) or a duplicate (and must wait on
// the returned entry).
func (s *Server) claimIdem(key string) (*idemEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.idem[key]; ok {
		return e, false
	}
	e := &idemEntry{done: make(chan struct{})}
	s.idem[key] = e
	s.idemOrder = append(s.idemOrder, key)
	if len(s.idemOrder) > s.cfg.MaxIdempotencyEntries {
		oldest := s.idemOrder[0]
		s.idemOrder = s.idemOrder[1:]
		if old, ok := s.idem[oldest]; ok {
			select {
			case <-old.done:
				delete(s.idem, oldest) // evict only completed entries
			default:
				// Still executing: keep it; the store briefly overshoots.
				s.idemOrder = append(s.idemOrder, oldest)
			}
		}
	}
	return e, true
}

// finishIdem records the outcome and releases waiters. Failed runs are
// recorded for the waiters already parked on this delivery but removed
// from the store, so a later retry of the key may execute again.
func (s *Server) finishIdem(key string, e *idemEntry, status int, body []byte) {
	e.status = status
	e.body = body
	s.mu.Lock()
	if status != http.StatusOK {
		delete(s.idem, key)
	}
	s.mu.Unlock()
	close(e.done)
}

// lookupPool resolves the pool a run forks from.
func (s *Server) lookupPool(ref string) (*poolEntry, error) {
	if ref == "" {
		return s.def, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.snaps[ref]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("snapshot %s is not installed on this host", ref)
}

// executeRun performs one workload run on a pool fork and builds the
// response. It returns the HTTP status and the payload to encode.
func (s *Server) executeRun(ctx context.Context, req *cluster.RunRequest) (int, any) {
	entry, err := s.lookupPool(req.Snapshot)
	if err != nil {
		s.failures.Add(1)
		return http.StatusNotFound, cluster.ErrorResponse{Error: err.Error(), Code: cluster.CodeUnknownSnapshot}
	}
	s.requests.Add(1)

	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	t0 := time.Now()
	sess, err := entry.pool.Get(ctx)
	if err != nil {
		s.failures.Add(1)
		return http.StatusServiceUnavailable, cluster.ErrorResponse{Error: err.Error()}
	}
	// Forks are single-use: the request's writes stay in its private
	// copy, which is discarded here, and the next request gets a pristine
	// fork of the same snapshot.
	defer sess.Close()

	opts := []mobilesim.RunOption{mobilesim.WithScale(req.Scale)}
	if req.Verify != nil {
		opts = append(opts, mobilesim.WithVerify(*req.Verify))
	}
	res, err := sess.Run(ctx, req.Workload, opts...)
	// Request latency covers pool hand-out plus the run, success or not:
	// an operator watching p99s cares about what clients waited, not just
	// what verified.
	elapsed := time.Since(t0)
	s.runLatency.Observe(elapsed)
	s.workloadHist(req.Workload).Observe(elapsed)
	if err != nil {
		s.failures.Add(1)
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Client disconnect or expired timeout_ms: the kernel was
			// soft-stopped at a clause boundary and the fork discarded.
			status = http.StatusRequestTimeout
		}
		return status, cluster.ErrorResponse{Error: err.Error()}
	}
	s.queueWait.Observe(res.QueueWait)

	entry.runs.Add(1)
	s.mu.Lock()
	s.runCounts[req.Workload]++
	s.mu.Unlock()

	resp := &cluster.RunResponse{
		Workload:    res.Workload,
		Kind:        string(res.Kind),
		Scale:       res.Scale,
		Verified:    res.Verified,
		SimMS:       float64(res.SimDuration) / float64(time.Millisecond),
		NativeMS:    float64(res.NativeDuration) / float64(time.Millisecond),
		WallMS:      float64(res.Wall) / float64(time.Millisecond),
		QueueWaitMS: float64(res.QueueWait) / float64(time.Millisecond),
		// Serialization copies into the RPC response, not live
		// bookkeeping — composed through MakeRunStats so the counters
		// cross the wire exactly and the deprecated DriverCPUMS mirror is
		// derived in one place.
		Stats: cluster.MakeRunStats(res.Stats.GPU, res.Stats.System, res.Stats.DriverCPUTime, res.Stats.GuestInstructions),
		Modeled: cluster.Modeled{
			MobileCycles:  res.Modeled.MobileCycles,
			DesktopCycles: res.Modeled.DesktopCycles,
		},
	}
	if res.VerifyErr != nil {
		resp.VerifyError = res.VerifyErr.Error()
	}
	return http.StatusOK, resp
}

// durMS renders a duration as float milliseconds for the stats JSON.
func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// latencyJSON renders one histogram snapshot as a stats JSON latency
// block: count plus mean/p50/p90/p99 in milliseconds. Percentiles are
// log-bucket estimates (≤ ~2× relative error); the mean is exact.
func latencyJSON(snap *obs.Snapshot) map[string]any {
	sum := snap.Summary()
	return map[string]any{
		"count":   sum.Count,
		"mean_ms": durMS(sum.Mean),
		"p50_ms":  durMS(sum.P50),
		"p90_ms":  durMS(sum.P90),
		"p99_ms":  durMS(sum.P99),
	}
}

// poolStats renders one pool's counters and latency summaries.
func poolStats(e *poolEntry) map[string]any {
	m := e.pool.Metrics()
	out := map[string]any{
		"warm":         m.Warm,
		"warm_target":  m.WarmTarget,
		"forked":       m.Forked,
		"hits":         m.Hits,
		"inline_forks": m.InlineForks,
		"runs":         e.runs.Load(),
		"get_wait":     latencyJSON(&m.GetWait),
		"refill_fork":  latencyJSON(&m.RefillFork),
		"inline_fork":  latencyJSON(&m.InlineFork),
	}
	if e.ref != "" {
		out["ref"] = e.ref
	}
	if e.workload != "" {
		out["workload"] = e.workload
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snaps := make([]map[string]any, 0, len(s.snapOrder))
	for _, ref := range s.snapOrder {
		if e, ok := s.snaps[ref]; ok {
			snaps = append(snaps, poolStats(e))
		}
	}
	runs := make(map[string]uint64, len(s.runCounts))
	for k, v := range s.runCounts {
		runs[k] = v
	}
	s.mu.Unlock()

	perWorkload := map[string]any{}
	for _, wl := range s.workloadLatencies() {
		perWorkload[wl.name] = latencyJSON(&wl.snap)
	}
	runSnap := s.runLatency.Snapshot()
	waitSnap := s.queueWait.Snapshot()

	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s":          time.Since(s.start).Seconds(),
		"requests":          s.requests.Load(),
		"failures":          s.failures.Load(),
		"dedup_hits":        s.dedupHits.Load(),
		"snapshot_installs": s.installs.Load(),
		// Back-compat flat keys for the default pool, plus the full
		// per-pool breakdown (pool hit / inline-fork counters are the
		// ROADMAP observability item; the hedging tests assert on them).
		"pool_warm":         s.def.pool.Warm(),
		"pool_forked":       s.def.pool.Forked(),
		"pool_hits":         s.def.pool.Hits(),
		"pool_inline_forks": s.def.pool.InlineForks(),
		"pool":              poolStats(s.def),
		"snapshots":         snaps,
		"runs":              runs,
		// Latency percentile blocks (DESIGN.md §12): whole-request run
		// latency, per-run session queue wait, and per-workload splits.
		"latency": map[string]any{
			"run":          latencyJSON(&runSnap),
			"queue_wait":   latencyJSON(&waitSnap),
			"per_workload": perWorkload,
		},
		"workloads":     len(mobilesim.Workloads()),
		"guest_ram_mib": s.cfg.Sim.RAMSize >> 20,
	})
}

// handleMetrics serves GET /metrics: the same counters and latency
// summaries as /api/v1/stats, rendered in Prometheus text exposition
// format (one scrape target per host).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b bytes.Buffer
	obs.WritePromGauge(&b, "mobilesim_uptime_seconds", "Seconds since the server booted.", time.Since(s.start).Seconds())
	obs.WritePromCounter(&b, "mobilesim_requests_total", "Run requests accepted.", s.requests.Load())
	obs.WritePromCounter(&b, "mobilesim_failures_total", "Run requests that failed.", s.failures.Load())
	obs.WritePromCounter(&b, "mobilesim_dedup_hits_total", "Idempotent replays served from the recorded-response store.", s.dedupHits.Load())
	obs.WritePromCounter(&b, "mobilesim_snapshot_installs_total", "Snapshots installed over the snapshot endpoint.", s.installs.Load())

	pm := s.def.pool.Metrics()
	obs.WritePromGauge(&b, "mobilesim_pool_warm", "Warm sessions currently in the default pool.", float64(pm.Warm))
	obs.WritePromGauge(&b, "mobilesim_pool_warm_target", "Warm count the default pool is converging toward.", float64(pm.WarmTarget))
	obs.WritePromCounter(&b, "mobilesim_pool_forked_total", "Sessions forked by the default pool.", pm.Forked)
	obs.WritePromCounter(&b, "mobilesim_pool_hits_total", "Get calls served from the warm pool.", pm.Hits)
	obs.WritePromCounter(&b, "mobilesim_pool_inline_forks_total", "Get calls that forked inline (pool momentarily empty).", pm.InlineForks)

	runSnap := s.runLatency.Snapshot()
	obs.WritePromSummaryHeader(&b, "mobilesim_run_duration_seconds", "Run request latency (pool hand-out + workload run), per workload.")
	for _, wl := range s.workloadLatencies() {
		obs.WritePromSummary(&b, "mobilesim_run_duration_seconds", `workload="`+obs.EscapeLabel(wl.name)+`"`, &wl.snap)
	}
	obs.WritePromSummary(&b, "mobilesim_run_duration_seconds", `workload="all"`, &runSnap)

	waitSnap := s.queueWait.Snapshot()
	obs.WritePromSummaryHeader(&b, "mobilesim_run_queue_wait_seconds", "Per-run session command-queue wait.")
	obs.WritePromSummary(&b, "mobilesim_run_queue_wait_seconds", "", &waitSnap)

	obs.WritePromSummaryHeader(&b, "mobilesim_pool_get_wait_seconds", "Default pool hand-out latency.")
	obs.WritePromSummary(&b, "mobilesim_pool_get_wait_seconds", "", &pm.GetWait)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(b.Bytes())
}
