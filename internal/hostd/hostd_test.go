package hostd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mobilesim"
	"mobilesim/internal/cluster"
	"mobilesim/internal/hostd"
)

// testServer boots one small server; the warm snapshot makes per-test
// forks cheap.
func testServer(t *testing.T, cfg hostd.Config) *hostd.Server {
	t.Helper()
	if cfg.Sim.RAMSize == 0 {
		cfg.Sim = mobilesim.Config{RAMSize: 128 << 20, HostThreads: 2}
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 2
	}
	srv, err := hostd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func do(mux *http.ServeMux, method, path, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	mux.ServeHTTP(rec, r)
	return rec
}

func statsBody(t *testing.T, mux *http.ServeMux) map[string]json.RawMessage {
	t.Helper()
	rec := do(mux, http.MethodGet, cluster.PathStats, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rec.Code)
	}
	var body map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	return body
}

func statUint(t *testing.T, body map[string]json.RawMessage, key string) uint64 {
	t.Helper()
	raw, ok := body[key]
	if !ok {
		t.Fatalf("stats body has no %q key", key)
	}
	var v uint64
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("stats %q: %v", key, err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	srv := testServer(t, hostd.Config{})
	rec := do(srv.Mux(), http.MethodGet, cluster.PathHealth, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Status != "ok" {
		t.Fatalf("bad health body %q (%v)", rec.Body, err)
	}
}

func TestWorkloadsListed(t *testing.T) {
	srv := testServer(t, hostd.Config{})
	rec := do(srv.Mux(), http.MethodGet, "/api/v1/workloads", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		Workloads []struct {
			Name string `json:"name"`
		} `json:"workloads"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Workloads) != len(mobilesim.Workloads()) {
		t.Fatalf("listed %d workloads, registry has %d", len(body.Workloads), len(mobilesim.Workloads()))
	}
}

func TestRunBFSVerified(t *testing.T) {
	srv := testServer(t, hostd.Config{})
	rec := do(srv.Mux(), http.MethodPost, cluster.PathRun, `{"workload": "BFS", "scale": 4}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp cluster.RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Verified {
		t.Fatalf("run not verified: %s", rec.Body)
	}
	if resp.Stats.System.ComputeJobs == 0 || resp.Stats.GPU.TotalInstr() == 0 {
		t.Fatalf("empty stats delta: %s", rec.Body)
	}
	if resp.Stats.DriverCPUNS <= 0 {
		t.Fatalf("driver_cpu_ns missing: %s", rec.Body)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	srv := testServer(t, hostd.Config{})
	rec := do(srv.Mux(), http.MethodPost, cluster.PathRun, `{"workload": "BFSS"}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "BFS") {
		t.Fatalf("no suggestion in error: %s", rec.Body)
	}
}

func TestRunMethodAndBodyErrors(t *testing.T) {
	srv := testServer(t, hostd.Config{})
	mux := srv.Mux()

	if rec := do(mux, http.MethodGet, cluster.PathRun, ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET run: status %d", rec.Code)
	}
	if rec := do(mux, http.MethodPost, cluster.PathRun, `{`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", rec.Code)
	}
	if rec := do(mux, http.MethodPost, cluster.PathRun, `{}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing workload: status %d", rec.Code)
	}
	if rec := do(mux, http.MethodGet, cluster.PathSnapshot, ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET snapshot: status %d", rec.Code)
	}
}

// TestServerStats checks the request accounting plus the new
// observability keys: pool hit / inline-fork counters and per-workload
// run counts.
func TestServerStats(t *testing.T) {
	srv := testServer(t, hostd.Config{})
	mux := srv.Mux()
	if rec := do(mux, http.MethodPost, cluster.PathRun, `{"workload": "MatrixTranspose"}`); rec.Code != http.StatusOK {
		t.Fatalf("run: status %d: %s", rec.Code, rec.Body)
	}
	body := statsBody(t, mux)
	if got := statUint(t, body, "requests"); got != 1 {
		t.Fatalf("requests=%d, want 1", got)
	}
	if got := statUint(t, body, "failures"); got != 0 {
		t.Fatalf("failures=%d, want 0", got)
	}
	if hits, inline := statUint(t, body, "pool_hits"), statUint(t, body, "pool_inline_forks"); hits+inline != 1 {
		t.Fatalf("pool_hits=%d pool_inline_forks=%d, want exactly one hand-out", hits, inline)
	}
	var runs map[string]uint64
	if err := json.Unmarshal(body["runs"], &runs); err != nil {
		t.Fatal(err)
	}
	if runs["MatrixTranspose"] != 1 {
		t.Fatalf("run counts %v, want MatrixTranspose=1", runs)
	}
	var pool struct {
		Runs uint64 `json:"runs"`
	}
	if err := json.Unmarshal(body["pool"], &pool); err != nil {
		t.Fatal(err)
	}
	if pool.Runs != 1 {
		t.Fatalf("default pool runs=%d, want 1", pool.Runs)
	}
}

// TestConcurrentRuns hammers the run endpoint from many goroutines; its
// real assertion is the -race run in CI (handler state, pool accounting
// and the idempotency store are all exercised concurrently).
func TestConcurrentRuns(t *testing.T) {
	srv := testServer(t, hostd.Config{PoolSize: 2})
	mux := srv.Mux()
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"workload": "Reduction", "scale": 1, "idempotency_key": "conc/%d"}`, i%4)
			rec := do(mux, http.MethodPost, cluster.PathRun, body)
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("status %d: %s", rec.Code, rec.Body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// 8 requests over 4 keys: exactly 4 executions, the rest replayed.
	body := statsBody(t, mux)
	if got := statUint(t, body, "requests"); got != 4 {
		t.Fatalf("requests=%d, want 4 (idempotent duplicates must not execute)", got)
	}
	if got := statUint(t, body, "dedup_hits"); got != 4 {
		t.Fatalf("dedup_hits=%d, want 4", got)
	}
}

// TestPoolExhaustionInlineFork floods a size-1 pool with simultaneous
// requests: the burst must drain the warm channel and take the
// inline-fork fallback, and every hand-out must be accounted as exactly
// one of hit/inline-fork.
func TestPoolExhaustionInlineFork(t *testing.T) {
	srv := testServer(t, hostd.Config{PoolSize: 1})
	mux := srv.Mux()
	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := do(mux, http.MethodPost, cluster.PathRun, `{"workload": "Reduction", "scale": 1}`)
			if rec.Code != http.StatusOK {
				t.Errorf("status %d: %s", rec.Code, rec.Body)
			}
		}()
	}
	wg.Wait()
	body := statsBody(t, mux)
	hits, inline := statUint(t, body, "pool_hits"), statUint(t, body, "pool_inline_forks")
	if hits+inline != n {
		t.Fatalf("pool_hits=%d + pool_inline_forks=%d != %d hand-outs", hits, inline, n)
	}
	if inline == 0 {
		t.Fatalf("%d simultaneous requests against a size-1 pool never forked inline (hits=%d)", n, hits)
	}
}

// slowWorkload is a long-running registered workload for the
// client-disconnect test: uncancelled it spins for tens of seconds on
// one host thread, so a sub-second 408 proves the soft-stop worked.
type slowWorkload struct{}

const slowSrc = `
kernel void spin(global int* out, int iters) {
    int i = get_global_id(0);
    int acc = 0;
    for (int j = 0; j < iters; j++) {
        acc = acc + j;
    }
    out[i] = acc;
}
`

func (slowWorkload) Info() mobilesim.WorkloadInfo {
	return mobilesim.WorkloadInfo{
		Name: "hostdtest/spin", Kind: mobilesim.KindBenchmark,
		Description: "long-running kernel for disconnect tests",
	}
}

func (slowWorkload) Execute(ctx context.Context, s *mobilesim.Session, opt *mobilesim.RunOptions) (*mobilesim.RunResult, error) {
	iters := 1 << 20
	if opt.Scale > 0 {
		iters = opt.Scale
	}
	k, err := s.LoadKernel(slowSrc, "spin")
	if err != nil {
		return nil, err
	}
	buf, err := s.NewBuffer(4 * 256)
	if err != nil {
		return nil, err
	}
	if err := k.SetArgs(buf, iters); err != nil {
		return nil, err
	}
	if err := k.Launch(ctx, mobilesim.Dim1(256), mobilesim.Dim1(4)); err != nil {
		return nil, err
	}
	return &mobilesim.RunResult{Workload: "hostdtest/spin", Verified: true}, nil
}

var registerSlow = sync.OnceValue(func() error {
	return mobilesim.Register(slowWorkload{})
})

// TestClientDisconnectMidRun cancels the request context while the
// kernel is executing: the run must soft-stop promptly with 408, the
// fork is discarded, and the server keeps serving.
func TestClientDisconnectMidRun(t *testing.T) {
	if err := registerSlow(); err != nil {
		t.Fatal(err)
	}
	srv := testServer(t, hostd.Config{
		Sim: mobilesim.Config{RAMSize: 64 << 20, HostThreads: 1, ShaderCores: 1},
	})
	mux := srv.Mux()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, cluster.PathRun,
			strings.NewReader(`{"workload": "hostdtest/spin"}`)).WithContext(ctx)
		mux.ServeHTTP(rec, r)
		done <- rec
	}()
	time.Sleep(100 * time.Millisecond) // let the kernel start
	cancel()
	select {
	case rec := <-done:
		if rec.Code != http.StatusRequestTimeout {
			t.Fatalf("status %d, want 408: %s", rec.Code, rec.Body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return: soft-stop failed")
	}

	// The discarded fork must not poison the server: a normal run still
	// works, and the interrupted one is a failure, not a run.
	if rec := do(mux, http.MethodPost, cluster.PathRun, `{"workload": "BFS", "scale": 4}`); rec.Code != http.StatusOK {
		t.Fatalf("run after disconnect: status %d: %s", rec.Code, rec.Body)
	}
	body := statsBody(t, mux)
	if got := statUint(t, body, "failures"); got != 1 {
		t.Fatalf("failures=%d, want 1 (the disconnected run)", got)
	}
	var runs map[string]uint64
	if err := json.Unmarshal(body["runs"], &runs); err != nil {
		t.Fatal(err)
	}
	if runs["hostdtest/spin"] != 0 {
		t.Fatalf("interrupted run was counted: %v", runs)
	}
}

// TestRunTimeoutMS: an expired request-level timeout behaves like a
// disconnect — 408, soft-stopped.
func TestRunTimeoutMS(t *testing.T) {
	if err := registerSlow(); err != nil {
		t.Fatal(err)
	}
	srv := testServer(t, hostd.Config{
		Sim: mobilesim.Config{RAMSize: 64 << 20, HostThreads: 1, ShaderCores: 1},
	})
	rec := do(srv.Mux(), http.MethodPost, cluster.PathRun, `{"workload": "hostdtest/spin", "timeout_ms": 100}`)
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408: %s", rec.Code, rec.Body)
	}
}

// encodeTestSnapshot boots a tiny distinct configuration and returns its
// encoded snapshot.
func encodeTestSnapshot(t *testing.T) []byte {
	t.Helper()
	sess, err := mobilesim.New(mobilesim.Config{RAMSize: 64 << 20, HostThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotInstallAndRun covers the new endpoint end to end: install,
// idempotent reinstall, run-from-ref, and the unknown-ref 404 that
// drives the client's re-ship path.
func TestSnapshotInstallAndRun(t *testing.T) {
	srv := testServer(t, hostd.Config{})
	mux := srv.Mux()
	encoded := encodeTestSnapshot(t)

	rec := do(mux, http.MethodPost, cluster.PathSnapshot, string(encoded))
	if rec.Code != http.StatusOK {
		t.Fatalf("install: status %d: %s", rec.Code, rec.Body)
	}
	var sr cluster.SnapshotResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if want := cluster.Ref(encoded); sr.Ref != want {
		t.Fatalf("ref %s, want %s", sr.Ref, want)
	}
	if sr.AlreadyInstalled {
		t.Fatal("fresh install reported AlreadyInstalled")
	}

	// Reinstalling the same bytes is idempotent.
	rec = do(mux, http.MethodPost, cluster.PathSnapshot, string(encoded))
	if rec.Code != http.StatusOK {
		t.Fatalf("reinstall: status %d: %s", rec.Code, rec.Body)
	}
	var sr2 cluster.SnapshotResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr2); err != nil {
		t.Fatal(err)
	}
	if !sr2.AlreadyInstalled || sr2.Ref != sr.Ref {
		t.Fatalf("reinstall response %+v, want AlreadyInstalled with same ref", sr2)
	}
	body := statsBody(t, mux)
	if got := statUint(t, body, "snapshot_installs"); got != 1 {
		t.Fatalf("snapshot_installs=%d, want 1", got)
	}

	// Runs can fork from the installed snapshot's pool.
	runBody := fmt.Sprintf(`{"workload": "BFS", "scale": 4, "snapshot": %q}`, sr.Ref)
	if rec := do(mux, http.MethodPost, cluster.PathRun, runBody); rec.Code != http.StatusOK {
		t.Fatalf("run from ref: status %d: %s", rec.Code, rec.Body)
	}

	// An uninstalled ref is the machine-readable unknown_snapshot 404.
	rec = do(mux, http.MethodPost, cluster.PathRun, `{"workload": "BFS", "snapshot": "sha256:beef"}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown ref: status %d: %s", rec.Code, rec.Body)
	}
	var er cluster.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != cluster.CodeUnknownSnapshot {
		t.Fatalf("error code %q, want %q", er.Code, cluster.CodeUnknownSnapshot)
	}
}

// TestIdempotentRunReplay: the second delivery of a key replays the
// exact recorded bytes with the dedup header, and is not double-counted
// anywhere.
func TestIdempotentRunReplay(t *testing.T) {
	srv := testServer(t, hostd.Config{})
	mux := srv.Mux()
	const req = `{"workload": "BFS", "scale": 4, "idempotency_key": "r1/0"}`

	first := do(mux, http.MethodPost, cluster.PathRun, req)
	if first.Code != http.StatusOK {
		t.Fatalf("first: status %d: %s", first.Code, first.Body)
	}
	if first.Header().Get(cluster.DedupHeader) != "" {
		t.Fatal("first delivery carries the dedup header")
	}

	second := do(mux, http.MethodPost, cluster.PathRun, req)
	if second.Code != http.StatusOK {
		t.Fatalf("second: status %d: %s", second.Code, second.Body)
	}
	if second.Header().Get(cluster.DedupHeader) != "hit" {
		t.Fatal("replay missing the dedup header")
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("replayed body differs from the recorded response")
	}

	body := statsBody(t, mux)
	if got := statUint(t, body, "requests"); got != 1 {
		t.Fatalf("requests=%d, want 1 (replay must not execute)", got)
	}
	if got := statUint(t, body, "dedup_hits"); got != 1 {
		t.Fatalf("dedup_hits=%d, want 1", got)
	}
	var runs map[string]uint64
	if err := json.Unmarshal(body["runs"], &runs); err != nil {
		t.Fatal(err)
	}
	if runs["BFS"] != 1 {
		t.Fatalf("run counts %v, want BFS=1", runs)
	}
}

// TestIdempotentFailureRetries: a failed first delivery is replayed to
// waiters but evicted from the store, so a later retry of the same key
// executes again — failures are not sticky.
func TestIdempotentFailureRetries(t *testing.T) {
	srv := testServer(t, hostd.Config{})
	mux := srv.Mux()
	// Fails: the ref is not installed.
	bad := `{"workload": "BFS", "scale": 4, "snapshot": "sha256:dead", "idempotency_key": "r2/0"}`
	if rec := do(mux, http.MethodPost, cluster.PathRun, bad); rec.Code != http.StatusNotFound {
		t.Fatalf("bad run: status %d", rec.Code)
	}
	// Same key, fixed request: must execute, not replay the 404.
	good := `{"workload": "BFS", "scale": 4, "idempotency_key": "r2/0"}`
	if rec := do(mux, http.MethodPost, cluster.PathRun, good); rec.Code != http.StatusOK {
		t.Fatalf("retry after failure: status %d: %s", rec.Code, rec.Body)
	}
}

// TestStatsJSONShape pins the full top-level key set of /api/v1/stats —
// the wire surface operators script against — plus the shapes of the
// latency and pool blocks. A key that disappears (or silently changes
// type) must fail here, not in someone's dashboard.
func TestStatsJSONShape(t *testing.T) {
	srv := testServer(t, hostd.Config{})
	mux := srv.Mux()
	if rec := do(mux, http.MethodPost, cluster.PathRun, `{"workload": "BFS", "scale": 4}`); rec.Code != http.StatusOK {
		t.Fatalf("run: status %d: %s", rec.Code, rec.Body)
	}
	body := statsBody(t, mux)

	want := []string{
		"uptime_s", "requests", "failures", "dedup_hits", "snapshot_installs",
		"pool_warm", "pool_forked", "pool_hits", "pool_inline_forks",
		"pool", "snapshots", "runs", "latency", "workloads", "guest_ram_mib",
	}
	for _, k := range want {
		if _, ok := body[k]; !ok {
			t.Errorf("stats body missing key %q", k)
		}
	}
	if len(body) != len(want) {
		keys := make([]string, 0, len(body))
		for k := range body {
			keys = append(keys, k)
		}
		t.Errorf("stats body has %d keys, want %d: %v", len(body), len(want), keys)
	}

	var lat struct {
		Run         map[string]float64            `json:"run"`
		QueueWait   map[string]float64            `json:"queue_wait"`
		PerWorkload map[string]map[string]float64 `json:"per_workload"`
	}
	if err := json.Unmarshal(body["latency"], &lat); err != nil {
		t.Fatalf("latency block: %v", err)
	}
	for _, blk := range []map[string]float64{lat.Run, lat.QueueWait, lat.PerWorkload["BFS"]} {
		for _, k := range []string{"count", "mean_ms", "p50_ms", "p90_ms", "p99_ms"} {
			if _, ok := blk[k]; !ok {
				t.Fatalf("latency block %v missing key %q", blk, k)
			}
		}
	}
	if lat.Run["count"] != 1 || lat.PerWorkload["BFS"]["count"] != 1 {
		t.Fatalf("run latency counts = %v / %v, want 1 each", lat.Run["count"], lat.PerWorkload["BFS"]["count"])
	}
	if lat.Run["mean_ms"] <= 0 {
		t.Fatalf("run latency mean %v, want > 0", lat.Run["mean_ms"])
	}

	var pool map[string]json.RawMessage
	if err := json.Unmarshal(body["pool"], &pool); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"warm", "warm_target", "forked", "hits", "inline_forks", "runs", "get_wait", "refill_fork", "inline_fork"} {
		if _, ok := pool[k]; !ok {
			t.Errorf("pool block missing key %q", k)
		}
	}
}

// TestMetricsExposition covers GET /metrics: Prometheus text format
// headers, the counter values, and the per-workload run summary with
// quantile labels.
func TestMetricsExposition(t *testing.T) {
	srv := testServer(t, hostd.Config{})
	mux := srv.Mux()
	if rec := do(mux, http.MethodPost, cluster.PathRun, `{"workload": "BFS", "scale": 4}`); rec.Code != http.StatusOK {
		t.Fatalf("run: status %d: %s", rec.Code, rec.Body)
	}

	rec := do(mux, http.MethodGet, cluster.PathMetrics, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q, want Prometheus text exposition 0.0.4", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"# TYPE mobilesim_requests_total counter",
		"mobilesim_requests_total 1\n",
		"mobilesim_failures_total 0\n",
		"# TYPE mobilesim_pool_warm gauge",
		"# TYPE mobilesim_run_duration_seconds summary",
		`mobilesim_run_duration_seconds_count{workload="BFS"} 1`,
		`mobilesim_run_duration_seconds{workload="BFS",quantile="0.5"}`,
		`mobilesim_run_duration_seconds{workload="BFS",quantile="0.99"}`,
		`mobilesim_run_duration_seconds_count{workload="all"} 1`,
		"# TYPE mobilesim_run_queue_wait_seconds summary",
		"mobilesim_run_queue_wait_seconds_count 1",
		"mobilesim_pool_get_wait_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics body:\n%s", text)
	}
}

// TestRunResponseModeled: every run response carries the analytical
// cost-model estimates, and the deprecated DriverCPUMS mirror matches
// its nanosecond source exactly (single-derivation invariant).
func TestRunResponseModeled(t *testing.T) {
	srv := testServer(t, hostd.Config{})
	rec := do(srv.Mux(), http.MethodPost, cluster.PathRun, `{"workload": "BFS", "scale": 4}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp cluster.RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Modeled.MobileCycles <= 0 || resp.Modeled.DesktopCycles <= 0 {
		t.Fatalf("modeled cost not populated: %+v", resp.Modeled)
	}
	if resp.QueueWaitMS < 0 {
		t.Fatalf("queue_wait_ms = %v, want >= 0", resp.QueueWaitMS)
	}
	if want := float64(resp.Stats.DriverCPUNS) / 1e6; resp.Stats.DriverCPUMS != want {
		t.Fatalf("driver_cpu_ms %v drifted from driver_cpu_ns/1e6 = %v", resp.Stats.DriverCPUMS, want)
	}
}

// TestAutoscalingPoolConfig: PoolMaxSize > PoolSize turns the default
// pool into an autoscaler whose warm target stays within the bounds.
func TestAutoscalingPoolConfig(t *testing.T) {
	srv := testServer(t, hostd.Config{PoolSize: 1, PoolMaxSize: 3})
	mux := srv.Mux()
	if rec := do(mux, http.MethodPost, cluster.PathRun, `{"workload": "Reduction", "scale": 1}`); rec.Code != http.StatusOK {
		t.Fatalf("run: status %d: %s", rec.Code, rec.Body)
	}
	body := statsBody(t, mux)
	var pool struct {
		WarmTarget int `json:"warm_target"`
	}
	if err := json.Unmarshal(body["pool"], &pool); err != nil {
		t.Fatal(err)
	}
	if pool.WarmTarget < 1 || pool.WarmTarget > 3 {
		t.Fatalf("warm_target %d outside [1,3]", pool.WarmTarget)
	}
}
