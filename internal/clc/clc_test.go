package clc_test

import (
	"strings"
	"testing"

	"mobilesim/internal/clc"
	"mobilesim/internal/gpu"
	"mobilesim/internal/simtest"
)

const vecAddSrc = `
kernel void vecadd(global float* a, global float* b, global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}
`

func compile(t *testing.T, src, name, version string) *clc.CompiledKernel {
	t.Helper()
	k, err := clc.Compile(src, name, clc.Options{Version: version})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return k
}

func TestCompileVecAddAllVersions(t *testing.T) {
	for _, ver := range clc.VersionNames() {
		t.Run(ver, func(t *testing.T) {
			k := compile(t, vecAddSrc, "vecadd", ver)
			if k.Report.Registers <= 0 {
				t.Errorf("registers = %d", k.Report.Registers)
			}
			if k.Report.LSInstrs != 3 {
				t.Errorf("LS instrs = %d, want 3 (2 loads + 1 store)", k.Report.LSInstrs)
			}
			// The binary must be parseable by the GPU decoder.
			if _, err := gpu.ParseBinary(k.Binary); err != nil {
				t.Errorf("binary does not decode: %v", err)
			}
		})
	}
}

func TestVersionsGenerateDifferentCode(t *testing.T) {
	reports := map[string]clc.StaticReport{}
	for _, ver := range clc.VersionNames() {
		reports[ver] = compile(t, vecAddSrc, "vecadd", ver).Report
	}
	if reports["5.6"] == reports["6.1"] {
		t.Error("5.6 and 6.1 produced identical reports; versions should differ")
	}
	if reports["6.1"] != reports["6.2"] {
		t.Error("6.1 and 6.2 should be identical (as in the paper)")
	}
	// Hazard padding makes 5.6 cost more arithmetic cycles than 6.1.
	if reports["5.6"].ArithCycles <= reports["6.1"].ArithCycles {
		t.Errorf("5.6 arith cycles (%d) should exceed 6.1 (%d)",
			reports["5.6"].ArithCycles, reports["6.1"].ArithCycles)
	}
	// Address folding gives 6.1 fewer LS cycles than 5.6.
	if reports["6.1"].LSCycles >= reports["5.6"].LSCycles {
		t.Errorf("6.1 LS cycles (%d) should be below 5.6 (%d)",
			reports["6.1"].LSCycles, reports["5.6"].LSCycles)
	}
	// 5.7 disables temp registers, inflating GRF use.
	if reports["5.7"].Registers <= reports["6.1"].Registers {
		t.Errorf("5.7 registers (%d) should exceed 6.1 (%d)",
			reports["5.7"].Registers, reports["6.1"].Registers)
	}
}

func TestVecAddExecutesCorrectlyAllVersions(t *testing.T) {
	for _, ver := range clc.VersionNames() {
		t.Run(ver, func(t *testing.T) {
			h := simtest.New(t, gpu.DefaultConfig())
			const n = 1000
			a, b, c := h.AllocBuf(4*n), h.AllocBuf(4*n), h.AllocBuf(4*n)
			av, bv := make([]float32, n), make([]float32, n)
			for i := range av {
				av[i] = float32(i) * 0.5
				bv[i] = float32(i) * 0.25
			}
			h.WriteF32(a, av)
			h.WriteF32(b, bv)
			k := compile(t, vecAddSrc, "vecadd", ver)
			h.RunKernel(k, [3]uint32{1024, 1, 1}, [3]uint32{64, 1, 1},
				[]uint64{a, b, c, n})
			got := h.ReadF32(c, n)
			for i := range got {
				if got[i] != av[i]+bv[i] {
					t.Fatalf("c[%d] = %g, want %g", i, got[i], av[i]+bv[i])
				}
			}
		})
	}
}

func TestControlFlowKernels(t *testing.T) {
	h := simtest.New(t, gpu.DefaultConfig())

	t.Run("for loop with accumulator", func(t *testing.T) {
		src := `
kernel void sumto(global int* out) {
    int i = get_global_id(0);
    int acc = 0;
    for (int j = 0; j <= i; j++) {
        acc += j;
    }
    out[i] = acc;
}
`
		out := h.AllocBuf(4 * 64)
		h.CompileAndRun(src, "sumto", [3]uint32{64, 1, 1}, [3]uint32{16, 1, 1}, []uint64{out})
		got := h.ReadI32(out, 64)
		for i, g := range got {
			if want := int32(i * (i + 1) / 2); g != want {
				t.Fatalf("out[%d] = %d, want %d", i, g, want)
			}
		}
	})

	t.Run("while with break and continue", func(t *testing.T) {
		src := `
kernel void quirky(global int* out) {
    int i = get_global_id(0);
    int acc = 0;
    int j = 0;
    while (1) {
        j++;
        if (j > 100) { break; }
        if ((j & 1) == 0) { continue; }
        acc += j;
        if (j >= i) { break; }
    }
    out[i] = acc;
}
`
		out := h.AllocBuf(4 * 32)
		h.CompileAndRun(src, "quirky", [3]uint32{32, 1, 1}, [3]uint32{8, 1, 1}, []uint64{out})
		got := h.ReadI32(out, 32)
		// Reference semantics in Go.
		ref := func(i int) int32 {
			acc, j := int32(0), 0
			for {
				j++
				if j > 100 {
					break
				}
				if j&1 == 0 {
					continue
				}
				acc += int32(j)
				if j >= i {
					break
				}
			}
			return acc
		}
		for i, g := range got {
			if g != ref(i) {
				t.Fatalf("out[%d] = %d, want %d", i, g, ref(i))
			}
		}
	})

	t.Run("nested if else", func(t *testing.T) {
		src := `
kernel void classify(global int* in, global int* out) {
    int i = get_global_id(0);
    int v = in[i];
    if (v < 10) {
        if (v < 5) { out[i] = 1; } else { out[i] = 2; }
    } else if (v < 20) {
        out[i] = 3;
    } else {
        out[i] = 4;
    }
}
`
		const n = 40
		in, out := h.AllocBuf(4*n), h.AllocBuf(4*n)
		vals := make([]int32, n)
		for i := range vals {
			vals[i] = int32(i)
		}
		h.WriteI32(in, vals)
		h.CompileAndRun(src, "classify", [3]uint32{n, 1, 1}, [3]uint32{8, 1, 1}, []uint64{in, out})
		got := h.ReadI32(out, n)
		for i, g := range got {
			var want int32
			switch {
			case i < 5:
				want = 1
			case i < 10:
				want = 2
			case i < 20:
				want = 3
			default:
				want = 4
			}
			if g != want {
				t.Fatalf("out[%d] = %d, want %d", i, g, want)
			}
		}
	})

	t.Run("ternary", func(t *testing.T) {
		src := `
kernel void clampit(global int* in, global int* out, int lo, int hi) {
    int i = get_global_id(0);
    int v = in[i];
    out[i] = v < lo ? lo : (v > hi ? hi : v);
}
`
		const n = 32
		in, out := h.AllocBuf(4*n), h.AllocBuf(4*n)
		vals := make([]int32, n)
		for i := range vals {
			vals[i] = int32(i - 10)
		}
		h.WriteI32(in, vals)
		h.CompileAndRun(src, "clampit", [3]uint32{n, 1, 1}, [3]uint32{8, 1, 1},
			[]uint64{in, out, 0, 15})
		got := h.ReadI32(out, n)
		for i, g := range got {
			want := vals[i]
			if want < 0 {
				want = 0
			}
			if want > 15 {
				want = 15
			}
			if g != want {
				t.Fatalf("out[%d] = %d, want %d", i, g, want)
			}
		}
	})
}

func TestLocalMemoryAndBarrier(t *testing.T) {
	h := simtest.New(t, gpu.DefaultConfig())
	src := `
kernel void wgreverse(global int* in, global int* out) {
    local int tile[64];
    int l = get_local_id(0);
    int g = get_global_id(0);
    int wg = get_local_size(0);
    tile[l] = in[g];
    barrier();
    out[g] = tile[wg - 1 - l];
}
`
	const n, wg = 256, 64
	in, out := h.AllocBuf(4*n), h.AllocBuf(4*n)
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(i * 7)
	}
	h.WriteI32(in, vals)
	k := h.CompileAndRun(src, "wgreverse", [3]uint32{n, 1, 1}, [3]uint32{wg, 1, 1}, []uint64{in, out})
	if k.LocalBytes != 64*4 {
		t.Errorf("LocalBytes = %d, want 256", k.LocalBytes)
	}
	got := h.ReadI32(out, n)
	for i, g := range got {
		group := i / wg
		want := vals[group*wg+(wg-1-i%wg)]
		if g != want {
			t.Fatalf("out[%d] = %d, want %d", i, g, want)
		}
	}
}

func TestMathBuiltins(t *testing.T) {
	h := simtest.New(t, gpu.DefaultConfig())
	src := `
kernel void mathy(global float* in, global float* out) {
    int i = get_global_id(0);
    float x = in[i];
    if (i == 0) { out[i] = sqrt(x); }
    if (i == 1) { out[i] = fabs(-x); }
    if (i == 2) { out[i] = exp(x); }
    if (i == 3) { out[i] = log(x); }
    if (i == 4) { out[i] = floor(x); }
    if (i == 5) { out[i] = fmin(x, 2.0f); }
    if (i == 6) { out[i] = fmax(x, 2.0f); }
    if (i == 7) { out[i] = sin(x) * sin(x) + cos(x) * cos(x); }
}
`
	in, out := h.AllocBuf(4*8), h.AllocBuf(4*8)
	h.WriteF32(in, []float32{4, 3, 1, 2.718281828, 2.9, 1.5, 1.5, 0.7})
	h.CompileAndRun(src, "mathy", [3]uint32{8, 1, 1}, [3]uint32{8, 1, 1}, []uint64{in, out})
	got := h.ReadF32(out, 8)
	approx := func(a, b float32) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d < 1e-4
	}
	want := []float32{2, 3, 2.7182817, 0.99999994, 2, 1.5, 2, 1}
	for i := range want {
		if !approx(got[i], want[i]) {
			t.Errorf("out[%d] = %g, want ~%g", i, got[i], want[i])
		}
	}
}

func TestIntOpsAndCasts(t *testing.T) {
	h := simtest.New(t, gpu.DefaultConfig())
	src := `
kernel void intops(global int* out) {
    int i = get_global_id(0);
    if (i == 0) { out[i] = 17 / 5; }
    if (i == 1) { out[i] = 17 % 5; }
    if (i == 2) { out[i] = -17 / 5; }
    if (i == 3) { out[i] = 3 << 4; }
    if (i == 4) { out[i] = 256 >> 3; }
    if (i == 5) { out[i] = (12 & 10) | (1 ^ 3); }
    if (i == 6) { out[i] = (int)(3.9f); }
    if (i == 7) { out[i] = (int)((float)7 / 2.0f * 2.0f); }
    if (i == 8) { out[i] = min(4, 9) + max(4, 9); }
    if (i == 9) { out[i] = abs(-42); }
    if (i == 10) { out[i] = !5; }
    if (i == 11) { out[i] = ~0; }
}
`
	out := h.AllocBuf(4 * 12)
	h.CompileAndRun(src, "intops", [3]uint32{12, 1, 1}, [3]uint32{4, 1, 1}, []uint64{out})
	got := h.ReadI32(out, 12)
	want := []int32{3, 2, -3, 48, 32, 10, 3, 7, 13, 42, 0, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestUCharBuffers(t *testing.T) {
	h := simtest.New(t, gpu.DefaultConfig())
	src := `
kernel void brighten(global uchar* in, global uchar* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        int v = in[i] + 40;
        out[i] = min(v, 255);
    }
}
`
	const n = 100
	in, out := h.AllocBuf(n), h.AllocBuf(n)
	pix := make([]byte, n)
	for i := range pix {
		pix[i] = byte(i * 2)
	}
	h.WriteU8(in, pix)
	h.CompileAndRun(src, "brighten", [3]uint32{128, 1, 1}, [3]uint32{32, 1, 1}, []uint64{in, out, n})
	got := h.ReadU8(out, n)
	for i := range got {
		want := int(pix[i]) + 40
		if want > 255 {
			want = 255
		}
		if int(got[i]) != want {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func Test2DKernel(t *testing.T) {
	h := simtest.New(t, gpu.DefaultConfig())
	src := `
kernel void transpose(global float* in, global float* out, int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x < w && y < h) {
        out[x * h + y] = in[y * w + x];
    }
}
`
	const w, hh = 32, 16
	in, out := h.AllocBuf(4*w*hh), h.AllocBuf(4*w*hh)
	vals := make([]float32, w*hh)
	for i := range vals {
		vals[i] = float32(i)
	}
	h.WriteF32(in, vals)
	h.CompileAndRun(src, "transpose", [3]uint32{w, hh, 1}, [3]uint32{8, 8, 1},
		[]uint64{in, out, w, hh})
	got := h.ReadF32(out, w*hh)
	for y := 0; y < hh; y++ {
		for x := 0; x < w; x++ {
			if got[x*hh+y] != vals[y*w+x] {
				t.Fatalf("transpose[%d,%d] = %g, want %g", x, y, got[x*hh+y], vals[y*w+x])
			}
		}
	}
}

func TestScalarFloatArgs(t *testing.T) {
	h := simtest.New(t, gpu.DefaultConfig())
	src := `
kernel void saxpy(global float* x, global float* y, float a, int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
`
	const n = 64
	x, y := h.AllocBuf(4*n), h.AllocBuf(4*n)
	xv, yv := make([]float32, n), make([]float32, n)
	for i := range xv {
		xv[i], yv[i] = float32(i), float32(2*i)
	}
	h.WriteF32(x, xv)
	h.WriteF32(y, yv)
	h.CompileAndRun(src, "saxpy", [3]uint32{n, 1, 1}, [3]uint32{16, 1, 1},
		[]uint64{x, y, simtest.F32Arg(1.5), n})
	got := h.ReadF32(y, n)
	for i := range got {
		want := 1.5*xv[i] + yv[i]
		if got[i] != want {
			t.Fatalf("y[%d] = %g, want %g", i, got[i], want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no kernel", "int x;", "expected"},
		{"undefined var", "kernel void k(global int* o) { o[0] = zzz; }", "undefined"},
		{"assign to param", "kernel void k(int n) { n = 3; }", "cannot assign"},
		{"bad dim", "kernel void k(global int* o) { o[0] = get_global_id(7); }", "dimension"},
		{"unknown builtin", "kernel void k(global int* o) { o[0] = frob(1); }", "unknown builtin"},
		{"break outside loop", "kernel void k(global int* o) { break; }", "break outside"},
		{"unterminated comment", "kernel void k(global int* o) { /* o[0] = 1; }", "unterminated"},
		{"duplicate kernel", "kernel void k(int a) { } kernel void k(int b) { }", "duplicate"},
		{"not indexable", "kernel void k(int a) { a[0] = 1; }", "not indexable"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := clc.CompileAll(c.src, clc.Options{})
			if err == nil {
				t.Fatalf("expected error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err.Error(), c.wantSub)
			}
		})
	}
}

func TestClauseLimitsRespected(t *testing.T) {
	// A long straight-line kernel must be split into clauses within the
	// version's limit.
	src := `
kernel void longk(global float* a, global float* o) {
    int i = get_global_id(0);
    float x = a[i];
    x = x * 1.5f + 2.0f;
    x = x * 2.5f + 3.0f;
    x = x * 3.5f + 4.0f;
    x = x * 4.5f + 5.0f;
    x = x * 5.5f + 6.0f;
    x = x * 6.5f + 7.0f;
    o[i] = x;
}
`
	for _, ver := range []string{"5.6", "6.1"} {
		k := compile(t, src, "longk", ver)
		limit := clc.Versions[ver].MaxClauseSlots
		for i, c := range k.Program.Clauses {
			if c.Slots() > limit {
				t.Errorf("version %s clause %d has %d slots (limit %d)", ver, i, c.Slots(), limit)
			}
		}
	}
}

func TestTempPromotionUsesTempRegisters(t *testing.T) {
	k := compile(t, vecAddSrc, "vecadd", "6.1")
	foundTemp := false
	for _, c := range k.Program.Clauses {
		for _, in := range c.Instrs {
			for _, o := range []uint8{in.Dst, in.A, in.B} {
				if kind, _ := gpu.OperKind(o); kind == gpu.OperTemp {
					foundTemp = true
				}
			}
		}
	}
	if !foundTemp {
		t.Error("6.1 should promote clause-local values to temp registers")
	}
	// 5.7 must not use temps at all.
	k57 := compile(t, vecAddSrc, "vecadd", "5.7")
	for _, c := range k57.Program.Clauses {
		for _, in := range c.Instrs {
			for _, o := range []uint8{in.Dst, in.A, in.B} {
				if kind, _ := gpu.OperKind(o); kind == gpu.OperTemp && in.Op != gpu.OpNOP {
					t.Fatal("5.7 used a temp register")
				}
			}
		}
	}
}

func TestROMPoolingPerVersion(t *testing.T) {
	src := `
kernel void consts(global float* o) {
    int i = get_global_id(0);
    o[i] = 3.14159f * 2.71828f + 1.41421f;
}
`
	kPool := compile(t, src, "consts", "6.1")
	if len(kPool.Program.ROM) == 0 {
		t.Error("6.1 should pool float constants into ROM")
	}
	kInline := compile(t, src, "consts", "5.6")
	if len(kInline.Program.ROM) != 0 {
		t.Error("5.6 should inline constants, not pool them")
	}
}
