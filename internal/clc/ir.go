package clc

import (
	"fmt"

	"mobilesim/internal/gpu"
)

// OpdKind classifies IR operands.
type OpdKind int

// IR operand kinds.
const (
	OpdNone    OpdKind = iota
	OpdVReg            // virtual register
	OpdUniform         // kernel argument slot
	OpdSpecial         // lane/group identifier (gpu.Spec*)
	OpdImm             // 32-bit immediate (int value or float bits)
	OpdROM             // embedded constant table entry
)

// Opd is one IR operand.
type Opd struct {
	Kind OpdKind
	ID   int    // vreg id / uniform slot / special index / ROM index
	Imm  uint32 // immediate payload for OpdImm
}

func vr(id int) Opd        { return Opd{Kind: OpdVReg, ID: id} }
func uni(slot int) Opd     { return Opd{Kind: OpdUniform, ID: slot} }
func special(s uint8) Opd  { return Opd{Kind: OpdSpecial, ID: int(s)} }
func immOpd(v uint32) Opd  { return Opd{Kind: OpdImm, Imm: v} }
func romOpd(idx int) Opd   { return Opd{Kind: OpdROM, ID: idx} }
func (o Opd) isImm() bool  { return o.Kind == OpdImm }
func (o Opd) isVReg() bool { return o.Kind == OpdVReg }

func (o Opd) String() string {
	switch o.Kind {
	case OpdVReg:
		return fmt.Sprintf("v%d", o.ID)
	case OpdUniform:
		return fmt.Sprintf("c%d", o.ID)
	case OpdSpecial:
		return gpu.OperString(gpu.S(uint8(o.ID)))
	case OpdImm:
		return fmt.Sprintf("#%#x", o.Imm)
	case OpdROM:
		return fmt.Sprintf("rom%d", o.ID)
	}
	return "<none>"
}

// IRInst is one IR instruction: a GPU opcode over virtual operands. For
// memory operations MemOff is the folded constant byte offset.
type IRInst struct {
	Op     gpu.Opcode
	Dst    int // defined vreg, or -1
	A, B   Opd
	MemOff int32
}

func (in IRInst) String() string {
	s := in.Op.String()
	if in.Dst >= 0 {
		s += fmt.Sprintf(" v%d,", in.Dst)
	}
	s += " " + in.A.String()
	if in.B.Kind != OpdNone {
		s += ", " + in.B.String()
	}
	if in.MemOff != 0 {
		s += fmt.Sprintf(" +%d", in.MemOff)
	}
	return s
}

// TermKind is a basic block terminator.
type TermKind int

// Block terminators. TermFall and TermBarrier continue into the next block
// in layout order; TermBrc falls through to the next block when the
// condition is zero.
const (
	TermFall TermKind = iota
	TermBr
	TermBrc
	TermRet
	TermBarrier
)

// Block is an IR basic block. Blocks are laid out in execution order;
// fallthrough successors are always the next block.
type Block struct {
	ID     int
	Insts  []IRInst
	Term   TermKind
	Cond   Opd // for TermBrc
	Target int // block id for TermBr/TermBrc
}

// Fn is a lowered kernel body.
type Fn struct {
	Name       string
	Params     []Param
	Blocks     []*Block
	NumVRegs   int
	ROM        []uint64
	LocalBytes uint32
}

// succs returns the CFG successors of block i (indices into Blocks).
func (f *Fn) succs(i int) []int {
	b := f.Blocks[i]
	switch b.Term {
	case TermRet:
		return nil
	case TermBr:
		return []int{b.Target}
	case TermBrc:
		if i+1 < len(f.Blocks) {
			return []int{b.Target, i + 1}
		}
		return []int{b.Target}
	default: // fall, barrier
		if i+1 < len(f.Blocks) {
			return []int{i + 1}
		}
		return nil
	}
}

// postDominators computes the immediate post-dominator block index for
// every block, using the standard iterative set algorithm over the reverse
// CFG with a virtual exit. Blocks whose only path is to exit get -1
// (reconvergence "one past the end").
func (f *Fn) postDominators() []int {
	n := len(f.Blocks)
	const exit = -1
	// pdom[i] = set of post-dominators, represented as bitsets over n+1
	// (index n = virtual exit).
	words := (n + 1 + 63) / 64
	full := make([]uint64, words)
	for i := 0; i <= n; i++ {
		full[i/64] |= 1 << uint(i%64)
	}
	pdom := make([][]uint64, n)
	for i := range pdom {
		pdom[i] = append([]uint64(nil), full...)
	}
	bit := func(set []uint64, i int) bool { return set[i/64]&(1<<uint(i%64)) != 0 }
	setBit := func(set []uint64, i int) { set[i/64] |= 1 << uint(i%64) }

	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			var inter []uint64
			succ := f.succs(i)
			if len(succ) == 0 {
				inter = make([]uint64, words)
				setBit(inter, n) // exit only
			} else {
				inter = append([]uint64(nil), full...)
				for _, s := range succ {
					for w := range inter {
						inter[w] &= pdom[s][w]
					}
				}
			}
			setBit(inter, i)
			same := true
			for w := range inter {
				if inter[w] != pdom[i][w] {
					same = false
					break
				}
			}
			if !same {
				pdom[i] = inter
				changed = true
			}
		}
	}

	// Immediate post-dominator: the strict post-dominator closest in
	// layout order after i that post-dominates i and is post-dominated by
	// all other strict post-dominators. With reducible layouts the
	// earliest strict post-dominator in layout order works: pick the
	// strict pdom j minimising the size of pdom[j] (the "deepest").
	ipdom := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestSize := exit, -1
		for j := 0; j < n; j++ {
			if j == i || !bit(pdom[i], j) {
				continue
			}
			size := 0
			for w := range pdom[j] {
				size += popcount(pdom[j][w])
			}
			if size > bestSize {
				best, bestSize = j, size
			}
		}
		ipdom[i] = best
	}
	return ipdom
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Dump renders the IR for debugging and golden tests.
func (f *Fn) Dump() string {
	s := fmt.Sprintf("fn %s (%d vregs, %d rom, %d local bytes)\n",
		f.Name, f.NumVRegs, len(f.ROM), f.LocalBytes)
	for _, b := range f.Blocks {
		s += fmt.Sprintf("b%d:\n", b.ID)
		for _, in := range b.Insts {
			s += "  " + in.String() + "\n"
		}
		switch b.Term {
		case TermBr:
			s += fmt.Sprintf("  br b%d\n", b.Target)
		case TermBrc:
			s += fmt.Sprintf("  brc %s, b%d\n", b.Cond, b.Target)
		case TermRet:
			s += "  ret\n"
		case TermBarrier:
			s += "  barrier\n"
		}
	}
	return s
}
