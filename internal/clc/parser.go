package clc

import "fmt"

// parser is a recursive-descent parser for CLite.
type parser struct {
	toks []token
	pos  int
}

// ParseKernels parses a translation unit containing one or more kernels.
func ParseKernels(src string) ([]*Kernel, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var kernels []*Kernel
	for !p.at(tokEOF, "") {
		k, err := p.parseKernel()
		if err != nil {
			return nil, err
		}
		kernels = append(kernels, k)
	}
	if len(kernels) == 0 {
		return nil, fmt.Errorf("clc: no kernels in source")
	}
	return kernels, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, errAt(t.line, t.col, "expected %q, found %q", want, t.String())
	}
	p.pos++
	return t, nil
}

func (p *parser) errHere(format string, args ...any) error {
	t := p.cur()
	return errAt(t.line, t.col, format, args...)
}

// parseKernel parses `kernel void name(params) { body }`.
func (p *parser) parseKernel() (*Kernel, error) {
	if _, err := p.expect(tokKeyword, "kernel"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "void"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	k := &Kernel{Name: name.text}
	for !p.accept(tokPunct, ")") {
		if len(k.Params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		k.Params = append(k.Params, param)
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	k.Body = body
	return k, nil
}

func (p *parser) parseParam() (Param, error) {
	p.accept(tokKeyword, "const")
	if p.accept(tokKeyword, "global") {
		elem, err := p.parseElemKind()
		if err != nil {
			return Param{}, err
		}
		if _, err := p.expect(tokPunct, "*"); err != nil {
			return Param{}, err
		}
		p.accept(tokKeyword, "const")
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return Param{}, err
		}
		return Param{Name: name.text, Type: Type{Kind: TypeGlobalPtr, Elem: elem}}, nil
	}
	switch {
	case p.accept(tokKeyword, "int"), p.accept(tokKeyword, "uint"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return Param{}, err
		}
		return Param{Name: name.text, Type: tInt}, nil
	case p.accept(tokKeyword, "float"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return Param{}, err
		}
		return Param{Name: name.text, Type: tFloat}, nil
	}
	return Param{}, p.errHere("expected parameter type, found %q", p.cur().String())
}

func (p *parser) parseElemKind() (ElemKind, error) {
	switch {
	case p.accept(tokKeyword, "float"):
		return ElemFloat, nil
	case p.accept(tokKeyword, "int"), p.accept(tokKeyword, "uint"):
		return ElemInt, nil
	case p.accept(tokKeyword, "uchar"):
		return ElemUChar, nil
	}
	return 0, p.errHere("expected pointee type, found %q", p.cur().String())
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.accept(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errHere("unexpected end of input in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	return b, nil
}

// parseStmt parses one statement. Returns (nil, nil) for bare semicolons.
func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.accept(tokPunct, ";"):
		return nil, nil
	case p.at(tokPunct, "{"):
		return p.parseBlock()
	case p.at(tokKeyword, "local"):
		return p.parseLocalDecl()
	case p.at(tokKeyword, "int") || p.at(tokKeyword, "uint") ||
		p.at(tokKeyword, "float") || p.at(tokKeyword, "bool") ||
		p.at(tokKeyword, "const"):
		s, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	case p.accept(tokKeyword, "if"):
		return p.parseIf()
	case p.accept(tokKeyword, "for"):
		return p.parseFor()
	case p.accept(tokKeyword, "while"):
		return p.parseWhile()
	case p.accept(tokKeyword, "do"):
		return nil, errAt(t.line, t.col, "do/while is not supported; use while")
	case p.accept(tokKeyword, "break"):
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{line: t.line}, nil
	case p.accept(tokKeyword, "continue"):
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{line: t.line}, nil
	case p.accept(tokKeyword, "return"):
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{line: t.line}, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *parser) parseLocalDecl() (Stmt, error) {
	t := p.cur()
	p.pos++ // local
	elem, err := p.parseElemKind()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "["); err != nil {
		return nil, err
	}
	size := p.cur()
	if size.kind != tokIntLit || size.intVal <= 0 {
		return nil, errAt(size.line, size.col, "local array size must be a positive integer literal")
	}
	p.pos++
	if _, err := p.expect(tokPunct, "]"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	// Recorded on the kernel by sema; carried via a marker statement.
	return &localDeclStmt{
		arr:  LocalArray{Name: name.text, Elem: elem, Count: int(size.intVal)},
		line: t.line,
	}, nil
}

// localDeclStmt is internal: sema hoists these onto the Kernel.
type localDeclStmt struct {
	arr  LocalArray
	line int
}

func (*localDeclStmt) stmtNode() {}

func (p *parser) parseDecl() (Stmt, error) {
	t := p.cur()
	p.accept(tokKeyword, "const")
	var typ Type
	switch {
	case p.accept(tokKeyword, "int"), p.accept(tokKeyword, "uint"):
		typ = tInt
	case p.accept(tokKeyword, "float"):
		typ = tFloat
	case p.accept(tokKeyword, "bool"):
		typ = tBool
	default:
		return nil, p.errHere("expected type in declaration")
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: name.text, Type: typ, line: t.line}
	if p.accept(tokPunct, "=") {
		d.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// parseSimpleStmt parses assignments, ++/--, and expression statements.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	t := p.cur()
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept(tokPunct, "="):
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, RHS: rhs, line: t.line}, nil
	case p.at(tokPunct, "+=") || p.at(tokPunct, "-=") || p.at(tokPunct, "*=") ||
		p.at(tokPunct, "/=") || p.at(tokPunct, "%=") || p.at(tokPunct, "&=") ||
		p.at(tokPunct, "|=") || p.at(tokPunct, "^=") || p.at(tokPunct, "<<=") ||
		p.at(tokPunct, ">>="):
		op := p.cur().text
		p.pos++
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, Op: op[:len(op)-1], RHS: rhs, line: t.line}, nil
	case p.accept(tokPunct, "++"):
		one := &IntLit{Val: 1, exprBase: exprBase{line: t.line}}
		return &AssignStmt{LHS: lhs, Op: "+", RHS: one, line: t.line}, nil
	case p.accept(tokPunct, "--"):
		one := &IntLit{Val: 1, exprBase: exprBase{line: t.line}}
		return &AssignStmt{LHS: lhs, Op: "-", RHS: one, line: t.line}, nil
	}
	return &ExprStmt{X: lhs}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	thenB, err := p.parseBlockOrStmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: thenB}
	if p.accept(tokKeyword, "else") {
		if p.accept(tokKeyword, "if") {
			elif, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = &BlockStmt{Stmts: []Stmt{elif}}
		} else {
			s.Else, err = p.parseBlockOrStmt()
			if err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// parseBlockOrStmt allows unbraced single-statement bodies.
func (p *parser) parseBlockOrStmt() (*BlockStmt, error) {
	if p.at(tokPunct, "{") {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return &BlockStmt{}, nil
	}
	return &BlockStmt{Stmts: []Stmt{s}}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	f := &ForStmt{}
	if !p.accept(tokPunct, ";") {
		var err error
		if p.at(tokKeyword, "int") || p.at(tokKeyword, "uint") || p.at(tokKeyword, "float") {
			f.Init, err = p.parseDecl()
		} else {
			f.Init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(tokPunct, ";") {
		var err error
		f.Cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
	}
	if !p.at(tokPunct, ")") {
		var err error
		f.Post, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrStmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrStmt()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Cond: cond, Body: body}, nil
}

// --- Expressions (precedence climbing) --------------------------------------

func (p *parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *parser) parseTernary() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept(tokPunct, "?") {
		return c, nil
	}
	line, col := c.Pos()
	a, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return nil, err
	}
	b, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{C: c, A: a, B: b, exprBase: exprBase{line: line, col: col}}, nil
}

// binary operator precedence, low to high.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		line, col := lhs.Pos()
		lhs = &Binary{Op: t.text, L: lhs, R: rhs, exprBase: exprBase{line: line, col: col}}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch {
	case p.accept(tokPunct, "-"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x, exprBase: exprBase{line: t.line, col: t.col}}, nil
	case p.accept(tokPunct, "!"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "!", X: x, exprBase: exprBase{line: t.line, col: t.col}}, nil
	case p.accept(tokPunct, "~"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "~", X: x, exprBase: exprBase{line: t.line, col: t.col}}, nil
	case p.accept(tokPunct, "+"):
		return p.parseUnary()
	}
	// Cast: "(" type ")" unary
	if p.at(tokPunct, "(") && p.peek().kind == tokKeyword &&
		(p.peek().text == "int" || p.peek().text == "float" ||
			p.peek().text == "uint" || p.peek().text == "uchar") {
		p.pos++ // (
		kind := p.cur().text
		var to Type
		switch kind {
		case "int", "uint", "uchar":
			to = tInt
		case "float":
			to = tFloat
		}
		p.pos++
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		cast := Expr(&CastExpr{To: to, X: x, exprBase: exprBase{line: t.line, col: t.col}})
		if kind == "uchar" {
			// (uchar)x truncates to the low byte.
			cast = &Binary{Op: "&", L: cast,
				R:        &IntLit{Val: 0xFF, exprBase: exprBase{line: t.line, col: t.col}},
				exprBase: exprBase{line: t.line, col: t.col}}
		}
		return cast, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.accept(tokPunct, "["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			x = &Index{Base: x, Idx: idx, exprBase: exprBase{line: t.line, col: t.col}}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokIntLit:
		p.pos++
		return &IntLit{Val: t.intVal, exprBase: exprBase{line: t.line, col: t.col}}, nil
	case tokFloatLit:
		p.pos++
		return &FloatLit{Val: t.floatVal, exprBase: exprBase{line: t.line, col: t.col}}, nil
	case tokIdent:
		p.pos++
		if p.accept(tokPunct, "(") {
			call := &Call{Name: t.text, exprBase: exprBase{line: t.line, col: t.col}}
			for !p.accept(tokPunct, ")") {
				if len(call.Args) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			return call, nil
		}
		return &Ident{Name: t.text, exprBase: exprBase{line: t.line, col: t.col}}, nil
	case tokPunct:
		if t.text == "(" {
			p.pos++
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, errAt(t.line, t.col, "unexpected token %q in expression", t.String())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
