package clc

import (
	"fmt"
	"sort"

	"mobilesim/internal/gpu"
)

// Version is one compiler release's pass configuration. The paper's Fig 1
// shows that successive versions of the vendor OpenCL compiler generate
// substantially different code for the same kernel; these knobs reproduce
// that variation with real pass differences rather than cosmetic noise.
type Version struct {
	Name string
	// MaxClauseSlots caps clause size (architectural max 16).
	MaxClauseSlots int
	// UseTemps promotes clause-local values into temporary registers,
	// relieving GRF pressure (Fig 4b).
	UseTemps bool
	// LoadPadNops inserts hazard-padding NOPs after each memory
	// instruction (older schedulers padded conservatively).
	LoadPadNops int
	// FoldAddressing folds constant offsets into load/store immediates
	// and CSEs address arithmetic within a block.
	FoldAddressing bool
	// ConstPool places literal constants in the binary's ROM table
	// instead of inline immediates.
	ConstPool bool
}

// Versions mirrors the vendor compiler releases evaluated in Fig 1.
var Versions = map[string]Version{
	"5.6": {Name: "5.6", MaxClauseSlots: 8, UseTemps: true, LoadPadNops: 2},
	"5.7": {Name: "5.7", MaxClauseSlots: 8, UseTemps: false, LoadPadNops: 1, FoldAddressing: true},
	"6.0": {Name: "6.0", MaxClauseSlots: 12, UseTemps: true, LoadPadNops: 2, ConstPool: true},
	"6.1": {Name: "6.1", MaxClauseSlots: 16, UseTemps: true, LoadPadNops: 0, FoldAddressing: true, ConstPool: true},
	"6.2": {Name: "6.2", MaxClauseSlots: 16, UseTemps: true, LoadPadNops: 0, FoldAddressing: true, ConstPool: true},
}

// DefaultVersion is the version the runtime JIT uses unless configured.
const DefaultVersion = "6.1"

// VersionNames returns all version names in release order.
func VersionNames() []string {
	names := make([]string, 0, len(Versions))
	for n := range Versions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Options configures a compilation.
type Options struct {
	// Version selects the compiler release; empty means DefaultVersion.
	Version string
}

// StaticReport is the offline-compiler view of a binary: the metrics shown
// in Fig 1.
type StaticReport struct {
	ArithCycles int // issue tuples through the arithmetic pipeline
	ArithInstrs int
	LSCycles    int // LS-pipe issues incl. address generation
	LSInstrs    int
	Registers   int // GRF footprint
}

// CompiledKernel is the JIT output for one kernel: the serialized binary
// the driver places in shared memory, plus metadata the runtime needs for
// argument marshalling.
type CompiledKernel struct {
	Name       string
	Params     []Param
	Binary     []byte
	Program    *gpu.Program
	LocalBytes uint32
	Report     StaticReport
}

// Compile builds a single named kernel from source.
func Compile(src, kernelName string, opt Options) (*CompiledKernel, error) {
	all, err := CompileAll(src, opt)
	if err != nil {
		return nil, err
	}
	k, ok := all[kernelName]
	if !ok {
		return nil, fmt.Errorf("clc: kernel %q not found in source", kernelName)
	}
	return k, nil
}

// CompileAll builds every kernel in the source string.
func CompileAll(src string, opt Options) (map[string]*CompiledKernel, error) {
	verName := opt.Version
	if verName == "" {
		verName = DefaultVersion
	}
	ver, ok := Versions[verName]
	if !ok {
		return nil, fmt.Errorf("clc: unknown compiler version %q", verName)
	}
	kernels, err := ParseKernels(src)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*CompiledKernel, len(kernels))
	for _, k := range kernels {
		if _, dup := out[k.Name]; dup {
			return nil, fmt.Errorf("clc: duplicate kernel %q", k.Name)
		}
		fn, err := lowerKernel(k, ver)
		if err != nil {
			return nil, err
		}
		cg := &codegen{fn: fn, ver: ver}
		prog, err := cg.generate()
		if err != nil {
			return nil, err
		}
		bin, err := gpu.Serialize(prog)
		if err != nil {
			return nil, err
		}
		ac, ai, lc, li := prog.StaticCounts()
		out[k.Name] = &CompiledKernel{
			Name:       k.Name,
			Params:     k.Params,
			Binary:     bin,
			Program:    prog,
			LocalBytes: fn.LocalBytes,
			Report: StaticReport{
				ArithCycles: ac, ArithInstrs: ai,
				LSCycles: lc, LSInstrs: li,
				Registers: prog.RegCount,
			},
		}
	}
	return out, nil
}
