package clc

import (
	"fmt"
	"sort"

	"mobilesim/internal/gpu"
)

// codegen turns a lowered Fn into a gpu.Program: clause formation, clause-
// temporary promotion, GRF allocation, and instruction encoding. This is
// where the compiler versions diverge (clause sizes, hazard padding,
// temp usage), producing the Fig 1 differences.
type codegen struct {
	fn  *Fn
	ver Version

	clauses    []clauseDraft
	blockStart []int // block id -> first clause index
	ipdom      []int

	// operand assignment
	grfOf   map[int]uint8 // vreg -> GRF index
	tempOf  map[int]uint8 // vreg -> temp index (clause-local vregs)
	regHigh int
}

type clauseDraft struct {
	items []clauseItem
	block int
}

type clauseItem struct {
	isNop bool
	inst  IRInst // valid when !isNop
	// terminator payload, filled during fixup
	isTerm bool
	term   TermKind
	target int // block id (pre-fixup)
	rejoin int // block id (pre-fixup, BRC only)
	cond   Opd
}

// generate runs the full backend.
func (cg *codegen) generate() (*gpu.Program, error) {
	cg.materializeImmConflicts()
	cg.ipdom = cg.fn.postDominators()
	cg.formClauses()
	if err := cg.assignRegisters(); err != nil {
		return nil, err
	}
	return cg.encode()
}

// materializeImmConflicts rewrites instructions whose encoding would need
// the single Imm field for two different values, inserting MOVs.
func (cg *codegen) materializeImmConflicts() {
	for _, b := range cg.fn.Blocks {
		var out []IRInst
		for _, in := range b.Insts {
			isMem := isLS(in.Op)
			if isMem {
				// Memory ops reserve the Imm field for the address
				// offset: materialise every imm/ROM operand.
				if in.A.Kind == OpdImm || in.A.Kind == OpdROM {
					v := cg.fn.NumVRegs
					cg.fn.NumVRegs++
					out = append(out, IRInst{Op: gpu.OpMOV, Dst: v, A: in.A})
					in.A = vr(v)
				}
				if in.B.Kind == OpdImm || in.B.Kind == OpdROM {
					v := cg.fn.NumVRegs
					cg.fn.NumVRegs++
					out = append(out, IRInst{Op: gpu.OpMOV, Dst: v, A: in.B})
					in.B = vr(v)
				}
			} else {
				// Non-memory ops: the field can serve one immediate; two
				// distinct payloads force materialising A. (ROM indices
				// and immediates share the field, so mixed kinds or
				// differing values conflict.)
				payload := func(o Opd) (uint64, bool) {
					switch o.Kind {
					case OpdImm:
						return uint64(o.Imm), true
					case OpdROM:
						return uint64(o.ID) | 1<<32, true
					}
					return 0, false
				}
				pa, aImm := payload(in.A)
				pb, bImm := payload(in.B)
				if aImm && bImm && pa != pb {
					v := cg.fn.NumVRegs
					cg.fn.NumVRegs++
					out = append(out, IRInst{Op: gpu.OpMOV, Dst: v, A: in.A})
					in.A = vr(v)
				}
			}
			out = append(out, in)
		}
		b.Insts = out
	}
}

func isLS(op gpu.Opcode) bool { return gpu.Classify(op) == gpu.ClassLS }

// formClauses chunks each block into clauses respecting the version's
// clause-size limit and load-hazard NOP padding, and appends the block
// terminator as the final clause-terminal instruction.
func (cg *codegen) formClauses() {
	maxSlots := cg.ver.MaxClauseSlots
	if maxSlots <= 0 || maxSlots > gpu.MaxClauseSlotsBinary {
		maxSlots = gpu.MaxClauseSlotsBinary
	}
	cg.blockStart = make([]int, len(cg.fn.Blocks))

	for bi, b := range cg.fn.Blocks {
		cg.blockStart[bi] = len(cg.clauses)
		cur := clauseDraft{block: bi}
		flush := func() {
			if len(cur.items) > 0 {
				cg.clauses = append(cg.clauses, cur)
				cur = clauseDraft{block: bi}
			}
		}
		push := func(it clauseItem) {
			if len(cur.items) >= maxSlots {
				flush()
			}
			cur.items = append(cur.items, it)
		}
		for _, in := range b.Insts {
			push(clauseItem{inst: in})
			if isLS(in.Op) {
				for p := 0; p < cg.ver.LoadPadNops; p++ {
					push(clauseItem{isNop: true})
				}
			}
		}
		// Terminator.
		switch b.Term {
		case TermFall:
			// no instruction; clause falls through
		case TermRet, TermBarrier, TermBr, TermBrc:
			push(clauseItem{
				isTerm: true,
				term:   b.Term,
				target: b.Target,
				rejoin: cg.rejoinBlock(bi),
				cond:   b.Cond,
			})
		}
		flush()
		// Blocks that produced no clause (empty fallthrough blocks) still
		// need an anchor so branch targets resolve; emit a 1-NOP clause.
		if cg.blockStart[bi] == len(cg.clauses) {
			cg.clauses = append(cg.clauses, clauseDraft{
				block: bi,
				items: []clauseItem{{isNop: true}},
			})
		}
	}
}

// rejoinBlock returns the reconvergence block id for a BRC in block bi
// (its immediate post-dominator; -1 means program exit).
func (cg *codegen) rejoinBlock(bi int) int {
	if cg.fn.Blocks[bi].Term != TermBrc {
		return -1
	}
	return cg.ipdom[bi]
}

// --- register assignment -----------------------------------------------------

type interval struct {
	vreg   int
	lo, hi int
}

// assignRegisters promotes clause-local vregs to temp registers (when the
// version allows) and linear-scans the rest onto the GRF.
func (cg *codegen) assignRegisters() error {
	cg.grfOf = map[int]uint8{}
	cg.tempOf = map[int]uint8{}

	// Global position numbering and per-vreg occurrence data.
	type occ struct {
		first, last  int
		clauses      map[int]bool
		defs         int
		firstIsWrite bool
	}
	occs := map[int]*occ{}
	forEach := func(fn func(ci int, it *clauseItem, p int)) {
		p := 0
		for ci := range cg.clauses {
			for ii := range cg.clauses[ci].items {
				fn(ci, &cg.clauses[ci].items[ii], p)
				p++
			}
		}
	}
	note := func(v int, ci, p int, isDef bool) {
		o := occs[v]
		if o == nil {
			o = &occ{first: p, last: p, clauses: map[int]bool{}, firstIsWrite: isDef}
			occs[v] = o
		}
		if p < o.first {
			o.first = p
		}
		if p > o.last {
			o.last = p
		}
		o.clauses[ci] = true
		if isDef {
			o.defs++
		}
	}
	forEach(func(ci int, it *clauseItem, p int) {
		if it.isNop {
			return
		}
		if it.isTerm {
			if it.term == TermBrc && it.cond.isVReg() {
				note(it.cond.ID, ci, p, false)
			}
			return
		}
		in := it.inst
		if in.A.isVReg() {
			note(in.A.ID, ci, p, false)
		}
		if in.B.isVReg() {
			note(in.B.ID, ci, p, false)
		}
		if in.Dst >= 0 {
			note(in.Dst, ci, p, true)
		}
	})

	// Back-edge extension: vregs live into a loop stay live through it.
	blockFirst := make([]int, len(cg.fn.Blocks))
	blockLast := make([]int, len(cg.fn.Blocks))
	for i := range blockFirst {
		blockFirst[i] = -1
	}
	{
		p := 0
		for ci := range cg.clauses {
			b := cg.clauses[ci].block
			for range cg.clauses[ci].items {
				if blockFirst[b] == -1 {
					blockFirst[b] = p
				}
				blockLast[b] = p
				p++
			}
		}
	}
	for bi := range cg.fn.Blocks {
		for _, s := range cg.fn.succs(bi) {
			if s <= bi { // back edge
				pT, pB := blockFirst[s], blockLast[bi]
				if pT < 0 {
					continue
				}
				for _, o := range occs {
					if o.first < pT && o.last >= pT && o.last < pB {
						o.last = pB
					}
				}
			}
		}
	}

	// Temp promotion: single-clause vregs, greedily into 4 temp slots.
	if cg.ver.UseTemps {
		type cand struct {
			vreg   int
			lo, hi int
		}
		byClause := map[int][]cand{}
		for v, o := range occs {
			if len(o.clauses) == 1 && o.firstIsWrite {
				var ci int
				for c := range o.clauses {
					ci = c
				}
				byClause[ci] = append(byClause[ci], cand{vreg: v, lo: o.first, hi: o.last})
			}
		}
		for _, cands := range byClause {
			sort.Slice(cands, func(i, j int) bool { return cands[i].lo < cands[j].lo })
			var busyUntil [gpu.NumTemp]int
			for i := range busyUntil {
				busyUntil[i] = -1
			}
			for _, c := range cands {
				for slot := 0; slot < gpu.NumTemp; slot++ {
					if busyUntil[slot] < c.lo {
						cg.tempOf[c.vreg] = uint8(slot)
						busyUntil[slot] = c.hi
						break
					}
				}
			}
		}
	}

	// Linear scan for the rest.
	var ivs []interval
	for v, o := range occs {
		if _, isTemp := cg.tempOf[v]; isTemp {
			continue
		}
		ivs = append(ivs, interval{vreg: v, lo: o.first, hi: o.last})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var freeRegs []uint8
	for r := gpu.NumGRF - 1; r >= 0; r-- {
		freeRegs = append(freeRegs, uint8(r)) // pop from the back -> r0 first
	}
	type activeIv struct {
		hi  int
		reg uint8
	}
	var active []activeIv
	for _, iv := range ivs {
		// Expire.
		kept := active[:0]
		for _, a := range active {
			if a.hi >= iv.lo {
				kept = append(kept, a)
			} else {
				freeRegs = append(freeRegs, a.reg)
			}
		}
		active = kept
		if len(freeRegs) == 0 {
			return fmt.Errorf("clc: kernel %q needs more than %d registers", cg.fn.Name, gpu.NumGRF)
		}
		r := freeRegs[len(freeRegs)-1]
		freeRegs = freeRegs[:len(freeRegs)-1]
		cg.grfOf[iv.vreg] = r
		if int(r)+1 > cg.regHigh {
			cg.regHigh = int(r) + 1
		}
		active = append(active, activeIv{hi: iv.hi, reg: r})
	}
	return nil
}

// --- encoding ---------------------------------------------------------------

func (cg *codegen) operandByte(o Opd, instImm *uint32) (uint8, error) {
	switch o.Kind {
	case OpdVReg:
		if t, ok := cg.tempOf[o.ID]; ok {
			return gpu.T(int(t)), nil
		}
		r, ok := cg.grfOf[o.ID]
		if !ok {
			return 0, fmt.Errorf("clc: vreg v%d has no register", o.ID)
		}
		return gpu.R(int(r)), nil
	case OpdUniform:
		return gpu.C(o.ID), nil
	case OpdSpecial:
		return gpu.S(uint8(o.ID)), nil
	case OpdImm:
		*instImm = o.Imm
		return gpu.Imm, nil
	case OpdROM:
		*instImm = uint32(o.ID)
		return gpu.Rom, nil
	case OpdNone:
		return gpu.S(gpu.SpecZero), nil
	}
	return 0, fmt.Errorf("clc: bad operand kind %d", o.Kind)
}

func (cg *codegen) encode() (*gpu.Program, error) {
	prog := &gpu.Program{
		ROM:      cg.fn.ROM,
		RegCount: cg.regHigh,
		Uniforms: len(cg.fn.Params),
	}
	exitClause := len(cg.clauses)
	clauseOfBlock := func(b int) int {
		if b < 0 || b >= len(cg.blockStart) {
			return exitClause
		}
		return cg.blockStart[b]
	}

	for _, draft := range cg.clauses {
		var c gpu.Clause
		for _, it := range draft.items {
			switch {
			case it.isNop:
				c.Instrs = append(c.Instrs, gpu.Instr{Op: gpu.OpNOP})
			case it.isTerm:
				switch it.term {
				case TermRet:
					c.Instrs = append(c.Instrs, gpu.Instr{Op: gpu.OpRET})
				case TermBarrier:
					c.Instrs = append(c.Instrs, gpu.Instr{Op: gpu.OpBARRIER})
				case TermBr:
					c.Instrs = append(c.Instrs, gpu.Instr{
						Op:  gpu.OpBR,
						Imm: gpu.BranchImm(clauseOfBlock(it.target), 0),
					})
				case TermBrc:
					var imm uint32
					cond, err := cg.operandByte(it.cond, &imm)
					if err != nil {
						return nil, err
					}
					c.Instrs = append(c.Instrs, gpu.Instr{
						Op: gpu.OpBRC,
						A:  cond,
						Imm: gpu.BranchImm(
							clauseOfBlock(it.target),
							clauseOfBlock(it.rejoin)),
					})
				}
			default:
				in := it.inst
				var gi gpu.Instr
				gi.Op = in.Op
				var imm uint32
				var err error
				if gi.A, err = cg.operandByte(in.A, &imm); err != nil {
					return nil, err
				}
				if in.B.Kind != OpdNone {
					if gi.B, err = cg.operandByte(in.B, &imm); err != nil {
						return nil, err
					}
				} else {
					gi.B = gpu.S(gpu.SpecZero)
				}
				if in.Dst >= 0 {
					if gi.Dst, err = cg.operandByte(vr(in.Dst), &imm); err != nil {
						return nil, err
					}
				}
				if isLS(in.Op) && in.MemOff != 0 {
					imm = uint32(in.MemOff)
				}
				gi.Imm = imm
				c.Instrs = append(c.Instrs, gi)
			}
		}
		prog.Clauses = append(prog.Clauses, c)
	}
	return prog, nil
}
