package clc

// Type is a CLite type.
type Type struct {
	Kind TypeKind
	Elem ElemKind // pointee element for pointers
}

// TypeKind classifies CLite types.
type TypeKind int

// Type kinds.
const (
	TypeInt TypeKind = iota
	TypeFloat
	TypeBool
	TypeGlobalPtr
	TypeLocalPtr
	TypeVoid
)

// ElemKind is the pointee element type of a pointer.
type ElemKind int

// Pointer element kinds.
const (
	ElemFloat ElemKind = iota
	ElemInt
	ElemUChar
)

// Size returns the element size in bytes.
func (e ElemKind) Size() uint32 {
	if e == ElemUChar {
		return 1
	}
	return 4
}

func (t Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeBool:
		return "bool"
	case TypeVoid:
		return "void"
	case TypeGlobalPtr, TypeLocalPtr:
		space := "global"
		if t.Kind == TypeLocalPtr {
			space = "local"
		}
		switch t.Elem {
		case ElemFloat:
			return space + " float*"
		case ElemInt:
			return space + " int*"
		default:
			return space + " uchar*"
		}
	}
	return "?"
}

var (
	tInt   = Type{Kind: TypeInt}
	tFloat = Type{Kind: TypeFloat}
	tBool  = Type{Kind: TypeBool}
)

// Param is a kernel parameter.
type Param struct {
	Name string
	Type Type
}

// Kernel is a parsed kernel function.
type Kernel struct {
	Name   string
	Params []Param
	Body   *BlockStmt
	// LocalArrays lists kernel-scope `local T name[N];` declarations.
	LocalArrays []LocalArray
}

// LocalArray is a statically sized workgroup-local array.
type LocalArray struct {
	Name  string
	Elem  ElemKind
	Count int
	// Offset within the workgroup local segment, assigned by sema.
	Offset uint32
}

// --- Statements -------------------------------------------------------------

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is `{ ... }`.
type BlockStmt struct{ Stmts []Stmt }

// DeclStmt declares a scalar: `int x = e;`.
type DeclStmt struct {
	Name string
	Type Type
	Init Expr // nil means zero
	line int
}

// AssignStmt is `lhs = e` or a compound assignment (Op non-empty, e.g. "+").
type AssignStmt struct {
	LHS  Expr // Ident or Index
	Op   string
	RHS  Expr
	line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // may be nil
}

// ForStmt is `for (init; cond; post) body`. Init/Post may be nil; a nil
// Cond means true. While loops parse into ForStmt with nil Init/Post.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body *BlockStmt
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ line int }

// ContinueStmt jumps to the innermost loop's post/condition.
type ContinueStmt struct{ line int }

// ReturnStmt terminates the thread (kernels are void).
type ReturnStmt struct{ line int }

// ExprStmt evaluates an expression for effect (barrier(), x++ ...).
type ExprStmt struct{ X Expr }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}

// --- Expressions -------------------------------------------------------------

// Expr is an expression node. Sema fills typ.
type Expr interface {
	exprNode()
	Pos() (line, col int)
}

type exprBase struct {
	line, col int
	typ       Type
}

func (e *exprBase) Pos() (int, int) { return e.line, e.col }

// Ident references a parameter, local variable or local array.
type Ident struct {
	exprBase
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a float literal.
type FloatLit struct {
	exprBase
	Val float64
}

// Binary is `a op b` for arithmetic/comparison/logical/bitwise operators.
type Binary struct {
	exprBase
	Op   string
	L, R Expr
}

// Unary is `-x`, `!x`, `~x`.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Cond is the ternary `c ? a : b`.
type Cond struct {
	exprBase
	C, A, B Expr
}

// Index is `ptr[idx]` or `localArr[idx]`.
type Index struct {
	exprBase
	Base Expr
	Idx  Expr
}

// Call is a builtin call: get_global_id(0), sqrt(x), barrier(), ...
type Call struct {
	exprBase
	Name string
	Args []Expr
}

// CastExpr is `(int)x` or `(float)x`.
type CastExpr struct {
	exprBase
	To Type
	X  Expr
}

func (*Ident) exprNode()    {}
func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*Binary) exprNode()   {}
func (*Unary) exprNode()    {}
func (*Cond) exprNode()     {}
func (*Index) exprNode()    {}
func (*Call) exprNode()     {}
func (*CastExpr) exprNode() {}
