package clc

import (
	"strconv"
	"strings"
)

// lexer tokenises CLite source.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// multi-character operators, longest first.
var punct2 = []string{
	"<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 < len(l.src) {
				if l.peekByte() == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errAt(startLine, startCol, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.peekByte()

	if isIdentStart(c) {
		start := l.pos
		for l.pos < len(l.src) && (isIdentStart(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: line, col: col}, nil
	}

	if isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])) {
		return l.lexNumber(line, col)
	}

	rest := l.src[l.pos:]
	for _, p := range punct2 {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.advance()
			}
			return token{kind: tokPunct, text: p, line: line, col: col}, nil
		}
	}
	l.advance()
	return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
}

func (l *lexer) lexNumber(line, col int) (token, error) {
	start := l.pos
	isFloat := false
	if l.peekByte() == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHexDigit(l.peekByte()) {
			l.advance()
		}
	} else {
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
		if l.pos < len(l.src) && l.peekByte() == '.' {
			isFloat = true
			l.advance()
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
		if l.pos < len(l.src) && (l.peekByte() == 'e' || l.peekByte() == 'E') {
			isFloat = true
			l.advance()
			if l.peekByte() == '+' || l.peekByte() == '-' {
				l.advance()
			}
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
	}
	text := l.src[start:l.pos]
	// Optional f suffix forces float.
	if l.pos < len(l.src) && (l.peekByte() == 'f' || l.peekByte() == 'F') {
		l.advance()
		isFloat = true
	}
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, errAt(line, col, "bad float literal %q", text)
		}
		return token{kind: tokFloatLit, text: text, floatVal: v, line: line, col: col}, nil
	}
	v, err := strconv.ParseInt(text, 0, 64)
	if err != nil {
		return token{}, errAt(line, col, "bad integer literal %q", text)
	}
	return token{kind: tokIntLit, text: text, intVal: v, line: line, col: col}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// lexAll tokenises the whole input (plus trailing EOF token).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
