package clc_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mobilesim/internal/clc"
	"mobilesim/internal/gpu"
	"mobilesim/internal/simtest"
)

// Differential fuzzing of the whole toolchain + GPU: random integer
// expression kernels are compiled with every compiler version, executed
// on the simulated GPU, and compared against a host-side evaluator of the
// same expression. Integer semantics are exact, so any mismatch is a
// compiler or execution-engine bug.

type evalFn func(v [4]int32) int32

// exprGen builds a random int expression over variables v0..v3 as both
// CLite source and a Go evaluator.
type exprGen struct {
	rnd      *rand.Rand
	maxDepth int
}

func (g *exprGen) gen(depth int) (string, evalFn) {
	if depth >= g.maxDepth || g.rnd.Intn(4) == 0 {
		if g.rnd.Intn(3) == 0 {
			c := int32(g.rnd.Intn(2001) - 1000)
			return fmt.Sprintf("%d", c), func([4]int32) int32 { return c }
		}
		i := g.rnd.Intn(4)
		return fmt.Sprintf("v%d", i), func(v [4]int32) int32 { return v[i] }
	}

	switch g.rnd.Intn(8) {
	case 0: // shift by constant
		l, lf := g.gen(depth + 1)
		sh := uint(g.rnd.Intn(31))
		if g.rnd.Intn(2) == 0 {
			return fmt.Sprintf("((%s) << %d)", l, sh),
				func(v [4]int32) int32 { return lf(v) << sh }
		}
		return fmt.Sprintf("((%s) >> %d)", l, sh),
			func(v [4]int32) int32 { return lf(v) >> sh }

	case 1: // comparison feeding a ternary
		l, lf := g.gen(depth + 1)
		r, rf := g.gen(depth + 1)
		cmps := []struct {
			src string
			f   func(a, b int32) bool
		}{
			{"<", func(a, b int32) bool { return a < b }},
			{"<=", func(a, b int32) bool { return a <= b }},
			{">", func(a, b int32) bool { return a > b }},
			{">=", func(a, b int32) bool { return a >= b }},
			{"==", func(a, b int32) bool { return a == b }},
			{"!=", func(a, b int32) bool { return a != b }},
		}
		cmp := cmps[g.rnd.Intn(len(cmps))]
		litA := int32(g.rnd.Intn(1001) - 500)
		litB := int32(g.rnd.Intn(1001) - 500)
		return fmt.Sprintf("((%s) %s (%s) ? %d : %d)", l, cmp.src, r, litA, litB),
			func(v [4]int32) int32 {
				if cmp.f(lf(v), rf(v)) {
					return litA
				}
				return litB
			}

	case 2: // min/max
		l, lf := g.gen(depth + 1)
		r, rf := g.gen(depth + 1)
		if g.rnd.Intn(2) == 0 {
			return fmt.Sprintf("min(%s, %s)", l, r), func(v [4]int32) int32 {
				a, b := lf(v), rf(v)
				if a < b {
					return a
				}
				return b
			}
		}
		return fmt.Sprintf("max(%s, %s)", l, r), func(v [4]int32) int32 {
			a, b := lf(v), rf(v)
			if a > b {
				return a
			}
			return b
		}

	default: // binary arithmetic / bitwise
		type binop struct {
			src string
			f   func(a, b int32) int32
		}
		ops := []binop{
			{"+", func(a, b int32) int32 { return a + b }},
			{"-", func(a, b int32) int32 { return a - b }},
			{"*", func(a, b int32) int32 { return a * b }},
			{"&", func(a, b int32) int32 { return a & b }},
			{"|", func(a, b int32) int32 { return a | b }},
			{"^", func(a, b int32) int32 { return a ^ b }},
			{"/", func(a, b int32) int32 {
				if b == 0 {
					return 0
				}
				if a == -1<<31 && b == -1 {
					return a
				}
				return a / b
			}},
			{"%", func(a, b int32) int32 {
				if b == 0 || (a == -1<<31 && b == -1) {
					return 0
				}
				return a % b
			}},
		}
		op := ops[g.rnd.Intn(len(ops))]
		l, lf := g.gen(depth + 1)
		r, rf := g.gen(depth + 1)
		return fmt.Sprintf("((%s) %s (%s))", l, op.src, r),
			func(v [4]int32) int32 { return op.f(lf(v), rf(v)) }
	}
}

func TestDifferentialFuzzExpressions(t *testing.T) {
	h := simtest.New(t, gpu.DefaultConfig())
	rnd := rand.New(rand.NewSource(20260612))
	const n = 64
	versions := clc.VersionNames()

	for round := 0; round < 60; round++ {
		g := &exprGen{rnd: rnd, maxDepth: 4}
		src, eval := g.gen(0)
		kernelSrc := fmt.Sprintf(`
kernel void fz(global int* in0, global int* in1, global int* in2, global int* out) {
    int i = get_global_id(0);
    int v0 = in0[i];
    int v1 = in1[i];
    int v2 = in2[i];
    int v3 = i;
    out[i] = %s;
}
`, src)

		ins := make([][]int32, 3)
		args := make([]uint64, 4)
		for b := 0; b < 3; b++ {
			ins[b] = make([]int32, n)
			for i := range ins[b] {
				switch rnd.Intn(5) {
				case 0:
					ins[b][i] = 0
				case 1:
					ins[b][i] = -1
				case 2:
					ins[b][i] = 1 << 30
				default:
					ins[b][i] = int32(rnd.Uint32())
				}
			}
			args[b] = h.AllocBuf(4 * n)
			h.WriteI32(args[b], ins[b])
		}
		args[3] = h.AllocBuf(4 * n)

		ver := versions[rnd.Intn(len(versions))]
		k, err := clc.Compile(kernelSrc, "fz", clc.Options{Version: ver})
		if err != nil {
			t.Fatalf("round %d (%s): compile: %v\nexpr: %s", round, ver, err, src)
		}
		h.RunKernel(k, [3]uint32{n, 1, 1}, [3]uint32{16, 1, 1}, args)
		got := h.ReadI32(args[3], n)
		for i := 0; i < n; i++ {
			want := eval([4]int32{ins[0][i], ins[1][i], ins[2][i], int32(i)})
			if got[i] != want {
				t.Fatalf("round %d version %s lane %d: got %d want %d\nexpr: %s\ninputs: %v",
					round, ver, i, got[i], want, src,
					[]int32{ins[0][i], ins[1][i], ins[2][i], int32(i)})
			}
		}
	}
}
