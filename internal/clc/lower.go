package clc

import (
	"math"

	"mobilesim/internal/gpu"
)

// lowerer translates one kernel's AST into IR, type-checking as it goes.
type lowerer struct {
	fn   *Fn
	ver  Version
	cur  *Block
	vars []scope // lexical scopes

	// loop context for break/continue: sentinel block ids (unique
	// negative values) patched to real targets when the loop closes.
	breakTargets    []int
	continueTargets []int
	nextSentinel    int

	locals map[string]*LocalArray

	// romIndex dedupes ROM constants.
	romIndex map[uint64]int

	// cse caches 64-bit address computations within the current block when
	// the version enables addressing folding.
	cse map[cseKey]int
}

type scope map[string]*varInfo

type varInfo struct {
	typ  Type
	vreg int // scalar storage
	uni  int // uniform slot for params (-1 for locals)
}

type cseKey struct {
	op   gpu.Opcode
	a, b Opd
}

// lowerKernel type-checks and lowers a kernel to IR.
func lowerKernel(k *Kernel, ver Version) (*Fn, error) {
	lo := &lowerer{
		fn:       &Fn{Name: k.Name, Params: k.Params},
		ver:      ver,
		locals:   map[string]*LocalArray{},
		romIndex: map[uint64]int{},
	}
	lo.pushScope()
	for i, p := range k.Params {
		lo.declare(p.Name, &varInfo{typ: p.Type, vreg: -1, uni: i})
	}
	// Hoist local array declarations (they may appear anywhere in the
	// body; OpenCL requires kernel scope, we enforce uniqueness).
	var offset uint32
	if err := hoistLocals(k.Body, lo.locals, &offset); err != nil {
		return nil, err
	}
	lo.fn.LocalBytes = offset

	lo.newBlock()
	if err := lo.lowerBlockStmt(k.Body); err != nil {
		return nil, err
	}
	lo.cur.Term = TermRet
	return lo.fn, nil
}

func hoistLocals(b *BlockStmt, out map[string]*LocalArray, offset *uint32) error {
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *localDeclStmt:
			if _, dup := out[st.arr.Name]; dup {
				return errAt(st.line, 1, "duplicate local array %q", st.arr.Name)
			}
			arr := st.arr
			arr.Offset = *offset
			*offset += uint32(arr.Count) * arr.Elem.Size()
			// Round to 8 bytes to keep offsets tidy.
			*offset = (*offset + 7) &^ 7
			out[arr.Name] = &arr
		case *BlockStmt:
			if err := hoistLocals(st, out, offset); err != nil {
				return err
			}
		case *IfStmt:
			if err := hoistLocals(st.Then, out, offset); err != nil {
				return err
			}
			if st.Else != nil {
				if err := hoistLocals(st.Else, out, offset); err != nil {
					return err
				}
			}
		case *ForStmt:
			if err := hoistLocals(st.Body, out, offset); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- helpers ---------------------------------------------------------------

func (lo *lowerer) pushScope() { lo.vars = append(lo.vars, scope{}) }
func (lo *lowerer) popScope()  { lo.vars = lo.vars[:len(lo.vars)-1] }

func (lo *lowerer) declare(name string, v *varInfo) {
	lo.vars[len(lo.vars)-1][name] = v
}

func (lo *lowerer) lookup(name string) *varInfo {
	for i := len(lo.vars) - 1; i >= 0; i-- {
		if v, ok := lo.vars[i][name]; ok {
			return v
		}
	}
	return nil
}

func (lo *lowerer) newVReg() int {
	id := lo.fn.NumVRegs
	lo.fn.NumVRegs++
	return id
}

// newBlock appends a fresh block and makes it current.
func (lo *lowerer) newBlock() *Block {
	b := &Block{ID: len(lo.fn.Blocks)}
	lo.fn.Blocks = append(lo.fn.Blocks, b)
	lo.cur = b
	lo.cse = map[cseKey]int{}
	return b
}

// emit appends an instruction to the current block. Redefining a vreg
// invalidates any cached address computations that consumed it.
func (lo *lowerer) emit(op gpu.Opcode, dst int, a, b Opd) {
	if dst >= 0 && len(lo.cse) > 0 {
		for k := range lo.cse {
			if (k.a.Kind == OpdVReg && k.a.ID == dst) ||
				(k.b.Kind == OpdVReg && k.b.ID == dst) {
				delete(lo.cse, k)
			}
		}
	}
	lo.cur.Insts = append(lo.cur.Insts, IRInst{Op: op, Dst: dst, A: a, B: b})
}

func (lo *lowerer) emitMem(op gpu.Opcode, dst int, addr, val Opd, off int32) {
	lo.cur.Insts = append(lo.cur.Insts, IRInst{Op: op, Dst: dst, A: addr, B: val, MemOff: off})
}

// emitCSE emits a pure 64-bit computation, reusing an earlier identical one
// in the same block when the version folds addressing.
func (lo *lowerer) emitCSE(op gpu.Opcode, a, b Opd) Opd {
	if lo.ver.FoldAddressing {
		if v, ok := lo.cse[cseKey{op, a, b}]; ok {
			return vr(v)
		}
	}
	dst := lo.newVReg()
	lo.emit(op, dst, a, b)
	if lo.ver.FoldAddressing {
		lo.cse[cseKey{op, a, b}] = dst
	}
	return vr(dst)
}

// constOpd materialises a 32-bit constant per the version's constant
// strategy: inline immediate or ROM pool.
func (lo *lowerer) constOpd(bits uint32) Opd {
	if !lo.ver.ConstPool {
		return immOpd(bits)
	}
	key := uint64(bits)
	idx, ok := lo.romIndex[key]
	if !ok {
		idx = len(lo.fn.ROM)
		lo.fn.ROM = append(lo.fn.ROM, key)
		lo.romIndex[key] = idx
	}
	return romOpd(idx)
}

// value is a typed rvalue: an operand plus its CLite type.
type value struct {
	opd Opd
	typ Type
}

// --- statements --------------------------------------------------------------

func (lo *lowerer) lowerBlockStmt(b *BlockStmt) error {
	lo.pushScope()
	defer lo.popScope()
	for _, s := range b.Stmts {
		if err := lo.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) lowerStmt(s Stmt) error {
	switch st := s.(type) {
	case *localDeclStmt:
		return nil // hoisted
	case *BlockStmt:
		return lo.lowerBlockStmt(st)
	case *DeclStmt:
		return lo.lowerDecl(st)
	case *AssignStmt:
		return lo.lowerAssign(st)
	case *IfStmt:
		return lo.lowerIf(st)
	case *ForStmt:
		return lo.lowerFor(st)
	case *BreakStmt:
		if len(lo.breakTargets) == 0 {
			return errAt(st.line, 1, "break outside loop")
		}
		lo.cur.Term = TermBr
		lo.cur.Target = lo.breakTargets[len(lo.breakTargets)-1]
		lo.newBlock() // unreachable continuation
		return nil
	case *ContinueStmt:
		if len(lo.continueTargets) == 0 {
			return errAt(st.line, 1, "continue outside loop")
		}
		lo.cur.Term = TermBr
		lo.cur.Target = lo.continueTargets[len(lo.continueTargets)-1]
		lo.newBlock()
		return nil
	case *ReturnStmt:
		lo.cur.Term = TermRet
		lo.newBlock()
		return nil
	case *ExprStmt:
		_, err := lo.lowerExpr(st.X)
		return err
	}
	return errAt(0, 0, "unsupported statement %T", s)
}

func (lo *lowerer) lowerDecl(d *DeclStmt) error {
	v := &varInfo{typ: d.Type, vreg: lo.newVReg(), uni: -1}
	if d.Init != nil {
		init, err := lo.lowerExpr(d.Init)
		if err != nil {
			return err
		}
		init, err = lo.convert(init, d.Type, d.line)
		if err != nil {
			return err
		}
		lo.emit(gpu.OpMOV, v.vreg, init.opd, Opd{})
	} else {
		lo.emit(gpu.OpMOV, v.vreg, special(gpu.SpecZero), Opd{})
	}
	lo.declare(d.Name, v)
	return nil
}

func (lo *lowerer) lowerAssign(a *AssignStmt) error {
	// Compute RHS (for compound ops, combined with the current value).
	switch lhs := a.LHS.(type) {
	case *Ident:
		v := lo.lookup(lhs.Name)
		if v == nil {
			return errAt(lhs.line, lhs.col, "undefined variable %q", lhs.Name)
		}
		if v.vreg < 0 {
			return errAt(lhs.line, lhs.col, "cannot assign to parameter %q", lhs.Name)
		}
		rhs, err := lo.lowerExpr(a.RHS)
		if err != nil {
			return err
		}
		if a.Op != "" {
			cur := value{opd: vr(v.vreg), typ: v.typ}
			rhs, err = lo.binaryOp(a.Op, cur, rhs, a.line)
			if err != nil {
				return err
			}
		}
		rhs, err = lo.convert(rhs, v.typ, a.line)
		if err != nil {
			return err
		}
		lo.emit(gpu.OpMOV, v.vreg, rhs.opd, Opd{})
		return nil

	case *Index:
		return lo.lowerIndexedStore(lhs, a)
	}
	line, col := a.LHS.Pos()
	return errAt(line, col, "assignment target must be a variable or element")
}

func (lo *lowerer) lowerIndexedStore(lhs *Index, a *AssignStmt) error {
	base, elem, isLocal, err := lo.resolveBase(lhs)
	if err != nil {
		return err
	}
	addr, off, err := lo.address(base, elem, isLocal, lhs.Idx)
	if err != nil {
		return err
	}
	elemType := tFloat
	if elem == ElemInt || elem == ElemUChar {
		elemType = tInt
	}
	rhs, err := lo.lowerExpr(a.RHS)
	if err != nil {
		return err
	}
	if a.Op != "" {
		cur, err2 := lo.loadElem(addr, off, elem, isLocal)
		if err2 != nil {
			return err2
		}
		rhs, err = lo.binaryOp(a.Op, cur, rhs, a.line)
		if err != nil {
			return err
		}
	}
	rhs, err = lo.convert(rhs, elemType, a.line)
	if err != nil {
		return err
	}
	if isLocal {
		lo.emitMem(gpu.OpSTL, -1, addr, rhs.opd, off)
		return nil
	}
	op := gpu.OpSTG
	if elem == ElemUChar {
		op = gpu.OpSTGB
	}
	lo.emitMem(op, -1, addr, rhs.opd, off)
	return nil
}

func (lo *lowerer) lowerIf(s *IfStmt) error {
	cond, err := lo.lowerExpr(s.Cond)
	if err != nil {
		return err
	}
	condBlock := lo.cur
	condBlock.Term = TermBrc
	condBlock.Cond = cond.opd

	// Layout: cond | else... | then... | join. BRC(cond) jumps to "then",
	// falls through into "else".
	elseStart := lo.newBlock()
	if s.Else != nil {
		if err := lo.lowerBlockStmt(s.Else); err != nil {
			return err
		}
	}
	elseEnd := lo.cur
	_ = elseStart

	thenStart := lo.newBlock()
	condBlock.Target = thenStart.ID
	if err := lo.lowerBlockStmt(s.Then); err != nil {
		return err
	}
	thenEnd := lo.cur

	join := lo.newBlock()
	elseEnd.Term = TermBr
	elseEnd.Target = join.ID
	// thenEnd falls through into join (next block in layout).
	_ = thenEnd
	return nil
}

func (lo *lowerer) lowerFor(s *ForStmt) error {
	lo.pushScope()
	defer lo.popScope()
	if s.Init != nil {
		if err := lo.lowerStmt(s.Init); err != nil {
			return err
		}
	}

	// Layout: head(cond) | body... | post | exit.
	// head: brc !cond -> exit (exit is placed after the loop; target
	// patched at the end).
	head := lo.newBlock()
	headID := head.ID
	var exitPatch *Block
	if s.Cond != nil {
		cond, err := lo.lowerExpr(s.Cond)
		if err != nil {
			return err
		}
		notCond := lo.newVReg()
		lo.emit(gpu.OpICMPEQ, notCond, cond.opd, special(gpu.SpecZero))
		lo.cur.Term = TermBrc
		lo.cur.Cond = vr(notCond)
		exitPatch = lo.cur
	}

	// Break/continue targets are not known yet (their blocks are created
	// after the body); use unique negative sentinels patched below.
	lo.nextSentinel -= 2
	brkSent, cntSent := lo.nextSentinel, lo.nextSentinel-1
	lo.newBlock() // body start
	lo.breakTargets = append(lo.breakTargets, brkSent)
	lo.continueTargets = append(lo.continueTargets, cntSent)
	if err := lo.lowerBlockStmt(s.Body); err != nil {
		return err
	}

	post := lo.newBlock()
	if s.Post != nil {
		if err := lo.lowerStmt(s.Post); err != nil {
			return err
		}
	}
	lo.cur.Term = TermBr
	lo.cur.Target = headID

	exit := lo.newBlock()
	if exitPatch != nil {
		exitPatch.Target = exit.ID
	}

	lo.breakTargets = lo.breakTargets[:len(lo.breakTargets)-1]
	lo.continueTargets = lo.continueTargets[:len(lo.continueTargets)-1]
	for _, b := range lo.fn.Blocks {
		if b.Term == TermBr && b.Target == brkSent {
			b.Target = exit.ID
		}
		if b.Term == TermBr && b.Target == cntSent {
			b.Target = post.ID
		}
	}
	return nil
}

// --- expressions ---------------------------------------------------------------

func (lo *lowerer) lowerExpr(e Expr) (value, error) {
	switch ex := e.(type) {
	case *IntLit:
		return value{opd: lo.constOpd(uint32(int32(ex.Val))), typ: tInt}, nil
	case *FloatLit:
		return value{opd: lo.constOpd(math.Float32bits(float32(ex.Val))), typ: tFloat}, nil
	case *Ident:
		v := lo.lookup(ex.Name)
		if v == nil {
			return value{}, errAt(ex.line, ex.col, "undefined identifier %q", ex.Name)
		}
		if v.uni >= 0 {
			return value{opd: uni(v.uni), typ: v.typ}, nil
		}
		return value{opd: vr(v.vreg), typ: v.typ}, nil
	case *Binary:
		l, err := lo.lowerExpr(ex.L)
		if err != nil {
			return value{}, err
		}
		r, err := lo.lowerExpr(ex.R)
		if err != nil {
			return value{}, err
		}
		return lo.binaryOp(ex.Op, l, r, ex.line)
	case *Unary:
		return lo.lowerUnary(ex)
	case *Cond:
		return lo.lowerTernary(ex)
	case *Index:
		base, elem, isLocal, err := lo.resolveBase(ex)
		if err != nil {
			return value{}, err
		}
		addr, off, err := lo.address(base, elem, isLocal, ex.Idx)
		if err != nil {
			return value{}, err
		}
		return lo.loadElem(addr, off, elem, isLocal)
	case *Call:
		return lo.lowerCall(ex)
	case *CastExpr:
		x, err := lo.lowerExpr(ex.X)
		if err != nil {
			return value{}, err
		}
		return lo.convert(x, ex.To, ex.line)
	}
	return value{}, errAt(0, 0, "unsupported expression %T", e)
}

// convert coerces a value to the requested type (int<->float; bool ~ int).
func (lo *lowerer) convert(v value, to Type, line int) (value, error) {
	from := v.typ
	if from.Kind == TypeBool {
		from = tInt
	}
	t := to
	if t.Kind == TypeBool {
		t = tInt
	}
	if from.Kind == t.Kind {
		return value{opd: v.opd, typ: to}, nil
	}
	switch {
	case from.Kind == TypeInt && t.Kind == TypeFloat:
		dst := lo.newVReg()
		lo.emit(gpu.OpI2F, dst, v.opd, Opd{})
		return value{opd: vr(dst), typ: tFloat}, nil
	case from.Kind == TypeFloat && t.Kind == TypeInt:
		dst := lo.newVReg()
		lo.emit(gpu.OpF2I, dst, v.opd, Opd{})
		return value{opd: vr(dst), typ: to}, nil
	}
	return value{}, errAt(line, 1, "cannot convert %s to %s", from, to)
}

var intBinOps = map[string]gpu.Opcode{
	"+": gpu.OpIADD, "-": gpu.OpISUB, "*": gpu.OpIMUL, "/": gpu.OpIDIV,
	"%": gpu.OpIMOD, "<<": gpu.OpSHL, ">>": gpu.OpSAR,
	"&": gpu.OpAND, "|": gpu.OpOR, "^": gpu.OpXOR,
}

var floatBinOps = map[string]gpu.Opcode{
	"+": gpu.OpFADD, "-": gpu.OpFSUB, "*": gpu.OpFMUL, "/": gpu.OpFDIV,
}

func (lo *lowerer) binaryOp(op string, l, r value, line int) (value, error) {
	// Comparisons.
	if op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" || op == ">=" {
		return lo.compareOp(op, l, r, line)
	}
	// Logical: values are 0/1 ints; eager bitwise evaluation.
	if op == "&&" || op == "||" {
		li, err := lo.convert(l, tInt, line)
		if err != nil {
			return value{}, err
		}
		ri, err := lo.convert(r, tInt, line)
		if err != nil {
			return value{}, err
		}
		gop := gpu.OpAND
		if op == "||" {
			gop = gpu.OpOR
		}
		dst := lo.newVReg()
		lo.emit(gop, dst, lo.normBool(li), lo.normBool(ri))
		return value{opd: vr(dst), typ: tBool}, nil
	}

	// Arithmetic with implicit int->float promotion.
	if l.typ.Kind == TypeFloat || r.typ.Kind == TypeFloat {
		lf, err := lo.convert(l, tFloat, line)
		if err != nil {
			return value{}, err
		}
		rf, err := lo.convert(r, tFloat, line)
		if err != nil {
			return value{}, err
		}
		gop, ok := floatBinOps[op]
		if !ok {
			return value{}, errAt(line, 1, "operator %q not defined for float", op)
		}
		dst := lo.newVReg()
		lo.emit(gop, dst, lf.opd, rf.opd)
		return value{opd: vr(dst), typ: tFloat}, nil
	}
	gop, ok := intBinOps[op]
	if !ok {
		return value{}, errAt(line, 1, "unsupported operator %q", op)
	}
	li, err := lo.convert(l, tInt, line)
	if err != nil {
		return value{}, err
	}
	ri, err := lo.convert(r, tInt, line)
	if err != nil {
		return value{}, err
	}
	dst := lo.newVReg()
	lo.emit(gop, dst, li.opd, ri.opd)
	return value{opd: vr(dst), typ: tInt}, nil
}

// normBool collapses an int to 0/1 via x != 0.
func (lo *lowerer) normBool(v value) Opd {
	dst := lo.newVReg()
	lo.emit(gpu.OpICMPNE, dst, v.opd, special(gpu.SpecZero))
	return vr(dst)
}

func (lo *lowerer) compareOp(op string, l, r value, line int) (value, error) {
	isFloat := l.typ.Kind == TypeFloat || r.typ.Kind == TypeFloat
	var err error
	if isFloat {
		if l, err = lo.convert(l, tFloat, line); err != nil {
			return value{}, err
		}
		if r, err = lo.convert(r, tFloat, line); err != nil {
			return value{}, err
		}
	} else {
		if l, err = lo.convert(l, tInt, line); err != nil {
			return value{}, err
		}
		if r, err = lo.convert(r, tInt, line); err != nil {
			return value{}, err
		}
	}
	a, b := l.opd, r.opd
	var gop gpu.Opcode
	switch op {
	case "==":
		gop = pick(isFloat, gpu.OpFCMPEQ, gpu.OpICMPEQ)
	case "!=":
		if isFloat {
			// !(a == b)
			eq := lo.newVReg()
			lo.emit(gpu.OpFCMPEQ, eq, a, b)
			dst := lo.newVReg()
			lo.emit(gpu.OpICMPEQ, dst, vr(eq), special(gpu.SpecZero))
			return value{opd: vr(dst), typ: tBool}, nil
		}
		gop = gpu.OpICMPNE
	case "<":
		gop = pick(isFloat, gpu.OpFCMPLT, gpu.OpICMPLT)
	case "<=":
		gop = pick(isFloat, gpu.OpFCMPLE, gpu.OpICMPLE)
	case ">":
		gop = pick(isFloat, gpu.OpFCMPLT, gpu.OpICMPLT)
		a, b = b, a
	case ">=":
		gop = pick(isFloat, gpu.OpFCMPLE, gpu.OpICMPLE)
		a, b = b, a
	}
	dst := lo.newVReg()
	lo.emit(gop, dst, a, b)
	return value{opd: vr(dst), typ: tBool}, nil
}

func pick(cond bool, a, b gpu.Opcode) gpu.Opcode {
	if cond {
		return a
	}
	return b
}

func (lo *lowerer) lowerUnary(ex *Unary) (value, error) {
	x, err := lo.lowerExpr(ex.X)
	if err != nil {
		return value{}, err
	}
	switch ex.Op {
	case "-":
		dst := lo.newVReg()
		if x.typ.Kind == TypeFloat {
			lo.emit(gpu.OpFNEG, dst, x.opd, Opd{})
			return value{opd: vr(dst), typ: tFloat}, nil
		}
		lo.emit(gpu.OpISUB, dst, special(gpu.SpecZero), x.opd)
		return value{opd: vr(dst), typ: tInt}, nil
	case "!":
		xi, err := lo.convert(x, tInt, ex.line)
		if err != nil {
			return value{}, err
		}
		dst := lo.newVReg()
		lo.emit(gpu.OpICMPEQ, dst, xi.opd, special(gpu.SpecZero))
		return value{opd: vr(dst), typ: tBool}, nil
	case "~":
		xi, err := lo.convert(x, tInt, ex.line)
		if err != nil {
			return value{}, err
		}
		dst := lo.newVReg()
		lo.emit(gpu.OpXOR, dst, xi.opd, immOpd(0xFFFFFFFF))
		return value{opd: vr(dst), typ: tInt}, nil
	}
	return value{}, errAt(ex.line, ex.col, "unsupported unary %q", ex.Op)
}

// lowerTernary lowers c ? a : b through a divergent diamond into a vreg.
func (lo *lowerer) lowerTernary(ex *Cond) (value, error) {
	cond, err := lo.lowerExpr(ex.C)
	if err != nil {
		return value{}, err
	}
	// Determine result type by lowering both sides; to keep evaluation
	// single-path we lower into branches like an if/else.
	result := lo.newVReg()
	condBlock := lo.cur
	condBlock.Term = TermBrc
	condBlock.Cond = cond.opd

	// else path (fallthrough)
	lo.newBlock()
	bv, err := lo.lowerExpr(ex.B)
	if err != nil {
		return value{}, err
	}
	elseEnd := lo.cur

	thenStart := lo.newBlock()
	condBlock.Target = thenStart.ID
	av, err := lo.lowerExpr(ex.A)
	if err != nil {
		return value{}, err
	}
	// Unify types: promote to float if either side is float.
	typ := tInt
	if av.typ.Kind == TypeFloat || bv.typ.Kind == TypeFloat {
		typ = tFloat
	}
	if av, err = lo.convert(av, typ, ex.line); err != nil {
		return value{}, err
	}
	lo.emit(gpu.OpMOV, result, av.opd, Opd{})
	thenEnd := lo.cur
	_ = thenEnd

	// Patch the else MOV: we must emit it in the else block, after its
	// expression. Do it now by appending to elseEnd (conversion insts went
	// to the else blocks already; a cross-block convert would be wrong, so
	// require bv to convert in elseEnd context).
	savedCur := lo.cur
	lo.cur = elseEnd
	if bv, err = lo.convert(bv, typ, ex.line); err != nil {
		return value{}, err
	}
	lo.emit(gpu.OpMOV, result, bv.opd, Opd{})
	elseEnd.Term = TermBr
	lo.cur = savedCur

	join := lo.newBlock()
	elseEnd.Target = join.ID
	return value{opd: vr(result), typ: typ}, nil
}

// resolveBase resolves the base of an index expression: a global pointer
// parameter or a local array.
func (lo *lowerer) resolveBase(ix *Index) (base *varInfo, elem ElemKind, isLocal bool, err error) {
	id, ok := ix.Base.(*Ident)
	if !ok {
		line, col := ix.Base.Pos()
		return nil, 0, false, errAt(line, col, "indexed base must be a pointer parameter or local array")
	}
	if arr, ok := lo.locals[id.Name]; ok {
		return &varInfo{typ: Type{Kind: TypeLocalPtr, Elem: arr.Elem}, vreg: -1, uni: int(arr.Offset)},
			arr.Elem, true, nil
	}
	v := lo.lookup(id.Name)
	if v == nil {
		return nil, 0, false, errAt(id.line, id.col, "undefined identifier %q", id.Name)
	}
	if v.typ.Kind != TypeGlobalPtr {
		return nil, 0, false, errAt(id.line, id.col, "%q is not indexable", id.Name)
	}
	return v, v.typ.Elem, false, nil
}

// address computes the effective address (global VA or local byte offset)
// for base[idx], folding constant index components into the returned
// immediate offset when the version enables it.
func (lo *lowerer) address(base *varInfo, elem ElemKind, isLocal bool, idx Expr) (Opd, int32, error) {
	size := elem.Size()
	var constOff int64

	// Fold `expr +/- literal` into the memory offset.
	if lo.ver.FoldAddressing {
		for {
			b, ok := idx.(*Binary)
			if !ok {
				break
			}
			if lit, ok := b.R.(*IntLit); ok && (b.Op == "+" || b.Op == "-") {
				if b.Op == "+" {
					constOff += lit.Val
				} else {
					constOff -= lit.Val
				}
				idx = b.L
				continue
			}
			if lit, ok := b.L.(*IntLit); ok && b.Op == "+" {
				constOff += lit.Val
				idx = b.R
				continue
			}
			break
		}
	}

	iv, err := lo.lowerExpr(idx)
	if err != nil {
		return Opd{}, 0, err
	}
	line, _ := idx.Pos()
	iv, err = lo.convert(iv, tInt, line)
	if err != nil {
		return Opd{}, 0, err
	}

	memOff := int32(constOff) * int32(size)
	if isLocal {
		// offset = arrayBase + idx*size (+ folded)
		scaled := lo.emitCSE(gpu.OpIMUL, iv.opd, immOpd(size))
		off := lo.emitCSE(gpu.OpIADD, scaled, immOpd(uint32(base.uni)))
		return off, memOff, nil
	}
	scaled := lo.emitCSE(gpu.OpMUL64, iv.opd, immOpd(size))
	addr := lo.emitCSE(gpu.OpADD64, uni(base.uni), scaled)
	return addr, memOff, nil
}

func (lo *lowerer) loadElem(addr Opd, off int32, elem ElemKind, isLocal bool) (value, error) {
	dst := lo.newVReg()
	typ := tFloat
	if elem == ElemInt || elem == ElemUChar {
		typ = tInt
	}
	if isLocal {
		lo.emitMem(gpu.OpLDL, dst, addr, Opd{}, off)
		return value{opd: vr(dst), typ: typ}, nil
	}
	op := gpu.OpLDG
	if elem == ElemUChar {
		op = gpu.OpLDGB
	}
	lo.emitMem(op, dst, addr, Opd{}, off)
	return value{opd: vr(dst), typ: typ}, nil
}

// builtins: name -> (gpu op, arity, float?)
var floatUnaryBuiltins = map[string]gpu.Opcode{
	"sqrt": gpu.OpFSQRT, "fabs": gpu.OpFABS, "exp": gpu.OpFEXP,
	"log": gpu.OpFLOG, "sin": gpu.OpFSIN, "cos": gpu.OpFCOS,
	"floor": gpu.OpFFLOOR,
}

var floatBinaryBuiltins = map[string]gpu.Opcode{
	"fmin": gpu.OpFMIN, "fmax": gpu.OpFMAX, "pown_unused": gpu.OpNOP,
}

var dimSpecials = map[string][3]uint8{
	"get_global_id":   {gpu.SpecGIDX, gpu.SpecGIDY, gpu.SpecGIDZ},
	"get_local_id":    {gpu.SpecLIDX, gpu.SpecLIDY, gpu.SpecLIDZ},
	"get_group_id":    {gpu.SpecWGIDX, gpu.SpecWGIDY, gpu.SpecWGIDZ},
	"get_global_size": {gpu.SpecGSZX, gpu.SpecGSZY, gpu.SpecGSZZ},
	"get_local_size":  {gpu.SpecLSZX, gpu.SpecLSZY, gpu.SpecLSZZ},
}

func (lo *lowerer) lowerCall(ex *Call) (value, error) {
	if specs, ok := dimSpecials[ex.Name]; ok {
		if len(ex.Args) != 1 {
			return value{}, errAt(ex.line, ex.col, "%s takes one dimension argument", ex.Name)
		}
		lit, ok := ex.Args[0].(*IntLit)
		if !ok || lit.Val < 0 || lit.Val > 2 {
			return value{}, errAt(ex.line, ex.col, "%s dimension must be literal 0, 1 or 2", ex.Name)
		}
		return value{opd: special(specs[lit.Val]), typ: tInt}, nil
	}

	switch ex.Name {
	case "barrier":
		lo.cur.Term = TermBarrier
		lo.newBlock()
		return value{opd: special(gpu.SpecZero), typ: tInt}, nil
	case "min", "max":
		if len(ex.Args) != 2 {
			return value{}, errAt(ex.line, ex.col, "%s takes two arguments", ex.Name)
		}
		a, err := lo.lowerExpr(ex.Args[0])
		if err != nil {
			return value{}, err
		}
		b, err := lo.lowerExpr(ex.Args[1])
		if err != nil {
			return value{}, err
		}
		if a.typ.Kind == TypeFloat || b.typ.Kind == TypeFloat {
			if a, err = lo.convert(a, tFloat, ex.line); err != nil {
				return value{}, err
			}
			if b, err = lo.convert(b, tFloat, ex.line); err != nil {
				return value{}, err
			}
			dst := lo.newVReg()
			lo.emit(pick(ex.Name == "min", gpu.OpFMIN, gpu.OpFMAX), dst, a.opd, b.opd)
			return value{opd: vr(dst), typ: tFloat}, nil
		}
		dst := lo.newVReg()
		lo.emit(pick(ex.Name == "min", gpu.OpIMIN, gpu.OpIMAX), dst, a.opd, b.opd)
		return value{opd: vr(dst), typ: tInt}, nil
	case "abs":
		if len(ex.Args) != 1 {
			return value{}, errAt(ex.line, ex.col, "abs takes one argument")
		}
		x, err := lo.lowerExpr(ex.Args[0])
		if err != nil {
			return value{}, err
		}
		if x.typ.Kind == TypeFloat {
			dst := lo.newVReg()
			lo.emit(gpu.OpFABS, dst, x.opd, Opd{})
			return value{opd: vr(dst), typ: tFloat}, nil
		}
		neg := lo.newVReg()
		lo.emit(gpu.OpISUB, neg, special(gpu.SpecZero), x.opd)
		dst := lo.newVReg()
		lo.emit(gpu.OpIMAX, dst, x.opd, vr(neg))
		return value{opd: vr(dst), typ: tInt}, nil
	}

	if op, ok := floatUnaryBuiltins[ex.Name]; ok {
		if len(ex.Args) != 1 {
			return value{}, errAt(ex.line, ex.col, "%s takes one argument", ex.Name)
		}
		x, err := lo.lowerExpr(ex.Args[0])
		if err != nil {
			return value{}, err
		}
		if x, err = lo.convert(x, tFloat, ex.line); err != nil {
			return value{}, err
		}
		dst := lo.newVReg()
		lo.emit(op, dst, x.opd, Opd{})
		return value{opd: vr(dst), typ: tFloat}, nil
	}
	if op, ok := floatBinaryBuiltins[ex.Name]; ok && len(ex.Args) == 2 {
		a, err := lo.lowerExpr(ex.Args[0])
		if err != nil {
			return value{}, err
		}
		b, err := lo.lowerExpr(ex.Args[1])
		if err != nil {
			return value{}, err
		}
		if a, err = lo.convert(a, tFloat, ex.line); err != nil {
			return value{}, err
		}
		if b, err = lo.convert(b, tFloat, ex.line); err != nil {
			return value{}, err
		}
		dst := lo.newVReg()
		lo.emit(op, dst, a.opd, b.opd)
		return value{opd: vr(dst), typ: tFloat}, nil
	}
	return value{}, errAt(ex.line, ex.col, "unknown builtin %q", ex.Name)
}
