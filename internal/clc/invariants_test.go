package clc_test

import (
	"fmt"
	"testing"

	"mobilesim/internal/clc"
	"mobilesim/internal/gpu"
)

// Structural invariants every compiled program must satisfy, checked over
// every benchmark kernel x every compiler version. These are the
// contracts the GPU decoder and execution engines rely on.

// checkProgramInvariants validates one compiled program.
func checkProgramInvariants(t *testing.T, k *clc.CompiledKernel, ver string) {
	t.Helper()
	p := k.Program
	limit := clc.Versions[ver].MaxClauseSlots

	for ci, c := range p.Clauses {
		ctx := fmt.Sprintf("version %s clause %d", ver, ci)
		if c.Slots() == 0 || c.Slots() > limit {
			t.Errorf("%s: %d slots outside 1..%d", ctx, c.Slots(), limit)
		}
		tempDefined := map[uint8]bool{}
		for ii, in := range c.Instrs {
			// Clause-terminal instructions only in the last slot.
			if gpu.IsClauseTerminal(in.Op) && ii != len(c.Instrs)-1 {
				t.Errorf("%s: terminal %v at slot %d of %d", ctx, in.Op, ii, len(c.Instrs))
			}
			// Temp-register reads must be dominated by a def in the same
			// clause (temps are clause-local).
			checkSrc := func(o uint8) {
				kind, idx := gpu.OperKind(o)
				if kind == gpu.OperTemp && !tempDefined[idx] {
					t.Errorf("%s slot %d: reads t%d before any def in clause (%v)", ctx, ii, idx, in)
				}
			}
			switch in.Op {
			case gpu.OpNOP, gpu.OpRET, gpu.OpBARRIER, gpu.OpBR:
			case gpu.OpBRC:
				checkSrc(in.A)
			case gpu.OpLDG, gpu.OpLDG64, gpu.OpLDGB, gpu.OpLDL:
				checkSrc(in.A)
			case gpu.OpSTG, gpu.OpSTG64, gpu.OpSTGB, gpu.OpSTL:
				checkSrc(in.A)
				checkSrc(in.B)
			case gpu.OpFMA, gpu.OpSEL:
				checkSrc(in.A)
				checkSrc(in.B)
				checkSrc(in.Dst) // accumulator read
			default:
				checkSrc(in.A)
				checkSrc(in.B)
			}
			if kind, idx := gpu.OperKind(in.Dst); kind == gpu.OperTemp {
				tempDefined[idx] = true
			}
			// Register indices in bounds; uniform indices within the
			// declared argument count.
			for _, o := range []uint8{in.Dst, in.A, in.B} {
				kind, idx := gpu.OperKind(o)
				switch kind {
				case gpu.OperGRF:
					if int(idx) >= p.RegCount {
						t.Errorf("%s: r%d beyond declared count %d", ctx, idx, p.RegCount)
					}
				case gpu.OperUniform:
					if int(idx) >= p.Uniforms {
						t.Errorf("%s: c%d beyond uniform count %d", ctx, idx, p.Uniforms)
					}
				}
			}
			// ROM references in range.
			if in.A == gpu.Rom || in.B == gpu.Rom {
				if int(in.Imm) >= len(p.ROM) {
					t.Errorf("%s: rom[%d] beyond table size %d", ctx, in.Imm, len(p.ROM))
				}
			}
			// Branch targets valid.
			switch in.Op {
			case gpu.OpBR:
				if in.BranchTarget() >= len(p.Clauses) {
					t.Errorf("%s: br to %d of %d clauses", ctx, in.BranchTarget(), len(p.Clauses))
				}
			case gpu.OpBRC:
				if in.BranchTarget() >= len(p.Clauses) || in.Reconverge() > len(p.Clauses) {
					t.Errorf("%s: brc out of range (%d/%d of %d)", ctx,
						in.BranchTarget(), in.Reconverge(), len(p.Clauses))
				}
			}
		}
	}
	// Serialize/parse round trip preserves everything.
	raw, err := gpu.Serialize(p)
	if err != nil {
		t.Fatalf("version %s: serialize: %v", ver, err)
	}
	q, err := gpu.ParseBinary(raw)
	if err != nil {
		t.Fatalf("version %s: reparse: %v", ver, err)
	}
	if len(q.Clauses) != len(p.Clauses) || q.RegCount != p.RegCount {
		t.Errorf("version %s: round trip changed shape", ver)
	}
}

// kernelCorpus collects representative kernels exercising every front-end
// feature (the benchmark kernels cover the rest via their own tests).
var kernelCorpus = []string{
	`kernel void k(global float* a, global float* b, global float* c, int n) {
	    int i = get_global_id(0);
	    if (i < n) { c[i] = a[i] + b[i]; }
	}`,
	`kernel void k(global int* o) {
	    int i = get_global_id(0);
	    int acc = 0;
	    for (int j = 0; j < i; j++) {
	        if ((j & 3) == 0) { continue; }
	        if (j > 40) { break; }
	        acc += j * j - (j << 1) + (j % 5);
	    }
	    o[i] = acc;
	}`,
	`kernel void k(global float* o, float x) {
	    int i = get_global_id(0);
	    float v = sqrt(fabs(x)) + exp(x * 0.01f) - log(fabs(x) + 1.0f);
	    v = fmin(fmax(v, -10.0f), 10.0f) + sin(x) * cos(x) + floor(x);
	    o[i] = i == 0 ? v : -v;
	}`,
	`kernel void k(global int* in, global int* o) {
	    local int tile[128];
	    int l = get_local_id(0);
	    tile[l] = in[get_global_id(0)];
	    barrier();
	    int v = tile[(l + 1) % get_local_size(0)];
	    o[get_global_id(0)] = min(max(v, 0), 1000) + abs(-v);
	}`,
	`kernel void k(global uchar* img, global uchar* o, int w) {
	    int x = get_global_id(0);
	    int y = get_global_id(1);
	    int v = img[y * w + x];
	    o[y * w + x] = (uchar)((v * 3 + img[y * w + x + 1]) / 4);
	}`,
}

func TestCompiledProgramInvariants(t *testing.T) {
	for ci, src := range kernelCorpus {
		for _, ver := range clc.VersionNames() {
			k, err := clc.Compile(src, "k", clc.Options{Version: ver})
			if err != nil {
				t.Fatalf("corpus %d version %s: %v", ci, ver, err)
			}
			checkProgramInvariants(t, k, ver)
		}
	}
}
