// Package clc is the OpenCL-C-subset compiler ("CLite") that stands in for
// the vendor-supplied Mali toolchain: the runtime JIT-compiles kernel
// source through it at program-build time, producing binaries in the
// simulator's Bifrost-style clause format. Like the vendor compiler it
// ships several versions (5.6 … 6.2) whose pass pipelines generate
// measurably different code (Fig 1 of the paper).
package clc

import "fmt"

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokIntLit
	tokFloatLit
	tokPunct   // operators and punctuation
	tokKeyword // reserved words
)

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	// For literals.
	intVal   int64
	floatVal float64
	line     int
	col      int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokIntLit:
		return fmt.Sprintf("int(%d)", t.intVal)
	case tokFloatLit:
		return fmt.Sprintf("float(%g)", t.floatVal)
	default:
		return t.text
	}
}

var keywords = map[string]bool{
	"kernel": true, "void": true, "global": true, "local": true,
	"int": true, "uint": true, "float": true, "uchar": true, "bool": true,
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"return": true, "break": true, "continue": true, "const": true,
}

// Error is a compiler diagnostic with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("clc: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
