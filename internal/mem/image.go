package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Snapshot images and copy-on-write forking.
//
// An Image is an immutable capture of a RAM region's logical contents up
// to a dirty bound — everything the guest could have written, page
// rounded. ForkRAM builds a new RAM whose pages are *shared* with the
// image until first write: reads of an untouched page are served straight
// from the image's backing store, and the first store to a page copies it
// into the fork's private backing store ("privatization") before the
// store lands. Many forks can share one image concurrently; the image is
// never written after capture.
//
// Invariants the implementation maintains:
//
//   - The fork's private backing store (RAM.words) is all-zero for every
//     page still shared: only privatization and post-privatization writes
//     touch it, and both raise the dirty watermark, so Recycle scrubs
//     exactly the privatized prefix.
//   - Privatization is serialised per RAM by cowState.mu and published
//     with an atomic bitmap store, so a concurrent reader either still
//     sees the shared image page or sees the fully copied private page —
//     never a partial copy. This composes with the word-granular atomic
//     accessors: shared pages are read-only, private pages follow the
//     ordinary guest memory model (DESIGN.md §7).
//   - Every write entry point (Write/WriteBytes/Slice/Bytes/Atomic*,
//     and the MMU's writable page views via PageView) privatizes the
//     covered pages first; there is no path that stores into a shared
//     page's backing.
//
// Pages beyond the image prefix (never allocated at capture time) are
// zero in both the image and the fork, so they are born private.

// Image is an immutable snapshot of RAM contents: the logical bytes of
// [base, base+len(data)) plus the region's full size. data's length is a
// page multiple. Images are shared read-only between any number of
// forked RAMs and must never be mutated.
type Image struct {
	base uint64
	size uint64
	data []byte
}

// Base returns the first physical address of the imaged region.
func (img *Image) Base() uint64 { return img.base }

// Size returns the full logical size of the imaged RAM region.
func (img *Image) Size() uint64 { return img.size }

// CapturedBytes returns how many bytes of content the image carries (the
// page-rounded dirty prefix at capture time).
func (img *Image) CapturedBytes() uint64 { return uint64(len(img.data)) }

// Data exposes the captured prefix for serialization. Callers must treat
// the returned slice as immutable.
func (img *Image) Data() []byte { return img.data }

// NewImage reconstructs an image from serialized parts (see Data). data
// is retained, not copied; len(data) must be a page multiple no larger
// than size, and size must be page aligned.
func NewImage(base, size uint64, data []byte) (*Image, error) {
	if size%PageSize != 0 || uint64(len(data))%PageSize != 0 {
		return nil, fmt.Errorf("mem: image geometry %d/%d not page aligned", len(data), size)
	}
	if uint64(len(data)) > size {
		return nil, fmt.Errorf("mem: image data %d exceeds region size %d", len(data), size)
	}
	return &Image{base: base, size: size, data: data}, nil
}

// CaptureImage snapshots the RAM's logical contents up to the larger of
// the region's own dirty watermark and the caller-supplied physical bound
// (the platform passes its page allocator's high watermark), page
// rounded. The capture reads through the copy-on-write view, so imaging a
// forked RAM sees its logical contents, not its raw backing store.
func (r *RAM) CaptureImage(limit uint64) (*Image, error) {
	if r.Size()%PageSize != 0 {
		return nil, fmt.Errorf("mem: cannot image RAM of unaligned size %d", r.Size())
	}
	bound := r.dirty.Load()
	if limit > r.base && limit-r.base > bound {
		bound = limit - r.base
	}
	bound = (bound + PageMask) &^ uint64(PageMask)
	if bound > r.Size() {
		bound = r.Size()
	}
	data := make([]byte, bound)
	r.readBytesCow(0, data)
	return &Image{base: r.base, size: r.Size(), data: data}, nil
}

// cowState is the per-fork copy-on-write bookkeeping.
type cowState struct {
	img *Image
	// mu serialises privatization; the bitmap store under it publishes
	// the copied page to concurrent lock-free readers.
	mu sync.Mutex
	// priv is a bitmap over the image's pages: bit set = the page has
	// been copied into the fork's own backing store.
	priv []atomic.Uint64
	// imgPages is len(img.data)/PageSize; pages at or beyond it are
	// private by construction (zero in both image and fork).
	imgPages uint64
}

// ForkRAM creates a copy-on-write fork of an image, drawing the private
// backing store from the recycling pool. The fork behaves exactly like a
// RAM whose initial contents are the image (zero beyond the captured
// prefix); writes privatize pages and never reach the shared image.
func ForkRAM(img *Image) *RAM {
	r := AcquireRAM(img.base, img.size)
	imgPages := uint64(len(img.data)) / PageSize
	r.cow = &cowState{
		img:      img,
		priv:     make([]atomic.Uint64, (imgPages+63)/64),
		imgPages: imgPages,
	}
	return r
}

// Shared reports whether the RAM is a copy-on-write fork that still
// shares at least one page with its image.
func (r *RAM) Shared() bool {
	c := r.cow
	if c == nil {
		return false
	}
	return uint64(r.PrivatizedPages()) < c.imgPages
}

// PrivatizedPages returns how many image pages the fork has copied into
// its own backing store (0 for a non-fork).
func (r *RAM) PrivatizedPages() int {
	c := r.cow
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.priv {
		w := c.priv[i].Load()
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// pagePrivate reports whether the page (by index) is served from the
// fork's own backing store.
func (c *cowState) pagePrivate(pi uint64) bool {
	if pi >= c.imgPages {
		return true
	}
	return c.priv[pi/64].Load()&(1<<(pi%64)) != 0
}

// privatizePage copies one shared page from the image into the fork's
// backing store and publishes it. Idempotent and safe for concurrent use;
// returns once the page is private.
func (r *RAM) privatizePage(pi uint64) {
	c := r.cow
	if pi >= c.imgPages || c.pagePrivate(pi) {
		return
	}
	c.mu.Lock()
	if !c.pagePrivate(pi) {
		off := pi * PageSize
		copy(r.words[off:off+PageSize], c.img.data[off:off+PageSize])
		r.markDirty(r.base+off, PageSize)
		w := &c.priv[pi/64]
		w.Store(w.Load() | 1<<(pi%64)) // mu serialises writers
	}
	c.mu.Unlock()
}

// privatizeSkipCopy marks one page private *without* copying the image:
// the caller guarantees the page's full logical content is determined
// without it — either the whole page is about to be overwritten, or the
// desired content is all-zero and the fork's backing store is already
// zero for shared pages (see the invariants above).
func (r *RAM) privatizeSkipCopy(pi uint64) {
	c := r.cow
	if pi >= c.imgPages || c.pagePrivate(pi) {
		return
	}
	c.mu.Lock()
	if !c.pagePrivate(pi) {
		w := &c.priv[pi/64]
		w.Store(w.Load() | 1<<(pi%64))
	}
	c.mu.Unlock()
}

// privatizeRange privatizes every page covering [off, off+size) in the
// fork's backing store. off/size are region offsets.
func (r *RAM) privatizeRange(off, size uint64) {
	if size == 0 {
		return
	}
	for pi := off / PageSize; pi <= (off+size-1)/PageSize; pi++ {
		r.privatizePage(pi)
	}
}

// privatizeRangeForOverwrite prepares [off, off+size) for a full plain
// overwrite: pages fully covered by the range are marked private without
// copying the image (their bytes are about to be replaced wholesale),
// and only partial boundary pages pay the copy. Plain-path only — on the
// atomic write path a mark-without-copy would let a concurrent reader
// observe zeros that were never guest-visible, so atomic writers always
// copy-privatize.
func (r *RAM) privatizeRangeForOverwrite(off, size uint64) {
	if size == 0 {
		return
	}
	for pi := off / PageSize; pi <= (off+size-1)/PageSize; pi++ {
		if pi*PageSize >= off && (pi+1)*PageSize <= off+size {
			r.privatizeSkipCopy(pi)
		} else {
			r.privatizePage(pi)
		}
	}
}

// rangePrivate reports whether every page covering [off, off+size) is
// already private (always true for a non-fork).
func (r *RAM) rangePrivate(off, size uint64) bool {
	c := r.cow
	if c == nil {
		return true
	}
	for pi := off / PageSize; pi <= (off+size-1)/PageSize; pi++ {
		if !c.pagePrivate(pi) {
			return false
		}
	}
	return true
}

// pageView returns the logical host view of the page containing region
// offset off (shared image page or private backing page).
func (r *RAM) pageView(off uint64) []byte {
	po := off &^ uint64(PageMask)
	if r.cow != nil && !r.cow.pagePrivate(po/PageSize) {
		return r.cow.img.data[po : po+PageSize]
	}
	end := po + PageSize
	if end > uint64(len(r.data)) {
		end = uint64(len(r.data))
	}
	return r.data[po:end]
}

// readBytesCow copies the logical contents of [off, off+len(dst)) into
// dst, page by page, without privatizing anything. Plain (non-atomic)
// reads; use atomicReadBytesCow for shared-walker paths.
func (r *RAM) readBytesCow(off uint64, dst []byte) {
	if r.cow == nil {
		copy(dst, r.data[off:off+uint64(len(dst))])
		return
	}
	for n := 0; n < len(dst); {
		page := r.pageView(off + uint64(n))
		po := (off + uint64(n)) & PageMask
		n += copy(dst[n:], page[po:])
	}
}

// atomicReadBytesCow is readBytesCow with per-word atomic loads, for bulk
// reads that may overlap concurrent guest stores.
func (r *RAM) atomicReadBytesCow(off uint64, dst []byte) {
	if r.cow == nil {
		AtomicReadBytes(r.words, off, dst)
		return
	}
	for n := 0; n < len(dst); {
		cur := off + uint64(n)
		po := cur & PageMask
		chunk := PageSize - po
		if chunk > uint64(len(dst)-n) {
			chunk = uint64(len(dst) - n)
		}
		pi := cur / PageSize
		if r.cow.pagePrivate(pi) {
			// Private pages may span into the word-extended tail; use the
			// full backing store so end-of-region words stay addressable.
			AtomicReadBytes(r.words, cur, dst[n:n+int(chunk)])
		} else {
			pageStart := cur &^ uint64(PageMask)
			AtomicReadBytes(r.cow.img.data[pageStart:pageStart+PageSize], po, dst[n:n+int(chunk)])
		}
		n += int(chunk)
	}
}

// cowRead performs a CoW-aware little-endian load of size bytes at region
// offset off (slow path: TLB misses, table walks, MMIO-adjacent traffic).
func (r *RAM) cowRead(off uint64, size int) uint64 {
	if r.rangePrivate(off, uint64(size)) {
		return loadLE(r.data[off : off+uint64(size)])
	}
	po := off & PageMask
	if po+uint64(size) <= PageSize {
		page := r.pageView(off)
		return loadLE(page[po : po+uint64(size)])
	}
	var buf [8]byte
	r.readBytesCow(off, buf[:size])
	return loadLE(buf[:size])
}

// cowAtomicRead is cowRead with word-granular atomicity.
func (r *RAM) cowAtomicRead(off uint64, size int) uint64 {
	if r.rangePrivate(off, uint64(size)) {
		return AtomicLoadLE(r.words, off, size)
	}
	po := off & PageMask
	if po+uint64(size) <= PageSize {
		return AtomicLoadLE(r.pageView(off), po, size)
	}
	var buf [8]byte
	r.atomicReadBytesCow(off, buf[:size])
	return loadLE(buf[:size])
}

// PageView returns the host view of the 4 KiB page at page-aligned
// physical address addr, for the MMU's TLB caching. ro reports that the
// view is a shared copy-on-write page and must not be written; asking
// with write=true privatizes the page first, so the returned view is then
// always writable. ok is false when the page is outside the region.
//
// Unlike Slice, a read view does not privatize: this is the entry point
// that keeps forked sessions sharing read-mostly pages.
func (r *RAM) PageView(addr uint64, write bool) (view []byte, ro, ok bool) {
	if addr%PageSize != 0 || !r.Contains(addr, PageSize) {
		return nil, false, false
	}
	off := addr - r.base
	c := r.cow
	if c == nil {
		return r.data[off : off+PageSize], false, true
	}
	pi := off / PageSize
	if write {
		r.privatizePage(pi)
	}
	if c.pagePrivate(pi) {
		return r.data[off : off+PageSize], false, true
	}
	return c.img.data[off : off+PageSize], true, true
}

// PageView is the bus-level wrapper of RAM.PageView; MMIO and unmapped
// ranges report ok=false (device registers are never served from cached
// views).
func (b *Bus) PageView(addr uint64, write bool) (view []byte, ro, ok bool) {
	return b.ram.PageView(addr, write)
}
