// Package mem provides the simulated physical memory system: RAM regions,
// a system bus with memory-mapped I/O dispatch, and a physical page
// allocator. It is the lowest layer of the platform; both the CPU and GPU
// simulators issue all of their physical accesses through this package.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// PageSize is the physical and virtual page size used throughout the
// simulated platform (CPU MMU, GPU MMU, allocators).
const PageSize = 4096

// PageMask masks the offset-within-page bits of an address.
const PageMask = PageSize - 1

// AccessKind distinguishes the intent of a memory access. The MMU uses it
// for permission checks and instrumentation uses it for classification.
type AccessKind int

const (
	// Read is a data load.
	Read AccessKind = iota
	// Write is a data store.
	Write
	// Execute is an instruction fetch.
	Execute
)

// String returns a short human-readable name for the access kind.
func (k AccessKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Execute:
		return "execute"
	}
	return fmt.Sprintf("AccessKind(%d)", int(k))
}

// BusError reports a physical access that hit no mapped region or was
// malformed (unaligned MMIO, bad size).
type BusError struct {
	Addr uint64
	Size int
	Kind AccessKind
	Why  string
}

func (e *BusError) Error() string {
	return fmt.Sprintf("mem: bus error: %s of %d bytes at %#x: %s", e.Kind, e.Size, e.Addr, e.Why)
}

// Device is a memory-mapped peripheral. Register accesses arrive with the
// offset relative to the device's base address. Devices must tolerate
// concurrent calls: the GPU's Job Manager runs in its own goroutine.
type Device interface {
	// ReadReg reads size bytes (1, 2, 4 or 8) at the given offset.
	ReadReg(offset uint64, size int) (uint64, error)
	// WriteReg writes size bytes (1, 2, 4 or 8) at the given offset.
	WriteReg(offset uint64, size int, val uint64) error
}

// RAM is a contiguous block of simulated physical memory.
type RAM struct {
	base uint64
	data []byte
	// words is data's backing store extended to a multiple of 8 bytes,
	// so the atomic accessors always find a full containing host word
	// even for accesses touching the last bytes of an odd-sized region.
	// Guest-visible bounds (Contains, Size) use data's logical length.
	words []byte

	// dirty is one past the highest offset that may hold a nonzero byte,
	// rounded up to a page. Every write path records here — Write,
	// WriteBytes, and (at walk time, page-granular) the MMU's cached
	// writable page views — so Recycle knows exactly how much to scrub
	// before the backing store is reused. Atomic: GPU workers write
	// concurrently.
	dirty atomic.Uint64

	// cow is non-nil for a copy-on-write fork of a snapshot Image (see
	// image.go): reads of still-shared pages are served from the image,
	// and every write path privatizes the covered pages first.
	cow *cowState
}

// markDirty raises the dirty watermark to cover [addr, addr+size). The
// bound is page-rounded so ascending writes inside an already-dirty page
// skip the CAS after the first.
func (r *RAM) markDirty(addr uint64, size int) {
	end := (addr + uint64(size) - r.base + PageMask) &^ uint64(PageMask)
	for {
		cur := r.dirty.Load()
		if end <= cur || r.dirty.CompareAndSwap(cur, end) {
			return
		}
	}
}

// NewRAM allocates a RAM region of the given size at the given physical
// base. The backing store is a word multiple (see RAM.words); the guest
// sees exactly size bytes.
func NewRAM(base, size uint64) *RAM {
	buf := make([]byte, (size+7)&^uint64(7))
	return &RAM{base: base, data: buf[:size], words: buf}
}

// Base returns the first physical address of the region.
func (r *RAM) Base() uint64 { return r.base }

// Size returns the region size in bytes.
func (r *RAM) Size() uint64 { return uint64(len(r.data)) }

// Contains reports whether a [addr, addr+size) access falls inside the region.
func (r *RAM) Contains(addr uint64, size int) bool {
	return addr >= r.base && addr+uint64(size) <= r.base+uint64(len(r.data))
}

// Bytes exposes the backing store for a physical range. It is the fast path
// used by the CPU interpreter and GPU execution engines once an address has
// been bounds-checked; mutating the returned slice mutates simulated memory.
// On a copy-on-write fork the covered pages are privatized first (the view
// is writable), so prefer the read paths for read-only access.
func (r *RAM) Bytes(addr uint64, size int) []byte {
	off := addr - r.base
	if r.cow != nil {
		r.privatizeRange(off, uint64(size))
		r.markDirty(addr, size)
	}
	return r.data[off : off+uint64(size)]
}

// Slice is the checked variant of Bytes: it returns a host view of
// [addr, addr+size) when the range lies entirely inside the region, and
// (nil, false) otherwise. Mutating the returned slice mutates simulated
// memory, so on a copy-on-write fork the covered pages are privatized
// first; the MMU's TLB caching uses PageView instead, which can hand out
// shared read-only views.
func (r *RAM) Slice(addr uint64, size int) ([]byte, bool) {
	if !r.Contains(addr, size) {
		return nil, false
	}
	off := addr - r.base
	if r.cow != nil {
		r.privatizeRange(off, uint64(size))
		r.markDirty(addr, size)
	}
	return r.data[off : off+uint64(size)], true
}

// Read loads size bytes little-endian.
func (r *RAM) Read(addr uint64, size int) (uint64, error) {
	if !r.Contains(addr, size) {
		return 0, &BusError{Addr: addr, Size: size, Kind: Read, Why: "outside RAM"}
	}
	off := addr - r.base
	if r.cow != nil {
		return r.cowRead(off, size), nil
	}
	return loadLE(r.data[off : off+uint64(size)]), nil
}

// Write stores size bytes little-endian.
func (r *RAM) Write(addr uint64, size int, val uint64) error {
	if !r.Contains(addr, size) {
		return &BusError{Addr: addr, Size: size, Kind: Write, Why: "outside RAM"}
	}
	off := addr - r.base
	if r.cow != nil {
		r.privatizeRange(off, uint64(size))
	}
	storeLE(r.data[off:off+uint64(size)], size, val)
	r.markDirty(addr, size)
	return nil
}

// LoadLE loads len(b) bytes little-endian from a host view previously
// obtained through Slice/Bytes. len(b) must be 1, 2, 4 or 8.
func LoadLE(b []byte) uint64 { return loadLE(b) }

// StoreLE stores size bytes of val little-endian into a host view
// previously obtained through Slice/Bytes.
func StoreLE(b []byte, size int, val uint64) { storeLE(b, size, val) }

func loadLE(b []byte) uint64 {
	switch len(b) {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 8:
		return binary.LittleEndian.Uint64(b)
	}
	panic(fmt.Sprintf("mem: bad access size %d", len(b)))
}

func storeLE(b []byte, size int, val uint64) {
	switch size {
	case 1:
		b[0] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(val))
	case 8:
		binary.LittleEndian.PutUint64(b, val)
	default:
		panic(fmt.Sprintf("mem: bad access size %d", size))
	}
}

type mmioRange struct {
	base uint64
	size uint64
	dev  Device
	name string
}

// Bus routes physical accesses to RAM or memory-mapped devices. RAM accesses
// take a lock-free fast path; device lookups read an immutable sorted table
// through an atomic pointer (copy-on-write on MapDevice), so no access path
// ever takes a lock — registration is rare, lookups are not.
type Bus struct {
	ram *RAM

	mapMu sync.Mutex                  // serialises MapDevice (writers only)
	mmios atomic.Pointer[[]mmioRange] // sorted by base; never mutated in place
}

// NewBus creates a bus fronting the given RAM region.
func NewBus(ram *RAM) *Bus {
	return &Bus{ram: ram}
}

// RAM returns the bus's RAM region (for fast-path access after translation).
func (b *Bus) RAM() *RAM { return b.ram }

// Slice returns a host view of a physical range when it is RAM-backed, and
// (nil, false) for device or unmapped ranges. Device registers must never be
// served from cached byte views: every MMIO access has side effects the
// device model must observe.
func (b *Bus) Slice(addr uint64, size int) ([]byte, bool) {
	return b.ram.Slice(addr, size)
}

// MarkDirty records that the caller may write [addr, addr+size) through a
// previously obtained host view, keeping the RAM recycling watermark
// honest. The MMU calls it once per walk when caching a writable page.
func (b *Bus) MarkDirty(addr uint64, size int) {
	if b.ram.Contains(addr, size) {
		b.ram.markDirty(addr, size)
	}
}

// MapDevice registers a device at [base, base+size). Overlapping RAM or an
// existing device range is a programming error and returns an error.
func (b *Bus) MapDevice(name string, base, size uint64, dev Device) error {
	b.mapMu.Lock()
	defer b.mapMu.Unlock()
	if b.ram.Contains(base, 1) || b.ram.Contains(base+size-1, 1) {
		return fmt.Errorf("mem: device %s at %#x overlaps RAM", name, base)
	}
	var old []mmioRange
	if p := b.mmios.Load(); p != nil {
		old = *p
	}
	for _, m := range old {
		if base < m.base+m.size && m.base < base+size {
			return fmt.Errorf("mem: device %s at %#x overlaps device %s", name, base, m.name)
		}
	}
	next := make([]mmioRange, 0, len(old)+1)
	next = append(next, old...)
	next = append(next, mmioRange{base: base, size: size, dev: dev, name: name})
	sort.Slice(next, func(i, j int) bool { return next[i].base < next[j].base })
	b.mmios.Store(&next)
	return nil
}

func (b *Bus) findDevice(addr uint64) (mmioRange, bool) {
	p := b.mmios.Load()
	if p == nil {
		return mmioRange{}, false
	}
	mmios := *p
	// Binary search for the last range with base <= addr.
	lo, hi := 0, len(mmios)
	for lo < hi {
		mid := (lo + hi) / 2
		if mmios[mid].base <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return mmioRange{}, false
	}
	if m := mmios[lo-1]; addr < m.base+m.size {
		return m, true
	}
	return mmioRange{}, false
}

// Read performs a physical read of size bytes (1, 2, 4 or 8).
func (b *Bus) Read(addr uint64, size int) (uint64, error) {
	if b.ram.Contains(addr, size) {
		return b.ram.Read(addr, size)
	}
	if m, ok := b.findDevice(addr); ok {
		return m.dev.ReadReg(addr-m.base, size)
	}
	return 0, &BusError{Addr: addr, Size: size, Kind: Read, Why: "unmapped"}
}

// Write performs a physical write of size bytes (1, 2, 4 or 8).
func (b *Bus) Write(addr uint64, size int, val uint64) error {
	if b.ram.Contains(addr, size) {
		return b.ram.Write(addr, size, val)
	}
	if m, ok := b.findDevice(addr); ok {
		return m.dev.WriteReg(addr-m.base, size, val)
	}
	return &BusError{Addr: addr, Size: size, Kind: Write, Why: "unmapped"}
}

// ReadBytes copies a physical range out of RAM. Device ranges are not
// byte-copyable; crossing out of RAM returns a BusError. On a
// copy-on-write fork the copy is served from the logical view without
// privatizing anything.
func (b *Bus) ReadBytes(addr uint64, dst []byte) error {
	if !b.ram.Contains(addr, len(dst)) {
		return &BusError{Addr: addr, Size: len(dst), Kind: Read, Why: "bulk access outside RAM"}
	}
	b.ram.readBytesCow(addr-b.ram.base, dst)
	return nil
}

// WriteBytes copies bytes into RAM.
func (b *Bus) WriteBytes(addr uint64, src []byte) error {
	if !b.ram.Contains(addr, len(src)) {
		return &BusError{Addr: addr, Size: len(src), Kind: Write, Why: "bulk access outside RAM"}
	}
	if len(src) == 0 {
		return nil
	}
	off := addr - b.ram.base
	if b.ram.cow != nil {
		b.ram.privatizeRangeForOverwrite(off, uint64(len(src)))
	}
	copy(b.ram.data[off:off+uint64(len(src))], src)
	b.ram.markDirty(addr, len(src))
	return nil
}
