package mem

import (
	"testing"
	"testing/quick"
)

func TestRAMReadWriteSizes(t *testing.T) {
	r := NewRAM(0x8000_0000, 1<<16)
	cases := []struct {
		addr uint64
		size int
		val  uint64
	}{
		{0x8000_0000, 1, 0xAB},
		{0x8000_0010, 2, 0xBEEF},
		{0x8000_0020, 4, 0xDEADBEEF},
		{0x8000_0030, 8, 0x0123_4567_89AB_CDEF},
	}
	for _, c := range cases {
		if err := r.Write(c.addr, c.size, c.val); err != nil {
			t.Fatalf("write %d bytes at %#x: %v", c.size, c.addr, err)
		}
		got, err := r.Read(c.addr, c.size)
		if err != nil {
			t.Fatalf("read %d bytes at %#x: %v", c.size, c.addr, err)
		}
		if got != c.val {
			t.Errorf("size %d: got %#x want %#x", c.size, got, c.val)
		}
	}
}

func TestRAMLittleEndian(t *testing.T) {
	r := NewRAM(0, 64)
	if err := r.Write(0, 4, 0x0403_0201); err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{1, 2, 3, 4} {
		got, err := r.Read(uint64(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("byte %d: got %d want %d", i, got, want)
		}
	}
}

func TestRAMOutOfRange(t *testing.T) {
	r := NewRAM(0x1000, 0x1000)
	if _, err := r.Read(0xFFF, 1); err == nil {
		t.Error("read below base should fail")
	}
	if _, err := r.Read(0x1FFD, 4); err == nil {
		t.Error("read crossing end should fail")
	}
	if err := r.Write(0x2000, 1, 0); err == nil {
		t.Error("write past end should fail")
	}
	// Last valid byte is fine.
	if _, err := r.Read(0x1FFF, 1); err != nil {
		t.Errorf("last byte read failed: %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	r := NewRAM(0, 1<<20)
	f := func(off uint32, val uint64, szSel uint8) bool {
		sizes := []int{1, 2, 4, 8}
		size := sizes[int(szSel)%4]
		addr := uint64(off) % (1<<20 - 8)
		if err := r.Write(addr, size, val); err != nil {
			return false
		}
		got, err := r.Read(addr, size)
		if err != nil {
			return false
		}
		mask := ^uint64(0)
		if size < 8 {
			mask = (uint64(1) << (8 * uint(size))) - 1
		}
		return got == val&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type probeDevice struct {
	lastOff  uint64
	lastSize int
	lastVal  uint64
	readVal  uint64
}

func (d *probeDevice) ReadReg(off uint64, size int) (uint64, error) {
	d.lastOff, d.lastSize = off, size
	return d.readVal, nil
}

func (d *probeDevice) WriteReg(off uint64, size int, val uint64) error {
	d.lastOff, d.lastSize, d.lastVal = off, size, val
	return nil
}

func TestBusMMIODispatch(t *testing.T) {
	bus := NewBus(NewRAM(0x8000_0000, 1<<16))
	dev := &probeDevice{readVal: 0x42}
	if err := bus.MapDevice("probe", 0x1000_0000, 0x1000, dev); err != nil {
		t.Fatal(err)
	}
	v, err := bus.Read(0x1000_0010, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x42 || dev.lastOff != 0x10 || dev.lastSize != 4 {
		t.Errorf("MMIO read routed wrong: v=%#x off=%#x size=%d", v, dev.lastOff, dev.lastSize)
	}
	if err := bus.Write(0x1000_0020, 8, 0x99); err != nil {
		t.Fatal(err)
	}
	if dev.lastOff != 0x20 || dev.lastVal != 0x99 {
		t.Errorf("MMIO write routed wrong: off=%#x val=%#x", dev.lastOff, dev.lastVal)
	}
}

func TestBusUnmappedAndOverlap(t *testing.T) {
	bus := NewBus(NewRAM(0x8000_0000, 1<<16))
	if _, err := bus.Read(0x2000_0000, 4); err == nil {
		t.Error("unmapped read should fail")
	}
	dev := &probeDevice{}
	if err := bus.MapDevice("a", 0x1000_0000, 0x1000, dev); err != nil {
		t.Fatal(err)
	}
	if err := bus.MapDevice("b", 0x1000_0800, 0x1000, dev); err == nil {
		t.Error("overlapping device map should fail")
	}
	if err := bus.MapDevice("c", 0x8000_0000, 0x10, dev); err == nil {
		t.Error("device overlapping RAM should fail")
	}
}

func TestBusBulkCopies(t *testing.T) {
	bus := NewBus(NewRAM(0x8000_0000, 1<<16))
	src := []byte{1, 2, 3, 4, 5}
	if err := bus.WriteBytes(0x8000_0100, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 5)
	if err := bus.ReadBytes(0x8000_0100, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("bulk copy mismatch at %d: %d != %d", i, dst[i], src[i])
		}
	}
	if err := bus.ReadBytes(0x8000_FFFF, make([]byte, 8)); err == nil {
		t.Error("bulk read past end should fail")
	}
}

func TestPageAllocator(t *testing.T) {
	alloc, err := NewPageAllocator(0x10000, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		p, err := alloc.AllocPage()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if p%PageSize != 0 {
			t.Fatalf("page %#x not aligned", p)
		}
		if seen[p] {
			t.Fatalf("page %#x handed out twice", p)
		}
		seen[p] = true
	}
	if _, err := alloc.AllocPage(); err == nil {
		t.Error("exhausted allocator should fail")
	}
	// Free then re-alloc reuses a frame.
	alloc.FreePage(0x10000)
	p, err := alloc.AllocPage()
	if err != nil || p != 0x10000 {
		t.Errorf("free/realloc: got %#x, %v", p, err)
	}
	if got := alloc.InUse(); got != 4 {
		t.Errorf("InUse = %d, want 4", got)
	}
}

func TestPageAllocatorAlignmentChecked(t *testing.T) {
	if _, err := NewPageAllocator(0x10001, PageSize); err == nil {
		t.Error("unaligned base accepted")
	}
	if _, err := NewPageAllocator(0x10000, 100); err == nil {
		t.Error("unaligned size accepted")
	}
}

func TestPageAllocatorContiguous(t *testing.T) {
	alloc, _ := NewPageAllocator(0, 8*PageSize)
	base, err := alloc.AllocPages(4)
	if err != nil {
		t.Fatal(err)
	}
	if base != 0 {
		t.Errorf("contiguous base = %#x", base)
	}
	if _, err := alloc.AllocPages(8); err == nil {
		t.Error("oversized contiguous alloc should fail")
	}
}

func TestRAMSlice(t *testing.T) {
	r := NewRAM(0x8000_0000, 1<<16)
	s, ok := r.Slice(0x8000_0100, PageSize)
	if !ok || len(s) != PageSize {
		t.Fatalf("Slice = len %d, ok %v", len(s), ok)
	}
	// The view aliases simulated memory in both directions.
	s[0] = 0x5A
	if v, err := r.Read(0x8000_0100, 1); err != nil || v != 0x5A {
		t.Errorf("write through slice invisible: %#x, %v", v, err)
	}
	if err := r.Write(0x8000_0101, 1, 0xC3); err != nil {
		t.Fatal(err)
	}
	if s[1] != 0xC3 {
		t.Errorf("RAM write invisible through slice: %#x", s[1])
	}
	// Out-of-range requests are refused, including partial overlaps.
	if _, ok := r.Slice(0x7FFF_FFF0, 32); ok {
		t.Error("slice below base accepted")
	}
	if _, ok := r.Slice(0x8000_0000+1<<16-8, 16); ok {
		t.Error("slice crossing end accepted")
	}
}

func TestBusSliceRejectsMMIO(t *testing.T) {
	bus := NewBus(NewRAM(0x8000_0000, 1<<16))
	if err := bus.MapDevice("probe", 0x1000_0000, 0x1000, &probeDevice{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := bus.Slice(0x1000_0000, 16); ok {
		t.Error("Slice must not expose device ranges as bytes")
	}
	if _, ok := bus.Slice(0x2000_0000, 16); ok {
		t.Error("Slice must not expose unmapped ranges")
	}
	if s, ok := bus.Slice(0x8000_0000, 64); !ok || len(s) != 64 {
		t.Errorf("RAM slice refused: len %d ok %v", len(s), ok)
	}
}

// TestBusMMIOTableSorted registers devices out of order and checks the
// binary-searched dispatch finds each one, including boundary addresses.
func TestBusMMIOTableSorted(t *testing.T) {
	bus := NewBus(NewRAM(0x8000_0000, 1<<16))
	devs := make([]*probeDevice, 5)
	bases := []uint64{0x5000_0000, 0x1000_0000, 0x3000_0000, 0x2000_0000, 0x4000_0000}
	for i, base := range bases {
		devs[i] = &probeDevice{readVal: uint64(i + 1)}
		if err := bus.MapDevice("dev", base, 0x1000, devs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, base := range bases {
		for _, off := range []uint64{0, 8, 0xFF8} {
			v, err := bus.Read(base+off, 4)
			if err != nil {
				t.Fatalf("dev %d off %#x: %v", i, off, err)
			}
			if v != uint64(i+1) {
				t.Errorf("dev %d off %#x routed to %d", i, off, v)
			}
		}
		// One past the end must not hit this device.
		if _, err := bus.Read(base+0x1000, 4); err == nil {
			t.Errorf("dev %d: end-of-range address wrongly mapped", i)
		}
	}
	// Below the lowest base.
	if _, err := bus.Read(0x0F00_0000, 4); err == nil {
		t.Error("address below all devices wrongly mapped")
	}
}

// TestBusConcurrentLookupDuringMap exercises the copy-on-write table:
// lookups proceed lock-free while a writer registers devices. Run with
// -race to validate the publication safety.
func TestBusConcurrentLookupDuringMap(t *testing.T) {
	bus := NewBus(NewRAM(0x8000_0000, 1<<16))
	if err := bus.MapDevice("first", 0x1000_0000, 0x1000, &probeDevice{readVal: 7}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 64; i++ {
			base := 0x2000_0000 + uint64(i)*0x1_0000
			if err := bus.MapDevice("more", base, 0x1000, &probeDevice{}); err != nil {
				t.Errorf("map %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < 10000; i++ {
		v, err := bus.Read(0x1000_0000, 4)
		if err != nil || v != 7 {
			t.Fatalf("lookup during map: %#x, %v", v, err)
		}
	}
	<-done
}

func TestLoadStoreLE(t *testing.T) {
	b := make([]byte, 8)
	StoreLE(b, 8, 0x0102_0304_0506_0708)
	if got := LoadLE(b); got != 0x0102_0304_0506_0708 {
		t.Errorf("LoadLE = %#x", got)
	}
	if b[0] != 0x08 {
		t.Errorf("not little-endian: b[0]=%#x", b[0])
	}
	StoreLE(b[:2], 2, 0xFFFF)
	if got := LoadLE(b[:2]); got != 0xFFFF {
		t.Errorf("2-byte LoadLE = %#x", got)
	}
}

// TestRecycleScrubsAllWritePaths pins the pool-reuse contract: a recycled
// backing store must come back all-zero no matter which path dirtied it —
// Bus.Write, Bus.WriteBytes, or a cached page view handed out for the MMU
// fast path — even when the caller's own dirtyTop bound misses the write.
func TestRecycleScrubsAllWritePaths(t *testing.T) {
	const base, size = 0x8000_0000, uint64(1 << 21)
	// Loop so at least some iterations after the first actually reuse a
	// pooled buffer (sync.Pool may or may not return one).
	for i := 0; i < 8; i++ {
		ram := AcquireRAM(base, size)
		bus := NewBus(ram)
		for off := uint64(0); off < size; off += PageSize {
			if got, err := bus.Read(base+off, 8); err != nil || got != 0 {
				t.Fatalf("iter %d: recycled RAM dirty at +%#x: %#x (err %v)", i, off, got, err)
			}
		}
		// Dirty through all three paths, well above any allocator bound.
		if err := bus.Write(base+size-PageSize, 8, ^uint64(0)); err != nil {
			t.Fatal(err)
		}
		if err := bus.WriteBytes(base+size/2, []byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		view, ok := bus.Slice(base+size/4, PageSize)
		if !ok {
			t.Fatal("slice refused")
		}
		bus.MarkDirty(base+size/4, PageSize)
		view[10] = 0xEE
		// Recycle with a deliberately useless caller bound.
		ram.Recycle(0)
	}
}
