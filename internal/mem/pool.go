package mem

import "sync"

// RAM recycling. Allocating a platform's main memory costs a host
// make([]byte, 256–512 MiB) — and once the Go allocator starts reusing
// spans, a full memclr of that size on every platform construction. For
// short simulations (benchmark iterations, Batch sessions) the clear
// dominates wall-clock, drowning out the simulation being measured.
//
// The pool recycles backing stores across platform lifetimes instead:
// Recycle scrubs only the prefix the simulation could have dirtied (fixed
// firmware region plus the page allocator's high watermark — every
// RAM-backed byte a correct guest can reach) and parks the buffer for the
// next AcquireRAM of the same size. sync.Pool semantics apply: buffers are
// dropped under GC pressure, so idle pools do not pin memory forever.

var ramPools sync.Map // size (uint64) -> *sync.Pool of []byte

// AcquireRAM returns a RAM region like NewRAM, preferring a recycled
// backing store of the same size. Recycled stores are zero up to the
// dirty watermark their previous owner declared to Recycle, so callers
// observe the same all-zero initial contents as a fresh allocation.
func AcquireRAM(base, size uint64) *RAM {
	key := (size + 7) &^ uint64(7) // backing stores are word-rounded (see NewRAM)
	if p, ok := ramPools.Load(key); ok {
		if buf, _ := p.(*sync.Pool).Get().([]byte); buf != nil {
			return &RAM{base: base, data: buf[:size], words: buf}
		}
	}
	return NewRAM(base, size)
}

// Recycle scrubs everything the simulation may have written and returns
// the backing store to the pool for reuse by a future AcquireRAM of the
// same size. The scrub bound is the larger of the RAM's own dirty
// watermark — maintained by Write/WriteBytes and the MMU's walk-time
// marking of cached writable pages — and dirtyTop, an optional physical
// address bound the caller derives independently (the platform passes its
// page allocator's high watermark as belt-and-braces). The RAM must not
// be used after Recycle; outstanding Bytes/Slice views go stale.
func (r *RAM) Recycle(dirtyTop uint64) {
	if r.data == nil {
		return
	}
	scrub := r.dirty.Load()
	if r.cow != nil {
		// A copy-on-write fork's backing store holds only privatized
		// pages and post-fork writes — all below the RAM's own dirty
		// watermark. The caller-derived bound covers the snapshot's boot
		// allocations, which live in the shared image, not here; honouring
		// it would re-introduce the multi-MiB scrub forking exists to
		// avoid.
		dirtyTop = 0
		r.cow = nil
	}
	if dirtyTop > r.base && dirtyTop-r.base > scrub {
		scrub = dirtyTop - r.base
	}
	if scrub > uint64(len(r.words)) {
		scrub = uint64(len(r.words))
	}
	clear(r.words[:scrub])
	key := uint64(len(r.words))
	p, _ := ramPools.LoadOrStore(key, &sync.Pool{})
	p.(*sync.Pool).Put(r.words)
	r.data, r.words = nil, nil
}
