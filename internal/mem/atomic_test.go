package mem

import (
	"sync"
	"testing"
	"unsafe"
)

// alignedView returns an n-byte view starting on a host word boundary.
// Production views (RAM backing stores and 4 KiB page views carved from
// them) are page-aligned large allocations; small test slices are not
// guaranteed word alignment, especially under -race.
func alignedView(n int) []byte {
	buf := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), n)
}

// TestAtomicAccessorsMatchPlain checks that the atomic accessors are
// bit-compatible with the plain LE accessors for every size and every
// in-word alignment, including word- and dword-crossing offsets.
func TestAtomicAccessorsMatchPlain(t *testing.T) {
	view := alignedView(64)
	for i := range view {
		view[i] = byte(0xA0 + i)
	}
	ref := append([]byte(nil), view...)

	for _, size := range []int{1, 2, 4, 8} {
		for off := uint64(0); off+uint64(size) <= 32; off++ {
			want := loadLE(ref[off : off+uint64(size)])
			if got := AtomicLoadLE(view, off, size); got != want {
				t.Errorf("AtomicLoadLE(off=%d, size=%d) = %#x, want %#x", off, size, got, want)
			}
		}
	}

	for _, size := range []int{1, 2, 4, 8} {
		for off := uint64(0); off+uint64(size) <= 32; off++ {
			val := uint64(0x1122334455667788) >> (off % 8)
			AtomicStoreLE(view, off, size, val)
			storeLE(ref[off:off+uint64(size)], size, val)
			for i := range view {
				if view[i] != ref[i] {
					t.Fatalf("after AtomicStoreLE(off=%d, size=%d): byte %d = %#x, want %#x",
						off, size, i, view[i], ref[i])
				}
			}
		}
	}
}

func TestAtomicBulkMatchesCopy(t *testing.T) {
	view := alignedView(256)
	for i := range view {
		view[i] = byte(i)
	}
	// Every (offset, length) pair around word boundaries.
	for off := uint64(0); off < 8; off++ {
		for n := 0; n < 24; n++ {
			dst := make([]byte, n)
			AtomicReadBytes(view, off, dst)
			for i := range dst {
				if dst[i] != view[off+uint64(i)] {
					t.Fatalf("AtomicReadBytes(off=%d, n=%d): byte %d = %#x", off, n, i, dst[i])
				}
			}
			src := make([]byte, n)
			for i := range src {
				src[i] = byte(0x80 + i)
			}
			want := append([]byte(nil), view...)
			copy(want[off:], src)
			got := alignedView(len(view))
			copy(got, view)
			AtomicWriteBytes(got, off, src)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("AtomicWriteBytes(off=%d, n=%d): byte %d = %#x, want %#x",
						off, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestAtomicNeighbouringBytesCompose is the sub-word contract: concurrent
// stores to the four bytes of one word must all survive (a plain store
// would lose neighbours to the read-modify-write of the containing word,
// and the race detector would flag it).
func TestAtomicNeighbouringBytesCompose(t *testing.T) {
	view := alignedView(8)
	var wg sync.WaitGroup
	for lane := 0; lane < 4; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				AtomicStoreLE(view, uint64(lane), 1, uint64(0x10+lane))
			}
		}(lane)
	}
	wg.Wait()
	for lane := 0; lane < 4; lane++ {
		if got := AtomicLoadLE(view, uint64(lane), 1); got != uint64(0x10+lane) {
			t.Errorf("byte %d = %#x, want %#x", lane, got, 0x10+lane)
		}
	}
}

// TestAtomicConcurrentWordHammer drives aligned word and dword traffic
// from several goroutines at the same addresses; under -race this is the
// proof that the accessors give guest races defined host semantics.
func TestAtomicConcurrentWordHammer(t *testing.T) {
	ram := NewRAM(0x1000, 1<<16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := ram.AtomicWrite(0x1000, 4, uint64(g)); err != nil {
					t.Error(err)
					return
				}
				if _, err := ram.AtomicRead(0x1000, 4); err != nil {
					t.Error(err)
					return
				}
				if err := ram.AtomicWrite(0x2000, 8, uint64(g)<<32|uint64(g)); err != nil {
					t.Error(err)
					return
				}
				if _, err := ram.AtomicRead(0x2000, 8); err != nil {
					t.Error(err)
					return
				}
				Fence()
				LoadFence()
			}
		}(g)
	}
	wg.Wait()
	v, err := ram.AtomicRead(0x1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v > 7 {
		t.Errorf("word holds %#x, want one of the stored values", v)
	}
}

// TestBusAtomicRoutesMMIO checks that the atomic bus paths keep the
// plain paths' routing: RAM goes word-atomic, devices still get register
// calls, unmapped is a bus error.
func TestBusAtomicRoutesMMIO(t *testing.T) {
	bus := NewBus(NewRAM(0, 1<<16))
	dev := &recordingDevice{}
	if err := bus.MapDevice("dev", 0x10_0000, 0x1000, dev); err != nil {
		t.Fatal(err)
	}
	if err := bus.AtomicWrite(0x100, 4, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	if v, err := bus.AtomicRead(0x100, 4); err != nil || v != 0xDEAD {
		t.Fatalf("RAM atomic round trip = %#x, %v", v, err)
	}
	if err := bus.AtomicWrite(0x10_0004, 4, 7); err != nil {
		t.Fatal(err)
	}
	if dev.writes != 1 {
		t.Errorf("device writes = %d, want 1", dev.writes)
	}
	if _, err := bus.AtomicRead(0x10_0004, 4); err != nil {
		t.Fatal(err)
	}
	if dev.reads != 1 {
		t.Errorf("device reads = %d, want 1", dev.reads)
	}
	if _, err := bus.AtomicRead(0xFFFF_0000, 4); err == nil {
		t.Error("unmapped atomic read did not fail")
	}
	if err := bus.AtomicWriteBytes(0x200, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := bus.AtomicReadBytes(0x200, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != byte(i+1) {
			t.Fatalf("bulk byte %d = %d", i, b)
		}
	}
	if err := bus.AtomicWriteBytes(0x10_0000, []byte{1}); err == nil {
		t.Error("bulk atomic write into MMIO did not fail")
	}
}

// TestAtomicWriteRaisesDirtyWatermark keeps the RAM-recycling contract:
// atomic stores must be scrubbed on Recycle like plain ones.
func TestAtomicWriteRaisesDirtyWatermark(t *testing.T) {
	ram := NewRAM(0, 1<<16)
	if err := ram.AtomicWrite(0x5123, 2, 0xFFFF); err != nil {
		t.Fatal(err)
	}
	if got := ram.dirty.Load(); got < 0x5125 {
		t.Errorf("dirty watermark %#x does not cover the atomic store", got)
	}
}

type recordingDevice struct {
	mu     sync.Mutex
	reads  int
	writes int
	last   uint64
}

func (d *recordingDevice) ReadReg(off uint64, size int) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads++
	return d.last, nil
}

func (d *recordingDevice) WriteReg(off uint64, size int, val uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes++
	d.last = val
	return nil
}

// TestAtomicTailOfOddSizedRAM: the backing store is word-rounded (a byte
// store to the last byte of an odd-sized RAM used to panic looking for
// its containing word) while the guest-visible size and bus-error
// boundary stay exactly as configured.
func TestAtomicTailOfOddSizedRAM(t *testing.T) {
	const size = (1 << 20) + 1
	r := NewRAM(0, size)
	if r.Size() != size {
		t.Fatalf("Size() = %d, want the configured %d", r.Size(), size)
	}
	if err := r.AtomicWrite(r.Size()-1, 1, 0xAB); err != nil {
		t.Fatal(err)
	}
	if v, err := r.AtomicRead(r.Size()-1, 1); err != nil || v != 0xAB {
		t.Fatalf("tail byte = %#x, %v", v, err)
	}
	if err := r.AtomicWrite(r.Size(), 1, 1); err == nil {
		t.Error("store past the configured size did not bus-error")
	}
	if _, err := r.Read(r.Size(), 1); err == nil {
		t.Error("plain read past the configured size did not bus-error")
	}
}

// TestMisalignedAccessWordGranular pins the tearing contract: a
// misaligned access may tear only at word boundaries, never within a
// word. A writer flips an aligned word between all-zeros and all-ones
// while a misaligned reader spans it; the reader must always see the
// covered bytes of that word from one generation. The mirror direction
// checks misaligned stores against an aligned reader.
func TestMisalignedAccessWordGranular(t *testing.T) {
	view := alignedView(16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			AtomicStore32(view, 4, 0)
			AtomicStore32(view, 4, ^uint32(0))
		}
	}()
	for i := 0; i < 20000; i++ {
		// off 3, size 4: byte 3 of word 0 plus bytes 4-6 of word 1.
		v := AtomicLoadLE(view, 3, 4)
		mid := v >> 8 & 0xFFFFFF // bytes 4-6, all from one word load
		if mid != 0 && mid != 0xFFFFFF {
			t.Fatalf("misaligned load tore within a word: %#x", v)
		}
	}
	<-done

	done = make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			// Misaligned stores covering bytes 3..6.
			AtomicStoreLE(view, 3, 4, 0)
			AtomicStoreLE(view, 3, 4, 0xFFFFFFFF)
		}
	}()
	for i := 0; i < 20000; i++ {
		w := uint32(AtomicLoad32(view, 4))
		if mid := w & 0xFFFFFF; mid != 0 && mid != 0xFFFFFF {
			t.Fatalf("misaligned store tore within a word: %#x", w)
		}
	}
	<-done
}
