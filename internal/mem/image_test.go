package mem

import (
	"bytes"
	"sync"
	"testing"
)

// imageFixture builds a small RAM with recognisable content and captures
// it: page 0 holds 0x11.., page 1 holds 0x22.., page 2 is untouched
// (zero), pages beyond the watermark are not captured at all.
func imageFixture(t *testing.T) (*Image, uint64) {
	t.Helper()
	const base = uint64(0x8000_0000)
	r := NewRAM(base, 16*PageSize)
	for i := 0; i < PageSize; i++ {
		if err := r.Write(base+uint64(i), 1, 0x11); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Write(base+PageSize, 8, 0x2222_2222_2222_2222); err != nil {
		t.Fatal(err)
	}
	img, err := r.CaptureImage(base + 3*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if img.CapturedBytes() != 3*PageSize {
		t.Fatalf("captured %d bytes, want %d", img.CapturedBytes(), 3*PageSize)
	}
	return img, base
}

func TestForkReadsImageContent(t *testing.T) {
	img, base := imageFixture(t)
	f := ForkRAM(img)
	if v, err := f.Read(base, 4); err != nil || v != 0x11111111 {
		t.Fatalf("page0 read %#x (%v)", v, err)
	}
	if v, err := f.Read(base+PageSize, 8); err != nil || v != 0x2222_2222_2222_2222 {
		t.Fatalf("page1 read %#x (%v)", v, err)
	}
	// Beyond the captured prefix: zero.
	if v, err := f.Read(base+5*PageSize, 8); err != nil || v != 0 {
		t.Fatalf("uncaptured read %#x (%v)", v, err)
	}
	if n := f.PrivatizedPages(); n != 0 {
		t.Fatalf("reads privatized %d pages", n)
	}
}

func TestForkWritePrivatizesAndIsolates(t *testing.T) {
	img, base := imageFixture(t)
	a, b := ForkRAM(img), ForkRAM(img)

	if err := a.Write(base+8, 4, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if n := a.PrivatizedPages(); n != 1 {
		t.Fatalf("a privatized %d pages, want 1", n)
	}
	// a sees its own write and the rest of the page's image content.
	if v, _ := a.Read(base+8, 4); v != 0xdeadbeef {
		t.Fatalf("a readback %#x", v)
	}
	if v, _ := a.Read(base+12, 4); v != 0x11111111 {
		t.Fatalf("a page remainder %#x", v)
	}
	// The sibling and the image are untouched.
	if v, _ := b.Read(base+8, 4); v != 0x11111111 {
		t.Fatalf("write leaked into sibling: %#x", v)
	}
	if got := img.Data()[8]; got != 0x11 {
		t.Fatalf("write leaked into image: %#x", got)
	}
	if n := b.PrivatizedPages(); n != 0 {
		t.Fatalf("sibling privatized %d pages", n)
	}
}

func TestForkWritePathsPrivatize(t *testing.T) {
	img, base := imageFixture(t)
	paths := []struct {
		name  string
		write func(r *RAM) error
	}{
		{"Write", func(r *RAM) error { return r.Write(base, 4, 1) }},
		{"AtomicWrite", func(r *RAM) error { return r.AtomicWrite(base, 4, 1) }},
		{"Bytes", func(r *RAM) error { r.Bytes(base, 4)[0] = 1; return nil }},
		{"Slice", func(r *RAM) error {
			s, ok := r.Slice(base, 8)
			if !ok {
				t.Fatal("slice refused")
			}
			s[0] = 1
			return nil
		}},
	}
	for _, p := range paths {
		t.Run(p.name, func(t *testing.T) {
			f := ForkRAM(img)
			if err := p.write(f); err != nil {
				t.Fatal(err)
			}
			if n := f.PrivatizedPages(); n != 1 {
				t.Fatalf("%s privatized %d pages, want 1", p.name, n)
			}
			if img.Data()[0] != 0x11 {
				t.Fatalf("%s mutated the image", p.name)
			}
		})
	}
}

func TestForkBusPaths(t *testing.T) {
	img, base := imageFixture(t)
	f := ForkRAM(img)
	bus := NewBus(f)

	// Bulk read from a shared page does not privatize.
	dst := make([]byte, 64)
	if err := bus.ReadBytes(base+PageSize/2, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0x11 {
		t.Fatalf("bulk read %#x", dst[0])
	}
	if n := f.PrivatizedPages(); n != 0 {
		t.Fatalf("bulk read privatized %d pages", n)
	}
	// Bulk write crossing a page boundary privatizes both pages.
	src := bytes.Repeat([]byte{0xAB}, 32)
	if err := bus.WriteBytes(base+PageSize-16, src); err != nil {
		t.Fatal(err)
	}
	if n := f.PrivatizedPages(); n != 2 {
		t.Fatalf("crossing write privatized %d pages, want 2", n)
	}
	got := make([]byte, 32)
	if err := bus.ReadBytes(base+PageSize-16, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("crossing write readback %x", got)
	}
	// Atomic bulk paths.
	if err := bus.AtomicWriteBytes(base+2*PageSize-8, bytes.Repeat([]byte{0xCD}, 16)); err != nil {
		t.Fatal(err)
	}
	adst := make([]byte, 16)
	if err := bus.AtomicReadBytes(base+2*PageSize-8, adst); err != nil {
		t.Fatal(err)
	}
	if adst[0] != 0xCD || adst[15] != 0xCD {
		t.Fatalf("atomic crossing readback %x", adst)
	}
}

func TestForkFullPageOverwriteSkipsImageCopy(t *testing.T) {
	img, base := imageFixture(t)
	f := ForkRAM(img)
	bus := NewBus(f)
	// Overwrite pages 0-1 entirely plus a partial tail into page 2: the
	// fully covered pages must carry exactly src (no stale image bytes),
	// the partial page must keep its image remainder.
	src := bytes.Repeat([]byte{0xEE}, 2*PageSize+64)
	if err := bus.WriteBytes(base, src); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(src))
	if err := bus.ReadBytes(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("full-page overwrite content mismatch")
	}
	if v, _ := f.Read(base+2*PageSize+64, 8); v != 0 { // page 2 was zero in the image
		t.Fatalf("partial-page remainder %#x", v)
	}
	if n := f.PrivatizedPages(); n != 3 {
		t.Fatalf("privatized %d pages, want 3", n)
	}
	if img.Data()[0] != 0x11 {
		t.Fatal("overwrite mutated the image")
	}
}

func TestForkReadCrossingSharedPrivateBoundary(t *testing.T) {
	img, base := imageFixture(t)
	f := ForkRAM(img)
	// Privatize page 0 only; page 1 stays shared.
	if err := f.Write(base, 1, 0x99); err != nil {
		t.Fatal(err)
	}
	// 8-byte read crossing from private page 0 into shared page 1.
	v, err := f.Read(base+PageSize-4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x2222_2222_1111_1111 {
		t.Fatalf("crossing read %#x", v)
	}
	if av, err := f.AtomicRead(base+PageSize-4, 8); err != nil || av != v {
		t.Fatalf("atomic crossing read %#x (%v)", av, err)
	}
}

func TestForkZeroPageSkipsCopy(t *testing.T) {
	img, base := imageFixture(t)
	f := ForkRAM(img)
	ZeroPage(f, base) // page 0 holds 0x11.. in the image
	if v, _ := f.Read(base+128, 8); v != 0 {
		t.Fatalf("zeroed page reads %#x", v)
	}
	if n := f.PrivatizedPages(); n != 1 {
		t.Fatalf("ZeroPage privatized %d pages, want 1", n)
	}
	if img.Data()[128] != 0x11 {
		t.Fatal("ZeroPage mutated the image")
	}
}

func TestForkPageView(t *testing.T) {
	img, base := imageFixture(t)
	f := ForkRAM(img)
	view, ro, ok := f.PageView(base, false)
	if !ok || !ro {
		t.Fatalf("read view ro=%v ok=%v", ro, ok)
	}
	if view[0] != 0x11 {
		t.Fatalf("read view content %#x", view[0])
	}
	if n := f.PrivatizedPages(); n != 0 {
		t.Fatal("read view privatized")
	}
	wview, ro, ok := f.PageView(base, true)
	if !ok || ro {
		t.Fatalf("write view ro=%v ok=%v", ro, ok)
	}
	wview[0] = 0x77
	if v, _ := f.Read(base, 1); v != 0x77 {
		t.Fatalf("write through view invisible: %#x", v)
	}
	if img.Data()[0] != 0x11 {
		t.Fatal("write view mutated the image")
	}
	// Unaligned or out-of-range pages are refused.
	if _, _, ok := f.PageView(base+8, false); ok {
		t.Fatal("unaligned PageView accepted")
	}
	if _, _, ok := f.PageView(base+1<<30, false); ok {
		t.Fatal("out-of-range PageView accepted")
	}
}

func TestForkRecycleScrubsOnlyPrivatePages(t *testing.T) {
	img, base := imageFixture(t)
	f := ForkRAM(img)
	if err := f.Write(base+PageSize, 4, 0xdead); err != nil {
		t.Fatal(err)
	}
	words := f.words
	// Recycle with a huge dirtyTop: a fork must ignore it (the boot
	// allocations live in the shared image, not the private store).
	f.Recycle(base + 16*PageSize)
	for i, b := range words[:3*PageSize] {
		if b != 0 {
			t.Fatalf("byte %d not scrubbed: %#x", i, b)
		}
	}
}

func TestCaptureImageOfFork(t *testing.T) {
	img, base := imageFixture(t)
	f := ForkRAM(img)
	if err := f.Write(base+8, 4, 0xfeedface); err != nil {
		t.Fatal(err)
	}
	img2, err := f.CaptureImage(base + 3*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// The re-captured image sees the fork's logical contents: its write
	// plus the inherited shared pages.
	f2 := ForkRAM(img2)
	if v, _ := f2.Read(base+8, 4); v != 0xfeedface {
		t.Fatalf("recaptured write %#x", v)
	}
	if v, _ := f2.Read(base+PageSize, 8); v != 0x2222_2222_2222_2222 {
		t.Fatalf("recaptured shared page %#x", v)
	}
}

// TestForkConcurrentAccess hammers one fork from many goroutines —
// concurrent privatization, atomic stores and atomic loads on the same
// pages — and must stay race-clean under -race.
func TestForkConcurrentAccess(t *testing.T) {
	img, base := imageFixture(t)
	f := ForkRAM(img)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				addr := base + uint64((w*61+i*13)%int(3*PageSize))&^3
				if i%3 == 0 {
					if err := f.AtomicWrite(addr, 4, uint64(w)<<16|uint64(i)); err != nil {
						panic(err)
					}
				} else {
					if _, err := f.AtomicRead(addr, 4); err != nil {
						panic(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSiblingForksConcurrent runs two forks of one image concurrently;
// each writes its own pattern and must read it back unperturbed.
func TestSiblingForksConcurrent(t *testing.T) {
	img, base := imageFixture(t)
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			f := ForkRAM(img)
			pat := uint64(0xA0A0_0000) | uint64(s)
			for i := 0; i < 256; i++ {
				addr := base + uint64(i*PageSize/64)&^7
				if err := f.AtomicWrite(addr, 8, pat+uint64(i)); err != nil {
					panic(err)
				}
				if v, err := f.AtomicRead(addr, 8); err != nil || v != pat+uint64(i) {
					t.Errorf("fork %d: readback %#x (%v)", s, v, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for i := 0; i < 3*PageSize; i += PageSize {
		if i == 0 && img.Data()[0] != 0x11 {
			t.Fatal("image mutated")
		}
	}
}

func TestImageGeometryValidation(t *testing.T) {
	if _, err := NewImage(0, PageSize+1, nil); err == nil {
		t.Fatal("unaligned size accepted")
	}
	if _, err := NewImage(0, PageSize, make([]byte, 2*PageSize)); err == nil {
		t.Fatal("oversized data accepted")
	}
	r := NewRAM(0x1000, 3*PageSize+8)
	if _, err := r.CaptureImage(0); err == nil {
		t.Fatal("unaligned RAM imaged")
	}
}
