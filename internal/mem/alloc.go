package mem

import (
	"fmt"
	"sync"
)

// PageAllocator hands out physical page frames from a RAM range. The guest
// "firmware", the kernel driver's memory manager, and the MMU page-table
// builders all allocate backing pages through it. Free is supported so
// long-running workloads (SLAMBench runs thousands of jobs) do not leak
// simulated memory.
type PageAllocator struct {
	mu    sync.Mutex
	base  uint64
	limit uint64
	next  uint64
	free  []uint64
}

// NewPageAllocator manages page frames in [base, base+size). Both base and
// size must be page-aligned.
func NewPageAllocator(base, size uint64) (*PageAllocator, error) {
	if base%PageSize != 0 || size%PageSize != 0 {
		return nil, fmt.Errorf("mem: allocator range %#x+%#x not page aligned", base, size)
	}
	return &PageAllocator{base: base, limit: base + size, next: base}, nil
}

// AllocPage returns the physical address of a free, zeroed-by-construction
// page frame. (RAM starts zeroed; recycled pages are re-zeroed by the
// caller via ZeroPage when required.)
func (a *PageAllocator) AllocPage() (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.free); n > 0 {
		p := a.free[n-1]
		a.free = a.free[:n-1]
		return p, nil
	}
	if a.next >= a.limit {
		return 0, fmt.Errorf("mem: out of physical pages (%d allocated)", (a.next-a.base)/PageSize)
	}
	p := a.next
	a.next += PageSize
	return p, nil
}

// AllocPages allocates n physically contiguous pages. Contiguity is only
// guaranteed when the bump region still has room; otherwise it falls back
// to an error so callers can size their carve-outs correctly.
func (a *PageAllocator) AllocPages(n int) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	need := uint64(n) * PageSize
	if a.next+need > a.limit {
		return 0, fmt.Errorf("mem: out of contiguous physical pages (want %d)", n)
	}
	p := a.next
	a.next += need
	return p, nil
}

// FreePage returns a page frame to the allocator.
func (a *PageAllocator) FreePage(addr uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free = append(a.free, addr)
}

// InUse returns the number of pages currently handed out.
func (a *PageAllocator) InUse() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int((a.next-a.base)/PageSize) - len(a.free)
}

// HighWater returns one past the highest physical address ever handed out
// (the bump pointer). Everything the allocator has ever given a caller lies
// in [base, HighWater()); RAM recycling scrubs exactly that range.
func (a *PageAllocator) HighWater() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}

// ZeroPage clears one page frame in the given RAM. On a copy-on-write
// fork a still-shared page is simply marked private: the fork's backing
// store is already zero for shared pages, so no copy and no clear is
// needed.
func ZeroPage(ram *RAM, addr uint64) {
	if ram.cow != nil && addr%PageSize == 0 && ram.Contains(addr, PageSize) {
		pi := (addr - ram.base) / PageSize
		if !ram.cow.pagePrivate(pi) {
			ram.privatizeSkipCopy(pi)
			ram.markDirty(addr, PageSize)
			return
		}
	}
	b := ram.Bytes(addr, PageSize)
	for i := range b {
		b[i] = 0
	}
}

// AllocState is the serializable state of a PageAllocator, captured for
// platform snapshots.
type AllocState struct {
	Base  uint64
	Limit uint64
	Next  uint64
	Free  []uint64
}

// State captures the allocator for a snapshot.
func (a *PageAllocator) State() AllocState {
	a.mu.Lock()
	defer a.mu.Unlock()
	free := make([]uint64, len(a.free))
	copy(free, a.free)
	return AllocState{Base: a.base, Limit: a.limit, Next: a.next, Free: free}
}

// NewPageAllocatorFromState reconstructs an allocator from captured
// state, so a restored platform's allocations continue exactly where the
// snapshot's left off.
func NewPageAllocatorFromState(st AllocState) (*PageAllocator, error) {
	if st.Base%PageSize != 0 || st.Limit%PageSize != 0 || st.Next%PageSize != 0 {
		return nil, fmt.Errorf("mem: allocator state %#x/%#x/%#x not page aligned", st.Base, st.Next, st.Limit)
	}
	if st.Next < st.Base || st.Next > st.Limit {
		return nil, fmt.Errorf("mem: allocator bump pointer %#x outside [%#x, %#x]", st.Next, st.Base, st.Limit)
	}
	free := make([]uint64, len(st.Free))
	copy(free, st.Free)
	return &PageAllocator{base: st.Base, limit: st.Limit, next: st.Next, free: free}, nil
}
