// Atomic guest-memory accessors — the race-clean core of the GPU memory
// model. The simulator's shader cores run as concurrent host goroutines
// sharing one guest RAM ([]byte); a guest program is free to race on that
// memory (frontier flags in BFS, idempotent duplicate stores in Floyd-
// Warshall), so the host-side accessors must give those guest races
// defined semantics instead of undefined behaviour in the host language.
//
// The model is word-granular: every access is performed through
// sequentially-consistent host atomics on the aligned 32-bit (or 64-bit)
// words containing it.
//
//   - Naturally aligned 32-bit accesses are single-copy atomic.
//   - Naturally aligned 64-bit accesses are single-copy atomic.
//   - Sub-word accesses (8/16-bit) read-modify-write their containing
//     word with a CAS loop, so neighbouring-byte stores from different
//     cores never lose each other's bytes.
//   - Misaligned or word-crossing accesses are performed word by word:
//     each affected word is accessed atomically, but the access as a
//     whole may tear at word boundaries — exactly the guarantee mobile
//     hardware gives for unaligned device memory.
//
// Views passed to these functions must begin on a host word boundary.
// Both producers of views — RAM backing stores (heap allocations of
// megabytes, page-aligned by the Go runtime) and the MMU's cached 4 KiB
// page views carved from them — satisfy this by construction; it is
// asserted, not assumed.
package mem

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// hostBigEndian reports whether the host stores multi-byte values
// big-endian. The guest is little-endian; on big-endian hosts word values
// are byte-swapped around each atomic operation.
var hostBigEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 0
}()

// le32 converts between a little-endian guest word and the host's native
// representation (identity on little-endian hosts).
func le32(v uint32) uint32 {
	if hostBigEndian {
		return bits.ReverseBytes32(v)
	}
	return v
}

func le64(v uint64) uint64 {
	if hostBigEndian {
		return bits.ReverseBytes64(v)
	}
	return v
}

// ptr32 returns the aligned host word at byte offset off (off%4 == 0).
func ptr32(view []byte, off uint64) *uint32 {
	if off+4 > uint64(len(view)) {
		panic(fmt.Sprintf("mem: atomic word at %#x beyond view of %d bytes", off, len(view)))
	}
	p := unsafe.Pointer(&view[off])
	if uintptr(p)&3 != 0 {
		panic(fmt.Sprintf("mem: atomic access through a misaligned view (host addr %#x)", uintptr(p)))
	}
	return (*uint32)(p)
}

func ptr64(view []byte, off uint64) *uint64 {
	if off+8 > uint64(len(view)) {
		panic(fmt.Sprintf("mem: atomic word at %#x beyond view of %d bytes", off, len(view)))
	}
	p := unsafe.Pointer(&view[off])
	if uintptr(p)&7 != 0 {
		panic(fmt.Sprintf("mem: atomic access through a misaligned view (host addr %#x)", uintptr(p)))
	}
	return (*uint64)(p)
}

// rmw32 atomically replaces the masked bits of the aligned word at off
// with val (both given as little-endian guest values).
func rmw32(view []byte, off uint64, mask, val uint32) {
	p := ptr32(view, off)
	m, v := le32(mask), le32(val)
	for {
		old := atomic.LoadUint32(p)
		if atomic.CompareAndSwapUint32(p, old, old&^m|v) {
			return
		}
	}
}

// AtomicLoad32 loads the aligned 32-bit guest word at off (off%4 == 0).
// It is the single-copy-atomic common case of AtomicLoadLE, kept tiny so
// it inlines into the MMU's TLB-hit path.
func AtomicLoad32(view []byte, off uint64) uint64 {
	return uint64(le32(atomic.LoadUint32(ptr32(view, off))))
}

// AtomicStore32 stores the aligned 32-bit guest word at off (off%4 == 0).
func AtomicStore32(view []byte, off uint64, val uint32) {
	atomic.StoreUint32(ptr32(view, off), le32(val))
}

// AtomicLoadLE loads size (1, 2, 4 or 8) little-endian bytes at off from a
// host view obtained through RAM.Slice/Bytes, with the word-granular
// atomicity contract described in the package comment. The view must
// start on a host word boundary and contain the word(s) touched — true
// for whole-page views and RAM backing stores, the only callers.
func AtomicLoadLE(view []byte, off uint64, size int) uint64 {
	switch size {
	case 4:
		if off&3 == 0 {
			return uint64(le32(atomic.LoadUint32(ptr32(view, off))))
		}
	case 8:
		if off&7 == 0 {
			return le64(atomic.LoadUint64(ptr64(view, off)))
		}
		if off&3 == 0 {
			// 4-aligned 64-bit access: two word atomics; may tear between
			// halves (documented model: atomicity is per word).
			lo := uint64(le32(atomic.LoadUint32(ptr32(view, off))))
			hi := uint64(le32(atomic.LoadUint32(ptr32(view, off+4))))
			return lo | hi<<32
		}
	case 1:
		w := off &^ 3
		v := le32(atomic.LoadUint32(ptr32(view, w)))
		return uint64(v>>(8*(off-w))) & 0xFF
	case 2:
		if w := off &^ 3; off-w <= 2 {
			v := le32(atomic.LoadUint32(ptr32(view, w)))
			return uint64(v>>(8*(off-w))) & 0xFFFF
		}
	default:
		panic(fmt.Sprintf("mem: bad atomic access size %d", size))
	}
	return loadSpan(view, off, off+uint64(size))
}

// loadSpan assembles the little-endian value of [start, end) with exactly
// one atomic load per containing word, so a misaligned access can tear
// only at word boundaries — never within a word.
func loadSpan(view []byte, start, end uint64) uint64 {
	var v uint64
	for w := start &^ 3; w < end; w += 4 {
		word := le32(atomic.LoadUint32(ptr32(view, w)))
		lo, hi := max(w, start), min(w+4, end)
		for i := lo; i < hi; i++ {
			v |= uint64(word>>(8*(i-w))&0xFF) << (8 * (i - start))
		}
	}
	return v
}

// AtomicStoreLE stores size little-endian bytes of val at off, with the
// same contract as AtomicLoadLE. Sub-word stores CAS their containing
// word so concurrent neighbouring-byte stores compose.
func AtomicStoreLE(view []byte, off uint64, size int, val uint64) {
	switch size {
	case 4:
		if off&3 == 0 {
			atomic.StoreUint32(ptr32(view, off), le32(uint32(val)))
			return
		}
	case 8:
		if off&7 == 0 {
			atomic.StoreUint64(ptr64(view, off), le64(val))
			return
		}
		if off&3 == 0 {
			atomic.StoreUint32(ptr32(view, off), le32(uint32(val)))
			atomic.StoreUint32(ptr32(view, off+4), le32(uint32(val>>32)))
			return
		}
	case 1:
		w := off &^ 3
		sh := 8 * (off - w)
		rmw32(view, w, 0xFF<<sh, uint32(val&0xFF)<<sh)
		return
	case 2:
		if w := off &^ 3; off-w <= 2 {
			sh := 8 * (off - w)
			rmw32(view, w, 0xFFFF<<sh, uint32(val&0xFFFF)<<sh)
			return
		}
	default:
		panic(fmt.Sprintf("mem: bad atomic access size %d", size))
	}
	storeSpan(view, off, off+uint64(size), val)
}

// storeSpan writes the little-endian value into [start, end) with exactly
// one atomic operation per containing word (a plain store for fully
// covered words, a CAS otherwise), mirroring loadSpan's word granularity.
func storeSpan(view []byte, start, end uint64, val uint64) {
	for w := start &^ 3; w < end; w += 4 {
		lo, hi := max(w, start), min(w+4, end)
		var mask, bits uint32
		for i := lo; i < hi; i++ {
			mask |= 0xFF << (8 * (i - w))
			bits |= uint32(val>>(8*(i-start))&0xFF) << (8 * (i - w))
		}
		if mask == ^uint32(0) {
			atomic.StoreUint32(ptr32(view, w), le32(bits))
		} else {
			rmw32(view, w, mask, bits)
		}
	}
}

// AtomicReadBytes copies len(dst) bytes out of the view starting at off,
// reading each touched host word atomically (bulk reads of guest memory
// that shader cores may be writing concurrently: descriptors, shader
// binaries, uniform arrays).
func AtomicReadBytes(view []byte, off uint64, dst []byte) {
	n := uint64(len(dst))
	i := uint64(0)
	if n > 0 && (off+i)&3 != 0 { // head: one load of the partial word
		w := (off + i) &^ 3
		v := le32(atomic.LoadUint32(ptr32(view, w)))
		for ; i < n && (off+i)&3 != 0; i++ {
			dst[i] = byte(v >> (8 * (off + i - w)))
		}
	}
	for ; i+4 <= n; i += 4 { // aligned body
		v := le32(atomic.LoadUint32(ptr32(view, off+i)))
		dst[i] = byte(v)
		dst[i+1] = byte(v >> 8)
		dst[i+2] = byte(v >> 16)
		dst[i+3] = byte(v >> 24)
	}
	if i < n { // tail: one load of the partial word
		v := le32(atomic.LoadUint32(ptr32(view, off+i)))
		for ; i < n; i++ {
			dst[i] = byte(v)
			v >>= 8
		}
	}
}

// AtomicWriteBytes copies src into the view starting at off. Whole words
// are stored atomically; partial words at the edges CAS so concurrent
// neighbouring stores are preserved.
func AtomicWriteBytes(view []byte, off uint64, src []byte) {
	n := uint64(len(src))
	i := uint64(0)
	if n > 0 && (off+i)&3 != 0 { // head: one CAS of the partial word
		w := (off + i) &^ 3
		var mask, bits uint32
		for ; i < n && (off+i)&3 != 0; i++ {
			sh := 8 * (off + i - w)
			mask |= 0xFF << sh
			bits |= uint32(src[i]) << sh
		}
		rmw32(view, w, mask, bits)
	}
	for ; i+4 <= n; i += 4 { // aligned body
		v := uint32(src[i]) | uint32(src[i+1])<<8 | uint32(src[i+2])<<16 | uint32(src[i+3])<<24
		atomic.StoreUint32(ptr32(view, off+i), le32(v))
	}
	if i < n { // tail: one CAS of the partial word
		w := off + i
		var mask, bits uint32
		for sh := uint64(0); i < n; i++ {
			mask |= 0xFF << sh
			bits |= uint32(src[i]) << sh
			sh += 8
		}
		rmw32(view, w, mask, bits)
	}
}

// fenceWord backs the guest memory fences. It exists only to give the
// fences a host synchronisation object; no data lives here.
var fenceWord atomic.Uint32

// Fence is a full guest memory fence (sequentially consistent read-
// modify-write). The GPU issues it at job entry/exit on each virtual core
// and at guest BARRIER instructions, making guest-visible ordering at
// those rendezvous points explicit rather than an accident of the host
// scheduler. Workgroup boundaries deliberately carry no fence (see
// Device.execJob).
func Fence() {
	fenceWord.Add(0)
}

// LoadFence marks a clause boundary in the guest memory model. It is an
// annotation, not a synchronisation primitive: a load of fenceWord
// creates no happens-before edge of its own, and the actual guarantee —
// a clause observes every guest store that completed before it started —
// comes from the shared accessors being sequentially-consistent host
// atomics. The marker keeps the clause granularity visible in the code
// (and in profiles) at the cost of one uncontended load; if the
// accessors are ever weakened below seq-cst, this must become a real
// fence.
func LoadFence() {
	_ = fenceWord.Load()
}

// AtomicRead is the atomic variant of Read for shared access paths. It
// operates on the word-extended backing store (RAM.words) so accesses at
// the very end of an odd-sized region still have a full containing word.
// On a copy-on-write fork still-shared pages are served from the image
// with the same word-granular atomicity.
func (r *RAM) AtomicRead(addr uint64, size int) (uint64, error) {
	if !r.Contains(addr, size) {
		return 0, &BusError{Addr: addr, Size: size, Kind: Read, Why: "outside RAM"}
	}
	if r.cow != nil {
		return r.cowAtomicRead(addr-r.base, size), nil
	}
	return AtomicLoadLE(r.words, addr-r.base, size), nil
}

// AtomicWrite is the atomic variant of Write for shared access paths.
func (r *RAM) AtomicWrite(addr uint64, size int, val uint64) error {
	if !r.Contains(addr, size) {
		return &BusError{Addr: addr, Size: size, Kind: Write, Why: "outside RAM"}
	}
	off := addr - r.base
	if r.cow != nil {
		r.privatizeRange(off, uint64(size))
	}
	AtomicStoreLE(r.words, off, size, val)
	r.markDirty(addr, size)
	return nil
}

// AtomicRead performs a physical read with word-granular atomicity on
// RAM. Device registers implement their own synchronisation (the Device
// contract requires tolerating concurrent calls), so MMIO routes to the
// device model unchanged.
func (b *Bus) AtomicRead(addr uint64, size int) (uint64, error) {
	if b.ram.Contains(addr, size) {
		return b.ram.AtomicRead(addr, size)
	}
	if m, ok := b.findDevice(addr); ok {
		return m.dev.ReadReg(addr-m.base, size)
	}
	return 0, &BusError{Addr: addr, Size: size, Kind: Read, Why: "unmapped"}
}

// AtomicWrite performs a physical write with word-granular atomicity on
// RAM (see AtomicRead).
func (b *Bus) AtomicWrite(addr uint64, size int, val uint64) error {
	if b.ram.Contains(addr, size) {
		return b.ram.AtomicWrite(addr, size, val)
	}
	if m, ok := b.findDevice(addr); ok {
		return m.dev.WriteReg(addr-m.base, size, val)
	}
	return &BusError{Addr: addr, Size: size, Kind: Write, Why: "unmapped"}
}

// AtomicReadBytes copies a physical RAM range with per-word atomicity.
func (b *Bus) AtomicReadBytes(addr uint64, dst []byte) error {
	if !b.ram.Contains(addr, len(dst)) {
		return &BusError{Addr: addr, Size: len(dst), Kind: Read, Why: "bulk access outside RAM"}
	}
	b.ram.atomicReadBytesCow(addr-b.ram.base, dst)
	return nil
}

// AtomicWriteBytes copies bytes into RAM with per-word atomicity.
func (b *Bus) AtomicWriteBytes(addr uint64, src []byte) error {
	if !b.ram.Contains(addr, len(src)) {
		return &BusError{Addr: addr, Size: len(src), Kind: Write, Why: "bulk access outside RAM"}
	}
	if len(src) == 0 {
		return nil
	}
	if b.ram.cow != nil {
		b.ram.privatizeRange(addr-b.ram.base, uint64(len(src)))
	}
	AtomicWriteBytes(b.ram.words, addr-b.ram.base, src)
	b.ram.markDirty(addr, len(src))
	return nil
}
