package mmu

import (
	"fmt"

	"mobilesim/internal/mem"
)

// AddressSpace owns a page-table tree and provides map/unmap operations.
// The guest boot code uses one for the CPU and the GPU driver builds one
// per GPU address space (the Bifrost MMU's AS0), exactly as the vendor
// driver programs translation table base registers.
type AddressSpace struct {
	bus   *mem.Bus
	alloc *mem.PageAllocator
	root  uint64
	pages int // leaf mappings installed
}

// NewAddressSpace allocates an empty top-level table.
func NewAddressSpace(bus *mem.Bus, alloc *mem.PageAllocator) (*AddressSpace, error) {
	root, err := allocTable(bus, alloc)
	if err != nil {
		return nil, err
	}
	return &AddressSpace{bus: bus, alloc: alloc, root: root}, nil
}

func allocTable(bus *mem.Bus, alloc *mem.PageAllocator) (uint64, error) {
	p, err := alloc.AllocPage()
	if err != nil {
		return 0, err
	}
	mem.ZeroPage(bus.RAM(), p)
	return p, nil
}

// RestoreAddressSpace reconstructs an address space around an existing
// page-table tree — the snapshot/restore path: the tables themselves live
// in restored (or copy-on-write forked) RAM, so only the root pointer and
// the mapping count need to be carried over. No memory is touched.
func RestoreAddressSpace(bus *mem.Bus, alloc *mem.PageAllocator, root uint64, pages int) (*AddressSpace, error) {
	if root%mem.PageSize != 0 || root == 0 {
		return nil, fmt.Errorf("mmu: bad restored table root %#x", root)
	}
	return &AddressSpace{bus: bus, alloc: alloc, root: root, pages: pages}, nil
}

// Root returns the physical base of the top-level table, suitable for a
// translation table base register.
func (as *AddressSpace) Root() uint64 { return as.root }

// MappedPages returns the number of leaf mappings currently installed.
func (as *AddressSpace) MappedPages() int { return as.pages }

// Map installs a single-page translation va -> pa with the given PermR/W/X
// bits. Both addresses must be page aligned.
func (as *AddressSpace) Map(va, pa uint64, perms uint64) error {
	if va%mem.PageSize != 0 || pa%mem.PageSize != 0 {
		return fmt.Errorf("mmu: unaligned mapping %#x -> %#x", va, pa)
	}
	if perms&^uint64(permMask) != 0 || perms == 0 {
		return fmt.Errorf("mmu: bad permission bits %#x", perms)
	}
	table := as.root
	for level := levels - 1; level > 0; level-- {
		entryAddr := table + vaIndex(va, level)*8
		pte, err := as.bus.Read(entryAddr, 8)
		if err != nil {
			return err
		}
		if pte&pteValid == 0 {
			next, err := allocTable(as.bus, as.alloc)
			if err != nil {
				return err
			}
			if err := as.bus.Write(entryAddr, 8, next|pteValid); err != nil {
				return err
			}
			table = next
			continue
		}
		table = pte & pteAddrMask
	}
	entryAddr := table + vaIndex(va, 0)*8
	if err := as.bus.Write(entryAddr, 8, (pa&pteAddrMask)|perms|pteLeaf|pteValid); err != nil {
		return err
	}
	as.pages++
	return nil
}

// MapRange maps size bytes (rounded up to pages) starting at va to the
// physically contiguous range starting at pa.
func (as *AddressSpace) MapRange(va, pa, size uint64, perms uint64) error {
	for off := uint64(0); off < size; off += mem.PageSize {
		if err := as.Map(va+off, pa+off, perms); err != nil {
			return err
		}
	}
	return nil
}

// Unmap removes the translation for one page. Missing mappings are ignored
// (idempotent, like the vendor driver's region teardown).
func (as *AddressSpace) Unmap(va uint64) error {
	table := as.root
	for level := levels - 1; level > 0; level-- {
		pte, err := as.bus.Read(table+vaIndex(va, level)*8, 8)
		if err != nil {
			return err
		}
		if pte&pteValid == 0 {
			return nil
		}
		table = pte & pteAddrMask
	}
	entryAddr := table + vaIndex(va, 0)*8
	pte, err := as.bus.Read(entryAddr, 8)
	if err != nil {
		return err
	}
	if pte&pteValid != 0 {
		as.pages--
	}
	return as.bus.Write(entryAddr, 8, 0)
}

// Lookup translates va without permission checks, for driver-side
// debugging. ok is false when unmapped.
func (as *AddressSpace) Lookup(va uint64) (pa uint64, perms uint64, ok bool) {
	table := as.root
	for level := levels - 1; level > 0; level-- {
		pte, err := as.bus.Read(table+vaIndex(va, level)*8, 8)
		if err != nil || pte&pteValid == 0 {
			return 0, 0, false
		}
		table = pte & pteAddrMask
	}
	pte, err := as.bus.Read(table+vaIndex(va, 0)*8, 8)
	if err != nil || pte&pteValid == 0 {
		return 0, 0, false
	}
	return (pte & pteAddrMask) | (va & mem.PageMask), pte & permMask, true
}
