package mmu

import (
	"testing"
	"testing/quick"

	"mobilesim/internal/mem"
)

func newTestEnv(t *testing.T) (*mem.Bus, *mem.PageAllocator, *AddressSpace) {
	t.Helper()
	bus := mem.NewBus(mem.NewRAM(0, 16<<20))
	alloc, err := mem.NewPageAllocator(1<<20, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	as, err := NewAddressSpace(bus, alloc)
	if err != nil {
		t.Fatal(err)
	}
	return bus, alloc, as
}

func TestIdentityWhenDisabled(t *testing.T) {
	bus := mem.NewBus(mem.NewRAM(0, 1<<20))
	w := NewWalker(bus)
	pa, fault := w.Translate(0x1234, mem.Read)
	if fault != nil || pa != 0x1234 {
		t.Fatalf("disabled walker: pa=%#x fault=%v", pa, fault)
	}
}

func TestMapTranslate(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va, pa = 0x4000_0000, 0x0020_0000
	if err := as.Map(va, pa, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())

	got, fault := w.Translate(va+0x123, mem.Read)
	if fault != nil {
		t.Fatalf("translate: %v", fault)
	}
	if got != pa+0x123 {
		t.Errorf("pa = %#x, want %#x", got, pa+0x123)
	}
}

func TestPermissionFaults(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va, pa = 0x1000, 0x0020_0000
	if err := as.Map(va, pa, PermR); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())

	if _, fault := w.Translate(va, mem.Read); fault != nil {
		t.Errorf("read should be allowed: %v", fault)
	}
	if _, fault := w.Translate(va, mem.Write); fault == nil || fault.Type != FaultPermission {
		t.Errorf("write should permission-fault, got %v", fault)
	}
	if _, fault := w.Translate(va, mem.Execute); fault == nil || fault.Type != FaultPermission {
		t.Errorf("exec should permission-fault, got %v", fault)
	}
}

func TestTranslationFault(t *testing.T) {
	bus, _, as := newTestEnv(t)
	w := NewWalker(bus)
	w.SetRoot(as.Root())
	_, fault := w.Translate(0xdead_0000, mem.Read)
	if fault == nil || fault.Type != FaultTranslation {
		t.Fatalf("expected translation fault, got %v", fault)
	}
	if fault.VA != 0xdead_0000 {
		t.Errorf("fault VA = %#x", fault.VA)
	}
}

func TestTLBCachesAndFlushes(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va, pa = 0x1000, 0x0020_0000
	if err := as.Map(va, pa, PermR); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())

	for i := 0; i < 10; i++ {
		if _, fault := w.Translate(va, mem.Read); fault != nil {
			t.Fatal(fault)
		}
	}
	if w.Walks != 1 {
		t.Errorf("walks = %d, want 1 (TLB should cache)", w.Walks)
	}
	if w.Hits != 9 {
		t.Errorf("hits = %d, want 9", w.Hits)
	}
	w.FlushTLB()
	if _, fault := w.Translate(va, mem.Read); fault != nil {
		t.Fatal(fault)
	}
	if w.Walks != 2 {
		t.Errorf("walks after flush = %d, want 2", w.Walks)
	}
}

func TestTLBPermissionCheckedOnHit(t *testing.T) {
	bus, _, as := newTestEnv(t)
	if err := as.Map(0x1000, 0x0020_0000, PermR); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())
	if _, fault := w.Translate(0x1000, mem.Read); fault != nil {
		t.Fatal(fault)
	}
	// Now hit the TLB with a disallowed kind.
	if _, fault := w.Translate(0x1000, mem.Write); fault == nil || fault.Type != FaultPermission {
		t.Fatalf("TLB hit skipped permission check: %v", fault)
	}
}

func TestUnmap(t *testing.T) {
	bus, _, as := newTestEnv(t)
	if err := as.Map(0x1000, 0x0020_0000, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	if as.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d", as.MappedPages())
	}
	if err := as.Unmap(0x1000); err != nil {
		t.Fatal(err)
	}
	if as.MappedPages() != 0 {
		t.Fatalf("MappedPages after unmap = %d", as.MappedPages())
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())
	if _, fault := w.Translate(0x1000, mem.Read); fault == nil {
		t.Error("unmapped VA should fault")
	}
	// Unmapping twice is fine.
	if err := as.Unmap(0x1000); err != nil {
		t.Errorf("double unmap: %v", err)
	}
}

func TestMapRangeAndLookup(t *testing.T) {
	_, _, as := newTestEnv(t)
	if err := as.MapRange(0x10000, 0x0030_0000, 4*mem.PageSize, PermR|PermW|PermX); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		pa, perms, ok := as.Lookup(0x10000 + i*mem.PageSize + 4)
		if !ok {
			t.Fatalf("page %d not mapped", i)
		}
		if pa != 0x0030_0000+i*mem.PageSize+4 {
			t.Errorf("page %d: pa=%#x", i, pa)
		}
		if perms != PermR|PermW|PermX {
			t.Errorf("page %d: perms=%#x", i, perms)
		}
	}
	if _, _, ok := as.Lookup(0x10000 + 4*mem.PageSize); ok {
		t.Error("page past range should not be mapped")
	}
}

func TestTouchedPages(t *testing.T) {
	bus, _, as := newTestEnv(t)
	if err := as.MapRange(0, 0x0030_0000, 8*mem.PageSize, PermR); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())
	w.ResetTouched()
	for i := 0; i < 3; i++ {
		for p := uint64(0); p < 5; p++ {
			if _, fault := w.Translate(p*mem.PageSize, mem.Read); fault != nil {
				t.Fatal(fault)
			}
		}
	}
	if w.TouchedCount() != 5 {
		t.Errorf("touched pages = %d, want 5 (distinct)", w.TouchedCount())
	}
	seen := map[uint64]bool{}
	w.ForEachTouched(func(vpn uint64) { seen[vpn] = true })
	for p := uint64(0); p < 5; p++ {
		if !seen[p] {
			t.Errorf("vpn %d missing from ForEachTouched", p)
		}
	}
	if len(seen) != 5 {
		t.Errorf("ForEachTouched visited %d pages, want 5", len(seen))
	}
}

// TestTouchedRecordedOnWalkOnly pins the tentpole invariant: the distinct-
// page count is identical whether accesses go through Translate or the
// Load/Store fast path, because the first access to any page always walks.
func TestTouchedRecordedOnWalkOnly(t *testing.T) {
	bus, _, as := newTestEnv(t)
	if err := as.MapRange(0, 0x0030_0000, 8*mem.PageSize, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())
	w.ResetTouched()
	for i := 0; i < 100; i++ {
		for p := uint64(0); p < 6; p++ {
			if _, err := w.Load(p*mem.PageSize+8, 4, mem.Read); err != nil {
				t.Fatal(err)
			}
		}
	}
	if w.TouchedCount() != 6 {
		t.Errorf("touched pages = %d, want 6", w.TouchedCount())
	}
	if w.Walks != 6 {
		t.Errorf("walks = %d, want 6 (one per page)", w.Walks)
	}
	if w.Hits != 594 {
		t.Errorf("hits = %d, want 594", w.Hits)
	}
}

func TestUnalignedAndBadPermsRejected(t *testing.T) {
	_, _, as := newTestEnv(t)
	if err := as.Map(0x1001, 0x2000, PermR); err == nil {
		t.Error("unaligned VA accepted")
	}
	if err := as.Map(0x1000, 0x2001, PermR); err == nil {
		t.Error("unaligned PA accepted")
	}
	if err := as.Map(0x1000, 0x2000, 0); err == nil {
		t.Error("empty perms accepted")
	}
}

// Property: for any set of page mappings, translation of any offset within
// a mapped page returns the mapped frame plus that offset.
func TestTranslateOffsetsProperty(t *testing.T) {
	bus, _, as := newTestEnv(t)
	// Map 64 pages across a sparse VA range.
	for i := uint64(0); i < 64; i++ {
		va := i * 0x40_0000 // spread across level-1 entries
		pa := 0x0040_0000 + i*mem.PageSize
		if err := as.Map(va, pa, PermR|PermW); err != nil {
			t.Fatal(err)
		}
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())
	f := func(page uint8, off uint16) bool {
		i := uint64(page) % 64
		o := uint64(off) % mem.PageSize
		pa, fault := w.Translate(i*0x40_0000+o, mem.Read)
		return fault == nil && pa == 0x0040_0000+i*mem.PageSize+o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- Host-slice fast path (Load/Store/ReadBytes/WriteBytes) ----------------

// fastEnv maps a few RAM pages plus one page pointing at an MMIO frame and
// returns the bus, address space and a primed walker.
const testDevBase = 0x4000_0000 // outside the 16 MiB test RAM

// recordingDev counts register accesses so tests can prove MMIO is never
// served from cached byte views.
type recordingDev struct {
	reads, writes int
	last          uint64
}

func (d *recordingDev) ReadReg(off uint64, size int) (uint64, error) {
	d.reads++
	return 0x5150 + off, nil
}

func (d *recordingDev) WriteReg(off uint64, size int, val uint64) error {
	d.writes++
	d.last = val
	return nil
}

func TestLoadStoreFastPath(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va, pa = 0x4000_0000, 0x0020_0000
	if err := as.MapRange(va, pa, 2*mem.PageSize, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())

	cases := []struct {
		off  uint64
		size int
		val  uint64
	}{
		{0, 1, 0xAB},
		{2, 2, 0xBEEF},
		{4, 4, 0xDEADBEEF},
		{8, 8, 0x0123_4567_89AB_CDEF},
		{mem.PageSize + 16, 4, 0x42},
	}
	for _, c := range cases {
		if err := w.Store(va+c.off, c.size, c.val); err != nil {
			t.Fatalf("store %d@%#x: %v", c.size, c.off, err)
		}
		got, err := w.Load(va+c.off, c.size, mem.Read)
		if err != nil {
			t.Fatalf("load %d@%#x: %v", c.size, c.off, err)
		}
		if got != c.val {
			t.Errorf("round trip %d@%#x = %#x, want %#x", c.size, c.off, got, c.val)
		}
		// The fast path must mutate the same physical bytes the bus sees.
		busVal, berr := bus.Read(pa+c.off, c.size)
		if berr != nil || busVal != c.val {
			t.Errorf("bus sees %#x (err %v), want %#x", busVal, berr, c.val)
		}
	}
	// Every access above was 1 hit or 1 walk, never both.
	total := w.Hits + w.Walks
	if total != uint64(2*len(cases)) {
		t.Errorf("hits+walks = %d, want %d", total, 2*len(cases))
	}
}

func TestLoadIdentityWhenDisabled(t *testing.T) {
	bus := mem.NewBus(mem.NewRAM(0, 1<<20))
	w := NewWalker(bus)
	if err := w.Store(0x1234, 4, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	v, err := w.Load(0x1234, 4, mem.Read)
	if err != nil || v != 0xCAFE {
		t.Fatalf("identity load = %#x, %v", v, err)
	}
	if w.Hits != 0 || w.Walks != 0 {
		t.Errorf("disabled walker counted hits=%d walks=%d", w.Hits, w.Walks)
	}
}

// TestFastPathPermissionFaults verifies the fast path raises the same
// permission faults as Translate, including after the TLB is primed by an
// allowed access kind.
func TestFastPathPermissionFaults(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va = 0x5000
	if err := as.Map(va, 0x0020_0000, PermR); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())

	// Prime the TLB (and its cached slice) with an allowed read.
	if _, err := w.Load(va, 4, mem.Read); err != nil {
		t.Fatal(err)
	}
	// A store through the now-hot entry must still fault.
	err := w.Store(va, 4, 1)
	f, ok := err.(*Fault)
	if !ok || f.Type != FaultPermission || f.Kind != mem.Write {
		t.Fatalf("store on read-only page: %v, want permission fault", err)
	}
	// Execute is also forbidden.
	_, err = w.Load(va, 4, mem.Execute)
	if f, ok := err.(*Fault); !ok || f.Type != FaultPermission {
		t.Fatalf("exec on read-only page: %v, want permission fault", err)
	}
	// Unmapped VA faults with translation.
	_, err = w.Load(0xdead_0000, 4, mem.Read)
	if f, ok := err.(*Fault); !ok || f.Type != FaultTranslation {
		t.Fatalf("unmapped load: %v, want translation fault", err)
	}
}

// TestFastPathPageCross verifies page-crossing accesses match the
// Translate+Bus semantics exactly (translate the first byte's page, access
// physically contiguous bytes from there).
func TestFastPathPageCross(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va, pa = 0x10000, 0x0020_0000
	// Two virtual pages mapped to two physically contiguous frames.
	if err := as.MapRange(va, pa, 2*mem.PageSize, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())

	cross := uint64(va + mem.PageSize - 4) // 8-byte access spanning pages
	const want = 0x1122_3344_5566_7788
	if err := w.Store(cross, 8, want); err != nil {
		t.Fatal(err)
	}
	got, err := w.Load(cross, 8, mem.Read)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("page-crossing load = %#x, want %#x", got, want)
	}
	// Reference semantics: same bytes as Translate + bus access.
	paRef, fault := w.Translate(cross, mem.Read)
	if fault != nil {
		t.Fatal(fault)
	}
	ref, err := bus.Read(paRef, 8)
	if err != nil || ref != want {
		t.Errorf("reference read = %#x (err %v), want %#x", ref, err, want)
	}
}

// TestMMIONeverCached maps a virtual page onto a device frame and checks
// every access reaches the device model (no cached-slice shortcuts).
func TestMMIONeverCached(t *testing.T) {
	bus, _, as := newTestEnv(t)
	dev := &recordingDev{}
	if err := bus.MapDevice("probe", testDevBase, mem.PageSize, dev); err != nil {
		t.Fatal(err)
	}
	const va = 0x9000
	if err := as.Map(va, testDevBase, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())

	for i := 0; i < 3; i++ {
		v, err := w.Load(va+8, 4, mem.Read)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0x5150+8 {
			t.Errorf("device read = %#x", v)
		}
	}
	if dev.reads != 3 {
		t.Errorf("device saw %d reads, want 3 (MMIO must never be cached)", dev.reads)
	}
	if err := w.Store(va+16, 4, 77); err != nil {
		t.Fatal(err)
	}
	if dev.writes != 1 || dev.last != 77 {
		t.Errorf("device saw %d writes (last %#x), want 1 write of 77", dev.writes, dev.last)
	}
	// TLB entry exists (hits counted) but with no cached page.
	if w.Hits == 0 {
		t.Error("MMIO accesses should still hit the TLB after the first walk")
	}
}

// TestSliceInvalidation verifies SetRoot and FlushTLB drop cached page
// views: remapping a VA to a different frame must be visible immediately
// after the flush that hardware requires.
func TestSliceInvalidation(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va, paA, paB = 0x7000, 0x0020_0000, 0x0030_0000
	if err := as.Map(va, paA, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())

	if err := w.Store(va, 4, 0xAAAA); err != nil {
		t.Fatal(err)
	}
	// Remap the page to frame B behind the TLB's back, then flush.
	if err := as.Unmap(va); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(va, paB, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	if err := bus.Write(paB, 4, 0xBBBB); err != nil {
		t.Fatal(err)
	}
	w.FlushTLB()
	v, err := w.Load(va, 4, mem.Read)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xBBBB {
		t.Errorf("after FlushTLB load = %#x, want 0xBBBB (stale slice served)", v)
	}

	// SetRoot must flush too: dropping to identity mode reads physical
	// addresses directly, with no stale per-page views in the way.
	w.SetRoot(0)
	if v, err := w.Load(paB, 4, mem.Read); err != nil || v != 0xBBBB {
		t.Errorf("identity after SetRoot(0): %#x, %v", v, err)
	}
}

// TestBulkReadWriteBytes round-trips a buffer spanning several pages whose
// frames are deliberately non-contiguous.
func TestBulkReadWriteBytes(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va = 0x2_0000
	frames := []uint64{0x0050_0000, 0x0030_0000, 0x0070_0000}
	for i, pa := range frames {
		if err := as.Map(va+uint64(i)*mem.PageSize, pa, PermR|PermW); err != nil {
			t.Fatal(err)
		}
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())

	src := make([]byte, 2*mem.PageSize+512)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := w.WriteBytes(va+100, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := w.ReadBytes(va+100, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("byte %d: got %#x want %#x", i, dst[i], src[i])
		}
	}
	// Fault propagation: writing past the mapped range.
	if err := w.WriteBytes(va+3*mem.PageSize-4, make([]byte, 64)); err == nil {
		t.Error("bulk write past mapping should fault")
	}
}

// TestLoadHitPathZeroAllocs pins the acceptance criterion: a TLB-hit
// load/store allocates nothing.
func TestLoadHitPathZeroAllocs(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va = 0x8000
	if err := as.Map(va, 0x0020_0000, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())
	w.ResetTouched()
	if _, err := w.Load(va, 4, mem.Read); err != nil { // prime
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := w.Load(va+8, 4, mem.Read); err != nil {
			t.Fatal(err)
		}
		if err := w.Store(va+16, 4, 7); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("TLB-hit load/store allocates %v/op, want 0", allocs)
	}
}

// BenchmarkWalkerLoadHit measures the raw fast-path latency (ns/op and
// allocs/op on the TLB-hit access path).
func BenchmarkWalkerLoadHit(b *testing.B) {
	bus := mem.NewBus(mem.NewRAM(0, 16<<20))
	alloc, err := mem.NewPageAllocator(1<<20, 8<<20)
	if err != nil {
		b.Fatal(err)
	}
	as, err := NewAddressSpace(bus, alloc)
	if err != nil {
		b.Fatal(err)
	}
	const va = 0x8000
	if err := as.Map(va, 0x0020_0000, PermR|PermW); err != nil {
		b.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())
	w.ResetTouched()
	if _, err := w.Load(va, 4, mem.Read); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := w.Load(va+uint64(i)%1024, 4, mem.Read)
		if err != nil {
			b.Fatal(err)
		}
		_ = v
	}
}

// TestSharedWalkerMatchesPlain runs the fast-path edge cases through a
// shared-mode walker and checks bit-identical results with the plain
// path: same values, same fault behaviour, same hit/walk accounting.
func TestSharedWalkerMatchesPlain(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va, pa = 0x4000_0000, 0x0020_0000
	if err := as.MapRange(va, pa, 2*mem.PageSize, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	w := NewSharedWalker(bus)
	if !w.Shared() {
		t.Fatal("NewSharedWalker not shared")
	}
	w.SetRoot(as.Root())

	cases := []struct {
		off  uint64
		size int
		val  uint64
	}{
		{0, 1, 0xAB},
		{1, 1, 0xCD},                                 // sub-word, mid-word byte
		{2, 2, 0xBEEF},                               // 16-bit in upper half-word
		{5, 2, 0x1234},                               // 16-bit straddling no word boundary (bytes 5-6)
		{7, 2, 0x5678},                               // 16-bit crossing a word boundary
		{4, 4, 0xDEADBEEF},                           // aligned word
		{9, 4, 0xCAFEBABE},                           // misaligned word
		{8, 8, 0x0123_4567_89AB_CDEF},                // aligned dword
		{20, 8, 0x1111_2222_3333_4444},               // 4-aligned dword
		{33, 8, 0x5555_6666_7777_8888},               // misaligned dword
		{mem.PageSize - 4, 8, 0x9999_AAAA_BBBB_CCCC}, // page-crossing dword
		{mem.PageSize + 16, 4, 0x42},
	}
	for _, c := range cases {
		if err := w.Store(va+c.off, c.size, c.val); err != nil {
			t.Fatalf("store %d@%#x: %v", c.size, c.off, err)
		}
		got, err := w.Load(va+c.off, c.size, mem.Read)
		if err != nil {
			t.Fatalf("load %d@%#x: %v", c.size, c.off, err)
		}
		if got != c.val {
			t.Errorf("round trip %d@%#x = %#x, want %#x", c.size, c.off, got, c.val)
		}
		// Shared stores must mutate the same physical bytes the plain bus
		// path sees, so plain readers (driver copies after a job) agree.
		busVal, berr := bus.Read(pa+c.off, c.size)
		if berr != nil || busVal != c.val {
			t.Errorf("bus sees %#x (err %v), want %#x", busVal, berr, c.val)
		}
	}
	if total := w.Hits + w.Walks; total != uint64(2*len(cases)) {
		t.Errorf("hits+walks = %d, want %d", total, 2*len(cases))
	}

	// Bulk paths, page-crossing.
	src := make([]byte, 3*mem.PageSize/2)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := w.WriteBytes(va+5, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := w.ReadBytes(va+5, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("bulk byte %d = %#x, want %#x", i, dst[i], src[i])
		}
	}

	// Permission faults are mode-independent.
	if _, err := w.Load(va, 4, mem.Execute); err == nil {
		t.Error("shared exec load should permission-fault")
	}
	if _, err := w.Load(0xdead_0000, 4, mem.Read); err == nil {
		t.Error("shared unmapped load should fault")
	}
}

// TestSharedWalkersConcurrentSamePage is the core race-clean contract:
// independent shared walkers (one per virtual core, as the GPU dispatches
// them) hammer the same guest words concurrently. Run under -race this
// fails loudly if any access path falls back to plain host memory ops.
func TestSharedWalkersConcurrentSamePage(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va = 0x4000_0000
	if err := as.MapRange(va, 0x0020_0000, mem.PageSize, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			w := NewSharedWalker(bus)
			w.SetRoot(as.Root())
			for i := 0; i < 300; i++ {
				// Same word for everyone (benign guest race)...
				if err := w.Store(va, 4, uint64(g)); err != nil {
					done <- err
					return
				}
				if _, err := w.Load(va, 4, mem.Read); err != nil {
					done <- err
					return
				}
				// ...neighbouring bytes of one word (sub-word CAS path)...
				if err := w.Store(va+8+uint64(g&3), 1, uint64(g)); err != nil {
					done <- err
					return
				}
				// ...and bulk traffic over the same page.
				var buf [64]byte
				if err := w.ReadBytes(va+64, buf[:]); err != nil {
					done <- err
					return
				}
				if err := w.WriteBytes(va+128+uint64(g)*64, buf[:]); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	check := NewWalker(bus)
	check.SetRoot(as.Root())
	for lane := uint64(0); lane < 4; lane++ {
		v, err := check.Load(va+8+lane, 1, mem.Read)
		if err != nil {
			t.Fatal(err)
		}
		if v&3 != lane {
			t.Errorf("neighbouring byte %d lost: %#x", lane, v)
		}
	}
}

// TestSharedLoadHitPathZeroAllocs pins the shared fast path to zero
// allocations, same as the plain one: atomics must not cost heap.
func TestSharedLoadHitPathZeroAllocs(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va = 0x8000
	if err := as.Map(va, 0x0020_0000, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	w := NewSharedWalker(bus)
	w.SetRoot(as.Root())
	w.ResetTouched()
	if _, err := w.Load(va, 4, mem.Read); err != nil { // prime
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := w.Load(va+8, 4, mem.Read); err != nil {
			t.Fatal(err)
		}
		if err := w.Store(va+16, 4, 7); err != nil {
			t.Fatal(err)
		}
		if err := w.Store(va+21, 1, 9); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("shared TLB-hit load/store allocates %v/op, want 0", allocs)
	}
}

// BenchmarkSharedWalkerLoadHit is the shared-mode companion of
// BenchmarkWalkerLoadHit: the GPU's hot translate-and-access path.
func BenchmarkSharedWalkerLoadHit(b *testing.B) {
	bus := mem.NewBus(mem.NewRAM(0, 16<<20))
	alloc, err := mem.NewPageAllocator(1<<20, 8<<20)
	if err != nil {
		b.Fatal(err)
	}
	as, err := NewAddressSpace(bus, alloc)
	if err != nil {
		b.Fatal(err)
	}
	const va = 0x8000
	if err := as.Map(va, 0x0020_0000, PermR|PermW); err != nil {
		b.Fatal(err)
	}
	w := NewSharedWalker(bus)
	w.SetRoot(as.Root())
	w.ResetTouched()
	if _, err := w.Load(va, 4, mem.Read); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := w.Load(va+uint64(i)%1024, 4, mem.Read)
		if err != nil {
			b.Fatal(err)
		}
		_ = v
	}
}
