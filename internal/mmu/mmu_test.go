package mmu

import (
	"testing"
	"testing/quick"

	"mobilesim/internal/mem"
)

func newTestEnv(t *testing.T) (*mem.Bus, *mem.PageAllocator, *AddressSpace) {
	t.Helper()
	bus := mem.NewBus(mem.NewRAM(0, 16<<20))
	alloc, err := mem.NewPageAllocator(1<<20, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	as, err := NewAddressSpace(bus, alloc)
	if err != nil {
		t.Fatal(err)
	}
	return bus, alloc, as
}

func TestIdentityWhenDisabled(t *testing.T) {
	bus := mem.NewBus(mem.NewRAM(0, 1<<20))
	w := NewWalker(bus)
	pa, fault := w.Translate(0x1234, mem.Read)
	if fault != nil || pa != 0x1234 {
		t.Fatalf("disabled walker: pa=%#x fault=%v", pa, fault)
	}
}

func TestMapTranslate(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va, pa = 0x4000_0000, 0x0020_0000
	if err := as.Map(va, pa, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())

	got, fault := w.Translate(va+0x123, mem.Read)
	if fault != nil {
		t.Fatalf("translate: %v", fault)
	}
	if got != pa+0x123 {
		t.Errorf("pa = %#x, want %#x", got, pa+0x123)
	}
}

func TestPermissionFaults(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va, pa = 0x1000, 0x0020_0000
	if err := as.Map(va, pa, PermR); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())

	if _, fault := w.Translate(va, mem.Read); fault != nil {
		t.Errorf("read should be allowed: %v", fault)
	}
	if _, fault := w.Translate(va, mem.Write); fault == nil || fault.Type != FaultPermission {
		t.Errorf("write should permission-fault, got %v", fault)
	}
	if _, fault := w.Translate(va, mem.Execute); fault == nil || fault.Type != FaultPermission {
		t.Errorf("exec should permission-fault, got %v", fault)
	}
}

func TestTranslationFault(t *testing.T) {
	bus, _, as := newTestEnv(t)
	w := NewWalker(bus)
	w.SetRoot(as.Root())
	_, fault := w.Translate(0xdead_0000, mem.Read)
	if fault == nil || fault.Type != FaultTranslation {
		t.Fatalf("expected translation fault, got %v", fault)
	}
	if fault.VA != 0xdead_0000 {
		t.Errorf("fault VA = %#x", fault.VA)
	}
}

func TestTLBCachesAndFlushes(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va, pa = 0x1000, 0x0020_0000
	if err := as.Map(va, pa, PermR); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())

	for i := 0; i < 10; i++ {
		if _, fault := w.Translate(va, mem.Read); fault != nil {
			t.Fatal(fault)
		}
	}
	if w.Walks != 1 {
		t.Errorf("walks = %d, want 1 (TLB should cache)", w.Walks)
	}
	if w.Hits != 9 {
		t.Errorf("hits = %d, want 9", w.Hits)
	}
	w.FlushTLB()
	if _, fault := w.Translate(va, mem.Read); fault != nil {
		t.Fatal(fault)
	}
	if w.Walks != 2 {
		t.Errorf("walks after flush = %d, want 2", w.Walks)
	}
}

func TestTLBPermissionCheckedOnHit(t *testing.T) {
	bus, _, as := newTestEnv(t)
	if err := as.Map(0x1000, 0x0020_0000, PermR); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())
	if _, fault := w.Translate(0x1000, mem.Read); fault != nil {
		t.Fatal(fault)
	}
	// Now hit the TLB with a disallowed kind.
	if _, fault := w.Translate(0x1000, mem.Write); fault == nil || fault.Type != FaultPermission {
		t.Fatalf("TLB hit skipped permission check: %v", fault)
	}
}

func TestUnmap(t *testing.T) {
	bus, _, as := newTestEnv(t)
	if err := as.Map(0x1000, 0x0020_0000, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	if as.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d", as.MappedPages())
	}
	if err := as.Unmap(0x1000); err != nil {
		t.Fatal(err)
	}
	if as.MappedPages() != 0 {
		t.Fatalf("MappedPages after unmap = %d", as.MappedPages())
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())
	if _, fault := w.Translate(0x1000, mem.Read); fault == nil {
		t.Error("unmapped VA should fault")
	}
	// Unmapping twice is fine.
	if err := as.Unmap(0x1000); err != nil {
		t.Errorf("double unmap: %v", err)
	}
}

func TestMapRangeAndLookup(t *testing.T) {
	_, _, as := newTestEnv(t)
	if err := as.MapRange(0x10000, 0x0030_0000, 4*mem.PageSize, PermR|PermW|PermX); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		pa, perms, ok := as.Lookup(0x10000 + i*mem.PageSize + 4)
		if !ok {
			t.Fatalf("page %d not mapped", i)
		}
		if pa != 0x0030_0000+i*mem.PageSize+4 {
			t.Errorf("page %d: pa=%#x", i, pa)
		}
		if perms != PermR|PermW|PermX {
			t.Errorf("page %d: perms=%#x", i, perms)
		}
	}
	if _, _, ok := as.Lookup(0x10000 + 4*mem.PageSize); ok {
		t.Error("page past range should not be mapped")
	}
}

func TestTouchedPages(t *testing.T) {
	bus, _, as := newTestEnv(t)
	if err := as.MapRange(0, 0x0030_0000, 8*mem.PageSize, PermR); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())
	w.ResetTouched()
	for i := 0; i < 3; i++ {
		for p := uint64(0); p < 5; p++ {
			if _, fault := w.Translate(p*mem.PageSize, mem.Read); fault != nil {
				t.Fatal(fault)
			}
		}
	}
	if len(w.Touched) != 5 {
		t.Errorf("touched pages = %d, want 5 (distinct)", len(w.Touched))
	}
}

func TestUnalignedAndBadPermsRejected(t *testing.T) {
	_, _, as := newTestEnv(t)
	if err := as.Map(0x1001, 0x2000, PermR); err == nil {
		t.Error("unaligned VA accepted")
	}
	if err := as.Map(0x1000, 0x2001, PermR); err == nil {
		t.Error("unaligned PA accepted")
	}
	if err := as.Map(0x1000, 0x2000, 0); err == nil {
		t.Error("empty perms accepted")
	}
}

// Property: for any set of page mappings, translation of any offset within
// a mapped page returns the mapped frame plus that offset.
func TestTranslateOffsetsProperty(t *testing.T) {
	bus, _, as := newTestEnv(t)
	// Map 64 pages across a sparse VA range.
	for i := uint64(0); i < 64; i++ {
		va := i * 0x40_0000 // spread across level-1 entries
		pa := 0x0040_0000 + i*mem.PageSize
		if err := as.Map(va, pa, PermR|PermW); err != nil {
			t.Fatal(err)
		}
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())
	f := func(page uint8, off uint16) bool {
		i := uint64(page) % 64
		o := uint64(off) % mem.PageSize
		pa, fault := w.Translate(i*0x40_0000+o, mem.Read)
		return fault == nil && pa == 0x0040_0000+i*mem.PageSize+o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
