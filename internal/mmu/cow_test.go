package mmu

import (
	"testing"

	"mobilesim/internal/mem"
)

// cowEnv builds an address space with one RW mapping over RAM carrying a
// known pattern, captures an image, and returns a walker over a fork of
// it plus the fork itself.
func cowEnv(t *testing.T, shared bool) (*Walker, *mem.RAM, uint64, uint64) {
	t.Helper()
	const va, pa = uint64(0x4000_0000), uint64(0x0050_0000)
	ram := mem.NewRAM(0, 16<<20)
	bus := mem.NewBus(ram)
	alloc, err := mem.NewPageAllocator(1<<20, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	as, err := NewAddressSpace(bus, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Map(va, pa, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < mem.PageSize; i += 8 {
		if err := bus.Write(pa+i, 8, 0x5151_5151_5151_5151); err != nil {
			t.Fatal(err)
		}
	}
	img, err := ram.CaptureImage(alloc.HighWater())
	if err != nil {
		t.Fatal(err)
	}
	if pa+mem.PageSize > img.CapturedBytes() {
		t.Fatalf("pattern page %#x beyond captured %#x", pa, img.CapturedBytes())
	}
	fork := mem.ForkRAM(img)
	fbus := mem.NewBus(fork)
	var w *Walker
	if shared {
		w = NewSharedWalker(fbus)
	} else {
		w = NewWalker(fbus)
	}
	w.SetRoot(as.Root()) // page tables live in the forked (shared) RAM
	return w, fork, va, pa
}

// TestCowReadDoesNotPrivatize pins the point of the design: a read-only
// access pattern on a forked session shares pages with the image.
func TestCowReadDoesNotPrivatize(t *testing.T) {
	w, fork, va, _ := cowEnv(t, false)
	for off := uint64(0); off < 256; off += 8 {
		v, err := w.Load(va+off, 8, mem.Read)
		if err != nil || v != 0x5151_5151_5151_5151 {
			t.Fatalf("load %#x: %#x (%v)", va+off, v, err)
		}
	}
	// The data page stays shared; only the table walk's dirty marking of
	// page-table pages may have privatized those.
	if got := fork.PrivatizedPages(); got > 4 {
		t.Fatalf("reads privatized %d pages", got)
	}
}

// TestCowFirstStoreUpgradesView exercises the fault-path routing: the
// first store to a read-cached shared page privatizes it and upgrades the
// TLB view; subsequent loads and stores serve from the private page.
func TestCowFirstStoreUpgradesView(t *testing.T) {
	w, fork, va, _ := cowEnv(t, false)
	if _, err := w.Load(va, 8, mem.Read); err != nil {
		t.Fatal(err)
	}
	before := fork.PrivatizedPages()
	if err := w.Store(va+16, 8, 0xbeef); err != nil {
		t.Fatal(err)
	}
	if got := fork.PrivatizedPages(); got != before+1 {
		t.Fatalf("store privatized %d pages, want %d", got, before+1)
	}
	if v, err := w.Load(va+16, 8, mem.Read); err != nil || v != 0xbeef {
		t.Fatalf("readback %#x (%v)", v, err)
	}
	if v, err := w.Load(va+24, 8, mem.Read); err != nil || v != 0x5151_5151_5151_5151 {
		t.Fatalf("page remainder %#x (%v)", v, err)
	}
	// Second store must hit the upgraded view without another walk.
	walks := w.Walks
	if err := w.Store(va+32, 8, 0xcafe); err != nil {
		t.Fatal(err)
	}
	if w.Walks != walks {
		t.Fatalf("second store walked (%d -> %d)", walks, w.Walks)
	}
}

// TestCowCountersMatchNonFork pins TLB accounting equality: the same
// access sequence produces identical Hits/Walks on a forked walker and on
// a walker over plain RAM — the property that keeps golden statistics
// bit-identical between cold-boot and restored sessions.
func TestCowCountersMatchNonFork(t *testing.T) {
	run := func(w *Walker, va uint64) (uint64, uint64) {
		seq := []struct {
			off   uint64
			kind  mem.AccessKind
			write bool
		}{
			{0, mem.Read, false},
			{8, mem.Read, false},
			{16, mem.Write, true}, // first store: upgrade on fork, plain hit otherwise
			{24, mem.Read, false},
			{32, mem.Write, true},
			{4096, mem.Read, false}, // unmapped neighbour page would fault; stay in page
		}
		for _, s := range seq[:5] {
			var err error
			if s.write {
				err = w.Store(va+s.off, 8, 0x77)
			} else {
				_, err = w.Load(va+s.off, 8, s.kind)
			}
			if err != nil {
				panic(err)
			}
		}
		return w.Hits, w.Walks
	}

	for _, shared := range []bool{false, true} {
		// Fork walker.
		fw, _, fva, _ := cowEnv(t, shared)
		fHits, fWalks := run(fw, fva)

		// Plain walker over an identical layout (same builder, no fork).
		const va, pa = uint64(0x4000_0000), uint64(0x0050_0000)
		ram := mem.NewRAM(0, 16<<20)
		bus := mem.NewBus(ram)
		alloc, _ := mem.NewPageAllocator(1<<20, 8<<20)
		as, err := NewAddressSpace(bus, alloc)
		if err != nil {
			t.Fatal(err)
		}
		if err := as.Map(va, pa, PermR|PermW); err != nil {
			t.Fatal(err)
		}
		var pw *Walker
		if shared {
			pw = NewSharedWalker(bus)
		} else {
			pw = NewWalker(bus)
		}
		pw.SetRoot(as.Root())
		pHits, pWalks := run(pw, va)

		if fHits != pHits || fWalks != pWalks {
			t.Fatalf("shared=%v: fork hits/walks %d/%d, plain %d/%d",
				shared, fHits, fWalks, pHits, pWalks)
		}
	}
}

// TestCowSharedWalkerBulk exercises the shared-mode bulk paths over a
// fork: atomic bulk reads from shared pages, bulk writes privatizing.
func TestCowSharedWalkerBulk(t *testing.T) {
	w, fork, va, _ := cowEnv(t, true)
	dst := make([]byte, 128)
	if err := w.ReadBytes(va+64, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0x51 {
		t.Fatalf("bulk read %#x", dst[0])
	}
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i)
	}
	if err := w.WriteBytes(va+128, src); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, 64)
	if err := w.ReadBytes(va+128, back); err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != byte(i) {
			t.Fatalf("bulk readback[%d] = %#x", i, back[i])
		}
	}
	if fork.PrivatizedPages() == 0 {
		t.Fatal("bulk write did not privatize")
	}
}
