package mmu

import (
	"testing"

	"mobilesim/internal/mem"
)

// BatchPage backs the warp engine's coalesced memory path (DESIGN.md §9):
// one translation services a whole warp's same-page lane accesses. Its
// contract has two halves. On success, Hits/Walks and the touched-page
// set must be exactly what n per-lane Translate calls would have
// produced. On any decline — fault, permission, MMIO, CoW that cannot
// privatize — the walker (counters AND TLB) must be left completely
// untouched, so the engine's per-lane fallback replays the interpreter's
// accounting verbatim, including a fault's abort prefix.

func TestBatchPageHitCountsPerLane(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const va, pa = 0x3000, 0x0040_0000
	if err := as.Map(va, pa, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(bus)
	w.SetRoot(as.Root())
	if _, err := w.Load(va, 4, mem.Read); err != nil { // prime the TLB
		t.Fatal(err)
	}
	page, ok := w.BatchPage(va+8, mem.Read, 4)
	if !ok || page == nil {
		t.Fatalf("BatchPage on a primed TLB entry declined")
	}
	if w.Walks != 1 || w.Hits != 4 {
		t.Errorf("hit batch of 4: walks=%d hits=%d, want 1/4", w.Walks, w.Hits)
	}
}

func TestBatchPageMissMatchesPerLaneCounters(t *testing.T) {
	const va, pa, lanes = 0x5000, 0x0060_0000, 4

	// Batched walker: one BatchPage call for the whole warp.
	bus, _, as := newTestEnv(t)
	if err := as.Map(va, pa, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	wb := NewWalker(bus)
	wb.SetRoot(as.Root())
	wb.ResetTouched()
	if _, ok := wb.BatchPage(va, mem.Read, lanes); !ok {
		t.Fatal("BatchPage declined a plain mapped page")
	}

	// Reference walker: the per-lane sequence the interpreter issues.
	wr := NewWalker(bus)
	wr.SetRoot(as.Root())
	wr.ResetTouched()
	for l := 0; l < lanes; l++ {
		if _, err := wr.Load(va+uint64(l)*4, 4, mem.Read); err != nil {
			t.Fatal(err)
		}
	}

	if wb.Walks != wr.Walks || wb.Hits != wr.Hits {
		t.Errorf("batch walks/hits = %d/%d, per-lane = %d/%d",
			wb.Walks, wb.Hits, wr.Walks, wr.Hits)
	}
	touched := func(w *Walker) (pages []uint64) {
		w.ForEachTouched(func(p uint64) { pages = append(pages, p) })
		return
	}
	tb, tr := touched(wb), touched(wr)
	if len(tb) != 1 || len(tr) != 1 || tb[0] != tr[0] {
		t.Errorf("touched pages: batch %v, per-lane %v", tb, tr)
	}

	// The committed walk must have filled the TLB: the next access hits.
	walks := wb.Walks
	if _, err := wb.Load(va+64, 4, mem.Read); err != nil {
		t.Fatal(err)
	}
	if wb.Walks != walks {
		t.Errorf("access after batch walked again (%d -> %d)", walks, wb.Walks)
	}
}

// TestBatchPageDeclineLeavesWalkerUntouched drives every decline path and
// requires zero counter movement and no TLB side effects, so the per-lane
// fallback starts from the exact state the interpreter would have seen.
func TestBatchPageDeclineLeavesWalkerUntouched(t *testing.T) {
	bus, _, as := newTestEnv(t)
	const roVA, roPA = 0x1000, 0x0020_0000
	if err := as.Map(roVA, roPA, PermR); err != nil {
		t.Fatal(err)
	}
	dev := &recordingDev{}
	if err := bus.MapDevice("probe", testDevBase, mem.PageSize, dev); err != nil {
		t.Fatal(err)
	}
	const mmioVA = 0x9000
	if err := as.Map(mmioVA, testDevBase, PermR|PermW); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		va   uint64
		kind mem.AccessKind
	}{
		{"translation_fault", 0xdead_0000, mem.Read},
		{"permission_fault", roVA, mem.Write},
		{"mmio_miss_path", mmioVA, mem.Read},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWalker(bus)
			w.SetRoot(as.Root())
			if _, ok := w.BatchPage(tc.va, tc.kind, 4); ok {
				t.Fatalf("BatchPage(%#x, %v) unexpectedly succeeded", tc.va, tc.kind)
			}
			if w.Walks != 0 || w.Hits != 0 {
				t.Errorf("decline moved counters: walks=%d hits=%d, want 0/0", w.Walks, w.Hits)
			}
			// No TLB entry may have been planted: the fallback's first
			// Translate must do (and account) the walk itself.
			if _, fault := w.Translate(roVA, mem.Read); fault != nil {
				t.Fatal(fault)
			}
			if w.Walks != 1 || w.Hits != 0 {
				t.Errorf("fallback walk after decline: walks=%d hits=%d, want 1/0", w.Walks, w.Hits)
			}
		})
	}

	// MMIO through a *primed* TLB entry (cached with no page view) must
	// also decline without moving counters.
	t.Run("mmio_hit_path", func(t *testing.T) {
		w := NewWalker(bus)
		w.SetRoot(as.Root())
		if _, err := w.Load(mmioVA, 4, mem.Read); err != nil {
			t.Fatal(err)
		}
		walks, hits := w.Walks, w.Hits
		if _, ok := w.BatchPage(mmioVA, mem.Read, 4); ok {
			t.Fatal("BatchPage served an MMIO page")
		}
		if w.Walks != walks || w.Hits != hits {
			t.Errorf("MMIO hit-path decline moved counters (%d/%d -> %d/%d)",
				walks, hits, w.Walks, w.Hits)
		}
	})
}

// TestBatchPageCowWrite pins the copy-on-write interaction: a write batch
// through a read-primed shared view privatizes the page exactly like the
// per-lane store path, with identical counters, and the returned view is
// the private page (stores through it must not leak into the image).
func TestBatchPageCowWrite(t *testing.T) {
	w, fork, va, _ := cowEnv(t, false)
	if _, err := w.Load(va, 8, mem.Read); err != nil { // read-prime: shared view
		t.Fatal(err)
	}
	before := fork.PrivatizedPages()
	walks := w.Walks

	page, ok := w.BatchPage(va, mem.Write, 4)
	if !ok {
		t.Fatal("BatchPage declined a CoW write batch")
	}
	if got := fork.PrivatizedPages(); got != before+1 {
		t.Fatalf("batch write privatized %d pages, want %d", got, before+1)
	}
	if w.Walks != walks {
		t.Errorf("privatizing upgrade walked (%d -> %d)", walks, w.Walks)
	}
	page[16] = 0xbe
	if v, err := w.Load(va+16, 1, mem.Read); err != nil || v != 0xbe {
		t.Fatalf("readback through walker: %#x (%v)", v, err)
	}
}
