// Package mmu implements the memory-management unit shared by the CPU and
// GPU simulators: 3-level page tables over 4 KiB pages, a software TLB, a
// hardware-style table walker, and helpers for building address spaces.
//
// The format is AArch64/LPAE-flavoured but simplified to one granule:
//
//	VA bits [38:30] index level-2 table (1 GiB per entry)
//	VA bits [29:21] index level-1 table (2 MiB per entry)
//	VA bits [20:12] index level-0 table (4 KiB pages)
//
// Each table is one 4 KiB page of 512 eight-byte entries. A PTE is:
//
//	bit 0        valid
//	bit 1        leaf (level 0 entries are always leaves)
//	bits 2..4    permissions: R, W, X
//	bits 12..47  physical frame number << 12
package mmu

import (
	"fmt"

	"mobilesim/internal/mem"
)

// PTE bit layout.
const (
	pteValid = 1 << 0
	pteLeaf  = 1 << 1

	// PermR allows data loads through the mapping.
	PermR = 1 << 2
	// PermW allows data stores through the mapping.
	PermW = 1 << 3
	// PermX allows instruction fetch through the mapping.
	PermX = 1 << 4

	permMask = PermR | PermW | PermX

	pteAddrMask = 0x0000_FFFF_FFFF_F000
)

const (
	levels    = 3
	indexBits = 9
	indexMask = (1 << indexBits) - 1
)

// FaultType classifies a translation failure.
type FaultType int

const (
	// FaultTranslation means no valid mapping exists for the address.
	FaultTranslation FaultType = iota
	// FaultPermission means a mapping exists but forbids the access kind.
	FaultPermission
	// FaultBus means the walk itself touched unmapped physical memory,
	// i.e. the page-table pointer is garbage.
	FaultBus
)

func (t FaultType) String() string {
	switch t {
	case FaultTranslation:
		return "translation"
	case FaultPermission:
		return "permission"
	case FaultBus:
		return "bus"
	}
	return fmt.Sprintf("FaultType(%d)", int(t))
}

// Fault reports a failed translation. It is delivered to the CPU as a
// synchronous exception and to the GPU driver through fault registers.
type Fault struct {
	Type FaultType
	VA   uint64
	Kind mem.AccessKind
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mmu: %s fault on %s at va=%#x", f.Type, f.Kind, f.VA)
}

// vaIndex extracts the table index for a walk level (2 = top).
func vaIndex(va uint64, level int) uint64 {
	shift := 12 + uint(level)*indexBits
	return (va >> shift) & indexMask
}

const tlbSize = 256 // direct-mapped; power of two

type tlbEntry struct {
	vpn   uint64 // virtual page number + 1 (0 = invalid)
	pfn   uint64 // physical page base
	perms uint64
}

// Walker translates virtual addresses through page tables rooted at a
// table base register. Each CPU core and each GPU address space owns its
// own Walker (TLBs are per translation agent, as in hardware). A Walker is
// not safe for concurrent use.
type Walker struct {
	bus  *mem.Bus
	root uint64 // physical base of top-level table; 0 = translation off
	tlb  [tlbSize]tlbEntry

	// Touched tracks distinct virtual page numbers translated since the
	// last ResetTouched. The GPU uses it for the "pages accessed" system
	// statistic (Table III); nil disables tracking.
	Touched map[uint64]struct{}

	// Walks counts full table walks (TLB misses).
	Walks uint64
	// Hits counts TLB hits.
	Hits uint64
}

// NewWalker creates a walker with translation disabled.
func NewWalker(bus *mem.Bus) *Walker {
	return &Walker{bus: bus}
}

// SetRoot points the walker at a new top-level table and flushes the TLB.
// A zero root disables translation (identity mapping, all permissions).
func (w *Walker) SetRoot(root uint64) {
	w.root = root
	w.FlushTLB()
}

// Root returns the current top-level table base.
func (w *Walker) Root() uint64 { return w.root }

// Enabled reports whether translation is active.
func (w *Walker) Enabled() bool { return w.root != 0 }

// FlushTLB invalidates all cached translations.
func (w *Walker) FlushTLB() {
	w.tlb = [tlbSize]tlbEntry{}
}

// ResetTouched clears and enables touched-page tracking.
func (w *Walker) ResetTouched() {
	w.Touched = make(map[uint64]struct{})
}

// Translate maps a virtual address to a physical address, checking
// permissions for the access kind. With translation disabled it returns
// the address unchanged.
func (w *Walker) Translate(va uint64, kind mem.AccessKind) (uint64, *Fault) {
	if w.root == 0 {
		return va, nil
	}
	vpn := va >> 12
	if w.Touched != nil {
		w.Touched[vpn] = struct{}{}
	}
	e := &w.tlb[vpn&(tlbSize-1)]
	if e.vpn == vpn+1 {
		w.Hits++
		if !permOK(e.perms, kind) {
			return 0, &Fault{Type: FaultPermission, VA: va, Kind: kind}
		}
		return e.pfn | (va & mem.PageMask), nil
	}
	w.Walks++
	pfn, perms, fault := w.walk(va, kind)
	if fault != nil {
		return 0, fault
	}
	*e = tlbEntry{vpn: vpn + 1, pfn: pfn, perms: perms}
	if !permOK(perms, kind) {
		return 0, &Fault{Type: FaultPermission, VA: va, Kind: kind}
	}
	return pfn | (va & mem.PageMask), nil
}

func permOK(perms uint64, kind mem.AccessKind) bool {
	switch kind {
	case mem.Read:
		return perms&PermR != 0
	case mem.Write:
		return perms&PermW != 0
	case mem.Execute:
		return perms&PermX != 0
	}
	return false
}

// walk performs the 3-level table walk, returning the page frame base and
// its permissions.
func (w *Walker) walk(va uint64, kind mem.AccessKind) (pfn, perms uint64, fault *Fault) {
	table := w.root
	for level := levels - 1; level >= 0; level-- {
		entryAddr := table + vaIndex(va, level)*8
		pte, err := w.bus.Read(entryAddr, 8)
		if err != nil {
			return 0, 0, &Fault{Type: FaultBus, VA: va, Kind: kind}
		}
		if pte&pteValid == 0 {
			return 0, 0, &Fault{Type: FaultTranslation, VA: va, Kind: kind}
		}
		if pte&pteLeaf != 0 || level == 0 {
			if level != 0 {
				// Block mappings at higher levels are not used by our
				// builders; treat as translation fault to keep the model
				// strict.
				return 0, 0, &Fault{Type: FaultTranslation, VA: va, Kind: kind}
			}
			return pte & pteAddrMask, pte & permMask, nil
		}
		table = pte & pteAddrMask
	}
	return 0, 0, &Fault{Type: FaultTranslation, VA: va, Kind: kind}
}
