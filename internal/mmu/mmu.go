// Package mmu implements the memory-management unit shared by the CPU and
// GPU simulators: 3-level page tables over 4 KiB pages, a software TLB, a
// hardware-style table walker, and helpers for building address spaces.
//
// The format is AArch64/LPAE-flavoured but simplified to one granule:
//
//	VA bits [38:30] index level-2 table (1 GiB per entry)
//	VA bits [29:21] index level-1 table (2 MiB per entry)
//	VA bits [20:12] index level-0 table (4 KiB pages)
//
// Each table is one 4 KiB page of 512 eight-byte entries. A PTE is:
//
//	bit 0        valid
//	bit 1        leaf (level 0 entries are always leaves)
//	bits 2..4    permissions: R, W, X
//	bits 12..47  physical frame number << 12
package mmu

import (
	"fmt"
	"math/bits"

	"mobilesim/internal/mem"
)

// PTE bit layout.
const (
	pteValid = 1 << 0
	pteLeaf  = 1 << 1

	// PermR allows data loads through the mapping.
	PermR = 1 << 2
	// PermW allows data stores through the mapping.
	PermW = 1 << 3
	// PermX allows instruction fetch through the mapping.
	PermX = 1 << 4

	permMask = PermR | PermW | PermX

	pteAddrMask = 0x0000_FFFF_FFFF_F000
)

const (
	levels    = 3
	indexBits = 9
	indexMask = (1 << indexBits) - 1
)

// FaultType classifies a translation failure.
type FaultType int

const (
	// FaultTranslation means no valid mapping exists for the address.
	FaultTranslation FaultType = iota
	// FaultPermission means a mapping exists but forbids the access kind.
	FaultPermission
	// FaultBus means the walk itself touched unmapped physical memory,
	// i.e. the page-table pointer is garbage.
	FaultBus
)

func (t FaultType) String() string {
	switch t {
	case FaultTranslation:
		return "translation"
	case FaultPermission:
		return "permission"
	case FaultBus:
		return "bus"
	}
	return fmt.Sprintf("FaultType(%d)", int(t))
}

// Fault reports a failed translation. It is delivered to the CPU as a
// synchronous exception and to the GPU driver through fault registers.
type Fault struct {
	Type FaultType
	VA   uint64
	Kind mem.AccessKind
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mmu: %s fault on %s at va=%#x", f.Type, f.Kind, f.VA)
}

// vaIndex extracts the table index for a walk level (2 = top).
func vaIndex(va uint64, level int) uint64 {
	shift := 12 + uint(level)*indexBits
	return (va >> shift) & indexMask
}

const tlbSize = 256 // direct-mapped; power of two

type tlbEntry struct {
	vpn   uint64 // virtual page number + 1 (0 = invalid)
	pfn   uint64 // physical page base
	perms uint64
	// page is the host view of the 4 KiB physical page, cached at walk
	// time when the frame is RAM-backed; nil for MMIO frames, which must
	// always go through the bus (device reads have side effects).
	page []byte
	// ro marks page as a shared copy-on-write view (a forked session
	// still sharing the page with its snapshot image): loads may be
	// served from it, but the first store must take the fault path so the
	// page is privatized and the view upgraded (see Translate).
	ro bool
}

// Walker translates virtual addresses through page tables rooted at a
// table base register. Each CPU core and each GPU address space owns its
// own Walker (TLBs are per translation agent, as in hardware). A Walker is
// not safe for concurrent use.
type Walker struct {
	bus  *mem.Bus
	root uint64 // physical base of top-level table; 0 = translation off
	// tlb is allocated lazily on the first non-zero SetRoot: walkers with
	// translation off (the driver-path CPU cores) never touch it, and the
	// ~14 KiB zeroed allocation per walker is a measurable cost on the
	// microsecond snapshot-fork path. All TLB accesses are guarded by
	// root != 0, which implies tlb != nil.
	tlb *[tlbSize]tlbEntry

	// shared selects the race-clean access mode: data loads and stores go
	// through mem's word-granular atomic accessors instead of plain host
	// memory operations. Every GPU-side walker runs shared — shader-core
	// goroutines race on guest memory by (guest) design — while the
	// single-goroutine CPU walkers keep the plain path. Table walks stay
	// plain in both modes: page tables are written before the job that
	// uses them is submitted, with a happens-before edge through the
	// doorbell.
	shared bool

	// touched is a page bitmap of distinct virtual page numbers walked
	// since the last ResetTouched: key = vpn>>6, bit = vpn&63. It is
	// updated only on table walks (the first access to a page always
	// misses the TLB), keeping the hot TLB-hit path free of map work.
	// nil disables tracking.
	touched map[uint64]uint64

	// Walks counts full table walks (TLB misses).
	Walks uint64
	// Hits counts TLB hits.
	Hits uint64
}

// NewWalker creates a walker with translation disabled.
func NewWalker(bus *mem.Bus) *Walker {
	return &Walker{bus: bus}
}

// NewSharedWalker creates a walker in shared-access mode: data loads and
// stores go through mem's word-granular atomic accessors. A Walker itself
// is still not safe for concurrent use — each translation agent owns one
// — but a shared walker's data accesses compose race-free with other
// shared walkers touching the same guest memory. The mode is fixed at
// construction: flipping it mid-lifetime would mix plain and atomic
// accesses to the same words, the exact race class this mode eliminates.
func NewSharedWalker(bus *mem.Bus) *Walker {
	return &Walker{bus: bus, shared: true}
}

// Shared reports whether the walker is in shared-access mode.
func (w *Walker) Shared() bool { return w.shared }

// SetRoot points the walker at a new top-level table and flushes the TLB.
// A zero root disables translation (identity mapping, all permissions).
func (w *Walker) SetRoot(root uint64) {
	w.root = root
	if root != 0 && w.tlb == nil {
		w.tlb = new([tlbSize]tlbEntry) // fresh array is already clean
		return
	}
	w.FlushTLB()
}

// Root returns the current top-level table base.
func (w *Walker) Root() uint64 { return w.root }

// Enabled reports whether translation is active.
func (w *Walker) Enabled() bool { return w.root != 0 }

// FlushTLB invalidates all cached translations.
func (w *Walker) FlushTLB() {
	if w.tlb != nil {
		*w.tlb = [tlbSize]tlbEntry{}
	}
}

// ResetTouched clears and enables touched-page tracking.
func (w *Walker) ResetTouched() {
	w.touched = make(map[uint64]uint64)
}

// TouchedCount returns the number of distinct virtual pages walked since
// the last ResetTouched (the Table III "pages accessed" statistic).
func (w *Walker) TouchedCount() int {
	n := 0
	for _, word := range w.touched {
		n += bits.OnesCount64(word)
	}
	return n
}

// ForEachTouched calls fn for every distinct virtual page number recorded
// since the last ResetTouched, in no particular order.
func (w *Walker) ForEachTouched(fn func(vpn uint64)) {
	for key, word := range w.touched {
		for word != 0 {
			bit := uint64(bits.TrailingZeros64(word))
			fn(key<<6 | bit)
			word &= word - 1
		}
	}
}

// Translate maps a virtual address to a physical address, checking
// permissions for the access kind. With translation disabled it returns
// the address unchanged.
func (w *Walker) Translate(va uint64, kind mem.AccessKind) (uint64, *Fault) {
	if w.root == 0 {
		return va, nil
	}
	vpn := va >> 12
	e := &w.tlb[vpn&(tlbSize-1)]
	if e.vpn == vpn+1 {
		w.Hits++
		if !permOK(e.perms, kind) {
			return 0, &Fault{Type: FaultPermission, VA: va, Kind: kind}
		}
		if e.ro && kind == mem.Write {
			// First store through a shared copy-on-write view: privatize
			// the backing page and upgrade the cached view in place. The
			// translation itself (pfn, perms) is unchanged, so this stays
			// a TLB hit — counters match a non-forked session exactly.
			if page, ro, ok := w.bus.PageView(e.pfn, true); ok {
				e.page, e.ro = page, ro
			}
		}
		return e.pfn | (va & mem.PageMask), nil
	}
	w.Walks++
	pfn, perms, fault := w.walk(va, kind)
	if fault != nil {
		return 0, fault
	}
	if w.touched != nil {
		w.touched[vpn>>6] |= 1 << (vpn & 63)
	}
	// Cache the host page view. A write access asks for a writable view
	// (privatizing a copy-on-write page); reads and fetches accept a
	// shared read-only view so forked sessions keep sharing read-mostly
	// pages with their snapshot image.
	page, ro, _ := w.bus.PageView(pfn, kind == mem.Write)
	if page != nil && !ro && perms&PermW != 0 {
		// Stores through the cached view bypass the bus, so account the
		// whole page to the RAM recycling watermark up front.
		w.bus.MarkDirty(pfn, mem.PageSize)
	}
	*e = tlbEntry{vpn: vpn + 1, pfn: pfn, perms: perms, page: page, ro: ro}
	if !permOK(perms, kind) {
		return 0, &Fault{Type: FaultPermission, VA: va, Kind: kind}
	}
	return pfn | (va & mem.PageMask), nil
}

// hitPage returns the cached host page for va when the access can be
// served entirely from the TLB: translation on, valid entry, permitted
// kind, RAM-backed frame, and — for stores — a writable (non-shared)
// view. It returns nil in every other case without touching any counter;
// the caller then falls back to Translate, which accounts the access (one
// Hit or one Walk) exactly as before and upgrades a shared copy-on-write
// view on the first store.
func (w *Walker) hitPage(va uint64, kind mem.AccessKind) []byte {
	if w.root == 0 {
		return nil
	}
	vpn := va >> 12
	e := &w.tlb[vpn&(tlbSize-1)]
	if e.vpn != vpn+1 || e.page == nil || !permOK(e.perms, kind) || (e.ro && kind == mem.Write) {
		return nil
	}
	w.Hits++
	return e.page
}

// BatchPage translates one virtual page for a warp-coalesced access of n
// lanes that all land inside that page, returning the host page view to
// copy through. On success the TLB counters advance exactly as n
// independent per-lane accesses would: a resident entry costs n hits; a
// miss costs one walk — with the same touched-page and dirty-watermark
// bookkeeping as Translate — followed by n-1 hits. It returns (nil,
// false) with NO counters or TLB state touched when the batch cannot be
// served wholesale: translation off, MMIO frame (device accesses have
// side effects and must stay per-lane through the bus), translation or
// permission fault (the faulting lane's counter prefix matters), or a
// store through a copy-on-write view that failed to privatize. The
// caller then falls back to the per-lane path, which reproduces the
// interpreter's exact counter and fault sequence.
func (w *Walker) BatchPage(va uint64, kind mem.AccessKind, n uint64) ([]byte, bool) {
	if w.root == 0 || n == 0 {
		return nil, false
	}
	vpn := va >> 12
	e := &w.tlb[vpn&(tlbSize-1)]
	if e.vpn == vpn+1 {
		if e.page == nil || !permOK(e.perms, kind) {
			return nil, false
		}
		if e.ro && kind == mem.Write {
			// First store through a shared copy-on-write view: privatize
			// and upgrade in place, as Translate does on the hit path.
			page, ro, ok := w.bus.PageView(e.pfn, true)
			if !ok || page == nil || ro {
				return nil, false
			}
			e.page, e.ro = page, ro
		}
		w.Hits += n
		return e.page, true
	}
	// TLB miss: probe the walk without committing any counter, so a
	// fallback after a fault or MMIO frame replays lane 0's miss
	// accounting (Walks++ inclusive) through Translate untouched.
	pfn, perms, fault := w.walk(va, kind)
	if fault != nil || !permOK(perms, kind) {
		return nil, false
	}
	page, ro, _ := w.bus.PageView(pfn, kind == mem.Write)
	if page == nil || (ro && kind == mem.Write) {
		return nil, false
	}
	// The batch is serviceable: account lane 0's walk exactly as
	// Translate would, then the remaining n-1 lanes as hits.
	w.Walks++
	if w.touched != nil {
		w.touched[vpn>>6] |= 1 << (vpn & 63)
	}
	if !ro && perms&PermW != 0 {
		w.bus.MarkDirty(pfn, mem.PageSize)
	}
	*e = tlbEntry{vpn: vpn + 1, pfn: pfn, perms: perms, page: page, ro: ro}
	w.Hits += n - 1
	return page, true
}

// Load translates va and loads size little-endian bytes in one step. On a
// TLB hit to a RAM-backed page it reads the cached host view directly,
// touching neither the bus nor any lock and allocating nothing; otherwise
// it falls back to Translate + Bus.Read (TLB miss, MMIO frame, permission
// fault, page-crossing access, or translation off). The returned error is
// a *Fault for translation failures or the bus error for physical ones.
func (w *Walker) Load(va uint64, size int, kind mem.AccessKind) (uint64, error) {
	off := va & mem.PageMask
	if off+uint64(size) <= mem.PageSize {
		if page := w.hitPage(va, kind); page != nil {
			if w.shared {
				if size == 4 && off&3 == 0 {
					return mem.AtomicLoad32(page, off), nil
				}
				return mem.AtomicLoadLE(page, off, size), nil
			}
			return mem.LoadLE(page[off : off+uint64(size)]), nil
		}
	}
	pa, fault := w.Translate(va, kind)
	if fault != nil {
		return 0, fault
	}
	if w.shared {
		return w.bus.AtomicRead(pa, size)
	}
	return w.bus.Read(pa, size)
}

// Store translates va and stores size little-endian bytes in one step,
// with the same fast/slow split as Load. Stores always check PermW.
func (w *Walker) Store(va uint64, size int, val uint64) error {
	off := va & mem.PageMask
	if off+uint64(size) <= mem.PageSize {
		if page := w.hitPage(va, mem.Write); page != nil {
			if w.shared {
				if size == 4 && off&3 == 0 {
					mem.AtomicStore32(page, off, uint32(val))
					return nil
				}
				mem.AtomicStoreLE(page, off, size, val)
				return nil
			}
			mem.StoreLE(page[off:off+uint64(size)], size, val)
			return nil
		}
	}
	pa, fault := w.Translate(va, mem.Write)
	if fault != nil {
		return fault
	}
	if w.shared {
		return w.bus.AtomicWrite(pa, size, val)
	}
	return w.bus.Write(pa, size, val)
}

// ReadBytes copies len(dst) bytes out of the virtual address space,
// page by page (the underlying frames need not be contiguous). Pages
// cached in the TLB are copied straight from their host views.
func (w *Walker) ReadBytes(va uint64, dst []byte) error {
	for off := 0; off < len(dst); {
		cva := va + uint64(off)
		chunk := int(mem.PageSize - cva&mem.PageMask)
		if chunk > len(dst)-off {
			chunk = len(dst) - off
		}
		if page := w.hitPage(cva, mem.Read); page != nil {
			po := cva & mem.PageMask
			if w.shared {
				mem.AtomicReadBytes(page, po, dst[off:off+chunk])
			} else {
				copy(dst[off:off+chunk], page[po:po+uint64(chunk)])
			}
		} else {
			pa, fault := w.Translate(cva, mem.Read)
			if fault != nil {
				return fault
			}
			if err := w.busReadBytes(pa, dst[off:off+chunk]); err != nil {
				return err
			}
		}
		off += chunk
	}
	return nil
}

// WriteBytes copies src into the virtual address space, page by page.
func (w *Walker) WriteBytes(va uint64, src []byte) error {
	for off := 0; off < len(src); {
		cva := va + uint64(off)
		chunk := int(mem.PageSize - cva&mem.PageMask)
		if chunk > len(src)-off {
			chunk = len(src) - off
		}
		if page := w.hitPage(cva, mem.Write); page != nil {
			po := cva & mem.PageMask
			if w.shared {
				mem.AtomicWriteBytes(page, po, src[off:off+chunk])
			} else {
				copy(page[po:po+uint64(chunk)], src[off:off+chunk])
			}
		} else {
			pa, fault := w.Translate(cva, mem.Write)
			if fault != nil {
				return fault
			}
			if err := w.busWriteBytes(pa, src[off:off+chunk]); err != nil {
				return err
			}
		}
		off += chunk
	}
	return nil
}

// busReadBytes selects the bulk physical read for the walker's mode.
func (w *Walker) busReadBytes(pa uint64, dst []byte) error {
	if w.shared {
		return w.bus.AtomicReadBytes(pa, dst)
	}
	return w.bus.ReadBytes(pa, dst)
}

// busWriteBytes selects the bulk physical write for the walker's mode.
func (w *Walker) busWriteBytes(pa uint64, src []byte) error {
	if w.shared {
		return w.bus.AtomicWriteBytes(pa, src)
	}
	return w.bus.WriteBytes(pa, src)
}

func permOK(perms uint64, kind mem.AccessKind) bool {
	switch kind {
	case mem.Read:
		return perms&PermR != 0
	case mem.Write:
		return perms&PermW != 0
	case mem.Execute:
		return perms&PermX != 0
	}
	return false
}

// walk performs the 3-level table walk, returning the page frame base and
// its permissions.
func (w *Walker) walk(va uint64, kind mem.AccessKind) (pfn, perms uint64, fault *Fault) {
	table := w.root
	for level := levels - 1; level >= 0; level-- {
		entryAddr := table + vaIndex(va, level)*8
		pte, err := w.bus.Read(entryAddr, 8)
		if err != nil {
			return 0, 0, &Fault{Type: FaultBus, VA: va, Kind: kind}
		}
		if pte&pteValid == 0 {
			return 0, 0, &Fault{Type: FaultTranslation, VA: va, Kind: kind}
		}
		if pte&pteLeaf != 0 || level == 0 {
			if level != 0 {
				// Block mappings at higher levels are not used by our
				// builders; treat as translation fault to keep the model
				// strict.
				return 0, 0, &Fault{Type: FaultTranslation, VA: va, Kind: kind}
			}
			return pte & pteAddrMask, pte & permMask, nil
		}
		table = pte & pteAddrMask
	}
	return 0, 0, &Fault{Type: FaultTranslation, VA: va, Kind: kind}
}
