package obs

import (
	"math"
	"sync"
	"time"
)

// RateEWMA is an exponentially weighted moving average of an event
// arrival rate (events per second) over irregularly spaced arrivals.
// Time is always passed in by the caller, never read from the system
// clock, so the estimator is trivially testable with a fake clock.
//
// The weighting is half-life based: an observation's influence halves
// every halfLife of elapsed time, and Rate decays the estimate toward
// zero while no events arrive — so a burst raises the rate quickly and
// an idle period lets it drain.
type RateEWMA struct {
	mu       sync.Mutex
	halfLife float64 // seconds; > 0
	rate     float64 // events/second
	last     time.Time
}

// NewRateEWMA returns a rate estimator with the given half-life.
// Non-positive half-lives are clamped to one second.
func NewRateEWMA(halfLife time.Duration) *RateEWMA {
	hl := halfLife.Seconds()
	if hl <= 0 {
		hl = 1
	}
	return &RateEWMA{halfLife: hl}
}

// Observe records one event at time t. Out-of-order arrivals (t before
// the previous event) are treated as simultaneous.
func (e *RateEWMA) Observe(t time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last.IsZero() {
		// A single event carries no rate information yet.
		e.last = t
		return
	}
	dt := t.Sub(e.last).Seconds()
	if dt <= 0 {
		dt = 1e-6 // simultaneous arrivals: treat as 1 µs apart
	}
	inst := 1 / dt
	w := 1 - math.Exp2(-dt/e.halfLife)
	e.rate = (1-w)*e.rate + w*inst
	e.last = t
}

// Rate returns the estimated arrival rate in events/second as of time t,
// decayed for the idle gap since the last event.
func (e *RateEWMA) Rate(t time.Time) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last.IsZero() || e.rate == 0 {
		return 0
	}
	idle := t.Sub(e.last).Seconds()
	if idle <= 0 {
		return e.rate
	}
	return e.rate * math.Exp2(-idle/e.halfLife)
}

// DurEWMA is a fixed-weight exponentially weighted moving average of a
// duration (e.g. observed fork latency). The first observation seeds the
// average directly.
type DurEWMA struct {
	mu     sync.Mutex
	alpha  float64
	v      float64 // nanoseconds
	seeded bool
}

// NewDurEWMA returns a duration estimator; alpha in (0, 1] is the weight
// of each new observation (out-of-range values are clamped to 0.3).
func NewDurEWMA(alpha float64) *DurEWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &DurEWMA{alpha: alpha}
}

// Observe folds one duration into the average.
func (e *DurEWMA) Observe(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ns := float64(d)
	if ns < 0 {
		ns = 0
	}
	if !e.seeded {
		e.v, e.seeded = ns, true
		return
	}
	e.v = (1-e.alpha)*e.v + e.alpha*ns
}

// Value returns the current average (0 until the first observation).
func (e *DurEWMA) Value() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.v)
}
