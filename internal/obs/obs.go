// Package obs is the repo's dependency-free metrics core: atomic
// counters and gauges, a lock-cheap log-bucketed latency histogram with
// mergeable snapshots and quantile estimation, and helpers for rendering
// them in the Prometheus text exposition format.
//
// Everything here is stdlib-only and safe for concurrent use. Observe and
// the counter operations are a handful of uncontended atomic adds — cheap
// enough for per-request serving paths, but still too expensive for the
// per-instruction simulator hot paths pinned by simlint's hotalloc
// manifest, which this package must never be called from.
package obs

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move in both
// directions.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// EscapeLabel escapes a Prometheus label value: backslash, double quote
// and newline must be backslash-escaped per the text exposition format.
func EscapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePromCounter writes one counter metric in text exposition format.
func WritePromCounter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// WritePromGauge writes one gauge metric in text exposition format.
func WritePromGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}
