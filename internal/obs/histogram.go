package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets. Bucket 0 holds
// exactly 0 ns; bucket i (1 ≤ i < NumBuckets) holds durations in
// [2^(i-1), 2^i) ns. Durations of 2^(NumBuckets-1) ns (≈ 9.2 minutes)
// or more land in the overflow bucket at index NumBuckets.
const NumBuckets = 40

// bucketIndex maps a non-negative nanosecond duration to its bucket.
// The mapping is the bit length of the value: 0→0, 1→1, [2,3]→2,
// [4,7]→3, ... so each bucket spans one power of two and quantile
// estimates carry at most ~2× relative error.
func bucketIndex(ns int64) int {
	i := bits.Len64(uint64(ns))
	if i > NumBuckets {
		return NumBuckets
	}
	return i
}

// bucketBounds returns the inclusive [lo, hi] nanosecond range of a
// bucket. The overflow bucket has no finite upper bound; its hi equals
// its lo so estimates degrade to the bucket's lower bound.
func bucketBounds(i int) (lo, hi int64) {
	switch {
	case i <= 0:
		return 0, 0
	case i >= NumBuckets:
		lo = 1 << (NumBuckets - 1)
		return lo, lo
	default:
		return 1 << (i - 1), 1<<i - 1
	}
}

// Histogram is a lock-free log-bucketed latency histogram. Observe is
// three uncontended atomic adds and performs no allocation; Snapshot
// reads are not a consistent cut (counts may race ahead of sums by a
// few in-flight observations) which is acceptable for monitoring.
//
// The zero value is ready to use. A Histogram must not be copied after
// first use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [NumBuckets + 1]atomic.Uint64
}

// Observe records one duration. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(ns))
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Load()
	s.SumNS = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Snapshot is a point-in-time copy of a Histogram. Snapshots are plain
// values: they can be merged across sessions, pools or hosts and then
// queried for quantiles.
type Snapshot struct {
	Count   uint64
	SumNS   uint64
	Buckets [NumBuckets + 1]uint64
}

// Merge folds another snapshot into s (bucket-wise addition).
func (s *Snapshot) Merge(o *Snapshot) {
	s.Count += o.Count
	s.SumNS += o.SumNS
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the arithmetic mean of all observations, or 0 if empty.
// Unlike the quantiles it is exact: the sum is tracked alongside the
// buckets.
func (s *Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) by linear
// interpolation inside the bucket holding the target rank. Values in
// the overflow bucket report the bucket's lower bound. Returns 0 for an
// empty snapshot.
func (s *Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || math.IsNaN(q) {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := bucketBounds(i)
			frac := float64(target-cum) / float64(n)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += n
	}
	// Unreachable when Count equals the bucket sum; be safe if a racy
	// snapshot left Count ahead of the buckets.
	lo, _ := bucketBounds(NumBuckets)
	return time.Duration(lo)
}

// Summary condenses a snapshot into the fixed percentile set every
// serving layer reports.
type Summary struct {
	Count uint64
	Sum   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
}

// Summary computes the standard summary of the snapshot.
func (s *Snapshot) Summary() Summary {
	return Summary{
		Count: s.Count,
		Sum:   time.Duration(s.SumNS),
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
	}
}

// WritePromSummary writes the snapshot as a Prometheus summary metric in
// seconds. labels is a pre-rendered, comma-separated label list without
// braces (e.g. `workload="BFS"`), or "" for none; values must already be
// escaped with EscapeLabel. Emit the # HELP/# TYPE header once per metric
// family via WritePromSummaryHeader before the first labelled series.
func WritePromSummary(w io.Writer, name, labels string, s *Snapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	plain := ""
	if labels != "" {
		plain = "{" + labels + "}"
	}
	for _, q := range []struct {
		label string
		v     float64
	}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}} {
		fmt.Fprintf(w, "%s{%squantile=%q} %g\n", name, labels+sep, q.label, s.Quantile(q.v).Seconds())
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, plain, float64(s.SumNS)/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, plain, s.Count)
}

// WritePromSummaryHeader writes the HELP/TYPE preamble for a summary
// metric family.
func WritePromSummaryHeader(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
}
