package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketIndexEdges pins the bucket mapping at every interesting edge:
// zero, one nanosecond, exact power-of-two boundaries on both sides, and
// the overflow cutover.
func TestBucketIndexEdges(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1<<39 - 1, NumBuckets - 1}, // last finite bucket's top
		{1 << 39, NumBuckets},       // first overflow value
		{math.MaxInt64, NumBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

// TestBucketBoundsRoundTrip checks that every bucket's bounds contain
// exactly the values that map to it.
func TestBucketBoundsRoundTrip(t *testing.T) {
	for i := 0; i < NumBuckets; i++ {
		lo, hi := bucketBounds(i)
		if bucketIndex(lo) != i || bucketIndex(hi) != i {
			t.Errorf("bucket %d bounds [%d,%d] do not map back to bucket %d", i, lo, hi, i)
		}
		if i > 0 && bucketIndex(lo-1) != i-1 {
			t.Errorf("bucket %d: lo-1=%d should map to bucket %d", i, lo-1, i-1)
		}
	}
	lo, _ := bucketBounds(NumBuckets)
	if lo != 1<<39 {
		t.Errorf("overflow bucket lower bound = %d, want %d", lo, int64(1)<<39)
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(-5 * time.Second) // clamped to 0
	h.Observe(3)
	h.Observe(time.Duration(1) << 39) // overflow

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if want := uint64(1+3) + uint64(1)<<39; s.SumNS != want {
		t.Fatalf("sum = %d, want %d", s.SumNS, want)
	}
	for i, want := range map[int]uint64{0: 2, 1: 1, 2: 1, NumBuckets: 1} {
		if s.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], want)
		}
	}
}

// TestQuantileExactBuckets places known values and checks the estimates
// stay within their buckets and hit exact values where the bucket is a
// single point (bucket 0) or fully consumed.
func TestQuantileExactBuckets(t *testing.T) {
	var h Histogram
	// 90 zero observations, 10 in bucket 11 ([1024, 2047] ns).
	for i := 0; i < 90; i++ {
		h.Observe(0)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1500)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.50); got != 0 {
		t.Errorf("p50 = %v, want 0", got)
	}
	if got := s.Quantile(0.90); got != 0 {
		// rank ceil(0.9*100)=90 is the last zero observation
		t.Errorf("p90 = %v, want 0", got)
	}
	p99 := s.Quantile(0.99)
	if p99 < 1024 || p99 > 2047 {
		t.Errorf("p99 = %v, want within [1024ns, 2047ns]", p99)
	}
	// The very last rank must land at the top of the occupied bucket.
	if got := s.Quantile(1.0); got != 2047 {
		t.Errorf("p100 = %v, want 2047ns", got)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	var s Snapshot
	if got := s.Quantile(0.99); got != 0 {
		t.Errorf("empty p99 = %v, want 0", got)
	}
	var h Histogram
	h.Observe(time.Microsecond)
	s = h.Snapshot()
	p50 := s.Quantile(0.50)
	if p50 < 512 || p50 > 1023 {
		t.Errorf("single-value p50 = %v, want within its bucket [512ns,1023ns]", p50)
	}
}

// TestQuantileOverflow: ranks landing in the overflow bucket report its
// lower bound — a floor, not an extrapolation.
func TestQuantileOverflow(t *testing.T) {
	var h Histogram
	h.Observe(time.Duration(math.MaxInt64))
	s := h.Snapshot()
	if got, want := s.Quantile(0.5), time.Duration(1)<<39; got != want {
		t.Errorf("overflow p50 = %v, want %v (bucket lower bound)", got, want)
	}
}

// TestSnapshotMerge: merging two snapshots must equal observing the
// union into one histogram, bucket for bucket.
func TestSnapshotMerge(t *testing.T) {
	var a, b, all Histogram
	obsA := []time.Duration{0, 1, 1024, time.Duration(1) << 39}
	obsB := []time.Duration{3, 1023, 1 << 20, time.Duration(math.MaxInt64)}
	for _, d := range obsA {
		a.Observe(d)
		all.Observe(d)
	}
	for _, d := range obsB {
		b.Observe(d)
		all.Observe(d)
	}
	merged := a.Snapshot()
	bs := b.Snapshot()
	merged.Merge(&bs)
	if want := all.Snapshot(); merged != want {
		t.Fatalf("merged snapshot differs from union:\n merged: %+v\n union:  %+v", merged, want)
	}
	union := all.Snapshot()
	if got, want := merged.Quantile(1.0), union.Quantile(1.0); got != want {
		t.Errorf("merged p100 %v != union p100 %v", got, want)
	}
}

func TestMeanAndSummary(t *testing.T) {
	var h Histogram
	h.Observe(100)
	h.Observe(300)
	s := h.Snapshot()
	if got := s.Mean(); got != 200 {
		t.Errorf("mean = %v, want 200ns", got)
	}
	sum := s.Summary()
	if sum.Count != 2 || sum.Sum != 400 || sum.Mean != 200 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.P50 > sum.P90 || sum.P90 > sum.P99 {
		t.Errorf("quantiles not monotone: %+v", sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const per = 1000
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8*per {
		t.Fatalf("count = %d, want %d", got, 8*per)
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Errorf("gauge = %d, want 4", g.Load())
	}
}

func TestRateEWMA(t *testing.T) {
	t0 := time.Unix(1000, 0)
	e := NewRateEWMA(5 * time.Second)
	if r := e.Rate(t0); r != 0 {
		t.Fatalf("initial rate = %g, want 0", r)
	}
	// A steady 10/s stream converges toward 10/s.
	tm := t0
	for i := 0; i < 200; i++ {
		tm = tm.Add(100 * time.Millisecond)
		e.Observe(tm)
	}
	if r := e.Rate(tm); r < 8 || r > 12 {
		t.Fatalf("steady-state rate = %g, want ≈10", r)
	}
	// One half-life idle halves the estimate; many half-lives drain it.
	r0 := e.Rate(tm)
	rHalf := e.Rate(tm.Add(5 * time.Second))
	if math.Abs(rHalf-r0/2) > 0.01*r0 {
		t.Errorf("after one half-life: %g, want %g", rHalf, r0/2)
	}
	if r := e.Rate(tm.Add(10 * time.Minute)); r > 0.01 {
		t.Errorf("after long idle: %g, want ≈0", r)
	}
}

func TestDurEWMA(t *testing.T) {
	e := NewDurEWMA(0.5)
	if e.Value() != 0 {
		t.Fatalf("initial value = %v, want 0", e.Value())
	}
	e.Observe(100 * time.Millisecond)
	if e.Value() != 100*time.Millisecond {
		t.Fatalf("seed = %v, want 100ms", e.Value())
	}
	e.Observe(200 * time.Millisecond)
	if e.Value() != 150*time.Millisecond {
		t.Fatalf("after second obs = %v, want 150ms", e.Value())
	}
}

func TestWritePromSummary(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	s := h.Snapshot()
	var b strings.Builder
	WritePromSummaryHeader(&b, "x_seconds", "test metric")
	WritePromSummary(&b, "x_seconds", `workload="BFS"`, &s)
	out := b.String()
	for _, want := range []string{
		"# TYPE x_seconds summary\n",
		`x_seconds{workload="BFS",quantile="0.5"} `,
		`x_seconds{workload="BFS",quantile="0.99"} `,
		`x_seconds_sum{workload="BFS"} 1` + "\n",
		`x_seconds_count{workload="BFS"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition output missing %q:\n%s", want, out)
		}
	}
	// Unlabelled series must not emit empty braces.
	b.Reset()
	WritePromSummary(&b, "y_seconds", "", &s)
	if strings.Contains(b.String(), "{}") || !strings.Contains(b.String(), `y_seconds{quantile="0.5"}`) {
		t.Errorf("unlabelled exposition malformed:\n%s", b.String())
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := EscapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("EscapeLabel = %q", got)
	}
}
