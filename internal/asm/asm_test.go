package asm

import (
	"strings"
	"testing"

	"mobilesim/internal/cpu"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src, 0x1000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func decodeAt(p *Program, i int) cpu.Inst {
	w := uint32(p.Code[i*4]) | uint32(p.Code[i*4+1])<<8 |
		uint32(p.Code[i*4+2])<<16 | uint32(p.Code[i*4+3])<<24
	return cpu.Decode(w)
}

func TestBasicEncoding(t *testing.T) {
	p := mustAssemble(t, `
    add  x1, x2, x3
    addi x4, x5, #-7
    movz x6, #0xabcd, lsl #16
    ldrx x7, [x8, #24]
    strb x9, [x10]
`)
	want := []cpu.Inst{
		{Op: cpu.OpADD, Rd: 1, Rn: 2, Rm: 3},
		{Op: cpu.OpADDI, Rd: 4, Rn: 5, Imm: -7},
		{Op: cpu.OpMOVZ, Rd: 6, Rm: 1, Imm: 0xabcd},
		{Op: cpu.OpLDRX, Rd: 7, Rn: 8, Imm: 24},
		{Op: cpu.OpSTRB, Rd: 9, Rn: 10},
	}
	for i, w := range want {
		if got := decodeAt(p, i); got != w {
			t.Errorf("inst %d: got %+v want %+v", i, got, w)
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
start:
    nop
    b    end
    nop
end:
    hlt
`)
	if p.MustEntry("start") != 0x1000 {
		t.Errorf("start = %#x", p.MustEntry("start"))
	}
	if p.MustEntry("end") != 0x100c {
		t.Errorf("end = %#x", p.MustEntry("end"))
	}
	b := decodeAt(p, 1) // the b instruction at 0x1004
	if b.Op != cpu.OpB || b.Imm != 2 {
		t.Errorf("branch: %+v (want word offset 2)", b)
	}
}

func TestBackwardBranch(t *testing.T) {
	p := mustAssemble(t, `
loop:
    subi x1, x1, #1
    b.ne loop
`)
	b := decodeAt(p, 1)
	if b.Op != cpu.OpBCOND || b.Cond != cpu.CondNE || b.Imm != -1 {
		t.Errorf("backward branch: %+v", b)
	}
}

func TestAliases(t *testing.T) {
	p := mustAssemble(t, `
    mov  x1, x2
    mov  x3, #77
    cmp  x1, x2
    cmpi x1, #5
    ret
`)
	checks := []cpu.Inst{
		{Op: cpu.OpORR, Rd: 1, Rn: cpu.ZR, Rm: 2},
		{Op: cpu.OpMOVZ, Rd: 3, Imm: 77},
		{Op: cpu.OpSUBS, Rd: cpu.ZR, Rn: 1, Rm: 2},
		{Op: cpu.OpSUBSI, Rd: cpu.ZR, Rn: 1, Imm: 5},
		{Op: cpu.OpBR, Rn: cpu.LR},
	}
	for i, w := range checks {
		if got := decodeAt(p, i); got != w {
			t.Errorf("inst %d: got %+v want %+v", i, got, w)
		}
	}
}

func TestSysRegsSymbolicAndNumeric(t *testing.T) {
	p := mustAssemble(t, `
    mrs x1, ttbr0
    msr vbar, x2
    mrs x3, s8
`)
	if got := decodeAt(p, 0); got.Op != cpu.OpMRS || got.Imm != int64(cpu.SysTTBR0) {
		t.Errorf("mrs ttbr0: %+v", got)
	}
	if got := decodeAt(p, 1); got.Op != cpu.OpMSR || got.Imm != int64(cpu.SysVBAR) || got.Rd != 2 {
		t.Errorf("msr vbar: %+v", got)
	}
	if got := decodeAt(p, 2); got.Imm != int64(cpu.SysIE) {
		t.Errorf("mrs s8: %+v", got)
	}
}

func TestDirectives(t *testing.T) {
	p := mustAssemble(t, `
    .word 0xdeadbeef
buf:
    .zero 10
after:
    nop
`)
	if p.Code[0] != 0xef || p.Code[3] != 0xde {
		t.Errorf(".word bytes: % x", p.Code[:4])
	}
	// .zero rounds to 12 bytes, so "after" is at 0x1000+4+12.
	if p.MustEntry("after") != 0x1010 {
		t.Errorf("after = %#x", p.MustEntry("after"))
	}
}

func TestCommentsAndLabelsOnSameLine(t *testing.T) {
	p := mustAssemble(t, `
main: movz x1, #1   // set up
    nop             ; trailing comment style two
`)
	if p.MustEntry("main") != 0x1000 {
		t.Error("label on instruction line not recorded")
	}
	if got := decodeAt(p, 0); got.Op != cpu.OpMOVZ || got.Imm != 1 {
		t.Errorf("inst after label: %+v", got)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "frobnicate x1, x2"},
		{"bad register", "add x1, x99, x2"},
		{"undefined label", "b nowhere"},
		{"duplicate label", "a:\nnop\na:\nnop"},
		{"imm out of range", "addi x1, x2, #999999"},
		{"movz range", "movz x1, #0x12345"},
		{"bad shift", "movz x1, #1, lsl #8"},
		{"bad sysreg", "mrs x1, bogus"},
		{"bad mem operand", "ldrx x1, x2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Assemble(c.src, 0x1000); err == nil {
				t.Errorf("expected error for %q", c.src)
			} else if !strings.Contains(err.Error(), "line") {
				t.Errorf("error should carry line info: %v", err)
			}
		})
	}
}

func TestUnalignedBaseRejected(t *testing.T) {
	if _, err := Assemble("nop", 0x1002); err == nil {
		t.Error("unaligned base accepted")
	}
}

func TestEntryErrors(t *testing.T) {
	p := mustAssemble(t, "main: nop")
	if _, err := p.Entry("missing"); err == nil {
		t.Error("Entry should fail for unknown symbols")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEntry should panic for unknown symbols")
		}
	}()
	p.MustEntry("missing")
}
