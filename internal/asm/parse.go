package asm

import (
	"fmt"
	"strconv"
	"strings"

	"mobilesim/internal/cpu"
)

var regNames = func() map[string]uint8 {
	m := make(map[string]uint8)
	for i := 0; i <= 30; i++ {
		m[fmt.Sprintf("x%d", i)] = uint8(i)
	}
	m["x31"] = cpu.ZR
	m["xzr"] = cpu.ZR
	m["lr"] = cpu.LR
	m["sp"] = 28
	return m
}()

var condNames = map[string]cpu.Cond{
	"eq": cpu.CondEQ, "ne": cpu.CondNE, "hs": cpu.CondHS, "cs": cpu.CondHS,
	"lo": cpu.CondLO, "cc": cpu.CondLO, "mi": cpu.CondMI, "pl": cpu.CondPL,
	"vs": cpu.CondVS, "vc": cpu.CondVC, "hi": cpu.CondHI, "ls": cpu.CondLS,
	"ge": cpu.CondGE, "lt": cpu.CondLT, "gt": cpu.CondGT, "le": cpu.CondLE,
	"al": cpu.CondAL,
}

var rrrOps = map[string]cpu.Opcode{
	"add": cpu.OpADD, "sub": cpu.OpSUB, "and": cpu.OpAND, "orr": cpu.OpORR,
	"eor": cpu.OpEOR, "mul": cpu.OpMUL, "sdiv": cpu.OpSDIV, "udiv": cpu.OpUDIV,
	"lsl": cpu.OpLSL, "lsr": cpu.OpLSR, "asr": cpu.OpASR,
	"adds": cpu.OpADDS, "subs": cpu.OpSUBS,
}

var rriOps = map[string]cpu.Opcode{
	"addi": cpu.OpADDI, "subi": cpu.OpSUBI, "andi": cpu.OpANDI,
	"orri": cpu.OpORRI, "eori": cpu.OpEORI, "lsli": cpu.OpLSLI,
	"lsri": cpu.OpLSRI, "asri": cpu.OpASRI, "subsi": cpu.OpSUBSI,
}

var memOps = map[string]cpu.Opcode{
	"ldrb": cpu.OpLDRB, "ldrh": cpu.OpLDRH, "ldrw": cpu.OpLDRW, "ldrx": cpu.OpLDRX,
	"strb": cpu.OpSTRB, "strh": cpu.OpSTRH, "strw": cpu.OpSTRW, "strx": cpu.OpSTRX,
}

// parseLine assembles one instruction or directive into an item.
func parseLine(line string, lineNo int, raw string) (item, error) {
	bad := func(msg string) (item, error) {
		return item{}, &Error{Line: lineNo, Text: raw, Msg: msg}
	}
	mn, rest := splitMnemonic(line)
	ops := splitOperands(rest)
	it := item{line: lineNo, text: raw}

	reg := func(i int) (uint8, error) {
		if i >= len(ops) {
			return 0, fmt.Errorf("missing operand %d", i+1)
		}
		r, ok := regNames[ops[i]]
		if !ok {
			return 0, fmt.Errorf("bad register %q", ops[i])
		}
		return r, nil
	}
	immediate := func(i int) (int64, error) {
		if i >= len(ops) {
			return 0, fmt.Errorf("missing immediate operand %d", i+1)
		}
		return parseImm(ops[i])
	}

	switch mn {
	case ".word":
		v, err := immediate(0)
		if err != nil {
			return bad(err.Error())
		}
		it.isRaw = true
		it.word = uint32(v)
		return it, nil
	case ".zero":
		v, err := immediate(0)
		if err != nil || v <= 0 {
			return bad(".zero needs a positive size")
		}
		it.zero = int(v)
		return it, nil

	case "nop":
		it.inst = cpu.Inst{Op: cpu.OpNOP}
		return it, nil
	case "hlt":
		it.inst = cpu.Inst{Op: cpu.OpHLT}
		return it, nil
	case "eret":
		it.inst = cpu.Inst{Op: cpu.OpERET}
		return it, nil
	case "wfi":
		it.inst = cpu.Inst{Op: cpu.OpWFI}
		return it, nil
	case "ret":
		it.inst = cpu.Inst{Op: cpu.OpBR, Rn: cpu.LR}
		return it, nil
	case "svc":
		v, err := immediate(0)
		if err != nil {
			return bad(err.Error())
		}
		it.inst = cpu.Inst{Op: cpu.OpSVC, Imm: v}
		return it, nil

	case "mrs":
		rd, err := reg(0)
		if err != nil {
			return bad(err.Error())
		}
		sr, err := parseSysReg(opAt(ops, 1))
		if err != nil {
			return bad(err.Error())
		}
		it.inst = cpu.Inst{Op: cpu.OpMRS, Rd: rd, Imm: int64(sr)}
		return it, nil
	case "msr":
		sr, err := parseSysReg(opAt(ops, 0))
		if err != nil {
			return bad(err.Error())
		}
		rd, err := reg(1)
		if err != nil {
			return bad(err.Error())
		}
		it.inst = cpu.Inst{Op: cpu.OpMSR, Rd: rd, Imm: int64(sr)}
		return it, nil

	case "mov": // alias: orr rd, xzr, rm  /  movz rd, #imm for immediates
		rd, err := reg(0)
		if err != nil {
			return bad(err.Error())
		}
		if len(ops) > 1 && strings.HasPrefix(ops[1], "#") {
			v, err := immediate(1)
			if err != nil {
				return bad(err.Error())
			}
			if v < 0 || v > 0xFFFF {
				return bad("mov immediate out of 16-bit range; use movz/movk")
			}
			it.inst = cpu.Inst{Op: cpu.OpMOVZ, Rd: rd, Imm: v}
			return it, nil
		}
		rm, err := reg(1)
		if err != nil {
			return bad(err.Error())
		}
		it.inst = cpu.Inst{Op: cpu.OpORR, Rd: rd, Rn: cpu.ZR, Rm: rm}
		return it, nil

	case "movz", "movk":
		rd, err := reg(0)
		if err != nil {
			return bad(err.Error())
		}
		v, err := immediate(1)
		if err != nil {
			return bad(err.Error())
		}
		if v < 0 || v > 0xFFFF {
			return bad("movz/movk immediate out of 16-bit range")
		}
		hw := int64(0)
		if len(ops) >= 3 {
			sh, err := parseShift(ops[2])
			if err != nil {
				return bad(err.Error())
			}
			hw = sh / 16
		}
		op := cpu.OpMOVZ
		if mn == "movk" {
			op = cpu.OpMOVK
		}
		it.inst = cpu.Inst{Op: op, Rd: rd, Rm: uint8(hw), Imm: v}
		return it, nil

	case "cmp": // alias: subs xzr, rn, rm
		rn, err := reg(0)
		if err != nil {
			return bad(err.Error())
		}
		rm, err := reg(1)
		if err != nil {
			return bad(err.Error())
		}
		it.inst = cpu.Inst{Op: cpu.OpSUBS, Rd: cpu.ZR, Rn: rn, Rm: rm}
		return it, nil
	case "cmpi": // alias: subsi xzr, rn, #imm
		rn, err := reg(0)
		if err != nil {
			return bad(err.Error())
		}
		v, err := immediate(1)
		if err != nil {
			return bad(err.Error())
		}
		it.inst = cpu.Inst{Op: cpu.OpSUBSI, Rd: cpu.ZR, Rn: rn, Imm: v}
		return it, nil

	case "csel":
		rd, err1 := reg(0)
		rn, err2 := reg(1)
		rm, err3 := reg(2)
		if err1 != nil || err2 != nil || err3 != nil {
			return bad("csel needs rd, rn, rm, cond")
		}
		cond, ok := condNames[opAt(ops, 3)]
		if !ok {
			return bad("bad csel condition")
		}
		it.inst = cpu.Inst{Op: cpu.OpCSEL, Rd: rd, Rn: rn, Rm: rm, Cond: cond}
		return it, nil

	case "b":
		it.inst = cpu.Inst{Op: cpu.OpB}
		it.label = opAt(ops, 0)
		return it, nil
	case "bl":
		it.inst = cpu.Inst{Op: cpu.OpBL}
		it.label = opAt(ops, 0)
		return it, nil
	case "br":
		rn, err := reg(0)
		if err != nil {
			return bad(err.Error())
		}
		it.inst = cpu.Inst{Op: cpu.OpBR, Rn: rn}
		return it, nil
	case "blr":
		rn, err := reg(0)
		if err != nil {
			return bad(err.Error())
		}
		it.inst = cpu.Inst{Op: cpu.OpBLR, Rn: rn}
		return it, nil
	}

	if cond, ok := strings.CutPrefix(mn, "b."); ok {
		cc, okc := condNames[cond]
		if !okc {
			return bad("bad branch condition " + cond)
		}
		it.inst = cpu.Inst{Op: cpu.OpBCOND, Cond: cc}
		it.label = opAt(ops, 0)
		return it, nil
	}

	if op, ok := rrrOps[mn]; ok {
		rd, err1 := reg(0)
		rn, err2 := reg(1)
		rm, err3 := reg(2)
		if err1 != nil || err2 != nil || err3 != nil {
			return bad(mn + " needs rd, rn, rm")
		}
		it.inst = cpu.Inst{Op: op, Rd: rd, Rn: rn, Rm: rm}
		return it, nil
	}
	if op, ok := rriOps[mn]; ok {
		rd, err1 := reg(0)
		rn, err2 := reg(1)
		v, err3 := immediate(2)
		if err1 != nil || err2 != nil || err3 != nil {
			return bad(mn + " needs rd, rn, #imm")
		}
		if v < -(1<<14) || v >= 1<<14 {
			return bad("immediate out of 15-bit signed range")
		}
		it.inst = cpu.Inst{Op: op, Rd: rd, Rn: rn, Imm: v}
		return it, nil
	}
	if op, ok := memOps[mn]; ok {
		rd, err := reg(0)
		if err != nil {
			return bad(err.Error())
		}
		rn, off, err := parseMemOperand(strings.Join(ops[1:], ","))
		if err != nil {
			return bad(err.Error())
		}
		it.inst = cpu.Inst{Op: op, Rd: rd, Rn: rn, Imm: off}
		return it, nil
	}

	return bad("unknown mnemonic " + mn)
}

func opAt(ops []string, i int) string {
	if i < len(ops) {
		return ops[i]
	}
	return ""
}

func splitMnemonic(line string) (mn, rest string) {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return strings.ToLower(line), ""
	}
	return strings.ToLower(line[:i]), strings.TrimSpace(line[i+1:])
}

// splitOperands splits on commas that are not inside brackets.
func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

var sysRegNames = map[string]cpu.SysReg{
	"ttbr0": cpu.SysTTBR0, "vbar": cpu.SysVBAR, "sctlr": cpu.SysSCTLR,
	"esr": cpu.SysESR, "far": cpu.SysFAR, "elr": cpu.SysELR,
	"spsr": cpu.SysSPSR, "cpuid": cpu.SysCPUID, "ie": cpu.SysIE,
	"scratch0": cpu.SysSCRATCH0, "scratch1": cpu.SysSCRATCH1,
}

// parseSysReg accepts symbolic names ("ttbr0") or numeric "sN" form.
func parseSysReg(s string) (cpu.SysReg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := sysRegNames[s]; ok {
		return r, nil
	}
	if rest, ok := strings.CutPrefix(s, "s"); ok {
		v, err := strconv.ParseUint(rest, 10, 8)
		if err == nil && v < uint64(cpu.NumSysRegs) {
			return cpu.SysReg(v), nil
		}
	}
	return 0, fmt.Errorf("bad system register %q", s)
}

func parseImm(s string) (int64, error) {
	s = strings.TrimPrefix(s, "#")
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	r := int64(v)
	if neg {
		r = -r
	}
	return r, nil
}

func parseShift(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	s, ok := strings.CutPrefix(s, "lsl")
	if !ok {
		return 0, fmt.Errorf("expected lsl #n, got %q", s)
	}
	v, err := parseImm(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	if v != 0 && v != 16 && v != 32 && v != 48 {
		return 0, fmt.Errorf("shift must be 0/16/32/48")
	}
	return v, nil
}

// parseMemOperand parses "[xN]" or "[xN, #imm]".
func parseMemOperand(s string) (rn uint8, off int64, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	parts := strings.Split(inner, ",")
	r, ok := regNames[strings.TrimSpace(parts[0])]
	if !ok {
		return 0, 0, fmt.Errorf("bad base register in %q", s)
	}
	if len(parts) == 1 {
		return r, 0, nil
	}
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	v, err := parseImm(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, err
	}
	if v < -(1<<14) || v >= 1<<14 {
		return 0, 0, fmt.Errorf("offset out of range in %q", s)
	}
	return r, v, nil
}
