// Package asm implements a two-pass assembler for the VA64 guest ISA, so
// that genuine guest code — boot stubs, driver helper routines, example
// programs — executes on the simulated CPU. Syntax is AArch64-flavoured:
//
//	// comment  or  ; comment
//	label:
//	    movz  x0, #0x1000          // 16-bit immediate, optional lsl #16/32/48
//	    movk  x0, #0xdead, lsl #16
//	    add   x1, x2, x3
//	    addi  x1, x2, #-12
//	    ldrx  x4, [x5, #8]
//	    cmp   x1, x2               // alias of subs xzr, x1, x2
//	    cmpi  x1, #7
//	    mov   x1, x2               // alias of orr x1, xzr, x2
//	    b     loop
//	    b.ne  loop
//	    bl    func
//	    ret                        // alias of br x30
//	    .word 0xdeadbeef
//	    .zero 64
//
// Registers are x0..x30, xzr (or x31), sp (alias of x28), lr (x30).
package asm

import (
	"fmt"
	"strings"

	"mobilesim/internal/cpu"
)

// Program is the result of assembly: a flat binary image plus the symbol
// table, relative to the chosen base address.
type Program struct {
	Base    uint64
	Code    []byte
	Symbols map[string]uint64
}

// Entry returns the address of a label, or an error when undefined.
func (p *Program) Entry(label string) (uint64, error) {
	a, ok := p.Symbols[label]
	if !ok {
		return 0, fmt.Errorf("asm: undefined symbol %q", label)
	}
	return a, nil
}

// MustEntry is Entry for known-good labels in tests and fixed firmware.
func (p *Program) MustEntry(label string) uint64 {
	a, err := p.Entry(label)
	if err != nil {
		panic(err)
	}
	return a
}

// Error is an assembly diagnostic with source position.
type Error struct {
	Line int
	Text string
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("asm: line %d: %s (in %q)", e.Line, e.Msg, e.Text)
}

type item struct {
	line  int
	text  string
	addr  uint64
	label string // pending fixup label for branch instructions
	inst  cpu.Inst
	word  uint32 // raw .word payload
	isRaw bool
	zero  int // .zero size in bytes
}

// Assemble translates source into a Program loaded at base.
func Assemble(src string, base uint64) (*Program, error) {
	if base%4 != 0 {
		return nil, fmt.Errorf("asm: base %#x not word aligned", base)
	}
	p := &Program{Base: base, Symbols: make(map[string]uint64)}
	var items []item
	addr := base

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,[") {
				break
			}
			label := line[:i]
			if _, dup := p.Symbols[label]; dup {
				return nil, &Error{Line: lineNo + 1, Text: raw, Msg: "duplicate label " + label}
			}
			p.Symbols[label] = addr
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		it, err := parseLine(line, lineNo+1, raw)
		if err != nil {
			return nil, err
		}
		it.addr = addr
		if it.zero > 0 {
			sz := (it.zero + 3) &^ 3
			addr += uint64(sz)
		} else {
			addr += 4
		}
		items = append(items, it)
	}

	// Second pass: resolve labels, emit.
	for _, it := range items {
		if it.zero > 0 {
			p.Code = append(p.Code, make([]byte, (it.zero+3)&^3)...)
			continue
		}
		if it.isRaw {
			p.Code = appendWord(p.Code, it.word)
			continue
		}
		in := it.inst
		if it.label != "" {
			target, ok := p.Symbols[it.label]
			if !ok {
				return nil, &Error{Line: it.line, Text: it.text, Msg: "undefined label " + it.label}
			}
			delta := int64(target-it.addr) / 4
			in.Imm = delta
			switch in.Op {
			case cpu.OpB, cpu.OpBL:
				if delta < -(1<<24) || delta >= 1<<24 {
					return nil, &Error{Line: it.line, Text: it.text, Msg: "branch out of range"}
				}
			case cpu.OpBCOND:
				if delta < -(1<<20) || delta >= 1<<20 {
					return nil, &Error{Line: it.line, Text: it.text, Msg: "conditional branch out of range"}
				}
			}
		}
		p.Code = appendWord(p.Code, cpu.Encode(in))
	}
	return p, nil
}

func appendWord(b []byte, w uint32) []byte {
	return append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
}

func stripComment(s string) string {
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, ";"); i >= 0 {
		s = s[:i]
	}
	return s
}
