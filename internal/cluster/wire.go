package cluster

import (
	"crypto/sha256"
	"encoding/hex"

	"mobilesim/internal/stats"
)

// This file is the single source of truth for the cluster wire protocol
// (DESIGN.md §11): the JSON shapes exchanged between the coordinator
// (Cluster, cmd/mobilesimctl) and the per-host executor (internal/hostd,
// cmd/mobilesimd). Client and server both compile against these types, so
// the two halves cannot drift.

// Protocol endpoints, relative to a host's base URL.
const (
	PathHealth   = "/healthz"
	PathSnapshot = "/api/v1/snapshot"
	PathRun      = "/api/v1/run"
	PathStats    = "/api/v1/stats"
)

// DedupHeader marks a /api/v1/run response that was replayed from the
// host's idempotency store instead of executing again. Its value is "hit".
const DedupHeader = "X-Mobilesimd-Dedup"

// Error codes carried by ErrorResponse.Code. Plain-text errors (bad JSON,
// unknown workloads) have no code.
const (
	// CodeUnknownSnapshot: the run named a snapshot ref the host does not
	// have installed — the client should re-ship and retry.
	CodeUnknownSnapshot = "unknown_snapshot"
)

// Ref computes the content address of an encoded snapshot. Snapshot
// encoding is deterministic (DESIGN.md §8), so the same captured state
// always yields the same ref on every host.
func Ref(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// RunRequest is the POST /api/v1/run body.
type RunRequest struct {
	Workload string `json:"workload"`
	Scale    int    `json:"scale"`
	// Verify checks the simulated output against the host-native
	// reference (default true; explicitly false to skip).
	Verify *bool `json:"verify,omitempty"`
	// TimeoutMS bounds the run; an expired timeout soft-stops the kernel
	// at a clause boundary.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Snapshot selects an installed snapshot ref (see PathSnapshot) to
	// fork the run's session from; empty means the host's default
	// boot-time pool.
	Snapshot string `json:"snapshot,omitempty"`
	// IdempotencyKey makes the run at-most-once per host: a retried or
	// hedged delivery of the same key replays the recorded response
	// (DedupHeader set) instead of executing — and is not double-counted.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// RunStats is the per-run statistics delta on the wire. GPU and System
// are exact integer counter records; DriverCPUNS carries the driver CPU
// time losslessly (DriverCPUMS is a rounded human-friendly mirror).
type RunStats struct {
	GPU               stats.GPUStats    `json:"gpu"`
	System            stats.SystemStats `json:"system"`
	DriverCPUMS       float64           `json:"driver_cpu_ms"`
	DriverCPUNS       int64             `json:"driver_cpu_ns"`
	GuestInstructions uint64            `json:"guest_instructions"`
}

// Merge accumulates another run's delta. All fields are sums of integer
// counters (RegistersUsed is a max), so merging is order-independent:
// any merge order over the same set of deltas yields identical bytes.
func (s *RunStats) Merge(o *RunStats) {
	s.GPU.Merge(&o.GPU)
	s.System.Merge(&o.System)
	s.DriverCPUNS += o.DriverCPUNS
	s.DriverCPUMS = float64(s.DriverCPUNS) / 1e6
	s.GuestInstructions += o.GuestInstructions
}

// RunResponse is the result of one run: outcome, timings and the per-run
// statistics delta.
type RunResponse struct {
	Workload    string `json:"workload"`
	Kind        string `json:"kind"`
	Scale       int    `json:"scale"`
	Verified    bool   `json:"verified"`
	VerifyError string `json:"verify_error,omitempty"`

	SimMS    float64 `json:"sim_ms"`
	NativeMS float64 `json:"native_ms,omitempty"`
	WallMS   float64 `json:"wall_ms"`

	Stats RunStats `json:"stats"`
}

// SnapshotResponse is the result of POST /api/v1/snapshot.
type SnapshotResponse struct {
	// Ref is the content address of the installed snapshot (see Ref).
	Ref string `json:"ref"`
	// AlreadyInstalled reports that the host had this ref installed
	// before the request — installation is idempotent.
	AlreadyInstalled bool `json:"already_installed,omitempty"`
	// Workload echoes the optional ?workload= label the snapshot's warm
	// pool is registered under.
	Workload string `json:"workload,omitempty"`
}

// ErrorResponse is the error envelope every non-2xx response carries.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
