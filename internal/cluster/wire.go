package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"time"

	"mobilesim/internal/stats"
)

// This file is the single source of truth for the cluster wire protocol
// (DESIGN.md §11): the JSON shapes exchanged between the coordinator
// (Cluster, cmd/mobilesimctl) and the per-host executor (internal/hostd,
// cmd/mobilesimd). Client and server both compile against these types, so
// the two halves cannot drift.

// Protocol endpoints, relative to a host's base URL.
const (
	PathHealth   = "/healthz"
	PathSnapshot = "/api/v1/snapshot"
	PathRun      = "/api/v1/run"
	PathStats    = "/api/v1/stats"
	// PathMetrics serves the same counters and latency summaries as
	// PathStats in Prometheus text exposition format.
	PathMetrics = "/metrics"
)

// DedupHeader marks a /api/v1/run response that was replayed from the
// host's idempotency store instead of executing again. Its value is "hit".
const DedupHeader = "X-Mobilesimd-Dedup"

// Error codes carried by ErrorResponse.Code. Plain-text errors (bad JSON,
// unknown workloads) have no code.
const (
	// CodeUnknownSnapshot: the run named a snapshot ref the host does not
	// have installed — the client should re-ship and retry.
	CodeUnknownSnapshot = "unknown_snapshot"
)

// Ref computes the content address of an encoded snapshot. Snapshot
// encoding is deterministic (DESIGN.md §8), so the same captured state
// always yields the same ref on every host.
func Ref(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// RunRequest is the POST /api/v1/run body.
type RunRequest struct {
	Workload string `json:"workload"`
	Scale    int    `json:"scale"`
	// Verify checks the simulated output against the host-native
	// reference (default true; explicitly false to skip).
	Verify *bool `json:"verify,omitempty"`
	// TimeoutMS bounds the run; an expired timeout soft-stops the kernel
	// at a clause boundary.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Snapshot selects an installed snapshot ref (see PathSnapshot) to
	// fork the run's session from; empty means the host's default
	// boot-time pool.
	Snapshot string `json:"snapshot,omitempty"`
	// IdempotencyKey makes the run at-most-once per host: a retried or
	// hedged delivery of the same key replays the recorded response
	// (DedupHeader set) instead of executing — and is not double-counted.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// RunStats is the per-run statistics delta on the wire. GPU and System
// are exact integer counter records; DriverCPUNS carries the driver CPU
// time losslessly.
type RunStats struct {
	GPU    stats.GPUStats    `json:"gpu"`
	System stats.SystemStats `json:"system"`
	// DriverCPUMS mirrors DriverCPUNS in milliseconds for human readers.
	// It is never set independently: MakeRunStats and Merge derive it
	// from DriverCPUNS (msFromNS), the lossless source of truth.
	//
	// Deprecated: read DriverCPUNS. The field keeps being emitted for
	// wire compatibility with existing consumers and will be dropped in a
	// future protocol revision.
	DriverCPUMS       float64 `json:"driver_cpu_ms"`
	DriverCPUNS       int64   `json:"driver_cpu_ns"`
	GuestInstructions uint64  `json:"guest_instructions"`
}

// msFromNS is the one place the deprecated millisecond mirror is derived
// from the lossless nanosecond field.
func msFromNS(ns int64) float64 { return float64(ns) / 1e6 }

// MakeRunStats composes the wire statistics record from per-run
// counters. Every producer (internal/hostd today) must build RunStats
// through it so DriverCPUMS cannot drift from DriverCPUNS.
func MakeRunStats(gpu stats.GPUStats, system stats.SystemStats, driverCPU time.Duration, guestInstructions uint64) RunStats {
	ns := int64(driverCPU)
	return RunStats{
		GPU:               gpu,
		System:            system,
		DriverCPUMS:       msFromNS(ns),
		DriverCPUNS:       ns,
		GuestInstructions: guestInstructions,
	}
}

// Merge accumulates another run's delta. All fields are sums of integer
// counters (RegistersUsed is a max), so merging is order-independent:
// any merge order over the same set of deltas yields identical bytes.
// The deprecated millisecond mirror is recomputed from the summed
// nanoseconds, never summed itself.
func (s *RunStats) Merge(o *RunStats) {
	s.GPU.Merge(&o.GPU)
	s.System.Merge(&o.System)
	s.DriverCPUNS += o.DriverCPUNS
	s.DriverCPUMS = msFromNS(s.DriverCPUNS)
	s.GuestInstructions += o.GuestInstructions
}

// Modeled carries the analytical cost-model estimates for one run: the
// Mali-G71 mobile and K20m desktop relative runtimes evaluated on the
// run's own statistics delta. Both are pure functions of the
// deterministic counters, so the values a cluster host reports are
// bit-identical to a local run of the same job.
type Modeled struct {
	MobileCycles  float64 `json:"mobile_cycles"`
	DesktopCycles float64 `json:"desktop_cycles"`
}

// RunResponse is the result of one run: outcome, timings, the per-run
// statistics delta and the modelled cost estimates.
type RunResponse struct {
	Workload    string `json:"workload"`
	Kind        string `json:"kind"`
	Scale       int    `json:"scale"`
	Verified    bool   `json:"verified"`
	VerifyError string `json:"verify_error,omitempty"`

	SimMS    float64 `json:"sim_ms"`
	NativeMS float64 `json:"native_ms,omitempty"`
	WallMS   float64 `json:"wall_ms"`
	// QueueWaitMS is time the run spent queued on its session's command
	// queue before executing (usually ~0 on a fresh pool fork).
	QueueWaitMS float64 `json:"queue_wait_ms"`

	Stats   RunStats `json:"stats"`
	Modeled Modeled  `json:"modeled"`
}

// SnapshotResponse is the result of POST /api/v1/snapshot.
type SnapshotResponse struct {
	// Ref is the content address of the installed snapshot (see Ref).
	Ref string `json:"ref"`
	// AlreadyInstalled reports that the host had this ref installed
	// before the request — installation is idempotent.
	AlreadyInstalled bool `json:"already_installed,omitempty"`
	// Workload echoes the optional ?workload= label the snapshot's warm
	// pool is registered under.
	Workload string `json:"workload,omitempty"`
}

// ErrorResponse is the error envelope every non-2xx response carries.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
