// Package cluster fans batches of simulation jobs out over N mobilesimd
// hosts: it ships one encoded warm snapshot to every host (content-
// addressed, idempotent), then dispatches jobs with work-stealing,
// bounded retry-with-backoff on host loss, and optional hedged requests
// for tail latency. Per-run statistics deltas come back exactly (integer
// counter records on the wire) and merge in job order, so a cluster run
// aggregates bit-identically to a local Batch run of the same jobs — the
// golden-stats determinism guarantee, end to end.
//
// Delivery discipline: a job may be attempted on several hosts (retries
// after failures, hedges racing a slow host), but exactly one response is
// accepted per job — the first to complete — and only accepted responses
// are merged. Within one host, RunRequest.IdempotencyKey makes duplicate
// deliveries replay the recorded response instead of re-executing. Both
// layers together make "ran at least once, counted exactly once" hold
// under retries, host loss and duplicate deliveries.
package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mobilesim/internal/obs"
)

// ErrNoHosts is returned when every registered host has been marked dead.
var ErrNoHosts = errors.New("cluster: all hosts lost")

// Options configures a Cluster.
type Options struct {
	// Hosts are the mobilesimd base URLs (e.g. "http://10.0.0.1:8900").
	// At least one is required.
	Hosts []string
	// Client is the HTTP client used for every request; nil means a
	// default client with no global timeout (per-attempt lifetimes are
	// governed by the Run context).
	Client *http.Client
	// PerHostStreams is the number of jobs dispatched concurrently to one
	// host (default 2). Total in-flight work is bounded by
	// len(Hosts)*PerHostStreams; idle hosts steal queued jobs simply by
	// having free streams.
	PerHostStreams int
	// MaxAttempts bounds the total request attempts per job, hedges
	// included (default 4). A job whose attempts are exhausted fails with
	// the last error.
	MaxAttempts int
	// RetryBackoff is the delay before the first retry, doubling per
	// retry (default 50ms). No jitter: cluster sizes are small and
	// deterministic backoff keeps tests reproducible.
	RetryBackoff time.Duration
	// HedgeAfter launches a duplicate of a still-running job on a second
	// host after this delay, racing the two (0 disables hedging). The
	// duplicate carries the same idempotency key; the first response wins
	// and the loser is discarded, never merged.
	HedgeAfter time.Duration
	// HostFailureLimit is the number of consecutive transport/5xx
	// failures after which a host is declared dead and leaves the
	// rotation for the rest of the Cluster's life (default 3).
	HostFailureLimit int
}

func (o *Options) withDefaults() Options {
	d := *o
	if d.Client == nil {
		d.Client = &http.Client{}
	}
	if d.PerHostStreams <= 0 {
		d.PerHostStreams = 2
	}
	if d.MaxAttempts <= 0 {
		d.MaxAttempts = 4
	}
	if d.RetryBackoff <= 0 {
		d.RetryBackoff = 50 * time.Millisecond
	}
	if d.HostFailureLimit <= 0 {
		d.HostFailureLimit = 3
	}
	return d
}

// Job is one unit of cluster work: a registered workload name, an input
// scale and the snapshot ref its session is forked from.
type Job struct {
	Workload string
	Scale    int
	// Verify mirrors RunRequest.Verify (nil = host default, true).
	Verify *bool
	// Snapshot is the installed snapshot ref; Run fills it with the last
	// Ship's ref when empty.
	Snapshot string
}

// JobResult is the outcome of one Job.
type JobResult struct {
	Index int
	Job   Job
	// Host is the base URL of the host whose response was accepted.
	Host string
	// Attempts counts request attempts made (retries and hedges
	// included); Hedged reports that at least one hedge was launched.
	Attempts int
	Hedged   bool
	// Response is the accepted run response; nil when Err is set and no
	// attempt completed.
	Response *RunResponse
	// Err is the failure: exhausted retries, a permanent rejection, a
	// verification failure, or the context error.
	Err error
}

// Result summarises a cluster Run.
type Result struct {
	Jobs []JobResult
	// Completed counts jobs that ran and verified; Failed counts jobs
	// that errored or failed verification; Skipped counts jobs that never
	// produced a response because the context was cancelled.
	Completed, Failed, Skipped int
	// Aggregate merges the accepted per-run deltas in job-index order.
	Aggregate RunStats
	Wall      time.Duration
}

// HostState is one host's registry entry, for observability.
type HostState struct {
	URL  string
	Dead bool
	// Runs counts responses accepted from this host.
	Runs uint64
}

type host struct {
	url   string
	fails atomic.Int64 // consecutive transport/5xx failures
	dead  atomic.Bool
	runs  atomic.Uint64 // accepted responses

	// Attempt latency by kind: first dispatches, retries after a failed
	// round, and hedged duplicates. Failed attempts are observed too —
	// a host that fails fast shows up as a fast histogram with few runs,
	// which is exactly the signal an operator wants.
	dispatchLat obs.Histogram
	retryLat    obs.Histogram
	hedgeLat    obs.Histogram
}

// attemptKind tags which delivery path issued a request attempt, for
// per-host latency attribution.
type attemptKind int

const (
	attemptDispatch attemptKind = iota
	attemptRetry
	attemptHedge
)

func (h *host) observe(kind attemptKind, d time.Duration) {
	switch kind {
	case attemptRetry:
		h.retryLat.Observe(d)
	case attemptHedge:
		h.hedgeLat.Observe(d)
	default:
		h.dispatchLat.Observe(d)
	}
}

// Cluster is a host registry plus dispatch machinery. One Cluster is
// typically used for one Ship + one or more Run calls; dead hosts stay
// dead for its lifetime.
type Cluster struct {
	opts   Options
	client *http.Client
	hosts  []*host

	// slots is the work-stealing core: each live host contributes
	// PerHostStreams tokens. A job acquires a token (i.e. a free stream
	// on some host) to dispatch; faster hosts return tokens sooner and
	// therefore steal more of the queue. Tokens of dead hosts are retired
	// on sight instead of being returned.
	slots   chan *host
	live    atomic.Int64
	allDead chan struct{}
	deadOne sync.Once

	snapMu   sync.Mutex
	snapshot []byte
	snapRef  string

	retries   atomic.Uint64
	hedges    atomic.Uint64
	discarded atomic.Uint64 // completed duplicate responses dropped client-side
	reships   atomic.Uint64
}

// New validates opts and builds the host registry.
func New(opts Options) (*Cluster, error) {
	if len(opts.Hosts) == 0 {
		return nil, errors.New("cluster: no hosts")
	}
	o := opts.withDefaults()
	c := &Cluster{
		opts:    o,
		client:  o.Client,
		allDead: make(chan struct{}),
		slots:   make(chan *host, len(o.Hosts)*o.PerHostStreams),
	}
	seen := make(map[string]bool)
	for _, u := range o.Hosts {
		u = strings.TrimRight(u, "/")
		if u == "" {
			return nil, errors.New("cluster: empty host URL")
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate host %s", u)
		}
		seen[u] = true
		h := &host{url: u}
		c.hosts = append(c.hosts, h)
		for i := 0; i < o.PerHostStreams; i++ {
			c.slots <- h
		}
	}
	c.live.Store(int64(len(c.hosts)))
	return c, nil
}

// Retries counts retry attempts dispatched across all jobs.
func (c *Cluster) Retries() uint64 { return c.retries.Load() }

// Hedges counts hedge attempts launched across all jobs.
func (c *Cluster) Hedges() uint64 { return c.hedges.Load() }

// Discarded counts completed duplicate responses dropped because another
// attempt of the same job had already been accepted.
func (c *Cluster) Discarded() uint64 { return c.discarded.Load() }

// Reships counts snapshot re-installations triggered by hosts reporting
// an unknown snapshot ref.
func (c *Cluster) Reships() uint64 { return c.reships.Load() }

// HostStates reports the registry, in Options.Hosts order.
func (c *Cluster) HostStates() []HostState {
	out := make([]HostState, len(c.hosts))
	for i, h := range c.hosts {
		out[i] = HostState{URL: h.url, Dead: h.dead.Load(), Runs: h.runs.Load()}
	}
	return out
}

// HostLatency is one host's attempt-latency breakdown: every request
// attempt the coordinator issued against the host, split by delivery
// path. Failed attempts are included (a fast-failing host reads as a
// fast histogram with few accepted Runs).
type HostLatency struct {
	URL  string
	Dead bool
	// Runs counts responses accepted from this host.
	Runs uint64
	// Dispatch covers first attempts, Retry covers post-backoff retries,
	// Hedge covers hedged duplicates raced against a slow host.
	Dispatch, Retry, Hedge obs.Snapshot
}

// Report is a point-in-time observability snapshot of the cluster's
// delivery machinery: the lifetime delivery counters plus per-host
// attempt latencies, in Options.Hosts order.
type Report struct {
	Retries, Hedges, Discarded, Reships uint64
	Hosts                               []HostLatency
}

// Report captures the cluster's delivery counters and per-host latency
// histograms.
func (c *Cluster) Report() Report {
	r := Report{
		Retries:   c.retries.Load(),
		Hedges:    c.hedges.Load(),
		Discarded: c.discarded.Load(),
		Reships:   c.reships.Load(),
		Hosts:     make([]HostLatency, len(c.hosts)),
	}
	for i, h := range c.hosts {
		r.Hosts[i] = HostLatency{
			URL:      h.url,
			Dead:     h.dead.Load(),
			Runs:     h.runs.Load(),
			Dispatch: h.dispatchLat.Snapshot(),
			Retry:    h.retryLat.Snapshot(),
			Hedge:    h.hedgeLat.Snapshot(),
		}
	}
	return r
}

// Ship installs an encoded snapshot on every live host and returns its
// content-addressed ref. Hosts that fail to install are marked dead; Ship
// fails only when no host accepted the snapshot. The bytes are retained
// so a host that later reports an unknown ref (e.g. it restarted) can be
// re-shipped transparently during Run.
func (c *Cluster) Ship(ctx context.Context, encoded []byte) (string, error) {
	ref := Ref(encoded)
	var wg sync.WaitGroup
	errs := make([]error, len(c.hosts))
	for i, h := range c.hosts {
		if h.dead.Load() {
			errs[i] = fmt.Errorf("%s: host is dead", h.url)
			continue
		}
		wg.Add(1)
		go func(i int, h *host) {
			defer wg.Done()
			if err := c.install(ctx, h, encoded, ref); err != nil {
				errs[i] = fmt.Errorf("%s: %w", h.url, err)
				c.killHost(h)
			}
		}(i, h)
	}
	wg.Wait()
	ok := 0
	for _, err := range errs {
		if err == nil {
			ok++
		}
	}
	if ok == 0 {
		return "", fmt.Errorf("cluster: snapshot install failed on every host: %w", errors.Join(errs...))
	}
	c.snapMu.Lock()
	c.snapshot = encoded
	c.snapRef = ref
	c.snapMu.Unlock()
	return ref, nil
}

// install POSTs the snapshot to one host and checks the ref round-trip.
func (c *Cluster) install(ctx context.Context, h *host, encoded []byte, ref string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.url+PathSnapshot, bytes.NewReader(encoded))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("install: %s", httpErrorString(resp.StatusCode, body))
	}
	var sr SnapshotResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return fmt.Errorf("install: bad response: %w", err)
	}
	if sr.Ref != ref {
		return fmt.Errorf("install: host computed ref %s, want %s", sr.Ref, ref)
	}
	return nil
}

// Run dispatches every job and blocks until each has an accepted
// response, a terminal failure, or the context is cancelled. Per-job
// failures are reported in the Result, not as an error; the error is
// ctx.Err() after cancellation and nil otherwise.
func (c *Cluster) Run(ctx context.Context, jobs []Job) (*Result, error) {
	t0 := time.Now()
	res := &Result{Jobs: make([]JobResult, len(jobs))}
	if len(jobs) == 0 {
		return res, nil
	}
	// Idempotency keys are runID/index: stable across every retry and
	// hedge of one job, unique across Run calls so two runs of the same
	// job list never dedup against each other.
	runID, err := nonce()
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c.snapMu.Lock()
	defaultRef := c.snapRef
	c.snapMu.Unlock()

	var wg sync.WaitGroup
	for i := range jobs {
		job := jobs[i]
		if job.Snapshot == "" {
			job.Snapshot = defaultRef
		}
		wg.Add(1)
		go func(i int, job Job) {
			defer wg.Done()
			res.Jobs[i] = c.driveJob(ctx, runID, i, job)
		}(i, job)
	}
	wg.Wait()

	// Merge in job-index order. The counters are integer sums (and one
	// max), so the aggregate is order-independent — but fixing the order
	// makes it byte-identical to a local Batch merge by construction.
	for i := range res.Jobs {
		jr := &res.Jobs[i]
		switch {
		case jr.Response != nil:
			res.Aggregate.Merge(&jr.Response.Stats)
			if jr.Err != nil {
				res.Failed++
			} else {
				res.Completed++
			}
		case ctx.Err() != nil && errors.Is(jr.Err, ctx.Err()):
			res.Skipped++
		default:
			res.Failed++
		}
	}
	res.Wall = time.Since(t0)
	return res, ctx.Err()
}

// attemptOutcome is one request attempt's result.
type attemptOutcome struct {
	host *host
	resp *RunResponse
	err  error
	// permanent marks rejections that retrying cannot fix (4xx other
	// than an unknown snapshot): the job fails immediately.
	permanent bool
}

// driveJob owns one job's delivery state machine: acquire a host stream,
// attempt, hedge a duplicate if the attempt outlives HedgeAfter, accept
// the first completed response, retry with exponential backoff on
// retryable failures, give up after MaxAttempts.
func (c *Cluster) driveJob(ctx context.Context, runID string, idx int, job Job) JobResult {
	jr := JobResult{Index: idx, Job: job}
	key := runID + "/" + strconv.Itoa(idx)
	backoff := c.opts.RetryBackoff
	var avoid *host

	for jr.Attempts < c.opts.MaxAttempts {
		kind := attemptDispatch
		if jr.Attempts > 0 {
			kind = attemptRetry
			c.retries.Add(1)
			if err := sleepCtx(ctx, backoff); err != nil {
				jr.Err = err
				return jr
			}
			backoff *= 2
		}
		h, err := c.acquire(ctx, avoid)
		if err != nil {
			jr.Err = err
			return jr
		}
		jr.Attempts++
		results := make(chan attemptOutcome, 2)
		inflight := 1
		go c.attempt(ctx, h, job, key, kind, results)

		var hedgeC <-chan time.Time
		var hedgeTimer *time.Timer
		if c.opts.HedgeAfter > 0 {
			hedgeTimer = time.NewTimer(c.opts.HedgeAfter)
			hedgeC = hedgeTimer.C
		}
		stopHedge := func() {
			if hedgeTimer != nil {
				hedgeTimer.Stop()
				hedgeTimer = nil
			}
		}

		var lastFail attemptOutcome
		for inflight > 0 {
			select {
			case <-ctx.Done():
				stopHedge()
				c.drainDuplicates(results, inflight)
				jr.Err = ctx.Err()
				return jr
			case <-c.allDead:
				stopHedge()
				c.drainDuplicates(results, inflight)
				jr.Err = ErrNoHosts
				return jr
			case <-hedgeC:
				hedgeC = nil
				if jr.Attempts >= c.opts.MaxAttempts {
					continue
				}
				// Hedge only onto a different host with a free stream
				// right now — hedging must never queue behind real work
				// or double up on the slow host itself.
				h2, ok := c.tryAcquireOther(h)
				if !ok {
					continue
				}
				jr.Attempts++
				jr.Hedged = true
				c.hedges.Add(1)
				inflight++
				go c.attempt(ctx, h2, job, key, attemptHedge, results)
			case out := <-results:
				inflight--
				if out.err == nil {
					// First completed response wins; any still-running
					// duplicate is drained in the background and its
					// response discarded, never merged.
					stopHedge()
					c.drainDuplicates(results, inflight)
					out.host.runs.Add(1)
					jr.Host = out.host.url
					jr.Response = out.resp
					jr.Err = nil // clear the previous round's failure
					if out.resp.VerifyError != "" {
						jr.Err = fmt.Errorf("%s: verification failed: %s", job.Workload, out.resp.VerifyError)
					}
					return jr
				}
				lastFail = out
			}
		}
		stopHedge()
		jr.Err = lastFail.err
		if lastFail.permanent {
			return jr
		}
		avoid = lastFail.host
	}
	if jr.Err == nil {
		jr.Err = fmt.Errorf("cluster: job %d (%s): attempts exhausted", idx, job.Workload)
	}
	return jr
}

// drainDuplicates collects the remaining in-flight attempt outcomes in
// the background so their host streams are not blocked on an abandoned
// channel send (the channel is buffered for exactly this, but draining
// also counts discarded duplicates).
func (c *Cluster) drainDuplicates(results <-chan attemptOutcome, n int) {
	if n <= 0 {
		return
	}
	go func() {
		for i := 0; i < n; i++ {
			if out := <-results; out.err == nil {
				c.discarded.Add(1)
			}
		}
	}()
}

// attempt performs one HTTP run request on h, records its latency under
// the attempt kind, and reports the outcome. It owns h's stream token
// and releases it when done.
func (c *Cluster) attempt(ctx context.Context, h *host, job Job, key string, kind attemptKind, out chan<- attemptOutcome) {
	defer c.release(h)
	t0 := time.Now()
	resp, permanent, err := c.doRun(ctx, h, job, key, true)
	h.observe(kind, time.Since(t0))
	if err != nil && !permanent && ctx.Err() == nil {
		c.noteFailure(h)
	} else if err == nil {
		h.fails.Store(0)
	}
	out <- attemptOutcome{host: h, resp: resp, err: err, permanent: permanent}
}

// doRun performs the HTTP exchange. reshipOK allows one transparent
// snapshot re-installation when the host reports an unknown ref.
func (c *Cluster) doRun(ctx context.Context, h *host, job Job, key string, reshipOK bool) (*RunResponse, bool, error) {
	body, err := json.Marshal(RunRequest{
		Workload:       job.Workload,
		Scale:          job.Scale,
		Verify:         job.Verify,
		Snapshot:       job.Snapshot,
		IdempotencyKey: key,
	})
	if err != nil {
		return nil, true, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.url+PathRun, bytes.NewReader(body))
	if err != nil {
		return nil, true, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", h.url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		// Mid-stream disconnect: the response started but never
		// finished. Retryable; the idempotency key makes the retry safe.
		return nil, false, fmt.Errorf("%s: reading response: %w", h.url, err)
	}
	if resp.StatusCode == http.StatusOK {
		var rr RunResponse
		if err := json.Unmarshal(raw, &rr); err != nil {
			return nil, false, fmt.Errorf("%s: bad run response: %w", h.url, err)
		}
		return &rr, false, nil
	}
	var er ErrorResponse
	_ = json.Unmarshal(raw, &er)
	if er.Code == CodeUnknownSnapshot && reshipOK {
		if c.reship(ctx, h) {
			return c.doRun(ctx, h, job, key, false)
		}
	}
	err = fmt.Errorf("%s: %s", h.url, httpErrorString(resp.StatusCode, raw))
	// 4xx (other than a re-shippable unknown snapshot) means the request
	// itself is wrong — unknown workload, bad scale — and no amount of
	// retrying fixes it. 5xx and 408 are host-side conditions worth
	// retrying elsewhere.
	permanent := resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusRequestTimeout
	return nil, permanent, err
}

// reship re-installs the retained snapshot on one host (it restarted or
// evicted the ref). Returns true when the run should be retried on h.
func (c *Cluster) reship(ctx context.Context, h *host) bool {
	c.snapMu.Lock()
	encoded, ref := c.snapshot, c.snapRef
	c.snapMu.Unlock()
	if encoded == nil {
		return false
	}
	if err := c.install(ctx, h, encoded, ref); err != nil {
		return false
	}
	c.reships.Add(1)
	return true
}

// noteFailure records a transport/5xx failure and kills the host at the
// consecutive-failure limit.
func (c *Cluster) noteFailure(h *host) {
	if h.fails.Add(1) >= int64(c.opts.HostFailureLimit) {
		c.killHost(h)
	}
}

// killHost removes a host from the rotation: its outstanding stream
// tokens are retired as they surface in acquire/release. When the last
// live host dies, every waiter is released with ErrNoHosts.
func (c *Cluster) killHost(h *host) {
	if h.dead.Swap(true) {
		return
	}
	if c.live.Add(-1) == 0 {
		c.deadOne.Do(func() { close(c.allDead) })
	}
}

// acquire blocks until a live host stream is free, preferring any host
// other than avoid (the one that just failed). When only avoid has free
// streams, it is returned anyway — retrying the same host after backoff
// beats stalling forever.
func (c *Cluster) acquire(ctx context.Context, avoid *host) (*host, error) {
	first, err := c.take(ctx)
	if err != nil {
		return nil, err
	}
	if avoid == nil || first != avoid {
		return first, nil
	}
	if second, ok := c.tryAcquireOther(avoid); ok {
		c.release(first)
		return second, nil
	}
	return first, nil
}

// take pulls the next live stream token, retiring dead hosts' tokens.
func (c *Cluster) take(ctx context.Context) (*host, error) {
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.allDead:
			return nil, ErrNoHosts
		case h := <-c.slots:
			if h.dead.Load() {
				continue // token retired
			}
			return h, nil
		}
	}
}

// tryAcquireOther grabs a free stream on any live host except not,
// without blocking. Tokens for not that surface during the scan are set
// aside and returned.
func (c *Cluster) tryAcquireOther(not *host) (*host, bool) {
	var aside []*host
	defer func() {
		for _, h := range aside {
			c.slots <- h
		}
	}()
	for i := 0; i < cap(c.slots); i++ {
		select {
		case h := <-c.slots:
			if h.dead.Load() {
				continue // token retired
			}
			if h == not {
				aside = append(aside, h)
				continue
			}
			return h, true
		default:
			return nil, false
		}
	}
	return nil, false
}

// release returns a stream token, retiring it if the host died while the
// attempt was in flight.
func (c *Cluster) release(h *host) {
	if !h.dead.Load() {
		c.slots <- h
	}
}

// sleepCtx sleeps d or returns early with ctx.Err().
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// httpErrorString renders a non-2xx response compactly.
func httpErrorString(status int, body []byte) string {
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.Error != "" {
		return fmt.Sprintf("HTTP %d: %s", status, er.Error)
	}
	s := strings.TrimSpace(string(body))
	if len(s) > 200 {
		s = s[:200] + "…"
	}
	if s == "" {
		return fmt.Sprintf("HTTP %d", status)
	}
	return fmt.Sprintf("HTTP %d: %s", status, s)
}

// nonce returns a random 64-bit hex string.
func nonce() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}
