// Package clustertest is a programmable fault-injecting mobilesimd host
// for cluster tests: an httptest-backed server speaking the cluster wire
// protocol (DESIGN.md §11) whose per-request behaviour is scripted —
// delays, 5xx errors, disconnects after N response bytes, hard kills
// mid-job, and duplicate (re-executed) deliveries — so every retry,
// hedge and dedup path in internal/cluster can be driven
// deterministically.
//
// A Host runs in one of two modes:
//
//   - Synthetic (New): the host implements the protocol itself, with
//     deterministic fake statistics derived from (workload, scale) — see
//     SynthResponse — plus a real idempotency store and snapshot-ref
//     registry. Unit tests of the client's delivery machinery use this;
//     no simulator boots.
//
//   - Backend (NewWithBackend): requests that survive the fault layer
//     are forwarded to a real handler — typically an internal/hostd
//     Server's Mux — so end-to-end tests (the cluster-vs-local
//     determinism pin) exercise real execution under injected faults.
package clustertest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"mobilesim/internal/cluster"
	"mobilesim/internal/stats"
)

// Script is one scheduled fault on the run endpoint. Each incoming
// /api/v1/run request consumes the first queued script whose Workload
// matcher accepts it; a request with no matching script is served
// faithfully. Zero-valued fields do nothing, so a Script composes: e.g.
// {Delay: time.Second} alone slow-walks a response (forcing a hedge),
// {Status: 503} alone fails it (forcing a retry).
type Script struct {
	// Workload restricts the script to runs of this workload ("" = any).
	Workload string
	// Delay sleeps before any other behaviour — and before execution, so
	// a hedged duplicate dispatched meanwhile races a host that has not
	// run the job yet.
	Delay time.Duration
	// Status, when non-zero, rejects the request with this HTTP status
	// (body: an ErrorResponse carrying Code) without executing.
	Status int
	Code   string
	// Disconnect closes the connection after writing AfterBytes bytes of
	// the (executed) response body — a mid-stream disconnect: the job ran
	// on the host, the client never got the answer.
	Disconnect bool
	AfterBytes int
	// Kill accepts the job and then kills the whole host instead of
	// responding: the connection drops with no bytes, and every later
	// request is refused — the die-mid-job host-loss case.
	Kill bool
	// Rerun forces re-execution even when the request's idempotency key
	// has a recorded response — a duplicate delivery that a buggy host
	// would double-count. Client-side first-result-wins must keep the
	// aggregate single-counted regardless.
	Rerun bool
}

// Host is one fake cluster host.
type Host struct {
	backend http.Handler
	srv     *httptest.Server

	mu      sync.Mutex
	scripts []Script
	snaps   map[string]bool   // synthetic installed refs
	idem    map[string][]byte // synthetic idempotency store

	dead atomic.Bool

	requests  atomic.Uint64 // run requests received (before fault layer)
	runs      atomic.Uint64 // runs actually executed
	dedups    atomic.Uint64 // runs served from the idempotency store
	installs  atomic.Uint64 // snapshot installations performed
	killed    atomic.Uint64 // requests dropped because the host is dead
	faulted   atomic.Uint64 // requests a script rejected or mangled
	truncated atomic.Uint64 // responses cut short mid-stream
}

// New starts a synthetic host.
func New() *Host { return NewWithBackend(nil) }

// NewWithBackend starts a host whose non-faulted requests are served by
// backend (e.g. an internal/hostd Server's Mux). The fault layer still
// owns delays, scripted errors, disconnects, kills and the Rerun
// idempotency bypass.
func NewWithBackend(backend http.Handler) *Host {
	h := &Host{
		backend: backend,
		snaps:   make(map[string]bool),
		idem:    make(map[string][]byte),
	}
	h.srv = httptest.NewServer(http.HandlerFunc(h.handle))
	return h
}

// URL returns the host's base URL.
func (h *Host) URL() string { return h.srv.URL }

// Close shuts the host down.
func (h *Host) Close() { h.srv.Close() }

// Kill marks the host dead — every subsequent request's connection is
// dropped without a response — and severs current connections.
func (h *Host) Kill() {
	if h.dead.Swap(true) {
		return
	}
	h.srv.CloseClientConnections()
}

// Dead reports whether the host has been killed.
func (h *Host) Dead() bool { return h.dead.Load() }

// ScriptRun queues fault scripts on the run endpoint, consumed in order.
func (h *Host) ScriptRun(ss ...Script) {
	h.mu.Lock()
	h.scripts = append(h.scripts, ss...)
	h.mu.Unlock()
}

// Requests counts run requests received, including faulted ones.
func (h *Host) Requests() uint64 { return h.requests.Load() }

// Runs counts runs actually executed (synthetic or forwarded), excluding
// idempotent replays.
func (h *Host) Runs() uint64 { return h.runs.Load() }

// DedupHits counts runs answered from the idempotency store.
func (h *Host) DedupHits() uint64 { return h.dedups.Load() }

// Installs counts snapshot installations performed.
func (h *Host) Installs() uint64 { return h.installs.Load() }

// Faulted counts requests a script rejected, truncated or killed.
func (h *Host) Faulted() uint64 { return h.faulted.Load() }

// popScript consumes the first queued script matching workload.
func (h *Host) popScript(workload string) (Script, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, s := range h.scripts {
		if s.Workload == "" || s.Workload == workload {
			h.scripts = append(h.scripts[:i], h.scripts[i+1:]...)
			return s, true
		}
	}
	return Script{}, false
}

// dropConn severs the connection without a response (dead hosts,
// mid-job kills).
func dropConn(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("clustertest: response writer cannot hijack (HTTP/2?)")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	conn.Close()
}

func (h *Host) handle(w http.ResponseWriter, r *http.Request) {
	if h.dead.Load() {
		h.killed.Add(1)
		dropConn(w)
		return
	}
	switch r.URL.Path {
	case cluster.PathRun:
		h.handleRun(w, r)
	case cluster.PathSnapshot:
		h.handleSnapshot(w, r)
	default:
		if h.backend != nil {
			h.backend.ServeHTTP(w, r)
			return
		}
		http.NotFound(w, r)
	}
}

func (h *Host) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if h.backend != nil {
		rec := httptest.NewRecorder()
		h.backend.ServeHTTP(rec, r)
		if rec.Code == http.StatusOK {
			h.installs.Add(1)
		}
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		_, _ = w.Write(rec.Body.Bytes())
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, cluster.ErrorResponse{Error: err.Error()})
		return
	}
	ref := cluster.Ref(body)
	h.mu.Lock()
	already := h.snaps[ref]
	h.snaps[ref] = true
	h.mu.Unlock()
	if !already {
		h.installs.Add(1)
	}
	writeJSON(w, http.StatusOK, cluster.SnapshotResponse{Ref: ref, AlreadyInstalled: already})
}

func (h *Host) handleRun(w http.ResponseWriter, r *http.Request) {
	h.requests.Add(1)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, cluster.ErrorResponse{Error: err.Error()})
		return
	}
	var req cluster.RunRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, cluster.ErrorResponse{Error: err.Error()})
		return
	}

	script, scripted := h.popScript(req.Workload)
	if scripted && script.Delay > 0 {
		select {
		case <-time.After(script.Delay):
		case <-r.Context().Done():
			writeJSON(w, http.StatusRequestTimeout, cluster.ErrorResponse{Error: r.Context().Err().Error()})
			return
		}
	}
	if scripted && script.Status != 0 {
		h.faulted.Add(1)
		writeJSON(w, script.Status, cluster.ErrorResponse{
			Error: fmt.Sprintf("clustertest: scripted %d", script.Status),
			Code:  script.Code,
		})
		return
	}
	if scripted && script.Kill {
		h.faulted.Add(1)
		h.Kill()
		dropConn(w)
		return
	}

	status, body, executed := h.execute(r, &req, raw, scripted && script.Rerun)
	if executed {
		h.runs.Add(1)
	} else if status == http.StatusOK {
		h.dedups.Add(1)
	}

	if scripted && script.Disconnect {
		h.faulted.Add(1)
		h.truncated.Add(1)
		truncateResponse(w, status, body, script.AfterBytes)
		return
	}
	if !executed && status == http.StatusOK {
		w.Header().Set(cluster.DedupHeader, "hit")
	}
	writeRaw(w, status, body)
}

// execute produces the run response body: forwarded to the backend, or
// synthesized. rerun bypasses the idempotency store — the duplicate-
// delivery fault. It reports whether a run was actually executed.
func (h *Host) execute(r *http.Request, req *cluster.RunRequest, raw []byte, rerun bool) (status int, body []byte, executed bool) {
	if h.backend != nil {
		fwd := raw
		if rerun {
			// Strip the key so the backend's idempotency layer cannot
			// dedup this delivery.
			req2 := *req
			req2.IdempotencyKey = ""
			if b, err := json.Marshal(&req2); err == nil {
				fwd = b
			}
		}
		sub := r.Clone(r.Context())
		sub.Body = io.NopCloser(bytes.NewReader(fwd))
		sub.ContentLength = int64(len(fwd))
		rec := httptest.NewRecorder()
		h.backend.ServeHTTP(rec, sub)
		executed = rec.Code != http.StatusOK || rec.Header().Get(cluster.DedupHeader) == ""
		return rec.Code, rec.Body.Bytes(), executed && rec.Code == http.StatusOK
	}

	// Synthetic protocol: snapshot refs must have been shipped here.
	if req.Snapshot != "" {
		h.mu.Lock()
		known := h.snaps[req.Snapshot]
		h.mu.Unlock()
		if !known {
			return http.StatusNotFound, encodeJSON(cluster.ErrorResponse{
				Error: fmt.Sprintf("snapshot %s is not installed on this host", req.Snapshot),
				Code:  cluster.CodeUnknownSnapshot,
			}), false
		}
	}
	if req.IdempotencyKey != "" && !rerun {
		h.mu.Lock()
		cached, ok := h.idem[req.IdempotencyKey]
		h.mu.Unlock()
		if ok {
			return http.StatusOK, cached, false
		}
	}
	body = encodeJSON(SynthResponse(req.Workload, req.Scale))
	if req.IdempotencyKey != "" {
		h.mu.Lock()
		h.idem[req.IdempotencyKey] = body
		h.mu.Unlock()
	}
	return http.StatusOK, body, true
}

// truncateResponse writes the response framing with the full content
// length but only n body bytes, then severs the connection — the client
// observes a mid-stream disconnect (unexpected EOF), not a short valid
// response.
func truncateResponse(w http.ResponseWriter, status int, body []byte, n int) {
	if n > len(body) {
		n = len(body)
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("clustertest: response writer cannot hijack (HTTP/2?)")
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	fmt.Fprintf(buf, "HTTP/1.1 %d %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n",
		status, http.StatusText(status), len(body))
	buf.Write(body[:n])
	buf.Flush()
}

func encodeJSON(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return buf.Bytes()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	writeRaw(w, status, encodeJSON(v))
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// SynthResponse is the synthetic host's deterministic run result: every
// statistic is a pure function of (workload, scale), so duplicate
// deliveries and hedged races return identical bytes on every host and
// tests can compute expected aggregates exactly.
func SynthResponse(workload string, scale int) *cluster.RunResponse {
	f := fnv.New64a()
	f.Write([]byte(workload))
	base := f.Sum64()%1_000_003 + 1
	mix := func(k uint64) uint64 { return (base*k + uint64(scale)*7919) % 1_000_000 }
	return &cluster.RunResponse{
		Workload: workload,
		Kind:     "benchmark",
		Scale:    scale,
		Verified: true,
		SimMS:    float64(mix(2)) / 1000,
		Stats: cluster.RunStats{
			GPU: stats.GPUStats{
				ArithInstr: mix(3),
				LSInstr:    mix(5),
				CFInstr:    mix(7),
				GlobalLS:   mix(11),
				MainMemAcc: mix(13),
				Threads:    mix(17),
			},
			System: stats.SystemStats{
				ComputeJobs:   1 + mix(19)%8,
				KernelLaunch:  1 + mix(23)%8,
				PagesAccessed: mix(29),
				TLBHits:       mix(31),
				TLBWalks:      mix(37),
			},
			DriverCPUNS:       int64(mix(41)) * 1001,
			DriverCPUMS:       float64(int64(mix(41))*1001) / 1e6,
			GuestInstructions: mix(43) * 97,
		},
	}
}
