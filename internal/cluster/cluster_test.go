package cluster_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mobilesim/internal/cluster"
	"mobilesim/internal/cluster/clustertest"
)

// startHosts launches n synthetic fault hosts.
func startHosts(t *testing.T, n int) []*clustertest.Host {
	t.Helper()
	hosts := make([]*clustertest.Host, n)
	for i := range hosts {
		hosts[i] = clustertest.New()
		t.Cleanup(hosts[i].Close)
	}
	return hosts
}

func urls(hosts []*clustertest.Host) []string {
	out := make([]string, len(hosts))
	for i, h := range hosts {
		out[i] = h.URL()
	}
	return out
}

func newCluster(t *testing.T, hosts []*clustertest.Host, opts cluster.Options) *cluster.Cluster {
	t.Helper()
	opts.Hosts = urls(hosts)
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = 5 * time.Millisecond
	}
	c, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// expectedAggregate is the bit-exact aggregate of the jobs' synthetic
// responses, merged in job order like the client does.
func expectedAggregate(jobs []cluster.Job) cluster.RunStats {
	var agg cluster.RunStats
	for _, j := range jobs {
		st := clustertest.SynthResponse(j.Workload, j.Scale).Stats
		agg.Merge(&st)
	}
	return agg
}

func requireAllCompleted(t *testing.T, res *cluster.Result, jobs []cluster.Job) {
	t.Helper()
	if res.Completed != len(jobs) || res.Failed != 0 || res.Skipped != 0 {
		for i := range res.Jobs {
			if res.Jobs[i].Err != nil {
				t.Logf("job %d (%s): %v", i, res.Jobs[i].Job.Workload, res.Jobs[i].Err)
			}
		}
		t.Fatalf("completed=%d failed=%d skipped=%d, want %d/0/0",
			res.Completed, res.Failed, res.Skipped, len(jobs))
	}
	if want := expectedAggregate(jobs); res.Aggregate != want {
		t.Fatalf("aggregate mismatch:\n got  %+v\n want %+v", res.Aggregate, want)
	}
}

// TestFanOutWorkStealing fans nine jobs over three single-stream hosts:
// every host must serve work (nine waiters drain all three stream
// tokens), the total request count must equal the job count (no retries,
// no duplicates), and the merged aggregate must be the bit-exact sum of
// the synthetic per-job deltas.
func TestFanOutWorkStealing(t *testing.T) {
	hosts := startHosts(t, 3)
	c := newCluster(t, hosts, cluster.Options{PerHostStreams: 1})
	jobs := make([]cluster.Job, 9)
	for i := range jobs {
		jobs[i] = cluster.Job{Workload: "W" + string(rune('A'+i)), Scale: i + 1}
	}
	res, err := c.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	requireAllCompleted(t, res, jobs)

	var total uint64
	for i, h := range hosts {
		if h.Requests() == 0 {
			t.Errorf("host %d served no requests", i)
		}
		total += h.Requests()
	}
	if total != uint64(len(jobs)) {
		t.Fatalf("total requests %d, want %d", total, len(jobs))
	}
	if c.Retries() != 0 || c.Hedges() != 0 {
		t.Fatalf("retries=%d hedges=%d, want 0/0", c.Retries(), c.Hedges())
	}
}

// TestRetryAfter5xx: a scripted 503 must be retried (with backoff) and
// the job must still complete with a single-counted aggregate.
func TestRetryAfter5xx(t *testing.T) {
	hosts := startHosts(t, 2)
	hosts[0].ScriptRun(clustertest.Script{Status: 503})
	hosts[1].ScriptRun(clustertest.Script{Status: 503})
	c := newCluster(t, hosts, cluster.Options{})
	jobs := []cluster.Job{{Workload: "BFS", Scale: 4}}
	res, err := c.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	requireAllCompleted(t, res, jobs)
	if res.Jobs[0].Attempts < 2 {
		t.Fatalf("attempts %d, want >= 2", res.Jobs[0].Attempts)
	}
	if c.Retries() == 0 {
		t.Fatal("no retries recorded")
	}
}

// TestAttemptsExhausted: persistent 5xx burns every attempt and the job
// fails with the last error, attempts capped at MaxAttempts.
func TestAttemptsExhausted(t *testing.T) {
	hosts := startHosts(t, 1)
	for i := 0; i < 4; i++ {
		hosts[0].ScriptRun(clustertest.Script{Status: 503})
	}
	c := newCluster(t, hosts, cluster.Options{MaxAttempts: 2, HostFailureLimit: 10})
	res, err := c.Run(context.Background(), []cluster.Job{{Workload: "BFS"}})
	if err != nil {
		t.Fatal(err)
	}
	jr := &res.Jobs[0]
	if jr.Err == nil || jr.Response != nil {
		t.Fatalf("job succeeded (%+v), want exhausted attempts", jr)
	}
	if jr.Attempts != 2 {
		t.Fatalf("attempts %d, want 2", jr.Attempts)
	}
	if res.Failed != 1 || res.Completed != 0 {
		t.Fatalf("failed=%d completed=%d, want 1/0", res.Failed, res.Completed)
	}
	if !strings.Contains(jr.Err.Error(), "503") {
		t.Fatalf("error %v does not carry the last HTTP failure", jr.Err)
	}
}

// TestPermanentFailureNoRetry: a 4xx rejection (other than unknown
// snapshot) is permanent — one attempt, immediate failure.
func TestPermanentFailureNoRetry(t *testing.T) {
	hosts := startHosts(t, 1)
	hosts[0].ScriptRun(clustertest.Script{Status: 400})
	c := newCluster(t, hosts, cluster.Options{MaxAttempts: 5})
	res, err := c.Run(context.Background(), []cluster.Job{{Workload: "BFS"}})
	if err != nil {
		t.Fatal(err)
	}
	jr := &res.Jobs[0]
	if jr.Err == nil {
		t.Fatal("job succeeded, want permanent failure")
	}
	if jr.Attempts != 1 || c.Retries() != 0 {
		t.Fatalf("attempts=%d retries=%d, want 1/0", jr.Attempts, c.Retries())
	}
}

// TestHostLossRetriesElsewhere kills a host mid-job (it accepts the run,
// then the whole host dies): the client must see the dropped connection,
// mark the host dead at HostFailureLimit, and retry the job on the
// surviving host.
func TestHostLossRetriesElsewhere(t *testing.T) {
	hosts := startHosts(t, 2)
	hosts[0].ScriptRun(clustertest.Script{Kill: true})
	c := newCluster(t, hosts, cluster.Options{HostFailureLimit: 1, PerHostStreams: 1})
	jobs := []cluster.Job{{Workload: "SpMV", Scale: 2}}
	res, err := c.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	requireAllCompleted(t, res, jobs)
	jr := &res.Jobs[0]
	if jr.Host != hosts[1].URL() {
		t.Fatalf("accepted from %s, want the surviving host %s", jr.Host, hosts[1].URL())
	}
	if jr.Attempts != 2 {
		t.Fatalf("attempts %d, want 2", jr.Attempts)
	}
	if !hosts[0].Dead() {
		t.Fatal("scripted Kill did not kill the host")
	}
	states := c.HostStates()
	if !states[0].Dead || states[1].Dead {
		t.Fatalf("host states %+v: want host 0 dead, host 1 live", states)
	}
}

// TestAllHostsLost: when every host dies, in-flight and queued jobs fail
// promptly (ErrNoHosts or the fatal transport error) instead of hanging.
func TestAllHostsLost(t *testing.T) {
	hosts := startHosts(t, 1)
	hosts[0].ScriptRun(clustertest.Script{Kill: true})
	c := newCluster(t, hosts, cluster.Options{HostFailureLimit: 1, PerHostStreams: 1})
	jobs := []cluster.Job{{Workload: "BFS"}, {Workload: "SpMV"}, {Workload: "FFT"}}
	done := make(chan *cluster.Result, 1)
	go func() {
		res, _ := c.Run(context.Background(), jobs)
		done <- res
	}()
	var res *cluster.Result
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung after losing every host")
	}
	if res.Failed != len(jobs) || res.Completed != 0 {
		t.Fatalf("failed=%d completed=%d, want %d/0", res.Failed, res.Completed, len(jobs))
	}
	sawNoHosts := false
	for i := range res.Jobs {
		if errors.Is(res.Jobs[i].Err, cluster.ErrNoHosts) {
			sawNoHosts = true
		}
	}
	if !sawNoHosts {
		t.Fatal("no job failed with ErrNoHosts")
	}
}

// TestHedgingRacesSlowHost delays the first host long enough to force a
// hedge onto the second; the first completed response wins and the
// aggregate stays single-counted.
func TestHedgingRacesSlowHost(t *testing.T) {
	hosts := startHosts(t, 2)
	// The single stream token of host 0 is first in the rotation, so the
	// lone job's first attempt deterministically lands there.
	hosts[0].ScriptRun(clustertest.Script{Delay: 2 * time.Second})
	c := newCluster(t, hosts, cluster.Options{
		PerHostStreams: 1,
		HedgeAfter:     20 * time.Millisecond,
	})
	jobs := []cluster.Job{{Workload: "Stereo", Scale: 3}}
	t0 := time.Now()
	res, err := c.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	requireAllCompleted(t, res, jobs)
	jr := &res.Jobs[0]
	if !jr.Hedged || c.Hedges() != 1 {
		t.Fatalf("hedged=%v hedges=%d, want true/1", jr.Hedged, c.Hedges())
	}
	if jr.Host != hosts[1].URL() {
		t.Fatalf("accepted from %s, want the hedge host %s", jr.Host, hosts[1].URL())
	}
	if wall := time.Since(t0); wall > time.Second {
		t.Fatalf("run took %v: the hedge did not beat the slow host", wall)
	}
	// The slow host's response completes later and must be discarded,
	// never merged (the aggregate check above already proved single
	// counting; this proves the loser was accounted as discarded).
	deadline := time.Now().Add(5 * time.Second)
	for c.Discarded() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if c.Discarded() != 1 {
		t.Fatalf("discarded %d duplicate responses, want 1", c.Discarded())
	}
}

// TestMidStreamDisconnectDeduped truncates the first response mid-body:
// the client retries with the same idempotency key and the host replays
// the recorded response instead of executing twice.
func TestMidStreamDisconnectDeduped(t *testing.T) {
	hosts := startHosts(t, 1)
	hosts[0].ScriptRun(clustertest.Script{Disconnect: true, AfterBytes: 10})
	c := newCluster(t, hosts, cluster.Options{HostFailureLimit: 10})
	jobs := []cluster.Job{{Workload: "FFT", Scale: 1}}
	res, err := c.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	requireAllCompleted(t, res, jobs)
	if res.Jobs[0].Attempts != 2 {
		t.Fatalf("attempts %d, want 2", res.Jobs[0].Attempts)
	}
	if hosts[0].Runs() != 1 {
		t.Fatalf("host executed %d runs, want 1 (retry must dedup)", hosts[0].Runs())
	}
	if hosts[0].DedupHits() != 1 {
		t.Fatalf("dedup hits %d, want 1", hosts[0].DedupHits())
	}
}

// TestDuplicateDeliveryReexecuted is the buggy-host variant: the second
// delivery bypasses the idempotency store and re-executes. The aggregate
// must still be single-counted — client-side first-result-wins does not
// depend on the host deduping.
func TestDuplicateDeliveryReexecuted(t *testing.T) {
	hosts := startHosts(t, 1)
	hosts[0].ScriptRun(
		clustertest.Script{Disconnect: true, AfterBytes: 5},
		clustertest.Script{Rerun: true},
	)
	c := newCluster(t, hosts, cluster.Options{HostFailureLimit: 10})
	jobs := []cluster.Job{{Workload: "Harris", Scale: 2}}
	res, err := c.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	requireAllCompleted(t, res, jobs)
	if hosts[0].Runs() != 2 {
		t.Fatalf("host executed %d runs, want 2 (Rerun bypasses dedup)", hosts[0].Runs())
	}
}

// TestShipAndUnknownSnapshotReship ships a snapshot, then scripts a host
// to claim the ref is unknown: the client must transparently re-install
// and retry on the same host within the same attempt.
func TestShipAndUnknownSnapshotReship(t *testing.T) {
	hosts := startHosts(t, 1)
	c := newCluster(t, hosts, cluster.Options{})
	encoded := []byte("MSIMSNAP fake snapshot payload")
	ref, err := c.Ship(context.Background(), encoded)
	if err != nil {
		t.Fatal(err)
	}
	if want := cluster.Ref(encoded); ref != want {
		t.Fatalf("ship returned ref %s, want %s", ref, want)
	}
	if hosts[0].Installs() != 1 {
		t.Fatalf("installs %d, want 1", hosts[0].Installs())
	}

	hosts[0].ScriptRun(clustertest.Script{Status: 404, Code: cluster.CodeUnknownSnapshot})
	jobs := []cluster.Job{{Workload: "BFS", Scale: 4}} // Snapshot defaults to the shipped ref
	res, err := c.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	requireAllCompleted(t, res, jobs)
	if res.Jobs[0].Attempts != 1 {
		t.Fatalf("attempts %d, want 1 (re-ship happens inside the attempt)", res.Jobs[0].Attempts)
	}
	if c.Reships() != 1 {
		t.Fatalf("reships %d, want 1", c.Reships())
	}
	if hosts[0].Requests() != 2 {
		t.Fatalf("run requests %d, want 2 (rejected + retried)", hosts[0].Requests())
	}
}

// TestRunCancellation: cancelling the context mid-run skips queued jobs
// and returns ctx.Err().
func TestRunCancellation(t *testing.T) {
	hosts := startHosts(t, 1)
	for i := 0; i < 4; i++ {
		hosts[0].ScriptRun(clustertest.Script{Delay: 10 * time.Second})
	}
	c := newCluster(t, hosts, cluster.Options{PerHostStreams: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	jobs := []cluster.Job{{Workload: "BFS"}, {Workload: "SpMV"}, {Workload: "FFT"}}
	res, err := c.Run(ctx, jobs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want deadline exceeded", err)
	}
	if res.Completed != 0 || res.Skipped == 0 {
		t.Fatalf("completed=%d skipped=%d, want 0 completed, some skipped", res.Completed, res.Skipped)
	}
}

// TestOptionsValidation covers registry construction errors.
func TestOptionsValidation(t *testing.T) {
	if _, err := cluster.New(cluster.Options{}); err == nil {
		t.Fatal("no hosts accepted")
	}
	if _, err := cluster.New(cluster.Options{Hosts: []string{"http://a", "http://a/"}}); err == nil {
		t.Fatal("duplicate hosts accepted")
	}
	if _, err := cluster.New(cluster.Options{Hosts: []string{""}}); err == nil {
		t.Fatal("empty host accepted")
	}
}
