package workloads

import (
	"context"
	"testing"

	"mobilesim/internal/cl"
	"mobilesim/internal/platform"
)

var bg = context.Background()

// TestAllBenchmarksVerifyAgainstNative runs every Table II workload at
// small scale through the full simulated stack and checks bit-level (int)
// or tolerance (float) agreement with the host-native reference.
func TestAllBenchmarksVerifyAgainstNative(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p, err := platform.New(platform.Config{RAMSize: 256 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			c, err := cl.NewContext(p, "")
			if err != nil {
				t.Fatal(err)
			}
			inst := spec.Make(spec.SmallScale)
			res, err := inst.Run(bg, c, spec.Name, true)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatal(res.VerifyErr)
			}
			gs, sys := p.GPU.Stats()
			if gs.Threads == 0 {
				t.Error("no GPU threads executed")
			}
			if sys.ComputeJobs == 0 {
				t.Error("no compute jobs recorded")
			}
			t.Logf("%s: jobs=%d threads=%d instr=%d pages=%d",
				spec.Name, sys.ComputeJobs, gs.Threads, gs.TotalInstr(), sys.PagesAccessed)
		})
	}
}

// TestBenchmarksVerifyOnOldCompiler re-runs a representative subset with
// the oldest compiler version: different codegen, same results — the
// architectural-accuracy-across-toolchains claim.
func TestBenchmarksVerifyOnOldCompiler(t *testing.T) {
	for _, name := range []string{"SobelFilter", "BitonicSort", "Reduction", "SGEMM"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := platform.New(platform.Config{RAMSize: 256 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			c, err := cl.NewContext(p, "5.6")
			if err != nil {
				t.Fatal(err)
			}
			res, err := spec.Make(spec.SmallScale).Run(bg, c, name, true)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatal(res.VerifyErr)
			}
		})
	}
}

func TestRegistryComplete(t *testing.T) {
	// Table II lists 19 benchmarks (BFS appears once, SGEMM twice via
	// Parboil and clBLAS).
	want := []string{
		"BFS", "Backprop", "BinarySearch", "BinomialOption", "BitonicSort",
		"Cutcp", "DCT", "DwtHaar1D", "FloydWarshall", "MatrixTranspose",
		"NearestNeighbor", "RecursiveGaussian", "Reduction", "SGEMM",
		"SPMV", "ScanLargeArrays", "SobelFilter", "Stencil", "URNG",
		"clBLAS-SGEMM",
	}
	all := All()
	if len(all) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(all), len(want))
	}
	for i, s := range all {
		if i < len(want) && s.Name != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, s.Name, want[i])
		}
		if s.Suite == "" || s.PaperInput == "" {
			t.Errorf("%s missing metadata", s.Name)
		}
		if s.SmallScale <= 0 || s.DefaultScale < s.SmallScale || s.PaperScale < s.DefaultScale {
			t.Errorf("%s scales not monotone: %d %d %d", s.Name, s.SmallScale, s.DefaultScale, s.PaperScale)
		}
	}
	if _, err := ByName("NoSuchBench"); err == nil {
		t.Error("ByName should fail for unknown benchmarks")
	}
}
