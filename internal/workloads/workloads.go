// Package workloads implements the paper's benchmark suite (Table II):
// the AMD APP SDK, Parboil and Rodinia kernels plus clBLAS SGEMM, each as
// CLite OpenCL source executed through the full simulated stack, paired
// with a host-native Go reference implementation that serves both as the
// correctness oracle and as the "native execution" baseline for the
// slowdown measurements (Fig 7).
package workloads

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"mobilesim/internal/cl"
)

// Instance is one prepared benchmark run: inputs generated, kernels ready.
type Instance struct {
	// Sim runs the full workload on the simulator (buffer traffic, kernel
	// enqueues, result readback) and returns the output signature. A
	// cancelled ctx interrupts the running kernel at a clause boundary.
	Sim func(ctx context.Context, c *cl.Context) (any, error)
	// Native runs the same computation host-natively and returns the
	// reference signature.
	Native func() any
	// Tol is the comparison tolerance for float outputs.
	Tol float64
}

// Spec describes a benchmark and how to instantiate it at a given scale.
// Scale is a linear size knob: SmallScale keeps unit tests fast,
// DefaultScale drives benches, PaperScale approximates Table II.
type Spec struct {
	Name       string
	Suite      string
	PaperInput string
	// Make builds an Instance; scale semantics are per workload but
	// monotone (bigger scale, bigger input).
	Make         func(scale int) *Instance
	SmallScale   int
	DefaultScale int
	PaperScale   int
}

var registry []*Spec

func register(s *Spec) { registry = append(registry, s) }

// All returns the registered benchmarks sorted by name.
func All() []*Spec {
	out := append([]*Spec(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName finds a benchmark. The error for an unknown name lists the
// registered benchmarks and suggests the nearest match, mirroring the
// compiler-version validation in the facade Config.
func ByName(name string) (*Spec, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, 0, len(registry))
	for _, s := range registry {
		names = append(names, s.Name)
	}
	return nil, UnknownNameError("workloads", "benchmark", name, names)
}

// UnknownNameError builds the standard list-and-suggest error for an
// unknown registry name: "<prefix>: unknown <noun> <name> (did you mean
// ...?); have ...". names is sorted in place.
func UnknownNameError(prefix, noun, name string, names []string) error {
	sort.Strings(names)
	msg := fmt.Sprintf("%s: unknown %s %q", prefix, noun, name)
	if near := Nearest(name, names); near != "" {
		msg += fmt.Sprintf(" (did you mean %q?)", near)
	}
	return fmt.Errorf("%s; have %s", msg, strings.Join(names, ", "))
}

// Nearest returns the candidate with the smallest case-insensitive edit
// distance from name, or "" when nothing is plausibly close (distance
// greater than half the name's length).
func Nearest(name string, candidates []string) string {
	best, bestDist := "", len(name)/2+1
	for _, c := range candidates {
		if d := editDistance(strings.ToLower(name), strings.ToLower(c)); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Result is a completed run.
type Result struct {
	Name           string
	SimDuration    time.Duration
	NativeDuration time.Duration
	Verified       bool
	VerifyErr      error
}

// Run executes the instance on the given context, times the simulator and
// native paths, and verifies outputs. With verify false the host-native
// reference is neither run nor compared (Result.Verified stays false and
// NativeDuration zero).
func (inst *Instance) Run(ctx context.Context, c *cl.Context, name string, verify bool) (*Result, error) {
	t0 := time.Now()
	simOut, err := inst.Sim(ctx, c)
	if err != nil {
		return nil, fmt.Errorf("%s: sim: %w", name, err)
	}
	simDur := time.Since(t0)

	res := &Result{Name: name, SimDuration: simDur}
	if !verify {
		return res, nil
	}
	t1 := time.Now()
	natOut := inst.Native()
	res.NativeDuration = time.Since(t1)

	if err := compare(simOut, natOut, inst.Tol); err != nil {
		res.VerifyErr = fmt.Errorf("%s: verify: %w", name, err)
	} else {
		res.Verified = true
	}
	return res, nil
}

// Compare checks an output signature against its reference with the
// package's tolerance rules (NaN-aware float comparison, exact integer
// comparison) — for callers that verify outside Instance.Run.
func Compare(sim, nat any, tol float64) error { return compare(sim, nat, tol) }

// compare checks output signatures with tolerance for floats.
func compare(sim, nat any, tol float64) error {
	switch s := sim.(type) {
	case []float32:
		n, ok := nat.([]float32)
		if !ok || len(n) != len(s) {
			return fmt.Errorf("shape mismatch: sim %T/%d vs native %T", sim, len(s), nat)
		}
		for i := range s {
			if !closeF32(s[i], n[i], tol) {
				return fmt.Errorf("element %d: sim %g vs native %g", i, s[i], n[i])
			}
		}
	case []int32:
		n, ok := nat.([]int32)
		if !ok || len(n) != len(s) {
			return fmt.Errorf("shape mismatch: sim %T/%d vs native %T", sim, len(s), nat)
		}
		for i := range s {
			if s[i] != n[i] {
				return fmt.Errorf("element %d: sim %d vs native %d", i, s[i], n[i])
			}
		}
	case []byte:
		n, ok := nat.([]byte)
		if !ok || len(n) != len(s) {
			return fmt.Errorf("shape mismatch: sim %T/%d vs native %T", sim, len(s), nat)
		}
		for i := range s {
			d := int(s[i]) - int(n[i])
			if d < -1 || d > 1 { // byte quantisation slack
				return fmt.Errorf("byte %d: sim %d vs native %d", i, s[i], n[i])
			}
		}
	default:
		return fmt.Errorf("unsupported signature type %T", sim)
	}
	return nil
}

func closeF32(a, b float32, tol float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(float64(a)) && math.IsNaN(float64(b)) {
		return true
	}
	d := math.Abs(float64(a) - float64(b))
	m := math.Max(math.Abs(float64(a)), math.Abs(float64(b)))
	if tol == 0 {
		tol = 1e-4
	}
	return d <= tol || (m > 1 && d/m <= tol)
}

// rng returns a deterministic generator so sim and native paths see the
// same inputs across runs.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func randF32s(r *rand.Rand, n int, lo, hi float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = lo + (hi-lo)*r.Float32()
	}
	return out
}

func randI32s(r *rand.Rand, n int, max int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = r.Int31n(max)
	}
	return out
}

func randBytes(r *rand.Rand, n int) []byte {
	out := make([]byte, n)
	r.Read(out)
	return out
}

// buffers is a small helper to cut allocation boilerplate in workloads.
func newBufF32(ctx context.Context, c *cl.Context, vals []float32) (*cl.Buffer, error) {
	b, err := c.CreateBuffer(4 * len(vals))
	if err != nil {
		return nil, err
	}
	if err := c.WriteF32(ctx, b, vals); err != nil {
		return nil, err
	}
	return b, nil
}

func newBufI32(ctx context.Context, c *cl.Context, vals []int32) (*cl.Buffer, error) {
	b, err := c.CreateBuffer(4 * len(vals))
	if err != nil {
		return nil, err
	}
	if err := c.WriteI32(ctx, b, vals); err != nil {
		return nil, err
	}
	return b, nil
}

func newBufU8(ctx context.Context, c *cl.Context, vals []byte) (*cl.Buffer, error) {
	b, err := c.CreateBuffer(len(vals))
	if err != nil {
		return nil, err
	}
	if err := c.WriteBuffer(ctx, b, vals); err != nil {
		return nil, err
	}
	return b, nil
}

// kernel1 builds a program with one kernel and binds arguments in order:
// *cl.Buffer, int32/int, float32.
func kernel1(ctx context.Context, c *cl.Context, src, name string, args ...any) (*cl.Kernel, error) {
	prog, err := c.BuildProgram(ctx, src)
	if err != nil {
		return nil, err
	}
	k, err := prog.CreateKernel(name)
	if err != nil {
		return nil, err
	}
	if err := bindArgs(k, args...); err != nil {
		return nil, err
	}
	return k, nil
}

func bindArgs(k *cl.Kernel, args ...any) error {
	for i, a := range args {
		var err error
		switch v := a.(type) {
		case *cl.Buffer:
			err = k.SetArgBuffer(i, v)
		case int:
			err = k.SetArgInt(i, int32(v))
		case int32:
			err = k.SetArgInt(i, v)
		case uint32:
			err = k.SetArgInt(i, int32(v))
		case float32:
			err = k.SetArgFloat(i, v)
		case float64:
			err = k.SetArgFloat(i, float32(v))
		default:
			err = fmt.Errorf("workloads: unsupported arg %d type %T", i, a)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// roundUp rounds n up to a multiple of m.
func roundUp(n, m int) int { return (n + m - 1) / m * m }
