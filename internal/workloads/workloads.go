// Package workloads implements the paper's benchmark suite (Table II):
// the AMD APP SDK, Parboil and Rodinia kernels plus clBLAS SGEMM, each as
// CLite OpenCL source executed through the full simulated stack, paired
// with a host-native Go reference implementation that serves both as the
// correctness oracle and as the "native execution" baseline for the
// slowdown measurements (Fig 7).
package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"mobilesim/internal/cl"
)

// Instance is one prepared benchmark run: inputs generated, kernels ready.
type Instance struct {
	// Sim runs the full workload on the simulator (buffer traffic, kernel
	// enqueues, result readback) and returns the output signature.
	Sim func(ctx *cl.Context) (any, error)
	// Native runs the same computation host-natively and returns the
	// reference signature.
	Native func() any
	// Tol is the comparison tolerance for float outputs.
	Tol float64
}

// Spec describes a benchmark and how to instantiate it at a given scale.
// Scale is a linear size knob: SmallScale keeps unit tests fast,
// DefaultScale drives benches, PaperScale approximates Table II.
type Spec struct {
	Name       string
	Suite      string
	PaperInput string
	// Make builds an Instance; scale semantics are per workload but
	// monotone (bigger scale, bigger input).
	Make         func(scale int) *Instance
	SmallScale   int
	DefaultScale int
	PaperScale   int
}

var registry []*Spec

func register(s *Spec) { registry = append(registry, s) }

// All returns the registered benchmarks sorted by name.
func All() []*Spec {
	out := append([]*Spec(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName finds a benchmark.
func ByName(name string) (*Spec, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Result is a completed run.
type Result struct {
	Name           string
	SimDuration    time.Duration
	NativeDuration time.Duration
	Verified       bool
	VerifyErr      error
}

// Run executes the instance on the given context, times the simulator and
// native paths, and verifies outputs.
func (inst *Instance) Run(ctx *cl.Context, name string) (*Result, error) {
	t0 := time.Now()
	simOut, err := inst.Sim(ctx)
	if err != nil {
		return nil, fmt.Errorf("%s: sim: %w", name, err)
	}
	simDur := time.Since(t0)

	t1 := time.Now()
	natOut := inst.Native()
	natDur := time.Since(t1)

	res := &Result{Name: name, SimDuration: simDur, NativeDuration: natDur}
	if err := compare(simOut, natOut, inst.Tol); err != nil {
		res.VerifyErr = fmt.Errorf("%s: verify: %w", name, err)
	} else {
		res.Verified = true
	}
	return res, nil
}

// compare checks output signatures with tolerance for floats.
func compare(sim, nat any, tol float64) error {
	switch s := sim.(type) {
	case []float32:
		n, ok := nat.([]float32)
		if !ok || len(n) != len(s) {
			return fmt.Errorf("shape mismatch: sim %T/%d vs native %T", sim, len(s), nat)
		}
		for i := range s {
			if !closeF32(s[i], n[i], tol) {
				return fmt.Errorf("element %d: sim %g vs native %g", i, s[i], n[i])
			}
		}
	case []int32:
		n, ok := nat.([]int32)
		if !ok || len(n) != len(s) {
			return fmt.Errorf("shape mismatch: sim %T/%d vs native %T", sim, len(s), nat)
		}
		for i := range s {
			if s[i] != n[i] {
				return fmt.Errorf("element %d: sim %d vs native %d", i, s[i], n[i])
			}
		}
	case []byte:
		n, ok := nat.([]byte)
		if !ok || len(n) != len(s) {
			return fmt.Errorf("shape mismatch: sim %T/%d vs native %T", sim, len(s), nat)
		}
		for i := range s {
			d := int(s[i]) - int(n[i])
			if d < -1 || d > 1 { // byte quantisation slack
				return fmt.Errorf("byte %d: sim %d vs native %d", i, s[i], n[i])
			}
		}
	default:
		return fmt.Errorf("unsupported signature type %T", sim)
	}
	return nil
}

func closeF32(a, b float32, tol float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(float64(a)) && math.IsNaN(float64(b)) {
		return true
	}
	d := math.Abs(float64(a) - float64(b))
	m := math.Max(math.Abs(float64(a)), math.Abs(float64(b)))
	if tol == 0 {
		tol = 1e-4
	}
	return d <= tol || (m > 1 && d/m <= tol)
}

// rng returns a deterministic generator so sim and native paths see the
// same inputs across runs.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func randF32s(r *rand.Rand, n int, lo, hi float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = lo + (hi-lo)*r.Float32()
	}
	return out
}

func randI32s(r *rand.Rand, n int, max int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = r.Int31n(max)
	}
	return out
}

func randBytes(r *rand.Rand, n int) []byte {
	out := make([]byte, n)
	r.Read(out)
	return out
}

// buffers is a small helper to cut allocation boilerplate in workloads.
func newBufF32(ctx *cl.Context, vals []float32) (*cl.Buffer, error) {
	b, err := ctx.CreateBuffer(4 * len(vals))
	if err != nil {
		return nil, err
	}
	if err := ctx.WriteF32(b, vals); err != nil {
		return nil, err
	}
	return b, nil
}

func newBufI32(ctx *cl.Context, vals []int32) (*cl.Buffer, error) {
	b, err := ctx.CreateBuffer(4 * len(vals))
	if err != nil {
		return nil, err
	}
	if err := ctx.WriteI32(b, vals); err != nil {
		return nil, err
	}
	return b, nil
}

func newBufU8(ctx *cl.Context, vals []byte) (*cl.Buffer, error) {
	b, err := ctx.CreateBuffer(len(vals))
	if err != nil {
		return nil, err
	}
	if err := ctx.WriteBuffer(b, vals); err != nil {
		return nil, err
	}
	return b, nil
}

// kernel1 builds a program with one kernel and binds arguments in order:
// *cl.Buffer, int32/int, float32.
func kernel1(ctx *cl.Context, src, name string, args ...any) (*cl.Kernel, error) {
	prog, err := ctx.BuildProgram(src)
	if err != nil {
		return nil, err
	}
	k, err := prog.CreateKernel(name)
	if err != nil {
		return nil, err
	}
	if err := bindArgs(k, args...); err != nil {
		return nil, err
	}
	return k, nil
}

func bindArgs(k *cl.Kernel, args ...any) error {
	for i, a := range args {
		var err error
		switch v := a.(type) {
		case *cl.Buffer:
			err = k.SetArgBuffer(i, v)
		case int:
			err = k.SetArgInt(i, int32(v))
		case int32:
			err = k.SetArgInt(i, v)
		case uint32:
			err = k.SetArgInt(i, int32(v))
		case float32:
			err = k.SetArgFloat(i, v)
		case float64:
			err = k.SetArgFloat(i, float32(v))
		default:
			err = fmt.Errorf("workloads: unsupported arg %d type %T", i, a)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// roundUp rounds n up to a multiple of m.
func roundUp(n, m int) int { return (n + m - 1) / m * m }
