package workloads

import (
	"reflect"
	"testing"

	"mobilesim/internal/cl"
	"mobilesim/internal/clc"
	"mobilesim/internal/platform"
)

// TestIntegerWorkloadsBitIdenticalAcrossVersions is the strongest form of
// the paper's "100% architectural accuracy across all available
// toolchains" claim this reproduction can make: for integer workloads the
// outputs must be bit-identical no matter which compiler version built
// the kernels, because every version must implement the same architecture.
func TestIntegerWorkloadsBitIdenticalAcrossVersions(t *testing.T) {
	for _, name := range []string{"BitonicSort", "FloydWarshall", "Reduction", "ScanLargeArrays"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			var ref any
			for i, ver := range clc.VersionNames() {
				p, err := platform.New(platform.Config{RAMSize: 256 << 20})
				if err != nil {
					t.Fatal(err)
				}
				c, err := cl.NewContext(p, ver)
				if err != nil {
					p.Close()
					t.Fatal(err)
				}
				out, err := spec.Make(spec.SmallScale).Sim(bg, c)
				p.Close()
				if err != nil {
					t.Fatalf("version %s: %v", ver, err)
				}
				if i == 0 {
					ref = out
					continue
				}
				if !reflect.DeepEqual(ref, out) {
					t.Fatalf("version %s output differs from %s", ver, clc.VersionNames()[0])
				}
			}
		})
	}
}
