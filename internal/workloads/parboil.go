package workloads

import (
	"context"
	"math"

	"mobilesim/internal/cl"
)

// --- Breadth First Search (Parboil) ---------------------------------------------
//
// Level-synchronous BFS: one kernel launch per frontier level with a
// host-read "changed" flag — the job-count and control-traffic heavy
// workload of Table III, and the divergence showcase of Fig 6.

const bfsSrc = `
kernel void bfs_step(global int* offsets, global int* edges, global int* dist,
                     global int* changed, int level, int n) {
    int u = get_global_id(0);
    if (u < n) {
        if (dist[u] == level) {
            int first = offsets[u];
            int last = offsets[u + 1];
            for (int e = first; e < last; e++) {
                int v = edges[e];
                if (dist[v] == -1) {
                    dist[v] = level + 1;
                    changed[0] = 1;
                }
            }
        }
    }
}
`

func init() {
	register(&Spec{
		Name:       "BFS",
		Suite:      "Parboil",
		PaperInput: "1257001 nodes",
		SmallScale: 1 << 10, DefaultScale: 1 << 13, PaperScale: 1257001,
		Make: makeBFS,
	})
}

// bfsGraph builds a connected random graph in CSR form.
func bfsGraph(n int, seed int64) (offsets, edges []int32) {
	r := rng(seed)
	adj := make([][]int32, n)
	// Spanning chain for connectivity plus random extra edges.
	for v := 1; v < n; v++ {
		u := r.Intn(v)
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
	}
	extra := n * 2
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			adj[u] = append(adj[u], int32(v))
		}
	}
	offsets = make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + int32(len(adj[v]))
		edges = append(edges, adj[v]...)
	}
	return offsets, edges
}

func makeBFS(n int) *Instance {
	offsets, edges := bfsGraph(n, 1313)

	return &Instance{
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			bo, err := newBufI32(ctx, c, offsets)
			if err != nil {
				return nil, err
			}
			be, err := newBufI32(ctx, c, edges)
			if err != nil {
				return nil, err
			}
			dist := make([]int32, n)
			for i := range dist {
				dist[i] = -1
			}
			dist[0] = 0
			bd, err := newBufI32(ctx, c, dist)
			if err != nil {
				return nil, err
			}
			bc, err := c.CreateBuffer(4)
			if err != nil {
				return nil, err
			}
			prog, err := c.BuildProgram(ctx, bfsSrc)
			if err != nil {
				return nil, err
			}
			k, err := prog.CreateKernel("bfs_step")
			if err != nil {
				return nil, err
			}
			for level := 0; ; level++ {
				if err := c.WriteI32(ctx, bc, []int32{0}); err != nil {
					return nil, err
				}
				if err := bindArgs(k, bo, be, bd, bc, level, n); err != nil {
					return nil, err
				}
				if err := c.EnqueueKernel(ctx, k, cl.G1(uint32(roundUp(n, 64))), cl.G1(64)); err != nil {
					return nil, err
				}
				ch, err := c.ReadI32(ctx, bc, 1)
				if err != nil {
					return nil, err
				}
				if ch[0] == 0 {
					break
				}
			}
			return c.ReadI32(ctx, bd, n)
		},
		Native: func() any {
			dist := make([]int32, n)
			for i := range dist {
				dist[i] = -1
			}
			dist[0] = 0
			frontier := []int32{0}
			for level := int32(0); len(frontier) > 0; level++ {
				var next []int32
				for _, u := range frontier {
					for e := offsets[u]; e < offsets[u+1]; e++ {
						v := edges[e]
						if dist[v] == -1 {
							dist[v] = level + 1
							next = append(next, v)
						}
					}
				}
				frontier = next
			}
			return dist
		},
	}
}

// --- Cutoff Coulombic Potential (Parboil cutcp) ------------------------------------

const cutcpSrc = `
kernel void cutcp(global float* atoms, global float* grid,
                  int nx, int ny, int nz, int natoms, float cutoff2, float spacing) {
    int i = get_global_id(0);
    int total = nx * ny * nz;
    if (i < total) {
        int z = i / (nx * ny);
        int rem = i % (nx * ny);
        int y = rem / nx;
        int x = rem % nx;
        float gx = (float)x * spacing;
        float gy = (float)y * spacing;
        float gz = (float)z * spacing;
        float e = 0.0f;
        for (int a = 0; a < natoms; a++) {
            float dx = atoms[4 * a] - gx;
            float dy = atoms[4 * a + 1] - gy;
            float dz = atoms[4 * a + 2] - gz;
            float r2 = dx * dx + dy * dy + dz * dz;
            if (r2 < cutoff2 && r2 > 0.0001f) {
                float s = 1.0f - r2 / cutoff2;
                e += atoms[4 * a + 3] / sqrt(r2) * s * s;
            }
        }
        grid[i] = e;
    }
}
`

func init() {
	register(&Spec{
		Name:       "Cutcp",
		Suite:      "Parboil",
		PaperInput: "67 atoms",
		SmallScale: 8, DefaultScale: 16, PaperScale: 32, // grid edge; 67 atoms fixed
		Make: makeCutcp,
	})
}

func makeCutcp(edge int) *Instance {
	const natoms = 67
	nx, ny, nz := edge, edge, edge
	const spacing = float32(0.5)
	const cutoff = float32(4.0)
	cutoff2 := cutoff * cutoff
	r := rng(1414)
	atoms := make([]float32, 4*natoms)
	for a := 0; a < natoms; a++ {
		atoms[4*a] = r.Float32()*float32(nx)*spacing + 0.123
		atoms[4*a+1] = r.Float32()*float32(ny)*spacing + 0.217
		atoms[4*a+2] = r.Float32()*float32(nz)*spacing + 0.391
		atoms[4*a+3] = r.Float32()*2 - 1
	}
	total := nx * ny * nz

	return &Instance{
		Tol: 2e-3,
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			ba, err := newBufF32(ctx, c, atoms)
			if err != nil {
				return nil, err
			}
			bg, err := c.CreateBuffer(4 * total)
			if err != nil {
				return nil, err
			}
			k, err := kernel1(ctx, c, cutcpSrc, "cutcp", ba, bg, nx, ny, nz, natoms, cutoff2, spacing)
			if err != nil {
				return nil, err
			}
			if err := c.EnqueueKernel(ctx, k, cl.G1(uint32(roundUp(total, 64))), cl.G1(64)); err != nil {
				return nil, err
			}
			return c.ReadF32(ctx, bg, total)
		},
		Native: func() any {
			grid := make([]float32, total)
			for i := 0; i < total; i++ {
				z := i / (nx * ny)
				rem := i % (nx * ny)
				y := rem / nx
				x := rem % nx
				gx := float32(x) * spacing
				gy := float32(y) * spacing
				gz := float32(z) * spacing
				var e float32
				for a := 0; a < natoms; a++ {
					dx := atoms[4*a] - gx
					dy := atoms[4*a+1] - gy
					dz := atoms[4*a+2] - gz
					r2 := dx*dx + dy*dy + dz*dz
					if r2 < cutoff2 && r2 > 0.0001 {
						s := 1 - r2/cutoff2
						e += atoms[4*a+3] / float32(math.Sqrt(float64(r2))) * s * s
					}
				}
				grid[i] = e
			}
			return grid
		},
	}
}

// --- SGEMM (Parboil) -----------------------------------------------------------------

// SgemmSrc is the straightforward SGEMM kernel; it is also variant 1 of
// the Fig 15 study.
const SgemmSrc = `
kernel void sgemm(global float* a, global float* b, global float* c,
                  int m, int n, int k, float alpha, float beta) {
    int col = get_global_id(0);
    int row = get_global_id(1);
    if (row < m && col < n) {
        float acc = 0.0f;
        for (int i = 0; i < k; i++) {
            acc += a[row * k + i] * b[i * n + col];
        }
        c[row * n + col] = alpha * acc + beta * c[row * n + col];
    }
}
`

func init() {
	register(&Spec{
		Name:       "SGEMM",
		Suite:      "Parboil",
		PaperInput: "128x96, 96x160 matrices",
		SmallScale: 32, DefaultScale: 96, PaperScale: 96,
		Make: func(scale int) *Instance {
			// Paper shapes at PaperScale: m=128, k=96, n=160.
			m := roundUp(scale*4/3, 16)
			k := roundUp(scale, 16)
			n := roundUp(scale*5/3, 16)
			return makeSgemm(m, n, k, 1313)
		},
	})
}

func makeSgemm(m, n, k int, seed int64) *Instance {
	r := rng(seed)
	a := randF32s(r, m*k, -1, 1)
	b := randF32s(r, k*n, -1, 1)
	c0 := randF32s(r, m*n, -1, 1)
	const alpha, beta = float32(1.5), float32(0.5)

	return &Instance{
		Tol: 1e-3,
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			ba, err := newBufF32(ctx, c, a)
			if err != nil {
				return nil, err
			}
			bb, err := newBufF32(ctx, c, b)
			if err != nil {
				return nil, err
			}
			bc, err := newBufF32(ctx, c, c0)
			if err != nil {
				return nil, err
			}
			kk, err := kernel1(ctx, c, SgemmSrc, "sgemm", ba, bb, bc, m, n, k, alpha, beta)
			if err != nil {
				return nil, err
			}
			if err := c.EnqueueKernel(ctx, kk, cl.G2(uint32(n), uint32(m)), cl.G2(16, 16)); err != nil {
				return nil, err
			}
			return c.ReadF32(ctx, bc, m*n)
		},
		Native: func() any {
			out := make([]float32, m*n)
			for row := 0; row < m; row++ {
				for col := 0; col < n; col++ {
					var acc float32
					for i := 0; i < k; i++ {
						acc += a[row*k+i] * b[i*n+col]
					}
					out[row*n+col] = alpha*acc + beta*c0[row*n+col]
				}
			}
			return out
		},
	}
}

// --- SpMV (Parboil) -------------------------------------------------------------------

const spmvSrc = `
kernel void spmv(global int* rowptr, global int* cols, global float* vals,
                 global float* x, global float* y, int n) {
    int row = get_global_id(0);
    if (row < n) {
        float acc = 0.0f;
        for (int j = rowptr[row]; j < rowptr[row + 1]; j++) {
            acc += vals[j] * x[cols[j]];
        }
        y[row] = acc;
    }
}
`

func init() {
	register(&Spec{
		Name:       "SPMV",
		Suite:      "Parboil",
		PaperInput: "1138x1138 matrix, 2596 non-zeros",
		SmallScale: 256, DefaultScale: 1138, PaperScale: 1138,
		Make: makeSpmv,
	})
}

func makeSpmv(n int) *Instance {
	r := rng(1515)
	nnzPerRow := 3
	rowptr := make([]int32, n+1)
	var cols []int32
	var vals []float32
	for row := 0; row < n; row++ {
		cnt := 1 + r.Intn(nnzPerRow*2)
		for j := 0; j < cnt; j++ {
			cols = append(cols, int32(r.Intn(n)))
			vals = append(vals, r.Float32()*2-1)
		}
		rowptr[row+1] = int32(len(cols))
	}
	x := randF32s(r, n, -1, 1)

	return &Instance{
		Tol: 1e-3,
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			br, err := newBufI32(ctx, c, rowptr)
			if err != nil {
				return nil, err
			}
			bc, err := newBufI32(ctx, c, cols)
			if err != nil {
				return nil, err
			}
			bv, err := newBufF32(ctx, c, vals)
			if err != nil {
				return nil, err
			}
			bx, err := newBufF32(ctx, c, x)
			if err != nil {
				return nil, err
			}
			by, err := c.CreateBuffer(4 * n)
			if err != nil {
				return nil, err
			}
			k, err := kernel1(ctx, c, spmvSrc, "spmv", br, bc, bv, bx, by, n)
			if err != nil {
				return nil, err
			}
			if err := c.EnqueueKernel(ctx, k, cl.G1(uint32(roundUp(n, 64))), cl.G1(64)); err != nil {
				return nil, err
			}
			return c.ReadF32(ctx, by, n)
		},
		Native: func() any {
			y := make([]float32, n)
			for row := 0; row < n; row++ {
				var acc float32
				for j := rowptr[row]; j < rowptr[row+1]; j++ {
					acc += vals[j] * x[cols[j]]
				}
				y[row] = acc
			}
			return y
		},
	}
}

// --- Stencil (Parboil) ---------------------------------------------------------------
//
// 3-D 7-point Jacobi stencil, iterated with ping-pong buffers: one compute
// job per iteration (Table III shows stencil submitting 100 jobs).

const stencilSrc = `
kernel void stencil7(global float* in, global float* out,
                     int nx, int ny, int nz, float c0, float c1) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int z = get_global_id(2);
    if (x < nx && y < ny && z < nz) {
        int i = z * nx * ny + y * nx + x;
        if (x > 0 && x < nx - 1 && y > 0 && y < ny - 1 && z > 0 && z < nz - 1) {
            float s = in[i - 1] + in[i + 1]
                    + in[i - nx] + in[i + nx]
                    + in[i - nx * ny] + in[i + nx * ny];
            out[i] = c1 * s + c0 * in[i];
        } else {
            out[i] = in[i];
        }
    }
}
`

func init() {
	register(&Spec{
		Name:       "Stencil",
		Suite:      "Parboil",
		PaperInput: "128x128x32 grid, 100 iterations",
		SmallScale: 8, DefaultScale: 16, PaperScale: 64,
		Make: makeStencil,
	})
}

func makeStencil(edge int) *Instance {
	nx, ny := roundUp(edge, 8), roundUp(edge, 8)
	nz := nx / 2
	if nz < 4 {
		nz = 4
	}
	iters := 100
	if edge < 16 {
		iters = 10 // keep unit tests quick; the bench uses larger scales
	}
	const c0, c1 = float32(0.5), float32(1.0 / 12.0)
	r := rng(1616)
	total := nx * ny * nz
	init0 := randF32s(r, total, 0, 1)

	return &Instance{
		Tol: 1e-3,
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			a, err := newBufF32(ctx, c, init0)
			if err != nil {
				return nil, err
			}
			b, err := c.CreateBuffer(4 * total)
			if err != nil {
				return nil, err
			}
			prog, err := c.BuildProgram(ctx, stencilSrc)
			if err != nil {
				return nil, err
			}
			k, err := prog.CreateKernel("stencil7")
			if err != nil {
				return nil, err
			}
			src, dst := a, b
			for it := 0; it < iters; it++ {
				if err := bindArgs(k, src, dst, nx, ny, nz, c0, c1); err != nil {
					return nil, err
				}
				if err := c.EnqueueKernel(ctx, k,
					[3]uint32{uint32(nx), uint32(ny), uint32(nz)},
					[3]uint32{8, 8, 1}); err != nil {
					return nil, err
				}
				src, dst = dst, src
			}
			return c.ReadF32(ctx, src, total)
		},
		Native: func() any {
			cur := append([]float32(nil), init0...)
			next := make([]float32, total)
			for it := 0; it < iters; it++ {
				for z := 0; z < nz; z++ {
					for y := 0; y < ny; y++ {
						for x := 0; x < nx; x++ {
							i := z*nx*ny + y*nx + x
							if x > 0 && x < nx-1 && y > 0 && y < ny-1 && z > 0 && z < nz-1 {
								s := cur[i-1] + cur[i+1] + cur[i-nx] + cur[i+nx] +
									cur[i-nx*ny] + cur[i+nx*ny]
								next[i] = c1*s + c0*cur[i]
							} else {
								next[i] = cur[i]
							}
						}
					}
				}
				cur, next = next, cur
			}
			return cur
		},
	}
}
